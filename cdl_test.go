package cdl

import (
	"path/filepath"
	"testing"
)

// TestFacadeEndToEnd exercises the whole public API surface: generate data,
// train a baseline, build a CDLN, evaluate, measure energy, save and load.
func TestFacadeEndToEnd(t *testing.T) {
	trainS, testS, err := GenerateMNIST(1200, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(trainS) != 1200 || len(testS) != 200 {
		t.Fatalf("split sizes %d/%d", len(trainS), len(testS))
	}

	arch := NewArch6(7)
	if err := TrainBaseline(arch, trainS, 5, 1); err != nil {
		t.Fatal(err)
	}
	baseAcc := BaselineAccuracy(arch, testS)
	if baseAcc < 0.3 {
		t.Fatalf("baseline accuracy %.3f too low to be a trained network", baseAcc)
	}

	cdln, report, err := BuildCDLN(arch, trainS, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Stages) == 0 {
		t.Fatal("no stage reports")
	}

	res, err := Evaluate(cdln, testS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confusion.Total() != 200 {
		t.Fatalf("evaluated %d samples", res.Confusion.Total())
	}
	if n := res.NormalizedOps(); n <= 0 || n > 1.2 {
		t.Errorf("normalized OPS %.3f implausible", n)
	}

	sum, err := EnergyOf(cdln, res)
	if err != nil {
		t.Fatal(err)
	}
	if sum.MeanEnergy <= 0 {
		t.Error("energy must be positive")
	}

	path := filepath.Join(t.TempDir(), "model.cdln")
	if err := SaveCDLN(path, cdln); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCDLN(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		a := cdln.Classify(testS[i].X)
		b := back.Classify(testS[i].X)
		if !a.Equal(b) {
			t.Fatalf("loaded model diverges on sample %d", i)
		}
	}
}

func TestFacadeImagesAndRender(t *testing.T) {
	trainImgs, testImgs, err := GenerateMNISTImages(20, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(trainImgs) != 20 || len(testImgs) != 10 {
		t.Fatal("image split sizes wrong")
	}
	if s := RenderImage(trainImgs[0]); len(s) == 0 {
		t.Error("render empty")
	}
}

func TestFacadeArch8(t *testing.T) {
	arch := NewArch8(1)
	if arch.Name != "8-layer" || len(arch.Taps) != 3 {
		t.Errorf("arch8 metadata wrong: %s, %d taps", arch.Name, len(arch.Taps))
	}
	if err := arch.Validate(); err != nil {
		t.Error(err)
	}
}

func TestLoadCDLNMissingFile(t *testing.T) {
	if _, err := LoadCDLN(filepath.Join(t.TempDir(), "nope.cdln")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestSaveCDLNAtomic pins the write-temp-then-rename contract: a save over
// an existing model either fully replaces it or leaves it untouched, and
// no temp files survive in either case — a registry hot-reloading the path
// must never observe a torn file.
func TestSaveCDLNAtomic(t *testing.T) {
	trainS, _, err := GenerateMNIST(300, 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	arch := NewArch6(11)
	if err := TrainBaseline(arch, trainS, 1, 1); err != nil {
		t.Fatal(err)
	}
	cdln, _, err := BuildCDLN(arch, trainS, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "model.cdln")

	// Save twice (create, then atomic replace) and reload after each.
	for round := 0; round < 2; round++ {
		if err := SaveCDLN(path, cdln); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCDLN(path); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	// An invalid model must fail before touching path and clean its temp.
	bad := cdln.Clone()
	bad.Delta = 7 // outside [0,1]: Validate rejects at save time
	if err := SaveCDLN(path, bad); err == nil {
		t.Fatal("invalid model saved")
	}
	if _, err := LoadCDLN(path); err != nil {
		t.Fatalf("failed save corrupted the existing file: %v", err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || files[0] != path {
		t.Fatalf("temp files left behind: %v", files)
	}
}

func TestFacadeTuneAndQuantize(t *testing.T) {
	trainS, testS, err := GenerateMNIST(1200, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	arch := NewArch8(9)
	if err := TrainBaseline(arch, trainS, 8, 1); err != nil {
		t.Fatal(err)
	}
	cdln, _, err := BuildCDLN(arch, trainS, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}

	deltas, _, err := TuneDeltas(cdln, trainS[:300])
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != len(cdln.Stages) {
		t.Errorf("tuned %d deltas for %d stages", len(deltas), len(cdln.Stages))
	}

	q, maxErr, err := Quantize(cdln)
	if err != nil {
		t.Fatal(err)
	}
	if maxErr <= 0 || maxErr > 1.0/8192 {
		t.Errorf("rounding error %v outside (0, 2^-13]", maxErr)
	}
	res, err := Evaluate(q, testS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confusion.Accuracy() < 0.5 {
		t.Errorf("quantized accuracy collapsed: %v", res.Confusion.Accuracy())
	}
}
