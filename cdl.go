// Package cdl is the public API of a Go reproduction of "Conditional Deep
// Learning for Energy-Efficient and Enhanced Pattern Recognition"
// (P. Panda, A. Sengupta, K. Roy — DATE 2016).
//
// Conditional Deep Learning (CDL) attaches a cascade of linear classifiers
// to the convolutional stages of a trained baseline network; at inference
// time an activation module compares each stage's confidence against a
// threshold δ and terminates classification early for easy inputs, saving
// the operations and energy of the deeper layers while — on an
// under-trained baseline — improving accuracy.
//
// Typical use:
//
//	trainS, testS, _ := cdl.GenerateMNIST(4000, 1500, 1)
//	arch := cdl.NewArch8(7)
//	cdl.TrainBaseline(arch, trainS, 7, 1)
//	cdln, report, _ := cdl.BuildCDLN(arch, trainS, cdl.DefaultBuildConfig())
//	res, _ := cdl.Evaluate(cdln, testS)
//	fmt.Println(res.Confusion.Accuracy(), res.NormalizedOps())
//
// The facade re-exports the library's core types; the full surface lives in
// the internal packages (tensor, nn, train, mnist, linclass, core, opcount,
// fixed, hw, energy, experiments, serve) and is documented in DESIGN.md.
package cdl

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"cdl/internal/control"
	"cdl/internal/core"
	"cdl/internal/edgecloud"
	"cdl/internal/edgecloud/wire"
	"cdl/internal/energy"
	"cdl/internal/fixed"
	"cdl/internal/mnist"
	"cdl/internal/modelio"
	"cdl/internal/nn"
	"cdl/internal/serve"
	"cdl/internal/train"
)

// Re-exported types. Downstream code uses these names; the internal
// packages hold the implementations.
type (
	// Arch is a baseline DLN plus its CDL tap metadata.
	Arch = nn.Arch
	// Network is a sequential layer stack.
	Network = nn.Network
	// CDLN is a conditional deep learning network (the paper's
	// contribution).
	CDLN = core.CDLN
	// Stage is one early-exit point of a CDLN.
	Stage = core.Stage
	// Graph is a tree-structured routing graph: a trunk cascade whose
	// router stages can hand inputs off to class-group branch subnetworks.
	// LinearGraph(c) wraps a plain cascade as the degenerate one-node
	// graph, bit-identical to classifying c directly.
	Graph = core.Graph
	// GraphNode is one subnetwork of a routing graph (the trunk or a
	// branch), a CDLN plus its outgoing routes.
	GraphNode = core.Node
	// Route is one conditional edge of a routing graph: at a router
	// stage's non-exit, inputs whose argmax lands in Classes continue in
	// the named branch.
	Route = core.Route
	// ExitRecord describes how one input was classified.
	ExitRecord = core.ExitRecord
	// EvalResult aggregates accuracy, exit and OPS statistics.
	EvalResult = core.EvalResult
	// BuildConfig controls Algorithm 1 (CDLN construction).
	BuildConfig = core.BuildConfig
	// BuildReport records Algorithm 1's per-stage decisions.
	BuildReport = core.Report
	// TrainConfig controls baseline SGD training.
	TrainConfig = train.Config
	// Sample is one labelled instance.
	Sample = train.Sample
	// Image is one synthetic or loaded MNIST digit.
	Image = mnist.Image
	// EnergySummary reports 45nm-model energy for an evaluation.
	EnergySummary = energy.Summary
	// EnergyAccumulator aggregates 45nm energy one ExitRecord at a time
	// (the serving-path counterpart of EnergyOf).
	EnergyAccumulator = energy.Accumulator
	// Session is a warm single-goroutine classifier with reusable scratch
	// buffers — the unit of the serving replica pool.
	Session = core.Session
	// Server is the batched CDLN inference server (internal/serve).
	Server = serve.Server
	// ServeConfig sizes the inference server (pool, queue, micro-batch).
	ServeConfig = serve.Config
	// ServeStats is the server's live counter snapshot (/statsz payload).
	ServeStats = serve.Stats
	// Registry is the multi-model serving registry: named, versioned CDLN
	// entries, each with its own warm replica pool, hot-swappable under
	// load (internal/serve).
	Registry = serve.Registry
	// RegistryModel is one loaded, servable version of a registry entry.
	RegistryModel = serve.Model
	// ExitPolicy is the structured per-request exit shaping: global δ,
	// per-stage deltas, depth/ops caps and record detail (internal/core).
	ExitPolicy = core.ExitPolicy
	// SLO declares per-model serving targets (p99 latency, queue
	// occupancy, energy budget, accuracy floor) for the adaptive
	// exit-policy controller (internal/control).
	SLO = control.SLO
	// Edge is the edge-tier runtime of a split deployment: it owns the
	// cascade prefix and offloads hard inputs to a cloud backend
	// (internal/edgecloud).
	Edge = edgecloud.Edge
	// EdgeConfig shapes an edge node (split stage, δ, wire encoding, link
	// energy model).
	EdgeConfig = edgecloud.Config
	// EdgeResult is one input's tier-split outcome (record, offload flag,
	// per-tier pJ).
	EdgeResult = edgecloud.Result
	// EdgeTransport ships offloaded activations to the cloud tier.
	EdgeTransport = edgecloud.Transport
	// EdgeServer is the edge node's HTTP front (classify-or-offload).
	EdgeServer = edgecloud.Server
	// EdgeServerConfig sizes the edge HTTP front.
	EdgeServerConfig = edgecloud.ServerConfig
	// EdgeStats is the edge server's live counter snapshot.
	EdgeStats = edgecloud.Stats
	// Link is the edge→cloud transmission energy model.
	Link = energy.Link
	// TieredSummary is the per-tier (edge/link/cloud) energy view of a
	// split deployment.
	TieredSummary = energy.TieredSummary
	// WireEncoding selects the offload payload representation (lossless
	// float64 or quantized fixed-point).
	WireEncoding = wire.Encoding
)

// Wire encodings for EdgeConfig.Encoding.
const (
	// WireFloat64 is the lossless encoding: split results are
	// bit-identical to monolithic classification.
	WireFloat64 = wire.EncodingFloat64
	// WireFixed ships Q2.13-quantized activations at a quarter of the
	// bytes, modelling a quantized radio link.
	WireFixed = wire.EncodingFixed
)

// NewArch6 builds the paper's Table I 6-layer baseline (MNIST_2C host)
// with Xavier initialization from the given seed.
func NewArch6(seed int64) *Arch { return nn.Arch6Layer(rand.New(rand.NewSource(seed))) }

// NewArch8 builds the paper's Table II 8-layer baseline (MNIST_3C host).
func NewArch8(seed int64) *Arch { return nn.Arch8Layer(rand.New(rand.NewSource(seed))) }

// NewBranchArch builds a compact specialist subnetwork for a routing-graph
// branch: a conv→pool block over a trunk tap shape [channels, h, w]
// followed by a dense classifier over `classes` outputs, with one early
// exit tapped after the pool. The input shape must equal the parent
// network's shape at the routing stage's tap (Graph.Validate enforces
// this), and `classes` is the branch's local class count — pair it with
// GraphNode.Labels to map local classes back to trunk classes.
func NewBranchArch(name string, inShape []int, classes int, seed int64) (*Arch, error) {
	if len(inShape) != 3 {
		return nil, fmt.Errorf("cdl: branch input shape %v is not [channels, h, w]", inShape)
	}
	c, h, w := inShape[0], inShape[1], inShape[2]
	const k, pool, maps = 3, 2, 8
	hp, wp := (h-k+1)/pool, (w-k+1)/pool
	if c < 1 || hp < 1 || wp < 1 {
		return nil, fmt.Errorf("cdl: branch input shape %v too small for a %dx%d conv + %dx%d pool", inShape, k, k, pool, pool)
	}
	rng := rand.New(rand.NewSource(seed))
	net := nn.NewNetwork(append([]int(nil), inShape...),
		nn.NewConv2D(name+".C1", c, maps, k),
		nn.NewSigmoid(name+".C1.act"),
		nn.NewMaxPool2D(name+".P1", pool),
		nn.NewFlatten(name+".flat"),
		nn.NewDense(name+".FC", maps*hp*wp, classes),
		nn.NewSigmoid(name+".FC.act"),
	)
	nn.InitNetwork(net, rng)
	a := &Arch{
		Name: name, Net: net,
		Taps: []int{3}, TapNames: []string{name + ".P1"},
		NumClasses: classes,
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("cdl: branch arch: %w", err)
	}
	return a, nil
}

// GenerateMNIST synthesizes a deterministic MNIST-like split (see
// internal/mnist for the substitution rationale) and returns it as training
// samples.
func GenerateMNIST(trainN, testN int, seed int64) (trainS, testS []Sample, err error) {
	trainImgs, testImgs, err := mnist.GenerateSplit(trainN, testN, seed)
	if err != nil {
		return nil, nil, err
	}
	return mnist.ToSamples(trainImgs), mnist.ToSamples(testImgs), nil
}

// GenerateMNISTImages is GenerateMNIST returning the raw images (with
// difficulty metadata and ASCII rendering support).
func GenerateMNISTImages(trainN, testN int, seed int64) (trainImgs, testImgs []Image, err error) {
	return mnist.GenerateSplit(trainN, testN, seed)
}

// ParseDigitGroups parses a digit-group spec like "even,odd" or
// "0-4,5-9" into explicit class groups (see internal/mnist.ParseGroups
// for the token grammar). Groups feed GenerateMNISTGrouped and define
// the class partition a routed cascade's branches specialize on.
func ParseDigitGroups(spec string) ([][]int, error) { return mnist.ParseGroups(spec) }

// GenerateMNISTGrouped synthesizes n images whose labels are drawn from
// the given digit groups — group by weight (uniform when weights is
// nil), then digit uniformly within the group. This is the
// class-skewed workload that exercises branch routing: traffic heavy in
// one group exits predominantly through that group's branch.
func GenerateMNISTGrouped(n int, seed int64, groups [][]int, weights []float64) ([]Image, error) {
	return mnist.Generate(mnist.GenConfig{N: n, Seed: seed, Groups: groups, GroupWeights: weights})
}

// RenderImage draws a digit as ASCII art.
func RenderImage(im Image) string { return mnist.Render(im) }

// ImagesToSamples converts images to training samples (sharing pixel
// storage) — the bridge from GenerateMNISTGrouped to TrainBaseline,
// BuildCDLN and Evaluate.
func ImagesToSamples(imgs []Image) []Sample { return mnist.ToSamples(imgs) }

// DefaultTrainConfig returns baseline SGD settings for the given class
// count (MSE loss, lr 1.0, momentum 0.5 — the regime where these sigmoid
// CNNs converge).
func DefaultTrainConfig(classes int) TrainConfig { return train.Defaults(classes) }

// TrainBaseline trains the baseline DLN in place for the given number of
// epochs with default settings. Use train.SGD directly (via TrainConfig)
// for full control.
func TrainBaseline(arch *Arch, data []Sample, epochs int, seed int64) error {
	cfg := train.Defaults(arch.NumClasses)
	cfg.Epochs = epochs
	cfg.Seed = seed
	_, err := train.SGD(arch.Net, data, cfg)
	return err
}

// BaselineAccuracy evaluates the plain DLN on a labelled dataset.
func BaselineAccuracy(arch *Arch, data []Sample) float64 {
	return train.Accuracy(arch.Net, data, arch.NumClasses)
}

// DefaultBuildConfig returns the paper-style Algorithm 1 settings
// (δ=0.5, ε=0, threshold exit rule, unit op costs).
func DefaultBuildConfig() BuildConfig { return core.DefaultBuildConfig() }

// BuildCDLN runs Algorithm 1 on a trained baseline: train a linear
// classifier per tap, apply the Eq. 1 gain rule and assemble the cascade.
func BuildCDLN(arch *Arch, data []Sample, cfg BuildConfig) (*CDLN, *BuildReport, error) {
	return core.Build(arch, data, cfg)
}

// Evaluate classifies every sample with early exit (Algorithm 2) and
// aggregates accuracy, exit and OPS statistics.
func Evaluate(c *CDLN, data []Sample) (*EvalResult, error) {
	return core.Evaluate(c, data, 0, false)
}

// EvaluateWithRecords is Evaluate keeping the per-sample exit records.
func EvaluateWithRecords(c *CDLN, data []Sample) (*EvalResult, error) {
	return core.Evaluate(c, data, 0, true)
}

// EnergyOf converts an evaluation into 45 nm-model energy numbers (Fig. 6
// methodology).
func EnergyOf(c *CDLN, res *EvalResult) (EnergySummary, error) {
	return energy.NewEvaluator().FromEval(c, res)
}

// NewEnergyAccumulator returns an incremental 45 nm energy counter for the
// cascade: feed it ExitRecords as they are produced (e.g. by a server) and
// snapshot a Summary at any time.
func NewEnergyAccumulator(c *CDLN) (*EnergyAccumulator, error) {
	return energy.NewEvaluator().NewAccumulator(c)
}

// NewSession returns a warm classifier over a private replica of the
// cascade: exit costs precomputed and scratch buffers reused across calls,
// so repeated classification avoids both the per-call Clone and the
// per-call allocations of CDLN.Classify. Sessions are single-goroutine;
// create one per worker.
func NewSession(c *CDLN) (*Session, error) {
	return core.NewSession(c)
}

// DefaultServeConfig returns the inference server's default sizing
// (GOMAXPROCS workers, 1024-image queue, 32-image micro-batches, 200µs
// batch window).
func DefaultServeConfig() ServeConfig { return serve.DefaultConfig() }

// NewServer starts a batched inference server over a pool of pre-cloned
// replicas of the cascade: POST /v1/classify (single image or batch, with
// optional per-request δ override — the paper's §III.B runtime knob), the
// /v2 multi-model surface, GET /healthz, GET /statsz. Serve its Handler()
// or call ListenAndServe; Close drains the pool.
func NewServer(c *CDLN, cfg ServeConfig) (*Server, error) {
	return serve.New(c, cfg)
}

// NewRegistry returns an empty multi-model registry sized by cfg. Register
// in-memory cascades with Register, load modelio files with Load, then
// serve it with NewRegistryServer — each entry gets its own replica pool,
// and re-registering a name hot-swaps it atomically (the old pool drains
// after its in-flight batches complete).
func NewRegistry(cfg ServeConfig) *Registry { return serve.NewRegistry(cfg) }

// NewRegistryServer serves an existing registry (at least one model): the
// /v2 surface dispatches by model name with structured ExitPolicy bodies,
// /v1 aliases the registry's default entry bit-identically to the
// single-model server. The server takes ownership of the registry.
func NewRegistryServer(reg *Registry) (*Server, error) {
	return serve.NewWithRegistry(reg)
}

// ParseSLO parses the `-slo` flag syntax ("p99=15ms,queue=0.8,
// energy=2.5e9,floor=0.5") into an SLO; attach it to a registry entry
// with Registry.SetSLO to let the adaptive controller trade cascade
// depth for the declared targets under load.
func ParseSLO(s string) (SLO, error) { return control.ParseSLO(s) }

// DefaultExitPolicy is the identity ExitPolicy: trained thresholds, full
// cascade, no trace.
func DefaultExitPolicy() ExitPolicy { return core.DefaultExitPolicy() }

// DefaultEdgeConfig returns an edge configuration for the given split
// stage: trained thresholds, lossless wire encoding, default link model.
func DefaultEdgeConfig(splitStage int) EdgeConfig { return edgecloud.DefaultConfig(splitStage) }

// DefaultLink returns the reference edge→cloud transmission energy model
// (400 pJ/byte + 20 nJ per transfer — an ultra-low-power short-range
// radio).
func DefaultLink() Link { return energy.DefaultLink() }

// NewEdge returns a warm edge runtime over a private replica of the
// cascade: the first cfg.SplitStage stages run locally, everything past
// them is offloaded through t. With the lossless encoding, results are
// bit-identical to monolithic classification for every split stage.
func NewEdge(c *CDLN, t EdgeTransport, cfg EdgeConfig) (*Edge, error) {
	return edgecloud.New(c, t, cfg)
}

// NewEdgeLoopback returns an in-process cloud tier (decode + resume on a
// private session) — the transport for tests, demos and single-node runs.
func NewEdgeLoopback(c *CDLN) (EdgeTransport, error) { return edgecloud.NewLoopback(c) }

// NewGraphEdge is NewEdge for a routing graph: the edge runs the trunk
// prefix locally; inputs that exit neither early nor into a branch
// before the split — and every input a router hands to a branch — are
// offloaded to the cloud tier, which owns the branches.
func NewGraphEdge(g *Graph, t EdgeTransport, cfg EdgeConfig) (*Edge, error) {
	return edgecloud.NewGraph(g, t, cfg)
}

// NewGraphEdgeLoopback is NewEdgeLoopback over a routing graph: branch
// handoffs resume at the named node exactly as a real backend would.
func NewGraphEdgeLoopback(g *Graph) (EdgeTransport, error) {
	return edgecloud.NewGraphLoopback(g)
}

// NewEdgeHTTPTransport returns a transport that offloads to a cdlserve
// backend's /v1/resume at the given base URL.
func NewEdgeHTTPTransport(baseURL string) EdgeTransport { return edgecloud.NewHTTPTransport(baseURL) }

// NewEdgeHTTPModelTransport is NewEdgeHTTPTransport pinned to a named
// model on the cloud registry (POST /v2/models/{model}/resume), so one
// multi-model cloud tier can back heterogeneous edge splits.
func NewEdgeHTTPModelTransport(baseURL, model string) EdgeTransport {
	return edgecloud.NewHTTPModelTransport(baseURL, model)
}

// NewEdgeServer starts an edge HTTP front: same /v1/classify schema as
// NewServer, but only the cascade prefix runs here — hard inputs are
// forwarded to the cloud tier via transports from newTransport (one per
// worker).
func NewEdgeServer(c *CDLN, newTransport func() (EdgeTransport, error), edgeCfg EdgeConfig, cfg EdgeServerConfig) (*EdgeServer, error) {
	return edgecloud.NewServer(c, newTransport, edgeCfg, cfg)
}

// TuneDeltas grid-searches a per-stage confidence threshold on validation
// data (an extension beyond the paper's single δ), updating the CDLN in
// place and returning the chosen thresholds.
func TuneDeltas(c *CDLN, val []Sample) ([]float64, *EvalResult, error) {
	return core.TuneDeltas(c, val, core.DefaultTuneConfig())
}

// Quantize returns a copy of the cascade rounded to the 16-bit Q2.13
// fixed-point format of the default 45 nm datapath, plus the maximum
// weight rounding error.
func Quantize(c *CDLN) (*CDLN, float64, error) {
	return core.QuantizeCDLN(c, fixed.Q2x13)
}

// SaveCDLN writes a trained CDLN to path atomically: the bytes land in a
// temp file in the same directory, are synced, and are renamed over path
// only once complete. A reader (in particular a serving registry
// hot-reloading the path, PUT /v2/models/{name}) therefore never observes
// a torn or half-written model file — it sees either the old version or
// the new one.
func SaveCDLN(path string, c *CDLN) error {
	return saveAtomic(path, func(f *os.File) error { return modelio.SaveCDLN(f, c) })
}

// saveAtomic writes a model file via the temp-and-rename protocol shared
// by SaveCDLN and SaveGraph.
func saveAtomic(path string, write func(*os.File) error) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		// A bare filename must stage its temp file in the destination
		// directory (CWD), not os.TempDir() — rename across filesystems
		// fails, and same-directory staging is what makes the rename
		// atomic.
		dir = "."
	}
	// Hand-rolled temp creation rather than os.CreateTemp: O_EXCL with
	// mode 0666 gets the kernel's umask applied, preserving exactly the
	// permissions the old os.Create writer produced (CreateTemp would pin
	// 0600 and a Chmod would bypass the umask).
	var f *os.File
	var tmp string
	for i := 0; ; i++ {
		tmp = filepath.Join(dir, fmt.Sprintf("%s.tmp-%d-%d", base, os.Getpid(), i))
		f, err = os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o666)
		if err == nil {
			break
		}
		if !os.IsExist(err) || i >= 10000 {
			return fmt.Errorf("cdl: %w", err)
		}
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("cdl: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("cdl: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("cdl: %w", err)
	}
	return nil
}

// LoadCDLN reads a CDLN written by SaveCDLN.
func LoadCDLN(path string) (*CDLN, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("cdl: %w", err)
	}
	defer f.Close()
	return modelio.LoadCDLN(f)
}

// LinearGraph wraps a plain cascade in the degenerate one-node routing
// graph. Classifying through it is bit-identical to classifying the
// CDLN directly — ExitRecords match byte for byte — so linear and
// routed models share every downstream surface (sessions, serving,
// edge/cloud splits, energy accounting).
func LinearGraph(c *CDLN) *Graph { return core.LinearGraph(c) }

// NewGraphSession returns a warm classifier over a routing graph —
// NewSession generalized to tree-structured conditional routing. At
// each router stage's non-exit the stage classifier's argmax picks the
// branch the input continues in.
func NewGraphSession(g *Graph) (*Session, error) { return core.NewGraphSession(g) }

// SaveGraph writes a routing graph to path with the same atomic
// temp-and-rename protocol as SaveCDLN. A one-node linear graph is
// written in the v1 single-cascade format, so SaveCDLN and SaveGraph
// produce identical bytes for linear models and LoadCDLN can read them.
func SaveGraph(path string, g *Graph) error {
	return saveAtomic(path, func(f *os.File) error { return modelio.SaveGraph(f, g) })
}

// LoadGraph reads a routing graph written by SaveGraph — or any v1
// single-cascade file, which loads as its one-node linear graph.
func LoadGraph(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("cdl: %w", err)
	}
	defer f.Close()
	return modelio.LoadGraph(f)
}
