module cdl

go 1.21
