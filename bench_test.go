package cdl

// One benchmark per table and figure of the paper (see DESIGN.md §5 for the
// experiment index). Each benchmark regenerates its result from the shared
// paper-scale context (trained once per `go test -bench` process) and
// reports the headline numbers as custom benchmark metrics, so
// `go test -bench=. -benchmem` both times the experiment and prints the
// reproduced values.

import (
	"math/rand"
	"sync"
	"testing"

	"cdl/internal/core"
	"cdl/internal/experiments"
	"cdl/internal/mnist"
	"cdl/internal/nn"
	"cdl/internal/tensor"
)

var (
	benchOnce sync.Once
	benchCtx  *experiments.Context
)

// benchContext trains the paper-scale models once per process.
func benchContext(b *testing.B) *experiments.Context {
	b.Helper()
	benchOnce.Do(func() {
		benchCtx = experiments.NewContext(experiments.DefaultConfig())
	})
	return benchCtx
}

// BenchmarkTableI_Arch6 times one forward pass of the Table I baseline and
// reports its parameter count.
func BenchmarkTableI_Arch6(b *testing.B) {
	ctx := benchContext(b)
	arch, err := ctx.Arch6()
	if err != nil {
		b.Fatal(err)
	}
	_, testS, err := ctx.Data()
	if err != nil {
		b.Fatal(err)
	}
	net := arch.Net.Clone()
	b.ReportMetric(float64(net.NumParams()), "params")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(testS[i%len(testS)].X)
	}
}

// BenchmarkTableII_Arch8 times one forward pass of the Table II baseline.
func BenchmarkTableII_Arch8(b *testing.B) {
	ctx := benchContext(b)
	arch, err := ctx.Arch8()
	if err != nil {
		b.Fatal(err)
	}
	_, testS, err := ctx.Data()
	if err != nil {
		b.Fatal(err)
	}
	net := arch.Net.Clone()
	b.ReportMetric(float64(net.NumParams()), "params")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(testS[i%len(testS)].X)
	}
}

// BenchmarkFig5_NormalizedOPS regenerates Fig. 5 (normalized OPS per digit)
// and reports both networks' average improvements.
func BenchmarkFig5_NormalizedOPS(b *testing.B) {
	ctx := benchContext(b)
	var r *experiments.Fig5Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig5(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.AvgImp2C, "improve2C_x")
	b.ReportMetric(r.AvgImp3C, "improve3C_x")
	b.ReportMetric(float64(r.BestDigit), "bestDigit")
}

// BenchmarkFig6_Energy regenerates Fig. 6 (normalized energy per digit).
func BenchmarkFig6_Energy(b *testing.B) {
	ctx := benchContext(b)
	var r *experiments.Fig6Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig6(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.AvgImp2C, "energy2C_x")
	b.ReportMetric(r.AvgImp3C, "energy3C_x")
}

// BenchmarkTableIII_Accuracy regenerates Table III (baseline vs CDLN
// accuracy for both architectures).
func BenchmarkTableIII_Accuracy(b *testing.B) {
	ctx := benchContext(b)
	var r *experiments.TableIIIResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.TableIII(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Baseline6, "base6_acc")
	b.ReportMetric(r.CDLN2C, "cdln2C_acc")
	b.ReportMetric(r.Baseline8, "base8_acc")
	b.ReportMetric(r.CDLN3C, "cdln3C_acc")
}

// BenchmarkFig7_AccuracyVsStages regenerates Fig. 7 (accuracy as output
// layers are added one at a time).
func BenchmarkFig7_AccuracyVsStages(b *testing.B) {
	ctx := benchContext(b)
	var r *experiments.Fig7Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig7(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Points[0].Accuracy, "acc_baseline")
	b.ReportMetric(r.Points[len(r.Points)-1].Accuracy, "acc_3stages")
}

// BenchmarkFig8_DifficultyEnergy regenerates Fig. 8 (energy benefit vs
// input difficulty with FC activation fractions).
func BenchmarkFig8_DifficultyEnergy(b *testing.B) {
	ctx := benchContext(b)
	var r *experiments.Fig8Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig8(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.EasiestDigit), "easiestDigit")
	b.ReportMetric(float64(r.HardestDigit), "hardestDigit")
	b.ReportMetric(r.MinImprovement, "minImprove_x")
}

// BenchmarkFig9_StageSweep regenerates Fig. 9 (normalized OPS vs number of
// stages, the break-even curve).
func BenchmarkFig9_StageSweep(b *testing.B) {
	ctx := benchContext(b)
	var r *experiments.Fig9Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig9(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.BestStages), "bestStages")
	b.ReportMetric(r.BestNormalizedOps, "bestNormOPS")
}

// BenchmarkFig10_DeltaSweep regenerates Fig. 10 (efficiency–accuracy
// trade-off over δ).
func BenchmarkFig10_DeltaSweep(b *testing.B) {
	ctx := benchContext(b)
	var r *experiments.Fig10Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig10(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.BestDelta, "bestDelta")
	b.ReportMetric(r.BestAccuracy, "bestAcc")
}

// BenchmarkTableIV_ExitGallery regenerates Table IV (exemplar digits per
// exit stage).
func BenchmarkTableIV_ExitGallery(b *testing.B) {
	ctx := benchContext(b)
	var r *experiments.TableIVResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.TableIV(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	found := 0
	for _, digit := range r.Digits {
		for _, img := range r.Galleries[digit] {
			if img != nil {
				found++
			}
		}
	}
	b.ReportMetric(float64(found), "exemplars")
}

// BenchmarkGainRule times Algorithm 1's stage-admission decision (Eq. 1)
// by rebuilding the MNIST_3C cascade report.
func BenchmarkGainRule(b *testing.B) {
	ctx := benchContext(b)
	_, rep, err := ctx.MNIST3C()
	if err != nil {
		b.Fatal(err)
	}
	admitted := 0
	for _, s := range rep.Stages {
		if s.Admitted {
			admitted++
		}
	}
	b.ReportMetric(float64(admitted), "stagesAdmitted")
	b.ReportMetric(float64(len(rep.Stages)), "stagesConsidered")
	for i := 0; i < b.N; i++ {
		if _, _, err := ctx.BuildSweepCDLN(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRules compares the three activation-module rules at
// their per-rule best δ (design-choice ablation from DESIGN.md).
func BenchmarkAblationRules(b *testing.B) {
	ctx := benchContext(b)
	var r *experiments.AblationRulesResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.AblationRules(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range r.Rows {
		b.ReportMetric(row.Accuracy, row.Rule+"_acc")
	}
}

// BenchmarkAblationQuantization sweeps fixed-point datapath precision.
func BenchmarkAblationQuantization(b *testing.B) {
	ctx := benchContext(b)
	var r *experiments.AblationQuantResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.AblationQuantization(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.FloatAccuracy, "float_acc")
	b.ReportMetric(r.Rows[0].Accuracy, "q2_13_acc")
	b.ReportMetric(r.Rows[len(r.Rows)-1].Accuracy, "coarsest_acc")
}

// BenchmarkAblationLCData compares Algorithm 1's passed-only stage
// training against full-dataset training.
func BenchmarkAblationLCData(b *testing.B) {
	ctx := benchContext(b)
	var r *experiments.AblationLCDataResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.AblationLCData(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.PassedOnlyAcc, "passedOnly_acc")
	b.ReportMetric(r.AllDataAcc, "allData_acc")
}

// BenchmarkCDLNClassifyEasy times Algorithm 2 on an input that exits at
// stage 1 — the common case whose cost the whole paper is about.
func BenchmarkCDLNClassifyEasy(b *testing.B) {
	ctx := benchContext(b)
	cdln, _, err := ctx.MNIST3C()
	if err != nil {
		b.Fatal(err)
	}
	_, testS, err := ctx.Data()
	if err != nil {
		b.Fatal(err)
	}
	replica := cdln.Clone()
	// Find an input that exits at O1 and one that reaches FC.
	easy := -1
	for i := range testS {
		if rec := replica.Classify(testS[i].X); rec.StageIndex == 0 {
			easy = i
			break
		}
	}
	if easy < 0 {
		b.Skip("no early-exit input found")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replica.Classify(testS[easy].X)
	}
}

// BenchmarkCDLNClassifyHard times Algorithm 2 on an input that travels the
// whole cascade.
func BenchmarkCDLNClassifyHard(b *testing.B) {
	ctx := benchContext(b)
	cdln, _, err := ctx.MNIST3C()
	if err != nil {
		b.Fatal(err)
	}
	_, testS, err := ctx.Data()
	if err != nil {
		b.Fatal(err)
	}
	replica := cdln.Clone()
	hard := -1
	fc := len(replica.Stages)
	for i := range testS {
		if rec := replica.Classify(testS[i].X); rec.StageIndex == fc {
			hard = i
			break
		}
	}
	if hard < 0 {
		b.Skip("no full-depth input found")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replica.Classify(testS[hard].X)
	}
}

// BenchmarkClassifyClonePerCall is the serving anti-pattern the session API
// replaces: clone a replica per request, then classify once. Compare
// against BenchmarkClassifySession — the gap is the per-request cost of
// Clone (fresh cache and gradient buffers for every layer) plus the
// per-call ExitOps/score allocations inside Classify.
func BenchmarkClassifyClonePerCall(b *testing.B) {
	ctx := benchContext(b)
	cdln, _, err := ctx.MNIST3C()
	if err != nil {
		b.Fatal(err)
	}
	_, testS, err := ctx.Data()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replica := cdln.Clone()
		replica.Classify(testS[i%len(testS)].X)
	}
}

// BenchmarkClassifySession is the pooled serving path: one warm
// core.Session (pre-cloned replica, precomputed exit costs, reused score
// buffers) classifying request after request.
func BenchmarkClassifySession(b *testing.B) {
	ctx := benchContext(b)
	cdln, _, err := ctx.MNIST3C()
	if err != nil {
		b.Fatal(err)
	}
	_, testS, err := ctx.Data()
	if err != nil {
		b.Fatal(err)
	}
	sess, err := core.NewSession(cdln)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.Classify(testS[i%len(testS)].X)
	}
}

// BenchmarkEvaluateParallel times the full-dataset evaluation path (which
// now rides the session API internally: one clone per worker, zero
// per-sample cascade allocations).
func BenchmarkEvaluateParallel(b *testing.B) {
	ctx := benchContext(b)
	cdln, _, err := ctx.MNIST3C()
	if err != nil {
		b.Fatal(err)
	}
	_, testS, err := ctx.Data()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Evaluate(cdln, testS, 0, false)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(len(testS))/b.Elapsed().Seconds()*float64(b.N), "images/s")
			b.ReportMetric(res.NormalizedOps(), "normOPS")
		}
	}
}

// BenchmarkBaselineForward28x28 is the reference cost of an unconditioned
// inference, for comparing against the two Classify benchmarks above.
func BenchmarkBaselineForward28x28(b *testing.B) {
	net := nn.Arch8Layer(rand.New(rand.NewSource(1))).Net
	x := tensor.New(1, mnist.Side, mnist.Side)
	for i := range x.Data {
		x.Data[i] = rand.New(rand.NewSource(2)).Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}

// BenchmarkSyntheticMNISTGen times the dataset substrate.
func BenchmarkSyntheticMNISTGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := mnist.Generate(mnist.GenConfig{N: 10, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}
