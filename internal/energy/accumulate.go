package energy

import (
	"fmt"

	"cdl/internal/core"
)

// Accumulator aggregates 45 nm energy incrementally, one ExitRecord at a
// time, instead of summarizing a whole EvalResult after the fact. It is the
// serving-path counterpart of Evaluator.FromEval: a long-running server
// feeds it every classified input and can read a Summary at any moment
// without retaining per-sample records.
//
// Per-class attribution uses the record's *predicted* label — at serving
// time the true label is unknown. FromEval, which sees labelled
// evaluations, attributes by true label; the aggregate (mean, total,
// per-exit) numbers agree between the two.
//
// An Accumulator is not safe for concurrent use; shard per worker and
// Merge, or guard with a lock.
type Accumulator struct {
	exits    []float64 // pJ of exiting at each exit point
	baseline float64   // pJ of one full baseline pass
	classes  int

	count     int64
	total     float64 // summed pJ over all inputs
	perExit   []int64
	perClass  []float64
	perClassN []int64
}

// NewAccumulator validates the accelerator and precomputes the CDLN's exit
// energies so Add is O(1) per record.
func (e Evaluator) NewAccumulator(c *core.CDLN) (*Accumulator, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return e.NewGraphAccumulator(core.LinearGraph(c))
}

// NewGraphAccumulator is NewAccumulator for a routing graph: per-exit
// tables are sized and costed by the graph's global exit numbering
// (Graph.NumExits / GraphExitEnergies), so branch exits accumulate their
// whole-path energy. Labels are in the trunk's class space (branch records
// carry mapped labels), and the baseline is the trunk's unconditioned
// pass — the same normalization denominator the linear accounting uses.
func (e Evaluator) NewGraphAccumulator(g *core.Graph) (*Accumulator, error) {
	if err := e.Acc.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	classes := g.Trunk().Arch.NumClasses
	return &Accumulator{
		exits:     e.GraphExitEnergies(g),
		baseline:  e.BaselineEnergy(g.Trunk()),
		classes:   classes,
		perExit:   make([]int64, g.NumExits()),
		perClass:  make([]float64, classes),
		perClassN: make([]int64, classes),
	}, nil
}

// Add charges one classified input to the counters. Records with an exit
// index or label outside the model the accumulator was built for are
// rejected.
func (a *Accumulator) Add(rec core.ExitRecord) error {
	if rec.StageIndex < 0 || rec.StageIndex >= len(a.exits) {
		return fmt.Errorf("energy: exit index %d outside [0,%d)", rec.StageIndex, len(a.exits))
	}
	if rec.Label < 0 || rec.Label >= a.classes {
		return fmt.Errorf("energy: label %d outside [0,%d)", rec.Label, a.classes)
	}
	pj := a.exits[rec.StageIndex]
	a.count++
	a.total += pj
	a.perExit[rec.StageIndex]++
	a.perClass[rec.Label] += pj
	a.perClassN[rec.Label]++
	return nil
}

// Merge folds another accumulator's counters into this one. Both must have
// been built for the same CDLN/accelerator pair.
func (a *Accumulator) Merge(b *Accumulator) error {
	if len(a.exits) != len(b.exits) || a.classes != b.classes {
		return fmt.Errorf("energy: merging accumulators of different shapes (%d/%d exits, %d/%d classes)",
			len(a.exits), len(b.exits), a.classes, b.classes)
	}
	a.count += b.count
	a.total += b.total
	for i := range a.perExit {
		a.perExit[i] += b.perExit[i]
	}
	for c := range a.perClass {
		a.perClass[c] += b.perClass[c]
		a.perClassN[c] += b.perClassN[c]
	}
	return nil
}

// Count returns the number of inputs charged so far.
func (a *Accumulator) Count() int64 { return a.count }

// TotalEnergy returns the summed pJ over all inputs charged so far.
func (a *Accumulator) TotalEnergy() float64 { return a.total }

// MeanEnergy returns the mean pJ per charged input (0 before any Add) —
// the windowless counterpart of the telemetry the SLO controller's energy
// target is evaluated against.
func (a *Accumulator) MeanEnergy() float64 {
	if a.count == 0 {
		return 0
	}
	return a.total / float64(a.count)
}

// BaselineEnergy returns the pJ cost of one unconditioned baseline pass.
func (a *Accumulator) BaselineEnergy() float64 { return a.baseline }

// ExitEnergy returns the pJ cost of exit point i.
func (a *Accumulator) ExitEnergy(i int) float64 { return a.exits[i] }

// ExitEnergies returns a copy of the per-exit pJ cost table — one entry
// per global exit point, indexed like ExitCounts. The serving layer's
// metrics exposition pairs the two to report energy per exit stage
// without walking the graph again.
func (a *Accumulator) ExitEnergies() []float64 {
	return append([]float64(nil), a.exits...)
}

// ExitCounts returns a copy of the per-exit input counts.
func (a *Accumulator) ExitCounts() []int64 {
	return append([]int64(nil), a.perExit...)
}

// Summary snapshots the counters in the same shape FromEval produces
// (per-class means keyed by predicted label; see type doc).
func (a *Accumulator) Summary() Summary {
	s := Summary{
		BaselineEnergy: a.baseline,
		PerClassMean:   make([]float64, a.classes),
		ExitEnergies:   append([]float64(nil), a.exits...),
	}
	if a.count > 0 {
		s.MeanEnergy = a.total / float64(a.count)
	}
	for c := range s.PerClassMean {
		if a.perClassN[c] > 0 {
			s.PerClassMean[c] = a.perClass[c] / float64(a.perClassN[c])
		}
	}
	return s
}
