package energy

import (
	"fmt"

	"cdl/internal/core"
)

// Link models the edge→cloud transmission cost of a split deployment: a
// per-byte energy plus a fixed per-offload overhead (packetization, radio
// wake-up). Like the 45 nm compute table it is a calibrated model knob, not
// a measurement — the defaults are chosen so link and displaced-compute
// energy land in the same band, which is the regime where the split-point
// choice is a real trade-off (cf. Long et al. 2020).
type Link struct {
	// PJPerByte is the transmission energy per payload byte. The default,
	// 400 pJ/byte (50 pJ/bit), is representative of ultra-low-power
	// short-range transceivers of the 45 nm generation; a WiFi-class radio
	// is orders of magnitude costlier and makes offloading always lose.
	PJPerByte float64
	// PerOffloadPJ is the fixed cost of one transfer regardless of size.
	PerOffloadPJ float64
}

// DefaultLink returns the reference link model.
func DefaultLink() Link { return Link{PJPerByte: 400, PerOffloadPJ: 20000} }

// Validate checks the link model.
func (l Link) Validate() error {
	if l.PJPerByte < 0 || l.PerOffloadPJ < 0 {
		return fmt.Errorf("energy: negative link cost %+v", l)
	}
	return nil
}

// TransferPJ returns the energy of shipping one payload of the given size.
func (l Link) TransferPJ(bytes int) float64 {
	return l.PerOffloadPJ + l.PJPerByte*float64(bytes)
}

// TierCosts precomputes the per-exit energy split of an edge–cloud
// deployment cut after SplitStage cascade stages: an input exiting at exit
// i consumed Edge[i] pJ on the edge tier and Cloud[i] pJ on the cloud tier
// (link energy is per-transfer, charged separately from actual wire bytes).
// Edge[i]+Cloud[i] always equals the monolithic exit energy, so tiered
// accounting never invents or loses compute energy — the split only moves
// it and adds the link.
type TierCosts struct {
	// SplitStage is the number of cascade stages the edge owns.
	SplitStage int
	// Edge[i] is the edge-tier pJ of an input exiting at exit i: the full
	// exit energy for local exits (i < SplitStage), the prefix energy for
	// offloaded ones.
	Edge []float64
	// Cloud[i] is the cloud-tier pJ of an input exiting at exit i; zero
	// for local exits.
	Cloud []float64
	// PrefixPJ is the edge-side cost of an offloaded input: the whole
	// prefix ran (including the last edge stage's classifier, whose
	// activation module declined to exit).
	PrefixPJ float64
	// BaselinePJ is one unconditioned full forward pass, for
	// normalization.
	BaselinePJ float64
	// Link is the transmission model used by accumulators built from
	// these costs.
	Link Link
}

// TierCosts derives the per-exit tier split for a cascade cut after
// splitStage stages (0 ships raw inputs, len(Stages) runs the whole
// cascade locally and offloads only FC-bound residues).
func (e Evaluator) TierCosts(c *core.CDLN, splitStage int, link Link) (*TierCosts, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return e.GraphTierCosts(core.LinearGraph(c), splitStage, link)
}

// GraphTierCosts is TierCosts for a routing graph split on the trunk after
// splitStage trunk stages. Trunk exits split exactly as in the linear
// case. A branch exit always implies an offload (routed inputs leave the
// trunk before the edge's share is done, and the branch runs on the
// cloud): its edge-side cost is the trunk prefix actually evaluated
// before departure — the trunk exit energy at the router stage when the
// route fired on the edge, the standard PrefixPJ when the input offloaded
// at the split before reaching the router — and the rest of the path is
// cloud compute. Edge[i]+Cloud[i] still equals the monolithic path energy
// for every exit, so the graph split moves compute without inventing it.
func (e Evaluator) GraphTierCosts(g *core.Graph, splitStage int, link Link) (*TierCosts, error) {
	if err := e.Acc.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := link.Validate(); err != nil {
		return nil, err
	}
	trunk := g.Trunk()
	if splitStage < 0 || splitStage > len(trunk.Stages) {
		return nil, fmt.Errorf("energy: split stage %d outside [0,%d]", splitStage, len(trunk.Stages))
	}
	exits := e.GraphExitEnergies(g)
	tc := &TierCosts{
		SplitStage: splitStage,
		Edge:       make([]float64, len(exits)),
		Cloud:      make([]float64, len(exits)),
		BaselinePJ: e.BaselineEnergy(trunk),
		Link:       link,
	}
	if splitStage > 0 {
		// An offloading input ran the prefix through stage splitStage−1,
		// classifier included — exactly the cost of exiting there.
		tc.PrefixPJ = exits[splitStage-1]
	}
	// departure[n] is the trunk stage at which inputs bound for node n
	// leave the trunk: the router stage of n's trunk-level ancestor.
	departure := make([]int, len(g.Nodes))
	for ni := 1; ni < len(g.Nodes); ni++ {
		anc, stage := g.ParentOf(ni)
		for anc != 0 {
			anc, stage = g.ParentOf(anc)
		}
		departure[ni] = stage
	}
	for i, pj := range exits {
		node, local := g.NodeOfExit(i)
		switch {
		case node == 0 && local < splitStage:
			tc.Edge[i] = pj // local trunk exit
		case node == 0:
			tc.Edge[i] = tc.PrefixPJ // offloaded at the split
			tc.Cloud[i] = pj - tc.PrefixPJ
		case departure[node] < splitStage:
			// The route fired on the edge: the edge paid the trunk prefix
			// through the router stage, then shipped the branch entry.
			tc.Edge[i] = exits[departure[node]]
			tc.Cloud[i] = pj - tc.Edge[i]
		default:
			// The input offloaded at the split before reaching the router;
			// the whole route and branch ran on the cloud.
			tc.Edge[i] = tc.PrefixPJ
			tc.Cloud[i] = pj - tc.PrefixPJ
		}
	}
	return tc, nil
}

// Offloaded reports whether an exit at index i implies the input crossed
// the link: the edge owns exits [0, SplitStage), everything deeper ran on
// the cloud.
func (tc *TierCosts) Offloaded(exitIndex int) bool { return exitIndex >= tc.SplitStage }

// TieredSummary is a snapshot of tiered energy accounting.
type TieredSummary struct {
	SplitStage int
	// Count is the number of inputs charged; Offloaded of them crossed
	// the link.
	Count     int64
	Offloaded int64
	// OffloadFraction is Offloaded/Count.
	OffloadFraction float64
	// WireBytes is the total payload shipped.
	WireBytes int64
	// EdgePJ/LinkPJ/CloudPJ/TotalPJ are summed over all inputs.
	EdgePJ  float64
	LinkPJ  float64
	CloudPJ float64
	TotalPJ float64
	// MeanEdgePJ/MeanLinkPJ/MeanCloudPJ/MeanTotalPJ are per input.
	MeanEdgePJ  float64
	MeanLinkPJ  float64
	MeanCloudPJ float64
	MeanTotalPJ float64
	// BaselinePJ is one unconditioned full pass; NormalizedTotal is
	// MeanTotalPJ over it (the monolithic CDLN's normalized energy plus
	// the link surcharge).
	BaselinePJ      float64
	NormalizedTotal float64
}

// TieredAccumulator aggregates per-tier energy one ExitRecord at a time —
// the split-deployment counterpart of Accumulator. Whether a record crossed
// the link is implied by its exit index (TierCosts.Offloaded); wire bytes
// are charged at the link model's rate. Not safe for concurrent use; guard
// with a lock or shard and sum snapshots.
type TieredAccumulator struct {
	costs *TierCosts

	count     int64
	offloaded int64
	wireBytes int64
	edgePJ    float64
	linkPJ    float64
	cloudPJ   float64
}

// NewAccumulator returns an empty accumulator over these tier costs.
func (tc *TierCosts) NewAccumulator() *TieredAccumulator {
	return &TieredAccumulator{costs: tc}
}

// Add charges one classified input: its exit's edge/cloud compute, and —
// when the exit lies past the split — one transfer of wireBytes payload.
// wireBytes is ignored for local exits (nothing was shipped).
func (a *TieredAccumulator) Add(rec core.ExitRecord, wireBytes int) error {
	if rec.StageIndex < 0 || rec.StageIndex >= len(a.costs.Edge) {
		return fmt.Errorf("energy: exit index %d outside [0,%d)", rec.StageIndex, len(a.costs.Edge))
	}
	if wireBytes < 0 {
		return fmt.Errorf("energy: negative wire bytes %d", wireBytes)
	}
	a.count++
	a.edgePJ += a.costs.Edge[rec.StageIndex]
	a.cloudPJ += a.costs.Cloud[rec.StageIndex]
	if a.costs.Offloaded(rec.StageIndex) {
		a.offloaded++
		a.wireBytes += int64(wireBytes)
		a.linkPJ += a.costs.Link.TransferPJ(wireBytes)
	}
	return nil
}

// Summary snapshots the counters.
func (a *TieredAccumulator) Summary() TieredSummary {
	s := TieredSummary{
		SplitStage: a.costs.SplitStage,
		Count:      a.count,
		Offloaded:  a.offloaded,
		WireBytes:  a.wireBytes,
		EdgePJ:     a.edgePJ,
		LinkPJ:     a.linkPJ,
		CloudPJ:    a.cloudPJ,
		TotalPJ:    a.edgePJ + a.linkPJ + a.cloudPJ,
		BaselinePJ: a.costs.BaselinePJ,
	}
	if a.count > 0 {
		n := float64(a.count)
		s.OffloadFraction = float64(a.offloaded) / n
		s.MeanEdgePJ = a.edgePJ / n
		s.MeanLinkPJ = a.linkPJ / n
		s.MeanCloudPJ = a.cloudPJ / n
		s.MeanTotalPJ = s.TotalPJ / n
		if s.BaselinePJ > 0 {
			s.NormalizedTotal = s.MeanTotalPJ / s.BaselinePJ
		}
	}
	return s
}
