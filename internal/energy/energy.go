// Package energy maps CDLN exit behaviour to hardware energy: it combines
// the per-layer 45 nm cost model (internal/hw) with the exit distribution
// measured by internal/core to produce the paper's energy results (Fig. 6:
// normalized energy benefits per digit; Fig. 8: energy benefit versus input
// difficulty).
package energy

import (
	"fmt"

	"cdl/internal/core"
	"cdl/internal/hw"
)

// Evaluator costs CDLN executions on a fixed accelerator configuration.
type Evaluator struct {
	Acc hw.Accelerator
}

// NewEvaluator returns an evaluator on the default 45 nm accelerator.
func NewEvaluator() Evaluator { return Evaluator{Acc: hw.Default45nm()} }

// ExitEnergies returns the energy (pJ) consumed by an input that exits at
// each exit point of the CDLN, mirroring core.CDLN.ExitOps: baseline layers
// executed through the exit's tap plus every stage classifier evaluated on
// the way.
func (e Evaluator) ExitEnergies(c *core.CDLN) []float64 {
	acts := hw.AnalyzeNetwork(c.Arch.Net)
	cum := e.Acc.CumulativeEnergy(acts)
	out := make([]float64, len(c.Stages)+1)
	lcSoFar := 0.0
	for i, s := range c.Stages {
		lcSoFar += e.Acc.LayerEnergy(hw.LinearClassifierActivity(s.LC.In, s.LC.Out)).Total()
		out[i] = cum[s.Tap] + lcSoFar
	}
	out[len(c.Stages)] = cum[len(cum)-1] + lcSoFar
	return out
}

// BaselineEnergy returns the energy of one full baseline forward pass — the
// normalization denominator of Figs. 6 and 8.
func (e Evaluator) BaselineEnergy(c *core.CDLN) float64 {
	acts := hw.AnalyzeNetwork(c.Arch.Net)
	return e.Acc.NetworkEnergy(acts).Total()
}

// GraphExitEnergies returns the energy (pJ) of each global exit point of a
// routing graph, mirroring core.Graph.ExitOps: the whole root-to-exit
// path's baseline layers and classifiers — the parent path through the
// router stage plus the branch's own cascade. For a linear graph this is
// exactly ExitEnergies of the trunk.
func (e Evaluator) GraphExitEnergies(g *core.Graph) []float64 {
	local := make([][]float64, len(g.Nodes))
	for i, n := range g.Nodes {
		local[i] = e.ExitEnergies(n.Model)
	}
	return g.FoldExitCosts(local)
}

// Summary reports the energy aggregation of one evaluation run.
type Summary struct {
	// MeanEnergy is the average pJ per input under early exit.
	MeanEnergy float64
	// BaselineEnergy is pJ per input for the unconditioned baseline.
	BaselineEnergy float64
	// PerClassMean is the average pJ per input of each class.
	PerClassMean []float64
	// ExitEnergies is the cost of each exit point.
	ExitEnergies []float64
}

// Normalized returns mean CDLN energy over baseline energy (the paper's
// normalized energy; lower is better).
func (s Summary) Normalized() float64 {
	if s.BaselineEnergy == 0 {
		return 0
	}
	return s.MeanEnergy / s.BaselineEnergy
}

// Improvement returns the baseline/CDLN energy ratio (the paper's
// "1.84x improvement in energy" style numbers).
func (s Summary) Improvement() float64 {
	if s.MeanEnergy == 0 {
		return 0
	}
	return s.BaselineEnergy / s.MeanEnergy
}

// ClassNormalized returns the per-class normalized energy (Fig. 6 bars).
func (s Summary) ClassNormalized(class int) float64 {
	if s.BaselineEnergy == 0 {
		return 0
	}
	return s.PerClassMean[class] / s.BaselineEnergy
}

// ClassImprovement returns the per-class energy improvement factor.
func (s Summary) ClassImprovement(class int) float64 {
	n := s.ClassNormalized(class)
	if n == 0 {
		return 0
	}
	return 1 / n
}

// FromEval converts a CDLN evaluation (exit counts per class) into an
// energy summary by weighting exit energies with the measured exit
// distribution.
func (e Evaluator) FromEval(c *core.CDLN, res *core.EvalResult) (Summary, error) {
	if err := e.Acc.Validate(); err != nil {
		return Summary{}, err
	}
	exits := e.ExitEnergies(c)
	if len(exits) != len(res.ExitCounts) {
		return Summary{}, fmt.Errorf("energy: CDLN has %d exits but eval has %d", len(exits), len(res.ExitCounts))
	}
	classes := c.Arch.NumClasses
	s := Summary{
		BaselineEnergy: e.BaselineEnergy(c),
		PerClassMean:   make([]float64, classes),
		ExitEnergies:   exits,
	}
	classTotals := make([]float64, classes)
	classCounts := make([]int, classes)
	total := 0.0
	n := 0
	for ei, counts := range res.ExitCounts {
		for class, cnt := range counts {
			classTotals[class] += float64(cnt) * exits[ei]
			classCounts[class] += cnt
			total += float64(cnt) * exits[ei]
			n += cnt
		}
	}
	if n > 0 {
		s.MeanEnergy = total / float64(n)
	}
	for class := range classTotals {
		if classCounts[class] > 0 {
			s.PerClassMean[class] = classTotals[class] / float64(classCounts[class])
		}
	}
	return s, nil
}
