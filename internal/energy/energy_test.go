package energy

import (
	"math/rand"
	"testing"

	"cdl/internal/core"
	"cdl/internal/mnist"
	"cdl/internal/nn"
	"cdl/internal/train"
)

// buildSmallCDLN trains a quick 6-layer CDLN on a small synthetic set.
func buildSmallCDLN(t *testing.T) (*core.CDLN, *core.EvalResult) {
	t.Helper()
	trainImgs, testImgs, err := mnist.GenerateSplit(300, 120, 5)
	if err != nil {
		t.Fatal(err)
	}
	trainS, testS := mnist.ToSamples(trainImgs), mnist.ToSamples(testImgs)
	arch := nn.Arch6Layer(rand.New(rand.NewSource(3)))
	cfg := train.Defaults(10)
	cfg.Epochs = 4
	if _, err := train.SGD(arch.Net, trainS, cfg); err != nil {
		t.Fatal(err)
	}
	bcfg := core.DefaultBuildConfig()
	bcfg.ForceAllStages = true
	cdln, _, err := core.Build(arch, trainS, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Evaluate(cdln, testS, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	return cdln, res
}

func TestExitEnergiesIncrease(t *testing.T) {
	cdln, _ := buildSmallCDLN(t)
	ev := NewEvaluator()
	exits := ev.ExitEnergies(cdln)
	if len(exits) != cdln.NumExits() {
		t.Fatalf("exit energies %d, want %d", len(exits), cdln.NumExits())
	}
	for i := 1; i < len(exits); i++ {
		if exits[i] <= exits[i-1] {
			t.Error("exit energies must increase with depth")
		}
	}
	// Early exit must be cheaper than baseline; the final exit costs more
	// than baseline (it also paid the stage classifiers).
	base := ev.BaselineEnergy(cdln)
	if exits[0] >= base {
		t.Errorf("O1 exit energy %v should be below baseline %v", exits[0], base)
	}
	if exits[len(exits)-1] <= base {
		t.Errorf("FC exit energy %v should exceed baseline %v", exits[len(exits)-1], base)
	}
}

func TestFromEvalAccounting(t *testing.T) {
	cdln, res := buildSmallCDLN(t)
	ev := NewEvaluator()
	sum, err := ev.FromEval(cdln, res)
	if err != nil {
		t.Fatal(err)
	}
	if sum.MeanEnergy <= 0 || sum.BaselineEnergy <= 0 {
		t.Fatalf("summary %+v", sum)
	}
	// Mean energy must lie between the cheapest and most expensive exits.
	if sum.MeanEnergy < sum.ExitEnergies[0] || sum.MeanEnergy > sum.ExitEnergies[len(sum.ExitEnergies)-1] {
		t.Errorf("mean %v outside exit range [%v, %v]",
			sum.MeanEnergy, sum.ExitEnergies[0], sum.ExitEnergies[len(sum.ExitEnergies)-1])
	}
	// Per-class means weighted by class counts must reproduce the mean.
	total, n := 0.0, 0
	for c, m := range sum.PerClassMean {
		cnt := res.Confusion.ClassCount(c)
		total += m * float64(cnt)
		n += cnt
	}
	recon := total / float64(n)
	if d := recon - sum.MeanEnergy; d > 1e-6 || d < -1e-6 {
		t.Errorf("per-class reconstruction %v != mean %v", recon, sum.MeanEnergy)
	}
	// Improvement and Normalized are inverses.
	if v := sum.Normalized() * sum.Improvement(); v < 0.999 || v > 1.001 {
		t.Errorf("Normalized×Improvement = %v", v)
	}
}

func TestEnergyImprovementTracksOpsImprovement(t *testing.T) {
	// The paper reports energy improvement slightly below OPS improvement
	// (1.84x vs 1.91x). Our model must at least agree on direction: if OPS
	// improve, energy improves, within a reasonable band of each other.
	cdln, res := buildSmallCDLN(t)
	ev := NewEvaluator()
	sum, err := ev.FromEval(cdln, res)
	if err != nil {
		t.Fatal(err)
	}
	opsImp := 1 / res.NormalizedOps()
	enImp := sum.Improvement()
	if opsImp > 1.05 && enImp <= 1.0 {
		t.Errorf("OPS improved %.2fx but energy did not (%.2fx)", opsImp, enImp)
	}
	ratio := enImp / opsImp
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("energy improvement %.2fx wildly diverges from OPS %.2fx", enImp, opsImp)
	}
}

func TestClassNormalizedConsistency(t *testing.T) {
	cdln, res := buildSmallCDLN(t)
	ev := NewEvaluator()
	sum, err := ev.FromEval(cdln, res)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 10; c++ {
		n := sum.ClassNormalized(c)
		if n < 0 {
			t.Errorf("class %d normalized energy %v < 0", c, n)
		}
		if n > 0 {
			imp := sum.ClassImprovement(c)
			if v := n * imp; v < 0.999 || v > 1.001 {
				t.Errorf("class %d normalized×improvement = %v", c, v)
			}
		}
	}
}

func TestFromEvalMismatch(t *testing.T) {
	cdln, res := buildSmallCDLN(t)
	ev := NewEvaluator()
	// Corrupt the exit table to trigger the mismatch check.
	res.ExitCounts = res.ExitCounts[:1]
	if _, err := ev.FromEval(cdln, res); err == nil {
		t.Error("exit-count mismatch accepted")
	}
}
