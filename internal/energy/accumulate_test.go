package energy

import (
	"math"
	"testing"

	"cdl/internal/core"
	"cdl/internal/mnist"
)

// evalWithRecords re-runs the small fixture keeping per-sample records.
func evalWithRecords(t *testing.T) (*core.CDLN, *core.EvalResult) {
	t.Helper()
	cdln, _ := buildSmallCDLN(t)
	_, testImgs, err := mnist.GenerateSplit(1, 120, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Evaluate(cdln, mnist.ToSamples(testImgs), 0, true)
	if err != nil {
		t.Fatal(err)
	}
	return cdln, res
}

// TestAccumulatorMatchesFromEval feeds an evaluation's records through the
// incremental path and checks the aggregate numbers agree with the batch
// summary (per-class means legitimately differ: predicted vs true label).
func TestAccumulatorMatchesFromEval(t *testing.T) {
	cdln, res := evalWithRecords(t)
	ev := NewEvaluator()
	want, err := ev.FromEval(cdln, res)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := ev.NewAccumulator(cdln)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Records {
		if err := acc.Add(rec); err != nil {
			t.Fatal(err)
		}
	}
	got := acc.Summary()
	if acc.Count() != int64(len(res.Records)) {
		t.Fatalf("count %d, want %d", acc.Count(), len(res.Records))
	}
	if math.Abs(got.MeanEnergy-want.MeanEnergy) > 1e-6 {
		t.Errorf("mean %v != FromEval %v", got.MeanEnergy, want.MeanEnergy)
	}
	if math.Abs(acc.MeanEnergy()-got.MeanEnergy) > 1e-12 {
		t.Errorf("MeanEnergy() %v != Summary().MeanEnergy %v", acc.MeanEnergy(), got.MeanEnergy)
	}
	if got.BaselineEnergy != want.BaselineEnergy {
		t.Errorf("baseline %v != %v", got.BaselineEnergy, want.BaselineEnergy)
	}
	if math.Abs(got.Normalized()-want.Normalized()) > 1e-9 {
		t.Errorf("normalized %v != %v", got.Normalized(), want.Normalized())
	}
	// Per-exit counts must match the evaluation's exit distribution.
	counts := acc.ExitCounts()
	for e := range res.ExitCounts {
		sum := int64(0)
		for _, v := range res.ExitCounts[e] {
			sum += int64(v)
		}
		if counts[e] != sum {
			t.Errorf("exit %d count %d, want %d", e, counts[e], sum)
		}
	}
}

// TestAccumulatorMerge shards records across two accumulators and merges.
func TestAccumulatorMerge(t *testing.T) {
	cdln, res := evalWithRecords(t)
	ev := NewEvaluator()
	whole, err := ev.NewAccumulator(cdln)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := ev.NewAccumulator(cdln)
	b, _ := ev.NewAccumulator(cdln)
	for i, rec := range res.Records {
		if err := whole.Add(rec); err != nil {
			t.Fatal(err)
		}
		shard := a
		if i%2 == 1 {
			shard = b
		}
		if err := shard.Add(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != whole.Count() || math.Abs(a.TotalEnergy()-whole.TotalEnergy()) > 1e-6 {
		t.Errorf("merged (%d, %v) != whole (%d, %v)",
			a.Count(), a.TotalEnergy(), whole.Count(), whole.TotalEnergy())
	}
}

// TestAccumulatorRejects covers the bounds checks and shape-mismatch merge.
func TestAccumulatorRejects(t *testing.T) {
	cdln, _ := evalWithRecords(t)
	ev := NewEvaluator()
	acc, err := ev.NewAccumulator(cdln)
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Add(core.ExitRecord{StageIndex: cdln.NumExits()}); err == nil {
		t.Error("out-of-range exit accepted")
	}
	if err := acc.Add(core.ExitRecord{Label: -1}); err == nil {
		t.Error("negative label accepted")
	}
	other := &Accumulator{exits: []float64{1}, classes: 1, perExit: []int64{0},
		perClass: []float64{0}, perClassN: []int64{0}}
	if err := acc.Merge(other); err == nil {
		t.Error("shape-mismatched merge accepted")
	}
}
