package energy

import (
	"math"
	"testing"

	"cdl/internal/core"
)

// TestTierCostsConserveEnergy is the tier-split conservation law: for every
// split stage and exit point, edge + cloud compute must equal the
// monolithic exit energy exactly — the split moves energy between tiers, it
// never creates or destroys it.
func TestTierCostsConserveEnergy(t *testing.T) {
	cdln, _ := buildSmallCDLN(t)
	ev := NewEvaluator()
	exits := ev.ExitEnergies(cdln)
	for split := 0; split <= len(cdln.Stages); split++ {
		tc, err := ev.TierCosts(cdln, split, DefaultLink())
		if err != nil {
			t.Fatal(err)
		}
		for i := range exits {
			if got := tc.Edge[i] + tc.Cloud[i]; got != exits[i] {
				t.Errorf("split %d exit %d: edge %v + cloud %v != monolithic %v",
					split, i, tc.Edge[i], tc.Cloud[i], exits[i])
			}
			if i < split {
				if tc.Cloud[i] != 0 {
					t.Errorf("split %d: local exit %d charged %v pJ to the cloud", split, i, tc.Cloud[i])
				}
				if tc.Offloaded(i) {
					t.Errorf("split %d: exit %d marked offloaded", split, i)
				}
			} else {
				if tc.Edge[i] != tc.PrefixPJ {
					t.Errorf("split %d: offloaded exit %d edge cost %v != prefix %v", split, i, tc.Edge[i], tc.PrefixPJ)
				}
				if !tc.Offloaded(i) {
					t.Errorf("split %d: exit %d not marked offloaded", split, i)
				}
			}
		}
		if split == 0 && tc.PrefixPJ != 0 {
			t.Errorf("split 0 prefix cost %v, want 0", tc.PrefixPJ)
		}
		if split > 0 && tc.PrefixPJ != exits[split-1] {
			t.Errorf("split %d prefix cost %v, want exit cost %v", split, tc.PrefixPJ, exits[split-1])
		}
	}
}

func TestTierCostsValidation(t *testing.T) {
	cdln, _ := buildSmallCDLN(t)
	ev := NewEvaluator()
	if _, err := ev.TierCosts(cdln, -1, DefaultLink()); err == nil {
		t.Error("negative split accepted")
	}
	if _, err := ev.TierCosts(cdln, len(cdln.Stages)+1, DefaultLink()); err == nil {
		t.Error("too-deep split accepted")
	}
	if _, err := ev.TierCosts(cdln, 0, Link{PJPerByte: -1}); err == nil {
		t.Error("negative link cost accepted")
	}
}

// TestTieredAccumulator charges a synthetic exit mix and checks totals,
// offload accounting and the lossless-link identity: total minus link
// equals what the monolithic accumulator would have charged.
func TestTieredAccumulator(t *testing.T) {
	cdln, _ := buildSmallCDLN(t)
	ev := NewEvaluator()
	link := Link{PJPerByte: 100, PerOffloadPJ: 1000}
	const split = 1
	tc, err := ev.TierCosts(cdln, split, link)
	if err != nil {
		t.Fatal(err)
	}
	acc := tc.NewAccumulator()
	mono, err := ev.NewAccumulator(cdln)
	if err != nil {
		t.Fatal(err)
	}

	const wireBytes = 256
	records := []core.ExitRecord{
		{StageIndex: 0, Label: 1}, // local exit
		{StageIndex: 0, Label: 4},
		{StageIndex: len(cdln.Stages), Label: 2}, // FC via cloud
		{StageIndex: split, Label: 0},            // first cloud stage
	}
	offloads := 0
	for _, rec := range records {
		if err := acc.Add(rec, wireBytes); err != nil {
			t.Fatal(err)
		}
		if err := mono.Add(rec); err != nil {
			t.Fatal(err)
		}
		if tc.Offloaded(rec.StageIndex) {
			offloads++
		}
	}

	s := acc.Summary()
	if s.Count != int64(len(records)) || s.Offloaded != int64(offloads) {
		t.Fatalf("count %d/%d, want %d/%d", s.Count, s.Offloaded, len(records), offloads)
	}
	if want := float64(offloads) / float64(len(records)); s.OffloadFraction != want {
		t.Errorf("offload fraction %v, want %v", s.OffloadFraction, want)
	}
	if s.WireBytes != int64(offloads*wireBytes) {
		t.Errorf("wire bytes %d, want %d", s.WireBytes, offloads*wireBytes)
	}
	if want := float64(offloads) * link.TransferPJ(wireBytes); s.LinkPJ != want {
		t.Errorf("link pJ %v, want %v", s.LinkPJ, want)
	}
	if math.Abs((s.TotalPJ-s.LinkPJ)-mono.TotalEnergy()) > 1e-6 {
		t.Errorf("tiered compute %v != monolithic %v", s.TotalPJ-s.LinkPJ, mono.TotalEnergy())
	}
	if s.MeanTotalPJ <= 0 || s.NormalizedTotal <= 0 {
		t.Errorf("summary means not populated: %+v", s)
	}
	if s.TotalPJ != s.EdgePJ+s.LinkPJ+s.CloudPJ {
		t.Errorf("total %v != edge+link+cloud", s.TotalPJ)
	}
}

func TestTieredAccumulatorRejects(t *testing.T) {
	cdln, _ := buildSmallCDLN(t)
	tc, err := NewEvaluator().TierCosts(cdln, 1, DefaultLink())
	if err != nil {
		t.Fatal(err)
	}
	acc := tc.NewAccumulator()
	if err := acc.Add(core.ExitRecord{StageIndex: -1}, 0); err == nil {
		t.Error("negative exit accepted")
	}
	if err := acc.Add(core.ExitRecord{StageIndex: len(cdln.Stages) + 1}, 0); err == nil {
		t.Error("out-of-range exit accepted")
	}
	if err := acc.Add(core.ExitRecord{StageIndex: 1}, -5); err == nil {
		t.Error("negative wire bytes accepted")
	}
	if got := acc.Summary().Count; got != 0 {
		t.Errorf("rejected records charged: count %d", got)
	}
}
