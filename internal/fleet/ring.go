// Package fleet is the multi-machine serving tier: an HTTP front door
// (Router) that fans /v1 and /v2 traffic across N cdlserve backends.
// Routing is model-aware — requests are placed on a consistent-hash ring
// keyed by (model, input hash) so a given input keeps landing on the same
// replica while that replica stays cache- and branch-warm — with
// bounded-load overflow to the next ring node when the preferred backend
// is saturated. Backends are health-probed (/readyz) and load-weighted
// from their own exported telemetry (/metricsz or the /statsz summary);
// tail latency is clipped by hedged requests (after a per-model p95
// deadline the straggler's input is re-sent to a second backend and the
// first answer wins); and PUT /v2/models/{name} at the router performs a
// rolling fleet hot-swap, draining and swapping backend by backend on top
// of the registry's zero-drop per-node swap.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over member indices: each member owns
// `replicas` pseudo-randomly placed virtual points, and a key is served by
// the member owning the first point at or after the key's hash. The two
// properties the fleet relies on are pinned by ring_test.go: stability
// (the same key maps to the same member as long as that member exists) and
// minimal disruption (when a member joins or leaves, the only keys that
// move are the ones the joiner acquires or the leaver owned — everything
// else stays put, so the rest of the fleet keeps its warm working set).
//
// A Ring is immutable after New; membership changes build a new Ring.
type Ring struct {
	replicas int
	members  []string
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member int
}

// DefaultReplicas is the virtual-node count per member: enough that a
// member's share of the key space concentrates near 1/N (the spread decays
// like 1/sqrt(replicas)) while keeping the ring a few KB.
const DefaultReplicas = 128

// NewRing builds a ring over the member names (backend identities — the
// names, not their loads, determine placement). replicas <= 0 uses
// DefaultReplicas. Member order does not affect placement; duplicate
// members are rejected.
func NewRing(members []string, replicas int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("fleet: ring needs at least one member")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if seen[m] {
			return nil, fmt.Errorf("fleet: duplicate ring member %q", m)
		}
		seen[m] = true
	}
	r := &Ring{
		replicas: replicas,
		members:  append([]string(nil), members...),
		points:   make([]ringPoint, 0, len(members)*replicas),
	}
	for mi, m := range r.members {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: HashKey(m + "#" + strconv.Itoa(v)), member: mi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Identical virtual-point hashes (astronomically rare) tie-break
		// on member so the ring is deterministic whatever the input order.
		return a.member < b.member
	})
	return r, nil
}

// Members returns the ring's member names in construction order.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// HashKey is the ring's key hash: FNV-1a 64 through a 64-bit finalizer.
// Cheap, stateless and stable across processes, so a router restart
// re-derives the same placement. The finalizer matters: raw FNV-1a on
// near-identical strings (virtual-node suffixes "#0".."#127", sequential
// request keys) leaves correlated high bits, which clumps vnodes on the
// ring and skews member shares well past the expected 1/sqrt(replicas)
// wobble; full-avalanche mixing restores uniform placement.
func HashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return mix64(h.Sum64())
}

// HashRequest derives a placement key from a request's model name and raw
// body bytes — the (model, input-hash) key that keeps identical inputs on
// the same cache-warm backend. The NUL separator keeps ("ab","c") and
// ("a","bc") distinct.
func HashRequest(model string, body []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(model))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write(body)
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a bijective full-avalanche mix.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Owner returns the member index owning key — the primary placement.
func (r *Ring) Owner(key uint64) int {
	return r.points[r.search(key)].member
}

// Seq returns all member indices in ring order starting from key's owner:
// Seq(key)[0] is the primary, Seq(key)[1] the first overflow target
// (bounded-load spill, hedge target, failover), and so on. Every member
// appears exactly once.
func (r *Ring) Seq(key uint64) []int {
	out := make([]int, 0, len(r.members))
	seen := make([]bool, len(r.members))
	for i, n := r.search(key), 0; n < len(r.points) && len(out) < len(r.members); i, n = (i+1)%len(r.points), n+1 {
		m := r.points[i].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// search finds the index of the first point at or after key, wrapping.
func (r *Ring) search(key uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		return 0
	}
	return i
}
