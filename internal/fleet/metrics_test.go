package fleet

// metrics_test.go: the router's /metricsz exposition is golden-pinned —
// renamed families, re-ordered series or changed label sets break scrape
// dashboards silently, so the full text output is pinned byte-for-byte
// against testdata/router_metricsz.golden (regenerate deliberately with
// go test ./internal/fleet -run TestRouterMetricszGolden -update).

import (
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// newQuietRouter builds a router whose two backends are unreachable
// (nothing listens on 127.0.0.1:1/:2) with an hour-long probe interval:
// the construction-time probe round fails deterministically once per
// backend and nothing else ever fires, so every counter in the exposition
// is reproducible.
func newQuietRouter(t *testing.T) *Router {
	t.Helper()
	rt, err := New(Config{
		Backends:      []string{"http://127.0.0.1:1", "http://127.0.0.1:2"},
		ProbeInterval: time.Hour,
		ProbeTimeout:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func TestRouterMetricszGolden(t *testing.T) {
	rt := newQuietRouter(t)

	// Seed deterministic traffic counters: two models with distinct
	// outcomes, fixed latency observations (bucket placement is what the
	// golden pins, and the histogram bounds are fixed by construction).
	def := rt.metrics.model("default")
	def.requests.Add(7)
	def.retries.Add(1)
	def.sheds.Add(2)
	def.hedgesSent.Add(3)
	def.hedgeWins.Add(1)
	def.hedgeLosses.Add(2)
	for _, ms := range []float64{0.8, 2.5, 2.6, 40, 900} {
		def.observeLatency(ms)
	}
	alt := rt.metrics.model("alt")
	alt.requests.Add(2)
	alt.observeLatency(12)

	rt.metrics.probeErrors.Add(4)
	rt.metrics.swaps.Add(2)
	rt.metrics.swapFailures.Add(1)
	rt.backends[0].requests.Add(9)
	rt.backends[0].errors.Add(1)
	rt.backends[0].setLoad(3, 0.25, 17.5)
	rt.backends[1].inflight.Add(2)

	req := httptest.NewRequest("GET", "/metricsz", nil)
	rec := httptest.NewRecorder()
	rt.handleMetricsz(rec, req)

	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type %q", ct)
	}
	// The build-info labels embed the toolchain version; mask them so the
	// golden stays byte-stable across go upgrades (the family's presence
	// and label names are still pinned).
	got := regexp.MustCompile(`cdl_build_info\{[^}]*\}`).
		ReplaceAll(rec.Body.Bytes(), []byte(`cdl_build_info{MASKED}`))
	golden := filepath.Join("testdata", "router_metricsz.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("router /metricsz drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestRouterMetricszCardinalityCap: model labels come from URL paths, so
// the per-model series map must stop growing at the cap and fold the
// overflow into one bucket.
func TestRouterMetricszCardinalityCap(t *testing.T) {
	rt := newQuietRouter(t)
	for i := 0; i < maxModelSeries+50; i++ {
		rt.metrics.model("m" + strconv.Itoa(i)).requests.Add(1)
	}
	rt.metrics.mu.Lock()
	n := len(rt.metrics.models)
	_, hasOverflow := rt.metrics.models[overflowModel]
	rt.metrics.mu.Unlock()
	if n > maxModelSeries+1 {
		t.Errorf("model series grew to %d, cap is %d", n, maxModelSeries)
	}
	if !hasOverflow {
		t.Error("overflow bucket missing after exceeding the cap")
	}
	over := rt.metrics.model(overflowModel)
	if over.requests.Load() == 0 {
		t.Error("overflow bucket counted nothing")
	}
}
