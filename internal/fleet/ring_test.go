package fleet

// ring_test.go: table-driven consistent-hash ring properties. The two
// contracts the fleet depends on are stability (a key's owner never
// changes while membership holds) and minimal disruption (a join or leave
// moves only the keys the joiner acquires or the leaver owned — for a
// balanced ring, about 1/N of them and never more than a small multiple).

import (
	"fmt"
	"testing"
)

func ringMembers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

func testKeys(k int) []uint64 {
	out := make([]uint64, k)
	for i := range out {
		out[i] = HashKey(fmt.Sprintf("key-%d", i))
	}
	return out
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Error("duplicate member accepted")
	}
}

// TestRingStability: owners are a pure function of membership — not of
// construction order, not of repeated construction.
func TestRingStability(t *testing.T) {
	members := ringMembers(5)
	r1, err := NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Same membership in reversed order.
	rev := make([]string, len(members))
	for i, m := range members {
		rev[len(members)-1-i] = m
	}
	r3, err := NewRing(rev, 0)
	if err != nil {
		t.Fatal(err)
	}
	n1, n3 := r1.Members(), r3.Members()
	for _, key := range testKeys(2000) {
		if a, b := r1.Owner(key), r2.Owner(key); a != b {
			t.Fatalf("key %x: owner differs across identical constructions (%d vs %d)", key, a, b)
		}
		if n1[r1.Owner(key)] != n3[r3.Owner(key)] {
			t.Fatalf("key %x: owner depends on member order", key)
		}
	}
}

// TestRingSeq: the failover sequence is a permutation of all members
// starting at the owner.
func TestRingSeq(t *testing.T) {
	r, err := NewRing(ringMembers(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range testKeys(200) {
		seq := r.Seq(key)
		if len(seq) != 4 {
			t.Fatalf("key %x: seq length %d, want 4", key, len(seq))
		}
		if seq[0] != r.Owner(key) {
			t.Fatalf("key %x: seq starts at %d, owner is %d", key, seq[0], r.Owner(key))
		}
		seen := make(map[int]bool)
		for _, m := range seq {
			if seen[m] {
				t.Fatalf("key %x: member %d appears twice in seq", key, m)
			}
			seen[m] = true
		}
	}
}

// TestRingMinimalDisruption is the join/leave movement table: across fleet
// sizes, a membership change of one node moves only that node's keys, and
// their fraction stays near 1/N.
func TestRingMinimalDisruption(t *testing.T) {
	const keyCount = 4000
	keys := testKeys(keyCount)
	for _, tc := range []struct {
		n int // fleet size before the join
	}{{2}, {3}, {5}, {8}} {
		t.Run(fmt.Sprintf("n=%d", tc.n), func(t *testing.T) {
			before, err := NewRing(ringMembers(tc.n), 0)
			if err != nil {
				t.Fatal(err)
			}
			after, err := NewRing(ringMembers(tc.n+1), 0) // same members + one
			if err != nil {
				t.Fatal(err)
			}
			bn, an := before.Members(), after.Members()
			joiner := an[tc.n]

			moved := 0
			for _, key := range keys {
				ob, oa := bn[before.Owner(key)], an[after.Owner(key)]
				if ob == oa {
					continue
				}
				moved++
				// Every moved key must have moved TO the joiner; any other
				// movement is gratuitous disruption.
				if oa != joiner {
					t.Fatalf("key %x moved %s → %s, not to the joiner %s", key, ob, oa, joiner)
				}
			}
			// The joiner's fair share is 1/(n+1). Virtual-node placement
			// wobbles around it; 1.7× fair share with 4000 keys and 128
			// vnodes is far beyond observed variance while still failing any
			// real imbalance (naive mod-N hashing would move ~n/(n+1)).
			fair := float64(keyCount) / float64(tc.n+1)
			if got := float64(moved); got > 1.7*fair {
				t.Errorf("join moved %d keys; fair share is %.0f", moved, fair)
			}
			if moved == 0 {
				t.Error("join moved nothing — the joiner owns no keyspace")
			}

			// Leave is the mirror image: removing the joiner moves exactly
			// the keys it owned, back to survivors.
			for _, key := range keys {
				oa := an[after.Owner(key)]
				ob := bn[before.Owner(key)]
				if oa == joiner {
					continue // these must move on leave
				}
				if oa != ob {
					t.Fatalf("key %x owned by survivor %s changed owner on leave (%s)", key, oa, ob)
				}
			}
		})
	}
}

// TestRingSpread sanity-checks balance: with 128 vnodes each member's
// share of a large key set stays within a factor of two of fair.
func TestRingSpread(t *testing.T) {
	const n, keyCount = 4, 8000
	r, err := NewRing(ringMembers(n), 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, n)
	for _, key := range testKeys(keyCount) {
		counts[r.Owner(key)]++
	}
	fair := keyCount / n
	for m, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Errorf("member %d owns %d keys; fair share is %d (spread too lumpy)", m, c, fair)
		}
	}
}

func BenchmarkRingOwner(b *testing.B) {
	r, err := NewRing(ringMembers(16), 0)
	if err != nil {
		b.Fatal(err)
	}
	keys := testKeys(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Owner(keys[i%len(keys)])
	}
}
