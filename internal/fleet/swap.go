package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"cdl/internal/obs"
	"cdl/internal/serve"
)

// SwapResult is one backend's outcome within a rolling fleet swap.
type SwapResult struct {
	Backend string `json:"backend"`
	Status  int    `json:"status"`
	Version int    `json:"version,omitempty"`
	Error   string `json:"error,omitempty"`
}

// SwapResponse reports a rolling fleet swap: per-backend results in swap
// order plus the fleet-level outcome. Swapped counts backends that
// published the new model; on a mid-fleet failure the swap stops (leaving
// the remaining backends on the old version, which the zero-drop registry
// keeps serving) and Failed names the backend that refused.
type SwapResponse struct {
	Model   string       `json:"model"`
	Swapped int          `json:"swapped"`
	Total   int          `json:"total"`
	Failed  string       `json:"failed,omitempty"`
	Results []SwapResult `json:"results"`
}

// handleRollingSwap fans a model (or branch) PUT across the fleet one
// backend at a time: mark the backend draining so the picker steers new
// traffic to its ring successors, forward the PUT (the backend's own
// registry swap is zero-drop — in-flight requests finish on the old
// version), then re-admit it and move on. One backend is draining at any
// moment, so fleet capacity never dips by more than 1/N during a rollout.
func (rt *Router) handleRollingSwap(w http.ResponseWriter, r *http.Request) {
	model := r.PathValue("model")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, fmt.Sprintf("read body: %v", err))
		return
	}
	tr := obs.FromContext(r.Context())
	traceID := ""
	if tr.Propagated() {
		traceID = tr.ID()
	}
	resp := SwapResponse{Model: model, Total: len(rt.backends)}
	start := time.Now()
	for _, b := range rt.backends {
		res := rt.swapOne(r.Context(), b, r.URL.RequestURI(), body, traceID)
		resp.Results = append(resp.Results, res)
		if res.Status == http.StatusOK {
			resp.Swapped++
			continue
		}
		// A failed node stops the rollout: a half-swapped fleet is
		// recoverable (retry the PUT), a fleet that plowed past a refusal
		// may be serving a bad artifact everywhere.
		resp.Failed = b.url
		rt.metrics.swapFailures.Add(1)
		tr.Record("router:swap", start, time.Now(), fmt.Sprintf("model=%s swapped=%d/%d failed=%s", model, resp.Swapped, resp.Total, b.url))
		status := http.StatusBadGateway
		if res.Status != 0 {
			status = res.Status
		}
		serve.WriteJSON(w, status, resp)
		return
	}
	rt.metrics.swaps.Add(1)
	tr.Record("router:swap", start, time.Now(), fmt.Sprintf("model=%s swapped=%d/%d", model, resp.Swapped, resp.Total))
	serve.WriteJSON(w, http.StatusOK, resp)
}

// swapOne drains one backend, forwards the PUT, and re-admits it.
func (rt *Router) swapOne(ctx context.Context, b *backend, path string, body []byte, traceID string) SwapResult {
	out := SwapResult{Backend: b.url}
	if !b.healthy.Load() {
		// An unreachable backend cannot take the PUT; report it so the
		// operator retries once it returns rather than silently leaving it
		// on the old version.
		out.Error = "backend not ready"
		return out
	}
	b.swapping.Store(true)
	defer b.swapping.Store(false)

	// Model loading and warm-up legitimately outlast a classify deadline.
	sctx, cancel := context.WithTimeout(ctx, 2*rt.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodPut, b.url+path, bytes.NewReader(body))
	if err != nil {
		out.Error = err.Error()
		return out
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set(obs.TraceHeader, traceID)
	}
	hr, err := rt.dataClient.Do(req)
	if err != nil {
		out.Error = err.Error()
		b.setHealthy(false)
		return out
	}
	defer hr.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(hr.Body, maxProbeBody))
	if err != nil {
		out.Error = err.Error()
		return out
	}
	out.Status = hr.StatusCode
	if hr.StatusCode != http.StatusOK {
		out.Error = string(payload)
		return out
	}
	var put serve.V2PutModelResponse
	if json.Unmarshal(payload, &put) == nil {
		out.Version = put.Version
	}
	return out
}
