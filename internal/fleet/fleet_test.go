package fleet

// fleet_test.go is the multi-process-shaped harness the fleet tier is
// proven with: every test boots real cdlserve backends — full servers with
// their own worker pools, registries and HTTP surfaces — on loopback
// listeners, puts the router in front, and drives concurrent load through
// failure storms under -race. In-process keeps the harness hermetic and
// race-instrumented end to end, while the boundaries crossed (TCP, HTTP,
// health probes, process-style kill = listener and connections severed)
// are the same ones separate processes would cross.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cdl/internal/core"
	"cdl/internal/nn"
	"cdl/internal/serve"
	"cdl/internal/tensor"
	"cdl/internal/train"
)

// testCDLN trains the small two-tap blob cascade every serving-tier test
// uses (12×12 inputs, 3 classes, some inputs exit early, some reach FC).
func testCDLN(t testing.TB, seed int64) (*core.CDLN, []train.Sample) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := nn.NewNetwork([]int{1, 12, 12},
		nn.NewConv2D("C1", 1, 2, 3),
		nn.NewSigmoid("C1.act"),
		nn.NewMaxPool2D("P1", 2),
		nn.NewConv2D("C2", 2, 3, 2),
		nn.NewSigmoid("C2.act"),
		nn.NewMaxPool2D("P2", 2),
		nn.NewFlatten("flat"),
		nn.NewDense("FC", 3*2*2, 3),
		nn.NewSigmoid("FC.act"),
	)
	nn.InitNetwork(net, rng)
	arch := &nn.Arch{
		Name: "fleet-test", Net: net,
		Taps: []int{3, 6}, TapNames: []string{"P1", "P2"},
		NumClasses: 3,
	}
	data := blobData(180, seed+1)
	cfg := train.Defaults(3)
	cfg.Epochs = 12
	cfg.BatchSize = 10
	if _, err := train.SGD(arch.Net, data, cfg); err != nil {
		t.Fatal(err)
	}
	bcfg := core.DefaultBuildConfig()
	bcfg.ForceAllStages = true
	cdln, _, err := core.Build(arch, data, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	return cdln, data
}

func blobData(n int, seed int64) []train.Sample {
	rng := rand.New(rand.NewSource(seed))
	centers := [][2]int{{3, 3}, {3, 8}, {8, 5}}
	out := make([]train.Sample, n)
	for i := range out {
		label := i % 3
		noise := 0.05
		if rng.Float64() < 0.3 {
			noise = 0.35
		}
		x := tensor.New(1, 12, 12)
		cy, cx := centers[label][0], centers[label][1]
		for y := 0; y < 12; y++ {
			for xx := 0; xx < 12; xx++ {
				d2 := float64((y-cy)*(y-cy) + (xx-cx)*(xx-cx))
				v := 1/(1+d2/3) + rng.NormFloat64()*noise
				if v < 0 {
					v = 0
				}
				if v > 1 {
					v = 1
				}
				x.Data[y*12+xx] = v
			}
		}
		out[i] = train.Sample{X: x, Label: label}
	}
	return out
}

// testBackend is one in-process cdlserve "process": a full Server behind a
// real loopback listener. Kill severs the listener and every open
// connection at once — the closest in-process analogue of a SIGKILL — and
// Restart rebinds the same address so probe-driven re-admission is
// observable.
type testBackend struct {
	t    testing.TB
	cdln *core.CDLN
	cfg  serve.Config

	mu   sync.Mutex
	srv  *serve.Server
	hs   *http.Server
	addr string
	url  string
}

func startBackend(t testing.TB, cdln *core.CDLN, cfg serve.Config) *testBackend {
	t.Helper()
	b := &testBackend{t: t, cdln: cdln, cfg: cfg}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b.addr = ln.Addr().String()
	b.url = "http://" + b.addr
	b.serveOn(ln)
	t.Cleanup(b.Kill)
	return b
}

func (b *testBackend) serveOn(ln net.Listener) {
	srv, err := serve.New(b.cdln, b.cfg)
	if err != nil {
		b.t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	b.mu.Lock()
	b.srv, b.hs = srv, hs
	b.mu.Unlock()
	go func() { _ = hs.Serve(ln) }()
}

// Kill severs the backend: listener and all live connections close
// immediately, then the server's pools stop. Safe to call twice.
func (b *testBackend) Kill() {
	b.mu.Lock()
	srv, hs := b.srv, b.hs
	b.srv, b.hs = nil, nil
	b.mu.Unlock()
	if hs != nil {
		_ = hs.Close()
	}
	if srv != nil {
		srv.Close()
	}
}

// Restart rebinds the same loopback address with a fresh Server. Go
// listeners set SO_REUSEADDR, so the rebind succeeds as soon as the old
// listener is gone.
func (b *testBackend) Restart() {
	b.t.Helper()
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ {
		ln, err = net.Listen("tcp", b.addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		b.t.Fatalf("rebind %s: %v", b.addr, err)
	}
	b.serveOn(ln)
}

// Server returns the live serve.Server (nil while killed).
func (b *testBackend) Server() *serve.Server {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.srv
}

// testFleet is N backends plus the router, served via httptest.
type testFleet struct {
	backends []*testBackend
	router   *Router
	ts       *httptest.Server
}

func (f *testFleet) URL() string { return f.ts.URL }

// startFleet boots n backends over a shared trained model and a router in
// front of them. Probe cadence is fast (25ms) so failure-detection bounds
// keep the test quick; mutate cfg for per-test routing behaviour.
func startFleet(t testing.TB, cdln *core.CDLN, n int, mutate func(*Config)) *testFleet {
	t.Helper()
	scfg := serve.Config{Workers: 2, QueueDepth: 256, MaxBatch: 8}
	f := &testFleet{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		b := startBackend(t, cdln, scfg)
		f.backends = append(f.backends, b)
		urls[i] = b.url
	}
	cfg := Config{
		Backends:      urls,
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.router = rt
	f.ts = httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		f.ts.Close()
		rt.Close()
	})
	return f
}

// sampleImages flattens k samples into v1/v2 request image payloads.
func sampleImages(data []train.Sample, off, k int) [][]float64 {
	out := make([][]float64, k)
	for i := 0; i < k; i++ {
		out[i] = data[(off+i)%len(data)].X.Data
	}
	return out
}

func postJSON(t testing.TB, client *http.Client, url string, v any) (int, http.Header, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, nil
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil
	}
	return resp.StatusCode, resp.Header, payload
}

func jsonBody(b []byte) io.Reader { return bytes.NewReader(b) }

func readAll(resp *http.Response) ([]byte, error) { return io.ReadAll(resp.Body) }

// routerStats fetches and decodes the router's /statsz.
func routerStats(t testing.TB, url string) RouterStats {
	t.Helper()
	resp, err := http.Get(url + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st RouterStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitReady blocks until the router reports n ready backends (probe
// rounds take ~ProbeInterval; the deadline is generous for -race).
func waitReady(t testing.TB, f *testFleet, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ready := 0
		for _, st := range routerStats(t, f.URL()).Backends {
			if st.Healthy {
				ready++
			}
		}
		if ready >= n {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("router never saw %d ready backends", n)
}

// TestFleetRoutesAcrossBackends is the basic fan-out check: traffic
// through the router answers correctly and every backend takes a share
// (the ring spreads distinct inputs).
func TestFleetRoutesAcrossBackends(t *testing.T) {
	cdln, data := testCDLN(t, 31)
	f := startFleet(t, cdln, 3, nil)
	waitReady(t, f, 3)

	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; i < 60; i++ {
		status, _, body := postJSON(t, client, f.URL()+"/v1/classify",
			serve.ClassifyRequest{Images: sampleImages(data, i*3, 2)})
		if status != http.StatusOK {
			t.Fatalf("request %d: HTTP %d: %s", i, status, body)
		}
		var cr serve.ClassifyResponse
		if err := json.Unmarshal(body, &cr); err != nil {
			t.Fatalf("request %d: bad body: %v", i, err)
		}
		if cr.Count != 2 {
			t.Fatalf("request %d: count %d, want 2", i, cr.Count)
		}
	}
	st := routerStats(t, f.URL())
	for _, b := range st.Backends {
		if b.Requests == 0 {
			t.Errorf("backend %s took no traffic; ring is not spreading", b.URL)
		}
	}
	if mt := st.Models[serve.DefaultModelName]; mt.Requests != 60 {
		t.Errorf("router counted %d requests, want 60", mt.Requests)
	}
}

// TestFleetSurvivesBackendKill is the e2e storm the issue names: 3 real
// backends under concurrent load, one severed mid-flight (listener and all
// connections die, as a SIGKILL would). Requirements: zero non-503 client
// errors (transport failures must be retried onto survivors, sheds must
// stay proper 503s), the router marks the dead backend down within one
// probe interval, and a restart is re-admitted by probing alone.
func TestFleetSurvivesBackendKill(t *testing.T) {
	cdln, data := testCDLN(t, 32)
	f := startFleet(t, cdln, 3, nil)
	waitReady(t, f, 3)

	const (
		loaders   = 6
		perLoader = 40
	)
	var (
		ok, shed atomic.Int64
		bad      atomic.Int64
		badMu    sync.Mutex
		badNotes []string
	)
	var wg sync.WaitGroup
	stopLoad := make(chan struct{})
	for l := 0; l < loaders; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			for i := 0; i < perLoader; i++ {
				select {
				case <-stopLoad:
					return
				default:
				}
				status, _, body := postJSON(t, client, f.URL()+"/v2/models/"+serve.DefaultModelName+"/classify",
					serve.V2ClassifyRequest{Images: sampleImages(data, l*perLoader+i, 1)})
				switch status {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusServiceUnavailable:
					shed.Add(1)
				default:
					bad.Add(1)
					badMu.Lock()
					if len(badNotes) < 5 {
						badNotes = append(badNotes, fmt.Sprintf("HTTP %d: %.200s", status, body))
					}
					badMu.Unlock()
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(l)
	}

	// Let load flow, then sever one backend mid-flight.
	time.Sleep(100 * time.Millisecond)
	victim := f.backends[1]
	killedAt := time.Now()
	victim.Kill()

	// The router must stop trusting the dead backend within one probe
	// interval (transport errors mark it down even faster).
	deadline := killedAt.Add(f.router.cfg.ProbeInterval + time.Second)
	for {
		st := routerStats(t, f.URL())
		var vs *BackendStats
		for i := range st.Backends {
			if st.Backends[i].URL == victim.url {
				vs = &st.Backends[i]
			}
		}
		if vs == nil {
			t.Fatal("victim missing from /statsz")
		}
		if !vs.Healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("router still considers the killed backend healthy past one probe interval")
		}
		time.Sleep(5 * time.Millisecond)
	}

	wg.Wait()
	close(stopLoad)
	if bad.Load() != 0 {
		t.Fatalf("%d non-503 errors during the kill storm (want 0): %v", bad.Load(), badNotes)
	}
	if ok.Load() == 0 {
		t.Fatal("no successful requests at all")
	}
	t.Logf("kill storm: %d ok, %d shed (503), 0 hard errors", ok.Load(), shed.Load())

	// Restart the victim on the same address: probing alone must re-admit
	// it, and it must then take traffic again.
	victim.Restart()
	waitReady(t, f, 3)
	before := backendRequests(t, f, victim.url)
	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; ; i++ {
		if i >= 500 {
			t.Fatal("restarted backend never took traffic")
		}
		status, _, body := postJSON(t, client, f.URL()+"/v1/classify",
			serve.ClassifyRequest{Images: sampleImages(data, i*7, 1)})
		if status != http.StatusOK {
			t.Fatalf("post-restart request failed: HTTP %d: %s", status, body)
		}
		if backendRequests(t, f, victim.url) > before {
			break
		}
	}
}

func backendRequests(t testing.TB, f *testFleet, url string) int64 {
	t.Helper()
	for _, b := range routerStats(t, f.URL()).Backends {
		if b.URL == url {
			return b.Requests
		}
	}
	t.Fatalf("backend %s missing from /statsz", url)
	return 0
}

// TestFleetReadyz pins the router's own readiness contract: ready while
// any backend lives, 503 once the whole fleet is gone.
func TestFleetReadyz(t *testing.T) {
	cdln, _ := testCDLN(t, 33)
	f := startFleet(t, cdln, 2, nil)
	waitReady(t, f, 2)

	get := func() int {
		resp, err := http.Get(f.URL() + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if got := get(); got != http.StatusOK {
		t.Fatalf("readyz with live fleet: HTTP %d", got)
	}
	f.backends[0].Kill()
	f.backends[1].Kill()
	deadline := time.Now().Add(3 * time.Second)
	for get() != http.StatusServiceUnavailable {
		if time.Now().After(deadline) {
			t.Fatal("router never turned unready after the whole fleet died")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// With zero ready backends the data path must shed, not hang or 502.
	client := &http.Client{Timeout: 5 * time.Second}
	status, hdr, _ := postJSON(t, client, f.URL()+"/v1/classify", serve.ClassifyRequest{})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("data path with dead fleet: HTTP %d, want 503", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("fleet-wide shed carries no Retry-After")
	}
}
