package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"cdl/internal/control"
	"cdl/internal/obs"
	"cdl/internal/serve"
)

// Config sizes the router.
type Config struct {
	// Backends are the cdlserve base URLs the router fans across. At
	// least one is required; identity (and therefore ring placement) is
	// the URL string.
	Backends []string

	// ProbeInterval is the health/load refresh period. Default 500ms.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe HTTP exchange. Default 2s.
	ProbeTimeout time.Duration
	// RequestTimeout bounds one forwarded backend attempt (connect +
	// headers + body). Default 30s.
	RequestTimeout time.Duration

	// Replicas is the ring's virtual-node count per backend. Default 128.
	Replicas int
	// LoadFactor is the bounded-load constant c: a backend is skipped (in
	// favour of the next ring node) while its router-side in-flight count
	// exceeds c × the fleet-wide mean. Default 2.0; values < 1 are
	// treated as 1 (a factor below the mean would reject everything).
	LoadFactor float64
	// SpillQueueFrac overflows a backend whose probed queue occupancy is
	// at or above this fraction. Default 0.9.
	SpillQueueFrac float64

	// Hedge enables hedged requests: when a classify/resume attempt is
	// still unanswered after the per-model hedge deadline, the same input
	// is re-sent to the next ring node and the first answer wins. Default
	// off (enable explicitly; duplicate work must be opted into).
	Hedge bool
	// HedgeQuantile is the per-model latency quantile used as the hedge
	// deadline. Default 0.95.
	HedgeQuantile float64
	// HedgeMin/HedgeMax clamp the hedge deadline. Defaults 5ms / 1s.
	// Setting HedgeMin == HedgeMax pins a fixed deadline (tests do).
	HedgeMin, HedgeMax time.Duration
	// HedgeMinSamples is how many router-observed latencies a model needs
	// before its own p95 drives the deadline; below it HedgeMax is used.
	// Default 50.
	HedgeMinSamples int64

	// LoadSource selects the probe's load telemetry: LoadFromMetricsz
	// (default; parses the Prometheus exposition) or LoadFromStatsz (the
	// compact JSON summary).
	LoadSource string

	// MaxBodyBytes bounds an accepted request body. Default 32 MiB.
	MaxBodyBytes int64
	// MaxIdleConnsPerHost sizes the forwarding client's connection reuse
	// per backend. Default 2×GOMAXPROCS.
	MaxIdleConnsPerHost int

	// Hardening carries the front-door listener limits (ListenAndServe).
	Hardening serve.HTTPHardening
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.Replicas <= 0 {
		c.Replicas = DefaultReplicas
	}
	if c.LoadFactor == 0 {
		c.LoadFactor = 2.0
	}
	if c.LoadFactor < 1 {
		c.LoadFactor = 1
	}
	if c.SpillQueueFrac <= 0 {
		c.SpillQueueFrac = 0.9
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.95
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 5 * time.Millisecond
	}
	if c.HedgeMax <= 0 {
		c.HedgeMax = time.Second
	}
	if c.HedgeMax < c.HedgeMin {
		c.HedgeMax = c.HedgeMin
	}
	if c.HedgeMinSamples <= 0 {
		c.HedgeMinSamples = 50
	}
	if c.LoadSource == "" {
		c.LoadSource = LoadFromMetricsz
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxIdleConnsPerHost <= 0 {
		c.MaxIdleConnsPerHost = 2 * runtime.GOMAXPROCS(0)
	}
	c.Hardening = c.Hardening.WithDefaults()
	return c
}

// Router is the fleet front door. Create with New, expose via Handler or
// ListenAndServe, stop with Close.
type Router struct {
	cfg      Config
	backends []*backend
	ring     *Ring
	metrics  *routerMetrics

	// probeClient and dataClient are deliberately separate and both carry
	// explicit timeouts and bounded connection reuse: the zero-value
	// http.Client (no timeout at all) would let one hung backend pin a
	// probe goroutine — or a request goroutine — forever.
	probeClient *http.Client
	dataClient  *http.Client

	mux     *http.ServeMux
	handler http.Handler
	slow    *obs.SlowLog
	flights *obs.FlightSet

	stop    chan struct{}
	wg      sync.WaitGroup
	started time.Time
}

// New builds a router over cfg.Backends and runs one synchronous probe
// round before returning, so a router with any reachable backend starts
// ready. The probe loop keeps refreshing in the background until Close.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("fleet: no backends configured")
	}
	backends := make([]*backend, len(cfg.Backends))
	names := make([]string, len(cfg.Backends))
	for i, raw := range cfg.Backends {
		b, err := newBackend(raw)
		if err != nil {
			return nil, err
		}
		backends[i] = b
		names[i] = b.url
	}
	ring, err := NewRing(names, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:      cfg,
		backends: backends,
		ring:     ring,
		metrics:  newRouterMetrics(),
		probeClient: &http.Client{
			Timeout: cfg.ProbeTimeout,
			Transport: &http.Transport{
				DialContext:           (&net.Dialer{Timeout: cfg.ProbeTimeout}).DialContext,
				MaxIdleConnsPerHost:   2,
				IdleConnTimeout:       30 * time.Second,
				ResponseHeaderTimeout: cfg.ProbeTimeout,
			},
		},
		dataClient: &http.Client{
			// No client-wide Timeout: each attempt carries its own
			// RequestTimeout context (a global timeout would also cap the
			// rolling-swap PUTs, whose model warm-up legitimately runs
			// longer than a classify).
			Transport: &http.Transport{
				DialContext:           (&net.Dialer{Timeout: 5 * time.Second}).DialContext,
				MaxIdleConnsPerHost:   cfg.MaxIdleConnsPerHost,
				MaxIdleConns:          cfg.MaxIdleConnsPerHost * len(cfg.Backends),
				IdleConnTimeout:       60 * time.Second,
				ResponseHeaderTimeout: cfg.RequestTimeout,
			},
		},
		stop:    make(chan struct{}),
		started: time.Now(),
	}
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("POST /v1/classify", func(w http.ResponseWriter, r *http.Request) {
		rt.handleData(w, r, "", routeClassify)
	})
	rt.mux.HandleFunc("POST /v1/resume", func(w http.ResponseWriter, r *http.Request) {
		rt.handleData(w, r, "", routeResume)
	})
	rt.mux.HandleFunc("POST /v2/models/{model}/classify", func(w http.ResponseWriter, r *http.Request) {
		rt.handleData(w, r, r.PathValue("model"), routeClassify)
	})
	rt.mux.HandleFunc("POST /v2/models/{model}/resume", func(w http.ResponseWriter, r *http.Request) {
		rt.handleData(w, r, r.PathValue("model"), routeResume)
	})
	rt.mux.HandleFunc("GET /v2/models", rt.handleProxyGet)
	rt.mux.HandleFunc("GET /v2/models/{model}", rt.handleProxyGet)
	rt.mux.HandleFunc("GET /v2/models/{model}/slo", rt.handleProxyGet)
	rt.mux.HandleFunc("PUT /v2/models/{model}", rt.handleRollingSwap)
	rt.mux.HandleFunc("PUT /v2/models/{model}/branches/{branch}", rt.handleRollingSwap)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /readyz", rt.handleReadyz)
	rt.mux.HandleFunc("GET /statsz", rt.handleStatsz)
	rt.mux.HandleFunc("GET /metricsz", rt.handleMetricsz)
	rt.flights = obs.NewFlightSet("fleet", obs.FlightConfig{})
	rt.mux.HandleFunc("GET /alertz", rt.handleAlertz)
	rt.mux.Handle("GET /debug/flightz", rt.flights.Handler())
	rt.slow = obs.NewSlowLog()
	rt.handler = obs.Middleware(rt.mux, rt.slow)

	rt.probeRound()
	rt.wg.Add(1)
	go rt.probeLoop()
	return rt, nil
}

// Handler returns the front-door handler: the route mux wrapped in the
// same tracing middleware both serving tiers use (X-Trace-Id adopted or
// generated, echoed on every response path, slow requests sampled).
func (rt *Router) Handler() http.Handler { return rt.handler }

// Close stops the probe loop and releases pooled connections. In-flight
// forwards complete on their own contexts.
func (rt *Router) Close() {
	select {
	case <-rt.stop:
	default:
		close(rt.stop)
	}
	rt.wg.Wait()
	rt.probeClient.CloseIdleConnections()
	rt.dataClient.CloseIdleConnections()
}

// ListenAndServe runs the router on addr until stop is closed, then shuts
// down gracefully, reusing the serving tier's hardened listener.
func (rt *Router) ListenAndServe(addr string, stop <-chan struct{}) error {
	return serve.ListenHardened(addr, rt.handler, stop, rt.cfg.Hardening, rt.Close)
}

// route names label the per-model metrics.
const (
	routeClassify = "classify"
	routeResume   = "resume"
)

// modelKey normalizes the metrics/ring label for the /v1 alias surface.
func modelKey(model string) string {
	if model == "" {
		return serve.DefaultModelName
	}
	return model
}

// pickChain orders the backends for one key: ring sequence, filtered to
// healthy + non-draining + under the bounded-load cap first, then healthy
// non-draining overloaded ones (load spill must degrade to "serve anyway",
// never to "reject while capacity exists"), then draining ones as a last
// resort. Unhealthy backends are excluded entirely — transport errors
// rejoin them only via the probe loop.
func (rt *Router) pickChain(key uint64) []*backend {
	seq := rt.ring.Seq(key)
	cap := rt.loadCap()
	chain := make([]*backend, 0, len(seq))
	var overloaded, draining []*backend
	for _, mi := range seq {
		b := rt.backends[mi]
		if !b.healthy.Load() {
			continue
		}
		switch {
		case b.swapping.Load():
			draining = append(draining, b)
		case b.inflight.Load() >= cap || b.loadFrac() >= rt.cfg.SpillQueueFrac:
			overloaded = append(overloaded, b)
		default:
			chain = append(chain, b)
		}
	}
	chain = append(chain, overloaded...)
	return append(chain, draining...)
}

// loadCap is the bounded-load threshold: c × ceil((total in flight + 1) /
// healthy backends), counting the incoming request itself so an idle
// fleet never rounds the cap down to zero.
func (rt *Router) loadCap() int64 {
	total, healthy := int64(0), int64(0)
	for _, b := range rt.backends {
		if b.healthy.Load() {
			healthy++
			total += b.inflight.Load()
		}
	}
	if healthy == 0 {
		return 1
	}
	mean := float64(total+1) / float64(healthy)
	cap := int64(rt.cfg.LoadFactor * mean)
	if cap < 1 {
		cap = 1
	}
	return cap
}

// attemptResult is one forwarded attempt's outcome.
type attemptResult struct {
	backend *backend
	status  int
	header  http.Header
	body    []byte
	err     error
	// hedged/hedgeWon carry the hedge outcome up to the flight recorder:
	// hedged is true when a hedge was launched for this request, hedgeWon
	// when the hedge's response (not the primary's) was the one used.
	hedged   bool
	hedgeWon bool
}

// decisive reports whether the result should be returned to the client
// rather than retried on the next ring node: any real HTTP response except
// a 503 shed (which overflow can still absorb elsewhere).
func (a attemptResult) decisive() bool {
	return a.err == nil && a.status != http.StatusServiceUnavailable
}

// send forwards one attempt to b and buffers the response. The trace ID is
// propagated to the backend only when the client itself supplied one —
// otherwise backend response bodies would grow trace fields the client
// never asked for.
func (rt *Router) send(ctx context.Context, b *backend, method, path string, body []byte, traceID string) attemptResult {
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	actx, cancel := context.WithTimeout(ctx, rt.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, method, b.url+path, bytes.NewReader(body))
	if err != nil {
		return attemptResult{backend: b, err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set(obs.TraceHeader, traceID)
	}
	resp, err := rt.dataClient.Do(req)
	if err != nil {
		b.errors.Add(1)
		return attemptResult{backend: b, err: err}
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, rt.cfg.MaxBodyBytes+1))
	if err != nil {
		b.errors.Add(1)
		return attemptResult{backend: b, err: err}
	}
	b.requests.Add(1)
	return attemptResult{backend: b, status: resp.StatusCode, header: resp.Header, body: payload}
}

// writeResult relays a backend response to the client: status, body, and
// the headers that carry contract (Content-Type; Retry-After on sheds is
// propagated, not swallowed — the backend's own backoff hint must reach
// the client).
func writeResult(w http.ResponseWriter, res attemptResult) {
	if ct := res.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	} else {
		w.Header().Set("Content-Type", "application/json")
	}
	if ra := res.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// handleData is the classify/resume data path: hash, pick, forward with
// hedging and failover.
func (rt *Router) handleData(w http.ResponseWriter, r *http.Request, model, route string) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			serve.WriteError(w, http.StatusRequestEntityTooLarge, err.Error())
			return
		}
		serve.WriteError(w, http.StatusBadRequest, fmt.Sprintf("read body: %v", err))
		return
	}
	mk := modelKey(model)
	key := HashRequest(mk, body)
	chain := rt.pickChain(key)
	tr := obs.FromContext(r.Context())
	if len(chain) == 0 {
		mm := rt.metrics.model(mk)
		mm.sheds.Add(1)
		mm.alert.Observe(0, 1)
		rt.flightShed(tr, mk, "no_backend")
		serve.WriteShed(w, "no ready backend")
		return
	}
	traceID := ""
	if tr.Propagated() {
		traceID = tr.ID()
	}
	start := time.Now()
	res := rt.dispatch(r.Context(), chain, r.Method, r.URL.RequestURI(), body, mk, route, traceID, tr)
	elapsedMS := float64(time.Since(start)) / float64(time.Millisecond)
	mm := rt.metrics.model(mk)
	if res.err != nil {
		mm.sheds.Add(1)
		mm.alert.Observe(0, 1)
		rt.recordFlight(tr, mm, mk, res, elapsedMS, start)
		w.Header().Set("Retry-After", "1")
		serve.WriteError(w, http.StatusBadGateway, fmt.Sprintf("all backends failed: %v", res.err))
		return
	}
	switch {
	case res.status == http.StatusServiceUnavailable:
		mm.sheds.Add(1)
		mm.alert.Observe(0, 1)
	case res.status == http.StatusOK:
		mm.observeLatency(elapsedMS)
		mm.alert.Observe(1, 0)
	}
	mm.requests.Add(1)
	rt.recordFlight(tr, mm, mk, res, elapsedMS, start)
	writeResult(w, res)
}

// flightP99MinSamples is how many router-observed latencies a model needs
// before its live p99 starts tagging AnomalyP99 — below it every early
// request would look like a tail against an empty histogram.
const flightP99MinSamples = 50

// recordFlight writes the router-side wide event for one data request.
// The router's records carry what the front door knows — the backend the
// answer came from as the node path, the hedge outcome, and the end-to-end
// router latency — and are tail-retained on sheds, transport errors, hedge
// losses, and latencies above the model's live p99.
func (rt *Router) recordFlight(tr *obs.Trace, mm *modelMetrics, model string, res attemptResult, elapsedMS float64, start time.Time) {
	if !obs.FlightEnabled() {
		return
	}
	rec := obs.FlightRecord{
		Model:       model,
		ExitIndex:   -1,
		TotalMS:     elapsedMS,
		Outcome:     obs.FlightOK,
		StartUnixNS: start.UnixNano(),
	}
	if res.backend != nil {
		rec.NodePath = res.backend.url
	}
	switch {
	case res.err != nil:
		rec.Outcome = obs.FlightError
		rec.RejectCause = "transport"
		rec.Anomalies = append(rec.Anomalies, obs.AnomalyError)
	case res.status == http.StatusServiceUnavailable:
		rec.Outcome = obs.FlightShed
		rec.RejectCause = "backend_shed"
		rec.Anomalies = append(rec.Anomalies, obs.AnomalyShed)
	case res.hedged && res.hedgeWon:
		rec.Outcome = obs.FlightHedgeWin
	case res.hedged:
		// The hedge lost: the request succeeded but burned duplicate work —
		// exactly the tail evidence worth retaining.
		rec.Anomalies = append(rec.Anomalies, obs.AnomalyHedge)
	}
	if res.err == nil && res.status == http.StatusOK {
		if p99 := mm.liveP99(start.UnixNano()); p99 > 0 && elapsedMS > p99 {
			rec.Anomalies = append(rec.Anomalies, obs.AnomalyP99)
		}
	}
	if tr != nil {
		rec.TraceID = tr.ID()
		if len(rec.Anomalies) > 0 {
			rec.Spans = tr.Spans()
		}
	}
	rt.flights.Recorder(model).Record(rec)
}

// flightShed records a request the router rejected before any backend
// attempt (always anomalous — sheds are tail-retained by definition).
func (rt *Router) flightShed(tr *obs.Trace, model, cause string) {
	if !obs.FlightEnabled() {
		return
	}
	rec := obs.FlightRecord{
		Model:       model,
		ExitIndex:   -1,
		Outcome:     obs.FlightShed,
		RejectCause: cause,
		Anomalies:   []string{obs.AnomalyShed},
		StartUnixNS: time.Now().UnixNano(),
	}
	if tr != nil {
		rec.TraceID = tr.ID()
		rec.Spans = tr.Spans()
	}
	rt.flights.Recorder(model).Record(rec)
}

// Flights exposes the router's flight recorders (tests and embedding).
func (rt *Router) Flights() *obs.FlightSet { return rt.flights }

// FlightzHandler returns the /debug/flightz query handler, for mounting on
// an admin listener alongside the data mux registration.
func (rt *Router) FlightzHandler() http.Handler { return rt.flights.Handler() }

// AlertzHandler returns the fleet /alertz handler for admin listeners.
func (rt *Router) AlertzHandler() http.Handler { return http.HandlerFunc(rt.handleAlertz) }

// AlertReport rolls the fleet's burn-rate state into one view: the
// router's own per-model availability monitors plus every backend's
// last-probed /alertz report. The fleet pages when anything underneath
// pages — its own monitors or any backend's.
func (rt *Router) AlertReport() FleetAlertz {
	out := FleetAlertz{AlertzReport: control.AlertzReport{
		Tier:   "fleet",
		Models: make(map[string]control.AlertStatus),
	}}
	rt.metrics.mu.Lock()
	monitors := make(map[string]*control.AlertMonitor, len(rt.metrics.models))
	for name, mm := range rt.metrics.models {
		monitors[name] = mm.alert
	}
	rt.metrics.mu.Unlock()
	for name, mon := range monitors {
		st := mon.Status()
		out.Models[name] = st
		out.Active = out.Active || st.Active
	}
	for _, b := range rt.backends {
		rep := b.alertz.Load()
		if rep == nil {
			continue
		}
		if out.Backends == nil {
			out.Backends = make(map[string]control.AlertzReport)
		}
		out.Backends[b.url] = *rep
		out.Active = out.Active || rep.Active
	}
	return out
}

func (rt *Router) handleAlertz(w http.ResponseWriter, _ *http.Request) {
	serve.WriteJSON(w, http.StatusOK, rt.AlertReport())
}

// dispatch runs the attempt chain: the primary attempt is hedged (when
// enabled), later attempts are straight failover. A transport error marks
// the backend down on the spot — rerouting does not wait for the probe
// loop — and moves on; a 503 is remembered (for Retry-After propagation)
// while overflow tries the rest of the chain.
func (rt *Router) dispatch(ctx context.Context, chain []*backend, method, path string, body []byte, model, route, traceID string, tr *obs.Trace) attemptResult {
	var last attemptResult
	haveLast := false
	for i := 0; i < len(chain); i++ {
		b := chain[i]
		var res attemptResult
		start := time.Now()
		if i == 0 && rt.cfg.Hedge && len(chain) > 1 {
			res = rt.hedged(ctx, b, chain[1], method, path, body, model, traceID, tr)
		} else {
			res = rt.send(ctx, b, method, path, body, traceID)
			name := "router:pick"
			if i > 0 {
				name = "router:retry"
				rt.metrics.model(model).retries.Add(1)
			}
			tr.Record(name, start, time.Now(), "backend="+b.url+" model="+model+" route="+route)
		}
		if res.err != nil {
			if ctx.Err() != nil {
				// The client is gone or out of time; stop burning backends.
				return res
			}
			res.backend.setHealthy(false)
			last, haveLast = res, true
			continue
		}
		if res.decisive() {
			return res
		}
		last, haveLast = res, true
	}
	if !haveLast {
		return attemptResult{err: errors.New("no backend attempted")}
	}
	return last
}

// handleProxyGet forwards a read-only request to the first healthy
// backend in ring order of the path (cheap spread without affinity
// requirements).
func (rt *Router) handleProxyGet(w http.ResponseWriter, r *http.Request) {
	chain := rt.pickChain(HashKey(r.URL.Path))
	if len(chain) == 0 {
		serve.WriteShed(w, "no ready backend")
		return
	}
	var res attemptResult
	for _, b := range chain {
		res = rt.send(r.Context(), b, http.MethodGet, r.URL.RequestURI(), nil, "")
		if res.err == nil {
			writeResult(w, res)
			return
		}
		b.setHealthy(false)
	}
	w.Header().Set("Retry-After", "1")
	serve.WriteError(w, http.StatusBadGateway, fmt.Sprintf("all backends failed: %v", res.err))
}
