package fleet

// alert_test.go is the acceptance harness for the fleet observability
// stack: a backend handed an unreachable p99 target must page on its own
// /alertz, the router must surface that page in its aggregated fleet view
// within a probe round, and the breach must leave retrievable evidence on
// the backend's /debug/flightz — a controller rung-down snapshot holding
// at least one anomalous record with its full span tree. When $FLIGHT_OUT
// is set, the retrieved flightz document is written there so CI archives a
// real post-breach sample.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"cdl/internal/control"
	"cdl/internal/obs"
	"cdl/internal/serve"
)

// getJSON decodes a GET response into out, failing the test on transport
// or decode errors (the surfaces under test are all local and live).
func getJSON(t testing.TB, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// snapshotSpanTree scans the flightz document for a rung-down snapshot
// that froze at least one anomalous record with a non-empty span tree —
// the evidence chain the triage quickstart walks.
func snapshotSpanTree(fr obs.FlightzResponse) (obs.FlightRecord, bool) {
	for _, snap := range fr.Snapshots {
		if snap.Reason != "rung_down" {
			continue
		}
		for _, rec := range snap.Records {
			if rec.Anomalous() && len(rec.Spans) > 0 {
				return rec, true
			}
		}
	}
	return obs.FlightRecord{}, false
}

func TestFleetAlertOnP99Breach(t *testing.T) {
	cdln, data := testCDLN(t, 34)

	// The breaching backend ticks its SLO controller fast so rung-down
	// snapshots land within the test's patience; its peer stays untargeted.
	breaching := startBackend(t, cdln, serve.Config{
		Workers: 2, QueueDepth: 256, MaxBatch: 8,
		ControlInterval: 50 * time.Millisecond,
	})
	healthy := startBackend(t, cdln, serve.Config{Workers: 2, QueueDepth: 256, MaxBatch: 8})

	rt, err := New(Config{
		Backends:      []string{breaching.url, healthy.url},
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		ts.Close()
		rt.Close()
	})
	f := &testFleet{backends: []*testBackend{breaching, healthy}, router: rt, ts: ts}
	waitReady(t, f, 2)

	client := &http.Client{Timeout: 10 * time.Second}

	// Warm the breach evidence before any SLO exists: identity-policy
	// traffic sends the hard inputs to the deepest exit, and those records
	// are tail-retained with their span trees — exactly what the first
	// rung-down snapshot must freeze.
	for i := 0; i < 40; i++ {
		status, _, body := postJSON(t, client, ts.URL+"/v1/classify",
			serve.ClassifyRequest{Images: sampleImages(data, i*2, 2)})
		if status != http.StatusOK {
			t.Fatalf("warmup request %d: HTTP %d: %s", i, status, body)
		}
	}

	// Inject the breach: a p99 target no real request can meet, so every
	// completed request burns error budget and the default multi-window
	// thresholds fire as soon as MinSamples accumulate in the fast window.
	sloBody, err := json.Marshal(control.SLO{P99LatencyMs: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	sloReq, err := http.NewRequest(http.MethodPut,
		breaching.url+"/v2/models/"+serve.DefaultModelName+"/slo", jsonBody(sloBody))
	if err != nil {
		t.Fatal(err)
	}
	sloReq.Header.Set("Content-Type", "application/json")
	sloResp, err := client.Do(sloReq)
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := readAll(sloResp)
	sloResp.Body.Close()
	if sloResp.StatusCode != http.StatusOK {
		t.Fatalf("attach SLO: HTTP %d: %s", sloResp.StatusCode, payload)
	}

	deadline := time.Now().Add(20 * time.Second)
	var (
		flight        obs.FlightzResponse
		backendActive bool
		routerActive  bool
		haveSnapshot  bool
	)
	for i := 0; !(backendActive && routerActive && haveSnapshot); i++ {
		if time.Now().After(deadline) {
			t.Fatalf("breach never fully surfaced: backend alert=%v router alert=%v rung-down span tree=%v",
				backendActive, routerActive, haveSnapshot)
		}
		// Keep traffic flowing so the fast window and the controller see
		// live load while the alert propagates.
		postJSON(t, client, ts.URL+"/v1/classify",
			serve.ClassifyRequest{Images: sampleImages(data, i*3, 2)})

		if !backendActive {
			var rep control.AlertzReport
			getJSON(t, breaching.url+"/alertz", &rep)
			backendActive = rep.Active && rep.Tier == "serve"
		}
		if !routerActive {
			var fa FleetAlertz
			getJSON(t, ts.URL+"/alertz", &fa)
			routerActive = fa.Active && fa.Tier == "fleet" && fa.Backends[breaching.url].Active
		}
		if !haveSnapshot {
			getJSON(t, breaching.url+"/debug/flightz?limit=64", &flight)
			_, haveSnapshot = snapshotSpanTree(flight)
		}
	}

	rec, _ := snapshotSpanTree(flight)
	if rec.TraceID == "" {
		t.Error("retained anomalous record carries no trace id")
	}
	if st, ok := flight.Models[serve.DefaultModelName]; !ok || st.Anomalous == 0 {
		t.Errorf("flightz retention stats missing anomalous tail: %+v", flight.Models)
	}

	// The router's own flight ring must have wide events for the same
	// traffic, with the backend URL as the routed node path.
	var rfr obs.FlightzResponse
	getJSON(t, ts.URL+"/debug/flightz?limit=16", &rfr)
	if rfr.Tier != "fleet" || len(rfr.Records) == 0 {
		t.Fatalf("router flightz empty: tier=%q records=%d", rfr.Tier, len(rfr.Records))
	}

	// Archive the breach evidence for CI when asked.
	if out := os.Getenv("FLIGHT_OUT"); out != "" {
		doc, err := json.MarshalIndent(flight, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, doc, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote flight sample to %s", out)
	}
}
