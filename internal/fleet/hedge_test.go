package fleet

// hedge_test.go: hedged-request correctness. A deliberately-stalled
// backend must trigger a hedge after the per-model deadline; the client
// sees exactly one well-formed response (the hedge's); the losing attempt
// is cancelled rather than leaked (goroutine counts settle back to
// baseline); and the router's hedge counters conserve: every hedge sent
// resolves as exactly one win or loss.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"cdl/internal/serve"
)

// stallingBackend is a fake cdlserve that passes readiness probes but, when
// stalled, sits on classify requests until the router cancels them. It
// counts how many classifies it actually answered (for exactly-once
// assertions) and how many were cancelled under it (loser cancellation).
type stallingBackend struct {
	ts        *httptest.Server
	stall     atomic.Bool
	answered  atomic.Int64
	cancelled atomic.Int64
}

func newStallingBackend(t testing.TB) *stallingBackend {
	t.Helper()
	sb := &stallingBackend{}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		serve.WriteJSON(w, http.StatusOK, map[string]bool{"ready": true})
	})
	mux.HandleFunc("GET /metricsz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte("cdl_queue_depth{model=\"default\"} 0\ncdl_workers{model=\"default\"} 1\n"))
	})
	mux.HandleFunc("POST /v2/models/{model}/classify", func(w http.ResponseWriter, r *http.Request) {
		// Drain the body before stalling, as a real backend would: the
		// server only watches for client disconnect (which cancels
		// r.Context()) once the request body has been consumed.
		_, _ = io.Copy(io.Discard, r.Body)
		if sb.stall.Load() {
			<-r.Context().Done()
			sb.cancelled.Add(1)
			return
		}
		sb.answered.Add(1)
		serve.WriteJSON(w, http.StatusOK, serve.V2ClassifyResponse{
			Model: r.PathValue("model"), Version: 1, Count: 1,
			Results: []serve.V2Result{{Label: 0, Exit: "stall"}},
		})
	})
	sb.ts = httptest.NewServer(mux)
	t.Cleanup(sb.ts.Close)
	return sb
}

// startHedgeFleet boots one real backend plus the staller behind a router
// with a fixed hedge deadline, and returns a request body whose ring
// placement puts the staller first — so the primary attempt always stalls
// and the hedge always lands on the real backend.
func startHedgeFleet(t *testing.T) (*testFleet, *stallingBackend, []byte) {
	t.Helper()
	cdln, data := testCDLN(t, 51)
	scfg := serve.Config{Workers: 2, QueueDepth: 256, MaxBatch: 8}
	real := startBackend(t, cdln, scfg)
	sb := newStallingBackend(t)

	f := &testFleet{backends: []*testBackend{real}}
	cfg := Config{
		Backends:      []string{real.url, sb.ts.URL},
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  time.Second,
		Hedge:         true,
		HedgeMin:      40 * time.Millisecond,
		HedgeMax:      40 * time.Millisecond,
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.router = rt
	f.ts = httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		f.ts.Close()
		rt.Close()
	})
	waitReady(t, f, 2)

	// Search for a body owned by the staller on the ring. The body must be
	// the exact bytes sent, so marshal first, then test placement.
	for off := 0; off < 4096; off++ {
		body, err := json.Marshal(serve.V2ClassifyRequest{Images: sampleImages(data, off, 1)})
		if err != nil {
			t.Fatal(err)
		}
		key := HashRequest(serve.DefaultModelName, body)
		if rt.ring.Owner(key) == 1 { // index 1 == the staller
			return f, sb, body
		}
	}
	t.Fatal("no request body hashed onto the stalling backend in 4096 tries")
	return nil, nil, nil
}

func TestHedgeRescuesStalledBackend(t *testing.T) {
	f, sb, body := startHedgeFleet(t)
	sb.stall.Store(true)

	baseline := runtime.NumGoroutine()

	client := &http.Client{Timeout: 10 * time.Second}
	url := f.URL() + "/v2/models/" + serve.DefaultModelName + "/classify"
	const storm = 25
	for i := 0; i < storm; i++ {
		start := time.Now()
		req, err := http.NewRequest(http.MethodPost, url, jsonBody(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		payload, err := readAll(resp)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: HTTP %d: %s", i, resp.StatusCode, payload)
		}
		// Exactly-once: the payload is one well-formed response document —
		// the winner's — never a concatenation or an empty race artifact.
		dec := json.NewDecoder(jsonBody(payload))
		var cr serve.V2ClassifyResponse
		if err := dec.Decode(&cr); err != nil {
			t.Fatalf("request %d: bad body: %v", i, err)
		}
		if dec.More() {
			t.Fatalf("request %d: more than one response document in the body", i)
		}
		if cr.Count != 1 {
			t.Fatalf("request %d: count %d, want 1", i, cr.Count)
		}
		if findExit(cr) == "stall" {
			t.Fatalf("request %d: answered by the stalled backend", i)
		}
		// The hedge fired after the deadline, not before: a response faster
		// than the hedge deadline would mean the primary answered.
		if took := time.Since(start); took < 35*time.Millisecond {
			t.Fatalf("request %d answered in %v — primary was supposed to stall", i, took)
		}
	}

	// Conservation: every hedge sent resolved exactly once, and in this
	// setup every request hedged and every hedge won.
	st := routerStats(t, f.URL())
	if st.HedgesSent != storm {
		t.Errorf("hedges_sent = %d, want %d", st.HedgesSent, storm)
	}
	if st.HedgesSent != st.HedgeWins+st.HedgeLosses {
		t.Errorf("hedge counters leak: sent %d != wins %d + losses %d",
			st.HedgesSent, st.HedgeWins, st.HedgeLosses)
	}
	if st.HedgeWins != storm {
		t.Errorf("hedge_wins = %d, want %d (the primary always stalls)", st.HedgeWins, storm)
	}
	if got := sb.answered.Load(); got != 0 {
		t.Errorf("stalled backend answered %d classifies, want 0", got)
	}

	// Loser cancellation, not loser leak: the stalled attempts must all be
	// cancelled and goroutine counts must settle back near baseline.
	deadline := time.Now().Add(5 * time.Second)
	for sb.cancelled.Load() < storm {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d stalled attempts were cancelled", sb.cancelled.Load(), storm)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines never settled: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestHedgeStaysIdleOnFastPrimary pins the no-straggler case: when the
// primary answers inside the deadline no hedge fires and no duplicate work
// is counted.
func TestHedgeStaysIdleOnFastPrimary(t *testing.T) {
	f, sb, body := startHedgeFleet(t)
	sb.stall.Store(false) // the "staller" answers instantly

	client := &http.Client{Timeout: 10 * time.Second}
	url := f.URL() + "/v2/models/" + serve.DefaultModelName + "/classify"
	for i := 0; i < 10; i++ {
		req, err := http.NewRequest(http.MethodPost, url, jsonBody(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = readAll(resp)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: HTTP %d", i, resp.StatusCode)
		}
	}
	st := routerStats(t, f.URL())
	if st.HedgesSent != 0 {
		t.Errorf("hedges_sent = %d on a fast fleet, want 0", st.HedgesSent)
	}
	if got := sb.answered.Load(); got != 10 {
		t.Errorf("primary answered %d, want 10", got)
	}
}

func findExit(cr serve.V2ClassifyResponse) string {
	if len(cr.Results) == 0 {
		return ""
	}
	return cr.Results[0].Exit
}
