package fleet

// swap_test.go: the rolling hot-swap storm. Repeated fleet-wide
// PUT /v2/models/{name} at the router during sustained traffic must drop
// nothing — every classify answers 200 (each backend's registry swap is
// zero-drop and the router drains one node at a time) — and no response
// may mix versions: the v2 version field must always be one the fleet
// actually published.

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cdl/internal/modelio"
	"cdl/internal/serve"
)

func TestFleetRollingSwapStorm(t *testing.T) {
	cdln, data := testCDLN(t, 41)
	f := startFleet(t, cdln, 3, nil)
	waitReady(t, f, 3)

	// The replacement artifact: the same trained cascade saved to disk —
	// version churn without behaviour churn, so correctness stays checkable.
	path := filepath.Join(t.TempDir(), "swap.cdln")
	fh, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := modelio.SaveCDLN(fh, cdln); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}

	const (
		loaders   = 4
		swaps     = 5
		perLoader = 60
	)
	var (
		ok, dropped atomic.Int64
		verMu       sync.Mutex
		badVersions []int
	)
	// Versions start at 1 (boot) and each fleet swap bumps every backend
	// by one, so anything outside [1, swaps+1] was never published.
	maxVersion := int64(1)

	var wg sync.WaitGroup
	for l := 0; l < loaders; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			for i := 0; i < perLoader; i++ {
				status, _, body := postJSON(t, client, f.URL()+"/v2/models/"+serve.DefaultModelName+"/classify",
					serve.V2ClassifyRequest{Images: sampleImages(data, l*131+i, 1)})
				if status != http.StatusOK {
					dropped.Add(1)
					continue
				}
				ok.Add(1)
				var cr serve.V2ClassifyResponse
				if err := json.Unmarshal(body, &cr); err != nil {
					t.Errorf("loader %d: bad body: %v", l, err)
					continue
				}
				if cr.Version < 1 || int64(cr.Version) > atomic.LoadInt64(&maxVersion) {
					verMu.Lock()
					badVersions = append(badVersions, cr.Version)
					verMu.Unlock()
				}
				time.Sleep(time.Millisecond)
			}
		}(l)
	}

	// The storm: rolling fleet swaps back to back while the load runs.
	swapClient := &http.Client{Timeout: 60 * time.Second}
	for s := 0; s < swaps; s++ {
		// Publish the higher bound before the swap starts: a response may
		// legitimately carry the new version the moment any backend swaps.
		atomic.StoreInt64(&maxVersion, int64(s+2))
		req := map[string]any{"path": path}
		status, _, body := func() (int, http.Header, []byte) {
			b, _ := json.Marshal(req)
			hr, err := http.NewRequest(http.MethodPut, f.URL()+"/v2/models/"+serve.DefaultModelName, jsonBody(b))
			if err != nil {
				t.Fatal(err)
			}
			hr.Header.Set("Content-Type", "application/json")
			resp, err := swapClient.Do(hr)
			if err != nil {
				t.Fatalf("swap %d: %v", s, err)
			}
			defer resp.Body.Close()
			var buf []byte
			buf, err = readAll(resp)
			if err != nil {
				t.Fatal(err)
			}
			return resp.StatusCode, resp.Header, buf
		}()
		if status != http.StatusOK {
			t.Fatalf("swap %d: HTTP %d: %s", s, status, body)
		}
		var sr SwapResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatalf("swap %d: bad body: %v", s, err)
		}
		if sr.Swapped != 3 || sr.Failed != "" {
			t.Fatalf("swap %d: swapped %d/3, failed=%q", s, sr.Swapped, sr.Failed)
		}
		for _, res := range sr.Results {
			if res.Version != s+2 {
				t.Errorf("swap %d: backend %s reports version %d, want %d", s, res.Backend, res.Version, s+2)
			}
		}
	}
	wg.Wait()

	if dropped.Load() != 0 {
		t.Errorf("%d requests dropped during the swap storm (want 0; the fleet swap must be zero-drop)", dropped.Load())
	}
	if got := ok.Load(); got != loaders*perLoader {
		t.Errorf("%d/%d requests succeeded", got, loaders*perLoader)
	}
	if len(badVersions) != 0 {
		t.Errorf("responses carried unpublished versions %v", badVersions)
	}

	// After the storm every backend must have converged on the final
	// version and none may still be marked draining.
	for _, b := range f.backends {
		srv := b.Server()
		if srv == nil {
			t.Fatal("backend vanished during the storm")
		}
		m, err := srv.Registry().Get(serve.DefaultModelName)
		if err != nil {
			t.Fatal(err)
		}
		if m.Version() != swaps+1 {
			t.Errorf("backend %s settled on version %d, want %d", b.url, m.Version(), swaps+1)
		}
	}
	st := routerStats(t, f.URL())
	if st.Swaps != swaps {
		t.Errorf("router counted %d fleet swaps, want %d", st.Swaps, swaps)
	}
	for _, bs := range st.Backends {
		if bs.Swapping {
			t.Errorf("backend %s still marked draining after the storm", bs.URL)
		}
	}
}

// TestFleetSwapAbortsOnFailure pins the rollout-stop contract: when a
// backend refuses the PUT mid-fleet, the swap stops there, reports the
// failure, and the fleet keeps serving.
func TestFleetSwapAbortsOnFailure(t *testing.T) {
	cdln, data := testCDLN(t, 42)
	f := startFleet(t, cdln, 3, nil)
	waitReady(t, f, 3)

	// A path that exists for no backend: every node refuses, so the swap
	// must stop at the first.
	req, _ := json.Marshal(map[string]any{"path": filepath.Join(t.TempDir(), "missing.cdln")})
	hr, err := http.NewRequest(http.MethodPut, f.URL()+"/v2/models/"+serve.DefaultModelName, jsonBody(req))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	resp, err := (&http.Client{Timeout: 30 * time.Second}).Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("fleet swap of a missing artifact reported success: %s", body)
	}
	var sr SwapResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("bad swap failure body: %v", err)
	}
	if sr.Swapped != 0 || sr.Failed == "" || len(sr.Results) != 1 {
		t.Errorf("swap should stop at the first refusal: swapped=%d failed=%q results=%d",
			sr.Swapped, sr.Failed, len(sr.Results))
	}
	if f.router.metrics.swapFailures.Load() == 0 {
		t.Error("swap failure not counted")
	}

	// The fleet still serves, on the original version.
	client := &http.Client{Timeout: 10 * time.Second}
	status, _, body := postJSON(t, client, f.URL()+"/v2/models/"+serve.DefaultModelName+"/classify",
		serve.V2ClassifyRequest{Images: sampleImages(data, 7, 1)})
	if status != http.StatusOK {
		t.Fatalf("fleet broken after failed swap: HTTP %d: %s", status, body)
	}
	var cr serve.V2ClassifyResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Version != 1 {
		t.Errorf("version %d after an aborted swap, want 1", cr.Version)
	}
}
