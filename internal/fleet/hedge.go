package fleet

import (
	"context"
	"time"

	"cdl/internal/obs"
)

// hedged forwards the attempt to primary and, if no answer lands within
// the per-model hedge deadline, re-sends the same input to secondary and
// returns whichever answers first. The loser's context is cancelled the
// moment a winner is chosen, and the result channel is buffered to the
// attempt count so the losing goroutine always completes — cancellation
// is observable (tests settle goroutine counts around hedge storms) and
// leak-free by construction.
//
// Counter conservation is the invariant the metrics tests pin:
// every hedge sent resolves exactly once as a win (the hedge's response
// was the one used — including the case where the primary had already
// failed) or a loss (the primary's response was used, or both failed).
// hedges_sent == hedge_wins + hedge_losses at every quiescent point.
func (rt *Router) hedged(ctx context.Context, primary, secondary *backend, method, path string, body []byte, model, traceID string, tr *obs.Trace) attemptResult {
	mm := rt.metrics.model(model)
	deadline := rt.hedgeDeadline(mm)

	type arrival struct {
		res    attemptResult
		hedge  bool
		cancel context.CancelFunc
	}
	results := make(chan arrival, 2)
	launch := func(b *backend, hedge bool) context.CancelFunc {
		actx, cancel := context.WithCancel(ctx)
		go func() {
			results <- arrival{res: rt.send(actx, b, method, path, body, traceID), hedge: hedge, cancel: cancel}
		}()
		return cancel
	}

	start := time.Now()
	pCancel := launch(primary, false)
	defer pCancel()

	timer := time.NewTimer(deadline)
	defer timer.Stop()

	hedgeSent := false
	var hCancel context.CancelFunc
	// resolve settles the hedge counters exactly once.
	resolve := func(hedgeWon bool) {
		if !hedgeSent {
			return
		}
		if hedgeWon {
			mm.hedgeWins.Add(1)
		} else {
			mm.hedgeLosses.Add(1)
		}
	}

	var first *arrival
	pending := 1
	for {
		select {
		case a := <-results:
			pending--
			if a.res.decisive() {
				// Winner. Cancel the other attempt (if any) and settle.
				if hedgeSent {
					if a.hedge {
						pCancel()
					} else if hCancel != nil {
						hCancel()
					}
					tr.Record("router:hedge", start, time.Now(), "model="+model+" winner="+hedgeLabel(a.hedge)+" backend="+a.res.backend.url)
				} else {
					tr.Record("router:pick", start, time.Now(), "backend="+a.res.backend.url+" model="+model)
				}
				resolve(a.hedge)
				a.res.hedged = hedgeSent
				a.res.hedgeWon = hedgeSent && a.hedge
				return a.res
			}
			// Non-decisive (transport error or 503).
			if a.res.err != nil && ctx.Err() == nil {
				a.res.backend.setHealthy(false)
			}
			if first == nil {
				cp := a
				first = &cp
			}
			if !hedgeSent {
				// Primary failed outright before the deadline: hedge
				// immediately rather than waiting out a timer that can no
				// longer be beaten.
				if ctx.Err() != nil {
					return a.res
				}
				mm.hedgesSent.Add(1)
				hedgeSent = true
				hCancel = launch(secondary, true)
				defer hCancel()
				pending++
				continue
			}
			if pending == 0 {
				// Both attempts non-decisive: report the primary's outcome
				// (stable for the client), count the hedge as a loss.
				tr.Record("router:hedge", start, time.Now(), "model="+model+" winner=none")
				resolve(false)
				if !first.hedge {
					first.res.hedged = true
					return first.res
				}
				a.res.hedged = true
				return a.res
			}
		case <-timer.C:
			if hedgeSent {
				continue
			}
			mm.hedgesSent.Add(1)
			hedgeSent = true
			hCancel = launch(secondary, true)
			defer hCancel()
			pending++
		case <-ctx.Done():
			// Client gone: cancel everything, settle any open hedge as a
			// loss, and report the cancellation. The launched goroutines
			// drain into the buffered channel and exit.
			resolve(false)
			return attemptResult{backend: primary, err: ctx.Err()}
		}
	}
}

func hedgeLabel(hedge bool) string {
	if hedge {
		return "hedge"
	}
	return "primary"
}

// hedgeDeadline picks the hedge trigger for one model: its own router-
// observed latency quantile once enough samples exist, clamped to
// [HedgeMin, HedgeMax]; before that, HedgeMax (hedge conservatively while
// the distribution is unknown).
func (rt *Router) hedgeDeadline(mm *modelMetrics) time.Duration {
	count, q := mm.latQuantile(rt.cfg.HedgeQuantile)
	if count < rt.cfg.HedgeMinSamples {
		return rt.cfg.HedgeMax
	}
	d := time.Duration(q * float64(time.Millisecond))
	if d < rt.cfg.HedgeMin {
		return rt.cfg.HedgeMin
	}
	if d > rt.cfg.HedgeMax {
		return rt.cfg.HedgeMax
	}
	return d
}

// hedgeTotals sums the hedge counters across models (the /statsz and
// conservation-check surface).
func (rt *Router) hedgeTotals() (sent, wins, losses int64) {
	rt.metrics.mu.Lock()
	defer rt.metrics.mu.Unlock()
	for _, mm := range rt.metrics.models {
		sent += mm.hedgesSent.Load()
		wins += mm.hedgeWins.Load()
		losses += mm.hedgeLosses.Load()
	}
	return
}
