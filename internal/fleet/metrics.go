package fleet

import (
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cdl/internal/control"
	"cdl/internal/obs"
	"cdl/internal/serve"
)

// routerMetrics aggregates the router's own counters: per-model request
// outcomes (keyed by the model label the client addressed) plus fleet-
// level probe and swap counts. Per-backend counters live on the backends
// themselves.
type routerMetrics struct {
	mu     sync.Mutex
	models map[string]*modelMetrics // guarded by mu

	probeErrors  atomic.Int64
	swaps        atomic.Int64
	swapFailures atomic.Int64
}

// maxModelSeries caps the per-model metric cardinality: model names come
// straight from URL paths, and an unbounded map would let a client mint
// series at will. Past the cap, new names fold into the overflow bucket.
const maxModelSeries = 256

const overflowModel = "_other"

// modelMetrics is one model's router-side counters.
type modelMetrics struct {
	requests    atomic.Int64
	retries     atomic.Int64
	sheds       atomic.Int64
	hedgesSent  atomic.Int64
	hedgeWins   atomic.Int64
	hedgeLosses atomic.Int64

	// alert is the router's own availability monitor for this model: a
	// forwarded 200 is good, a shed or transport failure burns budget. The
	// latency dimension lives on the backends; the fleet view merges both.
	alert *control.AlertMonitor

	// liveP99Bits/liveP99AtNS cache the router-observed p99 for the flight
	// recorder's anomaly gate, refreshed at most every liveP99RefreshNS so
	// the data path never computes a histogram quantile per request.
	liveP99Bits atomic.Uint64
	liveP99AtNS atomic.Int64

	latMu sync.Mutex
	lat   *control.Histogram // guarded by latMu; end-to-end router latency, ms
}

// liveP99RefreshNS bounds how often the flight anomaly gate recomputes the
// router-observed p99 from the latency histogram.
const liveP99RefreshNS = int64(250 * time.Millisecond)

// liveP99 returns the cached router-observed p99 for this model (0 until
// enough samples exist), recomputing at most every liveP99RefreshNS.
func (mm *modelMetrics) liveP99(nowNS int64) float64 {
	last := mm.liveP99AtNS.Load()
	if nowNS-last < liveP99RefreshNS {
		return math.Float64frombits(mm.liveP99Bits.Load())
	}
	if !mm.liveP99AtNS.CompareAndSwap(last, nowNS) {
		return math.Float64frombits(mm.liveP99Bits.Load())
	}
	count, p99 := mm.latQuantile(0.99)
	if count < flightP99MinSamples {
		p99 = 0
	}
	mm.liveP99Bits.Store(math.Float64bits(p99))
	return p99
}

func newRouterMetrics() *routerMetrics {
	return &routerMetrics{models: make(map[string]*modelMetrics)}
}

func (m *routerMetrics) model(name string) *modelMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	mm := m.models[name]
	if mm == nil {
		if len(m.models) >= maxModelSeries {
			name = overflowModel
			if mm = m.models[name]; mm != nil {
				return mm
			}
		}
		mm = &modelMetrics{
			lat:   control.NewHistogram(),
			alert: control.NewAlertMonitor(control.AlertConfig{}),
		}
		m.models[name] = mm
	}
	return mm
}

func (mm *modelMetrics) observeLatency(ms float64) {
	mm.latMu.Lock()
	mm.lat.Observe(ms)
	mm.latMu.Unlock()
}

// latQuantile returns the sample count and quantile q of the model's
// router-observed latency.
func (mm *modelMetrics) latQuantile(q float64) (int64, float64) {
	mm.latMu.Lock()
	defer mm.latMu.Unlock()
	return mm.lat.Count(), mm.lat.Quantile(q)
}

// histExportStep mirrors the serving tier's exposition granularity: every
// 8th histogram bucket becomes an exported bound.
const histExportStep = 8

// handleHealthz: the router process is up (probe state notwithstanding).
func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	serve.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz: ready iff at least one backend is ready — the router can
// do useful work. A fleet with zero ready backends reports 503 so an
// outer balancer stops sending it traffic.
func (rt *Router) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	ready := 0
	for _, b := range rt.backends {
		if b.healthy.Load() {
			ready++
		}
	}
	status := http.StatusOK
	if ready == 0 {
		status = http.StatusServiceUnavailable
	}
	serve.WriteJSON(w, status, map[string]any{
		"status":   map[bool]string{true: "ready", false: "unready"}[ready > 0],
		"ready":    ready,
		"backends": len(rt.backends),
	})
}

// BackendStats is one backend's row in the router's /statsz.
type BackendStats struct {
	URL        string  `json:"url"`
	Healthy    bool    `json:"healthy"`
	Swapping   bool    `json:"swapping"`
	Inflight   int64   `json:"inflight"`
	QueueDepth int64   `json:"queue_depth"`
	QueueFrac  float64 `json:"queue_frac"`
	P95MS      float64 `json:"p95_ms"`
	Requests   int64   `json:"requests"`
	Errors     int64   `json:"errors"`
	ProbeFails int64   `json:"probe_fails"`
}

// RouterStats is the router's /statsz document.
type RouterStats struct {
	UptimeSeconds float64               `json:"uptime_seconds"`
	Backends      []BackendStats        `json:"backends"`
	Models        map[string]ModelStats `json:"models"`
	HedgesSent    int64                 `json:"hedges_sent"`
	HedgeWins     int64                 `json:"hedge_wins"`
	HedgeLosses   int64                 `json:"hedge_losses"`
	Swaps         int64                 `json:"swaps"`
	SwapFailures  int64                 `json:"swap_failures"`
	ProbeErrors   int64                 `json:"probe_errors"`
}

// ModelStats is one model's row in the router's /statsz.
type ModelStats struct {
	Requests    int64   `json:"requests"`
	Retries     int64   `json:"retries"`
	Sheds       int64   `json:"sheds"`
	HedgesSent  int64   `json:"hedges_sent"`
	HedgeWins   int64   `json:"hedge_wins"`
	HedgeLosses int64   `json:"hedge_losses"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
}

// Stats snapshots the router's state (the /statsz payload).
func (rt *Router) Stats() RouterStats {
	out := RouterStats{
		UptimeSeconds: time.Since(rt.started).Seconds(),
		Models:        make(map[string]ModelStats),
	}
	for _, b := range rt.backends {
		out.Backends = append(out.Backends, BackendStats{
			URL:        b.url,
			Healthy:    b.healthy.Load(),
			Swapping:   b.swapping.Load(),
			Inflight:   b.inflight.Load(),
			QueueDepth: b.queueDepth.Load(),
			QueueFrac:  b.loadFrac(),
			P95MS:      b.probedP95(),
			Requests:   b.requests.Load(),
			Errors:     b.errors.Load(),
			ProbeFails: b.probeFails.Load(),
		})
	}
	rt.metrics.mu.Lock()
	for name, mm := range rt.metrics.models {
		mm.latMu.Lock()
		ms := ModelStats{
			Requests:    mm.requests.Load(),
			Retries:     mm.retries.Load(),
			Sheds:       mm.sheds.Load(),
			HedgesSent:  mm.hedgesSent.Load(),
			HedgeWins:   mm.hedgeWins.Load(),
			HedgeLosses: mm.hedgeLosses.Load(),
			P50MS:       mm.lat.Quantile(0.50),
			P95MS:       mm.lat.Quantile(0.95),
			P99MS:       mm.lat.Quantile(0.99),
		}
		mm.latMu.Unlock()
		out.Models[name] = ms
		out.HedgesSent += ms.HedgesSent
		out.HedgeWins += ms.HedgeWins
		out.HedgeLosses += ms.HedgeLosses
	}
	rt.metrics.mu.Unlock()
	out.Swaps = rt.metrics.swaps.Load()
	out.SwapFailures = rt.metrics.swapFailures.Load()
	out.ProbeErrors = rt.metrics.probeErrors.Load()
	return out
}

func (rt *Router) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	serve.WriteJSON(w, http.StatusOK, rt.Stats())
}

// FleetAlertz is the router's /alertz document: its own per-model
// availability monitors in the shared AlertzReport shape, plus every
// backend's last-probed burn-rate report keyed by backend URL.
type FleetAlertz struct {
	control.AlertzReport
	Backends map[string]control.AlertzReport `json:"backends,omitempty"`
}

// handleMetricsz renders the router's Prometheus exposition. Iteration
// orders are pinned (config order for backends, sorted names for models)
// so the output is deterministic and golden-testable.
func (rt *Router) handleMetricsz(w http.ResponseWriter, _ *http.Request) {
	p := obs.NewProm()
	p.Gauge("cdl_build_info", "Build identity (constant 1; the identity lives in the labels).", obs.BuildInfoLabels("fleet"), 1)
	p.Gauge("cdl_flight_enabled", "Whether the flight recorder is on (1) or off (0).", nil, boolGauge(obs.FlightEnabled()))
	p.Gauge("fleet_backends", "Configured backends.", nil, float64(len(rt.backends)))
	ready := 0
	for _, b := range rt.backends {
		if b.healthy.Load() {
			ready++
		}
	}
	p.Gauge("fleet_backends_ready", "Backends currently passing readiness probes.", nil, float64(ready))
	for _, b := range rt.backends {
		l := obs.Labels{{"backend", b.url}}
		p.Gauge("fleet_backend_healthy", "1 if the backend passed its last readiness probe.", l, boolGauge(b.healthy.Load()))
		p.Gauge("fleet_backend_swapping", "1 while the backend drains for a rolling swap.", l, boolGauge(b.swapping.Load()))
		p.Gauge("fleet_backend_inflight", "Router-side in-flight requests against the backend.", l, float64(b.inflight.Load()))
		p.Gauge("fleet_backend_queue_depth", "Backend queue depth from its last load probe.", l, float64(b.queueDepth.Load()))
		p.Gauge("fleet_backend_p95_ms", "Backend p95 total latency from its last load probe.", l, b.probedP95())
		p.Counter("fleet_backend_requests_total", "Forwarded attempts answered by the backend.", l, float64(b.requests.Load()))
		p.Counter("fleet_backend_errors_total", "Forwarded attempts that died in transport.", l, float64(b.errors.Load()))
		p.Counter("fleet_backend_probe_fails_total", "Probe rounds that found the backend unready.", l, float64(b.probeFails.Load()))
		if rep := b.alertz.Load(); rep != nil {
			p.Gauge("fleet_backend_alert_active", "1 while the backend's own burn-rate monitor pages (from its last-probed /alertz).", l, boolGauge(rep.Active))
		}
	}

	rt.metrics.mu.Lock()
	names := make([]string, 0, len(rt.metrics.models))
	for name := range rt.metrics.models {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mm := rt.metrics.models[name]
		l := obs.Labels{{"model", name}}
		p.Counter("fleet_requests_total", "Requests routed, by model.", l, float64(mm.requests.Load()))
		p.Counter("fleet_retries_total", "Failover retries after a failed attempt, by model.", l, float64(mm.retries.Load()))
		p.Counter("fleet_sheds_total", "Requests shed (no backend, or backend 503), by model.", l, float64(mm.sheds.Load()))
		p.Counter("fleet_hedges_sent_total", "Hedge attempts launched, by model.", l, float64(mm.hedgesSent.Load()))
		p.Counter("fleet_hedge_wins_total", "Hedges whose response was used, by model.", l, float64(mm.hedgeWins.Load()))
		p.Counter("fleet_hedge_losses_total", "Hedges whose response was discarded, by model.", l, float64(mm.hedgeLosses.Load()))
		mm.latMu.Lock()
		bounds, counts, sum, total := mm.lat.Export(histExportStep)
		mm.latMu.Unlock()
		p.Histogram("fleet_latency_ms", "End-to-end router latency, by model.", l, bounds, counts, sum, total)
		st := mm.alert.Status()
		p.Gauge("cdl_alert_active", "Whether any router-side burn-rate window is firing for this model.", l, boolGauge(st.Active))
		p.Gauge("cdl_alert_fast_burn_rate", "Error-budget burn rate over the fast window (1.0 = exactly on budget).", l, st.Fast.BurnRate)
		p.Gauge("cdl_alert_slow_burn_rate", "Error-budget burn rate over the slow window.", l, st.Slow.BurnRate)
		p.Counter("cdl_alert_bad_total", "Requests that burned error budget (shed or transport failure).", l, float64(st.TotalBad))
		p.Counter("cdl_alert_good_total", "Requests forwarded successfully.", l, float64(st.TotalGood))
		fst := rt.flights.Recorder(name).Stats()
		p.Counter("cdl_flight_seen_total", "Requests offered to the flight recorder.", l, float64(fst.Seen))
		p.Counter("cdl_flight_anomalous_total", "Requests tail-retained with full span trees.", l, float64(fst.Anomalous))
		p.Gauge("cdl_flight_buffered", "Records currently live in the flight ring.", l, float64(fst.Buffered))
	}
	rt.metrics.mu.Unlock()

	p.Counter("fleet_probe_errors_total", "Load probes that failed against ready backends.", nil, float64(rt.metrics.probeErrors.Load()))
	p.Counter("fleet_swaps_total", "Rolling fleet swaps completed.", nil, float64(rt.metrics.swaps.Load()))
	p.Counter("fleet_swap_failures_total", "Rolling fleet swaps aborted mid-fleet.", nil, float64(rt.metrics.swapFailures.Load()))

	w.Header().Set("Content-Type", obs.ContentType)
	_, _ = p.WriteTo(w)
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
