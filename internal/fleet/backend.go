package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"cdl/internal/control"
	"cdl/internal/obs"
	"cdl/internal/serve"
)

// backend is the router's live view of one cdlserve process: identity,
// probed health and load, and the router-side counters that feed bounded-
// load overflow and /metricsz. All mutable state is atomic — the request
// path reads it lock-free on every pick.
type backend struct {
	url string

	// healthy flips on /readyz probes and on live transport errors (a
	// failed forward marks the backend down immediately — rerouting never
	// waits out a probe interval). lastTransition stamps the flip for
	// /statsz.
	healthy        atomic.Bool
	lastTransition atomic.Int64 // unix nanos

	// swapping marks a backend mid-rolling-swap: the picker drains it
	// (prefers its ring successors for new traffic) while the per-node
	// zero-drop swap runs, and re-admits it when the swap completes.
	swapping atomic.Bool

	// inflight is the router's outstanding request count against this
	// backend — the bounded-load signal that is always fresh, unlike the
	// probed queue depth.
	inflight atomic.Int64

	// Probed load (written by the probe loop, read by the picker):
	// queueDepth and queueFrac from the backend's own telemetry, p95 of
	// its total-latency histogram in milliseconds (float bits).
	queueDepth atomic.Int64
	queueFrac  atomic.Uint64 // math.Float64bits
	p95MS      atomic.Uint64 // math.Float64bits
	lastProbe  atomic.Int64  // unix nanos of the last successful probe

	// Router-side counters.
	requests   atomic.Int64 // forwarded attempts that produced an HTTP response
	errors     atomic.Int64 // forwarded attempts that died in transport
	probeFails atomic.Int64 // probe rounds that found the backend unready/unreachable

	// alertz caches the backend's last-probed burn-rate report (nil until
	// the first successful fetch; best-effort — a backend without /alertz
	// simply never populates the fleet alert view).
	alertz atomic.Pointer[control.AlertzReport]
}

func newBackend(raw string) (*backend, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("fleet: backend %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("fleet: backend %q must be an http(s) base URL", raw)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("fleet: backend %q has no host", raw)
	}
	b := &backend{url: strings.TrimRight(raw, "/")}
	// Start unknown-down: the first probe round (run synchronously at
	// router construction) admits reachable backends before traffic flows.
	b.healthy.Store(false)
	return b, nil
}

func (b *backend) setHealthy(ok bool) {
	if b.healthy.Swap(ok) != ok {
		b.lastTransition.Store(time.Now().UnixNano())
	}
}

func (b *backend) setLoad(depth int64, frac, p95 float64) {
	b.queueDepth.Store(depth)
	b.queueFrac.Store(math.Float64bits(frac))
	b.p95MS.Store(math.Float64bits(p95))
	b.lastProbe.Store(time.Now().UnixNano())
}

func (b *backend) loadFrac() float64 { return math.Float64frombits(b.queueFrac.Load()) }
func (b *backend) probedP95() float64 {
	return math.Float64frombits(b.p95MS.Load())
}

// Load sources for Config.LoadSource.
const (
	// LoadFromMetricsz parses the backend's Prometheus /metricsz
	// exposition (queue-depth gauges and the total-latency histogram).
	LoadFromMetricsz = "metricsz"
	// LoadFromStatsz polls GET /statsz?summary=1 — the compact JSON load
	// summary internal/serve exports for exactly this purpose; much
	// cheaper to produce and parse than a full scrape.
	LoadFromStatsz = "statsz"
)

// probeOnce refreshes one backend: /readyz decides health, and (when the
// backend is ready) the configured load source refreshes its weight. Probe
// failures never panic the loop; they mark the backend down and count.
func (rt *Router) probeOnce(ctx context.Context, b *backend) {
	ready := rt.probeReady(ctx, b)
	b.setHealthy(ready)
	if !ready {
		b.probeFails.Add(1)
		return
	}
	depth, frac, p95, err := rt.probeLoad(ctx, b)
	if err != nil {
		// Ready but unreadable telemetry: keep serving it (readiness is
		// authoritative), just don't update its weight.
		rt.metrics.probeErrors.Add(1)
		return
	}
	b.setLoad(depth, frac, p95)
	rt.probeAlertz(ctx, b)
}

// probeAlertz piggybacks the backend's burn-rate state on the probe round:
// the fleet /alertz view aggregates these cached reports, so a breaching
// backend surfaces at the front door within one probe interval. Failures
// are silent — the report just goes stale until the next round.
func (rt *Router) probeAlertz(ctx context.Context, b *backend) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/alertz", nil)
	if err != nil {
		return
	}
	resp, err := rt.probeClient.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return
	}
	var rep control.AlertzReport
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxProbeBody)).Decode(&rep); err != nil {
		return
	}
	b.alertz.Store(&rep)
}

// probeReady is the /readyz check: any 200 is ready, everything else
// (including transport errors) is not.
func (rt *Router) probeReady(ctx context.Context, b *backend) bool {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.probeClient.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	return resp.StatusCode == http.StatusOK
}

// probeLoad reads the backend's load via the configured source.
func (rt *Router) probeLoad(ctx context.Context, b *backend) (depth int64, frac, p95 float64, err error) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	switch rt.cfg.LoadSource {
	case LoadFromStatsz:
		return rt.loadFromStatsz(ctx, b)
	default:
		return rt.loadFromMetricsz(ctx, b)
	}
}

// loadFromMetricsz scrapes and parses the backend's Prometheus text
// exposition: queue depth is the cdl_queue_depth sum across its models,
// occupancy derives from the queue-capacity share, and p95 comes from the
// cdl_total_latency_ms histogram with every model's series merged.
func (rt *Router) loadFromMetricsz(ctx context.Context, b *backend) (int64, float64, float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/metricsz", nil)
	if err != nil {
		return 0, 0, 0, err
	}
	resp, err := rt.probeClient.Do(req)
	if err != nil {
		return 0, 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, 0, fmt.Errorf("fleet: %s/metricsz: HTTP %d", b.url, resp.StatusCode)
	}
	samples, err := obs.ParseProm(io.LimitReader(resp.Body, maxProbeBody))
	if err != nil {
		return 0, 0, 0, err
	}
	depth := obs.SumSamples(samples, "cdl_queue_depth", nil)
	// Queue occupancy: each model's queue is bounded by the same
	// configured depth; the worst per-model fraction is the shed-risk
	// signal. Without a capacity gauge, approximate with depth over the
	// deepest queue observed... the exposition has cdl_queue_depth per
	// model but no capacity, so fall back to worker saturation: depth
	// relative to workers. A backend with depth >> workers is backlogged.
	workers := obs.SumSamples(samples, "cdl_workers", nil)
	frac := 0.0
	if workers > 0 {
		frac = depth / (workers * queueFracWorkerScale)
	}
	p95, ok := obs.HistogramQuantile(samples, "cdl_total_latency_ms", nil, 0.95)
	if !ok {
		p95 = 0
	}
	return int64(depth), clamp01(frac), p95, nil
}

// queueFracWorkerScale scales queue depth into a rough occupancy when the
// scrape source is /metricsz (which exports no queue capacity): a backlog
// of this many jobs per worker counts as fully occupied.
const queueFracWorkerScale = 64

// loadFromStatsz polls the compact serve.LoadSummary.
func (rt *Router) loadFromStatsz(ctx context.Context, b *backend) (int64, float64, float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/statsz?summary=1", nil)
	if err != nil {
		return 0, 0, 0, err
	}
	resp, err := rt.probeClient.Do(req)
	if err != nil {
		return 0, 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, 0, fmt.Errorf("fleet: %s/statsz?summary=1: HTTP %d", b.url, resp.StatusCode)
	}
	var sum serve.LoadSummary
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxProbeBody)).Decode(&sum); err != nil {
		return 0, 0, 0, err
	}
	return int64(sum.QueueDepth), clamp01(sum.QueueFrac), sum.P95TotalMS, nil
}

// maxProbeBody bounds what a probe will read from a backend: a hostile or
// broken backend must not balloon the router.
const maxProbeBody = 4 << 20

func clamp01(f float64) float64 {
	if f < 0 || math.IsNaN(f) {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// probeLoop probes every backend each interval until the router closes.
// The per-round probes run concurrently so one hung backend cannot stall
// the round past its timeout.
func (rt *Router) probeLoop() {
	defer rt.wg.Done()
	ticker := time.NewTicker(rt.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
			rt.probeRound()
		}
	}
}

// probeRound refreshes every backend concurrently and waits for the round.
func (rt *Router) probeRound() {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout+time.Second)
	defer cancel()
	done := make(chan struct{}, len(rt.backends))
	for _, b := range rt.backends {
		go func(b *backend) {
			rt.probeOnce(ctx, b)
			done <- struct{}{}
		}(b)
	}
	for range rt.backends {
		<-done
	}
}
