package modelio

import (
	"bytes"
	"math/rand"
	"testing"

	"cdl/internal/core"
	"cdl/internal/mnist"
	"cdl/internal/nn"
	"cdl/internal/tensor"
	"cdl/internal/train"
)

func trainedPair(t *testing.T) (*core.CDLN, []train.Sample) {
	t.Helper()
	imgs, err := mnist.Generate(mnist.GenConfig{N: 200, Seed: 9, BalanceClasses: true})
	if err != nil {
		t.Fatal(err)
	}
	data := mnist.ToSamples(imgs)
	arch := nn.Arch6Layer(rand.New(rand.NewSource(2)))
	cfg := train.Defaults(10)
	cfg.Epochs = 3
	if _, err := train.SGD(arch.Net, data, cfg); err != nil {
		t.Fatal(err)
	}
	bcfg := core.DefaultBuildConfig()
	bcfg.ForceAllStages = true
	cdln, _, err := core.Build(arch, data, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	return cdln, data
}

func TestArchRoundTrip(t *testing.T) {
	cdln, data := trainedPair(t)
	arch := cdln.Arch

	var buf bytes.Buffer
	if err := SaveArch(&buf, arch); err != nil {
		t.Fatal(err)
	}
	back, err := LoadArch(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != arch.Name || back.NumClasses != arch.NumClasses {
		t.Error("arch metadata lost")
	}
	if len(back.Taps) != len(arch.Taps) {
		t.Fatal("taps lost")
	}
	// Outputs must be bit-identical on real inputs.
	for i := 0; i < 10; i++ {
		a := arch.Net.Forward(data[i].X)
		b := back.Net.Forward(data[i].X)
		if !tensor.Equal(a, b) {
			t.Fatalf("forward mismatch on sample %d", i)
		}
	}
}

func TestCDLNRoundTrip(t *testing.T) {
	cdln, data := trainedPair(t)

	var buf bytes.Buffer
	if err := SaveCDLN(&buf, cdln); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCDLN(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Delta != cdln.Delta || back.Rule.Name() != cdln.Rule.Name() {
		t.Error("δ or rule lost")
	}
	if len(back.Stages) != len(cdln.Stages) {
		t.Fatalf("stages %d, want %d", len(back.Stages), len(cdln.Stages))
	}
	for i := range cdln.Stages {
		if back.Stages[i].Gain != cdln.Stages[i].Gain {
			t.Error("stage gain lost")
		}
	}
	// Exit decisions and labels must be identical.
	for i := 0; i < 30; i++ {
		a := cdln.Classify(data[i].X)
		b := back.Classify(data[i].X)
		if !a.Equal(b) {
			t.Fatalf("classify mismatch on sample %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := LoadArch(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Error("garbage arch accepted")
	}
	if _, err := LoadCDLN(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("garbage cdln accepted")
	}
}

func TestAllLayerKindsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := nn.NewNetwork([]int{1, 8, 8},
		nn.NewConv2D("c", 1, 2, 3),
		nn.NewTanh("t"),
		nn.NewMeanPool2D("mp", 2),
		nn.NewReLU("r"),
		nn.NewFlatten("f"),
		nn.NewDense("d", 2*3*3, 5),
		nn.NewSoftmax("sm"),
	)
	nn.InitNetwork(net, rng)
	arch := &nn.Arch{Name: "kinds", Net: net, Taps: []int{3}, TapNames: []string{"mp"}, NumClasses: 5}

	var buf bytes.Buffer
	if err := SaveArch(&buf, arch); err != nil {
		t.Fatal(err)
	}
	back, err := LoadArch(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 8, 8)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	if !tensor.Equal(arch.Net.Forward(x), back.Net.Forward(x)) {
		t.Error("all-kinds network changed behaviour after round trip")
	}
}
