package modelio

// fuzz_test.go hardens LoadCDLN against hostile model files: the registry
// (internal/serve) now loads operator-supplied paths at runtime (PUT
// /v2/models/{name}), so a torn, truncated or malicious file must produce
// an error — never a panic, never a structurally inconsistent CDLN. CI
// runs a 30-second `go test -fuzz` smoke alongside the wire fuzzer; the
// checked-in corpus under testdata/fuzz/FuzzLoadCDLN pins the interesting
// regions (a valid file, truncations, corrupted version/rule/width fields)
// so even the plain `go test` run replays them. Regenerate the corpus with
// -update-fuzz-corpus after a deliberate format change.

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"cdl/internal/core"
	"cdl/internal/linclass"
	"cdl/internal/nn"
	"cdl/internal/opcount"
	"cdl/internal/tensor"
)

var updateFuzzCorpus = flag.Bool("update-fuzz-corpus", false, "rewrite testdata/fuzz/FuzzLoadCDLN seed files")

// fuzzCDLN builds a tiny structurally valid CDLN without training: an
// 8×8 single-conv baseline with one tapped stage. Deterministic, so the
// generated seed bytes are stable.
func fuzzCDLN() *core.CDLN {
	rng := rand.New(rand.NewSource(7))
	net := nn.NewNetwork([]int{1, 8, 8},
		nn.NewConv2D("C1", 1, 2, 3),
		nn.NewSigmoid("C1.act"),
		nn.NewMaxPool2D("P1", 2),
		nn.NewFlatten("flat"),
		nn.NewDense("FC", 2*3*3, 3),
		nn.NewSigmoid("FC.act"),
	)
	nn.InitNetwork(net, rng)
	arch := &nn.Arch{
		Name: "fuzz-tiny", Net: net,
		Taps: []int{3}, TapNames: []string{"P1"},
		NumClasses: 3,
	}
	lc := &linclass.Classifier{In: 2 * 3 * 3, Out: 3, W: tensor.New(3, 2*3*3), B: tensor.New(3)}
	for i := range lc.W.Data {
		lc.W.Data[i] = rng.NormFloat64() * 0.1
	}
	rule, err := core.RuleByName("threshold")
	if err != nil {
		panic(err)
	}
	return &core.CDLN{
		Arch:   arch,
		Stages: []*core.Stage{{Name: "O1", Tap: 3, LC: lc, Gain: 1}},
		Delta:  0.5,
		Rule:   rule,
		Ops:    opcount.Default(),
	}
}

// fuzzSeeds returns seed inputs spanning the decoder's decision points: a
// valid file, truncations at several depths, and byte corruptions aimed at
// the version, rule and weight-width fields.
func fuzzSeeds(t testing.TB) [][]byte {
	var buf bytes.Buffer
	if err := SaveCDLN(&buf, fuzzCDLN()); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	corrupt := func(off int, b byte) []byte {
		c := append([]byte(nil), valid...)
		if off < len(c) {
			c[off] ^= b
		}
		return c
	}
	var routed bytes.Buffer
	if err := SaveGraph(&routed, fuzzGraph()); err != nil {
		t.Fatal(err)
	}
	seeds := [][]byte{
		valid,
		valid[:len(valid)/2],       // truncated mid-weights
		valid[:8],                  // header only
		{},                         // empty
		[]byte("not a gob stream"), // garbage
		corrupt(4, 0xff),           // mangled type descriptor
		corrupt(len(valid)/2, 0x55),
		corrupt(len(valid)-2, 0xaa),
		append(append([]byte(nil), valid...), valid[:32]...), // trailing junk
		// A routed-graph (version 2) file: LoadCDLN must reject it cleanly
		// (branch topology is LoadGraph's domain), never misread the trunk.
		routed.Bytes(),
		routed.Bytes()[:routed.Len()/2], // truncated routed file
	}
	return seeds
}

// FuzzLoadCDLN is the satellite fuzz target: whatever the bytes, LoadCDLN
// must either error or return a CDLN that validates and round-trips
// through SaveCDLN.
func FuzzLoadCDLN(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		c, err := LoadCDLN(bytes.NewReader(b))
		if err != nil {
			return
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("LoadCDLN returned an invalid CDLN: %v", verr)
		}
		// A loadable model must be savable: the registry hot-swap contract
		// is load → serve → (atomic) save elsewhere, with no dead ends.
		var buf bytes.Buffer
		if serr := SaveCDLN(&buf, c); serr != nil {
			t.Fatalf("loaded CDLN does not re-save: %v", serr)
		}
	})
}

// TestLoadCDLNMalformedSeedsError pins the malformed seeds to hard errors
// (FuzzLoadCDLN only demands no-panic; these specific corruptions must
// also be rejected, not misread into a servable model).
func TestLoadCDLNMalformedSeedsError(t *testing.T) {
	seeds := fuzzSeeds(t)
	// seeds[0] is the valid file; every pure truncation/garbage case after
	// it must error. (Single-byte corruptions may still decode — gob is
	// self-describing but not checksummed — so they are fuzz seeds, not
	// hard-error cases; Validate catches the structurally fatal ones.)
	for i, s := range [][]byte{seeds[1], seeds[2], seeds[3], seeds[4]} {
		if _, err := LoadCDLN(bytes.NewReader(s)); err == nil {
			t.Errorf("malformed seed %d decoded without error", i+1)
		}
	}
	if _, err := LoadCDLN(bytes.NewReader(seeds[0])); err != nil {
		t.Errorf("valid seed rejected: %v", err)
	}
}

// TestWriteFuzzCorpus materializes the seed corpora (FuzzLoadCDLN and
// FuzzLoadGraph) under testdata so the fuzz engine (and plain `go test`)
// replays them from disk; run with -update-fuzz-corpus to regenerate after
// a format change.
func TestWriteFuzzCorpus(t *testing.T) {
	if !*updateFuzzCorpus {
		t.Skip("run with -update-fuzz-corpus to regenerate")
	}
	for target, seeds := range map[string][][]byte{
		"FuzzLoadCDLN":  fuzzSeeds(t),
		"FuzzLoadGraph": graphFuzzSeeds(t),
	} {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, s := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(s)))
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}
