// Package modelio serializes trained models (baseline DLNs and CDLNs) so
// the cmd tools can separate training from evaluation. The on-disk format
// is a gob-encoded structural spec: layer kinds, hyper-parameters and
// weight payloads — not Go object graphs — so files stay readable across
// refactors of the layer types.
package modelio

import (
	"encoding/gob"
	"fmt"
	"io"

	"cdl/internal/core"
	"cdl/internal/linclass"
	"cdl/internal/nn"
	"cdl/internal/opcount"
	"cdl/internal/tensor"
)

// formatVersion guards against decoding files from incompatible revisions.
// graphFormatVersion marks a routed-graph file (SaveGraph of a non-linear
// model); linear models — graphs with one routeless node included — stay
// at formatVersion, so every pre-graph file loads unchanged and every
// linear save stays loadable by pre-graph readers.
const (
	formatVersion      = 1
	graphFormatVersion = 2
)

// maxSpecElems bounds any single decoded weight tensor (and any layer's
// implied allocation) to 4M elements (32 MB of float64) — orders of
// magnitude above the paper's models, small enough that a hostile file
// cannot make the loader allocate unbounded memory before validation
// rejects it. maxSpecLayers likewise bounds the layer count, so the
// cumulative allocation across a decode is capped too. The registry
// (internal/serve) hot-loads operator-supplied paths at runtime, so
// decode-time resource bounds are part of the format contract, not just
// hygiene.
const (
	maxSpecElems  = 1 << 22
	maxSpecLayers = 256
	// maxGraphNodes bounds a routed-graph file's node count: together with
	// maxSpecLayers/maxSpecElems it caps the total allocation a hostile
	// graph file can demand before core.Graph.Validate rejects its
	// topology (cycles, orphans, shape mismatches).
	maxGraphNodes = 64
)

// checkDims rejects non-positive or overflow-prone dimensions before any
// layer constructor allocates from them.
func checkDims(kind, name string, dims ...int) error {
	total := 1
	for _, d := range dims {
		if d <= 0 || d > maxSpecElems {
			return fmt.Errorf("modelio: %s %q dimension %d outside [1,%d]", kind, name, d, maxSpecElems)
		}
		total *= d
		if total > maxSpecElems {
			return fmt.Errorf("modelio: %s %q implies more than %d elements", kind, name, maxSpecElems)
		}
	}
	return nil
}

type layerSpec struct {
	Kind    string // "conv", "maxpool", "meanpool", "dense", "sigmoid", "tanh", "relu", "flatten", "softmax"
	Name    string
	Ints    map[string]int
	Weights map[string][]float64
}

type archSpec struct {
	Version    int
	Name       string
	InShape    []int
	Layers     []layerSpec
	Taps       []int
	TapNames   []string
	NumClasses int
}

type stageSpec struct {
	Name    string
	Tap     int
	In, Out int
	W, B    []float64
	Gain    float64
}

type cdlnSpec struct {
	Version     int
	Arch        archSpec
	Stages      []stageSpec
	Delta       float64
	StageDeltas []float64
	Rule        string
}

// routeSpec is one dispatch point of a graph node: the stage it sits at
// and the class→target map (−1 = continue on the node).
type routeSpec struct {
	Stage  int
	Branch []int
}

// graphNodeSpec is one node of a routed-graph file: a full cascade spec
// plus its name, label mapping and routes.
type graphNodeSpec struct {
	Name   string
	Model  cdlnSpec
	Labels []int
	Routes []routeSpec
}

// graphSpec is the top-level decode target for both file versions. Gob
// matches struct fields by name, so a version-1 file (an encoded cdlnSpec)
// decodes into the leading fields with Nodes empty, and a version-2 file
// (routed graph) populates Nodes with the linear fields empty.
type graphSpec struct {
	Version     int
	Arch        archSpec
	Stages      []stageSpec
	Delta       float64
	StageDeltas []float64
	Rule        string
	Nodes       []graphNodeSpec
}

func specFromLayer(l nn.Layer) (layerSpec, error) {
	s := layerSpec{Name: l.Name(), Ints: map[string]int{}, Weights: map[string][]float64{}}
	switch t := l.(type) {
	case *nn.Conv2D:
		s.Kind = "conv"
		s.Ints["inC"], s.Ints["outC"], s.Ints["k"] = t.InChannels(), t.OutChannels(), t.KernelSize()
		s.Weights["w"] = append([]float64(nil), t.Weight().W.Data...)
		s.Weights["b"] = append([]float64(nil), t.Bias().W.Data...)
	case *nn.Dense:
		s.Kind = "dense"
		s.Ints["in"], s.Ints["out"] = t.In(), t.Out()
		s.Weights["w"] = append([]float64(nil), t.Weight().W.Data...)
		s.Weights["b"] = append([]float64(nil), t.Bias().W.Data...)
	case *nn.MaxPool2D:
		s.Kind = "maxpool"
		s.Ints["win"] = t.Window()
	case *nn.MeanPool2D:
		s.Kind = "meanpool"
		s.Ints["win"] = t.Window()
	case *nn.Sigmoid:
		s.Kind = "sigmoid"
	case *nn.Tanh:
		s.Kind = "tanh"
	case *nn.ReLU:
		s.Kind = "relu"
	case *nn.Flatten:
		s.Kind = "flatten"
	case *nn.Softmax:
		s.Kind = "softmax"
	case *nn.Dropout:
		// Serialized for structural completeness; a loaded model is for
		// inference, where dropout is the identity.
		s.Kind = "dropout"
		s.Weights["rate"] = []float64{t.Rate}
	default:
		return s, fmt.Errorf("modelio: unsupported layer type %T", l)
	}
	return s, nil
}

func layerFromSpec(s layerSpec) (nn.Layer, error) {
	switch s.Kind {
	case "conv":
		if err := checkDims("conv", s.Name, s.Ints["inC"], s.Ints["outC"], s.Ints["k"], s.Ints["k"]); err != nil {
			return nil, err
		}
		c := nn.NewConv2D(s.Name, s.Ints["inC"], s.Ints["outC"], s.Ints["k"])
		if err := fill(c.Weight().W, s.Weights["w"]); err != nil {
			return nil, fmt.Errorf("modelio: %s weights: %w", s.Name, err)
		}
		if err := fill(c.Bias().W, s.Weights["b"]); err != nil {
			return nil, fmt.Errorf("modelio: %s bias: %w", s.Name, err)
		}
		return c, nil
	case "dense":
		if err := checkDims("dense", s.Name, s.Ints["in"], s.Ints["out"]); err != nil {
			return nil, err
		}
		d := nn.NewDense(s.Name, s.Ints["in"], s.Ints["out"])
		if err := fill(d.Weight().W, s.Weights["w"]); err != nil {
			return nil, fmt.Errorf("modelio: %s weights: %w", s.Name, err)
		}
		if err := fill(d.Bias().W, s.Weights["b"]); err != nil {
			return nil, fmt.Errorf("modelio: %s bias: %w", s.Name, err)
		}
		return d, nil
	case "maxpool":
		if err := checkDims("maxpool", s.Name, s.Ints["win"]); err != nil {
			return nil, err
		}
		return nn.NewMaxPool2D(s.Name, s.Ints["win"]), nil
	case "meanpool":
		if err := checkDims("meanpool", s.Name, s.Ints["win"]); err != nil {
			return nil, err
		}
		return nn.NewMeanPool2D(s.Name, s.Ints["win"]), nil
	case "sigmoid":
		return nn.NewSigmoid(s.Name), nil
	case "tanh":
		return nn.NewTanh(s.Name), nil
	case "relu":
		return nn.NewReLU(s.Name), nil
	case "flatten":
		return nn.NewFlatten(s.Name), nil
	case "softmax":
		return nn.NewSoftmax(s.Name), nil
	case "dropout":
		rate := 0.0
		if v := s.Weights["rate"]; len(v) == 1 {
			rate = v[0]
		}
		d := nn.NewDropout(s.Name, rate, 1)
		d.SetTraining(false) // loaded models are inference models
		return d, nil
	}
	return nil, fmt.Errorf("modelio: unknown layer kind %q", s.Kind)
}

func fill(dst *tensor.T, src []float64) error {
	if len(src) != dst.Numel() {
		return fmt.Errorf("payload has %d values, want %d", len(src), dst.Numel())
	}
	copy(dst.Data, src)
	return nil
}

func specFromArch(a *nn.Arch) (archSpec, error) {
	s := archSpec{
		Version:    formatVersion,
		Name:       a.Name,
		InShape:    a.Net.InShape,
		Taps:       a.Taps,
		TapNames:   a.TapNames,
		NumClasses: a.NumClasses,
	}
	for _, l := range a.Net.Layers {
		ls, err := specFromLayer(l)
		if err != nil {
			return s, err
		}
		s.Layers = append(s.Layers, ls)
	}
	return s, nil
}

func archFromSpec(s archSpec) (*nn.Arch, error) {
	if s.Version != formatVersion {
		return nil, fmt.Errorf("modelio: format version %d, want %d", s.Version, formatVersion)
	}
	if len(s.InShape) == 0 || len(s.InShape) > 8 {
		return nil, fmt.Errorf("modelio: input rank %d outside [1,8]", len(s.InShape))
	}
	if err := checkDims("input", s.Name, s.InShape...); err != nil {
		return nil, err
	}
	if len(s.Layers) > maxSpecLayers {
		return nil, fmt.Errorf("modelio: %d layers exceed the cap %d", len(s.Layers), maxSpecLayers)
	}
	layers := make([]nn.Layer, 0, len(s.Layers))
	for _, ls := range s.Layers {
		l, err := layerFromSpec(ls)
		if err != nil {
			return nil, err
		}
		layers = append(layers, l)
	}
	a := &nn.Arch{
		Name:       s.Name,
		Net:        nn.NewNetwork(s.InShape, layers...),
		Taps:       s.Taps,
		TapNames:   s.TapNames,
		NumClasses: s.NumClasses,
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// SaveArch writes a trained baseline architecture (structure + weights).
func SaveArch(w io.Writer, a *nn.Arch) error {
	s, err := specFromArch(a)
	if err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(s)
}

// LoadArch reads a baseline architecture saved with SaveArch.
func LoadArch(r io.Reader) (*nn.Arch, error) {
	var s archSpec
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("modelio: decode arch: %w", err)
	}
	return archFromSpec(s)
}

// specFromCDLN folds a validated cascade into its on-disk spec.
func specFromCDLN(c *core.CDLN) (cdlnSpec, error) {
	if err := c.Validate(); err != nil {
		return cdlnSpec{}, err
	}
	as, err := specFromArch(c.Arch)
	if err != nil {
		return cdlnSpec{}, err
	}
	s := cdlnSpec{
		Version:     formatVersion,
		Arch:        as,
		Delta:       c.Delta,
		StageDeltas: c.StageDeltas,
		Rule:        c.Rule.Name(),
	}
	for _, st := range c.Stages {
		s.Stages = append(s.Stages, stageSpec{
			Name: st.Name,
			Tap:  st.Tap,
			In:   st.LC.In, Out: st.LC.Out,
			W:    append([]float64(nil), st.LC.W.Data...),
			B:    append([]float64(nil), st.LC.B.Data...),
			Gain: st.Gain,
		})
	}
	return s, nil
}

// cdlnFromSpec rebuilds and validates a cascade from its spec, applying
// the bounded-allocation dimension checks before any constructor
// allocates.
func cdlnFromSpec(s cdlnSpec) (*core.CDLN, error) {
	if s.Version != formatVersion {
		return nil, fmt.Errorf("modelio: format version %d, want %d", s.Version, formatVersion)
	}
	arch, err := archFromSpec(s.Arch)
	if err != nil {
		return nil, err
	}
	rule, err := core.RuleByName(s.Rule)
	if err != nil {
		return nil, err
	}
	c := &core.CDLN{Arch: arch, Delta: s.Delta, StageDeltas: s.StageDeltas, Rule: rule, Ops: opcount.Default()}
	for _, st := range s.Stages {
		if err := checkDims("stage", st.Name, st.In, st.Out); err != nil {
			return nil, err
		}
		lc := &linclass.Classifier{
			In: st.In, Out: st.Out,
			W: tensor.New(st.Out, st.In), B: tensor.New(st.Out),
		}
		if err := fill(lc.W, st.W); err != nil {
			return nil, fmt.Errorf("modelio: stage %s: %w", st.Name, err)
		}
		if err := fill(lc.B, st.B); err != nil {
			return nil, fmt.Errorf("modelio: stage %s: %w", st.Name, err)
		}
		c.Stages = append(c.Stages, &core.Stage{Name: st.Name, Tap: st.Tap, LC: lc, Gain: st.Gain})
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// SaveCDLN writes a full conditional network: baseline, admitted stages
// with classifier weights, δ and the exit rule.
func SaveCDLN(w io.Writer, c *core.CDLN) error {
	s, err := specFromCDLN(c)
	if err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(s)
}

// LoadCDLN reads a conditional network saved with SaveCDLN. It reads
// linear models only; a routed-graph file (version 2) is rejected with a
// pointer at LoadGraph, rather than silently dropping its branches.
func LoadCDLN(r io.Reader) (*core.CDLN, error) {
	var s cdlnSpec
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("modelio: decode cdln: %w", err)
	}
	if s.Version == graphFormatVersion {
		return nil, fmt.Errorf("modelio: file is a routed graph (version %d); load it with LoadGraph", s.Version)
	}
	return cdlnFromSpec(s)
}

// SaveGraph writes a routing graph. A linear graph (one routeless node) is
// written as a plain version-1 CDLN file — bit-compatible with SaveCDLN
// and readable by pre-graph loaders — so the format only diverges where
// the model actually routes.
func SaveGraph(w io.Writer, g *core.Graph) error {
	if err := g.Validate(); err != nil {
		return err
	}
	if g.IsLinear() {
		return SaveCDLN(w, g.Trunk())
	}
	s := graphSpec{Version: graphFormatVersion}
	for _, n := range g.Nodes {
		ms, err := specFromCDLN(n.Model)
		if err != nil {
			return err
		}
		ns := graphNodeSpec{Name: n.Name, Model: ms}
		if n.Labels != nil {
			ns.Labels = append([]int(nil), n.Labels...)
		}
		for _, r := range n.Routes {
			ns.Routes = append(ns.Routes, routeSpec{Stage: r.Stage, Branch: append([]int(nil), r.Branch...)})
		}
		s.Nodes = append(s.Nodes, ns)
	}
	return gob.NewEncoder(w).Encode(s)
}

// LoadGraph reads a routing graph saved with SaveGraph — or any version-1
// linear CDLN file, which loads as the trivial one-node graph. Topology is
// fully validated (core.Graph.Validate rejects cyclic and orphan-node
// graphs, dangling route targets and shape-mismatched branches) and node
// and dimension counts are bounded before any allocation they imply, the
// same contract the layer specs have always had.
func LoadGraph(r io.Reader) (*core.Graph, error) {
	var s graphSpec
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("modelio: decode graph: %w", err)
	}
	switch s.Version {
	case formatVersion:
		c, err := cdlnFromSpec(cdlnSpec{
			Version:     s.Version,
			Arch:        s.Arch,
			Stages:      s.Stages,
			Delta:       s.Delta,
			StageDeltas: s.StageDeltas,
			Rule:        s.Rule,
		})
		if err != nil {
			return nil, err
		}
		return core.LinearGraph(c), nil
	case graphFormatVersion:
	default:
		return nil, fmt.Errorf("modelio: format version %d, want %d or %d", s.Version, formatVersion, graphFormatVersion)
	}
	if len(s.Nodes) == 0 {
		return nil, fmt.Errorf("modelio: routed graph has no nodes")
	}
	if len(s.Nodes) > maxGraphNodes {
		return nil, fmt.Errorf("modelio: %d graph nodes exceed the cap %d", len(s.Nodes), maxGraphNodes)
	}
	g := &core.Graph{}
	for ni, ns := range s.Nodes {
		c, err := cdlnFromSpec(ns.Model)
		if err != nil {
			return nil, fmt.Errorf("modelio: graph node %d (%s): %w", ni, ns.Name, err)
		}
		node := &core.Node{Name: ns.Name, Model: c}
		if ns.Labels != nil {
			node.Labels = append([]int(nil), ns.Labels...)
		}
		for _, rs := range ns.Routes {
			if len(rs.Branch) > maxSpecElems {
				return nil, fmt.Errorf("modelio: graph node %d (%s) route branch map of %d entries exceeds the cap %d",
					ni, ns.Name, len(rs.Branch), maxSpecElems)
			}
			node.Routes = append(node.Routes, core.Route{Stage: rs.Stage, Branch: append([]int(nil), rs.Branch...)})
		}
		g.Nodes = append(g.Nodes, node)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
