package modelio

// graphio_test.go covers the routed-graph half of the format: version-2
// round trips, the linear-degeneracy guarantee (a one-node graph saves as
// a byte-identical version-1 file), LoadCDLN's refusal to silently drop
// branches, and LoadGraph's bounded-allocation and topology rejections —
// including hand-encoded hostile graphSpec gobs no public API can produce.

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"strings"
	"testing"

	"cdl/internal/core"
	"cdl/internal/linclass"
	"cdl/internal/nn"
	"cdl/internal/opcount"
	"cdl/internal/tensor"
)

// fuzzBranch builds a tiny branch cascade over fuzzCDLN's P1 tap shape
// [2,3,3]: a leading sigmoid stage (tap reproduces the input shape) then a
// dense head over the given class count. Deterministic per seed.
func fuzzBranch(seed int64, classes int) *core.CDLN {
	rng := rand.New(rand.NewSource(seed))
	net := nn.NewNetwork([]int{2, 3, 3},
		nn.NewSigmoid("B.act"),
		nn.NewFlatten("B.flat"),
		nn.NewDense("BFC", 2*3*3, classes),
		nn.NewSigmoid("BFC.act"),
	)
	nn.InitNetwork(net, rng)
	arch := &nn.Arch{
		Name: "fuzz-branch", Net: net,
		Taps: []int{1}, TapNames: []string{"B"},
		NumClasses: classes,
	}
	lc := &linclass.Classifier{In: 2 * 3 * 3, Out: classes, W: tensor.New(classes, 2*3*3), B: tensor.New(classes)}
	for i := range lc.W.Data {
		lc.W.Data[i] = rng.NormFloat64() * 0.1
	}
	rule, err := core.RuleByName("threshold")
	if err != nil {
		panic(err)
	}
	return &core.CDLN{
		Arch:   arch,
		Stages: []*core.Stage{{Name: "O1", Tap: 1, LC: lc, Gain: 1}},
		Delta:  0.5,
		Rule:   rule,
		Ops:    opcount.Default(),
	}
}

// fuzzGraph builds the deterministic two-branch tree over fuzzCDLN: the
// trunk router at stage 0 dispatches class 0 to "lo" (labels {0,1}) and
// class 2 to "hi" (label {2}).
func fuzzGraph() *core.Graph {
	return &core.Graph{Nodes: []*core.Node{
		{Name: "trunk", Model: fuzzCDLN(), Routes: []core.Route{{Stage: 0, Branch: []int{1, -1, 2}}}},
		{Name: "lo", Model: fuzzBranch(11, 2), Labels: []int{0, 1}},
		{Name: "hi", Model: fuzzBranch(12, 1), Labels: []int{2}},
	}}
}

// fuzzInputs returns deterministic random inputs in the trunk's shape.
func fuzzInputs(n int, seed int64) []*tensor.T {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]*tensor.T, n)
	for i := range xs {
		xs[i] = tensor.New(1, 8, 8)
		for j := range xs[i].Data {
			xs[i].Data[j] = rng.Float64()
		}
	}
	return xs
}

// assertGraphsClassifyIdentically drives sessions over both graphs through
// the trained and the route-heavy threshold regimes and demands record
// equality — the round-trip identity contract.
func assertGraphsClassifyIdentically(t *testing.T, a, b *core.Graph) {
	t.Helper()
	sa, err := core.NewGraphSession(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := core.NewGraphSession(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, delta := range []float64{-1, 0.999} {
		for i, x := range fuzzInputs(40, 21) {
			ra := sa.ClassifyDelta(x, delta)
			rb := sb.ClassifyDelta(x, delta)
			if !ra.Equal(rb) {
				t.Fatalf("δ=%v input %d: %+v vs %+v", delta, i, ra, rb)
			}
		}
	}
}

func TestGraphRoundTrip(t *testing.T) {
	g := fuzzGraph()
	var buf bytes.Buffer
	if err := SaveGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := LoadGraph(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Nodes) != len(g.Nodes) {
		t.Fatalf("%d nodes, want %d", len(back.Nodes), len(g.Nodes))
	}
	for ni, n := range g.Nodes {
		bn := back.Nodes[ni]
		if bn.Name != n.Name {
			t.Errorf("node %d name %q, want %q", ni, bn.Name, n.Name)
		}
		if len(bn.Labels) != len(n.Labels) || len(bn.Routes) != len(n.Routes) {
			t.Errorf("node %d labels/routes lost", ni)
		}
	}
	if back.NumExits() != g.NumExits() {
		t.Fatalf("NumExits %d, want %d", back.NumExits(), g.NumExits())
	}
	for i := 0; i < g.NumExits(); i++ {
		if back.ExitName(i) != g.ExitName(i) {
			t.Errorf("ExitName(%d) = %q, want %q", i, back.ExitName(i), g.ExitName(i))
		}
	}
	assertGraphsClassifyIdentically(t, g, back)
}

// TestLinearGraphSavesAsV1 pins the degeneracy contract: a one-node graph
// writes a plain version-1 CDLN file (SaveGraph delegates to SaveCDLN;
// byte equality is not assertable because gob serializes the layer-spec
// maps in random order), pre-graph readers load it, and LoadGraph loads
// any pre-graph file as the trivial one-node graph.
func TestLinearGraphSavesAsV1(t *testing.T) {
	c := fuzzCDLN()
	var asGraph, asCDLN bytes.Buffer
	if err := SaveGraph(&asGraph, core.LinearGraph(c)); err != nil {
		t.Fatal(err)
	}
	if err := SaveCDLN(&asCDLN, c); err != nil {
		t.Fatal(err)
	}
	var s graphSpec
	if err := gob.NewDecoder(bytes.NewReader(asGraph.Bytes())).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Version != formatVersion || len(s.Nodes) != 0 {
		t.Fatalf("linear SaveGraph wrote version %d with %d nodes, want a plain v%d file", s.Version, len(s.Nodes), formatVersion)
	}
	if _, err := LoadCDLN(bytes.NewReader(asGraph.Bytes())); err != nil {
		t.Fatalf("pre-graph loader rejected a linear graph file: %v", err)
	}
	back, err := LoadGraph(bytes.NewReader(asCDLN.Bytes()))
	if err != nil {
		t.Fatalf("LoadGraph rejected a v1 file: %v", err)
	}
	if !back.IsLinear() {
		t.Fatal("v1 file loaded as a routed graph")
	}
	assertGraphsClassifyIdentically(t, core.LinearGraph(c), back)
}

// TestLoadCDLNRejectsRoutedGraph: the linear loader must refuse a routed
// file with a pointer at LoadGraph rather than dropping its branches.
func TestLoadCDLNRejectsRoutedGraph(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveGraph(&buf, fuzzGraph()); err != nil {
		t.Fatal(err)
	}
	_, err := LoadCDLN(bytes.NewReader(buf.Bytes()))
	if err == nil {
		t.Fatal("LoadCDLN accepted a routed graph file")
	}
	if !strings.Contains(err.Error(), "LoadGraph") {
		t.Fatalf("error %q does not point at LoadGraph", err)
	}
}

// encodeGraphSpec gob-encodes a hand-built spec — the shape of a hostile
// or corrupted file that no public Save API would produce.
func encodeGraphSpec(t *testing.T, s graphSpec) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadGraphRejectsHostileSpecs feeds LoadGraph hand-encoded specs for
// every decode-time rejection: version, node-count bounds, branch-map
// bounds, and the topology classes Validate refuses (orphans, cycles).
func TestLoadGraphRejectsHostileSpecs(t *testing.T) {
	trunkSpec, err := specFromCDLN(fuzzCDLN())
	if err != nil {
		t.Fatal(err)
	}
	branchSpec, err := specFromCDLN(fuzzBranch(31, 3))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		spec graphSpec
		want string
	}{
		{"unknown version", graphSpec{Version: 3}, "format version 3"},
		{"no nodes", graphSpec{Version: graphFormatVersion}, "no nodes"},
		{"node cap", graphSpec{
			Version: graphFormatVersion,
			Nodes:   make([]graphNodeSpec, maxGraphNodes+1),
		}, "exceed the cap"},
		{"branch map cap", graphSpec{
			Version: graphFormatVersion,
			Nodes: []graphNodeSpec{
				{Name: "trunk", Model: trunkSpec, Routes: []routeSpec{{Stage: 0, Branch: make([]int, maxSpecElems+1)}}},
				{Name: "b", Model: branchSpec},
			},
		}, "exceeds the cap"},
		{"orphan node", graphSpec{
			Version: graphFormatVersion,
			Nodes: []graphNodeSpec{
				{Name: "trunk", Model: trunkSpec},
				{Name: "b", Model: branchSpec},
			},
		}, "no route targets it"},
		{"cycle", graphSpec{
			Version: graphFormatVersion,
			Nodes: []graphNodeSpec{
				{Name: "trunk", Model: trunkSpec},
				{Name: "b1", Model: branchSpec, Routes: []routeSpec{{Stage: 0, Branch: []int{-1, -1, 2}}}},
				{Name: "b2", Model: branchSpec, Routes: []routeSpec{{Stage: 0, Branch: []int{-1, -1, 1}}}},
			},
		}, "route cycle"},
		{"dangling target", graphSpec{
			Version: graphFormatVersion,
			Nodes: []graphNodeSpec{
				{Name: "trunk", Model: trunkSpec, Routes: []routeSpec{{Stage: 0, Branch: []int{9, -1, -1}}}},
				{Name: "b", Model: branchSpec, Routes: nil},
			},
		}, "outside"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadGraph(bytes.NewReader(encodeGraphSpec(t, tc.spec)))
			if err == nil {
				t.Fatal("hostile spec decoded without error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// graphFuzzSeeds returns the FuzzLoadGraph corpus: a valid routed file, a
// valid linear (v1) file, truncations, corruptions, and the hostile
// topology gobs.
func graphFuzzSeeds(t testing.TB) [][]byte {
	var routed bytes.Buffer
	if err := SaveGraph(&routed, fuzzGraph()); err != nil {
		t.Fatal(err)
	}
	var linear bytes.Buffer
	if err := SaveCDLN(&linear, fuzzCDLN()); err != nil {
		t.Fatal(err)
	}
	valid := routed.Bytes()
	corrupt := func(off int, b byte) []byte {
		c := append([]byte(nil), valid...)
		if off < len(c) {
			c[off] ^= b
		}
		return c
	}
	orphan := graphSpec{Version: graphFormatVersion, Nodes: []graphNodeSpec{{Name: "b"}}}
	var orphanBuf bytes.Buffer
	if err := gob.NewEncoder(&orphanBuf).Encode(orphan); err != nil {
		t.Fatal(err)
	}
	return [][]byte{
		valid,
		linear.Bytes(),
		valid[:len(valid)/2], // truncated mid-node
		valid[:8],            // header only
		{},                   // empty
		[]byte("not a gob stream"),
		corrupt(4, 0xff), // mangled type descriptor
		corrupt(len(valid)/2, 0x55),
		corrupt(len(valid)-2, 0xaa),
		orphanBuf.Bytes(),
	}
}

// FuzzLoadGraph: whatever the bytes, LoadGraph must either error or return
// a graph that validates and round-trips through SaveGraph — never panic,
// never a structurally inconsistent topology, never unbounded allocation.
func FuzzLoadGraph(f *testing.F) {
	for _, seed := range graphFuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		g, err := LoadGraph(bytes.NewReader(b))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("LoadGraph returned an invalid graph: %v", verr)
		}
		var buf bytes.Buffer
		if serr := SaveGraph(&buf, g); serr != nil {
			t.Fatalf("loaded graph does not re-save: %v", serr)
		}
	})
}
