package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestConfusionBasics(t *testing.T) {
	c := NewConfusion(3)
	c.Add(0, 0)
	c.Add(0, 1)
	c.Add(1, 1)
	c.Add(2, 2)
	c.Add(2, 2)
	if c.Total() != 5 {
		t.Errorf("Total = %d, want 5", c.Total())
	}
	if c.Correct() != 4 {
		t.Errorf("Correct = %d, want 4", c.Correct())
	}
	if got := c.Accuracy(); got != 0.8 {
		t.Errorf("Accuracy = %v, want 0.8", got)
	}
	if got := c.ClassAccuracy(0); got != 0.5 {
		t.Errorf("ClassAccuracy(0) = %v, want 0.5", got)
	}
	if got := c.ClassAccuracy(2); got != 1 {
		t.Errorf("ClassAccuracy(2) = %v, want 1", got)
	}
	if got := c.ClassCount(0); got != 2 {
		t.Errorf("ClassCount(0) = %d, want 2", got)
	}
}

func TestConfusionEmptyAndErrors(t *testing.T) {
	c := NewConfusion(2)
	if c.Accuracy() != 0 {
		t.Error("empty accuracy should be 0")
	}
	if c.ClassAccuracy(1) != 0 {
		t.Error("empty class accuracy should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Add did not panic")
		}
	}()
	c.Add(2, 0)
}

func TestConfusionMerge(t *testing.T) {
	a, b := NewConfusion(2), NewConfusion(2)
	a.Add(0, 0)
	b.Add(1, 0)
	b.Add(1, 1)
	a.Merge(b)
	if a.Total() != 3 || a.Correct() != 2 {
		t.Errorf("merge wrong: total=%d correct=%d", a.Total(), a.Correct())
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched Merge did not panic")
		}
	}()
	a.Merge(NewConfusion(3))
}

func TestConfusionString(t *testing.T) {
	c := NewConfusion(2)
	c.Add(0, 0)
	s := c.String()
	if !strings.Contains(s, "acc") {
		t.Errorf("String missing accuracy: %s", s)
	}
}

func TestNewConfusionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewConfusion(0) did not panic")
		}
	}()
	NewConfusion(0)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("Summarize = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("Std = %v", s.Std)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty Summarize = %+v", z)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("GeoMean with zero did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestRank(t *testing.T) {
	got := Rank([]float64{0.3, 0.9, 0.1, 0.9})
	// descending, stable: 1 (0.9), 3 (0.9), 0 (0.3), 2 (0.1)
	want := []int{1, 3, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Rank = %v, want %v", got, want)
		}
	}
}

// Property: accuracy is always in [0,1] and equals Correct/Total.
func TestQuickConfusionAccuracyBounds(t *testing.T) {
	f := func(adds []uint16) bool {
		c := NewConfusion(4)
		for _, a := range adds {
			c.Add(int(a)%4, int(a/7)%4)
		}
		acc := c.Accuracy()
		if acc < 0 || acc > 1 {
			return false
		}
		if c.Total() > 0 && acc != float64(c.Correct())/float64(c.Total()) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: GeoMean of equal values is that value, and GeoMean lies between
// min and max.
func TestQuickGeoMeanBounds(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, r := range raw {
			v := math.Abs(r)
			if v > 1e-6 && v < 1e6 && !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := GeoMean(xs)
		s := Summarize(xs)
		return g >= s.Min-1e-9 && g <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
