// Package stats provides the evaluation metrics used by the CDL
// experiments: confusion matrices, per-class accuracy, and small numeric
// summaries. It exists so the experiment harness and the cmd tools report
// results through one audited code path.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Confusion is a square confusion matrix: Counts[actual][predicted].
type Confusion struct {
	Classes int
	Counts  [][]int
}

// NewConfusion creates an empty confusion matrix for the given number of
// classes.
func NewConfusion(classes int) *Confusion {
	if classes <= 0 {
		panic(fmt.Sprintf("stats: NewConfusion classes=%d", classes))
	}
	c := &Confusion{Classes: classes, Counts: make([][]int, classes)}
	for i := range c.Counts {
		c.Counts[i] = make([]int, classes)
	}
	return c
}

// Add records one prediction.
func (c *Confusion) Add(actual, predicted int) {
	if actual < 0 || actual >= c.Classes || predicted < 0 || predicted >= c.Classes {
		panic(fmt.Sprintf("stats: Confusion.Add(%d,%d) out of range %d", actual, predicted, c.Classes))
	}
	c.Counts[actual][predicted]++
}

// Merge accumulates another confusion matrix into c.
func (c *Confusion) Merge(o *Confusion) {
	if o.Classes != c.Classes {
		panic("stats: Merge class count mismatch")
	}
	for i := range c.Counts {
		for j := range c.Counts[i] {
			c.Counts[i][j] += o.Counts[i][j]
		}
	}
}

// Total returns the number of recorded predictions.
func (c *Confusion) Total() int {
	t := 0
	for _, row := range c.Counts {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// Correct returns the number of correct predictions (trace).
func (c *Confusion) Correct() int {
	t := 0
	for i := range c.Counts {
		t += c.Counts[i][i]
	}
	return t
}

// Accuracy returns overall accuracy in [0,1]; 0 if empty.
func (c *Confusion) Accuracy() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	return float64(c.Correct()) / float64(total)
}

// ClassAccuracy returns the recall of class k (diagonal over row sum); 0 if
// the class never occurs.
func (c *Confusion) ClassAccuracy(k int) float64 {
	row := c.Counts[k]
	total := 0
	for _, v := range row {
		total += v
	}
	if total == 0 {
		return 0
	}
	return float64(row[k]) / float64(total)
}

// ClassCount returns the number of samples whose actual class is k.
func (c *Confusion) ClassCount(k int) int {
	total := 0
	for _, v := range c.Counts[k] {
		total += v
	}
	return total
}

// String renders the matrix with per-class accuracy.
func (c *Confusion) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "confusion (%d classes, %d samples, acc %.4f)\n", c.Classes, c.Total(), c.Accuracy())
	for i, row := range c.Counts {
		fmt.Fprintf(&b, "%2d |", i)
		for _, v := range row {
			fmt.Fprintf(&b, "%6d", v)
		}
		fmt.Fprintf(&b, " | %.3f\n", c.ClassAccuracy(i))
	}
	return b.String()
}

// Summary holds basic descriptive statistics of a float series.
type Summary struct {
	N                   int
	Mean, Std, Min, Max float64
}

// Summarize computes a Summary; an empty series yields the zero Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(s.N)
	for _, x := range xs {
		d := x - s.Mean
		s.Std += d * d
	}
	s.Std = math.Sqrt(s.Std / float64(s.N))
	return s
}

// GeoMean returns the geometric mean of strictly positive values; it panics
// if any value is non-positive. Used for averaging normalized OPS/energy
// ratios across digits, where a geometric mean is the conventional choice.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: GeoMean of empty slice")
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %v", x))
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Rank returns the indices of xs sorted by descending value (ties broken by
// index). Used to order digits by energy benefit for Fig. 8.
func Rank(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	return idx
}
