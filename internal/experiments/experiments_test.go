package experiments

import (
	"strings"
	"sync"
	"testing"
)

// sharedCtx trains the small-config models once for the whole test
// package.
var (
	ctxOnce sync.Once
	ctx     *Context
)

func testCtx(t *testing.T) *Context {
	t.Helper()
	ctxOnce.Do(func() {
		ctx = NewContext(SmallConfig())
	})
	return ctx
}

func TestTableIAndII(t *testing.T) {
	c := testCtx(t)
	t1, err := TableI(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"C1", "P1", "C2", "P2", "FC"} {
		if !strings.Contains(t1, s) {
			t.Errorf("Table I missing %s", s)
		}
	}
	t2, err := TableII(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"C1", "C2", "C3", "P3", "FC"} {
		if !strings.Contains(t2, s) {
			t.Errorf("Table II missing %s", s)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	r, err := Fig5(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	// Core claim: every digit costs less than the baseline on both CDLNs.
	for d := 0; d < 10; d++ {
		if r.Norm2C[d] <= 0 || r.Norm2C[d] >= 1 {
			t.Errorf("digit %d MNIST_2C normalized OPS %v outside (0,1)", d, r.Norm2C[d])
		}
		if r.Norm3C[d] <= 0 || r.Norm3C[d] >= 1 {
			t.Errorf("digit %d MNIST_3C normalized OPS %v outside (0,1)", d, r.Norm3C[d])
		}
	}
	if r.AvgImp2C <= 1.2 || r.AvgImp3C <= 1.2 {
		t.Errorf("average improvements too small: %.2f / %.2f", r.AvgImp2C, r.AvgImp3C)
	}
	// Digit 1 is the easiest in this dataset by construction.
	if r.BestDigit != 1 {
		t.Errorf("best digit %d, want 1", r.BestDigit)
	}
	if !strings.Contains(r.String(), "average improvement") {
		t.Error("rendering incomplete")
	}
}

func TestFig6Shape(t *testing.T) {
	r, err := Fig6(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 10; d++ {
		if r.NormEnergy3C[d] <= 0 || r.NormEnergy3C[d] >= 1 {
			t.Errorf("digit %d normalized energy %v outside (0,1)", d, r.NormEnergy3C[d])
		}
	}
	if r.AvgImp2C <= 1.2 || r.AvgImp3C <= 1.2 {
		t.Errorf("energy improvements too small: %.2f / %.2f", r.AvgImp2C, r.AvgImp3C)
	}
}

func TestTableIIIShape(t *testing.T) {
	r, err := TableIII(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"baseline6": r.Baseline6, "cdln2c": r.CDLN2C,
		"baseline8": r.Baseline8, "cdln3c": r.CDLN3C,
	} {
		if v < 0.5 || v > 1 {
			t.Errorf("%s accuracy %v implausible", name, v)
		}
	}
	// The paper's headline: CDLN accuracy is at least competitive with the
	// baseline. At small scale we allow a 1.5% band rather than demanding
	// strict improvement.
	if r.CDLN3C < r.Baseline8-0.015 {
		t.Errorf("MNIST_3C %.4f far below baseline %.4f", r.CDLN3C, r.Baseline8)
	}
	if r.CDLN2C < r.Baseline6-0.015 {
		t.Errorf("MNIST_2C %.4f far below baseline %.4f", r.CDLN2C, r.Baseline6)
	}
}

func TestFig7Shape(t *testing.T) {
	r, err := Fig7(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("points %d, want 4", len(r.Points))
	}
	if r.Points[0].Label != "baseline" || r.Points[3].Label != "O1-O2-O3-FC" {
		t.Error("labels wrong")
	}
	// FC misclassification fraction decreases as stages are added (paper
	// §V.B: "the fraction of inputs misclassified by the final layer
	// progressively decreases").
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].FCMisclassified > r.Points[i-1].FCMisclassified+1e-9 {
			t.Errorf("FC misclassified rose from %.4f to %.4f at %s",
				r.Points[i-1].FCMisclassified, r.Points[i].FCMisclassified, r.Points[i].Label)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	r, err := Fig8(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 10 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	// Rows are sorted by decreasing improvement.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].EnergyImprovement > r.Rows[i-1].EnergyImprovement+1e-9 {
			t.Error("rows not sorted by improvement")
		}
	}
	if r.EasiestDigit != 1 {
		t.Errorf("easiest digit %d, want 1", r.EasiestDigit)
	}
	// Paper: ≥1.5x benefit even for the hardest digit; we allow ≥1.2x at
	// test scale.
	if r.MinImprovement < 1.2 {
		t.Errorf("hardest digit improvement %.2f < 1.2", r.MinImprovement)
	}
}

func TestFig9Shape(t *testing.T) {
	r, err := Fig9(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("points %d", len(r.Points))
	}
	if r.Points[0].NormalizedOps != 1 {
		t.Error("baseline point must be 1.0")
	}
	// Adding the first stage must produce a large drop; the fraction
	// reaching FC must shrink monotonically with stages.
	if r.Points[1].NormalizedOps >= 0.9 {
		t.Errorf("one stage normalized OPS %.3f, expected a large drop", r.Points[1].NormalizedOps)
	}
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].FCFraction > r.Points[i-1].FCFraction+1e-9 {
			t.Error("fraction to FC must shrink as stages are added")
		}
	}
	if r.BestStages < 1 {
		t.Errorf("best stages %d", r.BestStages)
	}
}

func TestFig10Shape(t *testing.T) {
	r, err := Fig10(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 14 {
		t.Fatalf("points %d", len(r.Points))
	}
	// OPS at the loosest δ must be below OPS at the strictest δ (the knob
	// trades efficiency for deference to the deep layers).
	if r.Points[0].NormalizedOps >= r.Points[len(r.Points)-1].NormalizedOps {
		t.Errorf("normalized OPS should rise with δ: %.3f at δ=%.2f vs %.3f at δ=%.2f",
			r.Points[0].NormalizedOps, r.Points[0].Delta,
			r.Points[len(r.Points)-1].NormalizedOps, r.Points[len(r.Points)-1].Delta)
	}
	if r.BestDelta < 0.3 || r.BestDelta > 0.95 {
		t.Errorf("best delta %v outside sweep", r.BestDelta)
	}
}

func TestTableIVGallery(t *testing.T) {
	r, err := TableIV(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Digits) != 2 || r.Digits[0] != 1 || r.Digits[1] != 5 {
		t.Errorf("digits %v, want [1 5]", r.Digits)
	}
	// Digit 1 must have at least one O1 exemplar (it exits early en masse).
	if r.Galleries[1][0] == nil {
		t.Error("digit 1 has no O1 exemplar")
	}
	s := r.String()
	if !strings.Contains(s, "digit 1") || !strings.Contains(s, "digit 5") {
		t.Error("gallery rendering incomplete")
	}
}

func TestGainReport(t *testing.T) {
	s, err := GainReport(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"MNIST_2C", "MNIST_3C", "O1", "gain"} {
		if !strings.Contains(s, want) {
			t.Errorf("gain report missing %q", want)
		}
	}
}
