package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestStageAccuracyDecomposition(t *testing.T) {
	r, err := StageAccuracy(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 2 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	// Shares must sum to 1 and the weighted precision must reproduce the
	// overall accuracy.
	shareSum, weighted := 0.0, 0.0
	for _, row := range r.Rows {
		shareSum += row.Fraction
		weighted += row.Fraction * row.Precision
		if row.Count > 0 {
			if row.Precision < 0 || row.Precision > 1 {
				t.Errorf("exit %s precision %v", row.Exit, row.Precision)
			}
			if row.MeanConfidence <= 0 || row.MeanConfidence > 1 {
				t.Errorf("exit %s mean confidence %v", row.Exit, row.MeanConfidence)
			}
		}
	}
	if math.Abs(shareSum-1) > 1e-9 {
		t.Errorf("exit shares sum to %v", shareSum)
	}
	if math.Abs(weighted-r.Overall) > 1e-9 {
		t.Errorf("weighted precision %v != overall %v", weighted, r.Overall)
	}
	// The paper's mechanism: the first exit's precision should beat the
	// baseline's accuracy on the same cohort (that's where the enhancement
	// comes from). Allow equality at small scale.
	if r.Rows[0].Count > 0 && r.Rows[0].Precision+1e-9 < r.BaselineOnExited[0]-0.02 {
		t.Errorf("O1 precision %.4f far below baseline-on-cohort %.4f",
			r.Rows[0].Precision, r.BaselineOnExited[0])
	}
	if !strings.Contains(r.String(), "overall") {
		t.Error("rendering incomplete")
	}
}

func TestAcceleratorSweep(t *testing.T) {
	r, err := AcceleratorSweep(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	for i, row := range r.Rows {
		// CDL's improvement is architectural; it must hold at every array
		// width.
		if row.Improvement <= 1 {
			t.Errorf("PEs=%d improvement %v ≤ 1", row.PEs, row.Improvement)
		}
		if row.CDLNEnergyNJ >= row.BaselineEnergyNJ {
			t.Errorf("PEs=%d CDLN energy not below baseline", row.PEs)
		}
		// Wider arrays never increase energy in this leakage-over-time
		// model (dynamic energy is width-independent).
		if i > 0 && row.BaselineEnergyNJ > r.Rows[i-1].BaselineEnergyNJ+1e-9 {
			t.Errorf("PEs=%d baseline energy rose vs narrower array", row.PEs)
		}
	}
	if !strings.Contains(r.String(), "PEs") {
		t.Error("rendering incomplete")
	}
}

func TestRobustnessTwoSeeds(t *testing.T) {
	cfg := SmallConfig()
	r, err := Robustness(cfg, []int64{11, 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.BaselineAcc < 0.5 || row.CDLNAcc < 0.5 {
			t.Errorf("seed %d accuracy collapsed: %v / %v", row.Seed, row.BaselineAcc, row.CDLNAcc)
		}
		if row.NormalizedOps <= 0 || row.NormalizedOps >= 1 {
			t.Errorf("seed %d normalized OPS %v outside (0,1)", row.Seed, row.NormalizedOps)
		}
	}
	if r.NormOps.N != 2 || r.AccGain.N != 2 {
		t.Error("summaries incomplete")
	}
	if !strings.Contains(r.String(), "mean") {
		t.Error("rendering incomplete")
	}
}

func TestRobustnessNoSeeds(t *testing.T) {
	if _, err := Robustness(SmallConfig(), nil); err == nil {
		t.Error("empty seed list accepted")
	}
}
