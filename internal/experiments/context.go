// Package experiments reproduces every table and figure of the paper's
// evaluation (§IV–V): Tables I–IV and Figs. 5–10. Each experiment is a
// function from a shared Context (datasets plus trained baselines and
// CDLNs, built lazily and cached) to a structured result with a String
// rendering that mirrors the paper's presentation.
//
// The substrate differs from the authors' (synthetic MNIST, analytic 45 nm
// energy model — see DESIGN.md §4), so EXPERIMENTS.md records paper-vs-
// measured values; the assertions encoded here are the *shape* claims:
// who wins, by roughly what factor, and where the crossovers fall.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sync"

	"cdl/internal/core"
	"cdl/internal/linclass"
	"cdl/internal/mnist"
	"cdl/internal/nn"
	"cdl/internal/train"
)

// Config sizes an experiment run. DefaultConfig is paper-scale for this
// reproduction; tests use SmallConfig.
type Config struct {
	// TrainN and TestN size the synthetic MNIST split.
	TrainN, TestN int
	// Seed drives dataset generation and weight initialization.
	Seed int64
	// Epochs6 and Epochs8 are baseline training budgets for the 6- and
	// 8-layer DLNs. They are deliberately moderate: the paper's accuracy
	// enhancement relies on baselines that are "less than optimal" (§II).
	Epochs6, Epochs8 int
	// Delta is the runtime confidence threshold δ.
	Delta float64
	// Epsilon is the gain-rule admission threshold ε (ops per input).
	Epsilon float64
	// LC configures stage-classifier training.
	LC linclass.TrainConfig
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
	// Log, if non-nil, receives progress lines.
	Log io.Writer
}

// DefaultConfig returns the configuration used for the recorded
// EXPERIMENTS.md numbers. The baseline epoch budgets stop well short of
// convergence on purpose: the paper's accuracy enhancement (§II, §V.B)
// assumes a baseline that is "less than optimal, i.e. not fully trained",
// whose features the rapidly-converging stage classifiers then out-predict.
func DefaultConfig() Config {
	return Config{
		TrainN:  4000,
		TestN:   1500,
		Seed:    1,
		Epochs6: 3,
		Epochs8: 7,
		Delta:   0.5,
		Epsilon: 10,
		LC:      linclass.DefaultTrainConfig(),
	}
}

// SmallConfig returns a reduced configuration for unit tests and smoke
// runs.
func SmallConfig() Config {
	cfg := DefaultConfig()
	cfg.TrainN = 2000
	cfg.TestN = 600
	cfg.Epochs6 = 4
	cfg.Epochs8 = 14
	return cfg
}

// Context owns the datasets and trained models shared by all experiments.
// All accessors are lazy, cached and safe for concurrent use.
type Context struct {
	Cfg Config

	dataOnce            sync.Once
	trainImgs, testImgs []mnist.Image
	trainS, testS       []train.Sample
	dataErr             error

	arch6Once sync.Once
	arch6     *nn.Arch
	arch6Err  error

	arch8Once sync.Once
	arch8     *nn.Arch
	arch8Err  error

	cdln2COnce sync.Once
	cdln2C     *core.CDLN
	rep2C      *core.Report
	cdln2CErr  error

	cdln3COnce sync.Once
	cdln3C     *core.CDLN
	rep3C      *core.Report
	cdln3CErr  error
}

// NewContext creates an empty context; models train on first use.
func NewContext(cfg Config) *Context { return &Context{Cfg: cfg} }

func (c *Context) logf(format string, args ...any) {
	if c.Cfg.Log != nil {
		fmt.Fprintf(c.Cfg.Log, format, args...)
	}
}

// Data returns the synthetic MNIST split.
func (c *Context) Data() (trainS, testS []train.Sample, err error) {
	c.dataOnce.Do(func() {
		c.logf("generating dataset: %d train / %d test (seed %d)\n", c.Cfg.TrainN, c.Cfg.TestN, c.Cfg.Seed)
		c.trainImgs, c.testImgs, c.dataErr = mnist.GenerateSplit(c.Cfg.TrainN, c.Cfg.TestN, c.Cfg.Seed)
		if c.dataErr == nil {
			c.trainS = mnist.ToSamples(c.trainImgs)
			c.testS = mnist.ToSamples(c.testImgs)
		}
	})
	return c.trainS, c.testS, c.dataErr
}

// Images returns the raw image structs (needed by the Table IV gallery).
func (c *Context) Images() (trainImgs, testImgs []mnist.Image, err error) {
	if _, _, err := c.Data(); err != nil {
		return nil, nil, err
	}
	return c.trainImgs, c.testImgs, nil
}

func (c *Context) trainBaseline(arch *nn.Arch, epochs int) error {
	trainS, _, err := c.Data()
	if err != nil {
		return err
	}
	cfg := train.Defaults(arch.NumClasses)
	cfg.Epochs = epochs
	cfg.Seed = c.Cfg.Seed
	cfg.Workers = c.Cfg.Workers
	cfg.Log = c.Cfg.Log
	_, err = train.SGD(arch.Net, trainS, cfg)
	return err
}

// Arch6 returns the trained 6-layer baseline (Table I).
func (c *Context) Arch6() (*nn.Arch, error) {
	c.arch6Once.Do(func() {
		c.logf("training 6-layer baseline (%d epochs)\n", c.Cfg.Epochs6)
		a := nn.Arch6Layer(rand.New(rand.NewSource(c.Cfg.Seed + 100)))
		if err := c.trainBaseline(a, c.Cfg.Epochs6); err != nil {
			c.arch6Err = err
			return
		}
		c.arch6 = a
	})
	return c.arch6, c.arch6Err
}

// Arch8 returns the trained 8-layer baseline (Table II).
func (c *Context) Arch8() (*nn.Arch, error) {
	c.arch8Once.Do(func() {
		c.logf("training 8-layer baseline (%d epochs)\n", c.Cfg.Epochs8)
		a := nn.Arch8Layer(rand.New(rand.NewSource(c.Cfg.Seed + 200)))
		if err := c.trainBaseline(a, c.Cfg.Epochs8); err != nil {
			c.arch8Err = err
			return
		}
		c.arch8 = a
	})
	return c.arch8, c.arch8Err
}

func (c *Context) buildConfig() core.BuildConfig {
	bcfg := core.DefaultBuildConfig()
	bcfg.Delta = c.Cfg.Delta
	bcfg.Epsilon = c.Cfg.Epsilon
	bcfg.LC = c.Cfg.LC
	bcfg.Workers = c.Cfg.Workers
	bcfg.Seed = c.Cfg.Seed
	bcfg.Log = c.Cfg.Log
	return bcfg
}

// MNIST2C returns the CDLN built on the 6-layer baseline (paper's
// MNIST_2C) along with its Algorithm 1 report.
func (c *Context) MNIST2C() (*core.CDLN, *core.Report, error) {
	c.cdln2COnce.Do(func() {
		arch, err := c.Arch6()
		if err != nil {
			c.cdln2CErr = err
			return
		}
		trainS, _, _ := c.Data()
		c.logf("building MNIST_2C cascade\n")
		c.cdln2C, c.rep2C, c.cdln2CErr = core.Build(arch, trainS, c.buildConfig())
	})
	return c.cdln2C, c.rep2C, c.cdln2CErr
}

// MNIST3C returns the CDLN built on the 8-layer baseline (paper's
// MNIST_3C) along with its Algorithm 1 report.
func (c *Context) MNIST3C() (*core.CDLN, *core.Report, error) {
	c.cdln3COnce.Do(func() {
		arch, err := c.Arch8()
		if err != nil {
			c.cdln3CErr = err
			return
		}
		trainS, _, _ := c.Data()
		c.logf("building MNIST_3C cascade\n")
		c.cdln3C, c.rep3C, c.cdln3CErr = core.Build(arch, trainS, c.buildConfig())
	})
	return c.cdln3C, c.rep3C, c.cdln3CErr
}

// BuildSweepCDLN builds an 8-layer CDLN with exactly maxStages forced
// stages — the Fig. 7 and Fig. 9 sweep points (O1-FC, O1-O2-FC,
// O1-O2-O3-FC).
func (c *Context) BuildSweepCDLN(maxStages int) (*core.CDLN, *core.Report, error) {
	arch, err := c.Arch8()
	if err != nil {
		return nil, nil, err
	}
	trainS, _, err := c.Data()
	if err != nil {
		return nil, nil, err
	}
	bcfg := c.buildConfig()
	bcfg.ForceAllStages = true
	bcfg.MaxStages = maxStages
	return core.Build(arch, trainS, bcfg)
}
