package experiments

import (
	"strings"
	"testing"
)

func TestAblationRules(t *testing.T) {
	r, err := AblationRules(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows %d, want 3", len(r.Rows))
	}
	names := map[string]bool{}
	for _, row := range r.Rows {
		names[row.Rule] = true
		if row.Accuracy < 0.5 || row.Accuracy > 1 {
			t.Errorf("rule %s accuracy %v implausible", row.Rule, row.Accuracy)
		}
		if row.NormalizedOps <= 0 {
			t.Errorf("rule %s norm OPS %v", row.Rule, row.NormalizedOps)
		}
	}
	for _, want := range []string{"threshold", "margin", "entropy"} {
		if !names[want] {
			t.Errorf("missing rule %s", want)
		}
	}
	if !strings.Contains(r.String(), "threshold") {
		t.Error("rendering incomplete")
	}
}

func TestAblationLCData(t *testing.T) {
	r, err := AblationLCData(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	// Both policies must produce functioning cascades with savings.
	if r.PassedOnlyOps >= 1 || r.AllDataOps >= 1 {
		t.Errorf("no savings: passed-only %v, all-data %v", r.PassedOnlyOps, r.AllDataOps)
	}
	if r.PassedOnlyAcc < 0.5 || r.AllDataAcc < 0.5 {
		t.Errorf("accuracy collapsed: %v / %v", r.PassedOnlyAcc, r.AllDataAcc)
	}
}

func TestAblationQuantization(t *testing.T) {
	r, err := AblationQuantization(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	// 16-bit quantization must be essentially lossless (within 1%).
	d := r.Rows[0].Accuracy - r.FloatAccuracy
	if d < -0.01 || d > 0.01 {
		t.Errorf("Q2.13 accuracy %v vs float %v: 16-bit should be lossless", r.Rows[0].Accuracy, r.FloatAccuracy)
	}
	// Rounding error grows as fractional bits shrink.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].MaxRoundErr < r.Rows[i-1].MaxRoundErr {
			t.Error("rounding error should grow with coarser formats")
		}
	}
}

func TestAblationTunedDeltas(t *testing.T) {
	r, err := AblationTunedDeltas(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.TunedDeltas) == 0 {
		t.Fatal("no tuned deltas")
	}
	// Tuning on train data must not catastrophically hurt test accuracy.
	if r.TunedAcc < r.GlobalAcc-0.02 {
		t.Errorf("tuned accuracy %.4f far below global %.4f", r.TunedAcc, r.GlobalAcc)
	}
}

func TestRunAblationsRenders(t *testing.T) {
	s, err := RunAblations(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"exit rules", "training data", "fixed-point", "tuned δ"} {
		if !strings.Contains(s, want) {
			t.Errorf("ablation report missing %q", want)
		}
	}
}
