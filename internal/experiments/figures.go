package experiments

import (
	"fmt"
	"strings"

	"cdl/internal/core"
	"cdl/internal/energy"
	"cdl/internal/mnist"
	"cdl/internal/stats"
)

// Fig5Result reproduces Fig. 5: normalized OPS per digit for MNIST_2C and
// MNIST_3C relative to their baselines.
type Fig5Result struct {
	// Norm2C and Norm3C are per-digit normalized OPS (lower is better).
	Norm2C, Norm3C [mnist.Classes]float64
	// AvgImp2C and AvgImp3C are the average improvement factors the paper
	// headlines (1.73x and 1.91x).
	AvgImp2C, AvgImp3C float64
	// BestDigit and WorstDigit are the extremes for MNIST_3C.
	BestDigit, WorstDigit int
}

// Fig5 measures normalized OPS per digit on the test set.
func Fig5(ctx *Context) (*Fig5Result, error) {
	cdln2, _, err := ctx.MNIST2C()
	if err != nil {
		return nil, err
	}
	cdln3, _, err := ctx.MNIST3C()
	if err != nil {
		return nil, err
	}
	_, testS, err := ctx.Data()
	if err != nil {
		return nil, err
	}
	res2, err := core.Evaluate(cdln2, testS, ctx.Cfg.Workers, false)
	if err != nil {
		return nil, err
	}
	res3, err := core.Evaluate(cdln3, testS, ctx.Cfg.Workers, false)
	if err != nil {
		return nil, err
	}
	r := &Fig5Result{}
	var imp2, imp3 []float64
	bestImp, worstImp := 0.0, 1e18
	for d := 0; d < mnist.Classes; d++ {
		r.Norm2C[d] = res2.ClassNormalizedOps(d)
		r.Norm3C[d] = res3.ClassNormalizedOps(d)
		imp2 = append(imp2, res2.ClassImprovement(d))
		imp3 = append(imp3, res3.ClassImprovement(d))
		if i := res3.ClassImprovement(d); i > bestImp {
			bestImp, r.BestDigit = i, d
		}
		if i := res3.ClassImprovement(d); i < worstImp {
			worstImp, r.WorstDigit = i, d
		}
	}
	r.AvgImp2C = stats.GeoMean(imp2)
	r.AvgImp3C = stats.GeoMean(imp3)
	return r, nil
}

// String renders the per-digit bars.
func (r *Fig5Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 5 — Normalized OPS per digit (CDLN / baseline, lower is better)\n")
	b.WriteString("digit   MNIST_2C  MNIST_3C\n")
	for d := 0; d < mnist.Classes; d++ {
		fmt.Fprintf(&b, "  %d      %6.3f    %6.3f\n", d, r.Norm2C[d], r.Norm3C[d])
	}
	fmt.Fprintf(&b, "average improvement: MNIST_2C %.2fx, MNIST_3C %.2fx\n", r.AvgImp2C, r.AvgImp3C)
	fmt.Fprintf(&b, "MNIST_3C best digit %d, worst digit %d\n", r.BestDigit, r.WorstDigit)
	return b.String()
}

// Fig6Result reproduces Fig. 6: normalized energy per digit under the
// 45 nm hardware model.
type Fig6Result struct {
	// NormEnergy2C and NormEnergy3C are per-digit normalized energies.
	NormEnergy2C, NormEnergy3C [mnist.Classes]float64
	// AvgImp2C and AvgImp3C are the average energy improvement factors the
	// paper headlines (1.71x and 1.84x).
	AvgImp2C, AvgImp3C float64
}

// Fig6 measures normalized energy per digit on the test set.
func Fig6(ctx *Context) (*Fig6Result, error) {
	cdln2, _, err := ctx.MNIST2C()
	if err != nil {
		return nil, err
	}
	cdln3, _, err := ctx.MNIST3C()
	if err != nil {
		return nil, err
	}
	_, testS, err := ctx.Data()
	if err != nil {
		return nil, err
	}
	ev := energy.NewEvaluator()
	r := &Fig6Result{}
	for i, cdln := range []*core.CDLN{cdln2, cdln3} {
		res, err := core.Evaluate(cdln, testS, ctx.Cfg.Workers, false)
		if err != nil {
			return nil, err
		}
		sum, err := ev.FromEval(cdln, res)
		if err != nil {
			return nil, err
		}
		var imps []float64
		for d := 0; d < mnist.Classes; d++ {
			n := sum.ClassNormalized(d)
			if i == 0 {
				r.NormEnergy2C[d] = n
			} else {
				r.NormEnergy3C[d] = n
			}
			imps = append(imps, sum.ClassImprovement(d))
		}
		if i == 0 {
			r.AvgImp2C = stats.GeoMean(imps)
		} else {
			r.AvgImp3C = stats.GeoMean(imps)
		}
	}
	return r, nil
}

// String renders the per-digit energy bars.
func (r *Fig6Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 6 — Normalized energy per digit (45nm model, lower is better)\n")
	b.WriteString("digit   MNIST_2C  MNIST_3C\n")
	for d := 0; d < mnist.Classes; d++ {
		fmt.Fprintf(&b, "  %d      %6.3f    %6.3f\n", d, r.NormEnergy2C[d], r.NormEnergy3C[d])
	}
	fmt.Fprintf(&b, "average energy improvement: MNIST_2C %.2fx, MNIST_3C %.2fx\n", r.AvgImp2C, r.AvgImp3C)
	return b.String()
}

// Fig8Row is one digit of Fig. 8, ordered by decreasing energy benefit.
type Fig8Row struct {
	Digit int
	// EnergyImprovement is baseline/CDLN energy for this digit.
	EnergyImprovement float64
	// FCFraction is the fraction of the digit's inputs that activate the
	// final output layer.
	FCFraction float64
}

// Fig8Result reproduces Fig. 8: energy benefit versus input difficulty for
// MNIST_3C, with the FC activation fractions quoted in §V.C.
type Fig8Result struct {
	Rows []Fig8Row
	// EasiestDigit and HardestDigit are the first and last rows.
	EasiestDigit, HardestDigit int
	// MinImprovement is the benefit on the hardest digit (paper: ≥1.5x).
	MinImprovement float64
}

// Fig8 ranks digits by measured energy benefit under MNIST_3C.
func Fig8(ctx *Context) (*Fig8Result, error) {
	cdln3, _, err := ctx.MNIST3C()
	if err != nil {
		return nil, err
	}
	_, testS, err := ctx.Data()
	if err != nil {
		return nil, err
	}
	res, err := core.Evaluate(cdln3, testS, ctx.Cfg.Workers, false)
	if err != nil {
		return nil, err
	}
	sum, err := energy.NewEvaluator().FromEval(cdln3, res)
	if err != nil {
		return nil, err
	}
	imps := make([]float64, mnist.Classes)
	for d := range imps {
		imps[d] = sum.ClassImprovement(d)
	}
	order := stats.Rank(imps)
	fcExit := len(cdln3.Stages)
	r := &Fig8Result{}
	for _, d := range order {
		r.Rows = append(r.Rows, Fig8Row{
			Digit:             d,
			EnergyImprovement: imps[d],
			FCFraction:        res.ExitFraction(fcExit, d),
		})
	}
	r.EasiestDigit = r.Rows[0].Digit
	r.HardestDigit = r.Rows[len(r.Rows)-1].Digit
	r.MinImprovement = r.Rows[len(r.Rows)-1].EnergyImprovement
	return r, nil
}

// String renders the ranking.
func (r *Fig8Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 8 — Energy benefit in decreasing order (MNIST_3C)\n")
	b.WriteString("digit   improvement   FC activated\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %d       %5.2fx        %5.1f%%\n", row.Digit, row.EnergyImprovement, 100*row.FCFraction)
	}
	fmt.Fprintf(&b, "easiest digit %d, hardest digit %d, min improvement %.2fx\n",
		r.EasiestDigit, r.HardestDigit, r.MinImprovement)
	return b.String()
}
