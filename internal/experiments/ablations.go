package experiments

import (
	"fmt"
	"strings"

	"cdl/internal/core"
	"cdl/internal/fixed"
)

// Ablations probe the design choices DESIGN.md calls out: the activation
// module's decision rule, Algorithm 1's passed-only training policy, and
// the fixed-point precision of a hardware deployment. None of these are
// paper figures; they are the sensitivity analyses a downstream user needs
// before changing a default.

// AblationRuleRow is one exit rule's best operating point over a δ sweep.
type AblationRuleRow struct {
	Rule          string
	BestDelta     float64
	Accuracy      float64
	NormalizedOps float64
}

// AblationRulesResult compares the paper's threshold rule against margin
// and entropy gating at each rule's own accuracy-optimal δ.
type AblationRulesResult struct {
	Rows []AblationRuleRow
}

// AblationRules evaluates each rule over a δ grid on MNIST_3C and keeps
// its accuracy-maximal setting (ties toward fewer ops), making the
// comparison fair even though the three confidence scales differ.
func AblationRules(ctx *Context) (*AblationRulesResult, error) {
	cdln3, _, err := ctx.MNIST3C()
	if err != nil {
		return nil, err
	}
	_, testS, err := ctx.Data()
	if err != nil {
		return nil, err
	}
	rules := []core.ExitRule{core.ThresholdRule{}, core.MarginRule{}, core.EntropyRule{}}
	r := &AblationRulesResult{}
	for _, rule := range rules {
		sweep := cdln3.Clone()
		sweep.Rule = rule
		best := AblationRuleRow{Rule: rule.Name(), NormalizedOps: 1e18}
		for d := 0.10; d <= 0.951; d += 0.05 {
			sweep.Delta = d
			res, err := core.Evaluate(sweep, testS, ctx.Cfg.Workers, false)
			if err != nil {
				return nil, err
			}
			acc, ops := res.Confusion.Accuracy(), res.NormalizedOps()
			if acc > best.Accuracy || (acc == best.Accuracy && ops < best.NormalizedOps) {
				best = AblationRuleRow{Rule: rule.Name(), BestDelta: d, Accuracy: acc, NormalizedOps: ops}
			}
		}
		r.Rows = append(r.Rows, best)
	}
	return r, nil
}

// String renders the comparison.
func (r *AblationRulesResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation — exit rules at each rule's best δ (MNIST_3C)\n")
	b.WriteString("rule        best δ   accuracy   norm OPS\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s   %.2f    %.4f     %.3f\n", row.Rule, row.BestDelta, row.Accuracy, row.NormalizedOps)
	}
	return b.String()
}

// AblationLCDataResult compares Algorithm 1's passed-only stage training
// against training every stage on the full dataset.
type AblationLCDataResult struct {
	PassedOnlyAcc, PassedOnlyOps float64
	AllDataAcc, AllDataOps       float64
}

// AblationLCData rebuilds the 8-layer cascade under both policies.
func AblationLCData(ctx *Context) (*AblationLCDataResult, error) {
	arch, err := ctx.Arch8()
	if err != nil {
		return nil, err
	}
	trainS, testS, err := ctx.Data()
	if err != nil {
		return nil, err
	}
	r := &AblationLCDataResult{}
	for _, allData := range []bool{false, true} {
		bcfg := ctx.buildConfig()
		bcfg.ForceAllStages = true
		bcfg.MaxStages = 2
		bcfg.TrainLCOnAllData = allData
		cdln, _, err := core.Build(arch, trainS, bcfg)
		if err != nil {
			return nil, err
		}
		res, err := core.Evaluate(cdln, testS, ctx.Cfg.Workers, false)
		if err != nil {
			return nil, err
		}
		if allData {
			r.AllDataAcc, r.AllDataOps = res.Confusion.Accuracy(), res.NormalizedOps()
		} else {
			r.PassedOnlyAcc, r.PassedOnlyOps = res.Confusion.Accuracy(), res.NormalizedOps()
		}
	}
	return r, nil
}

// String renders the comparison.
func (r *AblationLCDataResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation — stage-classifier training data (MNIST_3C, O1-O2-FC)\n")
	fmt.Fprintf(&b, "passed-only (Algorithm 1): accuracy %.4f, norm OPS %.3f\n", r.PassedOnlyAcc, r.PassedOnlyOps)
	fmt.Fprintf(&b, "full dataset             : accuracy %.4f, norm OPS %.3f\n", r.AllDataAcc, r.AllDataOps)
	return b.String()
}

// AblationQuantRow is one fixed-point format's deployment cost.
type AblationQuantRow struct {
	Format        string
	Accuracy      float64
	NormalizedOps float64
	MaxRoundErr   float64
}

// AblationQuantResult sweeps datapath precision for the MNIST_3C cascade.
type AblationQuantResult struct {
	FloatAccuracy float64
	Rows          []AblationQuantRow
}

// AblationQuantization quantizes the trained cascade to progressively
// coarser Qm.n formats and measures test accuracy — the check a hardware
// team runs before freezing the RTL datapath width.
func AblationQuantization(ctx *Context) (*AblationQuantResult, error) {
	cdln3, _, err := ctx.MNIST3C()
	if err != nil {
		return nil, err
	}
	_, testS, err := ctx.Data()
	if err != nil {
		return nil, err
	}
	float, err := core.Evaluate(cdln3, testS, ctx.Cfg.Workers, false)
	if err != nil {
		return nil, err
	}
	r := &AblationQuantResult{FloatAccuracy: float.Confusion.Accuracy()}
	formats := []fixed.Format{
		{IntBits: 2, FracBits: 13}, // 16-bit, the Tech45nm default
		{IntBits: 2, FracBits: 9},  // 12-bit
		{IntBits: 2, FracBits: 5},  // 8-bit
		{IntBits: 2, FracBits: 3},  // 6-bit
	}
	for _, f := range formats {
		q, maxErr, err := core.QuantizeCDLN(cdln3, f)
		if err != nil {
			return nil, err
		}
		res, err := core.Evaluate(q, testS, ctx.Cfg.Workers, false)
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows, AblationQuantRow{
			Format:        f.String(),
			Accuracy:      res.Confusion.Accuracy(),
			NormalizedOps: res.NormalizedOps(),
			MaxRoundErr:   maxErr,
		})
	}
	return r, nil
}

// String renders the sweep.
func (r *AblationQuantResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation — fixed-point datapath precision (MNIST_3C)\n")
	fmt.Fprintf(&b, "float64 reference accuracy: %.4f\n", r.FloatAccuracy)
	b.WriteString("format   accuracy   norm OPS   max rounding err\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-7s  %.4f     %.3f      %.2e\n", row.Format, row.Accuracy, row.NormalizedOps, row.MaxRoundErr)
	}
	return b.String()
}

// AblationTunedDeltas compares the paper's single global δ against the
// per-stage thresholds found by core.TuneDeltas (a beyond-paper
// extension).
type AblationTunedDeltasResult struct {
	GlobalAcc, GlobalOps float64
	TunedAcc, TunedOps   float64
	TunedDeltas          []float64
}

// AblationTunedDeltas tunes per-stage thresholds on the training set and
// evaluates both settings on the test set.
func AblationTunedDeltas(ctx *Context) (*AblationTunedDeltasResult, error) {
	cdln3, _, err := ctx.MNIST3C()
	if err != nil {
		return nil, err
	}
	trainS, testS, err := ctx.Data()
	if err != nil {
		return nil, err
	}
	global, err := core.Evaluate(cdln3, testS, ctx.Cfg.Workers, false)
	if err != nil {
		return nil, err
	}
	tuned := cdln3.Clone()
	tcfg := core.DefaultTuneConfig()
	tcfg.Workers = ctx.Cfg.Workers
	deltas, _, err := core.TuneDeltas(tuned, trainS, tcfg)
	if err != nil {
		return nil, err
	}
	after, err := core.Evaluate(tuned, testS, ctx.Cfg.Workers, false)
	if err != nil {
		return nil, err
	}
	return &AblationTunedDeltasResult{
		GlobalAcc: global.Confusion.Accuracy(), GlobalOps: global.NormalizedOps(),
		TunedAcc: after.Confusion.Accuracy(), TunedOps: after.NormalizedOps(),
		TunedDeltas: deltas,
	}, nil
}

// String renders the comparison.
func (r *AblationTunedDeltasResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation — global δ vs per-stage tuned δ (MNIST_3C)\n")
	fmt.Fprintf(&b, "global δ : accuracy %.4f, norm OPS %.3f\n", r.GlobalAcc, r.GlobalOps)
	fmt.Fprintf(&b, "tuned δ %v: accuracy %.4f, norm OPS %.3f\n", r.TunedDeltas, r.TunedAcc, r.TunedOps)
	return b.String()
}

// RunAblations executes every ablation and renders them in sequence.
func RunAblations(ctx *Context) (string, error) {
	var b strings.Builder
	rules, err := AblationRules(ctx)
	if err != nil {
		return "", fmt.Errorf("experiments: ablation rules: %w", err)
	}
	b.WriteString(rules.String() + "\n")
	lcdata, err := AblationLCData(ctx)
	if err != nil {
		return "", fmt.Errorf("experiments: ablation lc data: %w", err)
	}
	b.WriteString(lcdata.String() + "\n")
	quant, err := AblationQuantization(ctx)
	if err != nil {
		return "", fmt.Errorf("experiments: ablation quantization: %w", err)
	}
	b.WriteString(quant.String() + "\n")
	tuned, err := AblationTunedDeltas(ctx)
	if err != nil {
		return "", fmt.Errorf("experiments: ablation tuned deltas: %w", err)
	}
	b.WriteString(tuned.String())
	return b.String(), nil
}
