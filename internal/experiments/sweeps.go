package experiments

import (
	"fmt"
	"strings"

	"cdl/internal/core"
)

// Fig7Point is one configuration of the Fig. 7 sweep: accuracy as output
// layers are added one at a time to the 8-layer baseline.
type Fig7Point struct {
	// Stages is the number of linear classifiers (0 = plain baseline).
	Stages int
	// Label is "baseline", "O1-FC", "O1-O2-FC", "O1-O2-O3-FC".
	Label string
	// Accuracy is CDLN test accuracy at this configuration.
	Accuracy float64
	// FCMisclassified is the fraction of inputs that reach FC and are
	// misclassified there (the paper observes it shrinking).
	FCMisclassified float64
}

// Fig7Result reproduces Fig. 7: accuracy improvement with the number of
// output layers.
type Fig7Result struct {
	Points []Fig7Point
	// BaselineAccuracy repeats Points[0].Accuracy for convenience.
	BaselineAccuracy float64
}

// Fig7 sweeps stage count 0..3 on the 8-layer architecture.
func Fig7(ctx *Context) (*Fig7Result, error) {
	arch, err := ctx.Arch8()
	if err != nil {
		return nil, err
	}
	_, testS, err := ctx.Data()
	if err != nil {
		return nil, err
	}
	labels := []string{"baseline", "O1-FC", "O1-O2-FC", "O1-O2-O3-FC"}
	r := &Fig7Result{}
	for k := 0; k <= len(arch.Taps); k++ {
		var acc, fcMis float64
		if k == 0 {
			conf := evalBaseline(arch, testS, ctx.Cfg.Workers)
			acc = conf.Accuracy()
			fcMis = 1 - conf.Accuracy()
		} else {
			cdln, _, err := ctx.BuildSweepCDLN(k)
			if err != nil {
				return nil, err
			}
			res, err := core.Evaluate(cdln, testS, ctx.Cfg.Workers, true)
			if err != nil {
				return nil, err
			}
			acc = res.Confusion.Accuracy()
			fcMis = fcMisclassifiedFraction(res, testS)
		}
		r.Points = append(r.Points, Fig7Point{Stages: k, Label: labels[k], Accuracy: acc, FCMisclassified: fcMis})
	}
	r.BaselineAccuracy = r.Points[0].Accuracy
	return r, nil
}

// String renders the sweep.
func (r *Fig7Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 7 — Accuracy vs number of output layers (8-layer arch)\n")
	b.WriteString("config        accuracy   Δ vs baseline   FC misclassified\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-12s  %7.4f   %+7.4f         %6.3f\n",
			p.Label, p.Accuracy, p.Accuracy-r.BaselineAccuracy, p.FCMisclassified)
	}
	return b.String()
}

// Fig9Point is one configuration of the Fig. 9 sweep: normalized OPS as
// stages are added.
type Fig9Point struct {
	Stages int
	Label  string
	// NormalizedOps is mean dynamic ops / baseline ops.
	NormalizedOps float64
	// FCFraction is the fraction of inputs passed to the final layer.
	FCFraction float64
}

// Fig9Result reproduces Fig. 9: normalized #OPS versus the number of
// stages, exposing the break-even behaviour that motivates the gain rule.
type Fig9Result struct {
	Points []Fig9Point
	// BestStages is the argmin configuration (paper: 2 stages, ≈0.45).
	BestStages int
	// BestNormalizedOps is the minimum normalized OPS.
	BestNormalizedOps float64
}

// Fig9 sweeps stage count 0..3 on the 8-layer architecture.
func Fig9(ctx *Context) (*Fig9Result, error) {
	arch, err := ctx.Arch8()
	if err != nil {
		return nil, err
	}
	_, testS, err := ctx.Data()
	if err != nil {
		return nil, err
	}
	labels := []string{"baseline", "O1-FC", "O1-O2-FC", "O1-O2-O3-FC"}
	r := &Fig9Result{BestNormalizedOps: 1}
	r.Points = append(r.Points, Fig9Point{Stages: 0, Label: labels[0], NormalizedOps: 1, FCFraction: 1})
	for k := 1; k <= len(arch.Taps); k++ {
		cdln, _, err := ctx.BuildSweepCDLN(k)
		if err != nil {
			return nil, err
		}
		res, err := core.Evaluate(cdln, testS, ctx.Cfg.Workers, false)
		if err != nil {
			return nil, err
		}
		p := Fig9Point{
			Stages:        k,
			Label:         labels[k],
			NormalizedOps: res.NormalizedOps(),
			FCFraction:    res.ExitFraction(len(cdln.Stages), -1),
		}
		r.Points = append(r.Points, p)
		if p.NormalizedOps < r.BestNormalizedOps {
			r.BestNormalizedOps = p.NormalizedOps
			r.BestStages = k
		}
	}
	return r, nil
}

// String renders the sweep.
func (r *Fig9Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 9 — Normalized #OPS vs number of stages (8-layer arch)\n")
	b.WriteString("config        norm OPS   fraction to FC\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-12s   %6.3f        %5.1f%%\n", p.Label, p.NormalizedOps, 100*p.FCFraction)
	}
	fmt.Fprintf(&b, "break-even: %d stages at %.3f normalized OPS\n", r.BestStages, r.BestNormalizedOps)
	return b.String()
}

// Fig10Point is one δ of the Fig. 10 sweep.
type Fig10Point struct {
	Delta         float64
	Accuracy      float64
	NormalizedOps float64
}

// Fig10Result reproduces Fig. 10: the efficiency–accuracy trade-off as the
// confidence threshold δ varies at runtime on MNIST_3C.
type Fig10Result struct {
	Points []Fig10Point
	// BestDelta maximizes accuracy (paper: δ=0.5).
	BestDelta float64
	// BestAccuracy is the maximum accuracy.
	BestAccuracy float64
}

// Fig10 sweeps δ over [0.30, 0.95] in steps of 0.05 without retraining —
// exactly the runtime knob the paper describes (§III.B).
func Fig10(ctx *Context) (*Fig10Result, error) {
	cdln3, _, err := ctx.MNIST3C()
	if err != nil {
		return nil, err
	}
	_, testS, err := ctx.Data()
	if err != nil {
		return nil, err
	}
	r := &Fig10Result{}
	sweep := cdln3.Clone()
	for i := 0; i <= 13; i++ {
		delta := 0.30 + 0.05*float64(i)
		sweep.Delta = delta
		res, err := core.Evaluate(sweep, testS, ctx.Cfg.Workers, false)
		if err != nil {
			return nil, err
		}
		p := Fig10Point{Delta: delta, Accuracy: res.Confusion.Accuracy(), NormalizedOps: res.NormalizedOps()}
		r.Points = append(r.Points, p)
		if p.Accuracy > r.BestAccuracy {
			r.BestAccuracy = p.Accuracy
			r.BestDelta = p.Delta
		}
	}
	return r, nil
}

// String renders the sweep.
func (r *Fig10Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 10 — Efficiency vs accuracy with confidence level δ (MNIST_3C)\n")
	b.WriteString("delta   accuracy   norm OPS\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, " %.2f    %7.4f    %6.3f\n", p.Delta, p.Accuracy, p.NormalizedOps)
	}
	fmt.Fprintf(&b, "best accuracy %.4f at δ=%.2f\n", r.BestAccuracy, r.BestDelta)
	return b.String()
}
