package experiments

import (
	"cdl/internal/core"
	"cdl/internal/energy"
	"cdl/internal/hw"
)

// AcceleratorSweep evaluates the MNIST_3C exit distribution on PE arrays
// of increasing width, holding the memory system proportional (one port
// per two PEs, as in the default 16-PE/8-port configuration).
func AcceleratorSweep(ctx *Context) (*AcceleratorSweepResult, error) {
	cdln3, _, err := ctx.MNIST3C()
	if err != nil {
		return nil, err
	}
	_, testS, err := ctx.Data()
	if err != nil {
		return nil, err
	}
	res, err := core.Evaluate(cdln3, testS, ctx.Cfg.Workers, false)
	if err != nil {
		return nil, err
	}

	out := &AcceleratorSweepResult{}
	for _, pes := range []int{4, 8, 16, 32, 64} {
		acc := hw.Accelerator{Tech: hw.Tech45nm(), PEs: pes, MemPorts: maxInt(1, pes/2)}
		ev := energy.Evaluator{Acc: acc}
		sum, err := ev.FromEval(cdln3, res)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, AcceleratorSweepRow{
			PEs:              pes,
			BaselineEnergyNJ: sum.BaselineEnergy / 1000,
			CDLNEnergyNJ:     sum.MeanEnergy / 1000,
			Improvement:      sum.Improvement(),
		})
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
