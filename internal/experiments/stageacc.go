package experiments

import (
	"fmt"
	"strings"

	"cdl/internal/core"
)

// StageAccuracyRow is one exit point's contribution to overall accuracy.
type StageAccuracyRow struct {
	// Exit is the exit point's name (O1..On, FC).
	Exit string
	// Count is how many test inputs exited here.
	Count int
	// Fraction is Count over the dataset size.
	Fraction float64
	// Precision is the accuracy over the inputs that exited here — the
	// quantity the δ-gate is supposed to keep high at early exits.
	Precision float64
	// MeanConfidence is the average winning score at this exit.
	MeanConfidence float64
}

// StageAccuracyResult decomposes CDLN accuracy by exit point. This is the
// mechanism check behind the paper's §V.B accuracy-enhancement claim: the
// cascade wins when the early exits' precision exceeds what the baseline's
// final layer achieves on the same inputs.
type StageAccuracyResult struct {
	Rows []StageAccuracyRow
	// Overall is the CDLN's total accuracy (the weighted mean of the rows).
	Overall float64
	// BaselineOnExited[i] is the *baseline's* accuracy restricted to the
	// inputs that the CDLN exits at row i — the counterfactual the paper's
	// argument needs.
	BaselineOnExited []float64
}

// StageAccuracy evaluates MNIST_3C with per-sample records and computes
// per-exit precision plus the baseline counterfactual on each exit cohort.
func StageAccuracy(ctx *Context) (*StageAccuracyResult, error) {
	cdln3, _, err := ctx.MNIST3C()
	if err != nil {
		return nil, err
	}
	arch, err := ctx.Arch8()
	if err != nil {
		return nil, err
	}
	_, testS, err := ctx.Data()
	if err != nil {
		return nil, err
	}
	res, err := core.Evaluate(cdln3, testS, ctx.Cfg.Workers, true)
	if err != nil {
		return nil, err
	}

	exits := cdln3.NumExits()
	counts := make([]int, exits)
	correct := make([]int, exits)
	confSum := make([]float64, exits)
	baseCorrect := make([]int, exits)
	baseNet := arch.Net.Clone()
	for i, rec := range res.Records {
		e := rec.StageIndex
		counts[e]++
		confSum[e] += rec.Confidence
		if rec.Label == testS[i].Label {
			correct[e]++
		}
		if baseNet.Predict(testS[i].X) == testS[i].Label {
			baseCorrect[e]++
		}
	}

	out := &StageAccuracyResult{
		Overall:          res.Confusion.Accuracy(),
		BaselineOnExited: make([]float64, exits),
	}
	total := len(testS)
	for e := 0; e < exits; e++ {
		row := StageAccuracyRow{Exit: cdln3.ExitName(e), Count: counts[e]}
		if total > 0 {
			row.Fraction = float64(counts[e]) / float64(total)
		}
		if counts[e] > 0 {
			row.Precision = float64(correct[e]) / float64(counts[e])
			row.MeanConfidence = confSum[e] / float64(counts[e])
			out.BaselineOnExited[e] = float64(baseCorrect[e]) / float64(counts[e])
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// String renders the decomposition.
func (r *StageAccuracyResult) String() string {
	var b strings.Builder
	b.WriteString("Per-exit precision vs baseline counterfactual (MNIST_3C)\n")
	b.WriteString("exit   share    precision  mean-conf  baseline-on-same-inputs\n")
	for i, row := range r.Rows {
		fmt.Fprintf(&b, "%-4s  %5.1f%%    %.4f     %.3f      %.4f\n",
			row.Exit, 100*row.Fraction, row.Precision, row.MeanConfidence, r.BaselineOnExited[i])
	}
	fmt.Fprintf(&b, "overall CDLN accuracy %.4f\n", r.Overall)
	return b.String()
}

// AcceleratorSweepRow is one accelerator configuration's cost for the
// baseline and the CDLN average inference.
type AcceleratorSweepRow struct {
	PEs              int
	BaselineEnergyNJ float64
	CDLNEnergyNJ     float64
	Improvement      float64
}

// AcceleratorSweepResult explores the PE-array design space: CDL's energy
// advantage is architectural (fewer operations issued), so it must persist
// across accelerator sizings — this sweep verifies that and exposes the
// leakage effect (bigger arrays finish sooner but leak more per cycle...
// the model keeps leakage proportional to time only, so wider arrays
// strictly help until memory-bound).
type AcceleratorSweepResult struct {
	Rows []AcceleratorSweepRow
}

// String renders the sweep.
func (r *AcceleratorSweepResult) String() string {
	var b strings.Builder
	b.WriteString("Accelerator design-space sweep (MNIST_3C, 45nm)\n")
	b.WriteString("PEs    baseline nJ   CDLN nJ   improvement\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-5d   %8.1f    %8.1f     %.2fx\n",
			row.PEs, row.BaselineEnergyNJ, row.CDLNEnergyNJ, row.Improvement)
	}
	return b.String()
}
