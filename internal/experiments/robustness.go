package experiments

import (
	"fmt"
	"strings"

	"cdl/internal/core"
	"cdl/internal/stats"
)

// RobustnessRow is one seed's headline results for the 8-layer pipeline.
type RobustnessRow struct {
	Seed          int64
	BaselineAcc   float64
	CDLNAcc       float64
	NormalizedOps float64
}

// RobustnessResult replicates the MNIST_3C headline across independent
// seeds (fresh dataset, fresh initialization, fresh training), answering
// the question EXPERIMENTS.md's claims hang on: do the qualitative results
// survive resampling, or did one lucky seed produce them?
type RobustnessResult struct {
	Rows []RobustnessRow
	// AccGain summarizes CDLN − baseline accuracy across seeds.
	AccGain stats.Summary
	// NormOps summarizes normalized OPS across seeds.
	NormOps stats.Summary
}

// Robustness runs the full 8-layer pipeline once per seed. Each seed costs
// a complete baseline training run, so callers choose the seed count to
// match their time budget (cmd/cdlexp exposes -robust N).
func Robustness(base Config, seeds []int64) (*RobustnessResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiments: no seeds")
	}
	r := &RobustnessResult{}
	var gains, ops []float64
	for _, seed := range seeds {
		cfg := base
		cfg.Seed = seed
		ctx := NewContext(cfg)
		arch, err := ctx.Arch8()
		if err != nil {
			return nil, fmt.Errorf("experiments: seed %d: %w", seed, err)
		}
		cdln, _, err := ctx.MNIST3C()
		if err != nil {
			return nil, fmt.Errorf("experiments: seed %d: %w", seed, err)
		}
		_, testS, err := ctx.Data()
		if err != nil {
			return nil, err
		}
		baseAcc := evalBaseline(arch, testS, cfg.Workers).Accuracy()
		res, err := core.Evaluate(cdln, testS, cfg.Workers, false)
		if err != nil {
			return nil, err
		}
		row := RobustnessRow{
			Seed:          seed,
			BaselineAcc:   baseAcc,
			CDLNAcc:       res.Confusion.Accuracy(),
			NormalizedOps: res.NormalizedOps(),
		}
		r.Rows = append(r.Rows, row)
		gains = append(gains, row.CDLNAcc-row.BaselineAcc)
		ops = append(ops, row.NormalizedOps)
	}
	r.AccGain = stats.Summarize(gains)
	r.NormOps = stats.Summarize(ops)
	return r, nil
}

// String renders the replicate table.
func (r *RobustnessResult) String() string {
	var b strings.Builder
	b.WriteString("Robustness across seeds (8-layer / MNIST_3C)\n")
	b.WriteString("seed   baseline   CDLN      Δacc      norm OPS\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-5d   %.4f    %.4f   %+.4f    %.3f\n",
			row.Seed, row.BaselineAcc, row.CDLNAcc, row.CDLNAcc-row.BaselineAcc, row.NormalizedOps)
	}
	fmt.Fprintf(&b, "accuracy gain: mean %+.4f ± %.4f | normalized OPS: mean %.3f ± %.3f\n",
		r.AccGain.Mean, r.AccGain.Std, r.NormOps.Mean, r.NormOps.Std)
	return b.String()
}
