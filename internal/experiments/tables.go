package experiments

import (
	"fmt"
	"runtime"
	"strings"

	"cdl/internal/core"
	"cdl/internal/mnist"
	"cdl/internal/nn"
	"cdl/internal/stats"
	"cdl/internal/train"
)

// TableI renders the 6-layer baseline architecture exactly as specified by
// the paper's Table I.
func TableI(ctx *Context) (string, error) {
	arch, err := ctx.Arch6()
	if err != nil {
		return "", err
	}
	return "Table I — 6-layer DLN (baseline of MNIST_2C)\n" + arch.Net.Summary(), nil
}

// TableII renders the 8-layer baseline architecture (paper Table II).
func TableII(ctx *Context) (string, error) {
	arch, err := ctx.Arch8()
	if err != nil {
		return "", err
	}
	return "Table II — 8-layer DLN (baseline of MNIST_3C)\n" + arch.Net.Summary(), nil
}

// TableIIIResult reproduces Table III: overall accuracy of both baselines
// and both CDLNs on the test set.
type TableIIIResult struct {
	Baseline6, CDLN2C float64
	Baseline8, CDLN3C float64
}

// TableIII measures the four accuracies.
func TableIII(ctx *Context) (*TableIIIResult, error) {
	arch6, err := ctx.Arch6()
	if err != nil {
		return nil, err
	}
	arch8, err := ctx.Arch8()
	if err != nil {
		return nil, err
	}
	cdln2, _, err := ctx.MNIST2C()
	if err != nil {
		return nil, err
	}
	cdln3, _, err := ctx.MNIST3C()
	if err != nil {
		return nil, err
	}
	_, testS, err := ctx.Data()
	if err != nil {
		return nil, err
	}
	r := &TableIIIResult{}
	r.Baseline6 = evalBaseline(arch6, testS, ctx.Cfg.Workers).Accuracy()
	r.Baseline8 = evalBaseline(arch8, testS, ctx.Cfg.Workers).Accuracy()
	res2, err := core.Evaluate(cdln2, testS, ctx.Cfg.Workers, false)
	if err != nil {
		return nil, err
	}
	r.CDLN2C = res2.Confusion.Accuracy()
	res3, err := core.Evaluate(cdln3, testS, ctx.Cfg.Workers, false)
	if err != nil {
		return nil, err
	}
	r.CDLN3C = res3.Confusion.Accuracy()
	return r, nil
}

// String renders the accuracy table.
func (r *TableIIIResult) String() string {
	var b strings.Builder
	b.WriteString("Table III — Accuracy for 6-layer and 8-layer networks\n")
	b.WriteString("network    baseline    CDLN\n")
	fmt.Fprintf(&b, "6-layer    %7.4f    %7.4f (MNIST_2C, %+.2f%%)\n",
		r.Baseline6, r.CDLN2C, 100*(r.CDLN2C-r.Baseline6))
	fmt.Fprintf(&b, "8-layer    %7.4f    %7.4f (MNIST_3C, %+.2f%%)\n",
		r.Baseline8, r.CDLN3C, 100*(r.CDLN3C-r.Baseline8))
	return b.String()
}

// TableIVResult reproduces Table IV: example test images of the least- and
// most-difficult digits (1 and 5) classified correctly at each exit stage
// of MNIST_3C.
type TableIVResult struct {
	// Galleries[digit][exit] holds one correctly-classified example per
	// exit point, if any was found; nil entries mean no example exited
	// there.
	Galleries map[int][]*mnist.Image
	// ExitNames labels the gallery columns.
	ExitNames []string
	// Digits lists the gallery rows (paper: 1 and 5).
	Digits []int
}

// TableIV collects exemplar images per (digit, exit stage).
func TableIV(ctx *Context) (*TableIVResult, error) {
	cdln3, _, err := ctx.MNIST3C()
	if err != nil {
		return nil, err
	}
	_, testImgs, err := ctx.Images()
	if err != nil {
		return nil, err
	}
	_, testS, err := ctx.Data()
	if err != nil {
		return nil, err
	}
	res, err := core.Evaluate(cdln3, testS, ctx.Cfg.Workers, true)
	if err != nil {
		return nil, err
	}
	r := &TableIVResult{
		Galleries: map[int][]*mnist.Image{},
		ExitNames: res.ExitNames,
		Digits:    []int{1, 5},
	}
	for _, digit := range r.Digits {
		r.Galleries[digit] = make([]*mnist.Image, len(res.ExitNames))
		// Prefer the hardest (highest difficulty) correct exemplar per exit,
		// making the depth progression visible.
		for i := range testImgs {
			img := &testImgs[i]
			rec := res.Records[i]
			if img.Label != digit || rec.Label != digit {
				continue
			}
			cur := r.Galleries[digit][rec.StageIndex]
			if cur == nil || img.Difficulty > cur.Difficulty {
				r.Galleries[digit][rec.StageIndex] = img
			}
		}
	}
	return r, nil
}

// String renders the ASCII gallery.
func (r *TableIVResult) String() string {
	var b strings.Builder
	b.WriteString("Table IV — Example images classified at each stage (MNIST_3C)\n")
	for _, digit := range r.Digits {
		fmt.Fprintf(&b, "digit %d:\n", digit)
		var present []mnist.Image
		var labels []string
		for e, img := range r.Galleries[digit] {
			if img != nil {
				present = append(present, *img)
				labels = append(labels, fmt.Sprintf("%s (difficulty %.2f)", r.ExitNames[e], img.Difficulty))
			}
		}
		if len(present) == 0 {
			b.WriteString("  (no correct classifications)\n")
			continue
		}
		b.WriteString("  " + strings.Join(labels, " | ") + "\n")
		b.WriteString(mnist.RenderSideBySide(present, 4))
	}
	return b.String()
}

// GainReport summarizes Algorithm 1's admission decisions for both CDLNs —
// the §V.D narrative that the gain rule keeps O1 and O2 but rejects O3.
func GainReport(ctx *Context) (string, error) {
	_, rep2, err := ctx.MNIST2C()
	if err != nil {
		return "", err
	}
	_, rep3, err := ctx.MNIST3C()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Algorithm 1 gain-rule decisions (Eq. 1)\n")
	for _, entry := range []struct {
		name string
		rep  *core.Report
	}{{"MNIST_2C", rep2}, {"MNIST_3C", rep3}} {
		name, rep := entry.name, entry.rep
		fmt.Fprintf(&b, "%s (baseline %.0f ops):\n", name, rep.BaselineOps)
		for _, s := range rep.Stages {
			fmt.Fprintf(&b, "  %-3s reach=%-5d classify=%-5d lcAcc=%.3f gain=%8.1f ops/input admitted=%v\n",
				s.Name, s.Reaching, s.Classified, s.LCAccuracy, s.Gain, s.Admitted)
		}
	}
	return b.String(), nil
}

// evalBaseline measures plain-DLN accuracy with parallel replicas.
func evalBaseline(arch *nn.Arch, data []train.Sample, workers int) *stats.Confusion {
	return train.Evaluate(arch.Net, data, arch.NumClasses, workers)
}

// fcMisclassifiedFraction returns the fraction of all inputs that reached
// the final layer and were misclassified there.
func fcMisclassifiedFraction(res *core.EvalResult, data []train.Sample) float64 {
	if len(res.Records) == 0 {
		return 0
	}
	fcExit := len(res.ExitNames) - 1
	wrong := 0
	for i, rec := range res.Records {
		if rec.StageIndex == fcExit && rec.Label != data[i].Label {
			wrong++
		}
	}
	return float64(wrong) / float64(len(data))
}

// RunAll executes every experiment and renders them in paper order. It is
// the single entry point used by cmd/cdlexp and the benchmark harness.
func RunAll(ctx *Context) (string, error) {
	var b strings.Builder

	type step struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	t1, err := TableI(ctx)
	if err != nil {
		return "", err
	}
	t2, err := TableII(ctx)
	if err != nil {
		return "", err
	}
	b.WriteString(t1 + "\n" + t2 + "\n")

	steps := []step{
		{"Fig5", func() (fmt.Stringer, error) { return Fig5(ctx) }},
		{"Fig6", func() (fmt.Stringer, error) { return Fig6(ctx) }},
		{"TableIII", func() (fmt.Stringer, error) { return TableIII(ctx) }},
		{"Fig7", func() (fmt.Stringer, error) { return Fig7(ctx) }},
		{"Fig8", func() (fmt.Stringer, error) { return Fig8(ctx) }},
		{"Fig9", func() (fmt.Stringer, error) { return Fig9(ctx) }},
		{"Fig10", func() (fmt.Stringer, error) { return Fig10(ctx) }},
		{"TableIV", func() (fmt.Stringer, error) { return TableIV(ctx) }},
	}
	for _, s := range steps {
		r, err := s.run()
		if err != nil {
			return "", fmt.Errorf("experiments: %s: %w", s.name, err)
		}
		b.WriteString(r.String() + "\n")
	}
	gain, err := GainReport(ctx)
	if err != nil {
		return "", err
	}
	b.WriteString(gain)
	return b.String(), nil
}

// Workers returns a sensible worker count for library callers.
func Workers() int { return runtime.GOMAXPROCS(0) }
