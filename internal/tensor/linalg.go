package tensor

import "fmt"

// MatVec computes y = W·x for a rank-2 weight tensor W of shape [out,in]
// and a flat vector x of length in, writing into a new vector of length out.
func MatVec(w, x *T) *T {
	if w.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatVec weight rank %d != 2", w.Rank()))
	}
	out, in := w.shape[0], w.shape[1]
	if x.Numel() != in {
		panic(fmt.Sprintf("tensor: MatVec input length %d != %d", x.Numel(), in))
	}
	y := New(out)
	MatVecInto(w, x, y)
	return y
}

// MatVecInto computes y = W·x in place into y (length out). It performs no
// allocation and is the hot path of the fully connected and linear
// classifier layers.
func MatVecInto(w, x, y *T) {
	out, in := w.shape[0], w.shape[1]
	if x.Numel() != in || y.Numel() != out {
		panic(fmt.Sprintf("tensor: MatVecInto dims w=%v x=%d y=%d", w.shape, x.Numel(), y.Numel()))
	}
	wd, xd, yd := w.Data, x.Data, y.Data
	for o := 0; o < out; o++ {
		row := wd[o*in : (o+1)*in]
		s := 0.0
		for i, v := range row {
			s += v * xd[i]
		}
		yd[o] = s
	}
}

// MatTVecInto computes x = Wᵀ·g into x (length in) for W of shape [out,in]
// and g of length out; used for backpropagating through a dense layer.
func MatTVecInto(w, g, x *T) {
	out, in := w.shape[0], w.shape[1]
	if g.Numel() != out || x.Numel() != in {
		panic(fmt.Sprintf("tensor: MatTVecInto dims w=%v g=%d x=%d", w.shape, g.Numel(), x.Numel()))
	}
	wd, gd, xd := w.Data, g.Data, x.Data
	for i := range xd {
		xd[i] = 0
	}
	for o := 0; o < out; o++ {
		gv := gd[o]
		if gv == 0 {
			continue
		}
		row := wd[o*in : (o+1)*in]
		for i, v := range row {
			xd[i] += v * gv
		}
	}
}

// OuterAccum accumulates the outer product g⊗x into W (shape [out,in]):
// W[o,i] += g[o]*x[i]. Used for dense-layer weight gradients.
func OuterAccum(w, g, x *T) {
	out, in := w.shape[0], w.shape[1]
	if g.Numel() != out || x.Numel() != in {
		panic(fmt.Sprintf("tensor: OuterAccum dims w=%v g=%d x=%d", w.shape, g.Numel(), x.Numel()))
	}
	wd, gd, xd := w.Data, g.Data, x.Data
	for o := 0; o < out; o++ {
		gv := gd[o]
		if gv == 0 {
			continue
		}
		row := wd[o*in : (o+1)*in]
		for i, v := range xd {
			row[i] += gv * v
		}
	}
}

// Conv2DValid computes the "valid" 2-D correlation of a single-channel
// input plane in (shape [H,W]) with kernel k (shape [kh,kw]), accumulating
// into out (shape [H-kh+1, W-kw+1]). This is the primitive under
// nn.Conv2D; the layer handles multi-channel fan-in and bias.
func Conv2DValid(in, k, out *T) {
	h, w := in.shape[0], in.shape[1]
	kh, kw := k.shape[0], k.shape[1]
	oh, ow := h-kh+1, w-kw+1
	if out.shape[0] != oh || out.shape[1] != ow {
		panic(fmt.Sprintf("tensor: Conv2DValid out shape %v want [%d %d]", out.shape, oh, ow))
	}
	ind, kd, outd := in.Data, k.Data, out.Data
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			s := 0.0
			for ky := 0; ky < kh; ky++ {
				irow := ind[(oy+ky)*w+ox:]
				krow := kd[ky*kw : ky*kw+kw]
				for kx, kv := range krow {
					s += kv * irow[kx]
				}
			}
			outd[oy*ow+ox] += s
		}
	}
}

// Conv2DFull computes the "full" 2-D convolution of in (shape [H,W]) with
// kernel k (shape [kh,kw]) — equivalently, full correlation with the
// 180°-rotated kernel — accumulating into out (shape [H+kh-1, W+kw-1]).
// Because Conv2DValid is a correlation, Conv2DFull with the *same* kernel is
// its exact adjoint and is used to backpropagate gradients to a convolution
// layer's input.
func Conv2DFull(in, k, out *T) {
	h, w := in.shape[0], in.shape[1]
	kh, kw := k.shape[0], k.shape[1]
	oh, ow := h+kh-1, w+kw-1
	if out.shape[0] != oh || out.shape[1] != ow {
		panic(fmt.Sprintf("tensor: Conv2DFull out shape %v want [%d %d]", out.shape, oh, ow))
	}
	ind, kd, outd := in.Data, k.Data, out.Data
	// out[y+ky, x+kx] += in[y,x] * k[ky,kx]  — scatter form avoids branch-heavy
	// boundary clamping in the gather form.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			iv := ind[y*w+x]
			if iv == 0 {
				continue
			}
			for ky := 0; ky < kh; ky++ {
				orow := outd[(y+ky)*ow+x:]
				krow := kd[ky*kw : ky*kw+kw]
				for kx, kv := range krow {
					orow[kx] += iv * kv
				}
			}
		}
	}
}

// Rot180 returns a copy of the rank-2 tensor k rotated by 180 degrees.
func Rot180(k *T) *T {
	if k.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Rot180 rank %d != 2", k.Rank()))
	}
	h, w := k.shape[0], k.shape[1]
	r := New(h, w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r.Data[(h-1-y)*w+(w-1-x)] = k.Data[y*w+x]
		}
	}
	return r
}

// Concat concatenates the flattened contents of the given tensors into a
// single rank-1 tensor. It is used to build the 1-D feature vectors fed to
// the CDL linear classifiers (paper Algorithm 1, step 6).
func Concat(ts ...*T) *T {
	n := 0
	for _, t := range ts {
		n += t.Numel()
	}
	out := New(n)
	off := 0
	for _, t := range ts {
		copy(out.Data[off:], t.Data)
		off += t.Numel()
	}
	return out
}
