package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndNumel(t *testing.T) {
	cases := []struct {
		shape []int
		numel int
	}{
		{[]int{}, 1},
		{[]int{3}, 3},
		{[]int{2, 3}, 6},
		{[]int{4, 1, 5}, 20},
		{[]int{0, 7}, 0},
	}
	for _, c := range cases {
		tt := New(c.shape...)
		if tt.Numel() != c.numel {
			t.Errorf("New(%v).Numel() = %d, want %d", c.shape, tt.Numel(), c.numel)
		}
		if tt.Rank() != len(c.shape) {
			t.Errorf("New(%v).Rank() = %d, want %d", c.shape, tt.Rank(), len(c.shape))
		}
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice mismatch did not panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	tt := New(2, 3, 4)
	val := 0.0
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 4; k++ {
				tt.Set(val, i, j, k)
				val++
			}
		}
	}
	// Row-major: Data should be 0..23 in order.
	for i, v := range tt.Data {
		if v != float64(i) {
			t.Fatalf("Data[%d] = %v, want %d (row-major layout broken)", i, v, i)
		}
	}
	if got := tt.At(1, 2, 3); got != 23 {
		t.Errorf("At(1,2,3) = %v, want 23", got)
	}
}

func TestOffsetOutOfRangePanics(t *testing.T) {
	tt := New(2, 2)
	for _, idx := range [][]int{{2, 0}, {0, -1}, {0}, {0, 0, 0}} {
		func(idx []int) {
			defer func() {
				if recover() == nil {
					t.Errorf("Offset(%v) did not panic", idx)
				}
			}()
			tt.Offset(idx...)
		}(idx)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := a.Clone()
	b.Set(99, 0, 0)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares data with original")
	}
	if !a.SameShape(b) {
		t.Error("Clone changed shape")
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	b.Set(42, 0, 0)
	if a.At(0, 0) != 42 {
		t.Error("Reshape does not share data")
	}
	c := a.Reshape(-1, 2)
	if c.Dim(0) != 3 || c.Dim(1) != 2 {
		t.Errorf("Reshape(-1,2) shape = %v, want [3 2]", c.Shape())
	}
	if a.Flatten().Rank() != 1 || a.Flatten().Numel() != 6 {
		t.Error("Flatten wrong")
	}
}

func TestReshapeBadPanics(t *testing.T) {
	a := New(2, 3)
	for _, shape := range [][]int{{4}, {-1, -1}, {5, -1}, {0, -1}} {
		func(shape []int) {
			defer func() {
				if recover() == nil {
					t.Errorf("Reshape(%v) did not panic", shape)
				}
			}()
			a.Reshape(shape...)
		}(shape)
	}
}

func TestArithmetic(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 4)
	b := FromSlice([]float64{10, 20, 30, 40}, 4)
	a.Add(b)
	want := []float64{11, 22, 33, 44}
	for i, w := range want {
		if a.Data[i] != w {
			t.Fatalf("Add: Data[%d]=%v want %v", i, a.Data[i], w)
		}
	}
	a.Sub(b)
	for i, w := range []float64{1, 2, 3, 4} {
		if a.Data[i] != w {
			t.Fatalf("Sub: Data[%d]=%v want %v", i, a.Data[i], w)
		}
	}
	a.Mul(b)
	for i, w := range []float64{10, 40, 90, 160} {
		if a.Data[i] != w {
			t.Fatalf("Mul: Data[%d]=%v want %v", i, a.Data[i], w)
		}
	}
	a.Scale(0.5)
	if a.Data[0] != 5 {
		t.Fatalf("Scale: got %v want 5", a.Data[0])
	}
	a.Zero()
	if a.Sum() != 0 {
		t.Fatal("Zero did not zero")
	}
	a.Fill(2)
	if a.Sum() != 8 {
		t.Fatalf("Fill/Sum: got %v want 8", a.Sum())
	}
	a.AddScaled(3, b)
	if a.Data[3] != 2+120 {
		t.Fatalf("AddScaled: got %v want 122", a.Data[3])
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	a, b := New(2, 2), New(4)
	for name, f := range map[string]func(){
		"Add":       func() { a.Add(b) },
		"Sub":       func() { a.Sub(b) },
		"Mul":       func() { a.Mul(b) },
		"AddScaled": func() { a.AddScaled(1, b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched shapes did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMaxMinArgMax(t *testing.T) {
	a := FromSlice([]float64{3, -1, 7, 7, 2}, 5)
	mx, argmx := a.Max()
	if mx != 7 || argmx != 2 {
		t.Errorf("Max = (%v,%d), want (7,2) — first max wins", mx, argmx)
	}
	mn, argmn := a.Min()
	if mn != -1 || argmn != 1 {
		t.Errorf("Min = (%v,%d), want (-1,1)", mn, argmn)
	}
	if a.ArgMax() != 2 {
		t.Errorf("ArgMax = %d, want 2", a.ArgMax())
	}
}

func TestDotAndNorm(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if got := a.Dot(b); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := a.Norm2(); math.Abs(got-math.Sqrt(14)) > 1e-12 {
		t.Errorf("Norm2 = %v, want sqrt(14)", got)
	}
}

func TestMeanStd(t *testing.T) {
	a := FromSlice([]float64{2, 4, 4, 4, 5, 5, 7, 9}, 8)
	mean, std := a.MeanStd()
	if mean != 5 || math.Abs(std-2) > 1e-12 {
		t.Errorf("MeanStd = (%v,%v), want (5,2)", mean, std)
	}
	var empty T
	m, s := empty.MeanStd()
	if m != 0 || s != 0 {
		t.Errorf("empty MeanStd = (%v,%v), want (0,0)", m, s)
	}
}

func TestApplyMap(t *testing.T) {
	a := FromSlice([]float64{1, 4, 9}, 3)
	b := a.Map(math.Sqrt)
	if a.Data[1] != 4 {
		t.Error("Map mutated receiver")
	}
	if b.Data[2] != 3 {
		t.Errorf("Map: got %v want 3", b.Data[2])
	}
	a.Apply(func(x float64) float64 { return -x })
	if a.Data[0] != -1 {
		t.Error("Apply failed")
	}
}

func TestEqualAllClose(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{1, 2.0000001}, 2)
	if Equal(a, b) {
		t.Error("Equal on unequal values")
	}
	if !AllClose(a, b, 1e-6) {
		t.Error("AllClose rejected close values")
	}
	if AllClose(a, b, 1e-9) {
		t.Error("AllClose accepted distant values")
	}
	if AllClose(a, New(3), 1) {
		t.Error("AllClose across shapes")
	}
}

func TestStringForms(t *testing.T) {
	small := FromSlice([]float64{1, 2}, 2)
	if s := small.String(); s == "" {
		t.Error("small String empty")
	}
	big := New(100)
	if s := big.String(); s == "" {
		t.Error("big String empty")
	}
}

// Property: Add is commutative up to float summation on identical data
// (a+b == b+a exactly for element-wise float64 addition).
func TestQuickAddCommutative(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		a := FromSlice(append([]float64(nil), raw...), len(raw))
		b := a.Map(func(x float64) float64 { return x/2 + 1 })
		ab := a.Clone()
		ab.Add(b)
		ba := b.Clone()
		ba.Add(a)
		return Equal(ab, ba)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Scale(a); Scale(b) == Scale(a*b) exactly is not guaranteed in
// floats, but Scale(1) must be identity and Scale(0) must zero everything.
func TestQuickScaleIdentityAndZero(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		a := FromSlice(append([]float64(nil), raw...), len(raw))
		orig := a.Clone()
		a.Scale(1)
		if !Equal(a, orig) {
			return false
		}
		a.Scale(0)
		for _, v := range a.Data {
			if v != 0 && !math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Reshape preserves the flat data sequence.
func TestQuickReshapePreservesData(t *testing.T) {
	f := func(n uint8) bool {
		rows := int(n%6) + 1
		cols := int(n/37) + 1
		a := New(rows, cols)
		for i := range a.Data {
			a.Data[i] = float64(i) * 1.5
		}
		b := a.Reshape(cols, rows).Reshape(rows * cols)
		for i, v := range b.Data {
			if v != float64(i)*1.5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Rot180 is an involution.
func TestQuickRot180Involution(t *testing.T) {
	f := func(n uint8) bool {
		h := int(n%5) + 1
		w := int(n/43) + 1
		k := New(h, w)
		r := rand.New(rand.NewSource(int64(n)))
		for i := range k.Data {
			k.Data[i] = r.NormFloat64()
		}
		return Equal(Rot180(Rot180(k)), k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
