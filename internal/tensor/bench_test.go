package tensor

import (
	"math/rand"
	"testing"
)

func randTensor(shape []int, seed int64) *T {
	t := New(shape...)
	r := rand.New(rand.NewSource(seed))
	for i := range t.Data {
		t.Data[i] = r.NormFloat64()
	}
	return t
}

func BenchmarkMatVec507x10(b *testing.B) {
	// The O1 linear-classifier shape of the paper's 8-layer network.
	w := randTensor([]int{10, 507}, 1)
	x := randTensor([]int{507}, 2)
	y := New(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatVecInto(w, x, y)
	}
}

func BenchmarkConv2DValid26x26k3(b *testing.B) {
	// The C1 plane of the paper's 8-layer network.
	in := randTensor([]int{28, 28}, 3)
	k := randTensor([]int{3, 3}, 4)
	out := New(26, 26)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Zero()
		Conv2DValid(in, k, out)
	}
}

func BenchmarkConv2DFull(b *testing.B) {
	in := randTensor([]int{26, 26}, 5)
	k := randTensor([]int{3, 3}, 6)
	out := New(28, 28)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Zero()
		Conv2DFull(in, k, out)
	}
}

func BenchmarkOuterAccum(b *testing.B) {
	w := New(10, 507)
	g := randTensor([]int{10}, 7)
	x := randTensor([]int{507}, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OuterAccum(w, g, x)
	}
}
