package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatVec(t *testing.T) {
	w := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
	}, 2, 3)
	x := FromSlice([]float64{1, 0, -1}, 3)
	y := MatVec(w, x)
	if y.Numel() != 2 || y.Data[0] != -2 || y.Data[1] != -2 {
		t.Errorf("MatVec = %v, want [-2 -2]", y.Data)
	}
}

func TestMatVecDimPanics(t *testing.T) {
	w := New(2, 3)
	x := New(4)
	defer func() {
		if recover() == nil {
			t.Fatal("MatVec dim mismatch did not panic")
		}
	}()
	MatVec(w, x)
}

func TestMatTVecIntoIsAdjoint(t *testing.T) {
	// <Wx, g> == <x, Wᵀg> for all x, g — the defining adjoint property used
	// by dense-layer backprop.
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		out := r.Intn(5) + 1
		in := r.Intn(5) + 1
		w := New(out, in)
		x := New(in)
		g := New(out)
		for i := range w.Data {
			w.Data[i] = r.NormFloat64()
		}
		for i := range x.Data {
			x.Data[i] = r.NormFloat64()
		}
		for i := range g.Data {
			g.Data[i] = r.NormFloat64()
		}
		wx := MatVec(w, x)
		wtg := New(in)
		MatTVecInto(w, g, wtg)
		lhs := wx.Dot(g)
		rhs := x.Dot(wtg)
		if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
			t.Fatalf("adjoint violated: <Wx,g>=%v <x,Wᵀg>=%v", lhs, rhs)
		}
	}
}

func TestOuterAccum(t *testing.T) {
	w := New(2, 3)
	g := FromSlice([]float64{1, 2}, 2)
	x := FromSlice([]float64{3, 4, 5}, 3)
	OuterAccum(w, g, x)
	OuterAccum(w, g, x) // accumulate twice
	want := []float64{6, 8, 10, 12, 16, 20}
	for i, v := range want {
		if w.Data[i] != v {
			t.Fatalf("OuterAccum Data[%d]=%v want %v", i, w.Data[i], v)
		}
	}
}

func TestConv2DValidKnown(t *testing.T) {
	in := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 3, 3)
	k := FromSlice([]float64{
		1, 0,
		0, 1,
	}, 2, 2)
	out := New(2, 2)
	Conv2DValid(in, k, out)
	// correlation: out[y,x] = in[y,x]+in[y+1,x+1]
	want := []float64{6, 8, 12, 14}
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("Conv2DValid Data[%d]=%v want %v", i, out.Data[i], v)
		}
	}
}

func TestConv2DValidAccumulates(t *testing.T) {
	in := FromSlice([]float64{1, 1, 1, 1}, 2, 2)
	k := FromSlice([]float64{1}, 1, 1)
	out := New(2, 2)
	out.Fill(10)
	Conv2DValid(in, k, out)
	for _, v := range out.Data {
		if v != 11 {
			t.Fatalf("Conv2DValid should accumulate, got %v", v)
		}
	}
}

func TestConv2DFullKnown(t *testing.T) {
	in := FromSlice([]float64{1, 2}, 1, 2)
	k := FromSlice([]float64{1, 10}, 1, 2)
	out := New(1, 3)
	Conv2DFull(in, k, out)
	// scatter: out[x+kx] += in[x]*k[kx] → [1,10+2,20]
	want := []float64{1, 12, 20}
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("Conv2DFull Data[%d]=%v want %v", i, out.Data[i], v)
		}
	}
}

// The full convolution with the same kernel is the adjoint of the valid
// correlation: <valid(in,k), g> == <in, full(g, k)>. This identity is
// exactly what conv backprop relies on.
func TestConvAdjointProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		h := r.Intn(4) + 3
		w := r.Intn(4) + 3
		kh := r.Intn(h-1) + 1
		kw := r.Intn(w-1) + 1
		in := New(h, w)
		k := New(kh, kw)
		for i := range in.Data {
			in.Data[i] = r.NormFloat64()
		}
		for i := range k.Data {
			k.Data[i] = r.NormFloat64()
		}
		oh, ow := h-kh+1, w-kw+1
		g := New(oh, ow)
		for i := range g.Data {
			g.Data[i] = r.NormFloat64()
		}
		vout := New(oh, ow)
		Conv2DValid(in, k, vout)
		back := New(h, w)
		Conv2DFull(g, k, back)
		lhs := vout.Dot(g)
		rhs := in.Dot(back)
		if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
			t.Fatalf("conv adjoint violated: lhs=%v rhs=%v (h=%d w=%d kh=%d kw=%d)", lhs, rhs, h, w, kh, kw)
		}
	}
}

func TestConcat(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{3, 4, 5}, 3)
	c := Concat(a, b)
	if c.Numel() != 5 {
		t.Fatalf("Concat numel = %d, want 5", c.Numel())
	}
	for i, v := range []float64{1, 2, 3, 4, 5} {
		if c.Data[i] != v {
			t.Fatalf("Concat Data[%d]=%v want %v", i, c.Data[i], v)
		}
	}
	if Concat().Numel() != 0 {
		t.Error("Concat() should be empty")
	}
}

// Property: MatVec is linear in x.
func TestQuickMatVecLinearity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		out, in := r.Intn(4)+1, r.Intn(4)+1
		w := New(out, in)
		x1, x2 := New(in), New(in)
		for i := range w.Data {
			w.Data[i] = r.NormFloat64()
		}
		for i := range x1.Data {
			x1.Data[i] = r.NormFloat64()
			x2.Data[i] = r.NormFloat64()
		}
		a := r.NormFloat64()
		// W(x1 + a*x2) == Wx1 + a*Wx2 up to fp tolerance
		sum := x1.Clone()
		sum.AddScaled(a, x2)
		lhs := MatVec(w, sum)
		rhs := MatVec(w, x1)
		rhs.AddScaled(a, MatVec(w, x2))
		return AllClose(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRot180Known(t *testing.T) {
	k := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	r := Rot180(k)
	want := []float64{6, 5, 4, 3, 2, 1}
	for i, v := range want {
		if r.Data[i] != v {
			t.Fatalf("Rot180 Data[%d]=%v want %v", i, r.Data[i], v)
		}
	}
}
