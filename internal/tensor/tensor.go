// Package tensor provides dense, row-major, float64 n-dimensional tensors.
//
// It is the numeric substrate for the CDL reproduction: the CNN framework
// (internal/nn), the LMS linear classifiers (internal/linclass) and the
// hardware model (internal/hw) all operate on tensor.T values. The package
// is deliberately small — shapes, element access, BLAS-1-style arithmetic,
// and the handful of reshaping operations a convolutional network needs —
// and every operation is bounds-checked in its *Checked variant while the
// hot paths index Data directly.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// T is a dense row-major tensor of float64. The zero value is an empty
// scalar-less tensor; use New or FromSlice to construct a usable one.
//
// Data is laid out contiguously: for shape [d0,d1,...,dk], element
// (i0,i1,...,ik) lives at Data[i0*s0 + i1*s1 + ... + ik] where the strides
// s are the row-major strides of the shape.
type T struct {
	shape   []int
	strides []int
	Data    []float64
}

// New returns a zero-filled tensor with the given shape. It panics if any
// dimension is negative or if the element count overflows int.
func New(shape ...int) *T {
	n := checkedNumel(shape)
	t := &T{
		shape:   append([]int(nil), shape...),
		strides: rowMajorStrides(shape),
		Data:    make([]float64, n),
	}
	return t
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); len(data) must equal the shape's element count.
func FromSlice(data []float64, shape ...int) *T {
	n := checkedNumel(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice data length %d != shape %v numel %d", len(data), shape, n))
	}
	return &T{
		shape:   append([]int(nil), shape...),
		strides: rowMajorStrides(shape),
		Data:    data,
	}
}

// Scalar returns a rank-0-like 1-element tensor holding v.
func Scalar(v float64) *T {
	t := New(1)
	t.Data[0] = v
	return t
}

func checkedNumel(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		if d != 0 && n > math.MaxInt/d {
			panic(fmt.Sprintf("tensor: shape %v overflows", shape))
		}
		n *= d
	}
	return n
}

func rowMajorStrides(shape []int) []int {
	s := make([]int, len(shape))
	acc := 1
	for i := len(shape) - 1; i >= 0; i-- {
		s[i] = acc
		acc *= shape[i]
	}
	return s
}

// Shape returns a copy of the tensor's shape.
func (t *T) Shape() []int { return append([]int(nil), t.shape...) }

// Rank returns the number of dimensions.
func (t *T) Rank() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *T) Dim(i int) int { return t.shape[i] }

// Numel returns the total number of elements.
func (t *T) Numel() int { return len(t.Data) }

// Strides returns a copy of the row-major strides.
func (t *T) Strides() []int { return append([]int(nil), t.strides...) }

// SameShape reports whether t and u have identical shapes.
func (t *T) SameShape(u *T) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i, d := range t.shape {
		if u.shape[i] != d {
			return false
		}
	}
	return true
}

// Offset returns the flat Data index of the given multi-index. It panics on
// rank mismatch or out-of-range indices.
func (t *T) Offset(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d != tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off += ix * t.strides[i]
	}
	return off
}

// At returns the element at the given multi-index.
func (t *T) At(idx ...int) float64 { return t.Data[t.Offset(idx...)] }

// Set stores v at the given multi-index.
func (t *T) Set(v float64, idx ...int) { t.Data[t.Offset(idx...)] = v }

// Clone returns a deep copy of t.
func (t *T) Clone() *T {
	c := &T{
		shape:   append([]int(nil), t.shape...),
		strides: append([]int(nil), t.strides...),
		Data:    append([]float64(nil), t.Data...),
	}
	return c
}

// Reshape returns a new tensor view with the given shape sharing t's data.
// The element count must match. One dimension may be -1, in which case it is
// inferred.
func (t *T) Reshape(shape ...int) *T {
	shape = append([]int(nil), shape...)
	infer := -1
	known := 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: Reshape with more than one -1 dimension")
			}
			infer = i
			continue
		}
		if d < 0 {
			panic(fmt.Sprintf("tensor: Reshape negative dimension in %v", shape))
		}
		known *= d
	}
	if infer >= 0 {
		if known == 0 || t.Numel()%known != 0 {
			panic(fmt.Sprintf("tensor: cannot infer -1 in reshape %v from %d elements", shape, t.Numel()))
		}
		shape[infer] = t.Numel() / known
		known *= shape[infer]
	}
	if known != t.Numel() {
		panic(fmt.Sprintf("tensor: Reshape %v incompatible with %d elements", shape, t.Numel()))
	}
	return &T{shape: shape, strides: rowMajorStrides(shape), Data: t.Data}
}

// Flatten returns a rank-1 view of t sharing its data.
func (t *T) Flatten() *T { return t.Reshape(t.Numel()) }

// Zero sets every element of t to 0.
func (t *T) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element of t to v.
func (t *T) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// CopyFrom copies u's data into t. Shapes must have equal element counts.
func (t *T) CopyFrom(u *T) {
	if len(t.Data) != len(u.Data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %d != %d", len(t.Data), len(u.Data)))
	}
	copy(t.Data, u.Data)
}

// Add accumulates u into t element-wise (t += u). Shapes must match.
func (t *T) Add(u *T) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: Add shape mismatch %v vs %v", t.shape, u.shape))
	}
	for i, v := range u.Data {
		t.Data[i] += v
	}
}

// Sub subtracts u from t element-wise (t -= u). Shapes must match.
func (t *T) Sub(u *T) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: Sub shape mismatch %v vs %v", t.shape, u.shape))
	}
	for i, v := range u.Data {
		t.Data[i] -= v
	}
}

// Mul multiplies t by u element-wise (Hadamard product). Shapes must match.
func (t *T) Mul(u *T) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: Mul shape mismatch %v vs %v", t.shape, u.shape))
	}
	for i, v := range u.Data {
		t.Data[i] *= v
	}
}

// Scale multiplies every element by a.
func (t *T) Scale(a float64) {
	for i := range t.Data {
		t.Data[i] *= a
	}
}

// AddScaled accumulates a*u into t (t += a*u). Shapes must match.
func (t *T) AddScaled(a float64, u *T) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: AddScaled shape mismatch %v vs %v", t.shape, u.shape))
	}
	for i, v := range u.Data {
		t.Data[i] += a * v
	}
}

// Apply replaces every element x with f(x).
func (t *T) Apply(f func(float64) float64) {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
}

// Map returns a new tensor whose elements are f applied to t's elements.
func (t *T) Map(f func(float64) float64) *T {
	c := t.Clone()
	c.Apply(f)
	return c
}

// Sum returns the sum of all elements.
func (t *T) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Dot returns the inner product of t and u viewed as flat vectors.
func (t *T) Dot(u *T) float64 {
	if len(t.Data) != len(u.Data) {
		panic(fmt.Sprintf("tensor: Dot size mismatch %d != %d", len(t.Data), len(u.Data)))
	}
	s := 0.0
	for i, v := range t.Data {
		s += v * u.Data[i]
	}
	return s
}

// Max returns the maximum element and its flat index. It panics on an empty
// tensor.
func (t *T) Max() (float64, int) {
	if len(t.Data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	best, arg := t.Data[0], 0
	for i, v := range t.Data {
		if v > best {
			best, arg = v, i
		}
	}
	return best, arg
}

// Min returns the minimum element and its flat index. It panics on an empty
// tensor.
func (t *T) Min() (float64, int) {
	if len(t.Data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	best, arg := t.Data[0], 0
	for i, v := range t.Data {
		if v < best {
			best, arg = v, i
		}
	}
	return best, arg
}

// ArgMax returns the flat index of the maximum element.
func (t *T) ArgMax() int {
	_, i := t.Max()
	return i
}

// Norm2 returns the Euclidean norm of the flattened tensor.
func (t *T) Norm2() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MeanStd returns the mean and (population) standard deviation of the
// elements. An empty tensor yields (0, 0).
func (t *T) MeanStd() (mean, std float64) {
	n := float64(len(t.Data))
	if n == 0 {
		return 0, 0
	}
	for _, v := range t.Data {
		mean += v
	}
	mean /= n
	for _, v := range t.Data {
		d := v - mean
		std += d * d
	}
	return mean, math.Sqrt(std / n)
}

// Equal reports whether t and u have the same shape and identical elements.
func Equal(t, u *T) bool {
	if !t.SameShape(u) {
		return false
	}
	for i, v := range t.Data {
		if u.Data[i] != v {
			return false
		}
	}
	return true
}

// AllClose reports whether t and u have the same shape and all elements are
// within tol of each other (absolute difference).
func AllClose(t, u *T, tol float64) bool {
	if !t.SameShape(u) {
		return false
	}
	for i, v := range t.Data {
		if math.Abs(u.Data[i]-v) > tol {
			return false
		}
	}
	return true
}

// String renders small tensors fully and larger ones as a summary.
func (t *T) String() string {
	if t.Numel() <= 64 {
		var b strings.Builder
		fmt.Fprintf(&b, "tensor%v", t.shape)
		b.WriteString("[")
		for i, v := range t.Data {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%.4g", v)
		}
		b.WriteString("]")
		return b.String()
	}
	mean, std := t.MeanStd()
	return fmt.Sprintf("tensor%v{numel=%d mean=%.4g std=%.4g}", t.shape, t.Numel(), mean, std)
}
