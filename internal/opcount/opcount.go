// Package opcount implements the operation-accounting model behind the
// paper's efficiency metric: "the average number of operations (or
// computations) per input (OPS)". It supplies the per-stage costs γ_i used
// by Algorithm 1's gain rule (Eq. 1) and the dynamic OPS-per-input numbers
// behind Figs. 5, 9 and 10.
//
// The default weighting counts one operation per multiply-accumulate, per
// pooling comparison, per bias addition and per activation-function
// evaluation. The weights are exported so ablations can, e.g., cost a MAC
// as two operations (multiply + add).
package opcount

import (
	"fmt"

	"cdl/internal/nn"
)

// Model weights each primitive operation class.
type Model struct {
	// MAC is the cost of one multiply-accumulate (default 1).
	MAC float64
	// Add is the cost of one standalone addition, e.g. a bias add
	// (default 1).
	Add float64
	// Compare is the cost of one comparison in a max-pool window
	// (default 1).
	Compare float64
	// Act is the cost of one activation-function evaluation (default 1).
	Act float64
}

// Default returns the paper-style unit-cost model.
func Default() Model { return Model{MAC: 1, Add: 1, Compare: 1, Act: 1} }

// LayerBreakdown itemizes the operations one layer performs on one input.
type LayerBreakdown struct {
	Name                       string
	MACs, Adds, Compares, Acts float64
	InShape, OutShape          []int
}

// Total applies the model's weights to the breakdown.
func (m Model) Total(b LayerBreakdown) float64 {
	return m.MAC*b.MACs + m.Add*b.Adds + m.Compare*b.Compares + m.Act*b.Acts
}

// LayerOps itemizes the operation count of a single layer given its input
// shape.
func LayerOps(l nn.Layer, inShape []int) LayerBreakdown {
	out := l.OutShape(inShape)
	b := LayerBreakdown{
		Name:     l.Name(),
		InShape:  append([]int(nil), inShape...),
		OutShape: out,
	}
	outN := 1
	for _, d := range out {
		outN *= d
	}
	switch t := l.(type) {
	case *nn.Conv2D:
		// one MAC per kernel element per output pixel, one bias add per
		// output pixel
		b.MACs = float64(outN * t.InChannels() * t.KernelSize() * t.KernelSize())
		b.Adds = float64(outN)
	case *nn.Dense:
		b.MACs = float64(t.In() * t.Out())
		b.Adds = float64(t.Out())
	case *nn.MaxPool2D:
		// win²−1 comparisons per output element
		b.Compares = float64(outN * (t.Window()*t.Window() - 1))
	case *nn.MeanPool2D:
		// win²−1 additions plus the divide (counted as one more add)
		b.Adds = float64(outN * t.Window() * t.Window())
	case *nn.Sigmoid, *nn.Tanh, *nn.ReLU:
		b.Acts = float64(outN)
	case *nn.Softmax:
		// exp per element plus normalization
		b.Acts = float64(outN)
		b.Adds = float64(outN)
	case *nn.Flatten:
		// free: a reshape moves no data in this implementation
	case *nn.Dropout:
		// free at inference: the layer is the identity outside training
		// mode, and the OPS metric costs inference passes only
	default:
		panic(fmt.Sprintf("opcount: unknown layer type %T", l))
	}
	return b
}

// NetworkBreakdown itemizes every layer of a network in order.
func NetworkBreakdown(net *nn.Network) []LayerBreakdown {
	shape := append([]int(nil), net.InShape...)
	bs := make([]LayerBreakdown, 0, len(net.Layers))
	for _, l := range net.Layers {
		b := LayerOps(l, shape)
		bs = append(bs, b)
		shape = b.OutShape
	}
	return bs
}

// NetworkOps returns the total weighted op count of a full forward pass —
// the paper's baseline cost γ_base.
func (m Model) NetworkOps(net *nn.Network) float64 {
	total := 0.0
	for _, b := range NetworkBreakdown(net) {
		total += m.Total(b)
	}
	return total
}

// CumulativeOps returns the weighted op count of running the first k
// layers, for every k in 0..len(Layers). CumulativeOps(net)[k] is the cost
// of the feature extraction feeding a linear classifier tapped after layer
// k; the last entry equals NetworkOps.
func (m Model) CumulativeOps(net *nn.Network) []float64 {
	bs := NetworkBreakdown(net)
	cum := make([]float64, len(bs)+1)
	for i, b := range bs {
		cum[i+1] = cum[i] + m.Total(b)
	}
	return cum
}

// LinearClassifierOps returns the cost of one linear-classifier evaluation
// on a feature vector of width in with out classes: in×out MACs, out bias
// adds, out sigmoid evaluations. This is the additional per-stage cost the
// paper's Eq. 1 charges for every admitted output layer.
func (m Model) LinearClassifierOps(in, out int) float64 {
	return m.MAC*float64(in*out) + m.Add*float64(out) + m.Act*float64(out)
}
