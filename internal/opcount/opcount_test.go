package opcount

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cdl/internal/nn"
	"cdl/internal/tensor"
)

func TestConvOps(t *testing.T) {
	c := nn.NewConv2D("C1", 1, 6, 5)
	b := LayerOps(c, []int{1, 28, 28})
	// 6 maps × 24×24 outputs × 1×5×5 MACs
	wantMACs := float64(6 * 24 * 24 * 25)
	if b.MACs != wantMACs {
		t.Errorf("conv MACs = %v, want %v", b.MACs, wantMACs)
	}
	if b.Adds != float64(6*24*24) {
		t.Errorf("conv bias adds = %v", b.Adds)
	}
}

func TestDenseOps(t *testing.T) {
	d := nn.NewDense("FC", 192, 10)
	b := LayerOps(d, []int{192})
	if b.MACs != 1920 || b.Adds != 10 {
		t.Errorf("dense ops = %+v", b)
	}
}

func TestPoolOps(t *testing.T) {
	p := nn.NewMaxPool2D("P1", 2)
	b := LayerOps(p, []int{6, 24, 24})
	// 6×12×12 outputs × 3 compares
	if b.Compares != float64(6*12*12*3) {
		t.Errorf("maxpool compares = %v", b.Compares)
	}
	p1 := nn.NewMaxPool2D("P3", 1)
	b1 := LayerOps(p1, []int{9, 3, 3})
	if b1.Compares != 0 {
		t.Errorf("window-1 pool should cost nothing, got %v", b1.Compares)
	}
	mp := nn.NewMeanPool2D("MP", 2)
	bm := LayerOps(mp, []int{1, 4, 4})
	if bm.Adds != float64(4*4) {
		t.Errorf("meanpool adds = %v", bm.Adds)
	}
}

func TestActivationOps(t *testing.T) {
	s := nn.NewSigmoid("act")
	b := LayerOps(s, []int{6, 24, 24})
	if b.Acts != float64(6*24*24) {
		t.Errorf("sigmoid acts = %v", b.Acts)
	}
	f := nn.NewFlatten("flat")
	bf := LayerOps(f, []int{6, 4, 4})
	if Default().Total(bf) != 0 {
		t.Error("flatten should be free")
	}
}

func TestCumulativeMatchesTotal(t *testing.T) {
	arch := nn.Arch6Layer(rand.New(rand.NewSource(1)))
	m := Default()
	cum := m.CumulativeOps(arch.Net)
	if len(cum) != len(arch.Net.Layers)+1 {
		t.Fatalf("cumulative len %d", len(cum))
	}
	if cum[0] != 0 {
		t.Error("cumulative[0] != 0")
	}
	total := m.NetworkOps(arch.Net)
	if cum[len(cum)-1] != total {
		t.Errorf("cumulative end %v != total %v", cum[len(cum)-1], total)
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Error("cumulative ops must be nondecreasing")
		}
	}
}

func TestPaperArchOpsOrdering(t *testing.T) {
	// Paper §V.A: the 6-layer DLN is *more* complex (more neurons and
	// synapses) than the 8-layer one; our op model must agree because that
	// asymmetry explains MNIST_3C's higher benefit.
	m := Default()
	ops6 := m.NetworkOps(nn.Arch6Layer(rand.New(rand.NewSource(1))).Net)
	ops8 := m.NetworkOps(nn.Arch8Layer(rand.New(rand.NewSource(1))).Net)
	if ops6 <= ops8 {
		t.Errorf("6-layer ops %v should exceed 8-layer ops %v (paper §V.A)", ops6, ops8)
	}
}

func TestLinearClassifierOps(t *testing.T) {
	m := Default()
	got := m.LinearClassifierOps(507, 10)
	want := float64(507*10 + 10 + 10)
	if got != want {
		t.Errorf("LC ops = %v, want %v", got, want)
	}
}

func TestModelWeighting(t *testing.T) {
	m := Model{MAC: 2, Add: 0, Compare: 0, Act: 0}
	d := nn.NewDense("d", 10, 5)
	b := LayerOps(d, []int{10})
	if m.Total(b) != 100 {
		t.Errorf("weighted total = %v, want 100 (50 MACs × 2)", m.Total(b))
	}
}

// Property: op counts are additive — breakdown totals sum to NetworkOps.
func TestQuickAdditivity(t *testing.T) {
	f := func(seed int64) bool {
		arch := nn.ArchTiny(rand.New(rand.NewSource(seed)), 4)
		m := Default()
		sum := 0.0
		for _, b := range NetworkBreakdown(arch.Net) {
			sum += m.Total(b)
		}
		return sum == m.NetworkOps(arch.Net)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestUnknownLayerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown layer type did not panic")
		}
	}()
	LayerOps(fakeLayer{}, []int{1})
}

type fakeLayer struct{}

func (fakeLayer) Name() string                   { return "fake" }
func (fakeLayer) Forward(x *tensor.T) *tensor.T  { return x }
func (fakeLayer) Backward(g *tensor.T) *tensor.T { return g }
func (fakeLayer) OutShape(in []int) []int        { return in }
func (fakeLayer) Params() []*nn.Param            { return nil }
func (fakeLayer) Clone() nn.Layer                { return fakeLayer{} }
