package core

import (
	"strings"
	"testing"

	"cdl/internal/stats"
)

// TestSessionMatchesClassify asserts the session path (reused scratch
// buffers, precomputed exit costs) is bit-identical to CDLN.Classify.
func TestSessionMatchesClassify(t *testing.T) {
	arch, data := trainedArch(t, 11)
	cdln, _, err := Build(arch, data, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(cdln)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range data {
		want := cdln.Classify(s.X)
		got := sess.Classify(s.X)
		if !got.Equal(want) {
			t.Fatalf("sample %d: session %+v != classify %+v", i, got, want)
		}
	}
}

// TestSessionDeltaOverride checks the per-call threshold knob: δ=1 forces
// every input through the full cascade (threshold rule needs score ≥ 1,
// unreachable for a sigmoid), δ<0 restores the trained behaviour.
func TestSessionDeltaOverride(t *testing.T) {
	arch, data := trainedArch(t, 12)
	cdln, _, err := Build(arch, data, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(cdln.Stages) == 0 {
		t.Skip("no stages admitted; override unobservable")
	}
	sess, err := NewSession(cdln)
	if err != nil {
		t.Fatal(err)
	}
	fc := len(cdln.Stages)
	for i, s := range data[:40] {
		if rec := sess.ClassifyDelta(s.X, 1); rec.StageIndex != fc {
			t.Fatalf("sample %d: δ=1 exited early at %s", i, rec.StageName)
		}
		if got, want := sess.ClassifyDelta(s.X, -1), cdln.Classify(s.X); !got.Equal(want) {
			t.Fatalf("sample %d: δ<0 diverges from trained thresholds", i)
		}
	}
}

// TestSessionRepeatable guards the scratch-buffer reuse: classifying the
// same input twice in a row must give the same record.
func TestSessionRepeatable(t *testing.T) {
	arch, data := trainedArch(t, 13)
	cdln, _, err := Build(arch, data, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(cdln)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range data[:20] {
		a := sess.Classify(s.X)
		b := sess.Classify(s.X)
		if !a.Equal(b) {
			t.Fatalf("session not repeatable: %+v then %+v", a, b)
		}
	}
}

// TestNewSessionRejectsInvalid covers the validation path.
func TestNewSessionRejectsInvalid(t *testing.T) {
	if _, err := NewSession(&CDLN{}); err == nil {
		t.Error("session over invalid CDLN accepted")
	}
}

// TestEvalResultStringEmpty guards against +Inf/NaN improvement factors on
// an empty evaluation.
func TestEvalResultStringEmpty(t *testing.T) {
	r := &EvalResult{Confusion: stats.NewConfusion(3)}
	s := r.String()
	for _, bad := range []string{"Inf", "NaN"} {
		if strings.Contains(s, bad) {
			t.Errorf("empty EvalResult.String() contains %q: %s", bad, s)
		}
	}
	if r.Improvement() != 0 {
		t.Errorf("empty Improvement() = %v, want 0", r.Improvement())
	}
}
