package core

// linear_equiv_test.go is the linear-equivalence golden harness for the
// routing-graph refactor: a linear cascade wrapped as the one-node graph
// (LinearGraph) must be byte-identical to the pre-graph execution paths —
// not approximately equal, identical, ExitRecord field for field including
// the per-stage confidence Trace — across the serial walk, the batched
// fast path, and every tier-split stage. The pre-refactor reference is
// CDLN.Classify itself (that code path did not change), so these tests ARE
// the pre-refactor goldens; CI runs them under -race alongside the batch
// differential suite.

import (
	"slices"
	"testing"

	"cdl/internal/tensor"
)

// assertRecordsIdentical is ExitRecord.Equal plus the Trace slice — the
// full byte-identity the linear-equivalence contract promises.
func assertRecordsIdentical(t *testing.T, label string, i int, got, want ExitRecord) {
	t.Helper()
	if !got.Equal(want) {
		t.Fatalf("%s: input %d: record %+v != reference %+v", label, i, got, want)
	}
	if !slices.Equal(got.Trace, want.Trace) {
		t.Fatalf("%s: input %d: trace %v != reference trace %v", label, i, got.Trace, want.Trace)
	}
}

// TestLinearGraphMatchesCDLNClassify pins the serial walk: a session over
// LinearGraph(c) produces exactly the record CDLN.Classify produces — the
// unchanged pre-graph reference path — for every input.
func TestLinearGraphMatchesCDLNClassify(t *testing.T) {
	cdln := batchCDLN(t, 31)
	sess, err := NewGraphSession(LinearGraph(cdln))
	if err != nil {
		t.Fatal(err)
	}
	xs := mixedInputs(120, 5)
	exitsSeen := make(map[int]int)
	for i, x := range xs {
		ref := cdln.Classify(x)
		got := sess.Classify(x)
		assertRecordsIdentical(t, "serial", i, got, ref)
		if got.Node != 0 {
			t.Fatalf("input %d: linear record in node %d", i, got.Node)
		}
		exitsSeen[got.StageIndex]++
	}
	// The sweep must exercise early exits and the FC tail, or the identity
	// is vacuous.
	if exitsSeen[0] == 0 || exitsSeen[len(cdln.Stages)] == 0 {
		t.Fatalf("degenerate exit distribution %v", exitsSeen)
	}
}

// TestLinearGraphBatchMatchesSerial pins the batched fast path on the
// one-node graph, with Trace enabled so the per-stage confidences are part
// of the identity: every batch size, batched record == single-input record.
func TestLinearGraphBatchMatchesSerial(t *testing.T) {
	cdln := batchCDLN(t, 32)
	sess, err := NewGraphSession(LinearGraph(cdln))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewGraphSession(LinearGraph(cdln))
	if err != nil {
		t.Fatal(err)
	}
	pol := DefaultExitPolicy()
	pol.Trace = true
	for _, bsz := range []int{1, 2, 7, 16, 33} {
		xs := mixedInputs(bsz, int64(200+bsz))
		recs := sess.ClassifyBatchPolicy(xs, pol)
		for i, x := range xs {
			want := ref.ClassifyBatchPolicy([]*tensor.T{x}, pol)[0]
			assertRecordsIdentical(t, "batch-trace", i, recs[i], want)
			if len(want.Trace) == 0 {
				t.Fatalf("input %d: policy trace empty", i)
			}
			// The non-trace fields must also equal the serial walk.
			serial := ref.Classify(x)
			if !recs[i].Equal(serial) {
				t.Fatalf("input %d: batch record %+v != serial %+v", i, recs[i], serial)
			}
		}
	}
}

// TestLinearGraphSplitEquivalence pins the tier-split identity on the
// one-node graph at every split stage: prefix+resume — serial and batched —
// equals the monolithic classification exactly.
func TestLinearGraphSplitEquivalence(t *testing.T) {
	cdln := batchCDLN(t, 33)
	sess, err := NewGraphSession(LinearGraph(cdln))
	if err != nil {
		t.Fatal(err)
	}
	cloud, err := NewGraphSession(LinearGraph(cdln))
	if err != nil {
		t.Fatal(err)
	}
	xs := mixedInputs(48, 9)
	for split := 0; split <= len(cdln.Stages); split++ {
		// Serial: ClassifyPrefix + ResumeAt.
		for i, x := range xs {
			want := sess.Classify(x)
			pre := sess.ClassifyPrefix(x, split, -1)
			got := pre.Record
			if !pre.Exited {
				if pre.Node != 0 || pre.FromStage != split {
					t.Fatalf("split %d input %d: linear handoff at (node %d, stage %d)", split, i, pre.Node, pre.FromStage)
				}
				got = cloud.ResumeAt(pre.Activation, pre.Node, pre.FromStage, -1)
			}
			assertRecordsIdentical(t, "split-serial", i, got, want)
		}
		// Batched: ClassifyPrefixBatch + ResumeBatch.
		wantRecs := sess.ClassifyBatch(xs, -1)
		pres := sess.ClassifyPrefixBatch(xs, split, -1)
		var deferredX []*tensor.T
		var deferredIdx []int
		for i, pre := range pres {
			if pre.Exited {
				assertRecordsIdentical(t, "split-batch-local", i, pre.Record, wantRecs[i])
				continue
			}
			deferredX = append(deferredX, pre.Activation)
			deferredIdx = append(deferredIdx, i)
		}
		if len(deferredX) > 0 {
			resumed := cloud.ResumeBatch(deferredX, split, -1)
			for j, i := range deferredIdx {
				assertRecordsIdentical(t, "split-batch-resumed", i, resumed[j], wantRecs[i])
			}
		}
	}
}
