package core

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"cdl/internal/stats"
	"cdl/internal/train"
)

// EvalResult aggregates a CDLN evaluation over a labelled dataset: overall
// and per-class accuracy, the exit distribution, and dynamic OPS — the raw
// material for the paper's Figs. 5, 8, 9, 10 and Table III.
type EvalResult struct {
	// Confusion is the prediction matrix over the dataset.
	Confusion *stats.Confusion
	// ExitCounts[e][c] counts class-c inputs exiting at exit point e
	// (stage index semantics; the last row is FC).
	ExitCounts [][]int
	// ExitNames labels the exit points.
	ExitNames []string
	// TotalOps is the summed dynamic op count over the dataset.
	TotalOps float64
	// ClassOps[c] is the summed dynamic op count over class-c inputs.
	ClassOps []float64
	// BaselineOps is γ_base for normalization.
	BaselineOps float64
	// Records holds the per-sample exit records in dataset order (only if
	// KeepRecords was set).
	Records []ExitRecord
}

// Evaluate classifies every sample with Algorithm 2, fanning out across
// goroutine-local CDLN replicas. keepRecords retains per-sample exit
// records (needed by the Table IV gallery).
func Evaluate(c *CDLN, data []train.Sample, workers int, keepRecords bool) (*EvalResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	classes := c.Arch.NumClasses
	exits := c.NumExits()
	res := &EvalResult{
		Confusion:   stats.NewConfusion(classes),
		ExitCounts:  make([][]int, exits),
		ExitNames:   make([]string, exits),
		ClassOps:    make([]float64, classes),
		BaselineOps: c.BaselineOps(),
	}
	for e := 0; e < exits; e++ {
		res.ExitCounts[e] = make([]int, classes)
		res.ExitNames[e] = c.ExitName(e)
	}
	if len(data) == 0 {
		return res, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(data) {
		workers = len(data)
	}

	records := make([]ExitRecord, len(data))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := newGraphSession(LinearGraph(c.Clone()))
			for i := w; i < len(data); i += workers {
				records[i] = sess.Classify(data[i].X)
			}
		}(w)
	}
	wg.Wait()

	for i, rec := range records {
		label := data[i].Label
		res.Confusion.Add(label, rec.Label)
		res.ExitCounts[rec.StageIndex][label]++
		res.TotalOps += rec.Ops
		res.ClassOps[label] += rec.Ops
	}
	if keepRecords {
		res.Records = records
	}
	return res, nil
}

// MeanOps returns the average dynamic op count per input.
func (r *EvalResult) MeanOps() float64 {
	n := r.Confusion.Total()
	if n == 0 {
		return 0
	}
	return r.TotalOps / float64(n)
}

// NormalizedOps returns mean dynamic ops divided by γ_base — the paper's
// "normalized OPS" (Figs. 5, 9, 10; lower is better, 1.0 is the baseline).
func (r *EvalResult) NormalizedOps() float64 {
	if r.BaselineOps == 0 {
		return 0
	}
	return r.MeanOps() / r.BaselineOps
}

// ClassNormalizedOps returns the per-class normalized OPS (Fig. 5's bars).
func (r *EvalResult) ClassNormalizedOps(class int) float64 {
	n := r.Confusion.ClassCount(class)
	if n == 0 || r.BaselineOps == 0 {
		return 0
	}
	return r.ClassOps[class] / float64(n) / r.BaselineOps
}

// ClassImprovement returns the per-class OPS improvement factor
// (baseline/CDLN, the "1.46x–2.32x" numbers of §V.A).
func (r *EvalResult) ClassImprovement(class int) float64 {
	n := r.ClassNormalizedOps(class)
	if n == 0 {
		return 0
	}
	return 1 / n
}

// ExitFraction returns the fraction of class-c inputs leaving at exit e;
// class -1 aggregates all classes. Fig. 8's "FC is activated for only 1% of
// digit 1" numbers come from here.
func (r *EvalResult) ExitFraction(e, class int) float64 {
	if class >= 0 {
		n := r.Confusion.ClassCount(class)
		if n == 0 {
			return 0
		}
		return float64(r.ExitCounts[e][class]) / float64(n)
	}
	total := r.Confusion.Total()
	if total == 0 {
		return 0
	}
	sum := 0
	for _, v := range r.ExitCounts[e] {
		sum += v
	}
	return float64(sum) / float64(total)
}

// Improvement returns the overall OPS improvement factor (baseline/CDLN),
// or 0 when the evaluation is empty or has no baseline to normalize by.
func (r *EvalResult) Improvement() float64 {
	n := r.NormalizedOps()
	if n == 0 {
		return 0
	}
	return 1 / n
}

// String renders the headline numbers.
func (r *EvalResult) String() string {
	var b strings.Builder
	if n := r.NormalizedOps(); n > 0 {
		fmt.Fprintf(&b, "accuracy %.4f, normalized OPS %.3f (%.2fx improvement)\n",
			r.Confusion.Accuracy(), n, r.Improvement())
	} else {
		fmt.Fprintf(&b, "accuracy %.4f, normalized OPS n/a (empty evaluation)\n",
			r.Confusion.Accuracy())
	}
	for e, name := range r.ExitNames {
		fmt.Fprintf(&b, "  exit %-4s %.1f%%\n", name, 100*r.ExitFraction(e, -1))
	}
	return b.String()
}
