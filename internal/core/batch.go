package core

// batch.go is the batched fast path for Algorithm 2: ClassifyBatch (and its
// tier-split relatives ResumeBatch and ClassifyPrefixBatch) run the cascade
// over a whole micro-batch at once. Between taps the baseline advances with
// nn's batched GEMM pipeline (one im2col+GEMM per conv layer for every
// still-active sample), each stage's classifier scores the whole batch in
// one call, the δ exit rule is applied per sample, and survivors are
// compacted to the front of the activation buffer so exited samples stop
// paying for deeper layers — the batch equivalent of Algorithm 2's "deeper
// layers of a terminated input are never executed".
//
// Every per-sample float is produced by the same operations in the same
// order as the reference path (see nn/gemm.go and linclass.ScoresBatchInto
// for the order pins), so for each input the batched ExitRecord — exit
// stage, label, confidence, op count — equals the per-sample Classify
// result exactly. The differential harness in batch_test.go enforces this
// across randomized batches; DESIGN.md §2 documents the 1e-9 contract the
// harness over-delivers on.

import (
	"fmt"

	"cdl/internal/tensor"
)

// ClassifyBatch runs Algorithm 2 over a micro-batch in one batched pass.
// delta ≥ 0 overrides the model's trained thresholds for every input
// (ClassifyDelta semantics); negative keeps them. Records are in input
// order, each identical to what Classify/ClassifyDelta returns for that
// input alone. Inputs must match the model's input shape (the layers panic
// on a mismatch, as in Classify).
func (s *Session) ClassifyBatch(xs []*tensor.T, delta float64) []ExitRecord {
	return s.ResumeBatchPolicy(xs, 0, deltaPolicy(delta))
}

// ClassifyBatchPolicy is ClassifyBatch under a full ExitPolicy: per-stage
// thresholds, depth cap and trace detail (see ExitPolicy). With the
// identity policy it is exactly ClassifyBatch with the trained thresholds.
func (s *Session) ClassifyBatchPolicy(xs []*tensor.T, pol ExitPolicy) []ExitRecord {
	return s.ResumeBatchPolicy(xs, 0, pol)
}

// ResumeBatch continues Algorithm 2 past a tier split for a whole batch of
// deferred activations: each act sits after CDLN.SplitPos(fromStage)
// baseline layers, and stages [fromStage, len(Stages)) plus the FC tail run
// here. ResumeBatch(xs, 0, delta) is exactly ClassifyBatch(xs, delta); each
// record equals the per-sample Resume result. Like Resume, it panics when
// an activation's shape does not match the model at the split position —
// network-facing callers validate first with CDLN.ValidateResume.
func (s *Session) ResumeBatch(acts []*tensor.T, fromStage int, delta float64) []ExitRecord {
	return s.ResumeBatchPolicy(acts, fromStage, deltaPolicy(delta))
}

// ResumeBatchPolicy is ResumeBatch under a full ExitPolicy — the one
// cascade entry point behind every serving path. A policy whose only
// active field is Delta performs the identical floating-point operations
// in the identical order as the legacy δ-override path, so policy-aware
// dispatch keeps the /v1 surface bit-identical. A MaxExit cap below the
// resume stage cannot be satisfied (those stages already ran on the other
// tier) and panics; network-facing callers validate with ValidatePolicy
// plus an explicit fromStage ≤ MaxExit check first.
func (s *Session) ResumeBatchPolicy(acts []*tensor.T, fromStage int, pol ExitPolicy) []ExitRecord {
	c := s.model
	pos := c.SplitPos(fromStage) // validates fromStage
	if pol.StageDeltas != nil && len(pol.StageDeltas) != len(c.Stages) {
		panic(fmt.Sprintf("core: policy has %d stage deltas for %d stages", len(pol.StageDeltas), len(c.Stages)))
	}
	maxExit := c.maxExit(pol)
	if maxExit < fromStage {
		panic(fmt.Sprintf("core: policy max exit %d precedes resume stage %d", maxExit, fromStage))
	}
	if len(acts) == 0 {
		return nil
	}
	for i, a := range acts {
		if err := c.ValidateResume(fromStage, pos, a.Shape()); err != nil {
			panic(fmt.Sprintf("core: ResumeBatch activation %d: %v", i, err))
		}
	}
	recs := make([]ExitRecord, len(acts))
	act, idx := s.stackBatch(acts, pos)
	act, pos, idx = s.runStagesBatch(act, pos, fromStage, maxExit, pol, idx, recs)
	if maxExit == len(c.Stages) {
		s.finalExitBatch(act, pos, idx, recs, pol.Trace)
	} else {
		s.forcedExitBatch(act, pos, maxExit, idx, recs, pol.Trace)
	}
	return recs
}

// ClassifyPrefixBatch runs the first splitStage cascade stages over a batch
// — the edge tier's share of Algorithm 2 — returning one PrefixResult per
// input in input order, each matching the per-sample ClassifyPrefix result.
// Unlike ClassifyPrefix, a deferred result's Activation is a private copy
// (survivor compaction reuses the batch buffers), so callers may hold all
// of a batch's activations at once without serializing between samples.
func (s *Session) ClassifyPrefixBatch(xs []*tensor.T, splitStage int, delta float64) []PrefixResult {
	return s.ClassifyPrefixBatchPolicy(xs, splitStage, deltaPolicy(delta))
}

// ClassifyPrefixBatchPolicy is ClassifyPrefixBatch under a full
// ExitPolicy. A depth cap at or below the split stage resolves the whole
// batch locally (every PrefixResult is Exited — nothing left to offload):
// survivors of the conditional stages are forced out at the cap exactly
// as ResumeBatchPolicy would, which is how an edge node sheds its offload
// traffic under an SLO controller without touching the cloud tier.
func (s *Session) ClassifyPrefixBatchPolicy(xs []*tensor.T, splitStage int, pol ExitPolicy) []PrefixResult {
	c := s.model
	c.SplitPos(splitStage) // validates splitStage
	if pol.StageDeltas != nil && len(pol.StageDeltas) != len(c.Stages) {
		panic(fmt.Sprintf("core: policy has %d stage deltas for %d stages", len(pol.StageDeltas), len(c.Stages)))
	}
	if len(xs) == 0 {
		return nil
	}
	to, forcedAt := splitStage, -1
	if maxExit := c.maxExit(pol); maxExit < splitStage {
		to, forcedAt = maxExit, maxExit
	}
	recs := make([]ExitRecord, len(xs))
	act, idx := s.stackBatch(xs, 0)
	act, pos, idx := s.runStagesBatch(act, 0, 0, to, pol, idx, recs)
	if forcedAt >= 0 {
		s.forcedExitBatch(act, pos, forcedAt, idx, recs, pol.Trace)
		idx = idx[:0]
	}
	exited := make([]bool, len(xs))
	for i := range exited {
		exited[i] = true
	}
	for _, orig := range idx {
		exited[orig] = false
	}
	results := make([]PrefixResult, len(xs))
	for i := range xs {
		if exited[i] {
			results[i] = PrefixResult{Record: recs[i], Exited: true}
		}
	}
	if len(idx) > 0 {
		sshape := act.Shape()[1:]
		ssz := act.Numel() / len(idx)
		for r, orig := range idx {
			private := tensor.New(sshape...)
			copy(private.Data, act.Data[r*ssz:(r+1)*ssz])
			results[orig] = PrefixResult{Activation: private, Pos: pos}
		}
	}
	return results
}

// stackBatch copies the per-sample activations into one contiguous batched
// tensor [B, ...] and returns it with the identity row→input index map.
func (s *Session) stackBatch(xs []*tensor.T, pos int) (*tensor.T, []int) {
	sshape := s.model.Arch.Net.ShapeAt(pos)
	ssz := 1
	for _, d := range sshape {
		ssz *= d
	}
	act := tensor.New(append([]int{len(xs)}, sshape...)...)
	for i, x := range xs {
		if x.Numel() != ssz {
			panic(fmt.Sprintf("core: batch input %d numel %d, want %d (shape %v)", i, x.Numel(), ssz, sshape))
		}
		copy(act.Data[i*ssz:(i+1)*ssz], x.Data)
	}
	if cap(s.bidx) < len(xs) {
		s.bidx = make([]int, len(xs))
	}
	idx := s.bidx[:len(xs)]
	for i := range idx {
		idx[i] = i
	}
	return act, idx
}

// runStagesBatch evaluates cascade stages [from, to) over the active rows
// of act (position pos in the baseline), writing an ExitRecord into
// recs[idx[r]] for every row whose activation module fires and compacting
// the survivors in place. It returns the surviving rows' activation, the
// baseline position reached, and the surviving index map — the batch
// counterpart of runStages, applying the same per-stage δ resolution
// (CDLN.stageDelta over the policy) and the same exit rule to each
// sample's scores. With pol.Trace it also appends each evaluated stage's
// winning confidence to the sample's record.
func (s *Session) runStagesBatch(act *tensor.T, pos, from, to int, pol ExitPolicy, idx []int, recs []ExitRecord) (*tensor.T, int, []int) {
	c := s.model
	for i := from; i < to && len(idx) > 0; i++ {
		st := c.Stages[i]
		act = c.Arch.Net.ForwardBatchRange(act, pos, st.Tap)
		pos = st.Tap
		nAct := len(idx)
		ssz := act.Numel() / nAct
		feat := act.Reshape(nAct, ssz)
		if cap(s.bscores) < nAct*st.LC.Out {
			s.bscores = make([]float64, nAct*st.LC.Out)
		}
		scores := tensor.FromSlice(s.bscores[:nAct*st.LC.Out], nAct, st.LC.Out)
		st.LC.ScoresBatchInto(feat, scores)
		d := c.stageDelta(i, pol)
		row := s.scores[i] // per-stage scratch, same buffer the serial path uses
		w := 0
		for r := 0; r < nAct; r++ {
			copy(row.Data, scores.Data[r*st.LC.Out:(r+1)*st.LC.Out])
			orig := idx[r]
			if pol.Trace {
				conf, _ := row.Max()
				recs[orig].Trace = append(recs[orig].Trace, conf)
			}
			if c.Rule.ShouldExit(row, d) {
				conf, label := row.Max()
				recs[orig] = ExitRecord{
					StageIndex: i,
					StageName:  st.Name,
					Label:      label,
					Confidence: conf,
					Ops:        s.exitOps[i],
					Trace:      recs[orig].Trace,
				}
				continue
			}
			if w != r {
				copy(act.Data[w*ssz:(w+1)*ssz], act.Data[r*ssz:(r+1)*ssz])
			}
			idx[w] = orig
			w++
		}
		idx = idx[:w]
		if w < nAct {
			sshape := c.Arch.Net.ShapeAt(pos)
			act = tensor.FromSlice(act.Data[:w*ssz], append([]int{w}, sshape...)...)
		}
	}
	return act, pos, idx
}

// finalExitBatch runs the remaining baseline layers for the surviving rows
// and records their unconditional FC exits — the batch counterpart of
// finalExit.
func (s *Session) finalExitBatch(act *tensor.T, pos int, idx []int, recs []ExitRecord, trace bool) {
	if len(idx) == 0 {
		return
	}
	c := s.model
	act = c.Arch.Net.ForwardBatchRange(act, pos, len(c.Arch.Net.Layers))
	osz := act.Numel() / len(idx)
	for r, orig := range idx {
		row := tensor.FromSlice(act.Data[r*osz:(r+1)*osz], osz)
		conf, label := row.Max()
		rec := ExitRecord{
			StageIndex: len(c.Stages),
			StageName:  "FC",
			Label:      label,
			Confidence: conf,
			Ops:        s.exitOps[len(c.Stages)],
		}
		if trace {
			rec.Trace = append(recs[orig].Trace, conf)
		}
		recs[orig] = rec
	}
}

// forcedExitBatch terminates the surviving rows unconditionally at cascade
// stage `stage` — the ExitPolicy.MaxExit depth cap. The baseline advances
// only to the stage's tap and the stage classifier's verdict is taken
// whatever its confidence, so the per-exit ops accounting (exitOps[stage])
// stays exact: stages 0..stage−1 were evaluated conditionally, stage's LC
// unconditionally, deeper layers never ran.
func (s *Session) forcedExitBatch(act *tensor.T, pos, stage int, idx []int, recs []ExitRecord, trace bool) {
	if len(idx) == 0 {
		return
	}
	c := s.model
	st := c.Stages[stage]
	act = c.Arch.Net.ForwardBatchRange(act, pos, st.Tap)
	nAct := len(idx)
	ssz := act.Numel() / nAct
	feat := act.Reshape(nAct, ssz)
	if cap(s.bscores) < nAct*st.LC.Out {
		s.bscores = make([]float64, nAct*st.LC.Out)
	}
	scores := tensor.FromSlice(s.bscores[:nAct*st.LC.Out], nAct, st.LC.Out)
	st.LC.ScoresBatchInto(feat, scores)
	row := s.scores[stage]
	for r, orig := range idx {
		copy(row.Data, scores.Data[r*st.LC.Out:(r+1)*st.LC.Out])
		conf, label := row.Max()
		rec := ExitRecord{
			StageIndex: stage,
			StageName:  st.Name,
			Label:      label,
			Confidence: conf,
			Ops:        s.exitOps[stage],
		}
		if trace {
			rec.Trace = append(recs[orig].Trace, conf)
		}
		recs[orig] = rec
	}
}
