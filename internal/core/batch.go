package core

// batch.go is the batched fast path for Algorithm 2 over a routing graph:
// ClassifyBatch (and its tier-split relatives ResumeBatch and
// ClassifyPrefixBatch) run the cascade over a whole micro-batch at once.
// Between taps the baseline advances with nn's batched GEMM pipeline (one
// im2col+GEMM per conv layer for every still-active sample), each stage's
// classifier scores the whole batch in one call, the δ exit rule is
// applied per sample, and survivors are compacted to the front of the
// activation buffer so exited samples stop paying for deeper layers — the
// batch equivalent of Algorithm 2's "deeper layers of a terminated input
// are never executed".
//
// Routing generalizes the compaction three-ways: a row either exits
// (record written), continues on the current node (compacted forward), or
// is handed to a branch node (gathered into a fresh per-branch batch,
// queued behind the current node's walk). A node with no routes performs
// the identical two-way loop the linear cascade always ran, and every
// per-sample float is produced by the same operations in the same order
// as the reference path (see nn/gemm.go and linclass.ScoresBatchInto for
// the order pins), so for each input the batched ExitRecord — exit stage,
// label, confidence, op count — equals the per-sample Classify result
// exactly. The differential harnesses in batch_test.go and
// linear_equiv_test.go enforce this across randomized batches; DESIGN.md
// §2 documents the 1e-9 contract the harness over-delivers on.

import (
	"fmt"
	"time"

	"cdl/internal/tensor"
)

// batchGroup is one node's share of an in-flight batch: the stacked
// activations of the rows currently walking that node, their position in
// the node's baseline, the stage to continue from, and the row→input
// index map.
type batchGroup struct {
	node, from, pos int
	act             *tensor.T
	idx             []int
}

// ClassifyBatch runs Algorithm 2 over a micro-batch in one batched pass.
// delta ≥ 0 overrides the model's trained thresholds for every input
// (ClassifyDelta semantics); negative keeps them. Records are in input
// order, each identical to what Classify/ClassifyDelta returns for that
// input alone. Inputs must match the model's input shape (the layers panic
// on a mismatch, as in Classify).
func (s *Session) ClassifyBatch(xs []*tensor.T, delta float64) []ExitRecord {
	return s.ResumeBatchPolicy(xs, 0, deltaPolicy(delta))
}

// ClassifyBatchPolicy is ClassifyBatch under a full ExitPolicy: per-stage
// thresholds, depth cap and trace detail (see ExitPolicy). With the
// identity policy it is exactly ClassifyBatch with the trained thresholds.
func (s *Session) ClassifyBatchPolicy(xs []*tensor.T, pol ExitPolicy) []ExitRecord {
	return s.ResumeBatchPolicy(xs, 0, pol)
}

// ResumeBatch continues Algorithm 2 past a tier split for a whole batch of
// deferred activations: each act sits after CDLN.SplitPos(fromStage)
// baseline layers of the trunk, and the remaining cascade — trunk stages,
// routed branches, FC tails — runs here. ResumeBatch(xs, 0, delta) is
// exactly ClassifyBatch(xs, delta); each record equals the per-sample
// Resume result. Like Resume, it panics when an activation's shape does
// not match the model at the split position — network-facing callers
// validate first with CDLN.ValidateResume.
func (s *Session) ResumeBatch(acts []*tensor.T, fromStage int, delta float64) []ExitRecord {
	return s.ResumeBatchPolicy(acts, fromStage, deltaPolicy(delta))
}

// ResumeBatchPolicy is ResumeBatch under a full ExitPolicy — the trunk
// special case of ResumeBatchPolicyAt, and the historical one cascade
// entry point behind every serving path.
func (s *Session) ResumeBatchPolicy(acts []*tensor.T, fromStage int, pol ExitPolicy) []ExitRecord {
	return s.ResumeBatchPolicyAt(acts, 0, fromStage, pol)
}

// ResumeBatchPolicyAt continues Algorithm 2 past a tier split at any graph
// node for a whole batch of deferred activations: each act sits after
// Graph.SplitPosOf(node, fromStage) baseline layers of the node's cascade
// (a branch-entry handoff is (node, 0)). A policy whose only active field
// is Delta performs the identical floating-point operations in the
// identical order as the legacy δ-override path, so policy-aware dispatch
// keeps the /v1 surface bit-identical. A MaxExit depth cap below the
// resume point's path depth cannot be satisfied (those exit points already
// ran on the other tier) and panics; network-facing callers validate with
// ValidatePolicy plus an explicit depth check first.
func (s *Session) ResumeBatchPolicyAt(acts []*tensor.T, node, fromStage int, pol ExitPolicy) []ExitRecord {
	g := s.graph
	if node < 0 || node >= len(g.Nodes) {
		panic(fmt.Sprintf("core: ResumeBatch node %d outside [0,%d)", node, len(g.Nodes)))
	}
	c := g.Nodes[node].Model
	pos := c.SplitPos(fromStage) // validates fromStage
	if pol.StageDeltas != nil && len(pol.StageDeltas) != len(s.model.Stages) {
		panic(fmt.Sprintf("core: policy has %d stage deltas for %d stages", len(pol.StageDeltas), len(s.model.Stages)))
	}
	capG := g.maxExit(pol)
	if depth := g.EntryDepth(node) + fromStage; capG < depth {
		panic(fmt.Sprintf("core: policy max exit %d precedes resume depth %d", capG, depth))
	}
	if len(acts) == 0 {
		return nil
	}
	for i, a := range acts {
		if err := g.ValidateResume(node, fromStage, pos, a.Shape()); err != nil {
			panic(fmt.Sprintf("core: ResumeBatch activation %d: %v", i, err))
		}
	}
	recs := make([]ExitRecord, len(acts))
	act, idx := s.stackBatchAt(node, acts, pos)
	queue := []batchGroup{{node: node, from: fromStage, pos: pos, act: act, idx: idx}}
	for len(queue) > 0 {
		grp := queue[0]
		queue = queue[1:]
		s.runGroup(grp, capG, pol, recs, &queue)
	}
	return recs
}

// runGroup walks one node's rows to completion: conditional stages up to
// the node's share of the path-depth cap, then the FC tail or the forced
// exit at the cap. Rows routed off the node are appended to the queue.
func (s *Session) runGroup(grp batchGroup, capG int, pol ExitPolicy, recs []ExitRecord, queue *[]batchGroup) {
	nStages := len(s.graph.Nodes[grp.node].Model.Stages)
	localTo := capG - s.graph.EntryDepth(grp.node)
	if localTo > nStages {
		localTo = nStages
	}
	act, pos, idx := s.runStagesBatch(grp.node, grp.act, grp.pos, grp.from, localTo, pol, grp.idx, recs, queue)
	if localTo == nStages {
		s.finalExitBatch(grp.node, act, pos, idx, recs, pol.Trace)
	} else {
		s.forcedExitBatch(grp.node, act, pos, localTo, idx, recs, pol.Trace)
	}
}

// ClassifyPrefixBatch runs the first splitStage trunk cascade stages over a
// batch — the edge tier's share of Algorithm 2 — returning one
// PrefixResult per input in input order, each matching the per-sample
// ClassifyPrefix result. Unlike ClassifyPrefix, a deferred result's
// Activation is a private copy (survivor compaction reuses the batch
// buffers), so callers may hold all of a batch's activations at once
// without serializing between samples.
func (s *Session) ClassifyPrefixBatch(xs []*tensor.T, splitStage int, delta float64) []PrefixResult {
	return s.ClassifyPrefixBatchPolicy(xs, splitStage, deltaPolicy(delta))
}

// ClassifyPrefixBatchPolicy is ClassifyPrefixBatch under a full
// ExitPolicy. A depth cap at or below the split stage resolves the
// unrouted share of the batch locally (those PrefixResults are Exited —
// nothing left to offload): survivors of the conditional stages are forced
// out at the cap exactly as ResumeBatchPolicy would, which is how an edge
// node sheds its offload traffic under an SLO controller without touching
// the cloud tier. Rows a trunk route dispatches to a branch always defer
// — the edge owns only the trunk prefix, and the branch's share of the
// cap is the cloud's to enforce — so prefix+resume stays bit-identical to
// the monolithic walk under every policy.
func (s *Session) ClassifyPrefixBatchPolicy(xs []*tensor.T, splitStage int, pol ExitPolicy) []PrefixResult {
	c := s.model
	c.SplitPos(splitStage) // validates splitStage
	if pol.StageDeltas != nil && len(pol.StageDeltas) != len(c.Stages) {
		panic(fmt.Sprintf("core: policy has %d stage deltas for %d stages", len(pol.StageDeltas), len(c.Stages)))
	}
	if len(xs) == 0 {
		return nil
	}
	to, forcedAt := splitStage, -1
	if capG := s.graph.maxExit(pol); capG < splitStage {
		to, forcedAt = capG, capG
	}
	recs := make([]ExitRecord, len(xs))
	act, idx := s.stackBatchAt(0, xs, 0)
	var routed []batchGroup
	act, pos, idx := s.runStagesBatch(0, act, 0, 0, to, pol, idx, recs, &routed)
	if forcedAt >= 0 {
		s.forcedExitBatch(0, act, pos, forcedAt, idx, recs, pol.Trace)
		idx = idx[:0]
	}
	exited := make([]bool, len(xs))
	for i := range exited {
		exited[i] = true
	}
	for _, orig := range idx {
		exited[orig] = false
	}
	for _, grp := range routed {
		for _, orig := range grp.idx {
			exited[orig] = false
		}
	}
	results := make([]PrefixResult, len(xs))
	for i := range xs {
		if exited[i] {
			results[i] = PrefixResult{Record: recs[i], Exited: true}
		}
	}
	if len(idx) > 0 {
		sshape := act.Shape()[1:]
		ssz := act.Numel() / len(idx)
		for r, orig := range idx {
			private := tensor.New(sshape...)
			copy(private.Data, act.Data[r*ssz:(r+1)*ssz])
			results[orig] = PrefixResult{Activation: private, Node: 0, FromStage: splitStage, Pos: pos}
		}
	}
	for _, grp := range routed {
		// Routed rows were gathered into fresh buffers, so disjoint views
		// are already private.
		sshape := grp.act.Shape()[1:]
		ssz := grp.act.Numel() / len(grp.idx)
		for r, orig := range grp.idx {
			view := tensor.FromSlice(grp.act.Data[r*ssz:(r+1)*ssz], sshape...)
			results[orig] = PrefixResult{Activation: view, Node: grp.node, FromStage: 0, Pos: 0}
		}
	}
	return results
}

// stackBatchAt copies the per-sample activations into one contiguous
// batched tensor [B, ...] shaped for position pos of the node's baseline,
// and returns it with the identity row→input index map.
func (s *Session) stackBatchAt(node int, xs []*tensor.T, pos int) (*tensor.T, []int) {
	sshape := s.graph.Nodes[node].Model.Arch.Net.ShapeAt(pos)
	ssz := 1
	for _, d := range sshape {
		ssz *= d
	}
	act := tensor.New(append([]int{len(xs)}, sshape...)...)
	for i, x := range xs {
		if x.Numel() != ssz {
			panic(fmt.Sprintf("core: batch input %d numel %d, want %d (shape %v)", i, x.Numel(), ssz, sshape))
		}
		copy(act.Data[i*ssz:(i+1)*ssz], x.Data)
	}
	if cap(s.bidx) < len(xs) {
		s.bidx = make([]int, len(xs))
	}
	idx := s.bidx[:len(xs)]
	for i := range idx {
		idx[i] = i
	}
	return act, idx
}

// runStagesBatch evaluates a node's cascade stages [from, to) over the
// active rows of act (position pos in the node's baseline), writing an
// ExitRecord into recs[idx[r]] for every row whose activation module
// fires, gathering rows a route dispatches into per-branch groups
// appended to routed, and compacting the remaining survivors in place. It
// returns the surviving rows' activation, the baseline position reached,
// and the surviving index map — the batch counterpart of the serial
// classifyFrom walk, applying the same per-stage δ resolution
// (Session.stageDeltaAt over the policy) and the same exit rule to each
// sample's scores. With pol.Trace it also appends each evaluated stage's
// winning confidence to the sample's record; a routed sample's trace
// keeps accumulating in its branch group.
func (s *Session) runStagesBatch(node int, act *tensor.T, pos, from, to int, pol ExitPolicy, idx []int, recs []ExitRecord, routed *[]batchGroup) (*tensor.T, int, []int) {
	c := s.graph.Nodes[node].Model
	for i := from; i < to && len(idx) > 0; i++ {
		var evStart time.Time
		var evRows []int
		if s.observer != nil {
			// Copy before the row loop: compaction rewrites idx in place.
			evStart = time.Now()
			evRows = append([]int(nil), idx...)
		}
		st := c.Stages[i]
		act = c.Arch.Net.ForwardBatchRange(act, pos, st.Tap)
		pos = st.Tap
		nAct := len(idx)
		ssz := act.Numel() / nAct
		feat := act.Reshape(nAct, ssz)
		if cap(s.bscores) < nAct*st.LC.Out {
			s.bscores = make([]float64, nAct*st.LC.Out)
		}
		scores := tensor.FromSlice(s.bscores[:nAct*st.LC.Out], nAct, st.LC.Out)
		st.LC.ScoresBatchInto(feat, scores)
		d := s.stageDeltaAt(node, i, pol)
		route := s.graph.routeFor(node, i)
		// Per-branch gathers for this stage's routed rows: rows with the
		// same target accumulate into one fresh buffer, flushed into routed
		// as a batchGroup once the stage's row loop completes.
		type pending struct {
			node int
			data []float64
			idx  []int
		}
		var hand []pending
		row := s.scores[node][i] // per-stage scratch, same buffer the serial path uses
		w := 0
		for r := 0; r < nAct; r++ {
			copy(row.Data, scores.Data[r*st.LC.Out:(r+1)*st.LC.Out])
			orig := idx[r]
			if pol.Trace {
				conf, _ := row.Max()
				recs[orig].Trace = append(recs[orig].Trace, conf)
			}
			if c.Rule.ShouldExit(row, d) {
				conf, label := row.Max()
				gi := s.graph.ExitIndex(node, i)
				recs[orig] = ExitRecord{
					Node:       node,
					StageIndex: gi,
					StageName:  s.graph.ExitName(gi),
					Label:      s.graph.mapLabel(node, label),
					Confidence: conf,
					Ops:        s.exitOps[gi],
					Trace:      recs[orig].Trace,
				}
				continue
			}
			if route != nil {
				_, label := row.Max()
				if t := route.Branch[label]; t >= 0 {
					// Copy the row out now — compaction may overwrite it
					// before the stage's row loop completes.
					hi := -1
					for h := range hand {
						if hand[h].node == t {
							hi = h
							break
						}
					}
					if hi < 0 {
						hand = append(hand, pending{node: t})
						hi = len(hand) - 1
					}
					hand[hi].data = append(hand[hi].data, act.Data[r*ssz:(r+1)*ssz]...)
					hand[hi].idx = append(hand[hi].idx, orig)
					continue
				}
			}
			if w != r {
				copy(act.Data[w*ssz:(w+1)*ssz], act.Data[r*ssz:(r+1)*ssz])
			}
			idx[w] = orig
			w++
		}
		if s.observer != nil {
			evEnd := time.Now()
			s.observer(StageEvent{Kind: StageForward, Node: node, Stage: i, Rows: evRows, Start: evStart, End: evEnd})
			for _, h := range hand {
				s.observer(StageEvent{Kind: StageRoute, Node: node, Stage: i, Branch: h.node, Rows: h.idx, Start: evEnd, End: evEnd})
			}
		}
		for _, h := range hand {
			shape := s.graph.Nodes[h.node].Model.Arch.Net.InShape
			*routed = append(*routed, batchGroup{
				node: h.node,
				act:  tensor.FromSlice(h.data, append([]int{len(h.idx)}, shape...)...),
				idx:  h.idx,
			})
		}
		idx = idx[:w]
		if w < nAct {
			sshape := c.Arch.Net.ShapeAt(pos)
			act = tensor.FromSlice(act.Data[:w*ssz], append([]int{w}, sshape...)...)
		}
	}
	return act, pos, idx
}

// stageDeltaAt resolves the effective threshold for a node's stage i under
// a policy: the node's trained value, then the policy's global Delta, then
// — for trunk stages only — the policy's per-stage entry (per-stage
// overrides name trunk stages; branch stages keep their own trained
// thresholds under the global override). On the trunk this is exactly
// CDLN.stageDelta.
func (s *Session) stageDeltaAt(node, i int, p ExitPolicy) float64 {
	c := s.graph.Nodes[node].Model
	d := c.Delta
	if c.StageDeltas != nil {
		d = c.StageDeltas[i]
	}
	if p.Delta >= 0 {
		d = p.Delta
	}
	if node == 0 && p.StageDeltas != nil && p.StageDeltas[i] >= 0 {
		d = p.StageDeltas[i]
	}
	return d
}

// finalExitBatch runs the remaining baseline layers of the node for the
// surviving rows and records their unconditional FC exits — the batch
// counterpart of the serial walk's FC tail.
func (s *Session) finalExitBatch(node int, act *tensor.T, pos int, idx []int, recs []ExitRecord, trace bool) {
	if len(idx) == 0 {
		return
	}
	var evStart time.Time
	if s.observer != nil {
		evStart = time.Now()
	}
	c := s.graph.Nodes[node].Model
	act = c.Arch.Net.ForwardBatchRange(act, pos, len(c.Arch.Net.Layers))
	osz := act.Numel() / len(idx)
	gi := s.graph.ExitIndex(node, len(c.Stages))
	for r, orig := range idx {
		row := tensor.FromSlice(act.Data[r*osz:(r+1)*osz], osz)
		conf, label := row.Max()
		rec := ExitRecord{
			Node:       node,
			StageIndex: gi,
			StageName:  s.graph.ExitName(gi),
			Label:      s.graph.mapLabel(node, label),
			Confidence: conf,
			Ops:        s.exitOps[gi],
		}
		if trace {
			rec.Trace = append(recs[orig].Trace, conf)
		}
		recs[orig] = rec
	}
	if s.observer != nil {
		s.observer(StageEvent{Kind: StageFinal, Node: node, Stage: len(c.Stages), Rows: idx, Start: evStart, End: time.Now()})
	}
}

// forcedExitBatch terminates the surviving rows unconditionally at the
// node's cascade stage `stage` — the node's share of the
// ExitPolicy.MaxExit path-depth cap. The baseline advances only to the
// stage's tap and the stage classifier's verdict is taken whatever its
// confidence, so the per-exit ops accounting (the global exit's path cost)
// stays exact: earlier exit points on the path were evaluated
// conditionally, this stage's LC unconditionally, deeper layers never ran.
func (s *Session) forcedExitBatch(node int, act *tensor.T, pos, stage int, idx []int, recs []ExitRecord, trace bool) {
	if len(idx) == 0 {
		return
	}
	var evStart time.Time
	if s.observer != nil {
		evStart = time.Now()
	}
	c := s.graph.Nodes[node].Model
	st := c.Stages[stage]
	act = c.Arch.Net.ForwardBatchRange(act, pos, st.Tap)
	nAct := len(idx)
	ssz := act.Numel() / nAct
	feat := act.Reshape(nAct, ssz)
	if cap(s.bscores) < nAct*st.LC.Out {
		s.bscores = make([]float64, nAct*st.LC.Out)
	}
	scores := tensor.FromSlice(s.bscores[:nAct*st.LC.Out], nAct, st.LC.Out)
	st.LC.ScoresBatchInto(feat, scores)
	row := s.scores[node][stage]
	gi := s.graph.ExitIndex(node, stage)
	for r, orig := range idx {
		copy(row.Data, scores.Data[r*st.LC.Out:(r+1)*st.LC.Out])
		conf, label := row.Max()
		rec := ExitRecord{
			Node:       node,
			StageIndex: gi,
			StageName:  s.graph.ExitName(gi),
			Label:      s.graph.mapLabel(node, label),
			Confidence: conf,
			Ops:        s.exitOps[gi],
		}
		if trace {
			rec.Trace = append(recs[orig].Trace, conf)
		}
		recs[orig] = rec
	}
	if s.observer != nil {
		s.observer(StageEvent{Kind: StageForced, Node: node, Stage: stage, Rows: idx, Start: evStart, End: time.Now()})
	}
}
