package core

// observe.go is the core layer's timing tap: an optional per-session
// observer that sees one event per executed unit of cascade work — each
// stage forward (baseline layers to the tap + stage classifier + exit
// decisions), each branch-route dispatch, each FC tail and each forced
// exit. The serving layer maps these events onto request trace spans;
// core itself stays free of any observability dependency, and with no
// observer installed the walks pay one nil check per stage and zero clock
// reads.

import "time"

// StageEventKind discriminates the units of work an observer sees.
type StageEventKind uint8

const (
	// StageForward is one conditional stage: baseline layers up to the
	// stage's tap, the stage classifier, and the per-row exit/route
	// decisions.
	StageForward StageEventKind = iota
	// StageRoute is a branch dispatch: rows handed from Node to Branch by
	// a route that fired at Stage. Zero-duration (the decision reads
	// scores the stage already computed).
	StageRoute
	// StageFinal is a node's unconditional FC tail (Stage is the node's
	// stage count).
	StageFinal
	// StageForced is a forced exit at the depth cap: the capped stage's
	// classifier taken unconditionally.
	StageForced
)

// StageEvent is one observed unit of work. On batched walks Rows holds the
// affected rows' original batch positions; on serial walks Rows is nil
// (the single input is implied). Rows aliases walk-internal storage and is
// valid only for the duration of the observer call — copy to retain.
type StageEvent struct {
	Kind   StageEventKind
	Node   int
	Stage  int
	Branch int // target node; StageRoute only
	Rows   []int
	Start  time.Time
	End    time.Time
}

// SetStageObserver installs fn as the session's observer (nil removes
// it). The observer is called synchronously on the walking goroutine —
// keep it cheap. Like the session itself it is single-goroutine state:
// install before a walk, clear after, never concurrently with one.
func (s *Session) SetStageObserver(fn func(StageEvent)) { s.observer = fn }
