package core

// policy_test.go covers the structured ExitPolicy: validation, the ops
// budget → depth cap mapping, and the policy-aware batch cascade —
// delta-only policies must be bit-identical to the legacy δ-override path,
// depth caps must take the capped stage classifier's own verdict, and
// traces must record every evaluated exit.

import (
	"math"
	"testing"

	"cdl/internal/tensor"
)

func TestValidatePolicy(t *testing.T) {
	cdln := batchCDLN(t, 61)
	good := []ExitPolicy{
		DefaultExitPolicy(),
		{Delta: 0.5, MaxExit: -1},
		{Delta: -1, MaxExit: 0},
		{Delta: -1, MaxExit: len(cdln.Stages)},
		{Delta: -1, StageDeltas: []float64{0.3, -1}, MaxExit: -1},
		{Delta: 1, MaxExit: 1, Trace: true},
	}
	for i, p := range good {
		if err := cdln.ValidatePolicy(p); err != nil {
			t.Errorf("good policy %d rejected: %v", i, err)
		}
	}
	bad := []ExitPolicy{
		{Delta: math.NaN(), MaxExit: -1},
		{Delta: math.Inf(1), MaxExit: -1},
		{Delta: 1.5, MaxExit: -1},
		{Delta: -1, MaxExit: len(cdln.Stages) + 1},
		{Delta: -1, StageDeltas: []float64{0.5}, MaxExit: -1},
		{Delta: -1, StageDeltas: []float64{0.5, math.NaN()}, MaxExit: -1},
		{Delta: -1, StageDeltas: []float64{0.5, 2}, MaxExit: -1},
	}
	for i, p := range bad {
		if err := cdln.ValidatePolicy(p); err == nil {
			t.Errorf("bad policy %d accepted: %+v", i, p)
		}
	}
}

func TestMaxExitForOps(t *testing.T) {
	cdln := batchCDLN(t, 62)
	exitOps := cdln.ExitOps()
	cases := []struct {
		budget float64
		want   int
	}{
		{exitOps[0], 0},
		{exitOps[1], 1},
		{exitOps[len(exitOps)-1], len(exitOps) - 1},
		{exitOps[len(exitOps)-1] * 10, len(exitOps) - 1},
		{(exitOps[0] + exitOps[1]) / 2, 0},
	}
	for _, tc := range cases {
		got, err := cdln.MaxExitForOps(tc.budget)
		if err != nil || got != tc.want {
			t.Errorf("MaxExitForOps(%v) = (%d, %v), want %d", tc.budget, got, err, tc.want)
		}
	}
	for _, bad := range []float64{0, -1, exitOps[0] / 2, math.NaN()} {
		if _, err := cdln.MaxExitForOps(bad); err == nil {
			t.Errorf("budget %v accepted", bad)
		}
	}
}

// TestPolicyDeltaOnlyMatchesLegacy pins the compat contract behind the
// serving redesign: a policy whose only active field is Delta must be
// bit-identical to the legacy δ-override batch path.
func TestPolicyDeltaOnlyMatchesLegacy(t *testing.T) {
	cdln := batchCDLN(t, 63)
	xs := mixedInputs(64, 64)
	sessA, err := NewSession(cdln)
	if err != nil {
		t.Fatal(err)
	}
	sessB, err := NewSession(cdln)
	if err != nil {
		t.Fatal(err)
	}
	for _, delta := range []float64{-1, 0.5, 0.9, 1} {
		legacy := sessA.ClassifyBatch(xs, delta)
		policy := sessB.ClassifyBatchPolicy(xs, ExitPolicy{Delta: delta, MaxExit: -1})
		for i := range xs {
			assertRecordsMatch(t, "delta-only policy", i, policy[i], legacy[i])
		}
	}
}

// TestPolicyMaxExit checks the depth cap: inputs still active at the cap
// exit there unconditionally with the stage classifier's own verdict and
// the exact per-exit ops accounting.
func TestPolicyMaxExit(t *testing.T) {
	cdln := batchCDLN(t, 65)
	xs := mixedInputs(48, 66)
	sess, err := NewSession(cdln)
	if err != nil {
		t.Fatal(err)
	}
	exitOps := cdln.ExitOps()

	// δ=1 never fires, so max_exit=m sends every input to exit m.
	for m := 0; m <= len(cdln.Stages); m++ {
		recs := sess.ClassifyBatchPolicy(xs, ExitPolicy{Delta: 1, MaxExit: m})
		for i, rec := range recs {
			if rec.StageIndex != m {
				t.Fatalf("max_exit=%d: input %d exited at %d", m, i, rec.StageIndex)
			}
			if rec.Ops != exitOps[m] {
				t.Fatalf("max_exit=%d: input %d ops %v, want %v", m, i, rec.Ops, exitOps[m])
			}
		}
	}

	// The forced verdict at stage m must equal the stage classifier's own
	// scores: reproduce via the serial path (forward to tap, score, argmax).
	ref, err := NewSession(cdln)
	if err != nil {
		t.Fatal(err)
	}
	recs := sess.ClassifyBatchPolicy(xs, ExitPolicy{Delta: 1, MaxExit: 0})
	st := cdln.Stages[0]
	for i, x := range xs {
		act := ref.model.Arch.Net.ForwardRange(x, 0, st.Tap)
		scores := st.LC.Scores(act)
		conf, label := scores.Max()
		if recs[i].Label != label || recs[i].Confidence != conf {
			t.Fatalf("forced exit input %d: (%d, %v) != LC verdict (%d, %v)",
				i, recs[i].Label, recs[i].Confidence, label, conf)
		}
	}

	// With the trained thresholds, a cap only truncates: records of inputs
	// that exit before the cap are untouched.
	uncapped := sess.ClassifyBatchPolicy(xs, DefaultExitPolicy())
	capped := sess.ClassifyBatchPolicy(xs, ExitPolicy{Delta: -1, MaxExit: 1})
	for i := range xs {
		if uncapped[i].StageIndex < 1 {
			assertRecordsMatch(t, "pre-cap exit", i, capped[i], uncapped[i])
		} else if capped[i].StageIndex != 1 {
			t.Fatalf("input %d exited at %d under cap 1", i, capped[i].StageIndex)
		}
	}
}

// TestPolicyStageDeltas checks per-stage overrides and their resolution
// order (stage entry over global Delta over trained).
func TestPolicyStageDeltas(t *testing.T) {
	cdln := batchCDLN(t, 67)
	xs := mixedInputs(48, 68)
	sess, err := NewSession(cdln)
	if err != nil {
		t.Fatal(err)
	}
	// δ₀=1 kills stage-0 exits; stage 1 keeps the trained threshold.
	recs := sess.ClassifyBatchPolicy(xs, ExitPolicy{Delta: -1, StageDeltas: []float64{1, -1}, MaxExit: -1})
	for i, rec := range recs {
		if rec.StageIndex == 0 {
			t.Fatalf("input %d exited at stage 0 under δ₀=1", i)
		}
	}
	// A per-stage entry overrides the global Delta: global δ=1 (no exits)
	// with stage-1 trained δ restored must equal plain StageDeltas[1]=trained.
	d1 := cdln.Delta
	if cdln.StageDeltas != nil {
		d1 = cdln.StageDeltas[1]
	}
	a := sess.ClassifyBatchPolicy(xs, ExitPolicy{Delta: 1, StageDeltas: []float64{-1, d1}, MaxExit: -1})
	b := sess.ClassifyBatchPolicy(xs, ExitPolicy{Delta: -1, StageDeltas: []float64{1, d1}, MaxExit: -1})
	for i := range xs {
		assertRecordsMatch(t, "resolution order", i, a[i], b[i])
	}
}

// TestPolicyTrace checks the trace detail: one winning confidence per
// evaluated exit, ending with the exit taken, and records otherwise
// bit-identical to the untraced pass.
func TestPolicyTrace(t *testing.T) {
	cdln := batchCDLN(t, 69)
	xs := mixedInputs(48, 70)
	sess, err := NewSession(cdln)
	if err != nil {
		t.Fatal(err)
	}
	plain := sess.ClassifyBatchPolicy(xs, DefaultExitPolicy())
	traced := sess.ClassifyBatchPolicy(xs, ExitPolicy{Delta: -1, MaxExit: -1, Trace: true})
	for i := range xs {
		assertRecordsMatch(t, "trace identity", i, traced[i], plain[i])
		want := traced[i].StageIndex + 1 // exits 0..StageIndex evaluated
		if len(traced[i].Trace) != want {
			t.Fatalf("input %d: trace length %d, want %d", i, len(traced[i].Trace), want)
		}
		if tail := traced[i].Trace[len(traced[i].Trace)-1]; tail != traced[i].Confidence {
			t.Fatalf("input %d: trace tail %v != confidence %v", i, tail, traced[i].Confidence)
		}
		if plain[i].Trace != nil {
			t.Fatalf("input %d: untraced pass grew a trace", i)
		}
	}
}

// TestPolicyResumePanics pins the precondition: a depth cap shallower
// than the resume stage is unsatisfiable and must panic (network callers
// validate first).
func TestPolicyResumePanics(t *testing.T) {
	cdln := batchCDLN(t, 71)
	sess, err := NewSession(cdln)
	if err != nil {
		t.Fatal(err)
	}
	xs := mixedInputs(4, 72)
	pre := sess.ClassifyPrefixBatch(xs, 1, 1) // δ=1: all defer
	defer func() {
		if recover() == nil {
			t.Fatal("ResumeBatchPolicy accepted max exit below the resume stage")
		}
	}()
	sess.ResumeBatchPolicy([]*tensor.T{pre[0].Activation}, 1, ExitPolicy{Delta: -1, MaxExit: 0})
}
