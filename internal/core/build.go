package core

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"

	"cdl/internal/linclass"
	"cdl/internal/nn"
	"cdl/internal/opcount"
	"cdl/internal/tensor"
	"cdl/internal/train"
)

// BuildConfig controls Algorithm 1 (CDLN construction from a trained
// baseline).
type BuildConfig struct {
	// Delta is the confidence threshold δ used to route training instances
	// between stages while building (paper §II.A.2 recommends 0.5–0.7
	// during training). It also becomes the constructed CDLN's initial
	// runtime δ.
	Delta float64
	// Epsilon is ε, the user-defined admission threshold on the per-input
	// gain G_i (in operations per input; 0 admits any strictly profitable
	// stage).
	Epsilon float64
	// Rule is the activation module (default ThresholdRule, the paper's).
	Rule ExitRule
	// LC configures LMS training of the per-stage classifiers.
	LC linclass.TrainConfig
	// Ops is the operation model used for γ_i and the gain rule.
	Ops opcount.Model
	// ForceAllStages skips the gain rule and admits a classifier at every
	// tap — used by the Fig. 7 and Fig. 9 stage-count sweeps.
	ForceAllStages bool
	// TrainLCOnAllData trains every stage classifier on the full training
	// set instead of only the instances passed from the previous stage —
	// an ablation of Algorithm 1's routing design choice (the paper trains
	// "only on those instances passed from the previous stage").
	TrainLCOnAllData bool
	// MaxStages, if positive, caps the number of taps considered (again for
	// the stage-count sweeps: MaxStages=1 builds O1-FC, 2 builds O1-O2-FC).
	MaxStages int
	// Workers is the parallel feature-extraction fan-out (0 = GOMAXPROCS).
	Workers int
	// Seed drives linear-classifier weight initialization.
	Seed int64
	// Log, if non-nil, receives progress lines.
	Log io.Writer
}

// DefaultBuildConfig returns the paper-style configuration: δ=0.5, ε=0,
// threshold rule, unit op costs.
func DefaultBuildConfig() BuildConfig {
	return BuildConfig{
		Delta: 0.5,
		Rule:  ThresholdRule{},
		LC:    linclass.DefaultTrainConfig(),
		Ops:   opcount.Default(),
		Seed:  1,
	}
}

// StageReport records Algorithm 1's decision for one candidate stage.
type StageReport struct {
	// Name and Tap identify the candidate ("O1" at the P1 tap, ...).
	Name string
	Tap  int
	// FeatureLen is the classifier input width.
	FeatureLen int
	// Reaching is I_i: the number of training instances that reached this
	// stage.
	Reaching int
	// Classified is Cl_i: how many of those the stage exits under δ.
	Classified int
	// LCAccuracy is the classifier's accuracy over the instances reaching
	// the stage.
	LCAccuracy float64
	// Gain is G_i per Eq. 1, normalized per reaching instance (ops/input).
	Gain float64
	// Admitted reports whether the stage joined the CDLN.
	Admitted bool
}

// Report summarizes a Build run.
type Report struct {
	// BaselineOps is γ_base.
	BaselineOps float64
	// Stages holds one entry per candidate tap, in depth order.
	Stages []StageReport
}

// Build runs Algorithm 1: starting from a *trained* baseline arch, train a
// linear classifier on the CNN features at every tap, measure the fraction
// of instances each stage would classify under δ, compute the Eq. 1 gain
// G_i, and admit the stage iff G_i > ε.
//
// Gain accounting: for the Cl_i instances the stage classifies, the saving
// per instance is the cost of the full pipeline they avoid
// (γ_full − γ_i, where γ_full includes previously admitted classifiers and
// this stage's own classifier, since those would run regardless before the
// input reached FC). For the I_i − Cl_i instances that pass through, the
// penalty is this stage's classifier evaluation, which is pure overhead.
// This is Eq. 1 of the paper with γ read as "cost actually paid by an
// instance under the cascade"; dividing by I_i expresses G_i in ops per
// reaching instance so ε has a scale-free meaning.
func Build(arch *nn.Arch, data []train.Sample, cfg BuildConfig) (*CDLN, *Report, error) {
	if err := arch.Validate(); err != nil {
		return nil, nil, err
	}
	if len(data) == 0 {
		return nil, nil, fmt.Errorf("core: empty training set")
	}
	if cfg.Delta <= 0 || cfg.Delta > 1 {
		return nil, nil, fmt.Errorf("core: build delta %v outside (0,1]", cfg.Delta)
	}
	if cfg.Rule == nil {
		cfg.Rule = ThresholdRule{}
	}
	if cfg.Ops == (opcount.Model{}) {
		cfg.Ops = opcount.Default()
	}

	taps := arch.Taps
	names := arch.TapNames
	if cfg.MaxStages > 0 && cfg.MaxStages < len(taps) {
		taps = taps[:cfg.MaxStages]
		names = names[:cfg.MaxStages]
	}

	// Harvest tap features for every instance with one forward pass each,
	// fanned out across workers.
	features, err := TapFeatures(arch, data, taps, cfg.Workers)
	if err != nil {
		return nil, nil, err
	}

	cum := cfg.Ops.CumulativeOps(arch.Net)
	baseOps := cum[len(cum)-1]
	report := &Report{BaselineOps: baseOps}
	cdln := &CDLN{Arch: arch, Delta: cfg.Delta, Rule: cfg.Rule, Ops: cfg.Ops}
	rng := rand.New(rand.NewSource(cfg.Seed))

	reaching := make([]int, len(data))
	for i := range reaching {
		reaching[i] = i
	}
	lcOpsSoFar := 0.0

	for si, tap := range taps {
		stageName := fmt.Sprintf("O%d", si+1)
		featLen := features[si][0].Numel()

		// Algorithm 1 step 7: train LC_i on the instances that reach it.
		// When a forced sweep (Fig. 7/9) asks for a deeper stage than the
		// routed data sustains, fall back to the full training set so the
		// classifier still exists; gain accounting below still uses the
		// true reaching set.
		trainIdx := reaching
		if cfg.TrainLCOnAllData || (cfg.ForceAllStages && len(reaching) < 10*arch.NumClasses) {
			trainIdx = make([]int, len(data))
			for i := range trainIdx {
				trainIdx[i] = i
			}
		}
		feats := make([]*tensor.T, len(trainIdx))
		labels := make([]int, len(trainIdx))
		for j, idx := range trainIdx {
			feats[j] = features[si][idx]
			labels[j] = data[idx].Label
		}
		lc := linclass.New(featLen, arch.NumClasses, rng)
		lcCfg := cfg.LC
		lcCfg.Seed = cfg.Seed + int64(si)
		if _, err := lc.Train(feats, labels, lcCfg); err != nil {
			return nil, nil, fmt.Errorf("core: training %s: %w", stageName, err)
		}

		// Count exits under δ (Algorithm 1 step 8).
		classified := 0
		var passed []int
		for _, idx := range reaching {
			if cfg.Rule.ShouldExit(lc.Scores(features[si][idx]), cfg.Delta) {
				classified++
			} else {
				passed = append(passed, idx)
			}
		}

		// Eq. 1 / step 9: gain of admitting the stage, expressed per
		// reaching instance (0 if nothing reaches the stage).
		lcOps := cfg.Ops.LinearClassifierOps(featLen, arch.NumClasses)
		exitCost := cum[tap] + lcOpsSoFar + lcOps
		fullCost := baseOps + lcOpsSoFar + lcOps
		gain := 0.0
		if len(reaching) > 0 {
			gainTotal := (fullCost-exitCost)*float64(classified) - lcOps*float64(len(reaching)-classified)
			gain = gainTotal / float64(len(reaching))
		}

		admitted := cfg.ForceAllStages || gain > cfg.Epsilon
		report.Stages = append(report.Stages, StageReport{
			Name:       stageName,
			Tap:        tap,
			FeatureLen: featLen,
			Reaching:   len(reaching),
			Classified: classified,
			LCAccuracy: lc.Accuracy(feats, labels),
			Gain:       gain,
			Admitted:   admitted,
		})
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "stage %s (%s tap): reach=%d classify=%d gain=%.1f ops/input admitted=%v\n",
				stageName, names[si], len(reaching), classified, gain, admitted)
		}

		if admitted {
			cdln.Stages = append(cdln.Stages, &Stage{Name: stageName, Tap: tap, LC: lc, Gain: gain})
			lcOpsSoFar += lcOps
			reaching = passed
		}
		if len(reaching) == 0 && !cfg.ForceAllStages {
			break
		}
	}

	if err := cdln.Validate(); err != nil {
		return nil, nil, err
	}
	return cdln, report, nil
}

// TapFeatures runs every sample through the baseline once and collects the
// flattened feature vector at each tap: result[t][i] is sample i's features
// at taps[t]. Extraction fans out across workers; the baseline weights are
// shared read-only.
func TapFeatures(arch *nn.Arch, data []train.Sample, taps []int, workers int) ([][]*tensor.T, error) {
	for _, t := range taps {
		if t <= 0 || t >= len(arch.Net.Layers) {
			return nil, fmt.Errorf("core: tap %d out of range", t)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(data) {
		workers = len(data)
	}
	features := make([][]*tensor.T, len(taps))
	for t := range features {
		features[t] = make([]*tensor.T, len(data))
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			replica := arch.Net.Clone()
			for i := w; i < len(data); i += workers {
				act := data[i].X
				pos := 0
				for t, tap := range taps {
					act = replica.ForwardRange(act, pos, tap)
					pos = tap
					features[t][i] = act.Flatten().Clone()
				}
			}
		}(w)
	}
	wg.Wait()
	return features, nil
}
