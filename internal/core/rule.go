// Package core implements Conditional Deep Learning (CDL), the paper's
// primary contribution: a cascade of linear classifiers attached to the
// convolutional stages of a trained baseline DLN, with an activation module
// that terminates classification early for easy inputs (Algorithm 2) and a
// training procedure that decides which stages deserve a classifier at all
// (Algorithm 1, Eq. 1).
package core

import (
	"fmt"
	"math"

	"cdl/internal/tensor"
)

// ExitRule is the activation module's decision function: given the stage's
// class scores and the user threshold δ, decide whether classification
// terminates at this stage.
type ExitRule interface {
	// Name identifies the rule in reports.
	Name() string
	// ShouldExit reports whether the activation module terminates at this
	// stage given the scores.
	ShouldExit(scores *tensor.T, delta float64) bool
}

// ThresholdRule is the paper's activation module (§II): terminate iff the
// classifier produces sufficient confidence (score ≥ δ) for *exactly one*
// class label. Both failure modes — no confident label, or more than one
// confident label — pass the input to the next stage.
type ThresholdRule struct{}

// Name implements ExitRule.
func (ThresholdRule) Name() string { return "threshold" }

// ShouldExit implements ExitRule.
func (ThresholdRule) ShouldExit(scores *tensor.T, delta float64) bool {
	confident := 0
	for _, v := range scores.Data {
		if v >= delta {
			confident++
			if confident > 1 {
				return false
			}
		}
	}
	return confident == 1
}

// MarginRule is an ablation: terminate iff the gap between the best and
// second-best scores is at least δ.
type MarginRule struct{}

// Name implements ExitRule.
func (MarginRule) Name() string { return "margin" }

// ShouldExit implements ExitRule.
func (MarginRule) ShouldExit(scores *tensor.T, delta float64) bool {
	if scores.Numel() < 2 {
		return true
	}
	best, second := math.Inf(-1), math.Inf(-1)
	for _, v := range scores.Data {
		if v > best {
			second = best
			best = v
		} else if v > second {
			second = v
		}
	}
	return best-second >= delta
}

// EntropyRule is an ablation: terminate iff the normalized entropy of the
// score distribution is at most δ (low entropy = concentrated = confident).
// Scores are normalized to a distribution first.
type EntropyRule struct{}

// Name implements ExitRule.
func (EntropyRule) Name() string { return "entropy" }

// ShouldExit implements ExitRule.
func (EntropyRule) ShouldExit(scores *tensor.T, delta float64) bool {
	n := scores.Numel()
	if n < 2 {
		return true
	}
	sum := 0.0
	for _, v := range scores.Data {
		if v > 0 {
			sum += v
		}
	}
	if sum <= 0 {
		return false
	}
	h := 0.0
	for _, v := range scores.Data {
		if v > 0 {
			p := v / sum
			h -= p * math.Log(p)
		}
	}
	h /= math.Log(float64(n)) // normalize to [0,1]
	return h <= delta
}

// RuleByName returns the rule registered under name ("threshold", "margin"
// or "entropy").
func RuleByName(name string) (ExitRule, error) {
	switch name {
	case "threshold":
		return ThresholdRule{}, nil
	case "margin":
		return MarginRule{}, nil
	case "entropy":
		return EntropyRule{}, nil
	}
	return nil, fmt.Errorf("core: unknown exit rule %q", name)
}
