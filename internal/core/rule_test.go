package core

import (
	"testing"
	"testing/quick"

	"cdl/internal/tensor"
)

func scores(vs ...float64) *tensor.T { return tensor.FromSlice(vs, len(vs)) }

func TestThresholdRuleExactlyOne(t *testing.T) {
	r := ThresholdRule{}
	cases := []struct {
		name  string
		s     *tensor.T
		delta float64
		want  bool
	}{
		{"one confident", scores(0.95, 0.1, 0.2), 0.8, true},
		{"none confident", scores(0.3, 0.4, 0.2), 0.8, false},
		{"two confident", scores(0.95, 0.9, 0.2), 0.8, false},
		{"exactly at delta", scores(0.8, 0.1), 0.8, true},
		{"all confident", scores(0.9, 0.9, 0.9), 0.5, false},
		{"paper fig4a easy", scores(0.95, 0.3, 0.1, 0.2), 0.8, true},
		{"paper fig4a hard", scores(0.3, 0.4, 0.1, 0.2), 0.8, false},
	}
	for _, c := range cases {
		if got := r.ShouldExit(c.s, c.delta); got != c.want {
			t.Errorf("%s: ShouldExit=%v, want %v", c.name, got, c.want)
		}
	}
}

func TestMarginRule(t *testing.T) {
	r := MarginRule{}
	if !r.ShouldExit(scores(0.9, 0.3), 0.5) {
		t.Error("margin 0.6 ≥ 0.5 should exit")
	}
	if r.ShouldExit(scores(0.9, 0.8), 0.5) {
		t.Error("margin 0.1 < 0.5 should not exit")
	}
	if !r.ShouldExit(scores(0.4), 0.9) {
		t.Error("single-class scores always exit")
	}
}

func TestEntropyRule(t *testing.T) {
	r := EntropyRule{}
	if !r.ShouldExit(scores(1, 0, 0, 0), 0.1) {
		t.Error("zero-entropy scores should exit")
	}
	if r.ShouldExit(scores(0.5, 0.5, 0.5, 0.5), 0.5) {
		t.Error("uniform scores (max entropy) should not exit at δ=0.5")
	}
	if r.ShouldExit(scores(0, 0, 0), 0.9) {
		t.Error("all-zero scores should not exit")
	}
	if !r.ShouldExit(scores(0.7), 0.0) {
		t.Error("single-class always exits")
	}
}

func TestRuleByName(t *testing.T) {
	for _, name := range []string{"threshold", "margin", "entropy"} {
		r, err := RuleByName(name)
		if err != nil || r.Name() != name {
			t.Errorf("RuleByName(%q) = %v, %v", name, r, err)
		}
	}
	if _, err := RuleByName("bogus"); err == nil {
		t.Error("unknown rule accepted")
	}
}

// Property: margin-rule exits are monotone in δ — exiting at δ implies
// exiting at any smaller δ. (The threshold rule is deliberately NOT
// monotone: lowering δ can make a second class confident; see
// TestThresholdNonMonotoneByDesign.)
func TestQuickMarginMonotone(t *testing.T) {
	f := func(a, b, c uint8, d1, d2 uint8) bool {
		s := scores(float64(a)/255, float64(b)/255, float64(c)/255)
		lo, hi := float64(d1)/255, float64(d2)/255
		if lo > hi {
			lo, hi = hi, lo
		}
		r := MarginRule{}
		if r.ShouldExit(s, hi) && !r.ShouldExit(s, lo) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestThresholdNonMonotoneByDesign(t *testing.T) {
	// At δ=0.8 only one class qualifies → exit; at δ=0.5 two qualify → no
	// exit. The paper's second criterion ("sufficient confidence for more
	// than one label" passes the input on) requires this behaviour.
	s := scores(0.9, 0.6)
	r := ThresholdRule{}
	if !r.ShouldExit(s, 0.8) {
		t.Fatal("should exit at δ=0.8")
	}
	if r.ShouldExit(s, 0.5) {
		t.Fatal("must not exit at δ=0.5 (two confident labels)")
	}
}

// Property: threshold rule never exits when every score is below δ, and
// always exits when exactly the max is above δ and the rest are below.
func TestQuickThresholdDefinition(t *testing.T) {
	f := func(raw []uint8, draw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		delta := 0.2 + float64(draw%6)/10 // 0.2..0.7
		s := tensor.New(len(raw))
		allBelow := true
		above := 0
		for i, v := range raw {
			s.Data[i] = float64(v) / 255
			if s.Data[i] >= delta {
				allBelow = false
				above++
			}
		}
		got := ThresholdRule{}.ShouldExit(s, delta)
		if allBelow && got {
			return false
		}
		return got == (above == 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
