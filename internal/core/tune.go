package core

import (
	"fmt"

	"cdl/internal/train"
)

// Per-stage thresholds are an extension beyond the paper, which uses one
// global δ: the paper's own Fig. 4 discussion implies different stages
// have different confidence profiles, so letting each stage carry its own
// threshold recovers accuracy the single knob leaves on the table.
//
// A CDLN uses StageDeltas[i] for stage i when StageDeltas is non-nil;
// otherwise every stage uses Delta.

// TuneConfig controls TuneDeltas.
type TuneConfig struct {
	// Grid is the candidate threshold set per stage (default
	// 0.30,0.35,…,0.90).
	Grid []float64
	// MaxNormalizedOps, if positive, constrains the search to settings
	// whose normalized OPS stay at or below the bound.
	MaxNormalizedOps float64
	// Workers bounds evaluation parallelism.
	Workers int
}

// DefaultTuneConfig returns the standard grid.
func DefaultTuneConfig() TuneConfig {
	grid := make([]float64, 0, 13)
	for d := 0.30; d <= 0.901; d += 0.05 {
		grid = append(grid, d)
	}
	return TuneConfig{Grid: grid}
}

// TuneDeltas greedily assigns a per-stage threshold by sweeping each
// stage's δ over the grid (deepest stage last), keeping the value that
// maximizes validation accuracy and breaking ties toward lower OPS. It
// returns the chosen thresholds and the final validation result; the CDLN
// is updated in place with StageDeltas set.
func TuneDeltas(c *CDLN, val []train.Sample, cfg TuneConfig) ([]float64, *EvalResult, error) {
	if len(val) == 0 {
		return nil, nil, fmt.Errorf("core: empty validation set")
	}
	if len(cfg.Grid) == 0 {
		cfg.Grid = DefaultTuneConfig().Grid
	}
	for _, d := range cfg.Grid {
		if d <= 0 || d > 1 {
			return nil, nil, fmt.Errorf("core: grid value %v outside (0,1]", d)
		}
	}
	if len(c.Stages) == 0 {
		res, err := Evaluate(c, val, cfg.Workers, false)
		return nil, res, err
	}

	deltas := make([]float64, len(c.Stages))
	for i := range deltas {
		deltas[i] = c.Delta
	}
	c.StageDeltas = deltas

	best, err := Evaluate(c, val, cfg.Workers, false)
	if err != nil {
		return nil, nil, err
	}
	for si := range c.Stages {
		bestDelta := deltas[si]
		for _, d := range cfg.Grid {
			deltas[si] = d
			res, err := Evaluate(c, val, cfg.Workers, false)
			if err != nil {
				return nil, nil, err
			}
			if cfg.MaxNormalizedOps > 0 && res.NormalizedOps() > cfg.MaxNormalizedOps {
				continue
			}
			better := res.Confusion.Accuracy() > best.Confusion.Accuracy()
			tie := res.Confusion.Accuracy() == best.Confusion.Accuracy() &&
				res.NormalizedOps() < best.NormalizedOps()
			if better || tie {
				best = res
				bestDelta = d
			}
		}
		deltas[si] = bestDelta
	}
	return deltas, best, nil
}
