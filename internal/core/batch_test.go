package core

// batch_test.go is the cascade-level half of the fast-path differential
// harness (the layer-level half is internal/nn's equiv_test.go): across
// randomized weights, inputs and batch sizes 1..64 — over 2000 inputs per
// sweep — ClassifyBatch must reproduce the per-sample Classify ExitRecord
// field for field: exit stage, exit name, predicted label, confidence and
// dynamic op count. Degenerate batches (everything exits at stage 1,
// nothing exits before FC, the empty batch) and the tier-split entry points
// (ClassifyPrefixBatch/ResumeBatch) are covered explicitly.

import (
	"math/rand"
	"testing"

	"cdl/internal/tensor"
)

// batchCDLN builds a trained two-stage CDLN with every stage admitted, so
// the batch path exercises multi-stage compaction.
func batchCDLN(t testing.TB, seed int64) *CDLN {
	t.Helper()
	arch, data := trainedArch(t, seed)
	cfg := DefaultBuildConfig()
	cfg.ForceAllStages = true
	cdln, _, err := Build(arch, data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cdln.Stages) != 2 {
		t.Fatalf("built %d stages, want 2", len(cdln.Stages))
	}
	return cdln
}

// mixedInputs returns a difficulty-spread input set: trained-distribution
// blobs (most exit early) plus pure noise (most reach FC).
func mixedInputs(n int, seed int64) []*tensor.T {
	rng := rand.New(rand.NewSource(seed))
	samples := blobData(n, seed)
	xs := make([]*tensor.T, n)
	for i, s := range samples {
		xs[i] = s.X
		if i%5 == 4 { // every 5th input is noise: the hard tail
			for j := range xs[i].Data {
				xs[i].Data[j] = rng.Float64()
			}
		}
	}
	return xs
}

// assertRecordsMatch compares a batched record against the per-sample
// reference, field for field.
func assertRecordsMatch(t *testing.T, label string, i int, got, want ExitRecord) {
	t.Helper()
	if !got.Equal(want) {
		t.Fatalf("%s: input %d: batch record %+v != per-sample record %+v", label, i, got, want)
	}
}

// TestClassifyBatchMatchesClassify is the headline differential sweep:
// every batch size 1..64 (2080 randomized inputs in total), batched vs
// per-sample, exact record equality.
func TestClassifyBatchMatchesClassify(t *testing.T) {
	cdln := batchCDLN(t, 21)
	sess, err := NewSession(cdln)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewSession(cdln)
	if err != nil {
		t.Fatal(err)
	}
	seed := int64(100)
	total := 0
	exitsSeen := make(map[int]int)
	for bsz := 1; bsz <= 64; bsz++ {
		xs := mixedInputs(bsz, seed)
		seed++
		recs := sess.ClassifyBatch(xs, -1)
		if len(recs) != bsz {
			t.Fatalf("batch %d returned %d records", bsz, len(recs))
		}
		for i, x := range xs {
			assertRecordsMatch(t, "classify", i, recs[i], ref.Classify(x))
			exitsSeen[recs[i].StageIndex]++
			total++
		}
	}
	if total < 1000 {
		t.Fatalf("sweep covered only %d inputs, want ≥ 1000", total)
	}
	// The sweep is only meaningful if it exercises both early exits and the
	// FC tail (i.e. real compaction happened).
	if exitsSeen[0] == 0 || exitsSeen[len(cdln.Stages)] == 0 {
		t.Fatalf("degenerate exit distribution %v: sweep did not exercise compaction", exitsSeen)
	}
}

// TestClassifyBatchDeltaOverride checks the per-call δ override against
// ClassifyDelta across the knob's range.
func TestClassifyBatchDeltaOverride(t *testing.T) {
	cdln := batchCDLN(t, 22)
	sess, err := NewSession(cdln)
	if err != nil {
		t.Fatal(err)
	}
	xs := mixedInputs(40, 7)
	for _, delta := range []float64{0, 0.3, 0.6, 0.9, 1} {
		recs := sess.ClassifyBatch(xs, delta)
		for i, x := range xs {
			assertRecordsMatch(t, "delta-override", i, recs[i], sess.ClassifyDelta(x, delta))
		}
	}
}

// alwaysExitRule fires at every stage — the all-exit-at-stage-1 degenerate
// batch, where compaction empties the batch immediately.
type alwaysExitRule struct{}

func (alwaysExitRule) Name() string                       { return "always" }
func (alwaysExitRule) ShouldExit(*tensor.T, float64) bool { return true }

// TestClassifyBatchDegenerate covers the batches where compaction does no
// work: everything exits at stage 1, nothing exits before FC, and the
// empty batch.
func TestClassifyBatchDegenerate(t *testing.T) {
	cdln := batchCDLN(t, 23)

	// All exit at stage 1.
	all := cdln.Clone()
	all.Rule = alwaysExitRule{}
	sess, err := NewSession(all)
	if err != nil {
		t.Fatal(err)
	}
	xs := mixedInputs(32, 9)
	recs := sess.ClassifyBatch(xs, -1)
	for i, x := range xs {
		if recs[i].StageIndex != 0 {
			t.Fatalf("always-exit input %d exited at %d, want 0", i, recs[i].StageIndex)
		}
		assertRecordsMatch(t, "all-exit", i, recs[i], sess.Classify(x))
	}

	// No early exit: δ=1 forces the whole batch to FC (no sigmoid score
	// reaches 1), so every stage forwards the full batch.
	sess2, err := NewSession(cdln)
	if err != nil {
		t.Fatal(err)
	}
	recs = sess2.ClassifyBatch(xs, 1)
	for i, x := range xs {
		if recs[i].StageName != "FC" {
			t.Fatalf("δ=1 input %d exited at %s, want FC", i, recs[i].StageName)
		}
		assertRecordsMatch(t, "no-exit", i, recs[i], sess2.ClassifyDelta(x, 1))
	}

	// Empty batch.
	if recs := sess2.ClassifyBatch(nil, -1); len(recs) != 0 {
		t.Fatalf("empty batch returned %d records", len(recs))
	}
}

// TestClassifyPrefixBatchMatchesClassifyPrefix compares the batched edge
// prefix against the per-sample one for every split stage: identical exit
// records, positions and activation bytes.
func TestClassifyPrefixBatchMatchesClassifyPrefix(t *testing.T) {
	cdln := batchCDLN(t, 24)
	sess, err := NewSession(cdln)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewSession(cdln)
	if err != nil {
		t.Fatal(err)
	}
	xs := mixedInputs(48, 11)
	for split := 0; split <= len(cdln.Stages); split++ {
		pres := sess.ClassifyPrefixBatch(xs, split, -1)
		for i, x := range xs {
			want := ref.ClassifyPrefix(x, split, -1)
			got := pres[i]
			if got.Exited != want.Exited {
				t.Fatalf("split %d input %d: batch exited=%v, per-sample %v", split, i, got.Exited, want.Exited)
			}
			if want.Exited {
				assertRecordsMatch(t, "prefix", i, got.Record, want.Record)
				continue
			}
			if got.Pos != want.Pos {
				t.Fatalf("split %d input %d: pos %d, want %d", split, i, got.Pos, want.Pos)
			}
			if !tensor.Equal(got.Activation, want.Activation) {
				t.Fatalf("split %d input %d: deferred activations diverge", split, i)
			}
			// The batched activation must be a private copy: consuming it
			// later (after further session use) must be safe.
			if &got.Activation.Data[0] == &want.Activation.Data[0] {
				t.Fatalf("split %d input %d: batched activation aliases session caches", split, i)
			}
		}
	}
}

// TestResumeBatchMatchesResume feeds every split's deferred activations
// through both resume paths.
func TestResumeBatchMatchesResume(t *testing.T) {
	cdln := batchCDLN(t, 25)
	sess, err := NewSession(cdln)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewSession(cdln)
	if err != nil {
		t.Fatal(err)
	}
	xs := mixedInputs(64, 13)
	for split := 0; split <= len(cdln.Stages); split++ {
		var acts []*tensor.T
		for _, pre := range sess.ClassifyPrefixBatch(xs, split, -1) {
			if !pre.Exited {
				acts = append(acts, pre.Activation)
			}
		}
		if len(acts) == 0 {
			continue
		}
		recs := sess.ResumeBatch(acts, split, -1)
		for i, a := range acts {
			assertRecordsMatch(t, "resume", i, recs[i], ref.Resume(a, split, -1))
		}
	}
	// ResumeBatch(xs, 0, δ) is exactly ClassifyBatch(xs, δ).
	recs0 := sess.ResumeBatch(xs, 0, 0.5)
	for i, x := range xs {
		assertRecordsMatch(t, "resume-0", i, recs0[i], ref.ClassifyDelta(x, 0.5))
	}
}

// TestResumeBatchRejectsBadShape mirrors Resume's panic contract.
func TestResumeBatchRejectsBadShape(t *testing.T) {
	cdln := batchCDLN(t, 26)
	sess, err := NewSession(cdln)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ResumeBatch accepted a wrong-shape activation")
		}
	}()
	sess.ResumeBatch([]*tensor.T{tensor.New(3, 3)}, 1, -1)
}

// TestClassifyBatchStageDeltas checks per-stage thresholds resolve the
// same way on both paths.
func TestClassifyBatchStageDeltas(t *testing.T) {
	cdln := batchCDLN(t, 27)
	tuned := cdln.Clone()
	tuned.StageDeltas = []float64{0.9, 0.4}
	sess, err := NewSession(tuned)
	if err != nil {
		t.Fatal(err)
	}
	xs := mixedInputs(50, 15)
	recs := sess.ClassifyBatch(xs, -1)
	for i, x := range xs {
		assertRecordsMatch(t, "stage-deltas", i, recs[i], sess.Classify(x))
	}
}

// BenchmarkSessionClassifyLoop32 is the reference path: 32 per-sample
// Classify calls per iteration.
func BenchmarkSessionClassifyLoop32(b *testing.B) {
	benchClassify(b, false)
}

// BenchmarkSessionClassifyBatch32 is the fast path: one ClassifyBatch of
// 32 per iteration.
func BenchmarkSessionClassifyBatch32(b *testing.B) {
	benchClassify(b, true)
}

func benchClassify(b *testing.B, batched bool) {
	arch := twoStageArch(1, 3)
	data := blobData(180, 2)
	cfg := DefaultBuildConfig()
	cfg.ForceAllStages = true
	cdln, _, err := Build(arch, data, cfg)
	if err != nil {
		b.Fatal(err)
	}
	sess, err := NewSession(cdln)
	if err != nil {
		b.Fatal(err)
	}
	xs := mixedInputs(32, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if batched {
			sess.ClassifyBatch(xs, -1)
		} else {
			for _, x := range xs {
				sess.Classify(x)
			}
		}
	}
	b.ReportMetric(float64(len(xs))*float64(b.N)/b.Elapsed().Seconds(), "images/s")
}
