package core

// graph.go generalizes the linear cascade into a merge-free tree of
// conditional subnetworks — the "models in-between" direction of Ioannou et
// al. 2016 applied to the paper's CDLN. A Graph is a set of Nodes; node 0
// is the trunk (the classic CDLN), and any stage of any node may carry a
// Route that maps the stage classifier's predicted class to a branch
// subnetwork specialized for a class group. An input walks Algorithm 2
// down the trunk; when a router stage declines to exit, the stage's argmax
// decides whether the input keeps descending the trunk or is dispatched to
// a branch, which runs its own cascade over the routed activation.
//
// The linear cascade is the degenerate one-node graph (LinearGraph), and
// every execution path — serial, batched, tier-split — produces
// bit-identical ExitRecords for it: a node with no routes runs exactly the
// pre-graph stage loop, evaluating no extra operations. The golden and
// differential harnesses in graph_test.go and linear_equiv_test.go pin
// this.
//
// Exit points are numbered globally, node by node in declaration order:
// node 0's stages then its FC, node 1's stages then its FC, and so on. For
// a linear graph the numbering coincides with the classic StageIndex, so
// every consumer of per-exit tables (metrics, energy accumulators, control
// telemetry) keeps working unchanged. Depth, by contrast, is a per-path
// notion: the depth of an exit is the number of exit points evaluated
// before it on its root-to-exit path, which is what ExitPolicy.MaxExit
// caps (see Graph.maxExit).

import (
	"fmt"
	"strings"
)

// Route attaches class-group dispatch to one stage of a node: when the
// stage's activation module declines to exit, the stage classifier's
// argmax class selects Branch[class] — a branch node index to hand the
// activation to, or -1 to continue down the owning node.
type Route struct {
	// Stage is the index of the routing stage within the owning node.
	Stage int
	// Branch maps the stage classifier's predicted class (the owning
	// node's local class index) to the target node, -1 meaning "continue
	// on this node". Its length must equal the stage classifier's output
	// width.
	Branch []int
}

// Node is one subnetwork of a routing graph: a full CDLN (its stages, δ
// and exit rule apply node-locally) plus the routes that dispatch
// undecided inputs to branches.
type Node struct {
	// Name identifies the node; branch names appear in qualified exit
	// names ("even/O1"), the serve branch hot-swap surface and /statsz.
	// Required and unique for branch nodes; optional for the trunk.
	Name string
	// Model is the node's cascade. A branch's input shape must equal the
	// parent network's shape at the routing stage's tap.
	Model *CDLN
	// Labels maps the node's local class index to the trunk's global
	// class space, so a branch may be narrower than the trunk (an
	// even-digits branch classifies 5 classes, not 10). nil means the
	// identity mapping (the node predicts trunk classes directly).
	Labels []int
	// Routes are the node's dispatch points, at most one per stage.
	Routes []Route
}

// Graph is a merge-free tree of conditional subnetworks rooted at the
// trunk Nodes[0]. Construct it literally (or via LinearGraph), then call
// Validate before use; the derived routing tables are cached on first
// validation, after which the graph must be treated as immutable — like
// CDLN, share it across goroutines only through Sessions.
type Graph struct {
	Nodes []*Node

	tab *graphTables
}

// graphTables are the derived lookups every walk uses: parentage, global
// exit numbering, per-exit cumulative op costs and path depths.
type graphTables struct {
	parent      []int // parent node index, -1 for the trunk
	parentStage []int // routing stage in the parent, -1 for the trunk
	entryDepth  []int // exit points evaluated on the path before the node
	entryOps    []float64
	base        []int // global index of each node's exit 0
	exitOps     []float64
	exitNames   []string
	exitNode    []int
	exitLocal   []int
	maxDepth    int
	routeAt     [][]*Route
	byName      map[string]int
}

// LinearGraph wraps a linear CDLN in the trivial one-node graph — the
// degenerate special case every pre-graph entry point maps onto.
func LinearGraph(c *CDLN) *Graph {
	return &Graph{Nodes: []*Node{{Name: "trunk", Model: c}}}
}

// Trunk returns the root node's cascade.
func (g *Graph) Trunk() *CDLN { return g.Nodes[0].Model }

// IsLinear reports whether the graph is a single routeless node — the
// degenerate case whose serialization and wire encodings stay in the
// pre-graph v1 formats.
func (g *Graph) IsLinear() bool {
	return len(g.Nodes) == 1 && len(g.Nodes[0].Routes) == 0
}

// Validate checks structural consistency — every node's CDLN, route
// targets, tree topology (no cycles, no orphans, no merges), branch input
// shapes and label mappings — and builds the derived routing tables. It
// must succeed before the graph is walked; NewGraphSession calls it.
func (g *Graph) Validate() error {
	if len(g.Nodes) == 0 {
		return fmt.Errorf("core: graph has no nodes")
	}
	trunkClasses := 0
	byName := make(map[string]int, len(g.Nodes))
	for ni, n := range g.Nodes {
		if n == nil || n.Model == nil {
			return fmt.Errorf("core: graph node %d is nil or has no model", ni)
		}
		if err := n.Model.Validate(); err != nil {
			return fmt.Errorf("core: graph node %d (%s): %w", ni, n.Name, err)
		}
		if ni == 0 {
			trunkClasses = n.Model.Arch.NumClasses
		}
		if ni > 0 && n.Name == "" {
			return fmt.Errorf("core: graph branch node %d has no name", ni)
		}
		if n.Name != "" {
			if prev, dup := byName[n.Name]; dup {
				return fmt.Errorf("core: graph nodes %d and %d share the name %q", prev, ni, n.Name)
			}
			byName[n.Name] = ni
		}
		if n.Labels == nil {
			if n.Model.Arch.NumClasses != trunkClasses {
				return fmt.Errorf("core: graph node %d (%s) has %d classes but no label mapping onto the trunk's %d",
					ni, n.Name, n.Model.Arch.NumClasses, trunkClasses)
			}
		} else {
			if len(n.Labels) != n.Model.Arch.NumClasses {
				return fmt.Errorf("core: graph node %d (%s) has %d labels for %d classes",
					ni, n.Name, len(n.Labels), n.Model.Arch.NumClasses)
			}
			seen := make(map[int]bool, len(n.Labels))
			for li, l := range n.Labels {
				if l < 0 || l >= trunkClasses {
					return fmt.Errorf("core: graph node %d (%s) label %d maps to %d outside [0,%d)",
						ni, n.Name, li, l, trunkClasses)
				}
				if seen[l] {
					return fmt.Errorf("core: graph node %d (%s) maps two classes to label %d", ni, n.Name, l)
				}
				seen[l] = true
			}
		}
	}

	// Route structure plus the unique-parent half of the tree check: each
	// branch node is targeted by exactly one route (possibly by several
	// class cells of that route), so parentage — and with it entry depth
	// and entry cost — is well-defined.
	parent := make([]int, len(g.Nodes))
	parentStage := make([]int, len(g.Nodes))
	for i := range parent {
		parent[i], parentStage[i] = -1, -1
	}
	routeAt := make([][]*Route, len(g.Nodes))
	for ni, n := range g.Nodes {
		routeAt[ni] = make([]*Route, len(n.Model.Stages))
		for ri := range n.Routes {
			r := &n.Routes[ri]
			if r.Stage < 0 || r.Stage >= len(n.Model.Stages) {
				return fmt.Errorf("core: graph node %d (%s) route at stage %d outside [0,%d)",
					ni, n.Name, r.Stage, len(n.Model.Stages))
			}
			if routeAt[ni][r.Stage] != nil {
				return fmt.Errorf("core: graph node %d (%s) has two routes at stage %d", ni, n.Name, r.Stage)
			}
			if want := n.Model.Stages[r.Stage].LC.Out; len(r.Branch) != want {
				return fmt.Errorf("core: graph node %d (%s) route at stage %d has %d branch cells for %d classes",
					ni, n.Name, r.Stage, len(r.Branch), want)
			}
			routeAt[ni][r.Stage] = r
			for class, t := range r.Branch {
				if t == -1 {
					continue
				}
				if t <= 0 || t >= len(g.Nodes) {
					return fmt.Errorf("core: graph node %d (%s) route at stage %d class %d targets node %d outside (0,%d)",
						ni, n.Name, r.Stage, class, t, len(g.Nodes))
				}
				if parent[t] != -1 && (parent[t] != ni || parentStage[t] != r.Stage) {
					return fmt.Errorf("core: graph node %d (%s) targeted by two routes (nodes %d and %d) — branches must form a tree",
						t, g.Nodes[t].Name, parent[t], ni)
				}
				parent[t], parentStage[t] = ni, r.Stage
				// The routed activation is the parent's tap output at the
				// router stage; the branch network must accept it as-is.
				wantShape := n.Model.Arch.Net.ShapeAt(n.Model.Stages[r.Stage].Tap)
				gotShape := g.Nodes[t].Model.Arch.Net.InShape
				if !equalShape(wantShape, gotShape) {
					return fmt.Errorf("core: graph node %d (%s) input shape %v does not match parent tap shape %v",
						t, g.Nodes[t].Name, gotShape, wantShape)
				}
			}
		}
	}
	for ni := 1; ni < len(g.Nodes); ni++ {
		if parent[ni] == -1 {
			return fmt.Errorf("core: graph node %d (%s) is an orphan — no route targets it", ni, g.Nodes[ni].Name)
		}
	}
	// Reachability from the trunk completes the tree check: with unique
	// parents, an unreachable node means a parent cycle detached from the
	// root.
	reached := make([]bool, len(g.Nodes))
	reached[0] = true
	order := make([]int, 0, len(g.Nodes))
	order = append(order, 0)
	for qi := 0; qi < len(order); qi++ {
		ni := order[qi]
		for _, r := range routeAt[ni] {
			if r == nil {
				continue
			}
			for _, t := range r.Branch {
				if t > 0 && !reached[t] {
					reached[t] = true
					order = append(order, t)
				}
			}
		}
	}
	for ni := range g.Nodes {
		if !reached[ni] {
			return fmt.Errorf("core: graph node %d (%s) is unreachable from the trunk — route cycle", ni, g.Nodes[ni].Name)
		}
	}

	// Derived tables, in BFS order so parents are costed before children.
	tab := &graphTables{
		parent:      parent,
		parentStage: parentStage,
		entryDepth:  make([]int, len(g.Nodes)),
		entryOps:    make([]float64, len(g.Nodes)),
		base:        make([]int, len(g.Nodes)),
		routeAt:     routeAt,
		byName:      byName,
	}
	localOps := make([][]float64, len(g.Nodes))
	nExits := 0
	for ni, n := range g.Nodes {
		tab.base[ni] = nExits
		nExits += len(n.Model.Stages) + 1
		localOps[ni] = n.Model.ExitOps()
	}
	tab.exitOps = make([]float64, nExits)
	tab.exitNames = make([]string, nExits)
	tab.exitNode = make([]int, nExits)
	tab.exitLocal = make([]int, nExits)
	for _, ni := range order {
		n := g.Nodes[ni]
		if p := parent[ni]; p >= 0 {
			// An input enters the branch having evaluated the parent path's
			// exits through the router stage — classifier included, since
			// routing consults its scores.
			tab.entryDepth[ni] = tab.entryDepth[p] + parentStage[ni] + 1
			tab.entryOps[ni] = tab.entryOps[p] + localOps[p][parentStage[ni]]
		}
		for li := 0; li <= len(n.Model.Stages); li++ {
			gi := tab.base[ni] + li
			tab.exitOps[gi] = tab.entryOps[ni] + localOps[ni][li]
			tab.exitNode[gi] = ni
			tab.exitLocal[gi] = li
			name := n.Model.ExitName(li)
			if ni > 0 {
				name = n.Name + "/" + name
			}
			tab.exitNames[gi] = name
		}
		if d := tab.entryDepth[ni] + len(n.Model.Stages); d > tab.maxDepth {
			tab.maxDepth = d
		}
	}
	g.tab = tab
	return nil
}

// tables returns the derived routing tables, validating on first use.
// Accessors panic on an invalid graph — network-facing callers validate
// explicitly first, as with CDLN.
func (g *Graph) tables() *graphTables {
	if g.tab == nil {
		if err := g.Validate(); err != nil {
			panic(fmt.Sprintf("core: invalid graph: %v", err))
		}
	}
	return g.tab
}

func equalShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// NumExits returns the number of exit points across all nodes (each node's
// stages plus its FC terminator). For a linear graph this equals the
// trunk's NumExits, and global exit indices coincide with the classic
// linear StageIndex.
func (g *Graph) NumExits() int { return len(g.tables().exitOps) }

// ExitName returns the display name of global exit point i — the node's
// local exit name, qualified with the branch name for non-trunk nodes
// ("even/O1", "even/FC").
func (g *Graph) ExitName(i int) string { return g.tables().exitNames[i] }

// ExitOps returns a copy of the per-exit dynamic op cost table in global
// exit order: the cost of the whole root-to-exit path (parent layers and
// classifiers through the router, then the branch's own).
func (g *Graph) ExitOps() []float64 {
	return append([]float64(nil), g.tables().exitOps...)
}

// BaselineOps returns the trunk's unconditioned full-pass cost — the
// normalization denominator, as for a linear CDLN.
func (g *Graph) BaselineOps() float64 { return g.Trunk().BaselineOps() }

// MaxDepth returns the depth of the deepest exit point on any
// root-to-leaf path: the number of cascade stages evaluated before the
// deepest FC. For a linear graph this is len(Stages), so
// ExitPolicy.MaxExit keeps its exact pre-graph meaning.
func (g *Graph) MaxDepth() int { return g.tables().maxDepth }

// ExitIndex returns the global index of node's local exit point (stage
// index, or the node's stage count for its FC).
func (g *Graph) ExitIndex(node, local int) int {
	t := g.tables()
	if node < 0 || node >= len(g.Nodes) {
		panic(fmt.Sprintf("core: graph node %d outside [0,%d)", node, len(g.Nodes)))
	}
	if local < 0 || local > len(g.Nodes[node].Model.Stages) {
		panic(fmt.Sprintf("core: node %d exit %d outside [0,%d]", node, local, len(g.Nodes[node].Model.Stages)))
	}
	return t.base[node] + local
}

// NodeOfExit resolves a global exit index to its (node, local exit) pair.
func (g *Graph) NodeOfExit(i int) (node, local int) {
	t := g.tables()
	return t.exitNode[i], t.exitLocal[i]
}

// ExitDepth returns the path depth of global exit point i: how many exit
// points an input evaluates before exiting there (router classifiers
// included). Exits at equal depth on different paths cost different ops
// but satisfy the same MaxExit cap.
func (g *Graph) ExitDepth(i int) int {
	t := g.tables()
	return t.entryDepth[t.exitNode[i]] + t.exitLocal[i]
}

// EntryDepth returns the path depth at which inputs enter the node (0 for
// the trunk).
func (g *Graph) EntryDepth(node int) int { return g.tables().entryDepth[node] }

// ParentOf returns the node's parent and the parent stage whose route
// targets it, or (-1, -1) for the trunk.
func (g *Graph) ParentOf(node int) (parent, stage int) {
	t := g.tables()
	return t.parent[node], t.parentStage[node]
}

// FoldExitCosts lifts per-node local exit-cost vectors into the global
// per-exit cost table: local[n][j] is the cost of node n's exit j counted
// from the node's own entry (the shape CDLN.ExitOps and
// energy.ExitEnergies produce), and the result charges each global exit
// its whole root-to-exit path — parent costs through the router stage
// (classifier included, since routing consults its scores) plus the
// node's own. This is exactly how the graph's op table is derived, made
// available so other additive cost models (pJ, latency) fold identically.
func (g *Graph) FoldExitCosts(local [][]float64) []float64 {
	t := g.tables()
	if len(local) != len(g.Nodes) {
		panic(fmt.Sprintf("core: %d cost vectors for %d nodes", len(local), len(g.Nodes)))
	}
	entry := make([]float64, len(g.Nodes))
	out := make([]float64, len(t.exitOps))
	// base order is declaration order, but entry costs need parents first;
	// BFS order from the trunk guarantees that.
	done := make([]bool, len(g.Nodes))
	for remaining := len(g.Nodes); remaining > 0; {
		progressed := false
		for ni, n := range g.Nodes {
			if done[ni] {
				continue
			}
			if p := t.parent[ni]; p >= 0 {
				if !done[p] {
					continue
				}
				entry[ni] = entry[p] + local[p][t.parentStage[ni]]
			}
			if len(local[ni]) != len(n.Model.Stages)+1 {
				panic(fmt.Sprintf("core: node %d cost vector has %d entries for %d exits",
					ni, len(local[ni]), len(n.Model.Stages)+1))
			}
			for li := 0; li <= len(n.Model.Stages); li++ {
				out[t.base[ni]+li] = entry[ni] + local[ni][li]
			}
			done[ni] = true
			remaining--
			progressed = true
		}
		if !progressed {
			panic("core: FoldExitCosts stuck — invalid parent tables")
		}
	}
	return out
}

// NodeIndex resolves a node name ("" resolves to the trunk).
func (g *Graph) NodeIndex(name string) (int, bool) {
	if name == "" {
		return 0, true
	}
	ni, ok := g.tables().byName[name]
	return ni, ok
}

// routeFor returns the route at a node's stage, or nil.
func (g *Graph) routeFor(node, stage int) *Route { return g.tables().routeAt[node][stage] }

// mapLabel lifts a node-local predicted class into the trunk's global
// label space.
func (g *Graph) mapLabel(node, class int) int {
	if labels := g.Nodes[node].Labels; labels != nil {
		return labels[class]
	}
	return class
}

// SplitPosOf returns the baseline-layer position of the activation handed
// across a tier split at (node, splitStage) — the node-local SplitPos. A
// branch-entry handoff is (node, 0): the activation is the branch's input,
// zero branch layers run.
func (g *Graph) SplitPosOf(node, splitStage int) int {
	g.tables()
	if node < 0 || node >= len(g.Nodes) {
		panic(fmt.Sprintf("core: graph node %d outside [0,%d)", node, len(g.Nodes)))
	}
	return g.Nodes[node].Model.SplitPos(splitStage)
}

// ValidateResume checks a tier-split handoff against this graph: the node
// must exist and (fromStage, pos, shape) must satisfy the node model's
// ValidateResume. It is the graph form of the one validation shared by
// every resume entry point — Session.ResumeAt, the serve resume handlers
// and the edgecloud Loopback.
func (g *Graph) ValidateResume(node, fromStage, pos int, shape []int) error {
	g.tables()
	if node < 0 || node >= len(g.Nodes) {
		return fmt.Errorf("core: resume node %d outside [0,%d)", node, len(g.Nodes))
	}
	if err := g.Nodes[node].Model.ValidateResume(fromStage, pos, shape); err != nil {
		if node > 0 {
			return fmt.Errorf("core: branch %s: %w", g.Nodes[node].Name, err)
		}
		return err
	}
	return nil
}

// ValidatePolicy checks a policy against this graph: δ fields as for a
// linear CDLN, StageDeltas against the trunk's stage count (per-stage
// overrides apply to trunk stages only; branch stages resolve their own
// trained thresholds under the policy's global Delta), and MaxExit as a
// path-depth cap in [0, MaxDepth].
func (g *Graph) ValidatePolicy(p ExitPolicy) error {
	if err := g.Trunk().ValidatePolicy(ExitPolicy{Delta: p.Delta, StageDeltas: p.StageDeltas, Trace: p.Trace}); err != nil {
		return err
	}
	if p.MaxExit > g.MaxDepth() {
		return fmt.Errorf("core: policy max exit %d beyond the deepest path depth %d", p.MaxExit, g.MaxDepth())
	}
	return nil
}

// maxExit normalizes a policy's depth cap against this graph: negative or
// beyond-the-deepest-path caps mean no cap. The cap is per path: an input
// that has evaluated MaxExit exit points exits at the next one
// unconditionally, whichever node it is in.
func (g *Graph) maxExit(p ExitPolicy) int {
	if p.MaxExit < 0 || p.MaxExit > g.MaxDepth() {
		return g.MaxDepth()
	}
	return p.MaxExit
}

// MaxExitForOps converts an operation budget into the deepest path-depth
// cap whose worst-case forced-exit cost fits it, across every path of the
// graph — the graph form of CDLN.MaxExitForOps (identical on linear
// graphs). It errors when even depth 0 (the trunk's first exit) exceeds
// the budget.
func (g *Graph) MaxExitForOps(budget float64) (int, error) {
	if err := validateOpsBudget(budget); err != nil {
		return 0, err
	}
	t := g.tables()
	best := -1
	for cap := 0; cap <= t.maxDepth; cap++ {
		worst := 0.0
		for ni, n := range g.Nodes {
			if t.entryDepth[ni] > cap {
				continue // unreachable under this cap
			}
			local := cap - t.entryDepth[ni]
			if local > len(n.Model.Stages) {
				local = len(n.Model.Stages)
			}
			if ops := t.exitOps[t.base[ni]+local]; ops > worst {
				worst = ops
			}
		}
		if worst <= budget {
			best = cap
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("core: ops budget %v below the cheapest exit (depth 0 costs %v)", budget, t.exitOps[0])
	}
	return best, nil
}

// Clone returns a graph replica safe for concurrent use, cloning every
// node's cascade (weights shared, caches private) and copying routes and
// label maps.
func (g *Graph) Clone() *Graph {
	nodes := make([]*Node, len(g.Nodes))
	for i, n := range g.Nodes {
		routes := make([]Route, len(n.Routes))
		for ri, r := range n.Routes {
			routes[ri] = Route{Stage: r.Stage, Branch: append([]int(nil), r.Branch...)}
		}
		var labels []int
		if n.Labels != nil {
			labels = append([]int(nil), n.Labels...)
		}
		nodes[i] = &Node{Name: n.Name, Model: n.Model.Clone(), Labels: labels, Routes: routes}
	}
	return &Graph{Nodes: nodes}
}

// WithBranch returns a copy of the graph with the named node's cascade
// replaced — the registry's branch hot-swap primitive. The replacement is
// validated in place in the new graph (input shape against the parent
// tap, label count, stage structure), so an incompatible branch never
// displaces a serving one. The trunk may be named too ("" or the trunk's
// name), which replaces the root cascade.
func (g *Graph) WithBranch(name string, model *CDLN) (*Graph, error) {
	ni, ok := g.NodeIndex(name)
	if !ok {
		return nil, fmt.Errorf("core: graph has no node %q", name)
	}
	out := g.Clone()
	out.Nodes[ni].Model = model.Clone()
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// Summary renders the graph structure with per-exit path costs.
func (g *Graph) Summary() string {
	t := g.tables()
	var b strings.Builder
	fmt.Fprintf(&b, "Graph: %d nodes, %d exits, max depth %d\n", len(g.Nodes), len(t.exitOps), t.maxDepth)
	for ni, n := range g.Nodes {
		name := n.Name
		if name == "" {
			name = "trunk"
		}
		if p := t.parent[ni]; p >= 0 {
			fmt.Fprintf(&b, "  node %d %q (from node %d stage %d, entry depth %d)\n",
				ni, name, p, t.parentStage[ni], t.entryDepth[ni])
		} else {
			fmt.Fprintf(&b, "  node %d %q (trunk)\n", ni, name)
		}
		for li := 0; li <= len(n.Model.Stages); li++ {
			gi := t.base[ni] + li
			fmt.Fprintf(&b, "    exit %-3d %-12s depth=%d ops=%.0f\n",
				gi, t.exitNames[gi], t.entryDepth[ni]+li, t.exitOps[gi])
		}
	}
	return b.String()
}
