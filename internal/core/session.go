package core

import (
	"fmt"
	"time"

	"cdl/internal/tensor"
)

// Session is a reusable single-goroutine classifier over a routing graph.
// It owns a private replica of every node's cascade (weights shared with
// the source model, caches private) plus all scratch state Algorithm 2
// needs — the global per-exit cost vector and one score buffer per stage
// per node — so repeated Classify calls perform no cascade-level
// allocation and no re-derivation of exit costs.
//
// A Session over LinearGraph(c) (what NewSession builds) behaves exactly
// as the pre-graph session over c did: a routeless trunk walks the
// identical stage loop, so every record is bit-identical to CDLN.Classify.
// The graph walk only diverges where a Route actually fires.
//
// A Session is not safe for concurrent use; create one per worker.
type Session struct {
	graph   *Graph
	model   *CDLN // trunk replica, the entry cascade
	exitOps []float64
	scores  [][]*tensor.T // scores[node][stage], same buffers serial and batched

	// batch-path scratch (batch.go): the stacked-scores buffer and the
	// active-row index map, grown on demand and reused across
	// ClassifyBatch/ResumeBatch calls.
	bscores []float64
	bidx    []int

	// observer, when set, sees one StageEvent per executed unit of
	// cascade work (observe.go). Nil costs one pointer check per stage.
	observer func(StageEvent)
}

// NewSession validates the model and returns a warm session over a private
// replica of it, as the trunk of the trivial linear graph. As with Clone,
// the baseline network's weight storage is shared with the source model,
// but the stage classifiers are deep-copied: later updates to the source's
// LC weights, thresholds or structure are NOT visible to the session —
// build new sessions after retraining.
func NewSession(c *CDLN) (*Session, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return newGraphSession(LinearGraph(c.Clone())), nil
}

// NewGraphSession validates the routing graph and returns a warm session
// over a private replica of it. Session sharing rules are as for
// NewSession, applied to every node.
func NewGraphSession(g *Graph) (*Session, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return newGraphSession(g.Clone()), nil
}

// newGraphSession wraps an already-private replica, validating it to build
// the derived routing tables on the replica.
func newGraphSession(g *Graph) *Session {
	if err := g.Validate(); err != nil {
		panic(fmt.Sprintf("core: session over invalid graph: %v", err))
	}
	s := &Session{
		graph:   g,
		model:   g.Trunk(),
		exitOps: g.ExitOps(),
		scores:  make([][]*tensor.T, len(g.Nodes)),
	}
	for ni, n := range g.Nodes {
		s.scores[ni] = make([]*tensor.T, len(n.Model.Stages))
		for i, st := range n.Model.Stages {
			s.scores[ni][i] = tensor.New(st.LC.Out)
		}
	}
	return s
}

// Model returns the session's private trunk CDLN replica. Mutating its
// Delta or StageDeltas between calls is allowed (thresholds are read per
// call); structural mutation invalidates the session.
func (s *Session) Model() *CDLN { return s.model }

// Graph returns the session's private routing graph replica (a one-node
// linear graph for NewSession-built sessions). Treat it as read-only.
func (s *Session) Graph() *Graph { return s.graph }

// Classify runs Algorithm 2 on one input with the model's trained
// thresholds, reusing the session's scratch buffers. On a linear graph
// results are bit-identical to CDLN.Classify on the same weights; on a
// routed graph undecided inputs may descend into branch cascades.
func (s *Session) Classify(x *tensor.T) ExitRecord {
	return s.classifyFrom(x, 0, 0, 0, -1)
}

// ClassifyDelta is Classify with a per-call confidence threshold: delta in
// [0,1] overrides every node's Delta and StageDeltas for this input only
// (the paper's §III.B runtime accuracy/efficiency knob, exposed per request
// by the serving layer); a negative delta keeps the trained thresholds.
func (s *Session) ClassifyDelta(x *tensor.T, delta float64) ExitRecord {
	return s.classifyFrom(x, 0, 0, 0, delta)
}

// classifyFrom is the serial graph walk: evaluate node's cascade from
// stage `from` (activation act after the node's first pos baseline
// layers), exiting where the activation module fires, descending into a
// branch where a route fires, and terminating at the node's FC otherwise.
// It performs, stage for stage, the identical floating-point operations in
// the identical order as CDLN.runStages/finalExit — routing adds no
// arithmetic, only an argmax read of scores already computed — which is
// what keeps the one-node graph bit-identical to the linear cascade.
func (s *Session) classifyFrom(act *tensor.T, node, from, pos int, delta float64) ExitRecord {
	n := s.graph.Nodes[node]
	c := n.Model
	for i := from; i < len(c.Stages); i++ {
		var evStart time.Time
		if s.observer != nil {
			evStart = time.Now()
		}
		st := c.Stages[i]
		act = c.Arch.Net.ForwardRange(act, pos, st.Tap)
		pos = st.Tap
		scores := s.scores[node][i]
		st.LC.ScoresInto(act, scores)
		d := c.Delta
		if c.StageDeltas != nil {
			d = c.StageDeltas[i]
		}
		if delta >= 0 {
			d = delta
		}
		exit := c.Rule.ShouldExit(scores, d)
		if s.observer != nil {
			s.observer(StageEvent{Kind: StageForward, Node: node, Stage: i, Start: evStart, End: time.Now()})
		}
		if exit {
			conf, label := scores.Max()
			gi := s.graph.ExitIndex(node, i)
			return ExitRecord{
				Node:       node,
				StageIndex: gi,
				StageName:  s.graph.ExitName(gi),
				Label:      s.graph.mapLabel(node, label),
				Confidence: conf,
				Ops:        s.exitOps[gi],
			}
		}
		if r := s.graph.routeFor(node, i); r != nil {
			_, label := scores.Max()
			if t := r.Branch[label]; t >= 0 {
				if s.observer != nil {
					now := time.Now()
					s.observer(StageEvent{Kind: StageRoute, Node: node, Stage: i, Branch: t, Start: now, End: now})
				}
				return s.classifyFrom(act, t, 0, 0, delta)
			}
		}
	}
	var evStart time.Time
	if s.observer != nil {
		evStart = time.Now()
	}
	act = c.Arch.Net.ForwardRange(act, pos, len(c.Arch.Net.Layers))
	if s.observer != nil {
		s.observer(StageEvent{Kind: StageFinal, Node: node, Stage: len(c.Stages), Start: evStart, End: time.Now()})
	}
	conf, label := act.Max()
	gi := s.graph.ExitIndex(node, len(c.Stages))
	return ExitRecord{
		Node:       node,
		StageIndex: gi,
		StageName:  s.graph.ExitName(gi),
		Label:      s.graph.mapLabel(node, label),
		Confidence: conf,
		Ops:        s.exitOps[gi],
	}
}

// PrefixResult is the outcome of the edge-side half of a tier-split
// classification (ClassifyPrefix): either the input exited locally and
// Record is final, or the cascade must continue past the split and
// (Node, FromStage, Pos, Activation) describe what to hand to ResumeAt on
// the other tier.
type PrefixResult struct {
	// Record is the final classification; valid only when Exited.
	Record ExitRecord
	// Exited reports whether a prefix stage's activation module fired.
	Exited bool
	// Activation is the intermediate activation at the handoff point; valid
	// only when !Exited. It aliases the session's layer forward caches, so
	// it must be consumed (serialized or copied) before the session's next
	// classification.
	Activation *tensor.T
	// Node is the graph node the other tier must resume in: 0 when the
	// input reached the trunk split stage undecided, or a branch index when
	// a trunk route fired before the split (the edge owns only the trunk
	// prefix, so a routed input is handed off at the branch's entry).
	Node int
	// FromStage is the node-local stage to resume from: the split stage
	// for an unrouted handoff, 0 for a branch-entry handoff.
	FromStage int
	// Pos is the number of the node's baseline layers composing Activation
	// — Graph.SplitPosOf(Node, FromStage), recorded here so transports
	// need not re-derive it.
	Pos int
}

// ClassifyPrefix runs only the first splitStage trunk cascade stages — the
// edge tier's share of Algorithm 2. If any of those stages' activation
// modules fires, the result carries the final ExitRecord (bit-identical to
// what the monolithic Classify would produce, including full-pipeline Ops
// accounting); otherwise it carries the intermediate activation to resume
// from — at (trunk, splitStage) normally, or at a branch's entry when a
// trunk route fired before the split. splitStage must be in
// [0, len(trunk.Stages)] — 0 owns no stages and always defers,
// len(Stages) owns the whole trunk and defers only the FC tail (plus any
// routed branches). delta ≥ 0 overrides the trained thresholds as in
// ClassifyDelta.
func (s *Session) ClassifyPrefix(x *tensor.T, splitStage int, delta float64) PrefixResult {
	c := s.model
	c.SplitPos(splitStage) // validates splitStage
	act, pos := x, 0
	for i := 0; i < splitStage; i++ {
		var evStart time.Time
		if s.observer != nil {
			evStart = time.Now()
		}
		st := c.Stages[i]
		act = c.Arch.Net.ForwardRange(act, pos, st.Tap)
		pos = st.Tap
		scores := s.scores[0][i]
		st.LC.ScoresInto(act, scores)
		d := c.Delta
		if c.StageDeltas != nil {
			d = c.StageDeltas[i]
		}
		if delta >= 0 {
			d = delta
		}
		exit := c.Rule.ShouldExit(scores, d)
		if s.observer != nil {
			s.observer(StageEvent{Kind: StageForward, Node: 0, Stage: i, Start: evStart, End: time.Now()})
		}
		if exit {
			conf, label := scores.Max()
			return PrefixResult{Record: ExitRecord{
				StageIndex: i,
				StageName:  s.graph.ExitName(i),
				Label:      s.graph.mapLabel(0, label),
				Confidence: conf,
				Ops:        s.exitOps[i],
			}, Exited: true}
		}
		if r := s.graph.routeFor(0, i); r != nil {
			_, label := scores.Max()
			if t := r.Branch[label]; t >= 0 {
				if s.observer != nil {
					now := time.Now()
					s.observer(StageEvent{Kind: StageRoute, Node: 0, Stage: i, Branch: t, Start: now, End: now})
				}
				return PrefixResult{Activation: act, Node: t, FromStage: 0, Pos: 0}
			}
		}
	}
	return PrefixResult{Activation: act, Node: 0, FromStage: splitStage, Pos: s.model.SplitPos(splitStage)}
}

// Resume continues Algorithm 2 past a tier split on the trunk: act is the
// activation a ClassifyPrefix(…, fromStage, …) deferred at (trunk,
// fromStage), and the remaining trunk stages plus any routed branches and
// the FC tail run here. Resume(x, 0, delta) is exactly
// ClassifyDelta(x, delta), and for any split the pair
// ClassifyPrefix+ResumeAt performs the same floating-point operations in
// the same order as the monolithic call — tier-split results are
// bit-identical.
//
// The activation's shape must match the model at that position; Resume
// panics on a mismatch (callers decoding activations from the network must
// validate first with CDLN.ValidateResume or Graph.ValidateResume).
func (s *Session) Resume(act *tensor.T, fromStage int, delta float64) ExitRecord {
	return s.ResumeAt(act, 0, fromStage, delta)
}

// ResumeAt continues Algorithm 2 past a tier split at any graph node —
// the graph form of Resume, accepting the (Node, FromStage) pair a
// PrefixResult carries (branch-entry handoffs resume at (branch, 0)).
func (s *Session) ResumeAt(act *tensor.T, node, fromStage int, delta float64) ExitRecord {
	if node < 0 || node >= len(s.graph.Nodes) {
		panic(fmt.Sprintf("core: ResumeAt node %d outside [0,%d)", node, len(s.graph.Nodes)))
	}
	pos := s.graph.SplitPosOf(node, fromStage) // validates fromStage
	if err := s.graph.ValidateResume(node, fromStage, pos, act.Shape()); err != nil {
		panic(fmt.Sprintf("core: Resume: %v", err))
	}
	return s.classifyFrom(act, node, fromStage, pos, delta)
}
