package core

import (
	"cdl/internal/tensor"
)

// Session is a reusable single-goroutine classifier over a CDLN. It owns a
// private replica of the cascade (weights shared with the source model,
// caches private) plus all scratch state Algorithm 2 needs — the per-exit
// cost vector and one score buffer per stage — so repeated Classify calls
// perform no cascade-level allocation and no re-derivation of exit costs.
//
// This is the serving-path counterpart of CDLN.Classify: Classify clones
// nothing but recomputes ExitOps and allocates score tensors on every call,
// while Evaluate historically paid one Clone per goroutine per evaluation.
// A Session front-loads both costs once, which is what lets a server keep a
// pool of warm replicas instead of cloning per request.
//
// A Session is not safe for concurrent use; create one per worker.
type Session struct {
	model   *CDLN
	exitOps []float64
	scores  []*tensor.T
}

// NewSession validates the model and returns a warm session over a private
// replica of it. As with Clone, the baseline network's weight storage is
// shared with the source model, but the stage classifiers are deep-copied:
// later updates to the source's LC weights, thresholds or structure are NOT
// visible to the session — build new sessions after retraining.
func NewSession(c *CDLN) (*Session, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return newSession(c.Clone()), nil
}

// newSession wraps an already-private, already-validated replica.
func newSession(replica *CDLN) *Session {
	s := &Session{
		model:   replica,
		exitOps: replica.ExitOps(),
		scores:  make([]*tensor.T, len(replica.Stages)),
	}
	for i, st := range replica.Stages {
		s.scores[i] = tensor.New(st.LC.Out)
	}
	return s
}

// Model returns the session's private CDLN replica. Mutating its Delta or
// StageDeltas between calls is allowed (thresholds are read per call);
// structural mutation invalidates the session.
func (s *Session) Model() *CDLN { return s.model }

// Classify runs Algorithm 2 on one input with the model's trained
// thresholds, reusing the session's scratch buffers. Results are
// bit-identical to CDLN.Classify on the same weights.
func (s *Session) Classify(x *tensor.T) ExitRecord {
	return s.model.classify(x, s.exitOps, s.scores, -1)
}

// ClassifyDelta is Classify with a per-call confidence threshold: delta in
// [0,1] overrides the model's Delta and StageDeltas for this input only
// (the paper's §III.B runtime accuracy/efficiency knob, exposed per request
// by the serving layer); a negative delta keeps the trained thresholds.
func (s *Session) ClassifyDelta(x *tensor.T, delta float64) ExitRecord {
	return s.model.classify(x, s.exitOps, s.scores, delta)
}
