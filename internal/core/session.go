package core

import (
	"fmt"

	"cdl/internal/tensor"
)

// Session is a reusable single-goroutine classifier over a CDLN. It owns a
// private replica of the cascade (weights shared with the source model,
// caches private) plus all scratch state Algorithm 2 needs — the per-exit
// cost vector and one score buffer per stage — so repeated Classify calls
// perform no cascade-level allocation and no re-derivation of exit costs.
//
// This is the serving-path counterpart of CDLN.Classify: Classify clones
// nothing but recomputes ExitOps and allocates score tensors on every call,
// while Evaluate historically paid one Clone per goroutine per evaluation.
// A Session front-loads both costs once, which is what lets a server keep a
// pool of warm replicas instead of cloning per request.
//
// A Session is not safe for concurrent use; create one per worker.
type Session struct {
	model   *CDLN
	exitOps []float64
	scores  []*tensor.T

	// batch-path scratch (batch.go): the stacked-scores buffer and the
	// active-row index map, grown on demand and reused across
	// ClassifyBatch/ResumeBatch calls.
	bscores []float64
	bidx    []int
}

// NewSession validates the model and returns a warm session over a private
// replica of it. As with Clone, the baseline network's weight storage is
// shared with the source model, but the stage classifiers are deep-copied:
// later updates to the source's LC weights, thresholds or structure are NOT
// visible to the session — build new sessions after retraining.
func NewSession(c *CDLN) (*Session, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return newSession(c.Clone()), nil
}

// newSession wraps an already-private, already-validated replica.
func newSession(replica *CDLN) *Session {
	s := &Session{
		model:   replica,
		exitOps: replica.ExitOps(),
		scores:  make([]*tensor.T, len(replica.Stages)),
	}
	for i, st := range replica.Stages {
		s.scores[i] = tensor.New(st.LC.Out)
	}
	return s
}

// Model returns the session's private CDLN replica. Mutating its Delta or
// StageDeltas between calls is allowed (thresholds are read per call);
// structural mutation invalidates the session.
func (s *Session) Model() *CDLN { return s.model }

// Classify runs Algorithm 2 on one input with the model's trained
// thresholds, reusing the session's scratch buffers. Results are
// bit-identical to CDLN.Classify on the same weights.
func (s *Session) Classify(x *tensor.T) ExitRecord {
	return s.model.classify(x, s.exitOps, s.scores, -1)
}

// ClassifyDelta is Classify with a per-call confidence threshold: delta in
// [0,1] overrides the model's Delta and StageDeltas for this input only
// (the paper's §III.B runtime accuracy/efficiency knob, exposed per request
// by the serving layer); a negative delta keeps the trained thresholds.
func (s *Session) ClassifyDelta(x *tensor.T, delta float64) ExitRecord {
	return s.model.classify(x, s.exitOps, s.scores, delta)
}

// PrefixResult is the outcome of the edge-side half of a tier-split
// classification (ClassifyPrefix): either the input exited locally and
// Record is final, or the cascade must continue past the split and
// Activation/Pos describe what to hand to Resume on the other tier.
type PrefixResult struct {
	// Record is the final classification; valid only when Exited.
	Record ExitRecord
	// Exited reports whether a prefix stage's activation module fired.
	Exited bool
	// Activation is the intermediate activation at the split point; valid
	// only when !Exited. It aliases the session's layer forward caches, so
	// it must be consumed (serialized or copied) before the session's next
	// classification.
	Activation *tensor.T
	// Pos is the number of baseline layers composing Activation — the
	// CDLN.SplitPos of the split stage, recorded here so transports need
	// not re-derive it.
	Pos int
}

// ClassifyPrefix runs only the first splitStage cascade stages — the edge
// tier's share of Algorithm 2. If any of those stages' activation modules
// fires, the result carries the final ExitRecord (bit-identical to what the
// monolithic Classify would produce, including full-pipeline Ops
// accounting); otherwise it carries the intermediate activation to resume
// from. splitStage must be in [0, len(Stages)] — 0 owns no stages and
// always defers, len(Stages) owns the whole cascade and defers only the FC
// tail. delta ≥ 0 overrides the trained thresholds as in ClassifyDelta.
func (s *Session) ClassifyPrefix(x *tensor.T, splitStage int, delta float64) PrefixResult {
	pos := s.model.SplitPos(splitStage) // validates splitStage
	rec, exited, act, pos := s.model.runStages(x, 0, 0, splitStage, s.exitOps, s.scores, delta)
	if exited {
		return PrefixResult{Record: rec, Exited: true}
	}
	return PrefixResult{Activation: act, Pos: pos}
}

// Resume continues Algorithm 2 past a tier split: act is the activation a
// ClassifyPrefix(…, fromStage, …) deferred (sitting after
// CDLN.SplitPos(fromStage) baseline layers), and the remaining stages
// [fromStage, len(Stages)) plus the FC tail run here. Resume(x, 0, delta)
// is exactly ClassifyDelta(x, delta), and for any split the pair
// ClassifyPrefix+Resume performs the same floating-point operations in the
// same order as the monolithic call — tier-split results are bit-identical.
//
// The activation's shape must match the model at that position; Resume
// panics on a mismatch (callers decoding activations from the network must
// validate first with CDLN.ValidateResume).
func (s *Session) Resume(act *tensor.T, fromStage int, delta float64) ExitRecord {
	pos := s.model.SplitPos(fromStage) // validates fromStage
	if err := s.model.ValidateResume(fromStage, pos, act.Shape()); err != nil {
		panic(fmt.Sprintf("core: Resume: %v", err))
	}
	rec, exited, act, pos := s.model.runStages(act, pos, fromStage, len(s.model.Stages), s.exitOps, s.scores, delta)
	if exited {
		return rec
	}
	return s.model.finalExit(act, pos, s.exitOps)
}
