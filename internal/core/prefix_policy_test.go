package core

import (
	"testing"
)

// TestPrefixPolicyDelegation pins that the policy-aware prefix with a
// delta-only policy is exactly ClassifyPrefixBatch.
func TestPrefixPolicyDelegation(t *testing.T) {
	cdln, xs := splitCDLN(t, 61)
	a, _ := NewSession(cdln)
	b, _ := NewSession(cdln)
	for split := 0; split <= len(cdln.Stages); split++ {
		want := a.ClassifyPrefixBatch(xs, split, 0.55)
		got := b.ClassifyPrefixBatchPolicy(xs, split, ExitPolicy{Delta: 0.55, MaxExit: -1})
		for i := range want {
			if want[i].Exited != got[i].Exited {
				t.Fatalf("split %d sample %d: exited %v vs %v", split, i, got[i].Exited, want[i].Exited)
			}
			if want[i].Exited && !sameRecord(want[i].Record, got[i].Record) {
				t.Fatalf("split %d sample %d: record %+v vs %+v", split, i, got[i].Record, want[i].Record)
			}
		}
	}
}

// TestPrefixPolicyDepthCapBelowSplit is the edge tier's force-local
// shed: a depth cap below the split stage must resolve every input
// locally (all Exited, nothing to offload), with records identical to
// the fully-local ResumeBatchPolicy under the same policy.
func TestPrefixPolicyDepthCapBelowSplit(t *testing.T) {
	cdln, xs := splitCDLN(t, 62)
	if len(cdln.Stages) < 2 {
		t.Fatalf("fixture has %d stages, want ≥ 2", len(cdln.Stages))
	}
	split := len(cdln.Stages) // edge owns the whole conditional cascade
	for cap := 0; cap < split; cap++ {
		pol := DepthCapped(cap)
		a, _ := NewSession(cdln)
		b, _ := NewSession(cdln)
		want := a.ResumeBatchPolicy(xs, 0, pol)
		got := b.ClassifyPrefixBatchPolicy(xs, split, pol)
		for i := range got {
			if !got[i].Exited {
				t.Fatalf("cap %d sample %d: not exited — a capped prefix must resolve everything locally", cap, i)
			}
			if !sameRecord(got[i].Record, want[i]) {
				t.Fatalf("cap %d sample %d: prefix record %+v != batched policy record %+v", cap, i, got[i].Record, want[i])
			}
			if got[i].Record.StageIndex > cap {
				t.Fatalf("cap %d sample %d: exited at stage %d beyond the cap", cap, i, got[i].Record.StageIndex)
			}
		}
	}
}

func TestDepthCappedAndEqual(t *testing.T) {
	p := DepthCapped(2)
	if p.Delta != -1 || p.MaxExit != 2 || p.Trace || p.StageDeltas != nil {
		t.Fatalf("DepthCapped(2) = %+v", p)
	}
	if !p.Equal(DepthCapped(2)) {
		t.Error("DepthCapped(2) != itself")
	}
	if p.Equal(DepthCapped(1)) || p.Equal(DefaultExitPolicy()) {
		t.Error("distinct policies compare equal")
	}
	sd := ExitPolicy{Delta: -1, MaxExit: 2, StageDeltas: []float64{0.5, -1}}
	if sd.Equal(p) || p.Equal(sd) {
		t.Error("StageDeltas ignored by Equal")
	}
	sd2 := ExitPolicy{Delta: -1, MaxExit: 2, StageDeltas: []float64{0.5, -1}}
	if !sd.Equal(sd2) {
		t.Error("identical StageDeltas policies compare unequal")
	}
}
