package core

import (
	"cdl/internal/fixed"
)

// QuantizeCDLN returns a deep copy of the cascade whose baseline weights,
// biases and stage-classifier parameters are rounded to the given
// fixed-point format — the numeric precision the paper's 45 nm RTL
// datapaths would carry (hw.Tech45nm uses Q2.13). It reports the maximum
// absolute rounding error over all non-saturated parameters, so callers
// can verify the format has enough fractional bits for the trained model.
//
// Activations are not quantized here: with sigmoid networks every
// activation lies in [0,1], which Q2.13 represents with ≤2⁻¹⁴ error, an
// order of magnitude below the weight-rounding effect this function
// measures.
func QuantizeCDLN(c *CDLN, f fixed.Format) (*CDLN, float64, error) {
	if err := f.Validate(); err != nil {
		return nil, 0, err
	}
	if err := c.Validate(); err != nil {
		return nil, 0, err
	}
	q := c.Clone()
	// CDLN.Clone deep-copies the stage classifiers but shares baseline
	// weight storage; take private weight copies before rounding so the
	// float model stays intact.
	q.Arch.Net = q.Arch.Net.DeepClone()
	maxErr := 0.0
	for _, p := range q.Arch.Net.Params() {
		if e := f.QuantizeSlice(p.W.Data); e > maxErr {
			maxErr = e
		}
	}
	for _, s := range q.Stages {
		if e := f.QuantizeSlice(s.LC.W.Data); e > maxErr {
			maxErr = e
		}
		if e := f.QuantizeSlice(s.LC.B.Data); e > maxErr {
			maxErr = e
		}
	}
	return q, maxErr, nil
}
