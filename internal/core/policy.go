package core

// policy.go generalizes the per-call δ override into a structured exit
// policy — the request-shaped form of the paper's §III.B runtime knob. A
// single δ trades accuracy for efficiency uniformly; an ExitPolicy lets a
// caller shape the whole cascade per request: one δ, per-stage deltas, a
// hard cap on how deep the cascade may run (directly or via an operation
// budget), and how much detail the exit record should carry. The serving
// layer validates a policy once per request (CDLN.ValidatePolicy) and
// threads it unchanged through the replica pool into the batched cascade
// (Session.ResumeBatchPolicy).

import (
	"fmt"
	"math"
)

// ExitPolicy shapes how Algorithm 2 terminates for one request. The zero
// value is NOT the identity policy — use DefaultExitPolicy (negative Delta
// and MaxExit mean "keep the model's behaviour").
type ExitPolicy struct {
	// Delta overrides the model's Delta/StageDeltas for every stage when in
	// [0,1]; negative keeps the trained thresholds (ClassifyDelta
	// semantics).
	Delta float64
	// StageDeltas, when non-nil, overrides the threshold per stage: entry i
	// applies to stage i when in [0,1]; a negative entry falls back to
	// Delta (if set) and then the trained thresholds. Its length must equal
	// len(Stages).
	StageDeltas []float64
	// MaxExit caps the cascade depth: an input that has not exited by exit
	// point MaxExit exits there unconditionally — at stage MaxExit's linear
	// classifier when MaxExit < len(Stages), or at FC when MaxExit equals
	// len(Stages). Negative means no cap (the FC terminator, the model's
	// normal behaviour). This is the hard compute-budget knob: deeper
	// layers are never executed, whatever the confidences say.
	MaxExit int
	// Trace records the winning confidence at every exit point evaluated
	// for the input (ExitRecord.Trace), at the cost of one extra argmax per
	// stage per input.
	Trace bool
}

// DefaultExitPolicy is the identity policy: trained thresholds, full
// cascade, no trace.
func DefaultExitPolicy() ExitPolicy { return ExitPolicy{Delta: -1, MaxExit: -1} }

// deltaPolicy is the internal bridge from the legacy single-δ entry points.
func deltaPolicy(delta float64) ExitPolicy { return ExitPolicy{Delta: delta, MaxExit: -1} }

// DepthCapped returns the policy that keeps the trained thresholds but
// terminates the cascade at exit point maxExit unconditionally. This is
// the monotone cost knob the SLO controller (internal/control) actuates:
// under the exactly-one-score rule, cost is not monotone in δ (δ near 0
// forces full depth just like δ=1), but removing exit points strictly
// bounds the worst-case work per input.
func DepthCapped(maxExit int) ExitPolicy { return ExitPolicy{Delta: -1, MaxExit: maxExit} }

// Equal reports field-wise policy equality, including per-stage
// thresholds.
func (p ExitPolicy) Equal(o ExitPolicy) bool {
	if p.Delta != o.Delta || p.MaxExit != o.MaxExit || p.Trace != o.Trace {
		return false
	}
	if (p.StageDeltas == nil) != (o.StageDeltas == nil) || len(p.StageDeltas) != len(o.StageDeltas) {
		return false
	}
	for i, d := range p.StageDeltas {
		if d != o.StageDeltas[i] {
			return false
		}
	}
	return true
}

// ValidatePolicy checks a policy against this model: thresholds must be
// finite and, when active, in [0,1] (a NaN would compare false against
// every score and silently disable early exit); StageDeltas must match the
// stage count; MaxExit must name an existing exit point.
func (c *CDLN) ValidatePolicy(p ExitPolicy) error {
	if math.IsNaN(p.Delta) || math.IsInf(p.Delta, 0) || p.Delta > 1 {
		return fmt.Errorf("core: policy delta %v must be negative (keep) or in [0,1]", p.Delta)
	}
	if p.StageDeltas != nil {
		if len(p.StageDeltas) != len(c.Stages) {
			return fmt.Errorf("core: policy has %d stage deltas for %d stages", len(p.StageDeltas), len(c.Stages))
		}
		for i, d := range p.StageDeltas {
			if math.IsNaN(d) || math.IsInf(d, 0) || d > 1 {
				return fmt.Errorf("core: policy stage %d delta %v must be negative (keep) or in [0,1]", i, d)
			}
		}
	}
	if p.MaxExit > len(c.Stages) {
		return fmt.Errorf("core: policy max exit %d beyond last exit point %d", p.MaxExit, len(c.Stages))
	}
	return nil
}

// MaxExitForOps converts an operation budget into the deepest exit point
// whose dynamic cost fits it — the ExitPolicy.MaxExit realization of a
// per-request compute budget. It errors when even the cheapest exit
// (stage 0) exceeds the budget.
func (c *CDLN) MaxExitForOps(budget float64) (int, error) {
	if err := validateOpsBudget(budget); err != nil {
		return 0, err
	}
	exitOps := c.ExitOps()
	max := -1
	for e, ops := range exitOps {
		if ops <= budget {
			max = e
		}
	}
	if max < 0 {
		return 0, fmt.Errorf("core: ops budget %v below the cheapest exit (stage 0 costs %v)", budget, exitOps[0])
	}
	return max, nil
}

// validateOpsBudget is the budget check shared by CDLN.MaxExitForOps and
// Graph.MaxExitForOps.
func validateOpsBudget(budget float64) error {
	if math.IsNaN(budget) || budget <= 0 {
		return fmt.Errorf("core: ops budget %v must be a positive number", budget)
	}
	return nil
}

// stageDelta resolves the effective threshold for stage i under a policy:
// trained value, then the policy's global Delta, then its per-stage entry.
func (c *CDLN) stageDelta(i int, p ExitPolicy) float64 {
	d := c.Delta
	if c.StageDeltas != nil {
		d = c.StageDeltas[i]
	}
	if p.Delta >= 0 {
		d = p.Delta
	}
	if p.StageDeltas != nil && p.StageDeltas[i] >= 0 {
		d = p.StageDeltas[i]
	}
	return d
}

// maxExit normalizes MaxExit: any out-of-range or negative cap means the
// full cascade.
func (c *CDLN) maxExit(p ExitPolicy) int {
	if p.MaxExit < 0 || p.MaxExit > len(c.Stages) {
		return len(c.Stages)
	}
	return p.MaxExit
}
