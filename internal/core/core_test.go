package core

import (
	"math/rand"
	"testing"

	"cdl/internal/nn"
	"cdl/internal/tensor"
	"cdl/internal/train"
)

// twoStageArch builds a small two-tap architecture for cascade tests:
// 12×12 input → C1 3×3 (2 maps, 10×10) → P1 (5×5) → C2 2×2 (3 maps, 4×4)
// → P2 (2×2) → FC classes. Taps after P1 and P2.
func twoStageArch(seed int64, classes int) *nn.Arch {
	rng := rand.New(rand.NewSource(seed))
	net := nn.NewNetwork([]int{1, 12, 12},
		nn.NewConv2D("C1", 1, 2, 3),
		nn.NewSigmoid("C1.act"),
		nn.NewMaxPool2D("P1", 2),
		nn.NewConv2D("C2", 2, 3, 2),
		nn.NewSigmoid("C2.act"),
		nn.NewMaxPool2D("P2", 2),
		nn.NewFlatten("flat"),
		nn.NewDense("FC", 3*2*2, classes),
		nn.NewSigmoid("FC.act"),
	)
	nn.InitNetwork(net, rng)
	a := &nn.Arch{
		Name: "two-stage-test", Net: net,
		Taps: []int{3, 6}, TapNames: []string{"P1", "P2"},
		NumClasses: classes,
	}
	if err := a.Validate(); err != nil {
		panic(err)
	}
	return a
}

// blobData builds a 3-class 12×12 image problem: a bright blob whose
// position encodes the class, with per-sample noise whose amplitude varies
// (the "difficulty" spread CDL exploits).
func blobData(n int, seed int64) []train.Sample {
	rng := rand.New(rand.NewSource(seed))
	centers := [][2]int{{3, 3}, {3, 8}, {8, 5}}
	out := make([]train.Sample, n)
	for i := range out {
		label := i % 3
		noise := 0.05
		if rng.Float64() < 0.3 { // hard tail
			noise = 0.35
		}
		x := tensor.New(1, 12, 12)
		cy, cx := centers[label][0], centers[label][1]
		for y := 0; y < 12; y++ {
			for xx := 0; xx < 12; xx++ {
				d2 := float64((y-cy)*(y-cy) + (xx-cx)*(xx-cx))
				v := 1/(1+d2/3) + rng.NormFloat64()*noise
				if v < 0 {
					v = 0
				}
				if v > 1 {
					v = 1
				}
				x.Data[y*12+xx] = v
			}
		}
		out[i] = train.Sample{X: x, Label: label}
	}
	return out
}

// trainedArch returns a two-stage arch trained on blobs.
func trainedArch(t testing.TB, seed int64) (*nn.Arch, []train.Sample) {
	t.Helper()
	arch := twoStageArch(seed, 3)
	data := blobData(180, seed+1)
	cfg := train.Defaults(3)
	cfg.Epochs = 12
	cfg.BatchSize = 10
	if _, err := train.SGD(arch.Net, data, cfg); err != nil {
		t.Fatal(err)
	}
	return arch, data
}

func TestBuildEndToEnd(t *testing.T) {
	arch, data := trainedArch(t, 1)
	cdln, rep, err := Build(arch, data, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := cdln.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Stages) == 0 {
		t.Fatal("no stage reports")
	}
	if rep.BaselineOps <= 0 {
		t.Error("baseline ops must be positive")
	}
	// Reaching counts must not increase with depth.
	prev := rep.Stages[0].Reaching
	for _, s := range rep.Stages[1:] {
		if s.Reaching > prev {
			t.Errorf("stage %s reaching %d > previous %d", s.Name, s.Reaching, prev)
		}
		prev = s.Reaching
	}
	for _, s := range rep.Stages {
		if s.Classified > s.Reaching {
			t.Errorf("stage %s classified %d > reaching %d", s.Name, s.Classified, s.Reaching)
		}
		if s.LCAccuracy < 0 || s.LCAccuracy > 1 {
			t.Errorf("stage %s LCAccuracy %v", s.Name, s.LCAccuracy)
		}
	}
}

func TestBuildEpsilonRejectsAll(t *testing.T) {
	arch, data := trainedArch(t, 2)
	cfg := DefaultBuildConfig()
	cfg.Epsilon = 1e12 // nothing can save this many ops per input
	cdln, rep, err := Build(arch, data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cdln.Stages) != 0 {
		t.Fatalf("expected all stages rejected, got %d", len(cdln.Stages))
	}
	for _, s := range rep.Stages {
		if s.Admitted {
			t.Errorf("stage %s admitted despite huge ε", s.Name)
		}
	}
	// A stage-less CDLN is a plain baseline: everything exits at FC with
	// exactly baseline cost.
	rec := cdln.Classify(data[0].X)
	if rec.StageName != "FC" {
		t.Errorf("exit at %s, want FC", rec.StageName)
	}
	if rec.Ops != cdln.BaselineOps() {
		t.Errorf("ops %v != baseline %v", rec.Ops, cdln.BaselineOps())
	}
}

func TestBuildForceAllStages(t *testing.T) {
	arch, data := trainedArch(t, 3)
	cfg := DefaultBuildConfig()
	cfg.Epsilon = 1e12
	cfg.ForceAllStages = true
	cdln, _, err := Build(arch, data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cdln.Stages) != 2 {
		t.Fatalf("ForceAllStages built %d stages, want 2", len(cdln.Stages))
	}
}

func TestBuildMaxStages(t *testing.T) {
	arch, data := trainedArch(t, 4)
	cfg := DefaultBuildConfig()
	cfg.ForceAllStages = true
	cfg.MaxStages = 1
	cdln, rep, err := Build(arch, data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cdln.Stages) != 1 || len(rep.Stages) != 1 {
		t.Fatalf("MaxStages=1 built %d stages", len(cdln.Stages))
	}
	if cdln.Stages[0].Name != "O1" {
		t.Errorf("stage name %s", cdln.Stages[0].Name)
	}
}

func TestBuildValidation(t *testing.T) {
	arch, data := trainedArch(t, 5)
	if _, _, err := Build(arch, nil, DefaultBuildConfig()); err == nil {
		t.Error("empty data accepted")
	}
	cfg := DefaultBuildConfig()
	cfg.Delta = 1.5
	if _, _, err := Build(arch, data, cfg); err == nil {
		t.Error("delta > 1 accepted")
	}
	cfg = DefaultBuildConfig()
	cfg.Delta = 0
	if _, _, err := Build(arch, data, cfg); err == nil {
		t.Error("delta 0 accepted")
	}
}

func TestExitOpsArithmetic(t *testing.T) {
	arch, data := trainedArch(t, 6)
	cfg := DefaultBuildConfig()
	cfg.ForceAllStages = true
	cdln, _, err := Build(arch, data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cum := cdln.Ops.CumulativeOps(arch.Net)
	lc1 := cdln.Ops.LinearClassifierOps(cdln.Stages[0].LC.In, 3)
	lc2 := cdln.Ops.LinearClassifierOps(cdln.Stages[1].LC.In, 3)
	exit := cdln.ExitOps()
	if exit[0] != cum[3]+lc1 {
		t.Errorf("exit[0] = %v, want %v", exit[0], cum[3]+lc1)
	}
	if exit[1] != cum[6]+lc1+lc2 {
		t.Errorf("exit[1] = %v, want %v", exit[1], cum[6]+lc1+lc2)
	}
	if exit[2] != cum[len(cum)-1]+lc1+lc2 {
		t.Errorf("exit[2] = %v, want %v", exit[2], cum[len(cum)-1]+lc1+lc2)
	}
	// Exit costs increase with depth.
	for i := 1; i < len(exit); i++ {
		if exit[i] <= exit[i-1] {
			t.Error("exit costs must increase with depth")
		}
	}
}

func TestClassifyRespectsDelta(t *testing.T) {
	arch, data := trainedArch(t, 7)
	cdln, _, err := Build(arch, data, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	// δ→1 forces everything to the final layer (no sigmoid score reaches 1).
	cdln.Delta = 1.0
	rec := cdln.Classify(data[0].X)
	if rec.StageName != "FC" {
		t.Errorf("δ=1 exit at %s, want FC", rec.StageName)
	}
	// δ→~0 exits at stage 1 only if exactly one score clears the bar;
	// with δ=0 every score qualifies, so nothing exits early either.
	cdln.Delta = 0.0
	rec = cdln.Classify(data[0].X)
	if rec.StageName != "FC" {
		t.Errorf("δ=0 exit at %s, want FC (all labels 'confident' → ambiguous)", rec.StageName)
	}
}

func TestClassifyMatchesEvaluate(t *testing.T) {
	arch, data := trainedArch(t, 8)
	cdln, _, err := Build(arch, data, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(cdln, data, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(data) {
		t.Fatalf("records %d", len(res.Records))
	}
	// Serial classification must agree with the parallel evaluation.
	for i := 0; i < 10; i++ {
		rec := cdln.Classify(data[i].X)
		if !rec.Equal(res.Records[i]) {
			t.Errorf("sample %d: serial %+v != parallel %+v", i, rec, res.Records[i])
		}
	}
}

func TestEvaluateAccounting(t *testing.T) {
	arch, data := trainedArch(t, 9)
	cdln, _, err := Build(arch, data, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(cdln, data, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confusion.Total() != len(data) {
		t.Errorf("confusion total %d", res.Confusion.Total())
	}
	// Exit fractions over all classes sum to 1.
	sum := 0.0
	for e := range res.ExitNames {
		sum += res.ExitFraction(e, -1)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("exit fractions sum to %v", sum)
	}
	// TotalOps equals the sum of per-record ops and of per-class ops.
	recSum, classSum := 0.0, 0.0
	for _, r := range res.Records {
		recSum += r.Ops
	}
	for _, c := range res.ClassOps {
		classSum += c
	}
	if recSum != res.TotalOps || classSum != res.TotalOps {
		t.Errorf("ops accounting mismatch: rec %v class %v total %v", recSum, classSum, res.TotalOps)
	}
	// Normalized OPS must lie between the cheapest and the most expensive
	// exit ratios.
	exit := cdln.ExitOps()
	lo := exit[0] / res.BaselineOps
	hi := exit[len(exit)-1] / res.BaselineOps
	if n := res.NormalizedOps(); n < lo-1e-9 || n > hi+1e-9 {
		t.Errorf("normalized ops %v outside [%v,%v]", n, lo, hi)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	arch, data := trainedArch(t, 10)
	cdln, _, err := Build(arch, data, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(cdln, nil, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanOps() != 0 || res.NormalizedOps() != 0 {
		t.Error("empty eval should produce zero metrics")
	}
}

func TestCloneConcurrentSafety(t *testing.T) {
	arch, data := trainedArch(t, 11)
	cdln, _, err := Build(arch, data, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Run Evaluate with many workers; the race detector (go test -race)
	// verifies replica isolation.
	if _, err := Evaluate(cdln, data, 8, false); err != nil {
		t.Fatal(err)
	}
	// Clone must classify identically.
	clone := cdln.Clone()
	for i := 0; i < 20; i++ {
		a, b := cdln.Classify(data[i].X), clone.Classify(data[i].X)
		if !a.Equal(b) {
			t.Fatalf("clone diverges on sample %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	arch, data := trainedArch(t, 12)
	cdln, _, err := Build(arch, data, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(cdln.Stages) == 0 {
		t.Skip("no stages admitted")
	}
	bad := cdln.Clone()
	bad.Delta = 2
	if bad.Validate() == nil {
		t.Error("delta 2 validated")
	}
	bad = cdln.Clone()
	bad.Rule = nil
	if bad.Validate() == nil {
		t.Error("nil rule validated")
	}
	bad = cdln.Clone()
	bad.Stages[0].Tap = 0
	if bad.Validate() == nil {
		t.Error("tap 0 validated")
	}
}

func TestGainRuleSkipsUnprofitableStage(t *testing.T) {
	// With a δ so high that no instance exits, every stage has negative
	// gain (pure LC overhead) and must be rejected.
	arch, data := trainedArch(t, 13)
	cfg := DefaultBuildConfig()
	cfg.Delta = 0.999999
	cdln, rep, err := Build(arch, data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cdln.Stages) != 0 {
		t.Errorf("admitted %d stages despite no exits", len(cdln.Stages))
	}
	for _, s := range rep.Stages {
		if s.Gain > 0 {
			t.Errorf("stage %s gain %v should be ≤ 0 with no exits", s.Name, s.Gain)
		}
	}
}

func TestExitNamesAndNumExits(t *testing.T) {
	arch, data := trainedArch(t, 14)
	cfg := DefaultBuildConfig()
	cfg.ForceAllStages = true
	cdln, _, err := Build(arch, data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cdln.NumExits() != 3 {
		t.Fatalf("NumExits = %d", cdln.NumExits())
	}
	names := []string{"O1", "O2", "FC"}
	for i, want := range names {
		if got := cdln.ExitName(i); got != want {
			t.Errorf("ExitName(%d) = %s, want %s", i, got, want)
		}
	}
}
