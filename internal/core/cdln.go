package core

import (
	"fmt"
	"strings"

	"cdl/internal/linclass"
	"cdl/internal/nn"
	"cdl/internal/opcount"
	"cdl/internal/tensor"
)

// Stage is one early-exit point of the cascade: a tap into the baseline
// network (the features after Tap leading layers, i.e. a pooling-layer
// output) feeding a trained linear classifier.
type Stage struct {
	// Name labels the stage's output layer ("O1", "O2", ...).
	Name string
	// Tap is the number of leading baseline layers composing this stage's
	// feature tensor.
	Tap int
	// LC is the stage's linear classifier.
	LC *linclass.Classifier
	// Gain is the Eq. 1 gain recorded when Algorithm 1 admitted the stage
	// (per-input ops saved; see Build).
	Gain float64
}

// CDLN is a Conditional Deep Learning Network: a trained baseline DLN plus
// the admitted early-exit stages, the confidence threshold δ and the exit
// rule. The final output layer (FC) of the baseline always terminates the
// cascade.
type CDLN struct {
	// Arch is the baseline network and its tap metadata.
	Arch *nn.Arch
	// Stages are the admitted early-exit stages in depth order.
	Stages []*Stage
	// Delta is the runtime confidence threshold δ (paper §III.B: adjustable
	// at runtime to trade accuracy for efficiency).
	Delta float64
	// StageDeltas, when non-nil, overrides Delta with one threshold per
	// stage (an extension beyond the paper's single knob; see TuneDeltas).
	// Its length must equal len(Stages).
	StageDeltas []float64
	// Rule is the activation module's decision function.
	Rule ExitRule
	// Ops is the operation-accounting model used for cost reporting.
	Ops opcount.Model
}

// ExitRecord describes how one input was classified.
type ExitRecord struct {
	// Node is the routing-graph node the exit was taken in: 0 for the
	// trunk (always 0 for a linear cascade), a branch index when a Route
	// dispatched the input to a branch subnetwork.
	Node int
	// StageIndex is the global exit index: for a linear cascade, the index
	// into Stages of the exit point, or len(Stages) when the input reached
	// the final FC layer. For a routing graph, exits are numbered node by
	// node (Graph.ExitIndex), which coincides with the linear numbering on
	// the trunk.
	StageIndex int
	// StageName is "O1".."On" or "FC", qualified with the branch name
	// ("even/O1") for branch exits.
	StageName string
	// Label is the predicted class.
	Label int
	// Confidence is the winning score at the exit point.
	Confidence float64
	// Ops is the dynamic operation count spent on this input (baseline
	// layers executed plus every linear classifier evaluated).
	Ops float64
	// Trace, populated only under an ExitPolicy with Trace set, holds the
	// winning confidence at every exit point evaluated for this input (in
	// cascade order, ending with the exit actually taken).
	Trace []float64
}

// Equal reports whether two records describe the same classification:
// every scalar field matches exactly (bit-identity, the contract the
// differential harnesses assert). Traces are ignored — they are a detail
// level, not part of the classification outcome.
func (r ExitRecord) Equal(o ExitRecord) bool {
	return r.Node == o.Node && r.StageIndex == o.StageIndex && r.StageName == o.StageName &&
		r.Label == o.Label && r.Confidence == o.Confidence && r.Ops == o.Ops
}

// NumExits returns the number of possible exit points (stages plus FC).
//
// This is a LINEAR-cascade count: it assumes every exit lives on the one
// trunk. Callers sizing per-exit tables for a served model must use
// Graph.NumExits, which degenerates to this for a one-node graph —
// indexing a graph model's records by a CDLN's count is a bounds bug (the
// energy Accumulator and serve metrics are graph-sized for this reason).
func (c *CDLN) NumExits() int { return len(c.Stages) + 1 }

// ExitName returns the display name of exit point i (StageIndex
// semantics). Linear-cascade naming; Graph.ExitName qualifies branch
// exits.
func (c *CDLN) ExitName(i int) string {
	if i < len(c.Stages) {
		return c.Stages[i].Name
	}
	return "FC"
}

// Validate checks structural consistency.
func (c *CDLN) Validate() error {
	if c.Arch == nil {
		return fmt.Errorf("core: CDLN has no arch")
	}
	if err := c.Arch.Validate(); err != nil {
		return err
	}
	if c.Rule == nil {
		return fmt.Errorf("core: CDLN has no exit rule")
	}
	if c.Delta < 0 || c.Delta > 1 {
		return fmt.Errorf("core: delta %v outside [0,1]", c.Delta)
	}
	if c.StageDeltas != nil {
		if len(c.StageDeltas) != len(c.Stages) {
			return fmt.Errorf("core: %d stage deltas for %d stages", len(c.StageDeltas), len(c.Stages))
		}
		for i, d := range c.StageDeltas {
			if d < 0 || d > 1 {
				return fmt.Errorf("core: stage %d delta %v outside [0,1]", i, d)
			}
		}
	}
	prev := 0
	for i, s := range c.Stages {
		if s.Tap <= prev || s.Tap >= len(c.Arch.Net.Layers) {
			return fmt.Errorf("core: stage %d tap %d out of order or range", i, s.Tap)
		}
		prev = s.Tap
		want := 1
		for _, d := range c.Arch.Net.ShapeAt(s.Tap) {
			want *= d
		}
		if s.LC == nil || s.LC.In != want {
			return fmt.Errorf("core: stage %s classifier width mismatch (want %d)", s.Name, want)
		}
	}
	return nil
}

// ExitOps returns the dynamic op cost of exiting at each exit point:
// result[i] for stage i, result[len(Stages)] for the final FC exit. An
// input exiting at stage i has run the baseline through the stage's tap
// plus every linear classifier up to and including stage i; an input
// reaching FC has run the whole baseline plus all stage classifiers.
func (c *CDLN) ExitOps() []float64 {
	cum := c.Ops.CumulativeOps(c.Arch.Net)
	out := make([]float64, len(c.Stages)+1)
	lcSoFar := 0.0
	for i, s := range c.Stages {
		lcSoFar += c.Ops.LinearClassifierOps(s.LC.In, s.LC.Out)
		out[i] = cum[s.Tap] + lcSoFar
	}
	out[len(c.Stages)] = cum[len(cum)-1] + lcSoFar
	return out
}

// BaselineOps returns γ_base: the cost of one full baseline forward pass.
func (c *CDLN) BaselineOps() float64 { return c.Ops.NetworkOps(c.Arch.Net) }

// Classify runs Algorithm 2 on one input: evaluate stages in depth order,
// resume the baseline network between taps (deeper layers of a terminated
// input are never executed), and exit when the activation module fires or
// the final FC layer is reached.
//
// Classify mutates per-layer forward caches, so a CDLN must not be shared
// across goroutines; use Clone for parallel evaluation, or a Session to
// additionally reuse scratch buffers across calls.
func (c *CDLN) Classify(x *tensor.T) ExitRecord {
	return c.classify(x, c.ExitOps(), nil, -1)
}

// classify is the single Algorithm 2 implementation shared by CDLN.Classify
// and Session: exitOps is the precomputed per-exit cost vector, scratch (if
// non-nil) holds one reusable score buffer per stage, and deltaOverride ≥ 0
// replaces the model's Delta/StageDeltas for this call (the paper's §III.B
// runtime knob).
func (c *CDLN) classify(x *tensor.T, exitOps []float64, scratch []*tensor.T, deltaOverride float64) ExitRecord {
	rec, exited, act, pos := c.runStages(x, 0, 0, len(c.Stages), exitOps, scratch, deltaOverride)
	if exited {
		return rec
	}
	return c.finalExit(act, pos, exitOps)
}

// runStages evaluates cascade stages [from, to) starting from an activation
// act that sits after the first pos baseline layers. It is the one stage
// loop behind every Algorithm 2 entry point — monolithic classify, the
// edge-side prefix (ClassifyPrefix) and the cloud-side resume (Resume) —
// so a cascade split across tiers performs the identical floating-point
// operations in the identical order as a monolithic pass.
//
// When a stage's activation module fires it returns (record, true, _, _);
// otherwise it returns (_, false, act, pos) with the activation and layer
// position where the caller must continue (the tap of stage to−1, or the
// starting position when from == to).
func (c *CDLN) runStages(act *tensor.T, pos, from, to int, exitOps []float64, scratch []*tensor.T, deltaOverride float64) (ExitRecord, bool, *tensor.T, int) {
	for i := from; i < to; i++ {
		s := c.Stages[i]
		act = c.Arch.Net.ForwardRange(act, pos, s.Tap)
		pos = s.Tap
		var scores *tensor.T
		if scratch != nil {
			scores = scratch[i]
			s.LC.ScoresInto(act, scores)
		} else {
			scores = s.LC.Scores(act)
		}
		delta := c.Delta
		if c.StageDeltas != nil {
			delta = c.StageDeltas[i]
		}
		if deltaOverride >= 0 {
			delta = deltaOverride
		}
		if c.Rule.ShouldExit(scores, delta) {
			conf, label := scores.Max()
			return ExitRecord{
				StageIndex: i,
				StageName:  s.Name,
				Label:      label,
				Confidence: conf,
				Ops:        exitOps[i],
			}, true, nil, 0
		}
	}
	return ExitRecord{}, false, act, pos
}

// finalExit runs the remaining baseline layers from pos through the output
// layer — the cascade's unconditional FC terminator.
func (c *CDLN) finalExit(act *tensor.T, pos int, exitOps []float64) ExitRecord {
	act = c.Arch.Net.ForwardRange(act, pos, len(c.Arch.Net.Layers))
	conf, label := act.Max()
	return ExitRecord{
		StageIndex: len(c.Stages),
		StageName:  "FC",
		Label:      label,
		Confidence: conf,
		Ops:        exitOps[len(c.Stages)],
	}
}

// SplitPos returns the baseline-layer position of the activation handed
// across a tier split after splitStage cascade stages: 0 when splitStage is
// 0 (the raw input is shipped) and the tap of stage splitStage−1 otherwise.
// It panics when splitStage is outside [0, len(Stages)].
func (c *CDLN) SplitPos(splitStage int) int {
	if splitStage < 0 || splitStage > len(c.Stages) {
		panic(fmt.Sprintf("core: split stage %d outside [0,%d]", splitStage, len(c.Stages)))
	}
	if splitStage == 0 {
		return 0
	}
	return c.Stages[splitStage-1].Tap
}

// ValidateResume checks a tier-split handoff against this model: the
// resume stage must exist, pos must be the stage's SplitPos, and the
// activation shape must match the network at that position. It is the one
// validation shared by every resume entry point — Session.Resume (which
// panics on failure), the serve /v1/resume handler and the edgecloud
// Loopback transport (which map it to request errors) — so a payload the
// loopback accepts is exactly a payload a real backend accepts.
//
// Like NumExits, this is linear-cascade validation: fromStage names a
// trunk stage. Handoffs into a routing graph (a (node, fromStage) pair)
// go through Graph.ValidateResume, which applies this check against the
// named node's cascade.
func (c *CDLN) ValidateResume(fromStage, pos int, shape []int) error {
	if fromStage < 0 || fromStage > len(c.Stages) {
		return fmt.Errorf("core: resume stage %d outside [0,%d]", fromStage, len(c.Stages))
	}
	if want := c.SplitPos(fromStage); pos != want {
		return fmt.Errorf("core: activation position %d, want %d for stage %d", pos, want, fromStage)
	}
	want := c.Arch.Net.ShapeAt(pos)
	if len(shape) != len(want) {
		return fmt.Errorf("core: activation rank %d, want %d (shape %v)", len(shape), len(want), want)
	}
	for i := range want {
		if shape[i] != want[i] {
			return fmt.Errorf("core: activation shape %v, want %v", shape, want)
		}
	}
	return nil
}

// Clone returns a CDLN replica safe for concurrent use: the baseline
// network replica shares weights (read-only during inference) and the
// linear classifiers are deep-copied.
func (c *CDLN) Clone() *CDLN {
	stages := make([]*Stage, len(c.Stages))
	for i, s := range c.Stages {
		stages[i] = &Stage{Name: s.Name, Tap: s.Tap, LC: s.LC.Clone(), Gain: s.Gain}
	}
	arch := &nn.Arch{
		Name:       c.Arch.Name,
		Net:        c.Arch.Net.Clone(),
		Taps:       append([]int(nil), c.Arch.Taps...),
		TapNames:   append([]string(nil), c.Arch.TapNames...),
		NumClasses: c.Arch.NumClasses,
	}
	var stageDeltas []float64
	if c.StageDeltas != nil {
		stageDeltas = append([]float64(nil), c.StageDeltas...)
	}
	return &CDLN{
		Arch: arch, Stages: stages,
		Delta: c.Delta, StageDeltas: stageDeltas,
		Rule: c.Rule, Ops: c.Ops,
	}
}

// Summary renders the cascade structure with per-exit costs.
func (c *CDLN) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CDLN on %s baseline (δ=%.2f, rule=%s)\n", c.Arch.Name, c.Delta, c.Rule.Name())
	exitOps := c.ExitOps()
	base := c.BaselineOps()
	for i, s := range c.Stages {
		fmt.Fprintf(&b, "  %-4s tap=%d features=%d exitOps=%.0f (%.2fx baseline) gain=%.1f\n",
			s.Name, s.Tap, s.LC.In, exitOps[i], exitOps[i]/base, s.Gain)
	}
	fmt.Fprintf(&b, "  %-4s exitOps=%.0f (%.2fx baseline)\n", "FC", exitOps[len(c.Stages)], exitOps[len(c.Stages)]/base)
	return b.String()
}
