package core

// graph_test.go covers the routed half of the graph walk: a two-branch
// class-group tree (trunk router dispatching digit groups to "lo" and "hi"
// subnetworks) exercised through the structural tables, the serial walk,
// the batched fast path, tier splits with branch-entry handoffs, the
// path-depth cap, and Validate's rejection of every malformed topology.
// The degenerate linear case is pinned separately in linear_equiv_test.go.

import (
	"math/rand"
	"strings"
	"testing"

	"cdl/internal/linclass"
	"cdl/internal/nn"
	"cdl/internal/opcount"
	"cdl/internal/tensor"
)

// rawTrunk builds an untrained two-stage trunk CDLN literally — cheap
// enough for the validation-rejection table, which never classifies.
func rawTrunk(seed int64) *CDLN {
	arch := twoStageArch(seed, 3)
	rng := rand.New(rand.NewSource(seed + 50))
	return &CDLN{
		Arch: arch,
		Stages: []*Stage{
			{Name: "O1", Tap: 3, LC: linclass.New(2*5*5, 3, rng)},
			{Name: "O2", Tap: 6, LC: linclass.New(3*2*2, 3, rng)},
		},
		Delta: 0.5,
		Rule:  ThresholdRule{},
		Ops:   opcount.Default(),
	}
}

// branchCDLN builds a one-stage branch cascade over the trunk's P1 tap
// shape [2,5,5]: B1 2×2 conv (2 maps, 4×4) with an O1 classifier at its
// activation, then FC over the given class count. Untrained — with δ=0.5
// the sigmoid scores land on both sides of the threshold, so branch O1 and
// branch FC exits both occur.
func branchCDLN(seed int64, classes int) *CDLN {
	rng := rand.New(rand.NewSource(seed))
	net := nn.NewNetwork([]int{2, 5, 5},
		nn.NewConv2D("B1", 2, 2, 2),
		nn.NewSigmoid("B1.act"),
		nn.NewFlatten("B.flat"),
		nn.NewDense("BFC", 2*4*4, classes),
		nn.NewSigmoid("BFC.act"),
	)
	nn.InitNetwork(net, rng)
	arch := &nn.Arch{
		Name: "branch-test", Net: net,
		Taps: []int{2}, TapNames: []string{"B1"},
		NumClasses: classes,
	}
	if err := arch.Validate(); err != nil {
		panic(err)
	}
	return &CDLN{
		Arch:   arch,
		Stages: []*Stage{{Name: "O1", Tap: 2, LC: linclass.New(2*4*4, classes, rng)}},
		Delta:  0.5,
		Rule:   ThresholdRule{},
		Ops:    opcount.Default(),
	}
}

// passThroughBranch builds a branch over input [2,4,4] whose stage tap
// reproduces the input shape (a leading sigmoid), so two of them can route
// into each other — the building block for the cycle rejection case.
func passThroughBranch(seed int64, target int) *Node {
	rng := rand.New(rand.NewSource(seed))
	net := nn.NewNetwork([]int{2, 4, 4},
		nn.NewSigmoid("S"),
		nn.NewFlatten("S.flat"),
		nn.NewDense("SFC", 2*4*4, 3),
		nn.NewSigmoid("SFC.act"),
	)
	nn.InitNetwork(net, rng)
	arch := &nn.Arch{
		Name: "cycle-test", Net: net,
		Taps: []int{1}, TapNames: []string{"S"},
		NumClasses: 3,
	}
	model := &CDLN{
		Arch:   arch,
		Stages: []*Stage{{Name: "O1", Tap: 1, LC: linclass.New(2*4*4, 3, rng)}},
		Delta:  0.5,
		Rule:   ThresholdRule{},
		Ops:    opcount.Default(),
	}
	return &Node{Model: model, Routes: []Route{{Stage: 0, Branch: []int{-1, -1, target}}}}
}

// rawRoutedNodes is the canonical two-branch topology over a given trunk:
// a router at trunk stage 0 dispatches predicted class 0 to "lo" (global
// labels {0,1}) and class 2 to "hi" (label {2}); class 1 continues on the
// trunk.
func rawRoutedNodes(trunk *CDLN, seed int64) []*Node {
	return []*Node{
		{Name: "trunk", Model: trunk, Routes: []Route{{Stage: 0, Branch: []int{1, -1, 2}}}},
		{Name: "lo", Model: branchCDLN(seed+100, 2), Labels: []int{0, 1}},
		{Name: "hi", Model: branchCDLN(seed+200, 1), Labels: []int{2}},
	}
}

// rawRoutedGraph is the untrained two-branch tree, for structural tests.
func rawRoutedGraph(seed int64) *Graph {
	return &Graph{Nodes: rawRoutedNodes(rawTrunk(seed), seed)}
}

// routedGraph is the trained two-branch tree: the batchCDLN trunk (real
// exit-confidence spread over mixedInputs) with the canonical router.
func routedGraph(t testing.TB, seed int64) *Graph {
	t.Helper()
	g := &Graph{Nodes: rawRoutedNodes(batchCDLN(t, seed), seed)}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

// routingDeltas are the per-call overrides the routed sweeps run under:
// the trained thresholds, and a near-unreachable δ that suppresses trunk
// exits so nearly every input reaches the router and is dispatched.
var routingDeltas = []float64{-1, 0.999}

func TestRoutedGraphStructure(t *testing.T) {
	g := rawRoutedGraph(41)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.NumExits(); got != 7 {
		t.Fatalf("NumExits = %d, want 7 (trunk 3 + lo 2 + hi 2)", got)
	}
	wantNames := []string{"O1", "O2", "FC", "lo/O1", "lo/FC", "hi/O1", "hi/FC"}
	for i, want := range wantNames {
		if got := g.ExitName(i); got != want {
			t.Errorf("ExitName(%d) = %q, want %q", i, got, want)
		}
	}
	// Global indexing is node-by-node; NodeOfExit inverts ExitIndex.
	for node, locals := range map[int]int{0: 3, 1: 2, 2: 2} {
		for li := 0; li < locals; li++ {
			gi := g.ExitIndex(node, li)
			gotNode, gotLocal := g.NodeOfExit(gi)
			if gotNode != node || gotLocal != li {
				t.Errorf("NodeOfExit(ExitIndex(%d,%d)=%d) = (%d,%d)", node, li, gi, gotNode, gotLocal)
			}
		}
	}
	// Depth is a path notion: branches enter past the router at depth 1.
	wantDepths := []int{0, 1, 2, 1, 2, 1, 2}
	for i, want := range wantDepths {
		if got := g.ExitDepth(i); got != want {
			t.Errorf("ExitDepth(%d) = %d, want %d", i, got, want)
		}
	}
	if got := g.MaxDepth(); got != 2 {
		t.Errorf("MaxDepth = %d, want 2", got)
	}
	if p, s := g.ParentOf(0); p != -1 || s != -1 {
		t.Errorf("ParentOf(trunk) = (%d,%d), want (-1,-1)", p, s)
	}
	for _, ni := range []int{1, 2} {
		if p, s := g.ParentOf(ni); p != 0 || s != 0 {
			t.Errorf("ParentOf(%d) = (%d,%d), want (0,0)", ni, p, s)
		}
	}
	// The op table charges each exit its whole root-to-exit path;
	// FoldExitCosts over the nodes' own local tables must rebuild it
	// exactly (energy folds per-branch pJ tables through the same hinge).
	local := make([][]float64, len(g.Nodes))
	for ni, n := range g.Nodes {
		local[ni] = n.Model.ExitOps()
	}
	folded := g.FoldExitCosts(local)
	for i, ops := range g.ExitOps() {
		if folded[i] != ops {
			t.Errorf("FoldExitCosts[%d] = %v, want %v", i, folded[i], ops)
		}
		if ops <= 0 {
			t.Errorf("exit %d ops %v not positive", i, ops)
		}
	}
	// A branch exit is costed past the router: dearer than the router's
	// own exit point.
	if ops := g.ExitOps(); ops[3] <= ops[0] {
		t.Errorf("lo/O1 ops %v not above router exit ops %v", ops[3], ops[0])
	}
	if ni, ok := g.NodeIndex("lo"); !ok || ni != 1 {
		t.Errorf("NodeIndex(lo) = (%d,%v)", ni, ok)
	}
	if ni, ok := g.NodeIndex(""); !ok || ni != 0 {
		t.Errorf("NodeIndex(\"\") = (%d,%v)", ni, ok)
	}
	if _, ok := g.NodeIndex("nope"); ok {
		t.Error("NodeIndex(nope) resolved")
	}
	// MaxExitForOps budgets across every path of the tree.
	ops := g.ExitOps()
	worst := 0.0
	for _, v := range ops {
		if v > worst {
			worst = v
		}
	}
	if cap, err := g.MaxExitForOps(worst); err != nil || cap != g.MaxDepth() {
		t.Errorf("MaxExitForOps(worst) = (%d,%v), want (%d,nil)", cap, err, g.MaxDepth())
	}
	if cap, err := g.MaxExitForOps(ops[0]); err != nil || cap != 0 {
		t.Errorf("MaxExitForOps(cheapest) = (%d,%v), want (0,nil)", cap, err)
	}
	if _, err := g.MaxExitForOps(ops[0] - 1); err == nil {
		t.Error("MaxExitForOps below the cheapest exit succeeded")
	}
}

// TestRoutedGraphSerialWalk drives the serial walk through the tree and
// checks every record's invariants: the (Node, StageIndex) pair is
// consistent, the name and ops come from the graph tables, and branch
// labels land in the branch's global label group.
func TestRoutedGraphSerialWalk(t *testing.T) {
	g := routedGraph(t, 42)
	sess, err := NewGraphSession(g)
	if err != nil {
		t.Fatal(err)
	}
	exitOps := g.ExitOps()
	labelGroups := map[int][]int{1: {0, 1}, 2: {2}}
	nodesSeen := make(map[int]int)
	for _, delta := range routingDeltas {
		xs := mixedInputs(150, 11)
		for i, x := range xs {
			rec := sess.ClassifyDelta(x, delta)
			node, _ := g.NodeOfExit(rec.StageIndex)
			if node != rec.Node {
				t.Fatalf("input %d: record node %d but exit %d belongs to node %d", i, rec.Node, rec.StageIndex, node)
			}
			if rec.StageName != g.ExitName(rec.StageIndex) {
				t.Fatalf("input %d: name %q, want %q", i, rec.StageName, g.ExitName(rec.StageIndex))
			}
			if rec.Ops != exitOps[rec.StageIndex] {
				t.Fatalf("input %d: ops %v, want %v", i, rec.Ops, exitOps[rec.StageIndex])
			}
			if group, routed := labelGroups[rec.Node]; routed {
				ok := false
				for _, l := range group {
					ok = ok || rec.Label == l
				}
				if !ok {
					t.Fatalf("input %d: node %d predicted label %d outside its group %v", i, rec.Node, rec.Label, group)
				}
			}
			nodesSeen[rec.Node]++
		}
	}
	for ni := range g.Nodes {
		if nodesSeen[ni] == 0 {
			t.Fatalf("no input exited in node %d: %v", ni, nodesSeen)
		}
	}
}

// TestRoutedGraphBatchMatchesSerial is the routed differential: across
// batch sizes and both threshold regimes, the batched walk — three-way
// compaction, per-branch gathers, queued branch groups — must reproduce
// the per-sample serial record exactly, branch exits included.
func TestRoutedGraphBatchMatchesSerial(t *testing.T) {
	g := routedGraph(t, 43)
	sess, err := NewGraphSession(g)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewGraphSession(g)
	if err != nil {
		t.Fatal(err)
	}
	nodesSeen := make(map[int]int)
	seed := int64(300)
	for _, delta := range routingDeltas {
		for _, bsz := range []int{1, 2, 5, 13, 32} {
			xs := mixedInputs(bsz, seed)
			seed++
			recs := sess.ClassifyBatch(xs, delta)
			for i, x := range xs {
				want := ref.ClassifyDelta(x, delta)
				assertRecordsMatch(t, "routed-batch", i, recs[i], want)
				nodesSeen[want.Node]++
			}
		}
	}
	if nodesSeen[1] == 0 || nodesSeen[2] == 0 {
		t.Fatalf("sweep never exercised both branches: %v", nodesSeen)
	}
	// Trace detail: batched-with-trace equals the batch-of-one reference,
	// trace included, through branch handoffs (a routed row's trace keeps
	// accumulating in its branch group).
	pol := DefaultExitPolicy()
	pol.Delta = 0.999
	pol.Trace = true
	xs := mixedInputs(40, seed)
	recs := sess.ClassifyBatchPolicy(xs, pol)
	for i, x := range xs {
		want := ref.ClassifyBatchPolicy([]*tensor.T{x}, pol)[0]
		assertRecordsIdentical(t, "routed-trace", i, recs[i], want)
		if len(want.Trace) == 0 {
			t.Fatalf("input %d: empty trace", i)
		}
	}
}

// TestRoutedGraphSplitEquivalence pins tier splits through the router:
// for every trunk split stage, prefix+resume — with branch handoffs
// resuming at (branch, 0) — equals the monolithic walk exactly, serial
// and batched.
func TestRoutedGraphSplitEquivalence(t *testing.T) {
	g := routedGraph(t, 44)
	sess, err := NewGraphSession(g)
	if err != nil {
		t.Fatal(err)
	}
	cloud, err := NewGraphSession(g)
	if err != nil {
		t.Fatal(err)
	}
	branchHandoffs := 0
	for _, delta := range routingDeltas {
		xs := mixedInputs(60, 13)
		for split := 0; split <= len(g.Trunk().Stages); split++ {
			// Serial: ClassifyPrefix + ResumeAt.
			for i, x := range xs {
				want := sess.ClassifyDelta(x, delta)
				pre := sess.ClassifyPrefix(x, split, delta)
				got := pre.Record
				if !pre.Exited {
					if pre.Pos != g.SplitPosOf(pre.Node, pre.FromStage) {
						t.Fatalf("split %d input %d: handoff pos %d, want %d", split, i, pre.Pos, g.SplitPosOf(pre.Node, pre.FromStage))
					}
					if pre.Node > 0 {
						if pre.FromStage != 0 {
							t.Fatalf("split %d input %d: branch handoff resumes at stage %d, want 0", split, i, pre.FromStage)
						}
						branchHandoffs++
					}
					got = cloud.ResumeAt(pre.Activation, pre.Node, pre.FromStage, delta)
				}
				assertRecordsMatch(t, "routed-split-serial", i, got, want)
			}
			// Batched: ClassifyPrefixBatch + per-(node,stage) ResumeBatchPolicyAt.
			wantRecs := sess.ClassifyBatch(xs, delta)
			pres := sess.ClassifyPrefixBatch(xs, split, delta)
			type handoff struct{ node, from int }
			deferred := make(map[handoff][]*tensor.T)
			deferredIdx := make(map[handoff][]int)
			for i, pre := range pres {
				if pre.Exited {
					assertRecordsMatch(t, "routed-split-batch-local", i, pre.Record, wantRecs[i])
					continue
				}
				h := handoff{pre.Node, pre.FromStage}
				deferred[h] = append(deferred[h], pre.Activation)
				deferredIdx[h] = append(deferredIdx[h], i)
			}
			for h, acts := range deferred {
				resumed := cloud.ResumeBatchPolicyAt(acts, h.node, h.from, deltaPolicy(delta))
				for j, i := range deferredIdx[h] {
					assertRecordsMatch(t, "routed-split-batch-resumed", i, resumed[j], wantRecs[i])
				}
			}
		}
	}
	if branchHandoffs == 0 {
		t.Fatal("no split handed an input off at a branch entry")
	}
}

// TestRoutedGraphDepthCap pins MaxExit's path-depth semantics on the tree:
// the cap bounds exits per root-to-exit path — a routed input is forced
// out at the branch stage that sits at the cap depth, not at a global
// stage index — and batched results under the cap equal the batch-of-one
// reference.
func TestRoutedGraphDepthCap(t *testing.T) {
	g := routedGraph(t, 45)
	if err := g.ValidatePolicy(DepthCapped(g.MaxDepth())); err != nil {
		t.Fatalf("cap at MaxDepth rejected: %v", err)
	}
	if err := g.ValidatePolicy(DepthCapped(g.MaxDepth() + 1)); err == nil {
		t.Fatal("cap beyond MaxDepth accepted")
	}
	sess, err := NewGraphSession(g)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewGraphSession(g)
	if err != nil {
		t.Fatal(err)
	}
	for cap := 0; cap <= g.MaxDepth(); cap++ {
		pol := DepthCapped(cap)
		pol.Delta = 0.999 // route-heavy: exercise forced exits inside branches
		exitsSeen := make(map[int]int)
		for _, bsz := range []int{1, 7, 24} {
			xs := mixedInputs(bsz, int64(500+cap*10+bsz))
			recs := sess.ClassifyBatchPolicy(xs, pol)
			for i, x := range xs {
				want := ref.ClassifyBatchPolicy([]*tensor.T{x}, pol)[0]
				assertRecordsMatch(t, "depth-cap", i, recs[i], want)
				if d := g.ExitDepth(recs[i].StageIndex); d > cap {
					t.Fatalf("cap %d: input %d exited at depth %d (exit %d)", cap, i, d, recs[i].StageIndex)
				}
				exitsSeen[recs[i].StageIndex]++
			}
		}
		if cap == 0 && (len(exitsSeen) != 1 || exitsSeen[0] == 0) {
			t.Fatalf("cap 0 exits %v, want all at the router stage", exitsSeen)
		}
		if cap == 1 && exitsSeen[3] == 0 && exitsSeen[5] == 0 {
			t.Fatalf("cap 1 exits %v never forced a branch stage", exitsSeen)
		}
	}
	// A cap below the resume point's path depth is unservable and panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("resume below the cap did not panic")
			}
		}()
		act := tensor.New(2, 5, 5)
		sess.ResumeBatchPolicyAt([]*tensor.T{act}, 1, 0, DepthCapped(0))
	}()
}

// TestGraphValidateRejects is the malformed-topology table: every way a
// graph can fail Validate, with the message pinned by substring.
func TestGraphValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		g    func() *Graph
		want string
	}{
		{"no nodes", func() *Graph { return &Graph{} }, "no nodes"},
		{"nil model", func() *Graph {
			g := rawRoutedGraph(60)
			g.Nodes[1].Model = nil
			return g
		}, "nil or has no model"},
		{"unnamed branch", func() *Graph {
			g := rawRoutedGraph(61)
			g.Nodes[1].Name = ""
			return g
		}, "has no name"},
		{"duplicate name", func() *Graph {
			g := rawRoutedGraph(62)
			g.Nodes[2].Name = "lo"
			return g
		}, "share the name"},
		{"label count", func() *Graph {
			g := rawRoutedGraph(63)
			g.Nodes[1].Labels = []int{0}
			return g
		}, "1 labels for 2 classes"},
		{"label range", func() *Graph {
			g := rawRoutedGraph(64)
			g.Nodes[1].Labels = []int{0, 3}
			return g
		}, "outside [0,3)"},
		{"duplicate label", func() *Graph {
			g := rawRoutedGraph(65)
			g.Nodes[1].Labels = []int{1, 1}
			return g
		}, "maps two classes to label 1"},
		{"narrow branch without labels", func() *Graph {
			g := rawRoutedGraph(66)
			g.Nodes[1].Labels = nil
			return g
		}, "no label mapping"},
		{"route stage out of range", func() *Graph {
			g := rawRoutedGraph(67)
			g.Nodes[0].Routes[0].Stage = 5
			return g
		}, "route at stage 5 outside"},
		{"two routes one stage", func() *Graph {
			g := rawRoutedGraph(68)
			g.Nodes[0].Routes = append(g.Nodes[0].Routes, Route{Stage: 0, Branch: []int{-1, -1, -1}})
			return g
		}, "two routes at stage 0"},
		{"branch cell count", func() *Graph {
			g := rawRoutedGraph(69)
			g.Nodes[0].Routes[0].Branch = []int{1, -1}
			return g
		}, "2 branch cells for 3 classes"},
		{"route targets the trunk", func() *Graph {
			g := rawRoutedGraph(70)
			g.Nodes[0].Routes[0].Branch[1] = 0
			return g
		}, "targets node 0 outside"},
		{"route target out of range", func() *Graph {
			g := rawRoutedGraph(71)
			g.Nodes[0].Routes[0].Branch[1] = 9
			return g
		}, "targets node 9 outside"},
		{"merge", func() *Graph {
			g := rawRoutedGraph(72)
			g.Nodes[0].Routes = append(g.Nodes[0].Routes, Route{Stage: 1, Branch: []int{1, -1, -1}})
			return g
		}, "targeted by two routes"},
		{"orphan", func() *Graph {
			g := rawRoutedGraph(73)
			g.Nodes[0].Routes = nil
			return g
		}, "no route targets it"},
		{"branch shape mismatch", func() *Graph {
			g := rawRoutedGraph(74)
			bad := passThroughBranch(74, -1)
			bad.Name, bad.Routes = "lo", nil
			g.Nodes[1] = bad
			return g
		}, "does not match parent tap shape"},
		{"cycle", func() *Graph {
			b1, b2 := passThroughBranch(75, 2), passThroughBranch(76, 1)
			b1.Name, b2.Name = "b1", "b2"
			return &Graph{Nodes: []*Node{{Name: "trunk", Model: rawTrunk(77)}, b1, b2}}
		}, "route cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.g().Validate()
			if err == nil {
				t.Fatal("Validate accepted a malformed graph")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestGraphWithBranch covers the hot-swap primitive: an individual branch
// is replaced atomically in a validated copy, the source graph untouched,
// and an incompatible replacement never displaces the serving one.
func TestGraphWithBranch(t *testing.T) {
	g := rawRoutedGraph(80)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	oldLo := g.Nodes[1].Model
	swapped, err := g.WithBranch("lo", branchCDLN(81, 2))
	if err != nil {
		t.Fatal(err)
	}
	if g.Nodes[1].Model != oldLo {
		t.Fatal("WithBranch mutated the source graph")
	}
	if swapped.Nodes[1].Model == oldLo {
		t.Fatal("WithBranch did not replace the branch")
	}
	if err := swapped.Validate(); err != nil {
		t.Fatal(err)
	}
	// Wrong class count for the node's label group.
	if _, err := g.WithBranch("lo", branchCDLN(82, 3)); err == nil {
		t.Fatal("incompatible branch accepted")
	}
	// Wrong input shape for the parent tap.
	if _, err := g.WithBranch("lo", passThroughBranch(83, -1).Model); err == nil {
		t.Fatal("shape-mismatched branch accepted")
	}
	if _, err := g.WithBranch("nope", branchCDLN(84, 2)); err == nil {
		t.Fatal("unknown branch name accepted")
	}
	// The trunk swaps through the same surface ("" or its name).
	if _, err := g.WithBranch("", rawTrunk(85)); err != nil {
		t.Fatalf("trunk swap via \"\": %v", err)
	}
	if _, err := g.WithBranch("trunk", rawTrunk(86)); err != nil {
		t.Fatalf("trunk swap via name: %v", err)
	}
}

// Routing benchmarks — CI archives these as BENCH_routing.json: the routed
// tree against the linear trunk on the identical input stream, batched.

func benchClassifyBatch(b *testing.B, g *Graph, delta float64) {
	b.Helper()
	sess, err := NewGraphSession(g)
	if err != nil {
		b.Fatal(err)
	}
	const bsz = 32
	xs := mixedInputs(bsz, 99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.ClassifyBatch(xs, delta)
	}
	b.ReportMetric(float64(bsz*b.N)/b.Elapsed().Seconds(), "images/s")
}

// BenchmarkRoutedGraphClassifyBatch measures the tree under route-heavy
// traffic: δ=0.999 suppresses trunk exits, so nearly every input crosses
// the router into a branch cascade.
func BenchmarkRoutedGraphClassifyBatch(b *testing.B) {
	benchClassifyBatch(b, routedGraph(b, 90), 0.999)
}

// BenchmarkLinearGraphClassifyBatch is the degenerate-case baseline: the
// same trunk as a one-node graph with its trained thresholds.
func BenchmarkLinearGraphClassifyBatch(b *testing.B) {
	benchClassifyBatch(b, LinearGraph(batchCDLN(b, 90)), -1)
}
