package core

import (
	"math"
	"testing"

	"cdl/internal/fixed"
	"cdl/internal/tensor"
	"cdl/internal/train"
)

func builtCDLN(t *testing.T, seed int64) (*CDLN, []train.Sample) {
	t.Helper()
	arch, data := trainedArch(t, seed)
	cfg := DefaultBuildConfig()
	cfg.ForceAllStages = true
	cdln, _, err := Build(arch, data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cdln, data
}

func TestStageDeltasOverrideGlobal(t *testing.T) {
	cdln, data := builtCDLN(t, 21)
	// Per-stage thresholds of 1.0 everywhere force every input to FC even
	// though the global Delta stays loose.
	cdln.Delta = 0.5
	cdln.StageDeltas = []float64{1.0, 1.0}
	for i := 0; i < 10; i++ {
		if rec := cdln.Classify(data[i].X); rec.StageName != "FC" {
			t.Fatalf("sample %d exited at %s despite per-stage δ=1", i, rec.StageName)
		}
	}
	// And loose per-stage thresholds restore early exit for some inputs.
	cdln.StageDeltas = []float64{0.5, 0.5}
	early := false
	for i := range data {
		if rec := cdln.Classify(data[i].X); rec.StageIndex == 0 {
			early = true
			break
		}
	}
	if !early {
		t.Error("no input exits early at per-stage δ=0.5")
	}
}

func TestStageDeltasValidate(t *testing.T) {
	cdln, _ := builtCDLN(t, 22)
	cdln.StageDeltas = []float64{0.5}
	if cdln.Validate() == nil {
		t.Error("length-mismatched StageDeltas validated")
	}
	cdln.StageDeltas = []float64{0.5, 1.5}
	if cdln.Validate() == nil {
		t.Error("out-of-range stage delta validated")
	}
	cdln.StageDeltas = []float64{0.5, 0.7}
	if err := cdln.Validate(); err != nil {
		t.Error(err)
	}
	clone := cdln.Clone()
	if len(clone.StageDeltas) != 2 {
		t.Error("Clone lost StageDeltas")
	}
	clone.StageDeltas[0] = 0.9
	if cdln.StageDeltas[0] == 0.9 {
		t.Error("Clone shares StageDeltas storage")
	}
}

func TestTuneDeltasImprovesOrMatches(t *testing.T) {
	cdln, data := builtCDLN(t, 23)
	before, err := Evaluate(cdln, data, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTuneConfig()
	cfg.Grid = []float64{0.4, 0.5, 0.6, 0.8}
	deltas, after, err := TuneDeltas(cdln, data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != len(cdln.Stages) {
		t.Fatalf("got %d deltas for %d stages", len(deltas), len(cdln.Stages))
	}
	if after.Confusion.Accuracy() < before.Confusion.Accuracy() {
		t.Errorf("tuning reduced accuracy: %.4f -> %.4f",
			before.Confusion.Accuracy(), after.Confusion.Accuracy())
	}
	// The CDLN itself must now carry the tuned thresholds.
	for i, d := range deltas {
		if cdln.StageDeltas[i] != d {
			t.Error("returned deltas not installed on the CDLN")
		}
	}
}

func TestTuneDeltasValidation(t *testing.T) {
	cdln, data := builtCDLN(t, 24)
	if _, _, err := TuneDeltas(cdln, nil, DefaultTuneConfig()); err == nil {
		t.Error("empty validation set accepted")
	}
	bad := DefaultTuneConfig()
	bad.Grid = []float64{0, 0.5}
	if _, _, err := TuneDeltas(cdln, data, bad); err == nil {
		t.Error("grid value 0 accepted")
	}
}

func TestTuneDeltasOpsConstraint(t *testing.T) {
	cdln, data := builtCDLN(t, 25)
	cfg := DefaultTuneConfig()
	cfg.Grid = []float64{0.4, 0.6, 0.9}
	cfg.MaxNormalizedOps = 0.7
	_, res, err := TuneDeltas(cdln, data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The constraint only filters candidate settings; the baseline
	// (pre-sweep) setting may violate it, but if the final config was
	// picked from the grid it must obey it within tolerance.
	if res.NormalizedOps() > 1.2 {
		t.Errorf("normalized ops %.3f far above any sane setting", res.NormalizedOps())
	}
}

func TestQuantizeCDLNPreservesBehaviour(t *testing.T) {
	cdln, data := builtCDLN(t, 26)
	q, maxErr, err := QuantizeCDLN(cdln, fixed.Q2x13)
	if err != nil {
		t.Fatal(err)
	}
	if maxErr > fixed.Q2x13.Resolution()/2+1e-12 {
		t.Errorf("max rounding error %v exceeds half step", maxErr)
	}
	// Weights must actually be on the fixed-point grid.
	for _, p := range q.Arch.Net.Params() {
		for _, w := range p.W.Data {
			if r := fixed.Q2x13.Round(w); r != w {
				t.Fatalf("weight %v not representable in Q2.13", w)
			}
		}
	}
	// The float model must be untouched.
	for _, p := range cdln.Arch.Net.Params() {
		onGrid := true
		for _, w := range p.W.Data {
			if fixed.Q2x13.Round(w) != w {
				onGrid = false
			}
		}
		if onGrid && p.W.Numel() > 4 {
			// Exceedingly unlikely for trained float weights; flags
			// accidental write-through.
			t.Fatalf("float model parameter %s appears quantized in place", p.Name)
		}
	}
	// Q2.13 has ~1e-4 resolution; predictions should rarely change. Demand
	// ≥90% agreement on the training data.
	agree := 0
	for i := range data {
		a := cdln.Classify(data[i].X)
		b := q.Classify(data[i].X)
		if a.Label == b.Label {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(data)); frac < 0.9 {
		t.Errorf("quantized model agrees on only %.1f%% of inputs", 100*frac)
	}
}

func TestQuantizeCDLNBadFormat(t *testing.T) {
	cdln, _ := builtCDLN(t, 27)
	if _, _, err := QuantizeCDLN(cdln, fixed.Format{IntBits: -1}); err == nil {
		t.Error("bad format accepted")
	}
}

func TestDeepCloneIsolation(t *testing.T) {
	cdln, data := builtCDLN(t, 28)
	deep := cdln.Arch.Net.DeepClone()
	orig := cdln.Arch.Net.Params()[0].W.Data[0]
	deep.Params()[0].W.Data[0] = orig + 42
	if cdln.Arch.Net.Params()[0].W.Data[0] != orig {
		t.Fatal("DeepClone shares weight storage")
	}
	// Unmodified weights still agree functionally.
	deep.Params()[0].W.Data[0] = orig
	x := data[0].X
	a := cdln.Arch.Net.Forward(x)
	b := deep.Forward(x)
	if !tensor.AllClose(a, b, 1e-12) {
		t.Error("DeepClone diverges functionally")
	}
}

func TestQuantizationAccuracySweep(t *testing.T) {
	// Coarser formats must not *increase* fidelity: label agreement with
	// the float model is non-increasing as fractional bits shrink.
	cdln, data := builtCDLN(t, 29)
	formats := []fixed.Format{
		{IntBits: 2, FracBits: 13},
		{IntBits: 2, FracBits: 8},
		{IntBits: 2, FracBits: 4},
	}
	prev := 1.1
	for _, f := range formats {
		q, _, err := QuantizeCDLN(cdln, f)
		if err != nil {
			t.Fatal(err)
		}
		agree := 0
		for i := range data {
			if cdln.Classify(data[i].X).Label == q.Classify(data[i].X).Label {
				agree++
			}
		}
		frac := float64(agree) / float64(len(data))
		if frac > prev+0.05 {
			t.Errorf("%v agreement %.3f exceeds finer format's %.3f", f, frac, prev)
		}
		prev = math.Min(prev, frac+0.05)
	}
}
