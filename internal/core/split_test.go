package core

import (
	"testing"

	"cdl/internal/tensor"
)

// splitCDLN builds the two-stage test cascade used by the tier-split tests.
func splitCDLN(t *testing.T, seed int64) (*CDLN, []*tensor.T) {
	t.Helper()
	arch, data := trainedArch(t, seed)
	cfg := DefaultBuildConfig()
	cfg.ForceAllStages = true
	cdln, _, err := Build(arch, data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]*tensor.T, len(data))
	for i, s := range data {
		xs[i] = s.X
	}
	return cdln, xs
}

// copyActivation simulates the wire: the prefix activation aliases the edge
// session's layer caches, so a transport must serialize it before the
// session is reused. A deep copy is the lossless equivalent.
func copyActivation(act *tensor.T) *tensor.T {
	return tensor.FromSlice(append([]float64(nil), act.Data...), act.Shape()...)
}

func sameRecord(a, b ExitRecord) bool {
	return a.StageIndex == b.StageIndex && a.StageName == b.StageName &&
		a.Label == b.Label && a.Confidence == b.Confidence && a.Ops == b.Ops
}

// TestSplitIdentityEverySplitStage is the tier-split identity guarantee:
// for every split stage and every input, the edge-exit and edge→cloud
// resume paths must agree bit-for-bit with the monolithic Classify —
// labels, exits, confidences and (full-pipeline) OPS.
func TestSplitIdentityEverySplitStage(t *testing.T) {
	cdln, xs := splitCDLN(t, 31)
	mono, err := NewSession(cdln)
	if err != nil {
		t.Fatal(err)
	}
	for _, delta := range []float64{-1, 0.55, 0.9} {
		for split := 0; split <= len(cdln.Stages); split++ {
			edge, err := NewSession(cdln)
			if err != nil {
				t.Fatal(err)
			}
			cloud, err := NewSession(cdln)
			if err != nil {
				t.Fatal(err)
			}
			localExits, offloads := 0, 0
			for i, x := range xs {
				want := mono.ClassifyDelta(x, delta)
				pre := edge.ClassifyPrefix(x, split, delta)
				var got ExitRecord
				if pre.Exited {
					localExits++
					if pre.Record.StageIndex >= split {
						t.Fatalf("split %d: prefix exited at stage %d", split, pre.Record.StageIndex)
					}
					got = pre.Record
				} else {
					offloads++
					if wantPos := cdln.SplitPos(split); pre.Pos != wantPos {
						t.Fatalf("split %d: prefix pos %d, want %d", split, pre.Pos, wantPos)
					}
					got = cloud.Resume(copyActivation(pre.Activation), split, delta)
					if got.StageIndex < split {
						t.Fatalf("split %d: resume exited at stage %d", split, got.StageIndex)
					}
				}
				if !sameRecord(got, want) {
					t.Fatalf("split %d δ=%v sample %d: split-path %+v != monolithic %+v",
						split, delta, i, got, want)
				}
			}
			if split == 0 && localExits != 0 {
				t.Fatalf("split 0 produced %d local exits", localExits)
			}
			if split == len(cdln.Stages) && delta < 0 && offloads == len(xs) {
				t.Fatalf("full-cascade edge never exited locally; fixture degenerate")
			}
		}
	}
}

// TestResumeFromZeroIsClassify pins Resume's degenerate split: resuming the
// raw input from stage 0 is exactly ClassifyDelta.
func TestResumeFromZeroIsClassify(t *testing.T) {
	cdln, xs := splitCDLN(t, 32)
	a, _ := NewSession(cdln)
	b, _ := NewSession(cdln)
	for i, x := range xs[:40] {
		want := a.ClassifyDelta(x, -1)
		got := b.Resume(copyActivation(x), 0, -1)
		if !sameRecord(got, want) {
			t.Fatalf("sample %d: %+v != %+v", i, got, want)
		}
	}
}

// TestSplitValidation covers the misuse panics: split stage out of range
// and resume-activation shape mismatch.
func TestSplitValidation(t *testing.T) {
	cdln, xs := splitCDLN(t, 33)
	sess, _ := NewSession(cdln)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("SplitPos(-1)", func() { cdln.SplitPos(-1) })
	mustPanic("SplitPos(too deep)", func() { cdln.SplitPos(len(cdln.Stages) + 1) })
	mustPanic("ClassifyPrefix out of range", func() { sess.ClassifyPrefix(xs[0], len(cdln.Stages)+1, -1) })
	mustPanic("Resume out of range", func() { sess.Resume(xs[0], -1, -1) })
	mustPanic("Resume wrong shape", func() { sess.Resume(xs[0], 1, -1) })
	mustPanic("Resume wrong rank", func() { sess.Resume(tensor.New(4), 1, -1) })
}

// TestSplitOpsEnergyAccounting checks that the dynamic cost attributed to a
// split-path record is the full-pipeline cost, independent of which tier
// computed it, so downstream OPS and energy accounting (both keyed by
// StageIndex/Ops) cannot drift between deployments.
func TestSplitOpsEnergyAccounting(t *testing.T) {
	cdln, xs := splitCDLN(t, 34)
	exitOps := cdln.ExitOps()
	edge, _ := NewSession(cdln)
	cloud, _ := NewSession(cdln)
	for _, x := range xs[:60] {
		pre := edge.ClassifyPrefix(x, 1, -1)
		rec := pre.Record
		if !pre.Exited {
			rec = cloud.Resume(copyActivation(pre.Activation), 1, -1)
		}
		if rec.Ops != exitOps[rec.StageIndex] {
			t.Fatalf("record ops %v != exit ops %v at exit %d", rec.Ops, exitOps[rec.StageIndex], rec.StageIndex)
		}
	}
}
