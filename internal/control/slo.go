package control

// slo.go declares what the operator wants the serving system to hold and
// how far it may bend the model to hold it. An SLO is attached to a
// registry entry (serve.Registry.SetSLO, PUT /v2/models/{name}/slo or
// `cdlserve -slo ...`); the Controller then trades cascade depth for the
// declared targets.

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// SLO declares per-entry serving targets. Zero-valued fields are inactive
// ("no target"); at least one of the three targets must be set for a
// controller to attach.
type SLO struct {
	// P99LatencyMs is the p99 queue+service latency target in
	// milliseconds, measured over the telemetry window.
	P99LatencyMs float64 `json:"p99_latency_ms,omitempty"`
	// MaxQueueFrac is the maximum tolerated work-queue occupancy in
	// [0,1] — the early-warning signal that fires before latency does.
	MaxQueueFrac float64 `json:"max_queue_frac,omitempty"`
	// EnergyBudgetPJ is the mean dynamic energy budget per image in pJ
	// over the telemetry window — the edge deployment's battery knob.
	EnergyBudgetPJ float64 `json:"energy_budget_pj,omitempty"`
	// AccuracyFloorDelta bounds how much accuracy the controller may
	// trade away, expressed on the actuation axis: the fraction of the
	// cascade's exit points that must stay reachable. 0.5 on a 4-stage
	// cascade keeps MaxExit ≥ 2; 0 (the default) lets overload push every
	// input to the first exit. True accuracy is unobservable online (no
	// labels), so the floor constrains the policy excursion — the paper's
	// Fig. 10 maps depth to accuracy offline.
	AccuracyFloorDelta float64 `json:"accuracy_floor_delta,omitempty"`
}

// Active reports whether any target is set.
func (s SLO) Active() bool {
	return s.P99LatencyMs > 0 || s.MaxQueueFrac > 0 || s.EnergyBudgetPJ > 0
}

// Validate rejects non-finite, negative and out-of-range fields, and an
// SLO with no target at all.
func (s SLO) Validate() error {
	check := func(name string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("control: %s %v must be a finite value ≥ 0", name, v)
		}
		return nil
	}
	if err := check("p99_latency_ms", s.P99LatencyMs); err != nil {
		return err
	}
	if err := check("max_queue_frac", s.MaxQueueFrac); err != nil {
		return err
	}
	if s.MaxQueueFrac > 1 {
		return fmt.Errorf("control: max_queue_frac %v outside [0,1]", s.MaxQueueFrac)
	}
	if err := check("energy_budget_pj", s.EnergyBudgetPJ); err != nil {
		return err
	}
	if err := check("accuracy_floor_delta", s.AccuracyFloorDelta); err != nil {
		return err
	}
	if s.AccuracyFloorDelta > 1 {
		return fmt.Errorf("control: accuracy_floor_delta %v outside [0,1]", s.AccuracyFloorDelta)
	}
	if !s.Active() {
		return fmt.Errorf("control: SLO declares no target (set p99, queue or energy)")
	}
	return nil
}

// String renders the SLO in ParseSLO's flag syntax.
func (s SLO) String() string {
	var parts []string
	if s.P99LatencyMs > 0 {
		parts = append(parts, fmt.Sprintf("p99=%gms", s.P99LatencyMs))
	}
	if s.MaxQueueFrac > 0 {
		parts = append(parts, fmt.Sprintf("queue=%g", s.MaxQueueFrac))
	}
	if s.EnergyBudgetPJ > 0 {
		parts = append(parts, fmt.Sprintf("energy=%g", s.EnergyBudgetPJ))
	}
	if s.AccuracyFloorDelta > 0 {
		parts = append(parts, fmt.Sprintf("floor=%g", s.AccuracyFloorDelta))
	}
	return strings.Join(parts, ",")
}

// ParseSLO parses the `-slo` flag syntax: comma-separated key=value pairs
// with keys p99 (a duration like "15ms" or a bare millisecond count),
// queue (occupancy fraction in (0,1]), energy (mean pJ/image) and floor
// (reachable exit-point fraction in [0,1]).
//
//	cdlserve -slo p99=15ms,energy=2.5e9
//	cdlserve -slo queue=0.8,floor=0.5
func ParseSLO(s string) (SLO, error) {
	var slo SLO
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return SLO{}, fmt.Errorf("control: SLO term %q is not key=value", part)
		}
		switch strings.TrimSpace(key) {
		case "p99":
			if d, err := time.ParseDuration(val); err == nil {
				slo.P99LatencyMs = float64(d) / float64(time.Millisecond)
			} else if ms, ferr := strconv.ParseFloat(val, 64); ferr == nil {
				slo.P99LatencyMs = ms
			} else {
				return SLO{}, fmt.Errorf("control: p99 %q is neither a duration nor milliseconds", val)
			}
		case "queue":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return SLO{}, fmt.Errorf("control: queue %q: %v", val, err)
			}
			slo.MaxQueueFrac = f
		case "energy":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return SLO{}, fmt.Errorf("control: energy %q: %v", val, err)
			}
			slo.EnergyBudgetPJ = f
		case "floor":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return SLO{}, fmt.Errorf("control: floor %q: %v", val, err)
			}
			slo.AccuracyFloorDelta = f
		default:
			return SLO{}, fmt.Errorf("control: unknown SLO key %q (want p99, queue, energy or floor)", key)
		}
	}
	if err := slo.Validate(); err != nil {
		return SLO{}, err
	}
	return slo, nil
}
