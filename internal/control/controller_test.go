package control

import (
	"testing"

	"cdl/internal/core"
)

func TestLadder(t *testing.T) {
	l := Ladder(3, 0)
	if len(l) != 4 {
		t.Fatalf("ladder length %d, want 4", len(l))
	}
	if !l[0].Equal(core.DefaultExitPolicy()) {
		t.Errorf("rung 0 = %+v, want identity", l[0])
	}
	for k, wantME := range map[int]int{1: 2, 2: 1, 3: 0} {
		if l[k].MaxExit != wantME || l[k].Delta != -1 {
			t.Errorf("rung %d = %+v, want trained δ with MaxExit %d", k, l[k], wantME)
		}
	}
	// An accuracy floor truncates the deep end: floor 0.5 on 4 stages
	// keeps MaxExit ≥ 2.
	l = Ladder(4, 0.5)
	if len(l) != 3 || l[len(l)-1].MaxExit != 2 {
		t.Errorf("floored ladder %+v, want rungs down to MaxExit 2", l)
	}
	// floor 1.0 leaves only the identity rung.
	if l = Ladder(4, 1); len(l) != 1 {
		t.Errorf("floor 1.0 ladder has %d rungs, want 1", len(l))
	}
}

func TestControllerNewRejects(t *testing.T) {
	if _, err := New(SLO{}, Ladder(3, 0), Config{}); err == nil {
		t.Error("empty SLO accepted")
	}
	if _, err := New(SLO{P99LatencyMs: 15}, Ladder(3, 1), Config{}); err == nil {
		t.Error("one-rung ladder accepted — nothing to actuate")
	}
}

// TestControllerBoundedSteps pins the bounded-step safety property: no
// single tick may move the policy more than MaxStep rungs, whatever the
// telemetry says.
func TestControllerBoundedSteps(t *testing.T) {
	c, err := New(SLO{P99LatencyMs: 10}, Ladder(5, 0), Config{MaxStep: 1, RecoverHold: 1, ProbationTicks: 1})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	// Catastrophic overload for 20 ticks, then instant calm: rung must
	// move at most one step per tick in both directions.
	for i := 0; i < 40; i++ {
		s := Sample{P99LatencyMS: 1e6, QueueFrac: 1, Images: 100}
		if i >= 20 {
			s = Sample{P99LatencyMS: 0.1, QueueFrac: 0, Images: 100}
		}
		d := c.Step(s)
		if diff := d.Rung - prev; diff < -1 || diff > 1 {
			t.Fatalf("tick %d moved %d rungs (from %d to %d), want |step| ≤ 1", i, diff, prev, d.Rung)
		}
		prev = d.Rung
	}
	if prev != 0 {
		t.Errorf("rung %d after sustained calm, want 0", prev)
	}
}

// TestControllerIgnoresThinSignals checks that latency/energy readings
// backed by fewer than MinSamples images cannot trip the controller,
// while queue occupancy always can.
func TestControllerIgnoresThinSignals(t *testing.T) {
	c, err := New(SLO{P99LatencyMs: 10, MaxQueueFrac: 0.8}, Ladder(3, 0), Config{MinSamples: 8})
	if err != nil {
		t.Fatal(err)
	}
	if d := c.Step(Sample{P99LatencyMS: 1e6, Images: 3}); d.Action != ActionHold || d.Rung != 0 {
		t.Errorf("thin latency signal acted: %+v", d)
	}
	if d := c.Step(Sample{QueueFrac: 0.95, Images: 0}); d.Action != ActionShallow {
		t.Errorf("queue violation with empty window ignored: %+v", d)
	}
}

// TestControllerStarvedWindow pins the total-overload edge of a
// latency-only SLO: when the window is too thin to evaluate any target
// but demand is arriving, the controller must treat it as violation
// (shallow / hold the mitigation), never as comfort — the window is
// empty precisely because nothing completes. With no demand either, it
// is genuinely idle and recovers.
func TestControllerStarvedWindow(t *testing.T) {
	c, err := New(SLO{P99LatencyMs: 10}, Ladder(3, 0), Config{RecoverHold: 1, MinSamples: 8})
	if err != nil {
		t.Fatal(err)
	}
	starved := Sample{Images: 0, Arrivals: 100}
	if d := c.Step(starved); d.Action != ActionShallow || d.Rung != 1 {
		t.Fatalf("starved window: %+v, want shallow to rung 1", d)
	}
	for i := 0; i < 10; i++ {
		c.Step(starved)
	}
	if got := c.State().Rung; got != c.MaxRung() {
		t.Fatalf("sustained starvation parked at rung %d, want saturation at %d", got, c.MaxRung())
	}
	// Demand stops entirely: idle, recover toward the trained policy.
	idle := Sample{Images: 0, Arrivals: 0}
	for i := 0; i < 20; i++ {
		c.Step(idle)
	}
	if got := c.State().Rung; got != 0 {
		t.Errorf("idle recovery parked at rung %d, want 0", got)
	}
}

// TestControllerHysteresisBand checks that a reading between the
// recovery margin and the target neither shallows nor deepens.
func TestControllerHysteresisBand(t *testing.T) {
	c, err := New(SLO{P99LatencyMs: 10}, Ladder(3, 0), Config{RecoverHold: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Push to rung 1, then hover at 0.9×target (above the 0.85 margin,
	// below the target): the controller must hold indefinitely.
	c.Step(Sample{P99LatencyMS: 50, Images: 100})
	for i := 0; i < 50; i++ {
		if d := c.Step(Sample{P99LatencyMS: 9, Images: 100}); d.Action != ActionHold || d.Rung != 1 {
			t.Fatalf("tick %d in hysteresis band: %+v, want hold at rung 1", i, d)
		}
	}
	// Dropping below the margin for RecoverHold ticks deepens.
	c.Step(Sample{P99LatencyMS: 2, Images: 100})
	if d := c.Step(Sample{P99LatencyMS: 2, Images: 100}); d.Action != ActionDeepen || d.Rung != 0 {
		t.Fatalf("after sustained headroom: %+v, want deepen to rung 0", d)
	}
}

// TestControllerRecoveryBackoff checks the probation mechanism: a deepen
// that immediately re-violates doubles the next recovery wait, and a
// clean probation resets it.
func TestControllerRecoveryBackoff(t *testing.T) {
	cfg := Config{RecoverHold: 2, ProbationTicks: 3, MaxRecoverHold: 16}
	c, err := New(SLO{P99LatencyMs: 10}, Ladder(3, 0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	calm := Sample{P99LatencyMS: 1, Images: 100}
	hot := Sample{P99LatencyMS: 100, Images: 100}

	c.Step(hot) // rung 1
	c.Step(calm)
	if d := c.Step(calm); d.Action != ActionDeepen {
		t.Fatalf("first recovery: %+v, want deepen after RecoverHold=2", d)
	}
	c.Step(hot) // violation inside probation → backoff to 4
	if got := c.State().RecoverHold; got != 4 {
		t.Fatalf("recover hold after failed probation = %d, want 4", got)
	}
	for i := 0; i < 3; i++ {
		if d := c.Step(calm); d.Action != ActionHold {
			t.Fatalf("backoff tick %d: %+v, want hold", i, d)
		}
	}
	if d := c.Step(calm); d.Action != ActionDeepen {
		t.Fatalf("4th calm tick: %+v, want deepen under backed-off hold", d)
	}
	// Probation passes cleanly this time: backoff resets.
	for i := 0; i < cfg.ProbationTicks; i++ {
		c.Step(calm)
	}
	if got := c.State().RecoverHold; got != cfg.RecoverHold {
		t.Errorf("recover hold after clean probation = %d, want %d", got, cfg.RecoverHold)
	}
}
