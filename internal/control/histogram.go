package control

// histogram.go is the latency-distribution primitive behind both the
// sliding telemetry window and the serving layer's cumulative /statsz
// histograms: a fixed, log-spaced bucket layout over [1µs, 60s] so that
// Observe is O(log buckets), memory is constant, and quantile estimates
// carry a bounded relative error (one bucket width, ~12%) — exactly the
// precision an SLO controller needs and no more.

import (
	"math"
	"sort"
)

// histBounds are the bucket upper bounds in milliseconds: 1µs growing by
// 1.125× up to 60s. ~150 buckets; a quantile estimate is off by at most one
// growth factor.
var histBounds = func() []float64 {
	const min, max, growth = 1e-3, 60_000.0, 1.125
	var b []float64
	for v := min; v < max; v *= growth {
		b = append(b, v)
	}
	return append(b, max)
}()

// Histogram is a fixed-layout latency histogram in milliseconds. The zero
// value is NOT usable; create with NewHistogram. Not safe for concurrent
// use — callers hold their own lock (the telemetry window and the serve
// metrics both already serialize observations).
type Histogram struct {
	counts []int64
	total  int64
	sum    float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]int64, len(histBounds))}
}

// Observe records one value in milliseconds. Negative and NaN values are
// clamped into the first bucket (they can only arise from clock
// weirdness, and dropping them would skew counts against latencies).
func (h *Histogram) Observe(ms float64) {
	i := 0
	if ms > 0 && !math.IsNaN(ms) {
		i = sort.SearchFloat64s(histBounds, ms)
		if i >= len(h.counts) {
			i = len(h.counts) - 1
		}
		h.sum += ms
	}
	h.counts[i]++
	h.total++
}

// Add folds another histogram's counts into this one.
func (h *Histogram) Add(o *Histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
}

// Reset zeroes the histogram in place (the window reuses bucket storage
// across rotations).
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total }

// Mean returns the mean observed value in milliseconds (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Export returns the histogram's distribution coarsened for external
// exposition: bucket upper bounds (ms) with step adjacent native buckets
// merged per exported bucket, the matching per-bucket (non-cumulative)
// counts, and the running sum and total. With ~150 native buckets, step 8
// yields ~20 exported buckets spanning 1µs→60s at ~2.6× growth — wide
// enough for dashboards, narrow enough to keep scrape cardinality flat.
// step < 1 is treated as 1. Caller holds whatever lock guards Observe.
func (h *Histogram) Export(step int) (bounds []float64, counts []int64, sum float64, total int64) {
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(histBounds); i += step {
		hi := i + step
		if hi > len(histBounds) {
			hi = len(histBounds)
		}
		var c int64
		for j := i; j < hi; j++ {
			c += h.counts[j]
		}
		bounds = append(bounds, histBounds[hi-1])
		counts = append(counts, c)
	}
	return bounds, counts, h.sum, h.total
}

// Quantile estimates the q-th quantile (q in [0,1]) in milliseconds: the
// upper bound of the bucket holding the q·total-th observation. Returns 0
// when empty. The estimate errs high by at most one bucket's width — the
// conservative direction for SLO checks (never under-reports a violation
// by more than the layout's resolution).
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			return histBounds[i]
		}
	}
	return histBounds[len(histBounds)-1]
}
