package control

import (
	"testing"
	"time"

	"cdl/internal/core"
)

// manualClock is an injectable test clock.
type manualClock struct{ t time.Time }

func (c *manualClock) now() time.Time          { return c.t }
func (c *manualClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newManualClock() *manualClock             { return &manualClock{t: time.Unix(1_000_000, 0)} }
func alertCfg(clk *manualClock, c AlertConfig) AlertConfig {
	c.Now = clk.now
	return c
}

// TestAlertMultiWindow pins the two-window construction: a short burst
// fires the fast (page) alert but not the slow one; the fast alert clears
// as its window drains while the sustained-burn case trips both.
func TestAlertMultiWindow(t *testing.T) {
	clk := newManualClock()
	m := NewAlertMonitor(alertCfg(clk, AlertConfig{
		ErrorBudget: 0.01,
		FastWindow:  10 * time.Second,
		SlowWindow:  100 * time.Second,
		FastBurn:    10, SlowBurn: 3, MinSamples: 10,
	}))

	// Healthy traffic long enough to fill the slow window: nothing fires.
	for i := 0; i < 100; i++ {
		m.Observe(100, 0)
		clk.advance(time.Second)
	}
	if st := m.Status(); st.Active {
		t.Fatalf("alert active on healthy traffic: %+v", st)
	}

	// A one-second total outage: the fast window sees 150 bad against
	// ~900 good (burn ≈ 14× budget ≥ 10, fires); the slow window dilutes
	// the same 150 bad over ~9600 good (burn ≈ 1.5 < 3, stays quiet).
	m.Observe(0, 150)
	clk.advance(time.Second)
	st := m.Status()
	if !st.Fast.Active {
		t.Fatalf("fast alert did not fire on the burst: %+v", st.Fast)
	}
	if st.Slow.Active {
		t.Fatalf("slow alert fired on a transient burst: %+v", st.Slow)
	}
	if !st.Active {
		t.Fatal("rolled-up Active must follow the fast window")
	}

	// Recovery: the burst ages out of the fast window and the page clears.
	for i := 0; i < 15; i++ {
		m.Observe(100, 0)
		clk.advance(time.Second)
	}
	st = m.Status()
	if st.Fast.Active || st.Active {
		t.Fatalf("fast alert did not clear after recovery: %+v", st.Fast)
	}

	// Sustained burn: everything bad long enough to trip the slow window.
	for i := 0; i < 120; i++ {
		m.Observe(0, 50)
		clk.advance(time.Second)
	}
	st = m.Status()
	if !st.Fast.Active || !st.Slow.Active {
		t.Fatalf("sustained burn must trip both windows: fast %+v slow %+v", st.Fast, st.Slow)
	}

	// The timeline recorded each flip in order.
	wantAlerts := []struct {
		alert  string
		active bool
	}{{"fast", true}, {"fast", false}, {"fast", true}, {"slow", true}}
	if len(st.History) != len(wantAlerts) {
		t.Fatalf("history %+v, want %d transitions", st.History, len(wantAlerts))
	}
	for i, w := range wantAlerts {
		if st.History[i].Alert != w.alert || st.History[i].Active != w.active {
			t.Fatalf("history[%d] = %+v, want %s active=%v", i, st.History[i], w.alert, w.active)
		}
	}
}

// TestAlertMinSamples pins the idle-model guard: a lone bad request on an
// otherwise idle monitor must not page.
func TestAlertMinSamples(t *testing.T) {
	clk := newManualClock()
	m := NewAlertMonitor(alertCfg(clk, AlertConfig{MinSamples: 12}))
	m.Observe(0, 3)
	if st := m.Status(); st.Active {
		t.Fatalf("alert fired below MinSamples: %+v", st)
	}
	m.Observe(0, 20)
	if st := m.Status(); !st.Fast.Active {
		t.Fatalf("alert must fire once MinSamples is met: %+v", st.Fast)
	}
}

// TestAlertFiresBeforeBaselineSheds is the deterministic early-warning
// guarantee, pinned on the PR 5 fluid-plant harness: replay the 5×
// arrival step against the *uncontrolled* plant, feed the monitor the
// same per-tick telemetry an attached SLO would see (latency above target
// = bad, sheds = bad), and require the fast burn alert to fire strictly
// before the plant drops its first image. The alert is the early-warning
// layer above the controller: by the time the queue overflows, the page
// has already fired.
func TestAlertFiresBeforeBaselineSheds(t *testing.T) {
	const base, peak = 640.0, 3200.0
	const pre, during, post = 25, 75, 25
	trace := stepTrace(base, peak, pre, during, post)

	p := newSimPlant()
	clk := newManualClock()
	m := NewAlertMonitor(alertCfg(clk, AlertConfig{
		ErrorBudget: 0.01,
		FastWindow:  5 * time.Second, // 25 plant ticks at dt=0.2s
		SlowWindow:  60 * time.Second,
		MinSamples:  32,
	}))

	pol := core.DefaultExitPolicy()
	alertTick, shedTick := -1, -1
	var shedsSeen float64
	for i, rate := range trace {
		s := p.tick(rate, pol)
		bad := int64(0)
		good := s.Images
		if s.P99LatencyMS > simTargetP99MS {
			bad, good = s.Images, 0
		}
		if d := p.sheds - shedsSeen; d > 0 {
			bad += int64(d)
			shedsSeen = p.sheds
			if shedTick < 0 {
				shedTick = i
			}
		}
		m.Observe(good, bad)
		if alertTick < 0 && m.Active() {
			alertTick = i
		}
		clk.advance(time.Duration(p.dtSec * float64(time.Second)))
	}

	if shedTick < 0 {
		t.Fatal("uncontrolled baseline never shed — the scenario is not stressful enough to prove anything")
	}
	if alertTick < 0 {
		t.Fatal("burn-rate alert never fired under the 5× step")
	}
	if alertTick >= shedTick {
		t.Fatalf("alert fired at tick %d, first baseline shed at tick %d — the page must precede the drop", alertTick, shedTick)
	}
	if alertTick < pre {
		t.Fatalf("alert fired at tick %d, before the step even began at tick %d", alertTick, pre)
	}
}
