package control

// controller.go is the decision half of the feedback loop: a clock-free,
// single-owner state machine stepped once per tick with a telemetry
// Sample. The loop is AIMD-shaped with hysteresis:
//
//   - any violated target shallows the policy immediately (bounded by
//     MaxStep rungs per tick), because overload compounds — queue growth
//     is integral, so reaction must be prompt;
//   - recovery is deliberate: every active target must sit below
//     RecoverMargin of its threshold for RecoverHold consecutive ticks
//     before the policy deepens one step, so a load hovering at the
//     target parks at a stable rung instead of oscillating around it;
//   - every deepening step opens a probation window: if it provokes a
//     violation within ProbationTicks, the next recovery attempt must
//     wait exponentially longer (doubling up to MaxRecoverHold). A load
//     that sits exactly between two rungs' capacities — where margin
//     hysteresis alone would limit-cycle, because the shallow rung looks
//     entirely comfortable — decays into an occasional probe instead of
//     an oscillation. A probation survived cleanly resets the backoff.
//
// The constants are defaults, not magic: sim_test.go drives the loop
// against scripted arrival traces and pins convergence, hysteresis and
// bounded-step safety for exactly these values.

import (
	"fmt"
	"math"
	"time"

	"cdl/internal/core"
)

// Action is what a controller tick did to the policy.
type Action string

const (
	// ActionHold left the policy unchanged.
	ActionHold Action = "hold"
	// ActionShallow stepped the policy toward cheaper, shallower exits.
	ActionShallow Action = "shallow"
	// ActionDeepen stepped the policy back toward the trained cascade.
	ActionDeepen Action = "deepen"
)

// Sample is one tick's telemetry input, usually assembled from a
// Window.Snapshot plus the live queue occupancy.
type Sample struct {
	// P99LatencyMS is the windowed p99 queue+service latency.
	P99LatencyMS float64
	// QueueFrac is the current work-queue occupancy in [0,1].
	QueueFrac float64
	// MeanEnergyPJ is the windowed mean dynamic energy per image.
	MeanEnergyPJ float64
	// Images is how many classified inputs back the latency/energy
	// numbers — below Config.MinSamples those signals are ignored.
	Images int64
	// Arrivals is the offered load in the same window (admitted or
	// not). It distinguishes a starved system (demand arriving, nothing
	// completing — the latency signal is silent exactly because the
	// overload is total) from an idle one when the windowed signals are
	// too thin to evaluate.
	Arrivals int64
}

// Config shapes the controller dynamics. The zero value selects the
// sim-tested defaults.
type Config struct {
	// Interval is the owner's tick period (the controller itself is
	// clock-free; serve's loop and the flag surface read this). Default
	// 200ms.
	Interval time.Duration
	// MaxStep bounds how many rungs one tick may move in either
	// direction. Default 1.
	MaxStep int
	// RecoverMargin is the fraction of a target a signal must stay under
	// to count as headroom (hysteresis band). Default 0.85.
	RecoverMargin float64
	// RecoverHold is how many consecutive headroom ticks precede one
	// deepening step. Default 3.
	RecoverHold int
	// ProbationTicks is how long after a deepening step a violation is
	// blamed on that step (and doubles the next recovery wait). Default 5.
	ProbationTicks int
	// MaxRecoverHold caps the exponential recovery backoff. Default 60.
	MaxRecoverHold int
	// MinSamples is the minimum windowed image count for the latency and
	// energy signals to be trusted (queue occupancy is always live).
	// Default 8.
	MinSamples int64
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 200 * time.Millisecond
	}
	if c.MaxStep <= 0 {
		c.MaxStep = 1
	}
	if c.RecoverMargin <= 0 || c.RecoverMargin >= 1 {
		c.RecoverMargin = 0.85
	}
	if c.RecoverHold <= 0 {
		c.RecoverHold = 3
	}
	if c.ProbationTicks <= 0 {
		c.ProbationTicks = 5
	}
	if c.MaxRecoverHold <= 0 {
		c.MaxRecoverHold = 60
	}
	if c.MaxRecoverHold < c.RecoverHold {
		c.MaxRecoverHold = c.RecoverHold
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	return c
}

// Ladder builds the monotone actuation axis for a cascade with numStages
// stages: rung 0 is the identity policy (trained δ, full depth); rung k
// caps the cascade at exit point numStages−k, so each step up strictly
// reduces the worst-case work per input. floor is
// SLO.AccuracyFloorDelta: the fraction of exit points that must stay
// reachable — it truncates the ladder's deep end.
func Ladder(numStages int, floor float64) []core.ExitPolicy {
	if numStages < 1 {
		return []core.ExitPolicy{core.DefaultExitPolicy()}
	}
	if floor < 0 {
		floor = 0
	} else if floor > 1 {
		floor = 1
	}
	minExit := int(math.Ceil(floor * float64(numStages)))
	rungs := []core.ExitPolicy{core.DefaultExitPolicy()}
	for me := numStages - 1; me >= minExit; me-- {
		rungs = append(rungs, core.DepthCapped(me))
	}
	return rungs
}

// Decision is one tick's outcome.
type Decision struct {
	Action Action
	// Rung is the post-tick ladder position.
	Rung int
	// Policy is the post-tick effective exit policy.
	Policy core.ExitPolicy
}

// State is an observability snapshot of the controller.
type State struct {
	SLO        SLO             `json:"slo"`
	Rung       int             `json:"rung"`
	MaxRung    int             `json:"max_rung"`
	Policy     core.ExitPolicy `json:"-"`
	LastAction Action          `json:"last_action"`
	Ticks      int64           `json:"ticks"`
	Violations int64           `json:"violations"`
	// RecoverHold is the current (possibly backed-off) number of
	// headroom ticks the next deepening step requires.
	RecoverHold int `json:"recover_hold"`
}

// Controller is the per-entry feedback loop state. It is clock-free and
// NOT safe for concurrent use — the owner (serve's control loop, the sim
// harness) serializes Step/State calls.
type Controller struct {
	cfg    Config
	slo    SLO
	ladder []core.ExitPolicy

	rung       int
	holdGood   int
	holdNeeded int
	probation  int
	lastAction Action
	ticks      int64
	violations int64
}

// New validates the SLO against the ladder and returns a controller at
// rung 0 (identity policy).
func New(slo SLO, ladder []core.ExitPolicy, cfg Config) (*Controller, error) {
	if err := slo.Validate(); err != nil {
		return nil, err
	}
	if len(ladder) < 2 {
		return nil, fmt.Errorf("control: ladder has %d rung(s); the accuracy floor leaves the controller nothing to actuate", len(ladder))
	}
	cfg = cfg.withDefaults()
	return &Controller{
		cfg:        cfg,
		slo:        slo,
		ladder:     append([]core.ExitPolicy(nil), ladder...),
		holdNeeded: cfg.RecoverHold,
		lastAction: ActionHold,
	}, nil
}

// Config returns the defaults-filled dynamics configuration.
func (c *Controller) Config() Config { return c.cfg }

// SLO returns the controller's targets.
func (c *Controller) SLO() SLO { return c.slo }

// Policy returns the current effective exit policy.
func (c *Controller) Policy() core.ExitPolicy { return c.ladder[c.rung] }

// MaxRung returns the deepest reachable rung index.
func (c *Controller) MaxRung() int { return len(c.ladder) - 1 }

// State snapshots the controller for /statsz and the /slo endpoint.
func (c *Controller) State() State {
	return State{
		SLO:         c.slo,
		Rung:        c.rung,
		MaxRung:     c.MaxRung(),
		Policy:      c.ladder[c.rung],
		LastAction:  c.lastAction,
		Ticks:       c.ticks,
		Violations:  c.violations,
		RecoverHold: c.holdNeeded,
	}
}

// evaluate classifies a sample against the targets: violated means some
// target is exceeded; comfortable means every active target sits below
// its hysteresis margin (the only state that ever deepens the policy).
func (c *Controller) evaluate(s Sample) (violated, comfortable bool) {
	comfortable = true
	checked := false
	check := func(val, target float64) {
		if target <= 0 {
			return
		}
		checked = true
		if val > target {
			violated = true
		}
		if val > c.cfg.RecoverMargin*target {
			comfortable = false
		}
	}
	// Latency and energy are windowed statistics: on a near-empty window
	// they are noise, so they are only consulted above MinSamples. Queue
	// occupancy is an instantaneous reading and always counts — it is
	// also the signal that still works when the window is empty because
	// the queue is too backed up to complete anything.
	if s.Images >= c.cfg.MinSamples {
		check(s.P99LatencyMS, c.slo.P99LatencyMs)
		check(s.MeanEnergyPJ, c.slo.EnergyBudgetPJ)
	}
	check(s.QueueFrac, c.slo.MaxQueueFrac)
	if !checked {
		// Every configured target was skipped for thin samples (a
		// latency/energy-only SLO with a starved window). Demand with no
		// completions IS the overload signal — the window is empty
		// precisely because nothing finishes — so deepening here would
		// undo the mitigation at the worst moment. No demand means
		// genuinely idle: recover.
		if s.Arrivals >= c.cfg.MinSamples {
			return true, false
		}
	}
	return violated, comfortable
}

// Step advances the loop one tick. Rung movement is bounded by
// cfg.MaxStep in both directions.
func (c *Controller) Step(s Sample) Decision {
	c.ticks++
	violated, comfortable := c.evaluate(s)
	if c.probation > 0 {
		c.probation--
		switch {
		case violated:
			// The last deepening step didn't hold: back off the next
			// recovery attempt exponentially, so a load sitting between
			// two rungs' capacities decays into an occasional probe
			// instead of a limit cycle.
			c.holdNeeded = min(c.holdNeeded*2, c.cfg.MaxRecoverHold)
			c.probation = 0
		case c.probation == 0:
			// Probation survived cleanly: the deeper rung is genuinely
			// affordable again.
			c.holdNeeded = c.cfg.RecoverHold
		}
	}
	action := ActionHold
	switch {
	case violated:
		c.violations++
		c.holdGood = 0
		if step := min(c.cfg.MaxStep, c.MaxRung()-c.rung); step > 0 {
			c.rung += step
			action = ActionShallow
		}
	case comfortable:
		if c.rung == 0 {
			c.holdGood = 0
			break
		}
		c.holdGood++
		if c.holdGood >= c.holdNeeded {
			c.holdGood = 0
			c.rung -= min(c.cfg.MaxStep, c.rung)
			c.probation = c.cfg.ProbationTicks
			action = ActionDeepen
		}
	default:
		// Inside the hysteresis band: neither violating nor comfortable.
		// Hold, and restart the recovery count — deepening from here
		// would re-enter violation immediately.
		c.holdGood = 0
	}
	c.lastAction = action
	return Decision{Action: action, Rung: c.rung, Policy: c.ladder[c.rung]}
}
