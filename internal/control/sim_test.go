package control

// sim_test.go is the deterministic simulation harness the controller
// dynamics are pinned by: a fluid-model serving plant (bounded queue,
// replica pool whose per-image cost depends on the active policy rung)
// driven by scripted arrival-rate traces. No clocks, no goroutines, no
// randomness — every run is exactly reproducible, so the assertions can
// be sharp: convergence under a 5× step, zero sheds where the
// uncontrolled baseline sheds, recovery within bounded ticks, and no
// sustained oscillation on steady traces that sit between two rungs.

import (
	"testing"

	"cdl/internal/core"
)

// simPlant is a fluid approximation of one registry entry's serve pool:
// a bounded queue drained by `workers` replicas at `unitPerSec` work
// units each. The trained cascade is summarized by its exit distribution
// and per-exit costs; a policy rung reshapes both exactly the way
// ExitPolicy.MaxExit does (inputs that would exit deeper are forced out
// at the cap).
type simPlant struct {
	exitFracs  []float64 // trained exit distribution over exit points
	exitCost   []float64 // work units to exit at each point (monotone)
	exitPJ     []float64 // dynamic energy to exit at each point
	workers    float64
	unitPerSec float64
	queueCap   float64
	dtSec      float64

	queue float64
	sheds float64
}

func newSimPlant() *simPlant {
	return &simPlant{
		// 4 exit points (3 stages + FC), a LeNet-like cost ramp and the
		// paper's "most inputs are easy" distribution. Identity-policy
		// capacity: 4·1000/2.7 ≈ 1481 images/s.
		exitFracs:  []float64{0.50, 0.20, 0.15, 0.15},
		exitCost:   []float64{1, 2, 4, 8},
		exitPJ:     []float64{1e6, 2e6, 4e6, 8e6},
		workers:    4,
		unitPerSec: 1000,
		queueCap:   2000,
		dtSec:      0.2,
	}
}

// numStages is the plant's cascade stage count (exits minus the FC).
func (p *simPlant) numStages() int { return len(p.exitCost) - 1 }

// rungStats folds the policy cap into the trained exit distribution.
func (p *simPlant) rungStats(pol core.ExitPolicy) (meanCost, meanDepth, meanPJ float64) {
	last := len(p.exitCost) - 1
	me := pol.MaxExit
	if me < 0 || me > last {
		me = last
	}
	for e, f := range p.exitFracs {
		ee := e
		if ee > me {
			ee = me
		}
		meanCost += f * p.exitCost[ee]
		meanDepth += f * float64(ee)
		meanPJ += f * p.exitPJ[ee]
	}
	return meanCost, meanDepth, meanPJ
}

// tick advances the plant one controller interval at the given offered
// arrival rate (images/sec) under pol, returning the telemetry sample
// the controller would see.
func (p *simPlant) tick(rate float64, pol core.ExitPolicy) Sample {
	meanCost, _, meanPJ := p.rungStats(pol)
	mu := p.workers * p.unitPerSec / meanCost // capacity, images/sec
	p.queue += rate * p.dtSec
	served := mu * p.dtSec
	if served > p.queue {
		served = p.queue
	}
	p.queue -= served
	if p.queue > p.queueCap {
		p.sheds += p.queue - p.queueCap
		p.queue = p.queueCap
	}
	latencyMS := (p.queue/mu + meanCost/p.unitPerSec) * 1000
	return Sample{
		P99LatencyMS: latencyMS,
		QueueFrac:    p.queue / p.queueCap,
		MeanEnergyPJ: meanPJ,
		Images:       int64(served),
		Arrivals:     int64(rate * p.dtSec),
	}
}

// runTrace drives controller (nil = uncontrolled baseline pinned at the
// identity policy) over a scripted per-tick arrival-rate trace,
// returning the rung trajectory and the plant samples observed.
func runTrace(p *simPlant, c *Controller, trace []float64) ([]int, []Sample) {
	pol := core.DefaultExitPolicy()
	rungs := make([]int, len(trace))
	samples := make([]Sample, len(trace))
	for i, rate := range trace {
		samples[i] = p.tick(rate, pol)
		if c != nil {
			d := c.Step(samples[i])
			pol = d.Policy
			rungs[i] = d.Rung
		}
	}
	return rungs, samples
}

// stepTrace is the acceptance scenario: steady base load, an arrival
// step, then base again.
func stepTrace(base, peak float64, preTicks, peakTicks, postTicks int) []float64 {
	tr := make([]float64, 0, preTicks+peakTicks+postTicks)
	for i := 0; i < preTicks; i++ {
		tr = append(tr, base)
	}
	for i := 0; i < peakTicks; i++ {
		tr = append(tr, peak)
	}
	for i := 0; i < postTicks; i++ {
		tr = append(tr, base)
	}
	return tr
}

const simTargetP99MS = 20

func simController(t *testing.T, p *simPlant, slo SLO) *Controller {
	t.Helper()
	c, err := New(slo, Ladder(p.numStages(), slo.AccuracyFloorDelta), Config{RecoverHold: 3, ProbationTicks: 5, MaxRecoverHold: 256})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSimFiveTimesStep is the headline acceptance scenario: under a 5×
// arrival-rate step the controller holds the p99 target by shallowing
// exits (the exit-depth mean of the converged policy drops), sheds
// nothing where the uncontrolled baseline sheds, and restores the
// trained policy within bounded ticks after the step ends.
func TestSimFiveTimesStep(t *testing.T) {
	const base, peak = 640.0, 3200.0 // 5× step
	const pre, during, post = 25, 75, 100
	trace := stepTrace(base, peak, pre, during, post)

	// Uncontrolled baseline: the queue overflows and the plant sheds.
	baseline := newSimPlant()
	runTrace(baseline, nil, trace)
	if baseline.sheds == 0 {
		t.Fatal("baseline plant shed nothing under the 5× step — the scenario is not stressful enough to prove anything")
	}

	p := newSimPlant()
	c := simController(t, p, SLO{P99LatencyMs: simTargetP99MS})
	rungs, samples := runTrace(p, c, trace)

	if p.sheds != 0 {
		t.Errorf("controlled plant shed %.0f images, want 0 (baseline shed %.0f)", p.sheds, baseline.sheds)
	}
	// The controller must reach the rung whose capacity covers the peak
	// within a bounded number of ticks of the step's onset...
	converged := -1
	for i := pre; i < pre+during; i++ {
		if rungs[i] == c.MaxRung() {
			converged = i
			break
		}
	}
	if converged < 0 || converged > pre+10 {
		t.Fatalf("controller did not converge within 10 ticks of the step (first max-rung tick %d)", converged)
	}
	// ...and the converged policy's exit-depth mean must be lower than
	// the trained policy's: graceful degradation, not shedding.
	_, depthTrained, _ := p.rungStats(core.DefaultExitPolicy())
	if _, d, _ := p.rungStats(core.DepthCapped(0)); d >= depthTrained {
		t.Fatalf("converged policy's exit-depth mean %v did not drop below the trained %v", d, depthTrained)
	}
	// Once the transient backlog drains, p99 must hold the target for
	// the step's remainder — modulo the controller's rare recovery
	// probes, which each cost at most one tick above target before the
	// probation logic backs them off.
	bad, consec, maxConsec := 0, 0, 0
	for i := pre + 15; i < pre+during; i++ {
		if samples[i].P99LatencyMS > simTargetP99MS {
			bad++
			consec++
			if consec > maxConsec {
				maxConsec = consec
			}
		} else {
			consec = 0
		}
	}
	window := during - 15
	if frac := float64(bad) / float64(window); frac > 0.10 {
		t.Errorf("p99 above target on %.0f%% of post-drain step ticks, want ≤ 10%% (probe transients only)", 100*frac)
	}
	if maxConsec > 2 {
		t.Errorf("p99 above target for %d consecutive ticks, want ≤ 2 (violations must be probe transients, not sustained overload)", maxConsec)
	}
	// After the step ends the trained policy must be restored within
	// bounded ticks — and stay restored.
	recovered := -1
	for i := pre + during; i < len(rungs); i++ {
		if rungs[i] == 0 {
			recovered = i
			break
		}
	}
	if recovered < 0 || recovered > pre+during+80 {
		t.Fatalf("trained policy not restored within 80 ticks of the step end (first rung-0 tick %d)", recovered)
	}
	for i := recovered; i < len(rungs); i++ {
		if rungs[i] != 0 {
			t.Fatalf("tick %d: rung %d after recovery, want a stable 0", i, rungs[i])
		}
	}
	if got := c.Policy(); !got.Equal(core.DefaultExitPolicy()) {
		t.Errorf("final policy %+v, want the trained identity policy", got)
	}
}

// TestSimSteadyTraceNoOscillation parks the load between two rungs'
// capacities — the configuration where margin hysteresis alone would
// limit-cycle forever — and checks the recovery backoff decays the
// flapping into rare probes.
func TestSimSteadyTraceNoOscillation(t *testing.T) {
	const rate = 1600.0 // rung 0 capacity ≈ 1481/s, rung 1 ≈ 1905/s
	trace := make([]float64, 600)
	for i := range trace {
		trace[i] = rate
	}
	p := newSimPlant()
	c := simController(t, p, SLO{P99LatencyMs: simTargetP99MS})
	rungs, _ := runTrace(p, c, trace)

	if p.sheds != 0 {
		t.Errorf("steady trace shed %.0f images, want 0", p.sheds)
	}
	transitions, atOne := 0, 0
	for i := 400; i < len(rungs); i++ {
		if rungs[i] != rungs[i-1] {
			transitions++
		}
		if rungs[i] == 1 {
			atOne++
		}
	}
	if transitions > 4 {
		t.Errorf("%d rung transitions in the last 200 ticks, want ≤ 4 (backoff must damp the limit cycle)", transitions)
	}
	if frac := float64(atOne) / 200; frac < 0.9 {
		t.Errorf("only %.0f%% of the last 200 ticks at the stable rung, want ≥ 90%%", 100*frac)
	}
}

// TestSimEnergyBudget drives the energy axis: a budget below the trained
// mean pJ/image must park the cascade at the shallowest rung inside the
// budget, independent of latency.
func TestSimEnergyBudget(t *testing.T) {
	const budget = 2.0e6 // trained mean ≈ 2.7e6; rung 1 ≈ 2.1e6; rung 2 = 1.5e6
	trace := make([]float64, 300)
	for i := range trace {
		trace[i] = 400 // light load: latency never the binding constraint
	}
	p := newSimPlant()
	c := simController(t, p, SLO{EnergyBudgetPJ: budget})
	rungs, _ := runTrace(p, c, trace)

	atTwo := 0
	for i := 200; i < len(rungs); i++ {
		if rungs[i] == 2 {
			atTwo++
		}
	}
	if frac := float64(atTwo) / 100; frac < 0.9 {
		t.Errorf("only %.0f%% of the last 100 ticks at rung 2, want ≥ 90%% (rung 2 is the deepest rung inside the %.1e pJ budget)", 100*frac, budget)
	}
	if _, _, pj := p.rungStats(c.Policy()); pj > budget {
		t.Errorf("final policy mean %.2e pJ/image exceeds the %.2e budget", pj, budget)
	}
}

// TestSimAccuracyFloorBoundsExcursion repeats the 5× step with a floor
// that keeps two thirds of the cascade reachable: the controller must
// saturate at the floor rung rather than shed the whole cascade,
// accepting queue overflow as the price of the declared floor.
func TestSimAccuracyFloorBoundsExcursion(t *testing.T) {
	trace := stepTrace(640, 3200, 10, 60, 10)
	p := newSimPlant()
	ladder := Ladder(p.numStages(), 0.6) // minExit = ceil(0.6·3) = 2
	c, err := New(SLO{P99LatencyMs: simTargetP99MS}, ladder, Config{RecoverHold: 3})
	if err != nil {
		t.Fatal(err)
	}
	rungs, _ := runTrace(p, c, trace)
	maxRung := 0
	for _, r := range rungs {
		if r > maxRung {
			maxRung = r
		}
	}
	if maxRung != c.MaxRung() {
		t.Errorf("max rung reached %d, want saturation at the floor rung %d", maxRung, c.MaxRung())
	}
	if deepest := ladder[len(ladder)-1].MaxExit; deepest != 2 {
		t.Errorf("floor 0.6 ladder bottoms out at MaxExit %d, want 2", deepest)
	}
}
