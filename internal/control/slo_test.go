package control

import (
	"math"
	"strings"
	"testing"
)

func TestParseSLO(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SLO
	}{
		{"p99=15ms", SLO{P99LatencyMs: 15}},
		{"p99=1.5s", SLO{P99LatencyMs: 1500}},
		{"p99=25", SLO{P99LatencyMs: 25}},
		{"queue=0.8", SLO{MaxQueueFrac: 0.8}},
		{"energy=2.5e9", SLO{EnergyBudgetPJ: 2.5e9}},
		{"p99=15ms, energy=2.5e9, queue=0.9, floor=0.5",
			SLO{P99LatencyMs: 15, EnergyBudgetPJ: 2.5e9, MaxQueueFrac: 0.9, AccuracyFloorDelta: 0.5}},
	} {
		got, err := ParseSLO(tc.in)
		if err != nil {
			t.Errorf("ParseSLO(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseSLO(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestParseSLORejects(t *testing.T) {
	for _, in := range []string{
		"",                 // no targets
		"floor=0.5",        // floor alone is no target
		"p99",              // not key=value
		"p99=banana",       // unparseable
		"frogs=1",          // unknown key
		"queue=1.5",        // out of range
		"queue=-0.1",       // negative
		"energy=-1",        // negative
		"p99=-5ms",         // negative duration
		"floor=2,p99=15ms", // floor out of range
	} {
		if _, err := ParseSLO(in); err == nil {
			t.Errorf("ParseSLO(%q) accepted, want error", in)
		}
	}
}

func TestSLOValidate(t *testing.T) {
	if err := (SLO{}).Validate(); err == nil {
		t.Error("zero SLO validated, want 'no target' error")
	}
	if err := (SLO{P99LatencyMs: math.NaN()}).Validate(); err == nil {
		t.Error("NaN p99 validated, want error")
	}
	if err := (SLO{P99LatencyMs: math.Inf(1)}).Validate(); err == nil {
		t.Error("Inf p99 validated, want error")
	}
	if err := (SLO{P99LatencyMs: 15, AccuracyFloorDelta: 0.5}).Validate(); err != nil {
		t.Errorf("valid SLO rejected: %v", err)
	}
}

func TestSLOStringRoundTrips(t *testing.T) {
	slo := SLO{P99LatencyMs: 15, MaxQueueFrac: 0.8, EnergyBudgetPJ: 2.5e9, AccuracyFloorDelta: 0.25}
	s := slo.String()
	for _, want := range []string{"p99=15ms", "queue=0.8", "energy=2.5e+09", "floor=0.25"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	back, err := ParseSLO(s)
	if err != nil {
		t.Fatalf("reparse %q: %v", s, err)
	}
	if back != slo {
		t.Errorf("round trip %+v, want %+v", back, slo)
	}
}
