// Package control is the SLO feedback layer that closes the loop between
// live serving load and the paper's §III.B runtime knob: a sliding-window
// telemetry view of each model's recent traffic (Window), a declarative
// target (SLO), and a feedback controller (Controller) that steps the
// model's effective exit policy along a monotone cost axis — degrading
// gracefully to shallower exits under overload instead of shedding, and
// restoring the trained behaviour when the load passes.
//
// The actuation axis deliberately is NOT δ itself: under the paper's
// exactly-one-score exit rule the cost is non-monotone in δ (δ near 0
// makes every class "confident" and forces full depth just like δ=1 —
// see serve.ClassifyRequest). The monotone knob is the cascade depth cap
// (core.ExitPolicy.MaxExit): each Ladder rung removes one exit point, so
// stepping up the ladder strictly reduces worst-case work per input.
// Rung 0 is the identity policy — the trained δ governs, full depth
// available — which is what "recovery" restores.
package control

import (
	"sync"
	"time"
)

// Obs is one classified input's contribution to the telemetry window.
type Obs struct {
	// LatencyMS is the input's queue+service time in milliseconds.
	LatencyMS float64
	// ExitIndex is the exit point the input left the cascade at.
	ExitIndex int
	// EnergyPJ is the input's dynamic 45 nm energy.
	EnergyPJ float64
}

// WindowConfig sizes a telemetry window.
type WindowConfig struct {
	// Buckets is the ring size; the window spans Buckets×BucketDur.
	// Default 10.
	Buckets int
	// BucketDur is one ring slot's time span. Default 500ms.
	BucketDur time.Duration
	// Now is the clock (injectable for deterministic tests). Default
	// time.Now.
	Now func() time.Time
}

func (c WindowConfig) withDefaults() WindowConfig {
	if c.Buckets <= 0 {
		c.Buckets = 10
	}
	if c.BucketDur <= 0 {
		c.BucketDur = 500 * time.Millisecond
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// wbucket is one ring slot's accumulators.
type wbucket struct {
	start      time.Time // zero = never used
	images     int64
	arrivals   int64
	sheds      int64
	lat        *Histogram
	exitSum    int64
	exitCounts []int64
	energySum  float64
}

func (b *wbucket) reset(start time.Time) {
	b.start = start
	b.images, b.arrivals, b.sheds, b.exitSum, b.energySum = 0, 0, 0, 0, 0
	b.lat.Reset()
	for i := range b.exitCounts {
		b.exitCounts[i] = 0
	}
}

// Window is a sliding-window telemetry accumulator: a time-bucketed ring
// whose Snapshot summarizes only the last Buckets×BucketDur of traffic.
// It is the controller's sensor — cumulative metrics can't tell "load
// spiked 2 s ago" from "load spiked an hour ago". All methods are safe
// for concurrent use; the single mutex is taken once per batch of
// observations, not per image, mirroring the serve pool's per-batch
// metrics discipline.
type Window struct {
	mu       sync.Mutex
	cfg      WindowConfig
	numExits int
	buckets  []wbucket // guarded by mu
	cur      int       // guarded by mu
}

// NewWindow returns an empty window for a cascade with numExits exit
// points (exit-depth tallies are sized by it; observations outside the
// range are clamped).
func NewWindow(numExits int, cfg WindowConfig) *Window {
	cfg = cfg.withDefaults()
	if numExits < 1 {
		numExits = 1
	}
	w := &Window{cfg: cfg, numExits: numExits, buckets: make([]wbucket, cfg.Buckets)}
	for i := range w.buckets {
		w.buckets[i].lat = NewHistogram()
		w.buckets[i].exitCounts = make([]int64, numExits)
	}
	w.buckets[0].start = cfg.Now()
	return w
}

// rotate advances the ring to the bucket covering now. Caller holds mu.
func (w *Window) rotate(now time.Time) *wbucket {
	cur := &w.buckets[w.cur]
	for !now.Before(cur.start.Add(w.cfg.BucketDur)) {
		steps := int(now.Sub(cur.start) / w.cfg.BucketDur)
		if steps > len(w.buckets) {
			steps = len(w.buckets)
		}
		start := cur.start
		for s := 1; s <= steps; s++ {
			w.cur = (w.cur + 1) % len(w.buckets)
			w.buckets[w.cur].reset(start.Add(time.Duration(s) * w.cfg.BucketDur))
		}
		// After clearing a full ring the oldest start may still trail now
		// (a long idle gap); realign instead of looping bucket by bucket.
		cur = &w.buckets[w.cur]
		if !now.Before(cur.start.Add(w.cfg.BucketDur)) {
			cur.reset(now)
		}
	}
	return cur
}

// ObserveBatch records one micro-batch of classified inputs.
func (w *Window) ObserveBatch(obs []Obs) {
	if len(obs) == 0 {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	b := w.rotate(w.cfg.Now())
	for _, o := range obs {
		b.images++
		b.lat.Observe(o.LatencyMS)
		e := o.ExitIndex
		if e < 0 {
			e = 0
		} else if e >= w.numExits {
			e = w.numExits - 1
		}
		b.exitSum += int64(e)
		b.exitCounts[e]++
		b.energySum += o.EnergyPJ
	}
}

// Arrivals records n inputs offered to the system (admitted or not) — the
// open-loop demand signal.
func (w *Window) Arrivals(n int) {
	if n <= 0 {
		return
	}
	w.mu.Lock()
	w.rotate(w.cfg.Now()).arrivals += int64(n)
	w.mu.Unlock()
}

// Sheds records n inputs rejected (503) instead of served.
func (w *Window) Sheds(n int) {
	if n <= 0 {
		return
	}
	w.mu.Lock()
	w.rotate(w.cfg.Now()).sheds += int64(n)
	w.mu.Unlock()
}

// Snapshot is a consistent summary of the window's live span.
type Snapshot struct {
	// SpanSeconds is the wall-clock span the snapshot covers (at most the
	// window size; less right after startup).
	SpanSeconds float64 `json:"span_seconds"`
	// Images is the number of classified inputs observed in the span.
	Images int64 `json:"images"`
	// Arrivals and Sheds are offered vs rejected inputs in the span.
	Arrivals int64 `json:"arrivals"`
	Sheds    int64 `json:"sheds"`
	// ArrivalRatePerSec is Arrivals over the span.
	ArrivalRatePerSec float64 `json:"arrival_rate_per_sec"`
	// Latency quantiles are queue+service time in milliseconds.
	MeanLatencyMS float64 `json:"mean_latency_ms"`
	P50LatencyMS  float64 `json:"p50_latency_ms"`
	P95LatencyMS  float64 `json:"p95_latency_ms"`
	P99LatencyMS  float64 `json:"p99_latency_ms"`
	// MeanExitDepth is the mean exit index — the live measure of how much
	// cascade the traffic is consuming (drops when the controller
	// shallows the exits).
	MeanExitDepth float64 `json:"mean_exit_depth"`
	// ExitCounts is the per-exit-point tally in cascade order.
	ExitCounts []int64 `json:"exit_counts"`
	// MeanEnergyPJ is the mean dynamic energy per image.
	MeanEnergyPJ float64 `json:"mean_energy_pj"`
}

// Snapshot merges the ring's live buckets into one summary.
func (w *Window) Snapshot() Snapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	now := w.cfg.Now()
	w.rotate(now)
	horizon := now.Add(-time.Duration(len(w.buckets)) * w.cfg.BucketDur)
	merged := NewHistogram()
	s := Snapshot{ExitCounts: make([]int64, w.numExits)}
	oldest := now
	var exitSum int64
	var energySum float64
	for i := range w.buckets {
		b := &w.buckets[i]
		if b.start.IsZero() || b.start.Before(horizon) {
			continue
		}
		if b.start.Before(oldest) {
			oldest = b.start
		}
		s.Images += b.images
		s.Arrivals += b.arrivals
		s.Sheds += b.sheds
		exitSum += b.exitSum
		energySum += b.energySum
		for e, c := range b.exitCounts {
			s.ExitCounts[e] += c
		}
		merged.Add(b.lat)
	}
	s.SpanSeconds = now.Sub(oldest).Seconds()
	if s.SpanSeconds > 0 {
		s.ArrivalRatePerSec = float64(s.Arrivals) / s.SpanSeconds
	}
	if s.Images > 0 {
		s.MeanLatencyMS = merged.Mean()
		s.P50LatencyMS = merged.Quantile(0.50)
		s.P95LatencyMS = merged.Quantile(0.95)
		s.P99LatencyMS = merged.Quantile(0.99)
		s.MeanExitDepth = float64(exitSum) / float64(s.Images)
		s.MeanEnergyPJ = energySum / float64(s.Images)
	}
	return s
}
