package control

import "testing"

// TestHistogramExport checks the coarsened exposition view: counts are
// conserved under any merge step, bounds stay sorted, and each observation
// lands in the exported bucket whose bound covers it.
func TestHistogramExport(t *testing.T) {
	h := NewHistogram()
	obs := []float64{0.0005, 0.5, 2, 10, 10, 500, 70_000 /* clamps to last bucket */}
	var wantSum float64
	for _, v := range obs {
		h.Observe(v)
		wantSum += v
	}

	for _, step := range []int{1, 8, 1000, 0 /* treated as 1 */} {
		bounds, counts, sum, total := h.Export(step)
		if len(bounds) != len(counts) {
			t.Fatalf("step %d: %d bounds vs %d counts", step, len(bounds), len(counts))
		}
		if total != int64(len(obs)) {
			t.Errorf("step %d: total %d, want %d", step, total, len(obs))
		}
		if sum != wantSum {
			t.Errorf("step %d: sum %g, want %g", step, sum, wantSum)
		}
		var n int64
		for i, c := range counts {
			n += c
			if i > 0 && bounds[i] <= bounds[i-1] {
				t.Errorf("step %d: bounds not increasing at %d: %g <= %g", step, i, bounds[i], bounds[i-1])
			}
		}
		if n != int64(len(obs)) {
			t.Errorf("step %d: bucket counts sum to %d, want %d", step, n, len(obs))
		}
		if bounds[len(bounds)-1] != 60_000 {
			t.Errorf("step %d: last bound %g, want 60000", step, bounds[len(bounds)-1])
		}
	}

	// Step 8 is the serving layer's scrape coarsening: the cardinality
	// policy pins it to roughly a dozen buckets.
	bounds, counts, _, _ := h.Export(8)
	if len(bounds) < 12 || len(bounds) > 24 {
		t.Errorf("step 8 exports %d buckets, want ~20", len(bounds))
	}

	// Coarsening must agree with the fine view: cumulative count at each
	// exported bound equals the fine cumulative count at the same bound.
	fineBounds, fineCounts, _, _ := h.Export(1)
	cumAt := func(bs []float64, cs []int64, bound float64) int64 {
		var cum int64
		for i, b := range bs {
			if b > bound {
				break
			}
			cum += cs[i]
		}
		return cum
	}
	for i, b := range bounds {
		if got, want := cumAt(bounds, counts, b), cumAt(fineBounds, fineCounts, b); got != want {
			t.Errorf("cumulative at le=%g: coarse %d, fine %d (bucket %d)", b, got, want, i)
		}
	}
}

func TestHistogramExportEmpty(t *testing.T) {
	bounds, counts, sum, total := NewHistogram().Export(8)
	if total != 0 || sum != 0 {
		t.Errorf("empty export: sum %g total %d", sum, total)
	}
	for i, c := range counts {
		if c != 0 {
			t.Errorf("bucket %d (le %g) = %d, want 0", i, bounds[i], c)
		}
	}
}
