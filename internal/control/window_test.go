package control

import (
	"math"
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock for deterministic window tests.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram p99 = %v, want 0", got)
	}
	// 1000 observations spread uniformly over [1ms, 100ms]: quantile
	// estimates must land within one bucket growth factor (12.5%) of the
	// true value.
	n := 1000
	for i := 0; i < n; i++ {
		h.Observe(1 + 99*float64(i)/float64(n-1))
	}
	if h.Count() != int64(n) {
		t.Fatalf("count %d, want %d", h.Count(), n)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 50.5}, {0.95, 95.05}, {0.99, 99.01},
	} {
		got := h.Quantile(tc.q)
		if got < tc.want || got > tc.want*1.13 {
			t.Errorf("p%g = %v, want within [%v, %v]", 100*tc.q, got, tc.want, tc.want*1.13)
		}
	}
	mean := h.Mean()
	if math.Abs(mean-50.5) > 0.5 {
		t.Errorf("mean %v, want ~50.5", mean)
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5)         // negative → first bucket
	h.Observe(math.NaN()) // NaN → first bucket
	h.Observe(1e9)        // beyond 60s → last bucket
	if h.Count() != 3 {
		t.Fatalf("count %d, want 3", h.Count())
	}
	if got := h.Quantile(0.01); got != histBounds[0] {
		t.Errorf("p1 = %v, want first bound %v", got, histBounds[0])
	}
	if got := h.Quantile(1); got != histBounds[len(histBounds)-1] {
		t.Errorf("p100 = %v, want last bound %v", got, histBounds[len(histBounds)-1])
	}
}

func TestWindowSlides(t *testing.T) {
	clk := newFakeClock()
	w := NewWindow(3, WindowConfig{Buckets: 4, BucketDur: time.Second, Now: clk.now})

	w.Arrivals(10)
	w.ObserveBatch([]Obs{{LatencyMS: 5, ExitIndex: 0, EnergyPJ: 100}, {LatencyMS: 5, ExitIndex: 2, EnergyPJ: 300}})
	clk.advance(time.Second)
	w.ObserveBatch([]Obs{{LatencyMS: 50, ExitIndex: 1, EnergyPJ: 200}})
	w.Sheds(2)

	s := w.Snapshot()
	if s.Images != 3 || s.Arrivals != 10 || s.Sheds != 2 {
		t.Fatalf("images/arrivals/sheds = %d/%d/%d, want 3/10/2", s.Images, s.Arrivals, s.Sheds)
	}
	if want := (0.0 + 2 + 1) / 3; math.Abs(s.MeanExitDepth-want) > 1e-12 {
		t.Errorf("mean exit depth %v, want %v", s.MeanExitDepth, want)
	}
	if want := (100.0 + 300 + 200) / 3; math.Abs(s.MeanEnergyPJ-want) > 1e-12 {
		t.Errorf("mean energy %v, want %v", s.MeanEnergyPJ, want)
	}
	if got := s.ExitCounts; got[0] != 1 || got[1] != 1 || got[2] != 1 {
		t.Errorf("exit counts %v, want [1 1 1]", got)
	}

	// Slide past the first bucket: its contents must age out.
	clk.advance(3 * time.Second)
	w.ObserveBatch([]Obs{{LatencyMS: 1, ExitIndex: 0}})
	s = w.Snapshot()
	if s.Images != 2 {
		t.Fatalf("after slide: images %d, want 2 (first bucket aged out)", s.Images)
	}
	if s.Arrivals != 0 || s.Sheds != 2 {
		t.Errorf("after slide: arrivals/sheds = %d/%d, want 0/2", s.Arrivals, s.Sheds)
	}

	// A long idle gap clears everything.
	clk.advance(time.Hour)
	s = w.Snapshot()
	if s.Images != 0 || s.Arrivals != 0 || s.Sheds != 0 {
		t.Fatalf("after idle gap: %+v, want empty", s)
	}
}

func TestWindowArrivalRate(t *testing.T) {
	clk := newFakeClock()
	w := NewWindow(2, WindowConfig{Buckets: 5, BucketDur: time.Second, Now: clk.now})
	for i := 0; i < 4; i++ {
		w.Arrivals(100)
		clk.advance(time.Second)
	}
	s := w.Snapshot()
	if s.Arrivals != 400 {
		t.Fatalf("arrivals %d, want 400", s.Arrivals)
	}
	// 400 arrivals over a 4-second live span.
	if math.Abs(s.ArrivalRatePerSec-100) > 1 {
		t.Errorf("arrival rate %v/s, want ~100/s (span %vs)", s.ArrivalRatePerSec, s.SpanSeconds)
	}
}

func TestWindowClampsExitIndex(t *testing.T) {
	clk := newFakeClock()
	w := NewWindow(2, WindowConfig{Now: clk.now})
	w.ObserveBatch([]Obs{{ExitIndex: -3}, {ExitIndex: 99}})
	s := w.Snapshot()
	if s.ExitCounts[0] != 1 || s.ExitCounts[1] != 1 {
		t.Fatalf("exit counts %v, want [1 1]", s.ExitCounts)
	}
}
