package control

// alert.go is the multi-window burn-rate monitor over the serving
// telemetry: every finished request is classified good or bad (latency
// above the SLO's p99 target, or shed outright), and the monitor tracks
// how fast the error budget burns over two windows at once — a short
// window with a high threshold that pages quickly on a real breach, and a
// long window with a low threshold that catches slow leaks without
// flapping on transients. This is the SRE burn-rate construction: burn
// rate = bad fraction / error budget, so burn 1.0 spends exactly the
// budget over the window and burn 14 exhausts it 14× too fast. /alertz
// renders the state; cdl_alert_* gauges ride /metricsz; the router
// aggregates its backends' /alertz into one fleet view.

import (
	"sync"
	"time"
)

// AlertConfig shapes a monitor. Zero values take defaults.
type AlertConfig struct {
	// ErrorBudget is the tolerated bad-request fraction. Default 0.01.
	ErrorBudget float64
	// FastWindow/SlowWindow are the two burn measurement spans. Defaults
	// 1m and 10m. The slow window also bounds the bucket ring's reach.
	FastWindow time.Duration
	SlowWindow time.Duration
	// FastBurn/SlowBurn are the firing thresholds (multiples of budget
	// burn). Defaults 14 and 2 — the classic page/ticket split.
	FastBurn float64
	SlowBurn float64
	// MinSamples suppresses burn evaluation until a window holds this
	// many requests, so an idle model never pages on its first straggler.
	// Default 12.
	MinSamples int64
	// Buckets is the ring granularity over SlowWindow. Default 120.
	Buckets int
	// HistoryCap bounds the retained activation/clear transitions (the
	// alert timeline). Default 64.
	HistoryCap int
	// Now injects a clock for deterministic tests. Default time.Now.
	Now func() time.Time
}

func (c AlertConfig) withDefaults() AlertConfig {
	if c.ErrorBudget <= 0 {
		c.ErrorBudget = 0.01
	}
	if c.FastWindow <= 0 {
		c.FastWindow = time.Minute
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = 10 * time.Minute
	}
	if c.SlowWindow < c.FastWindow {
		c.SlowWindow = c.FastWindow
	}
	if c.FastBurn <= 0 {
		c.FastBurn = 14
	}
	if c.SlowBurn <= 0 {
		c.SlowBurn = 2
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 12
	}
	if c.Buckets <= 0 {
		c.Buckets = 120
	}
	if c.HistoryCap <= 0 {
		c.HistoryCap = 64
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// alertBucket is one ring slot's good/bad tally.
type alertBucket struct {
	startNS int64
	good    int64
	bad     int64
}

// AlertTransition is one timeline entry: an alert activating or clearing.
type AlertTransition struct {
	Alert    string  `json:"alert"` // "fast" | "slow"
	Active   bool    `json:"active"`
	AtUnixNS int64   `json:"at_unix_ns"`
	BurnRate float64 `json:"burn_rate"`
}

// AlertWindowStatus is one window's live view.
type AlertWindowStatus struct {
	WindowSec   float64 `json:"window_sec"`
	Threshold   float64 `json:"threshold"`
	BurnRate    float64 `json:"burn_rate"`
	BadFrac     float64 `json:"bad_frac"`
	Good        int64   `json:"good"`
	Bad         int64   `json:"bad"`
	Active      bool    `json:"active"`
	SinceUnixNS int64   `json:"since_unix_ns,omitempty"`
}

// AlertStatus is the /alertz document for one monitored model.
type AlertStatus struct {
	ErrorBudget float64           `json:"error_budget"`
	Fast        AlertWindowStatus `json:"fast"`
	Slow        AlertWindowStatus `json:"slow"`
	// Active is the page signal: true while either window burns above its
	// threshold.
	Active    bool              `json:"active"`
	TotalGood int64             `json:"total_good"`
	TotalBad  int64             `json:"total_bad"`
	History   []AlertTransition `json:"history,omitempty"`
}

// AlertMonitor tracks good/bad counts in a bucketed ring spanning the
// slow window and evaluates both burn rates on every observe and read.
// All state sits behind one mutex: the serving path calls Observe once
// per micro-batch (not per image), so contention is negligible next to
// the inference work.
type AlertMonitor struct {
	cfg       AlertConfig
	bucketDur time.Duration

	mu         sync.Mutex
	buckets    []alertBucket // guarded by mu
	fastActive bool          // guarded by mu
	slowActive bool          // guarded by mu
	fastSince  int64         // guarded by mu; unix nanos
	slowSince  int64         // guarded by mu
	history    []AlertTransition
	totalGood  int64 // guarded by mu
	totalBad   int64 // guarded by mu
}

// NewAlertMonitor returns an idle monitor.
func NewAlertMonitor(cfg AlertConfig) *AlertMonitor {
	cfg = cfg.withDefaults()
	return &AlertMonitor{
		cfg:       cfg,
		bucketDur: cfg.SlowWindow / time.Duration(cfg.Buckets),
		buckets:   make([]alertBucket, cfg.Buckets),
	}
}

// Observe feeds one batch of finished requests: good met the target, bad
// burned budget (latency above target, or shed).
func (m *AlertMonitor) Observe(good, bad int64) {
	if m == nil || (good <= 0 && bad <= 0) {
		return
	}
	now := m.cfg.Now()
	m.mu.Lock()
	b := m.bucket(now)
	if good > 0 {
		b.good += good
		m.totalGood += good
	}
	if bad > 0 {
		b.bad += bad
		m.totalBad += bad
	}
	m.evaluate(now)
	m.mu.Unlock()
}

// bucket locates (and if stale, resets) the ring slot for now. Caller
// holds mu.
func (m *AlertMonitor) bucket(now time.Time) *alertBucket {
	aligned := now.UnixNano() / int64(m.bucketDur) * int64(m.bucketDur)
	idx := int((aligned / int64(m.bucketDur)) % int64(len(m.buckets)))
	if idx < 0 {
		idx += len(m.buckets)
	}
	b := &m.buckets[idx]
	if b.startNS != aligned {
		*b = alertBucket{startNS: aligned}
	}
	return b
}

// windowCounts sums the ring over the trailing span. Caller holds mu.
func (m *AlertMonitor) windowCounts(now time.Time, span time.Duration) (good, bad int64) {
	cut := now.Add(-span).UnixNano()
	nowNS := now.UnixNano()
	for i := range m.buckets {
		b := &m.buckets[i]
		if b.startNS == 0 || b.startNS+int64(m.bucketDur) <= cut || b.startNS > nowNS {
			continue
		}
		good += b.good
		bad += b.bad
	}
	return good, bad
}

// burn computes one window's burn rate; below MinSamples the burn is 0
// (never fire on noise).
func (m *AlertMonitor) burn(good, bad int64) (burnRate, badFrac float64) {
	total := good + bad
	if total < m.cfg.MinSamples || total == 0 {
		return 0, 0
	}
	badFrac = float64(bad) / float64(total)
	return badFrac / m.cfg.ErrorBudget, badFrac
}

// evaluate recomputes both windows and records transitions. Caller holds
// mu.
func (m *AlertMonitor) evaluate(now time.Time) (fast, slow AlertWindowStatus) {
	nowNS := now.UnixNano()
	flip := func(active *bool, since *int64, name string, firing bool, rate float64) {
		if firing == *active {
			return
		}
		*active = firing
		if firing {
			*since = nowNS
		} else {
			*since = 0
		}
		m.history = append(m.history, AlertTransition{Alert: name, Active: firing, AtUnixNS: nowNS, BurnRate: rate})
		if len(m.history) > m.cfg.HistoryCap {
			m.history = m.history[len(m.history)-m.cfg.HistoryCap:]
		}
	}

	fg, fb := m.windowCounts(now, m.cfg.FastWindow)
	fRate, fFrac := m.burn(fg, fb)
	flip(&m.fastActive, &m.fastSince, "fast", fRate >= m.cfg.FastBurn, fRate)
	fast = AlertWindowStatus{
		WindowSec: m.cfg.FastWindow.Seconds(), Threshold: m.cfg.FastBurn,
		BurnRate: fRate, BadFrac: fFrac, Good: fg, Bad: fb,
		Active: m.fastActive, SinceUnixNS: m.fastSince,
	}

	sg, sb := m.windowCounts(now, m.cfg.SlowWindow)
	sRate, sFrac := m.burn(sg, sb)
	flip(&m.slowActive, &m.slowSince, "slow", sRate >= m.cfg.SlowBurn, sRate)
	slow = AlertWindowStatus{
		WindowSec: m.cfg.SlowWindow.Seconds(), Threshold: m.cfg.SlowBurn,
		BurnRate: sRate, BadFrac: sFrac, Good: sg, Bad: sb,
		Active: m.slowActive, SinceUnixNS: m.slowSince,
	}
	return fast, slow
}

// Status re-evaluates against the current clock (so alerts clear as the
// windows drain even with no traffic) and returns the live view.
func (m *AlertMonitor) Status() AlertStatus {
	if m == nil {
		return AlertStatus{}
	}
	now := m.cfg.Now()
	m.mu.Lock()
	fast, slow := m.evaluate(now)
	st := AlertStatus{
		ErrorBudget: m.cfg.ErrorBudget,
		Fast:        fast,
		Slow:        slow,
		Active:      fast.Active || slow.Active,
		TotalGood:   m.totalGood,
		TotalBad:    m.totalBad,
		History:     append([]AlertTransition(nil), m.history...),
	}
	m.mu.Unlock()
	return st
}

// Active reports whether any window is currently firing.
func (m *AlertMonitor) Active() bool {
	if m == nil {
		return false
	}
	st := m.Status()
	return st.Active
}

// AlertzReport is one tier's /alertz document: the per-model monitor
// states plus the rolled-up page signal. The router decodes its backends'
// reports with this same type and re-aggregates them into the fleet view.
type AlertzReport struct {
	Tier   string                 `json:"tier"`
	Active bool                   `json:"active"`
	Models map[string]AlertStatus `json:"models,omitempty"`
}
