package control

// bench_test.go measures the control plane's overhead — the loop rides
// on the serving hot path (window observations per micro-batch) and on a
// periodic tick (snapshot + step), so both must stay trivially cheap
// next to a ~100µs classify. CI archives these as BENCH_control.json.

import (
	"testing"
	"time"
)

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) + 0.5)
	}
}

func BenchmarkWindowObserveBatch32(b *testing.B) {
	w := NewWindow(4, WindowConfig{})
	obs := make([]Obs, 32)
	for i := range obs {
		obs[i] = Obs{LatencyMS: float64(i), ExitIndex: i % 4, EnergyPJ: 1e6}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ObserveBatch(obs)
	}
	b.ReportMetric(float64(b.N)*32/b.Elapsed().Seconds(), "obs/s")
}

func BenchmarkWindowSnapshot(b *testing.B) {
	w := NewWindow(4, WindowConfig{})
	obs := make([]Obs, 256)
	for i := range obs {
		obs[i] = Obs{LatencyMS: float64(i % 50), ExitIndex: i % 4, EnergyPJ: 1e6}
	}
	w.ObserveBatch(obs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.Snapshot()
	}
}

func BenchmarkControllerStep(b *testing.B) {
	c, err := New(SLO{P99LatencyMs: 15, MaxQueueFrac: 0.8, EnergyBudgetPJ: 2.5e9},
		Ladder(3, 0), Config{Interval: 200 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	s := Sample{P99LatencyMS: 12, QueueFrac: 0.3, MeanEnergyPJ: 2e9, Images: 500}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Step(s)
	}
}
