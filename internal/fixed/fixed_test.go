package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFormatBasics(t *testing.T) {
	f := Q2x13
	if f.Width() != 16 {
		t.Errorf("Q2.13 width %d, want 16", f.Width())
	}
	if f.Scale() != 8192 {
		t.Errorf("scale %v", f.Scale())
	}
	if f.Resolution() != 1.0/8192 {
		t.Errorf("resolution %v", f.Resolution())
	}
	if f.String() != "Q2.13" {
		t.Errorf("String %s", f.String())
	}
	if err := f.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Format{
		{IntBits: -1, FracBits: 3},
		{IntBits: 3, FracBits: -1},
		{IntBits: 40, FracBits: 40},
		{IntBits: 0, FracBits: 0},
	}
	for _, f := range bad {
		if f.Validate() == nil {
			t.Errorf("%+v validated", f)
		}
	}
}

func TestQuantizeKnownValues(t *testing.T) {
	f := Format{IntBits: 2, FracBits: 2} // raw range [-16, 15], step 0.25
	cases := []struct {
		x    float64
		want float64
	}{
		{0, 0},
		{0.25, 0.25},
		{0.3, 0.25},
		{0.4, 0.5},
		{-0.3, -0.25},
		{100, 3.75},  // saturate high
		{-100, -4.0}, // saturate low
		{3.75, 3.75}, // max value
		{-4.0, -4.0}, // min value
	}
	for _, c := range cases {
		if got := f.Round(c.x); got != c.want {
			t.Errorf("Round(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if f.MaxValue() != 3.75 || f.MinValue() != -4 {
		t.Errorf("range [%v,%v]", f.MinValue(), f.MaxValue())
	}
}

func TestQuantizeNaN(t *testing.T) {
	if Q2x13.Quantize(math.NaN()) != 0 {
		t.Error("NaN should quantize to 0")
	}
}

func TestRoundIdempotent(t *testing.T) {
	f := Q2x13
	for _, x := range []float64{0.123456, -1.9, 3.999, -4, 0} {
		once := f.Round(x)
		twice := f.Round(once)
		if once != twice {
			t.Errorf("Round not idempotent at %v: %v vs %v", x, once, twice)
		}
	}
}

func TestQuantizeSliceErrorBound(t *testing.T) {
	f := Q2x13
	xs := []float64{0.1, -0.7, 0.999, 0.5}
	maxErr := f.QuantizeSlice(xs)
	if maxErr > f.Resolution()/2+1e-15 {
		t.Errorf("max error %v exceeds half resolution %v", maxErr, f.Resolution()/2)
	}
}

func TestMulRawKnown(t *testing.T) {
	f := Format{IntBits: 3, FracBits: 4} // step 1/16
	a := f.Quantize(1.5)                 // 24
	b := f.Quantize(2.0)                 // 32
	got := f.Dequantize(f.MulRaw(a, b))
	if got != 3.0 {
		t.Errorf("1.5*2.0 = %v, want 3", got)
	}
	// saturation: 7*7 = 49 > max 7.9375
	big := f.Quantize(7)
	if got := f.Dequantize(f.MulRaw(big, big)); got != f.MaxValue() {
		t.Errorf("7*7 = %v, want saturated %v", got, f.MaxValue())
	}
	// negative saturation
	neg := f.Quantize(-8)
	if got := f.Dequantize(f.MulRaw(big, neg)); got != f.MinValue() {
		t.Errorf("7*-8 = %v, want saturated %v", got, f.MinValue())
	}
}

func TestAddRawSaturates(t *testing.T) {
	f := Format{IntBits: 2, FracBits: 2}
	mx := f.Quantize(f.MaxValue())
	if f.AddRaw(mx, mx) != f.maxRaw() {
		t.Error("AddRaw should saturate high")
	}
	mn := f.Quantize(f.MinValue())
	if f.AddRaw(mn, mn) != f.minRaw() {
		t.Error("AddRaw should saturate low")
	}
	if f.Dequantize(f.AddRaw(f.Quantize(1), f.Quantize(-0.5))) != 0.5 {
		t.Error("AddRaw plain addition wrong")
	}
}

// Property: quantization error of in-range values is at most half a step.
func TestQuickQuantizeError(t *testing.T) {
	f := Q2x13
	g := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		x = math.Mod(x, 3.9) // keep in range
		err := math.Abs(f.Round(x) - x)
		return err <= f.Resolution()/2+1e-15
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Round is monotone: x ≤ y ⇒ Round(x) ≤ Round(y).
func TestQuickRoundMonotone(t *testing.T) {
	f := Q2x13
	g := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		x, y := a, b
		if x > y {
			x, y = y, x
		}
		return f.Round(x) <= f.Round(y)
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: MulRaw by the representation of 1.0 is the identity for
// in-range values.
func TestQuickMulIdentity(t *testing.T) {
	f := Format{IntBits: 3, FracBits: 8}
	one := f.Quantize(1)
	g := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		x = math.Mod(x, 7.5)
		raw := f.Quantize(x)
		return f.MulRaw(raw, one) == raw
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
