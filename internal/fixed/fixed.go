// Package fixed implements signed Qm.n fixed-point arithmetic with
// saturation. The paper's classifiers were synthesized to RTL on a 45 nm
// process; datapaths of that generation use fixed-point MAC units, so the
// hardware model (internal/hw) quantizes weights and activations through
// this package to estimate precision-faithful energy and to bound the
// accuracy cost of a hardware deployment.
package fixed

import (
	"fmt"
	"math"
)

// Format describes a signed fixed-point format with IntBits integer bits
// (excluding sign) and FracBits fractional bits; total width is
// 1+IntBits+FracBits.
type Format struct {
	IntBits  int
	FracBits int
}

// Q2x13 is the default 16-bit format (1 sign + 2 integer + 13 fraction),
// a common choice for CNN accelerators in 45 nm-class designs: activations
// live in [0,1] and the sigmoid keeps weights small.
var Q2x13 = Format{IntBits: 2, FracBits: 13}

// Q7x8 is a wider-range 16-bit format for accumulators.
var Q7x8 = Format{IntBits: 7, FracBits: 8}

// Validate checks the format is representable.
func (f Format) Validate() error {
	if f.IntBits < 0 || f.FracBits < 0 {
		return fmt.Errorf("fixed: negative field in %+v", f)
	}
	if f.Width() > 63 {
		return fmt.Errorf("fixed: width %d exceeds 63 bits", f.Width())
	}
	if f.Width() < 2 {
		return fmt.Errorf("fixed: width %d too small", f.Width())
	}
	return nil
}

// Width returns the total bit width including sign.
func (f Format) Width() int { return 1 + f.IntBits + f.FracBits }

// Scale returns 2^FracBits.
func (f Format) Scale() float64 { return math.Ldexp(1, f.FracBits) }

// MaxValue returns the largest representable value.
func (f Format) MaxValue() float64 {
	return float64(f.maxRaw()) / f.Scale()
}

// MinValue returns the smallest (most negative) representable value.
func (f Format) MinValue() float64 {
	return float64(f.minRaw()) / f.Scale()
}

func (f Format) maxRaw() int64 { return (int64(1) << uint(f.IntBits+f.FracBits)) - 1 }
func (f Format) minRaw() int64 { return -(int64(1) << uint(f.IntBits+f.FracBits)) }

// Resolution returns the quantization step 2^-FracBits.
func (f Format) Resolution() float64 { return 1 / f.Scale() }

// Quantize converts x to the nearest representable raw integer with
// saturation. NaN quantizes to zero.
func (f Format) Quantize(x float64) int64 {
	if math.IsNaN(x) {
		return 0
	}
	raw := math.Round(x * f.Scale())
	if raw > float64(f.maxRaw()) {
		return f.maxRaw()
	}
	if raw < float64(f.minRaw()) {
		return f.minRaw()
	}
	return int64(raw)
}

// Dequantize converts a raw integer back to float64.
func (f Format) Dequantize(raw int64) float64 { return float64(raw) / f.Scale() }

// Round quantizes and dequantizes in one step: the nearest representable
// value with saturation.
func (f Format) Round(x float64) float64 { return f.Dequantize(f.Quantize(x)) }

// QuantizeSlice rounds every element of xs in place and returns the maximum
// absolute rounding error over non-saturated inputs.
func (f Format) QuantizeSlice(xs []float64) float64 {
	maxErr := 0.0
	for i, x := range xs {
		q := f.Round(x)
		if x >= f.MinValue() && x <= f.MaxValue() {
			if e := math.Abs(q - x); e > maxErr {
				maxErr = e
			}
		}
		xs[i] = q
	}
	return maxErr
}

// MulRaw multiplies two raw values in the same format, returning a raw
// value in that format (with rounding and saturation), as a fixed-point
// multiplier array would.
func (f Format) MulRaw(a, b int64) int64 {
	wide := a * b // up to 2*(width-1) bits; fits in int64 for width ≤ 31
	// shift back by FracBits with round-to-nearest
	half := int64(1) << uint(f.FracBits-1)
	if f.FracBits == 0 {
		half = 0
	}
	var r int64
	if wide >= 0 {
		r = (wide + half) >> uint(f.FracBits)
	} else {
		r = -((-wide + half) >> uint(f.FracBits))
	}
	if r > f.maxRaw() {
		return f.maxRaw()
	}
	if r < f.minRaw() {
		return f.minRaw()
	}
	return r
}

// AddRaw adds two raw values with saturation.
func (f Format) AddRaw(a, b int64) int64 {
	s := a + b
	if s > f.maxRaw() {
		return f.maxRaw()
	}
	if s < f.minRaw() {
		return f.minRaw()
	}
	return s
}

// String renders the format as "Qm.n".
func (f Format) String() string { return fmt.Sprintf("Q%d.%d", f.IntBits, f.FracBits) }
