package serve

// trace.go maps the core layer's stage events onto per-request trace spans.
// The worker installs a stage observer on its session for the duration of
// one grouped ResumeBatchPolicyAt call; every event carries the batch rows
// it covered, so each traced job in the group receives exactly the spans of
// the work its image took part in — shared batched stage passes appear in
// every participant's trace (annotated with the rows they batched with),
// route dispatches and exits only in the traces of the rows they moved.

import (
	"strconv"

	"cdl/internal/core"
	"cdl/internal/obs"
)

// SpanName renders a stage event as a span name using the graph's node
// names: "stage:<node>#<i>" for a cascade stage forward (conv stage +
// linear classifier + exit decision), "route:<node>-><branch>" for a
// branch dispatch, "fc:<node>" for a final FC exit and "forced:<node>#<i>"
// for a depth-cap exit. The set of names is bounded by the model's graph,
// never by request content. Exported for the edge tier, which renders its
// prefix and loopback walks with the same vocabulary so a cross-tier trace
// reads uniformly.
func SpanName(g *core.Graph, ev core.StageEvent) string {
	node := nodeName(g, ev.Node)
	switch ev.Kind {
	case core.StageRoute:
		return "route:" + node + "->" + nodeName(g, ev.Branch)
	case core.StageFinal:
		return "fc:" + node
	case core.StageForced:
		return "forced:" + node + "#" + strconv.Itoa(ev.Stage)
	default:
		return "stage:" + node + "#" + strconv.Itoa(ev.Stage)
	}
}

func nodeName(g *core.Graph, node int) string {
	if node < 0 || node >= len(g.Nodes) {
		return "node" + strconv.Itoa(node)
	}
	if n := g.Nodes[node].Name; n != "" {
		return n
	}
	return "node" + strconv.Itoa(node)
}

// anyTraced reports whether installing a stage observer would do anything
// for this group — the common untraced case skips the observer entirely,
// leaving the hot path at one nil check per stage inside core.
func anyTraced(group []*job) bool {
	for _, j := range group {
		if j.tr != nil {
			return true
		}
	}
	return false
}

// stageObserver returns the observer to install around one grouped batch
// call: it fans each stage event out to the traces of the rows it covered
// (all of them when the event predates compaction info, i.e. Rows is nil).
// Batched stage spans note the batch width so a trace shows which stages
// amortized across neighbours. The returned closure runs on the worker
// goroutine only, and group's backing array is stable for the duration of
// the call, so no locking beyond the traces' own is needed.
func stageObserver(group []*job, g *core.Graph) func(core.StageEvent) {
	return func(ev core.StageEvent) {
		name := SpanName(g, ev)
		detail := ""
		if len(ev.Rows) > 1 && ev.Kind != core.StageRoute {
			detail = "batch=" + strconv.Itoa(len(ev.Rows))
		}
		record := func(tr *obs.Trace) {
			if tr != nil {
				tr.Record(name, ev.Start, ev.End, detail)
			}
		}
		if ev.Rows == nil {
			for _, j := range group {
				record(j.tr)
			}
			return
		}
		for _, row := range ev.Rows {
			if row >= 0 && row < len(group) {
				record(group[row].tr)
			}
		}
	}
}
