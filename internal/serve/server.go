// Package serve is the CDLN inference server: an HTTP JSON API over a pool
// of pre-cloned per-worker model replicas (core.Session), a bounded work
// queue with micro-batching, and live exit/OPS/energy statistics.
//
// The serving design is the paper's thesis operationalized: easy inputs
// exit the cascade early, so most requests cost a fraction of a full
// forward pass, and the per-request δ override exposes §III.B's runtime
// accuracy/efficiency knob to clients per call.
//
// Endpoints:
//
//	POST /v1/classify  one image or a batch, optional per-request δ
//	POST /v1/resume    resume an edge-offloaded cascade past its split stage
//	GET  /healthz      liveness and model identity
//	GET  /statsz       live exit distribution, normalized OPS, 45 nm energy
//
// /v1/resume is the cloud half of the edge–cloud split (internal/edgecloud):
// an edge node runs the cascade prefix, exits easy inputs locally, and ships
// only the hard residue here as wire-encoded intermediate activations.
package serve

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sync"
	"time"

	"cdl/internal/core"
	"cdl/internal/edgecloud/wire"
	"cdl/internal/energy"
	"cdl/internal/tensor"
)

// Config sizes the server.
type Config struct {
	// Workers is the replica-pool size: one core.Session (and one worker
	// goroutine) each. Default GOMAXPROCS.
	Workers int
	// QueueDepth bounds the work queue in images; requests beyond it are
	// rejected with 503. Default 1024.
	QueueDepth int
	// MaxBatch is the micro-batch size B: a worker drains up to B queued
	// images before touching shared state. Default 32.
	MaxBatch int
	// BatchWindow is the micro-batch wait T: after the first image a worker
	// waits at most this long for the batch to fill. Default 200µs.
	BatchWindow time.Duration
	// MaxRequestImages caps the images accepted in one request (they must
	// all fit the queue anyway). Default MaxBatch×8.
	MaxRequestImages int
	// ModelName is reported by /healthz (e.g. the model file path).
	ModelName string

	// ReadHeaderTimeout bounds how long ListenAndServe waits for a
	// client's request headers — without it a slowloris client can pin
	// connections forever on a server whose whole point is shedding load
	// deliberately. Default 5s.
	ReadHeaderTimeout time.Duration
	// IdleTimeout closes keep-alive connections idle this long. Default
	// 60s.
	IdleTimeout time.Duration
	// MaxHeaderBytes caps request header size. Default 64 KiB.
	MaxHeaderBytes int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 200 * time.Microsecond
	}
	if c.MaxRequestImages <= 0 {
		c.MaxRequestImages = c.MaxBatch * 8
	}
	// Admission is all-or-nothing against the queue, so a request larger
	// than the queue could never be accepted.
	if c.MaxRequestImages > c.QueueDepth {
		c.MaxRequestImages = c.QueueDepth
	}
	if c.ReadHeaderTimeout == 0 {
		c.ReadHeaderTimeout = 5 * time.Second
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 60 * time.Second
	}
	if c.MaxHeaderBytes <= 0 {
		c.MaxHeaderBytes = 64 << 10
	}
	return c
}

// DefaultConfig returns the default sizing.
func DefaultConfig() Config { return Config{}.withDefaults() }

// Server serves classification over a CDLN replica pool. Create with New,
// expose via Handler (or ListenAndServe) and stop with Close.
type Server struct {
	cfg     Config
	model   *core.CDLN
	inWidth int
	// maxResumeWire is the largest wire-encoded activation any valid
	// /v1/resume payload can carry (the lossless encoding of the widest
	// split point), used to bound request bodies before decoding.
	maxResumeWire int
	pool          *pool
	metrics       *metrics
	mux           *http.ServeMux
}

// New validates the model, pre-clones cfg.Workers warm sessions and starts
// the worker pool.
func New(model *core.CDLN, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := model.Validate(); err != nil {
		return nil, err
	}
	acc, err := energy.NewEvaluator().NewAccumulator(model)
	if err != nil {
		return nil, err
	}
	sessions := make([]*core.Session, cfg.Workers)
	for i := range sessions {
		if sessions[i], err = core.NewSession(model); err != nil {
			return nil, err
		}
	}
	inWidth := 1
	for _, d := range model.Arch.Net.InShape {
		inWidth *= d
	}
	maxNumel, maxRank := inWidth, len(model.Arch.Net.InShape)
	for split := 1; split <= len(model.Stages); split++ {
		shape := model.Arch.Net.ShapeAt(model.SplitPos(split))
		n := 1
		for _, d := range shape {
			n *= d
		}
		if n > maxNumel {
			maxNumel = n
		}
		if len(shape) > maxRank {
			maxRank = len(shape)
		}
	}
	s := &Server{
		cfg:           cfg,
		model:         model,
		inWidth:       inWidth,
		maxResumeWire: wire.EncodedSize(maxRank, maxNumel, wire.EncodingFloat64),
		metrics:       newMetrics(model, acc),
	}
	s.pool = newPool(sessions, cfg.QueueDepth, cfg.MaxBatch, cfg.BatchWindow, s.metrics.observeBatch)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/classify", s.handleClassify)
	s.mux.HandleFunc("/v1/resume", s.handleResume)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statsz", s.handleStatsz)
	return s, nil
}

// Handler returns the HTTP handler (also what ListenAndServe mounts).
func (s *Server) Handler() http.Handler { return s.mux }

// Stats snapshots the live counters.
func (s *Server) Stats() Stats { return s.metrics.snapshot(s.pool.depth(), s.cfg.Workers) }

// Close drains the queue and stops the workers. Call after the HTTP layer
// has stopped accepting requests (http.Server.Shutdown); classify requests
// racing Close receive 503.
func (s *Server) Close() { s.pool.close() }

// HTTPHardening bundles the slow-client listener limits shared by the
// cloud server and the edge front (internal/edgecloud): a server built to
// shed load deliberately must not let a slowloris client pin its
// connections for free.
type HTTPHardening struct {
	// ReadHeaderTimeout bounds how long a client may take to send its
	// request headers. Default 5s.
	ReadHeaderTimeout time.Duration
	// IdleTimeout closes keep-alive connections idle this long. Default
	// 60s.
	IdleTimeout time.Duration
	// MaxHeaderBytes caps request header size. Default 64 KiB.
	MaxHeaderBytes int
}

// WithDefaults fills unset fields.
func (h HTTPHardening) WithDefaults() HTTPHardening {
	if h.ReadHeaderTimeout == 0 {
		h.ReadHeaderTimeout = 5 * time.Second
	}
	if h.IdleTimeout == 0 {
		h.IdleTimeout = 60 * time.Second
	}
	if h.MaxHeaderBytes <= 0 {
		h.MaxHeaderBytes = 64 << 10
	}
	return h
}

// ListenHardened runs handler on addr with the hardening limits until stop
// is closed, then shuts down gracefully (drain HTTP, then run afterStop if
// non-nil — the hook both tiers use to drain their worker pools). Body
// reads are the handlers' responsibility (MaxBytesReader).
func ListenHardened(addr string, handler http.Handler, stop <-chan struct{}, hard HTTPHardening, afterStop func()) error {
	hard = hard.WithDefaults()
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: hard.ReadHeaderTimeout,
		IdleTimeout:       hard.IdleTimeout,
		MaxHeaderBytes:    hard.MaxHeaderBytes,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	stopped := func() {
		if afterStop != nil {
			afterStop()
		}
	}
	select {
	case err := <-errCh:
		stopped()
		return err
	case <-stop:
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := httpSrv.Shutdown(ctx)
	stopped()
	if err != nil {
		return err
	}
	if lerr := <-errCh; !errors.Is(lerr, http.ErrServerClosed) {
		return lerr
	}
	return nil
}

// ListenAndServe runs the server on addr until stop is closed, then shuts
// down gracefully: stop accepting, wait for in-flight requests, drain the
// pool. The listener is hardened against slow clients via the Config's
// ReadHeaderTimeout/IdleTimeout/MaxHeaderBytes (body reads are already
// bounded per handler with MaxBytesReader).
func (s *Server) ListenAndServe(addr string, stop <-chan struct{}) error {
	hard := HTTPHardening{
		ReadHeaderTimeout: s.cfg.ReadHeaderTimeout,
		IdleTimeout:       s.cfg.IdleTimeout,
		MaxHeaderBytes:    s.cfg.MaxHeaderBytes,
	}
	return ListenHardened(addr, s.mux, stop, hard, s.Close)
}

// ClassifyRequest is the /v1/classify payload: exactly one of Image (a
// single flattened image) or Images (a batch) must be set. Pixel counts
// must match the model's input shape. Delta, when non-nil, overrides the
// model's confidence threshold δ for every image in the request — the
// paper's §III.B runtime knob. It must be a finite number in [0,1]; NaN
// and ±Inf are rejected with 400 rather than passed into the exit rule
// (NaN compares false against every score, which would silently disable
// early exit). δ=1 disables early exit entirely (maximum accuracy of the
// baseline, baseline-like cost); moderate δ trades depth for cost. Note
// the default threshold rule (exit iff exactly one score clears δ) is not
// monotone at the low end: δ near 0 makes every class "confident" and so
// forces full depth too.
type ClassifyRequest struct {
	Image  []float64   `json:"image,omitempty"`
	Images [][]float64 `json:"images,omitempty"`
	Delta  *float64    `json:"delta,omitempty"`
}

// ClassifyResult is one image's outcome.
type ClassifyResult struct {
	// Label is the predicted class.
	Label int `json:"label"`
	// Exit names the exit point taken ("O1".."On" or "FC"); ExitIndex is
	// its index in the cascade.
	Exit      string `json:"exit"`
	ExitIndex int    `json:"exit_index"`
	// Confidence is the winning score at the exit point.
	Confidence float64 `json:"confidence"`
	// Ops and EnergyPJ are the dynamic cost of this input; NormalizedOps is
	// Ops over one full baseline pass (1.0 = no early-exit benefit).
	Ops           float64 `json:"ops"`
	NormalizedOps float64 `json:"normalized_ops"`
	EnergyPJ      float64 `json:"energy_pj"`
}

// ClassifyResponse is the /v1/classify response; Results is in request
// order.
type ClassifyResponse struct {
	Results []ClassifyResult `json:"results"`
	Count   int              `json:"count"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// ParseDeltaOverride validates an optional per-request δ override (shared
// by this server and the edge front in internal/edgecloud). nil keeps the
// model's trained thresholds (reported as −1, the Session sentinel);
// otherwise the value must be a finite number in [0,1] — NaN in particular
// would flow into every score comparison and silently disable early exit.
func ParseDeltaOverride(d *float64) (float64, error) {
	if d == nil {
		return -1, nil
	}
	v := *d
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
		return 0, fmt.Errorf("delta %v must be a finite value in [0,1]", v)
	}
	return v, nil
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.metrics.observeInvalid()
		WriteJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	// Bound the body before decoding: the per-request image cap is useless
	// if a client can make the decoder buffer gigabytes first. ~32 bytes
	// covers any float64 JSON rendering plus separators.
	maxBody := int64(s.cfg.MaxRequestImages)*int64(s.inWidth)*32 + 4096
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	var req ClassifyRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.metrics.observeInvalid()
		WriteJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf("bad request body: %v", err)})
		return
	}
	images, err := req.NormalizeImages(s.inWidth, s.cfg.MaxRequestImages, s.model.Arch.Net.InShape)
	if err != nil {
		s.metrics.observeInvalid()
		WriteJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	delta, err := ParseDeltaOverride(req.Delta)
	if err != nil {
		s.metrics.observeInvalid()
		WriteJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}

	jobs := make([]*job, len(images))
	records := make([]core.ExitRecord, len(images))
	var wg sync.WaitGroup
	for i, img := range images {
		jobs[i] = &job{
			x:     tensor.FromSlice(img, s.model.Arch.Net.InShape...),
			delta: delta,
			rec:   &records[i],
			wg:    &wg,
		}
	}
	s.runJobs(w, jobs, records, &wg)
}

// runJobs submits a prepared batch, waits for the pool, and writes the
// shared ClassifyResponse — the common tail of /v1/classify and /v1/resume.
// It reports whether the batch was admitted.
func (s *Server) runJobs(w http.ResponseWriter, jobs []*job, records []core.ExitRecord, wg *sync.WaitGroup) bool {
	if err := s.pool.submit(jobs); err != nil {
		s.metrics.observeRejected()
		WriteJSON(w, http.StatusServiceUnavailable, errorResponse{err.Error()})
		return false
	}
	wg.Wait()
	s.metrics.observeRequest()

	resp := ClassifyResponse{Results: make([]ClassifyResult, len(records)), Count: len(records)}
	baseOps := s.metrics.baselineOps
	for i, rec := range records {
		res := ClassifyResult{
			Label:      rec.Label,
			Exit:       rec.StageName,
			ExitIndex:  rec.StageIndex,
			Confidence: rec.Confidence,
			Ops:        rec.Ops,
			EnergyPJ:   s.metrics.acc.ExitEnergy(rec.StageIndex),
		}
		if baseOps > 0 {
			res.NormalizedOps = rec.Ops / baseOps
		}
		resp.Results[i] = res
	}
	WriteJSON(w, http.StatusOK, resp)
	return true
}

// ResumeRequest is the /v1/resume payload: exactly one of Payload (a
// single activation) or Payloads (a batch) must be set, each a base64
// (standard encoding) wire-format activation produced by an edge node's
// ClassifyPrefix (see internal/edgecloud/wire). The activation's split
// stage, layer position and shape must match this server's model. Delta
// follows the same rules as ClassifyRequest.Delta and must be the δ the
// edge used for its prefix if the pair is to behave like one monolithic
// cascade.
type ResumeRequest struct {
	Payload  string   `json:"payload,omitempty"`
	Payloads []string `json:"payloads,omitempty"`
	Delta    *float64 `json:"delta,omitempty"`
}

// resumeActivation decodes and validates one base64 wire payload against
// the server's model, returning the ready-to-submit tensor and stage.
func (s *Server) resumeActivation(p string) (*tensor.T, int, error) {
	raw, err := base64.StdEncoding.DecodeString(p)
	if err != nil {
		return nil, 0, fmt.Errorf("bad base64 payload: %v", err)
	}
	act, err := wire.Decode(raw)
	if err != nil {
		return nil, 0, err
	}
	if err := s.model.ValidateResume(act.FromStage, act.Pos, act.Shape); err != nil {
		return nil, 0, err
	}
	return tensor.FromSlice(act.Data, act.Shape...), act.FromStage, nil
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.metrics.observeInvalid()
		WriteJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	// Bound the body by the largest activation the model can legitimately
	// receive (lossless encoding, base64-inflated) times the batch cap.
	maxBody := int64(s.cfg.MaxRequestImages)*int64(base64.StdEncoding.EncodedLen(s.maxResumeWire)+4) + 4096
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	var req ResumeRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.metrics.observeInvalid()
		WriteJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf("bad request body: %v", err)})
		return
	}
	var payloads []string
	switch {
	case req.Payload != "" && req.Payloads != nil:
		s.metrics.observeInvalid()
		WriteJSON(w, http.StatusBadRequest, errorResponse{`set "payload" or "payloads", not both`})
		return
	case req.Payload != "":
		payloads = []string{req.Payload}
	case len(req.Payloads) > 0:
		payloads = req.Payloads
	default:
		s.metrics.observeInvalid()
		WriteJSON(w, http.StatusBadRequest, errorResponse{`missing "payload" or "payloads"`})
		return
	}
	if len(payloads) > s.cfg.MaxRequestImages {
		s.metrics.observeInvalid()
		WriteJSON(w, http.StatusBadRequest, errorResponse{
			fmt.Sprintf("%d payloads exceed the per-request cap %d", len(payloads), s.cfg.MaxRequestImages)})
		return
	}
	delta, err := ParseDeltaOverride(req.Delta)
	if err != nil {
		s.metrics.observeInvalid()
		WriteJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}

	jobs := make([]*job, len(payloads))
	records := make([]core.ExitRecord, len(payloads))
	var wg sync.WaitGroup
	for i, p := range payloads {
		x, fromStage, err := s.resumeActivation(p)
		if err != nil {
			s.metrics.observeInvalid()
			WriteJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf("payload %d: %v", i, err)})
			return
		}
		jobs[i] = &job{x: x, fromStage: fromStage, delta: delta, rec: &records[i], wg: &wg}
	}
	if s.runJobs(w, jobs, records, &wg) {
		s.metrics.observeResume()
	}
}

// NormalizeImages validates the request's single/batch forms against the
// model's input width and the per-request cap, returning the pixel slices.
// Shared by the cloud server and the edge front, so both tiers accept and
// reject exactly the same requests. Pixels must be finite: standard JSON
// cannot carry NaN/±Inf, but the type is also used by in-process callers,
// and a NaN pixel would flow through every stage score and silently
// disable the exit rule (NaN compares false against δ) — reject it here,
// like ParseDeltaOverride does for δ.
func (req *ClassifyRequest) NormalizeImages(inWidth, maxImages int, inShape []int) ([][]float64, error) {
	var images [][]float64
	switch {
	case req.Image != nil && req.Images != nil:
		return nil, errors.New(`set "image" or "images", not both`)
	case req.Image != nil:
		images = [][]float64{req.Image}
	case len(req.Images) > 0:
		images = req.Images
	default:
		return nil, errors.New(`missing "image" or "images"`)
	}
	if len(images) > maxImages {
		return nil, fmt.Errorf("%d images exceed the per-request cap %d", len(images), maxImages)
	}
	for i, img := range images {
		if len(img) != inWidth {
			return nil, fmt.Errorf("image %d has %d pixels, model wants %d (shape %v)",
				i, len(img), inWidth, inShape)
		}
		for p, v := range img {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("image %d pixel %d is %v; pixels must be finite", i, p, v)
			}
		}
	}
	return images, nil
}

// healthResponse is the /healthz payload.
type healthResponse struct {
	Status        string  `json:"status"`
	Model         string  `json:"model,omitempty"`
	Arch          string  `json:"arch"`
	Stages        int     `json:"stages"`
	Delta         float64 `json:"delta"`
	Workers       int     `json:"workers"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, healthResponse{
		Status:        "ok",
		Model:         s.cfg.ModelName,
		Arch:          s.model.Arch.Name,
		Stages:        len(s.model.Stages),
		Delta:         s.model.Delta,
		Workers:       s.cfg.Workers,
		UptimeSeconds: time.Since(s.metrics.started).Seconds(),
	})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, s.Stats())
}

// WriteJSON writes v as a JSON response with the given status — the one
// response writer shared by every endpoint on both tiers.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// WriteError writes the shared {"error": msg} body.
func WriteError(w http.ResponseWriter, status int, msg string) {
	WriteJSON(w, status, errorResponse{msg})
}
