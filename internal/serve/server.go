// Package serve is the CDLN inference server: an HTTP JSON API over a
// registry of named, versioned models, each backed by a pool of pre-cloned
// per-worker replicas (core.Session), a bounded work queue with
// micro-batching, and live exit/OPS/energy statistics.
//
// The serving design is the paper's thesis operationalized: easy inputs
// exit the cascade early, so most requests cost a fraction of a full
// forward pass, and the per-request exit policy exposes §III.B's runtime
// accuracy/efficiency knob to clients per call — as a single δ on /v1, and
// as a structured ExitPolicy (per-stage deltas, depth caps, op budgets,
// detail levels) on /v2.
//
// Endpoints:
//
//	POST /v1/classify                    one image or a batch, optional per-request δ
//	POST /v1/resume                      resume an edge-offloaded cascade past its split stage
//	GET  /v2/models                      list models + metadata (stages, δ, op costs)
//	GET  /v2/models/{model}              one model's metadata
//	PUT  /v2/models/{model}              load-from-path hot-swap (admin surface)
//	PUT  /v2/models/{model}/branches/{b} hot-swap one branch subnetwork of a routed model
//	POST /v2/models/{model}/classify     classify on a named model under an ExitPolicy
//	POST /v2/models/{model}/resume       resume on a named model under an ExitPolicy
//	GET  /v2/models/{model}/slo          attached SLO + controller state (rung, δ, window)
//	PUT  /v2/models/{model}/slo          attach/retarget the SLO feedback controller
//	DELETE /v2/models/{model}/slo        detach the controller (restore trained behaviour)
//	GET  /healthz                        liveness and model identity
//	GET  /statsz                         live exit distribution, latency histograms, normalized
//	                                     OPS, 45 nm energy, shed causes, controller state
//
// The /v1 routes are aliases onto the registry's default model with
// responses bit-identical to the pre-registry single-model server (pinned
// by golden_test.go). Hot-swapping a model under load drops no requests:
// a request that races the swap retries transparently against the
// successor version. Request contexts are threaded through the pool into
// the workers, so a cancelled or deadline-expired request is dropped
// before it burns a replica.
//
// /v1/resume and /v2/models/{model}/resume are the cloud half of the
// edge–cloud split (internal/edgecloud): an edge node runs the cascade
// prefix, exits easy inputs locally, and ships only the hard residue here
// as wire-encoded intermediate activations.
package serve

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sync"
	"time"

	"cdl/internal/core"
	"cdl/internal/edgecloud/wire"
	"cdl/internal/obs"
	"cdl/internal/tensor"
)

// Config sizes the server (and every model pool in its registry).
type Config struct {
	// Workers is the replica-pool size per model: one core.Session (and one
	// worker goroutine) each. Default GOMAXPROCS.
	Workers int
	// QueueDepth bounds each model's work queue in images; requests beyond
	// it are rejected with 503. Default 1024.
	QueueDepth int
	// MaxBatch is the micro-batch size B: a worker drains up to B queued
	// images before touching shared state. Default 32.
	MaxBatch int
	// BatchWindow is the micro-batch wait T: after the first image a worker
	// waits at most this long for the batch to fill. Default 200µs.
	BatchWindow time.Duration
	// MaxRequestImages caps the images accepted in one request (they must
	// all fit the queue anyway). Default MaxBatch×8.
	MaxRequestImages int
	// ModelName is reported by /healthz (e.g. the model file path).
	ModelName string

	// ControlInterval is the SLO controller tick period for entries with
	// an attached SLO (Registry.SetSLO / PUT /v2/models/{name}/slo).
	// Default 200ms.
	ControlInterval time.Duration
	// ControlWindow is the sliding telemetry span the controller's
	// latency/energy signals are computed over. Default 5s.
	ControlWindow time.Duration

	// ReadHeaderTimeout bounds how long ListenAndServe waits for a
	// client's request headers — without it a slowloris client can pin
	// connections forever on a server whose whole point is shedding load
	// deliberately. Default 5s.
	ReadHeaderTimeout time.Duration
	// IdleTimeout closes keep-alive connections idle this long. Default
	// 60s.
	IdleTimeout time.Duration
	// MaxHeaderBytes caps request header size. Default 64 KiB.
	MaxHeaderBytes int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 200 * time.Microsecond
	}
	if c.MaxRequestImages <= 0 {
		c.MaxRequestImages = c.MaxBatch * 8
	}
	// Admission is all-or-nothing against the queue, so a request larger
	// than the queue could never be accepted.
	if c.MaxRequestImages > c.QueueDepth {
		c.MaxRequestImages = c.QueueDepth
	}
	if c.ControlInterval <= 0 {
		c.ControlInterval = 200 * time.Millisecond
	}
	if c.ControlWindow <= 0 {
		c.ControlWindow = 5 * time.Second
	}
	if c.ReadHeaderTimeout == 0 {
		c.ReadHeaderTimeout = 5 * time.Second
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 60 * time.Second
	}
	if c.MaxHeaderBytes <= 0 {
		c.MaxHeaderBytes = 64 << 10
	}
	return c
}

// DefaultConfig returns the default sizing.
func DefaultConfig() Config { return Config{}.withDefaults() }

// maxResumeWireSize is the largest wire-encoded activation any valid
// resume payload for this model can carry (the lossless encoding of the
// widest resume point on any graph node — trunk split stages and branch
// entry handoffs alike), used to bound request bodies before decoding.
func maxResumeWireSize(g *core.Graph) int {
	size := 0
	for ni, node := range g.Nodes {
		model := node.Model
		for split := 0; split <= len(model.Stages); split++ {
			if ni != 0 && split > 0 {
				// A branch payload always hands off at its entry (stage 0);
				// deeper branch splits never appear on the wire.
				break
			}
			shape := model.Arch.Net.ShapeAt(model.SplitPos(split))
			n := 1
			for _, d := range shape {
				n *= d
			}
			if s := wire.EncodedSizeAt(ni, len(shape), n, wire.EncodingFloat64); s > size {
				size = s
			}
		}
	}
	// Trace-carrying payloads (wire v3) grow the header by a fixed amount;
	// the body bound must admit them.
	return size + wire.TraceOverhead
}

// Server serves classification over a model registry. Create with New (one
// in-memory model) or NewWithRegistry (multi-model), expose via Handler
// (or ListenAndServe) and stop with Close.
type Server struct {
	cfg     Config
	reg     *Registry
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in the tracing middleware
	slow    *obs.SlowLog
	started time.Time
}

// New builds a single-model server: the model is registered in-memory
// under DefaultModelName in a fresh registry. Equivalent to the
// pre-registry constructor — /v1 responses are bit-identical.
func New(model *core.CDLN, cfg Config) (*Server, error) {
	reg := NewRegistry(cfg)
	if _, err := reg.Register(DefaultModelName, model); err != nil {
		return nil, err
	}
	return NewWithRegistry(reg)
}

// NewWithRegistry serves an existing registry (which must hold at least
// one model) and takes ownership of it: Server.Close closes the registry.
func NewWithRegistry(reg *Registry) (*Server, error) {
	if len(reg.Models()) == 0 {
		return nil, fmt.Errorf("serve: registry has no models")
	}
	s := &Server{cfg: reg.Config(), reg: reg, started: time.Now()}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/classify", s.handleClassify)
	s.mux.HandleFunc("/v1/resume", s.handleResume)
	s.mux.HandleFunc("GET /v2/models", s.handleModelsList)
	s.mux.HandleFunc("GET /v2/models/{model}", s.handleModelGet)
	s.mux.HandleFunc("PUT /v2/models/{model}", s.handleModelPut)
	s.mux.HandleFunc("PUT /v2/models/{model}/branches/{branch}", s.handleBranchPut)
	s.mux.HandleFunc("POST /v2/models/{model}/classify", s.handleV2Classify)
	s.mux.HandleFunc("POST /v2/models/{model}/resume", s.handleV2Resume)
	s.mux.HandleFunc("GET /v2/models/{model}/slo", s.handleSLOGet)
	s.mux.HandleFunc("PUT /v2/models/{model}/slo", s.handleSLOPut)
	s.mux.HandleFunc("DELETE /v2/models/{model}/slo", s.handleSLODelete)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("/statsz", s.handleStatsz)
	s.mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	s.mux.HandleFunc("GET /alertz", s.handleAlertz)
	s.mux.Handle("GET /debug/flightz", s.reg.flights.Handler())
	s.slow = obs.NewSlowLog()
	s.handler = obs.Middleware(s.mux, s.slow)
	return s, nil
}

// Registry returns the server's model registry (for programmatic
// registration and hot-swap alongside the HTTP admin surface).
func (s *Server) Registry() *Registry { return s.reg }

// Handler returns the HTTP handler (also what ListenAndServe mounts): the
// route mux wrapped in the tracing middleware, which assigns or adopts the
// X-Trace-Id of every request — error and shed responses included — and
// rate-limit-logs slow requests with their span timelines.
func (s *Server) Handler() http.Handler { return s.handler }

// Stats snapshots the default model's live counters (the /statsz payload;
// per-model views are on /v2/models), including the SLO controller state
// when one is attached.
func (s *Server) Stats() Stats {
	m, err := s.reg.Get("")
	if err != nil {
		return Stats{}
	}
	st := m.Stats()
	st.Control = s.reg.controlStatus(m.Name())
	return st
}

// Close drains every model's queue and stops the workers. Call after the
// HTTP layer has stopped accepting requests (http.Server.Shutdown);
// classify requests racing Close receive 503.
func (s *Server) Close() { s.reg.Close() }

// FlightzHandler returns the /debug/flightz query handler — also mounted
// on the admin listener (obs.AdminRoute) so the tail evidence stays
// reachable when the data port is saturated.
func (s *Server) FlightzHandler() http.Handler { return s.reg.flights.Handler() }

// AlertzHandler returns the /alertz burn-rate view as a standalone
// handler for the admin listener.
func (s *Server) AlertzHandler() http.Handler { return http.HandlerFunc(s.handleAlertz) }

// handleAlertz renders the per-model burn-rate monitors (entries with an
// attached SLO) and the tier's rolled-up page signal.
func (s *Server) handleAlertz(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, s.reg.AlertReport())
}

// HTTPHardening bundles the slow-client listener limits shared by the
// cloud server and the edge front (internal/edgecloud): a server built to
// shed load deliberately must not let a slowloris client pin its
// connections for free.
type HTTPHardening struct {
	// ReadHeaderTimeout bounds how long a client may take to send its
	// request headers. Default 5s.
	ReadHeaderTimeout time.Duration
	// IdleTimeout closes keep-alive connections idle this long. Default
	// 60s.
	IdleTimeout time.Duration
	// MaxHeaderBytes caps request header size. Default 64 KiB.
	MaxHeaderBytes int
}

// WithDefaults fills unset fields.
func (h HTTPHardening) WithDefaults() HTTPHardening {
	if h.ReadHeaderTimeout == 0 {
		h.ReadHeaderTimeout = 5 * time.Second
	}
	if h.IdleTimeout == 0 {
		h.IdleTimeout = 60 * time.Second
	}
	if h.MaxHeaderBytes <= 0 {
		h.MaxHeaderBytes = 64 << 10
	}
	return h
}

// ListenHardened runs handler on addr with the hardening limits until stop
// is closed, then shuts down gracefully (drain HTTP, then run afterStop if
// non-nil — the hook both tiers use to drain their worker pools). Body
// reads are the handlers' responsibility (MaxBytesReader).
func ListenHardened(addr string, handler http.Handler, stop <-chan struct{}, hard HTTPHardening, afterStop func()) error {
	hard = hard.WithDefaults()
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: hard.ReadHeaderTimeout,
		IdleTimeout:       hard.IdleTimeout,
		MaxHeaderBytes:    hard.MaxHeaderBytes,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	stopped := func() {
		if afterStop != nil {
			afterStop()
		}
	}
	select {
	case err := <-errCh:
		stopped()
		return err
	case <-stop:
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := httpSrv.Shutdown(ctx)
	stopped()
	if err != nil {
		return err
	}
	if lerr := <-errCh; !errors.Is(lerr, http.ErrServerClosed) {
		return lerr
	}
	return nil
}

// ListenAndServe runs the server on addr until stop is closed, then shuts
// down gracefully: stop accepting, wait for in-flight requests, drain the
// pools. The listener is hardened against slow clients via the Config's
// ReadHeaderTimeout/IdleTimeout/MaxHeaderBytes (body reads are already
// bounded per handler with MaxBytesReader).
func (s *Server) ListenAndServe(addr string, stop <-chan struct{}) error {
	hard := HTTPHardening{
		ReadHeaderTimeout: s.cfg.ReadHeaderTimeout,
		IdleTimeout:       s.cfg.IdleTimeout,
		MaxHeaderBytes:    s.cfg.MaxHeaderBytes,
	}
	return ListenHardened(addr, s.handler, stop, hard, s.Close)
}

// ClassifyRequest is the /v1/classify payload: exactly one of Image (a
// single flattened image) or Images (a batch) must be set. Pixel counts
// must match the model's input shape. Delta, when non-nil, overrides the
// model's confidence threshold δ for every image in the request — the
// paper's §III.B runtime knob. It must be a finite number in [0,1]; NaN
// and ±Inf are rejected with 400 rather than passed into the exit rule
// (NaN compares false against every score, which would silently disable
// early exit). δ=1 disables early exit entirely (maximum accuracy of the
// baseline, baseline-like cost); moderate δ trades depth for cost. Note
// the default threshold rule (exit iff exactly one score clears δ) is not
// monotone at the low end: δ near 0 makes every class "confident" and so
// forces full depth too.
type ClassifyRequest struct {
	Image  []float64   `json:"image,omitempty"`
	Images [][]float64 `json:"images,omitempty"`
	Delta  *float64    `json:"delta,omitempty"`
}

// ClassifyResult is one image's outcome.
type ClassifyResult struct {
	// Label is the predicted class.
	Label int `json:"label"`
	// Exit names the exit point taken ("O1".."On", "FC", or a
	// branch-qualified "branch/O1" on routed models); ExitIndex is its
	// global index in the routing graph's exit numbering (the cascade
	// index for linear models).
	Exit      string `json:"exit"`
	ExitIndex int    `json:"exit_index"`
	// Node is the routing-graph node that resolved the input (0 = trunk,
	// omitted for linear models).
	Node int `json:"node,omitempty"`
	// Confidence is the winning score at the exit point.
	Confidence float64 `json:"confidence"`
	// Ops and EnergyPJ are the dynamic cost of this input; NormalizedOps is
	// Ops over one full baseline pass (1.0 = no early-exit benefit).
	Ops           float64 `json:"ops"`
	NormalizedOps float64 `json:"normalized_ops"`
	EnergyPJ      float64 `json:"energy_pj"`
}

// ClassifyResponse is the /v1/classify response; Results is in request
// order. TraceID and Spans appear only when the client sent an X-Trace-Id
// header (opting into tracing detail) — requests without one get the exact
// pre-tracing body, which golden_test.go pins byte for byte.
type ClassifyResponse struct {
	Results []ClassifyResult `json:"results"`
	Count   int              `json:"count"`
	TraceID string           `json:"trace_id,omitempty"`
	Spans   []obs.Span       `json:"spans,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// ParseDeltaOverride validates an optional per-request δ override (shared
// by this server and the edge front in internal/edgecloud). nil keeps the
// model's trained thresholds (reported as −1, the Session sentinel);
// otherwise the value must be a finite number in [0,1] — NaN in particular
// would flow into every score comparison and silently disable early exit.
func ParseDeltaOverride(d *float64) (float64, error) {
	if d == nil {
		return -1, nil
	}
	v := *d
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
		return 0, fmt.Errorf("delta %v must be a finite value in [0,1]", v)
	}
	return v, nil
}

// requestError is a handler-level rejection with its HTTP status.
type requestError struct {
	status int
	msg    string
}

func badRequest(format string, args ...any) *requestError {
	return &requestError{http.StatusBadRequest, fmt.Sprintf(format, args...)}
}

// jobBatch is one attempt's prepared work: jobs referencing records in
// request order plus the WaitGroup the pool releases them through.
type jobBatch struct {
	jobs    []*job
	records []core.ExitRecord
	wg      *sync.WaitGroup
}

// newImageBatch fans a validated image set out into jobs under one shared
// context and policy.
func newImageBatch(ctx context.Context, m *Model, images [][]float64, pol *core.ExitPolicy) *jobBatch {
	b := &jobBatch{
		jobs:    make([]*job, len(images)),
		records: make([]core.ExitRecord, len(images)),
		wg:      &sync.WaitGroup{},
	}
	tr := obs.FromContext(ctx)
	for i, img := range images {
		b.jobs[i] = &job{
			ctx: ctx,
			x:   tensor.FromSlice(img, m.cdln.Arch.Net.InShape...),
			pol: pol,
			rec: &b.records[i],
			wg:  b.wg,
			tr:  tr,
		}
	}
	return b
}

// maxDispatchAttempts bounds the hot-swap retry loop: each retry means a
// swap landed between model resolution and submission, so more than a few
// in one request means the registry is churning faster than it can serve —
// shed the request instead of spinning.
const maxDispatchAttempts = 4

// shedRetryAfterSeconds is the Retry-After hint on every 503 shed: the
// bounded queue drains in well under a second at any serviceable load, so
// an immediate-but-not-instant retry is the right client behaviour for
// all three shed causes.
const shedRetryAfterSeconds = "1"

// WriteShed writes a 503 with the Retry-After header — the contract that
// lets load generators (and the SLO controller's telemetry) distinguish
// deliberate load shedding from hard failure. Shared with the edge front,
// whose worker-exhaustion sheds follow the same protocol.
func WriteShed(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", shedRetryAfterSeconds)
	WriteError(w, http.StatusServiceUnavailable, msg)
}

// dispatch resolves name, builds jobs via build, submits them and waits.
// When a hot swap closes the resolved model's pool between resolution and
// submission, it transparently retries against the successor version
// (re-running build, so inputs are re-validated against the new model).
// On success it returns the model that served the request and the filled
// records; on failure it has already written the error response.
//
// build runs against a specific model version and returns the prepared
// batch or a request-level rejection (counted on that model's invalid
// counter).
func (s *Server) dispatch(w http.ResponseWriter, ctx context.Context, name string, build func(m *Model) (*jobBatch, *requestError)) (*Model, []core.ExitRecord, bool) {
	var m *Model
	lastJobs := 1
	for attempt := 0; attempt < maxDispatchAttempts; attempt++ {
		var err error
		m, err = s.reg.Get(name)
		if err != nil {
			WriteError(w, http.StatusNotFound,
				fmt.Sprintf("unknown model %q (have: %s)", name, s.reg.names()))
			return nil, nil, false
		}
		b, rerr := build(m)
		if rerr != nil {
			m.metrics.observeInvalid()
			WriteError(w, rerr.status, rerr.msg)
			return nil, nil, false
		}
		lastJobs = len(b.jobs)
		if attempt == 0 {
			// Offered load (admitted or not) feeds the telemetry window
			// once per request, whatever the dispatch outcome.
			m.window.Arrivals(len(b.jobs))
		}
		switch err := m.pool.submit(ctx, b.jobs); {
		case err == nil:
			b.wg.Wait()
			if cerr := ctx.Err(); cerr != nil {
				// The request died while queued or mid-batch; whatever
				// subset was classified, the client is gone or out of time
				// — never ship a partial response.
				m.metrics.observeCancelled()
				status := http.StatusServiceUnavailable
				if errors.Is(cerr, context.DeadlineExceeded) {
					status = http.StatusGatewayTimeout
				}
				WriteError(w, status, fmt.Sprintf("request abandoned: %v", cerr))
				return nil, nil, false
			}
			m.metrics.observeRequest()
			return m, b.records, true
		case errors.Is(err, ErrOverloaded):
			m.metrics.observeRejected(shedQueueFull)
			m.window.Sheds(len(b.jobs))
			m.flightShed(ctx, "queue_full", len(b.jobs))
			WriteShed(w, err.Error())
			return nil, nil, false
		case errors.Is(err, ErrClosed):
			// Either a hot swap retired this version (a successor exists:
			// retry against it) or the server is shutting down (shed).
			if cur, gerr := s.reg.Get(name); gerr == nil && cur != m {
				continue
			}
			m.metrics.observeRejected(shedClosed)
			m.window.Sheds(len(b.jobs))
			m.flightShed(ctx, "closed", len(b.jobs))
			WriteShed(w, err.Error())
			return nil, nil, false
		default:
			// Context error at admission: nothing was enqueued.
			m.metrics.observeCancelled()
			m.flightShed(ctx, flightCause(err), len(b.jobs))
			if errors.Is(err, context.DeadlineExceeded) {
				WriteError(w, http.StatusGatewayTimeout, fmt.Sprintf("request abandoned: %v", err))
			} else {
				WriteShed(w, fmt.Sprintf("request abandoned: %v", err))
			}
			return nil, nil, false
		}
	}
	m.metrics.observeRejected(shedChurn)
	m.window.Sheds(lastJobs)
	m.flightShed(ctx, "churn", lastJobs)
	WriteShed(w, "model reloading too fast; retry")
	return nil, nil, false
}

// v1Results renders records into the /v1 (and v2 cost-detail) result rows.
func v1Results(m *Model, records []core.ExitRecord) []ClassifyResult {
	out := make([]ClassifyResult, len(records))
	baseOps := m.metrics.baselineOps
	for i, rec := range records {
		res := ClassifyResult{
			Label:      rec.Label,
			Exit:       rec.StageName,
			ExitIndex:  rec.StageIndex,
			Node:       rec.Node,
			Confidence: rec.Confidence,
			Ops:        rec.Ops,
			EnergyPJ:   m.metrics.acc.ExitEnergy(rec.StageIndex),
		}
		if baseOps > 0 {
			res.NormalizedOps = rec.Ops / baseOps
		}
		out[i] = res
	}
	return out
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	m0, err := s.reg.Get("")
	if err != nil {
		WriteError(w, http.StatusServiceUnavailable, "no models registered")
		return
	}
	if r.Method != http.MethodPost {
		m0.metrics.observeInvalid()
		WriteJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	// Bound the body before decoding: the per-request image cap is useless
	// if a client can make the decoder buffer gigabytes first. ~32 bytes
	// covers any float64 JSON rendering plus separators.
	maxBody := int64(s.cfg.MaxRequestImages)*int64(m0.inWidth)*32 + 4096
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	var req ClassifyRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		m0.metrics.observeInvalid()
		WriteJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf("bad request body: %v", err)})
		return
	}
	build := func(m *Model) (*jobBatch, *requestError) {
		images, err := req.NormalizeImages(m.inWidth, s.cfg.MaxRequestImages, m.cdln.Arch.Net.InShape)
		if err != nil {
			return nil, badRequest("%s", err.Error())
		}
		delta, err := ParseDeltaOverride(req.Delta)
		if err != nil {
			return nil, badRequest("%s", err.Error())
		}
		if req.Delta == nil {
			// No explicit δ: inherit the entry's current serve policy —
			// identity unless an SLO controller is actuating. An explicit
			// δ always wins (the controller never overrides a caller).
			return newImageBatch(r.Context(), m, images, m.servePolicy()), nil
		}
		pol := core.ExitPolicy{Delta: delta, MaxExit: -1}
		return newImageBatch(r.Context(), m, images, &pol), nil
	}
	m, records, ok := s.dispatch(w, r.Context(), "", build)
	if !ok {
		return
	}
	resp := ClassifyResponse{Results: v1Results(m, records), Count: len(records)}
	resp.TraceID, resp.Spans = finishTrace(w, r)
	WriteJSON(w, http.StatusOK, resp)
}

// finishTrace re-asserts the response trace header — the ID may have been
// adopted from a resumed wire payload after the middleware first set it —
// and returns the body detail (ID + span timeline) for clients that opted
// in by sending X-Trace-Id themselves. Requests without the header keep
// their exact pre-tracing bodies.
func finishTrace(w http.ResponseWriter, r *http.Request) (string, []obs.Span) {
	tr := obs.FromContext(r.Context())
	if tr == nil {
		return "", nil
	}
	w.Header().Set(obs.TraceHeader, tr.ID())
	if !tr.Propagated() {
		return "", nil
	}
	return tr.ID(), tr.Spans()
}

// ResumeRequest is the /v1/resume payload: exactly one of Payload (a
// single activation) or Payloads (a batch) must be set, each a base64
// (standard encoding) wire-format activation produced by an edge node's
// ClassifyPrefix (see internal/edgecloud/wire). The activation's split
// stage, layer position and shape must match this server's model. Delta
// follows the same rules as ClassifyRequest.Delta and must be the δ the
// edge used for its prefix if the pair is to behave like one monolithic
// cascade.
type ResumeRequest struct {
	Payload  string   `json:"payload,omitempty"`
	Payloads []string `json:"payloads,omitempty"`
	Delta    *float64 `json:"delta,omitempty"`
}

// normalizePayloads validates the single/batch forms against the
// per-request cap.
func (req *ResumeRequest) normalizePayloads(maxPayloads int) ([]string, *requestError) {
	var payloads []string
	switch {
	case req.Payload != "" && req.Payloads != nil:
		return nil, badRequest(`set "payload" or "payloads", not both`)
	case req.Payload != "":
		payloads = []string{req.Payload}
	case len(req.Payloads) > 0:
		payloads = req.Payloads
	default:
		return nil, badRequest(`missing "payload" or "payloads"`)
	}
	if len(payloads) > maxPayloads {
		return nil, badRequest("%d payloads exceed the per-request cap %d", len(payloads), maxPayloads)
	}
	return payloads, nil
}

// resumeActivation decodes and validates one base64 wire payload against
// the model's routing graph, returning the ready-to-submit tensor and the
// decoded activation (resume point, and the trace ID a v3 payload carried
// across the tier boundary).
func (m *Model) resumeActivation(p string) (*tensor.T, *wire.Activation, error) {
	raw, err := base64.StdEncoding.DecodeString(p)
	if err != nil {
		return nil, nil, fmt.Errorf("bad base64 payload: %v", err)
	}
	act, err := wire.Decode(raw)
	if err != nil {
		return nil, nil, err
	}
	if err := m.graph.ValidateResume(act.Node, act.FromStage, act.Pos, act.Shape); err != nil {
		return nil, nil, err
	}
	return tensor.FromSlice(act.Data, act.Shape...), &act, nil
}

// newResumeBatch decodes and validates payloads against m and fans them
// out into jobs under one shared context and policy. A policy depth cap
// shallower than a payload's resume depth (entry depth of its node plus
// its resume stage) is unsatisfiable — those stages already ran on the
// edge tier: an explicit policy is rejected, while an inherited one (the
// SLO controller's current rung — the client never asked for a cap) is
// relaxed to the deepest resume depth in the request, so controller
// actuation can never 400 offloaded traffic.
func newResumeBatch(ctx context.Context, m *Model, payloads []string, pol *core.ExitPolicy, inherited bool) (*jobBatch, *requestError) {
	b := &jobBatch{
		jobs:    make([]*job, len(payloads)),
		records: make([]core.ExitRecord, len(payloads)),
		wg:      &sync.WaitGroup{},
	}
	tr := obs.FromContext(ctx)
	maxFrom := 0
	for i, p := range payloads {
		x, act, err := m.resumeActivation(p)
		if err != nil {
			return nil, badRequest("payload %d: %v", i, err)
		}
		if act.TraceID != "" {
			// Continue the trace the edge tier started: adopt its ID unless
			// the HTTP client already pinned one (AdoptID is a no-op then,
			// and on a nil trace).
			tr.AdoptID(act.TraceID)
		}
		if depth := m.graph.EntryDepth(act.Node) + act.FromStage; depth > maxFrom {
			maxFrom = depth
		}
		b.jobs[i] = &job{ctx: ctx, x: x, node: act.Node, fromStage: act.FromStage, rec: &b.records[i], wg: b.wg, tr: tr}
	}
	maxExit := m.graph.MaxDepth()
	if pol.MaxExit >= 0 {
		maxExit = pol.MaxExit
	}
	if maxFrom > maxExit {
		if !inherited {
			return nil, badRequest("resume depth %d beyond the policy's max exit %d", maxFrom, maxExit)
		}
		relaxed := *pol
		relaxed.MaxExit = maxFrom
		pol = &relaxed
	}
	for _, j := range b.jobs {
		j.pol = pol
	}
	return b, nil
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	m0, err := s.reg.Get("")
	if err != nil {
		WriteError(w, http.StatusServiceUnavailable, "no models registered")
		return
	}
	if r.Method != http.MethodPost {
		m0.metrics.observeInvalid()
		WriteJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	// Bound the body by the largest activation the model can legitimately
	// receive (lossless encoding, base64-inflated) times the batch cap.
	maxBody := int64(s.cfg.MaxRequestImages)*int64(base64.StdEncoding.EncodedLen(m0.maxResumeWire)+4) + 4096
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	var req ResumeRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		m0.metrics.observeInvalid()
		WriteJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf("bad request body: %v", err)})
		return
	}
	build := func(m *Model) (*jobBatch, *requestError) {
		payloads, rerr := req.normalizePayloads(s.cfg.MaxRequestImages)
		if rerr != nil {
			return nil, rerr
		}
		delta, err := ParseDeltaOverride(req.Delta)
		if err != nil {
			return nil, badRequest("%s", err.Error())
		}
		if req.Delta == nil {
			return newResumeBatch(r.Context(), m, payloads, m.servePolicy(), true)
		}
		pol := core.ExitPolicy{Delta: delta, MaxExit: -1}
		return newResumeBatch(r.Context(), m, payloads, &pol, false)
	}
	m, records, ok := s.dispatch(w, r.Context(), "", build)
	if !ok {
		return
	}
	resp := ClassifyResponse{Results: v1Results(m, records), Count: len(records)}
	resp.TraceID, resp.Spans = finishTrace(w, r)
	WriteJSON(w, http.StatusOK, resp)
	m.metrics.observeResume()
}

// NormalizeImages validates the request's single/batch forms against the
// model's input width and the per-request cap, returning the pixel slices.
// Shared by the cloud server and the edge front, so both tiers accept and
// reject exactly the same requests. Pixels must be finite: standard JSON
// cannot carry NaN/±Inf, but the type is also used by in-process callers,
// and a NaN pixel would flow through every stage score and silently
// disable the exit rule (NaN compares false against δ) — reject it here,
// like ParseDeltaOverride does for δ.
func (req *ClassifyRequest) NormalizeImages(inWidth, maxImages int, inShape []int) ([][]float64, error) {
	var images [][]float64
	switch {
	case req.Image != nil && req.Images != nil:
		return nil, errors.New(`set "image" or "images", not both`)
	case req.Image != nil:
		images = [][]float64{req.Image}
	case len(req.Images) > 0:
		images = req.Images
	default:
		return nil, errors.New(`missing "image" or "images"`)
	}
	if len(images) > maxImages {
		return nil, fmt.Errorf("%d images exceed the per-request cap %d", len(images), maxImages)
	}
	for i, img := range images {
		if len(img) != inWidth {
			return nil, fmt.Errorf("image %d has %d pixels, model wants %d (shape %v)",
				i, len(img), inWidth, inShape)
		}
		for p, v := range img {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("image %d pixel %d is %v; pixels must be finite", i, p, v)
			}
		}
	}
	return images, nil
}

// healthResponse is the /healthz payload.
type healthResponse struct {
	Status        string  `json:"status"`
	Model         string  `json:"model,omitempty"`
	Arch          string  `json:"arch"`
	Stages        int     `json:"stages"`
	Delta         float64 `json:"delta"`
	Workers       int     `json:"workers"`
	Models        int     `json:"models"`
	Default       string  `json:"default_model"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthResponse{
		Status:        "ok",
		Model:         s.cfg.ModelName,
		Workers:       s.cfg.Workers,
		Models:        len(s.reg.Models()),
		Default:       s.reg.DefaultName(),
		UptimeSeconds: time.Since(s.started).Seconds(),
	}
	if m, err := s.reg.Get(""); err == nil {
		// The identity fields must all describe the same entry — the
		// current default — or a monitor would attribute one model's δ and
		// stage count to another's file. cfg.ModelName only labels
		// in-memory defaults that carry no path of their own.
		switch {
		case m.path != "":
			resp.Model = m.path
		case resp.Model == "":
			resp.Model = m.name
		}
		resp.Arch = m.cdln.Arch.Name
		resp.Stages = len(m.cdln.Stages)
		resp.Delta = m.cdln.Delta
	}
	WriteJSON(w, http.StatusOK, resp)
}

// readyResponse is the /readyz payload.
type readyResponse struct {
	Ready   bool   `json:"ready"`
	Default string `json:"default_model,omitempty"`
}

// handleReadyz is the readiness probe: 200 only while the registry can
// serve a default-model request (at least one warmed entry, not mid-Close).
// /healthz stays pure liveness — it answers 200 whenever the process can
// answer at all, so orchestrators restart on liveness and un-route on
// readiness.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.reg.Ready() {
		WriteJSON(w, http.StatusOK, readyResponse{Ready: true, Default: s.reg.DefaultName()})
		return
	}
	WriteJSON(w, http.StatusServiceUnavailable, readyResponse{Ready: false})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("summary") == "1" {
		WriteJSON(w, http.StatusOK, s.LoadSummary())
		return
	}
	WriteJSON(w, http.StatusOK, s.Stats())
}

// LoadSummary assembles the compact load snapshot (/statsz?summary=1):
// queue depth sums across entries, occupancy and p95 report the worst
// entry — a fleet router steering by shed risk wants the hottest queue,
// not the average.
func (s *Server) LoadSummary() LoadSummary {
	sum := LoadSummary{Ready: s.reg.Ready()}
	queueCap := s.reg.Config().QueueDepth
	for _, m := range s.reg.Models() {
		sum.Models++
		depth := m.pool.depth()
		sum.QueueDepth += depth
		if queueCap > 0 {
			if frac := float64(depth) / float64(queueCap); frac > sum.QueueFrac {
				sum.QueueFrac = frac
			}
		}
		m.metrics.mu.Lock()
		if p95 := m.metrics.totalLat.Quantile(0.95); p95 > sum.P95TotalMS {
			sum.P95TotalMS = p95
		}
		sum.Requests += m.metrics.requests
		sum.Rejected += m.metrics.rejected
		m.metrics.mu.Unlock()
	}
	return sum
}

// WriteJSON writes v as a JSON response with the given status — the one
// response writer shared by every endpoint on both tiers.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// WriteError writes the shared {"error": msg} body.
func WriteError(w http.ResponseWriter, status int, msg string) {
	WriteJSON(w, status, errorResponse{msg})
}
