// Package serve is the CDLN inference server: an HTTP JSON API over a pool
// of pre-cloned per-worker model replicas (core.Session), a bounded work
// queue with micro-batching, and live exit/OPS/energy statistics.
//
// The serving design is the paper's thesis operationalized: easy inputs
// exit the cascade early, so most requests cost a fraction of a full
// forward pass, and the per-request δ override exposes §III.B's runtime
// accuracy/efficiency knob to clients per call.
//
// Endpoints:
//
//	POST /v1/classify  one image or a batch, optional per-request δ
//	GET  /healthz      liveness and model identity
//	GET  /statsz       live exit distribution, normalized OPS, 45 nm energy
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"cdl/internal/core"
	"cdl/internal/energy"
	"cdl/internal/tensor"
)

// Config sizes the server.
type Config struct {
	// Workers is the replica-pool size: one core.Session (and one worker
	// goroutine) each. Default GOMAXPROCS.
	Workers int
	// QueueDepth bounds the work queue in images; requests beyond it are
	// rejected with 503. Default 1024.
	QueueDepth int
	// MaxBatch is the micro-batch size B: a worker drains up to B queued
	// images before touching shared state. Default 32.
	MaxBatch int
	// BatchWindow is the micro-batch wait T: after the first image a worker
	// waits at most this long for the batch to fill. Default 200µs.
	BatchWindow time.Duration
	// MaxRequestImages caps the images accepted in one request (they must
	// all fit the queue anyway). Default MaxBatch×8.
	MaxRequestImages int
	// ModelName is reported by /healthz (e.g. the model file path).
	ModelName string
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 200 * time.Microsecond
	}
	if c.MaxRequestImages <= 0 {
		c.MaxRequestImages = c.MaxBatch * 8
	}
	// Admission is all-or-nothing against the queue, so a request larger
	// than the queue could never be accepted.
	if c.MaxRequestImages > c.QueueDepth {
		c.MaxRequestImages = c.QueueDepth
	}
	return c
}

// DefaultConfig returns the default sizing.
func DefaultConfig() Config { return Config{}.withDefaults() }

// Server serves classification over a CDLN replica pool. Create with New,
// expose via Handler (or ListenAndServe) and stop with Close.
type Server struct {
	cfg     Config
	model   *core.CDLN
	inWidth int
	pool    *pool
	metrics *metrics
	mux     *http.ServeMux
}

// New validates the model, pre-clones cfg.Workers warm sessions and starts
// the worker pool.
func New(model *core.CDLN, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := model.Validate(); err != nil {
		return nil, err
	}
	acc, err := energy.NewEvaluator().NewAccumulator(model)
	if err != nil {
		return nil, err
	}
	sessions := make([]*core.Session, cfg.Workers)
	for i := range sessions {
		if sessions[i], err = core.NewSession(model); err != nil {
			return nil, err
		}
	}
	inWidth := 1
	for _, d := range model.Arch.Net.InShape {
		inWidth *= d
	}
	s := &Server{
		cfg:     cfg,
		model:   model,
		inWidth: inWidth,
		metrics: newMetrics(model, acc),
	}
	s.pool = newPool(sessions, cfg.QueueDepth, cfg.MaxBatch, cfg.BatchWindow, s.metrics.observeBatch)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/classify", s.handleClassify)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statsz", s.handleStatsz)
	return s, nil
}

// Handler returns the HTTP handler (also what ListenAndServe mounts).
func (s *Server) Handler() http.Handler { return s.mux }

// Stats snapshots the live counters.
func (s *Server) Stats() Stats { return s.metrics.snapshot(s.pool.depth(), s.cfg.Workers) }

// Close drains the queue and stops the workers. Call after the HTTP layer
// has stopped accepting requests (http.Server.Shutdown); classify requests
// racing Close receive 503.
func (s *Server) Close() { s.pool.close() }

// ListenAndServe runs the server on addr until stop is closed, then shuts
// down gracefully: stop accepting, wait for in-flight requests, drain the
// pool.
func (s *Server) ListenAndServe(addr string, stop <-chan struct{}) error {
	httpSrv := &http.Server{Addr: addr, Handler: s.mux}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errCh:
		s.Close()
		return err
	case <-stop:
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := httpSrv.Shutdown(ctx)
	s.Close()
	if err != nil {
		return err
	}
	if lerr := <-errCh; !errors.Is(lerr, http.ErrServerClosed) {
		return lerr
	}
	return nil
}

// ClassifyRequest is the /v1/classify payload: exactly one of Image (a
// single flattened image) or Images (a batch) must be set. Pixel counts
// must match the model's input shape. Delta, when non-nil, overrides the
// model's confidence threshold δ for every image in the request — the
// paper's §III.B runtime knob. δ=1 disables early exit entirely (maximum
// accuracy of the baseline, baseline-like cost); moderate δ trades depth
// for cost. Note the default threshold rule (exit iff exactly one score
// clears δ) is not monotone at the low end: δ near 0 makes every class
// "confident" and so forces full depth too.
type ClassifyRequest struct {
	Image  []float64   `json:"image,omitempty"`
	Images [][]float64 `json:"images,omitempty"`
	Delta  *float64    `json:"delta,omitempty"`
}

// ClassifyResult is one image's outcome.
type ClassifyResult struct {
	// Label is the predicted class.
	Label int `json:"label"`
	// Exit names the exit point taken ("O1".."On" or "FC"); ExitIndex is
	// its index in the cascade.
	Exit      string `json:"exit"`
	ExitIndex int    `json:"exit_index"`
	// Confidence is the winning score at the exit point.
	Confidence float64 `json:"confidence"`
	// Ops and EnergyPJ are the dynamic cost of this input; NormalizedOps is
	// Ops over one full baseline pass (1.0 = no early-exit benefit).
	Ops           float64 `json:"ops"`
	NormalizedOps float64 `json:"normalized_ops"`
	EnergyPJ      float64 `json:"energy_pj"`
}

// ClassifyResponse is the /v1/classify response; Results is in request
// order.
type ClassifyResponse struct {
	Results []ClassifyResult `json:"results"`
	Count   int              `json:"count"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.metrics.observeInvalid()
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	// Bound the body before decoding: the per-request image cap is useless
	// if a client can make the decoder buffer gigabytes first. ~32 bytes
	// covers any float64 JSON rendering plus separators.
	maxBody := int64(s.cfg.MaxRequestImages)*int64(s.inWidth)*32 + 4096
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	var req ClassifyRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.metrics.observeInvalid()
		writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf("bad request body: %v", err)})
		return
	}
	images, err := s.requestImages(&req)
	if err != nil {
		s.metrics.observeInvalid()
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	delta := -1.0
	if req.Delta != nil {
		delta = *req.Delta
		if delta < 0 || delta > 1 {
			s.metrics.observeInvalid()
			writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf("delta %v outside [0,1]", delta)})
			return
		}
	}

	records := make([]core.ExitRecord, len(images))
	jobs := make([]*job, len(images))
	var wg sync.WaitGroup
	for i, img := range images {
		jobs[i] = &job{
			x:     tensor.FromSlice(img, s.model.Arch.Net.InShape...),
			delta: delta,
			rec:   &records[i],
			wg:    &wg,
		}
	}
	if err := s.pool.submit(jobs); err != nil {
		s.metrics.observeRejected()
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{err.Error()})
		return
	}
	wg.Wait()
	s.metrics.observeRequest()

	resp := ClassifyResponse{Results: make([]ClassifyResult, len(records)), Count: len(records)}
	baseOps := s.metrics.baselineOps
	for i, rec := range records {
		res := ClassifyResult{
			Label:      rec.Label,
			Exit:       rec.StageName,
			ExitIndex:  rec.StageIndex,
			Confidence: rec.Confidence,
			Ops:        rec.Ops,
			EnergyPJ:   s.metrics.acc.ExitEnergy(rec.StageIndex),
		}
		if baseOps > 0 {
			res.NormalizedOps = rec.Ops / baseOps
		}
		resp.Results[i] = res
	}
	writeJSON(w, http.StatusOK, resp)
}

// requestImages normalizes the single/batch request forms into validated
// pixel slices.
func (s *Server) requestImages(req *ClassifyRequest) ([][]float64, error) {
	var images [][]float64
	switch {
	case req.Image != nil && req.Images != nil:
		return nil, errors.New(`set "image" or "images", not both`)
	case req.Image != nil:
		images = [][]float64{req.Image}
	case len(req.Images) > 0:
		images = req.Images
	default:
		return nil, errors.New(`missing "image" or "images"`)
	}
	if len(images) > s.cfg.MaxRequestImages {
		return nil, fmt.Errorf("%d images exceed the per-request cap %d", len(images), s.cfg.MaxRequestImages)
	}
	for i, img := range images {
		if len(img) != s.inWidth {
			return nil, fmt.Errorf("image %d has %d pixels, model wants %d (shape %v)",
				i, len(img), s.inWidth, s.model.Arch.Net.InShape)
		}
	}
	return images, nil
}

// healthResponse is the /healthz payload.
type healthResponse struct {
	Status        string  `json:"status"`
	Model         string  `json:"model,omitempty"`
	Arch          string  `json:"arch"`
	Stages        int     `json:"stages"`
	Delta         float64 `json:"delta"`
	Workers       int     `json:"workers"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{
		Status:        "ok",
		Model:         s.cfg.ModelName,
		Arch:          s.model.Arch.Name,
		Stages:        len(s.model.Stages),
		Delta:         s.model.Delta,
		Workers:       s.cfg.Workers,
		UptimeSeconds: time.Since(s.metrics.started).Seconds(),
	})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
