package serve

// metricsz.go is the Prometheus-text exposition of the serving stack's
// live counters: GET /metricsz renders every registry entry's metrics —
// request/shed counters, the exit-depth distribution, per-branch ops and
// energy, the latency histograms and the SLO controller's rung — in text
// format 0.0.4, built from the same state /statsz reports. Per-model
// sections are snapshot-consistent: each model's counters are read under
// its metrics lock in one critical section, so a scrape racing a classify
// storm never shows a request whose images are missing.
//
// Cardinality policy: label values come only from the model's own shape —
// entry names, graph node names, exit names, shed causes, profiling phases
// — never from request content, so series count is bounded by the
// registry. Histograms are exported at 1/8 of the native resolution (~20
// log-spaced buckets from 1µs to 60s, ~2.6× growth) to keep the scrape
// small without losing the tail.

import (
	"net/http"
	"time"

	"cdl/internal/control"
	"cdl/internal/obs"
)

// histExportStep merges this many adjacent native histogram buckets per
// exported bucket (see control.Histogram.Export).
const histExportStep = 8

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	p := obs.NewProm()
	p.Gauge("cdl_build_info", "Build identity (constant 1; the identity lives in the labels).", obs.BuildInfoLabels("serve"), 1)
	p.Gauge("cdl_uptime_seconds", "Seconds since the server started.", nil, time.Since(s.started).Seconds())
	p.Gauge("cdl_tracing_enabled", "Whether request tracing is on (1) or off (0).", nil, boolGauge(obs.Enabled()))
	p.Gauge("cdl_flight_enabled", "Whether the flight recorder is on (1) or off (0).", nil, boolGauge(obs.FlightEnabled()))
	if obs.ProfilingEnabled() {
		for _, st := range obs.ProfSnapshot() {
			lbl := obs.Labels{{"phase", st.Name}}
			p.Counter("cdl_phase_time_ms_total", "Cumulative time in each compute phase (im2col, GEMM, classifier) while profiling is enabled.", lbl, st.TotalMS)
			p.Counter("cdl_phase_calls_total", "Invocations of each profiled compute phase.", lbl, float64(st.Calls))
		}
	}
	for _, m := range s.reg.Models() {
		// Controller state comes from the control mutex domain — fetch it
		// before entering the metrics critical section.
		ctrl := s.reg.controlStatus(m.name)
		m.metrics.promInto(p, m.name, m.version, m.pool.depth(), m.workers, ctrl)
		promAlert(p, m.name, m.alert.Load())
		promFlight(p, m.name, m.flight)
	}
	w.Header().Set("Content-Type", obs.ContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = p.WriteTo(w)
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// promAlert renders one model's burn-rate monitor (entries without an
// attached SLO export nothing — absence is the "unmonitored" signal).
func promAlert(p *obs.Prom, name string, sink *alertSink) {
	if sink == nil {
		return
	}
	st := sink.mon.Status()
	model := obs.Labels{{"model", name}}
	p.Gauge("cdl_alert_active", "Whether any burn-rate window is firing for this model (the page signal).", model, boolGauge(st.Active))
	p.Gauge("cdl_alert_fast_burn_rate", "Error-budget burn rate over the fast window (1.0 = exactly on budget).", model, st.Fast.BurnRate)
	p.Gauge("cdl_alert_slow_burn_rate", "Error-budget burn rate over the slow window.", model, st.Slow.BurnRate)
	p.Gauge("cdl_alert_error_budget", "Tolerated bad-request fraction.", model, st.ErrorBudget)
	p.Counter("cdl_alert_bad_total", "Requests that burned error budget (latency above target, or shed).", model, float64(st.TotalBad))
	p.Counter("cdl_alert_good_total", "Requests that met the latency target.", model, float64(st.TotalGood))
}

// promFlight renders one model's flight-recorder retention counters.
func promFlight(p *obs.Prom, name string, f *obs.FlightRecorder) {
	if f == nil {
		return
	}
	st := f.Stats()
	model := obs.Labels{{"model", name}}
	p.Counter("cdl_flight_seen_total", "Requests offered to the flight recorder.", model, float64(st.Seen))
	p.Counter("cdl_flight_anomalous_total", "Requests tail-retained with full span trees.", model, float64(st.Anomalous))
	p.Gauge("cdl_flight_buffered", "Records currently live in the flight ring.", model, float64(st.Buffered))
}

// promInto renders one model's counters into the exposition. Everything
// guarded by the metrics mutex is read in a single critical section; the
// controller status was snapshotted by the caller.
func (m *metrics) promInto(p *obs.Prom, name string, version, queueDepth, workers int, ctrl *ControlStatus) {
	model := obs.Labels{{"model", name}}
	cause := func(c string) obs.Labels { return obs.Labels{{"model", name}, {"cause", c}} }

	m.mu.Lock()
	defer m.mu.Unlock()

	p.Gauge("cdl_model_version", "Version of the entry currently serving this name (bumps on hot-swap).", model, float64(version))
	p.Counter("cdl_requests_total", "Admitted classify and resume requests.", model, float64(m.requests))
	p.Counter("cdl_resume_requests_total", "Admitted resume requests (edge-offloaded activations; included in cdl_requests_total).", model, float64(m.resumes))
	p.Counter("cdl_images_total", "Images classified.", model, float64(m.images))
	p.Counter("cdl_rejected_total", "Requests shed with 503 + Retry-After, by cause.", cause("queue_full"), float64(m.rejFull))
	p.Counter("cdl_rejected_total", "", cause("closed"), float64(m.rejClosed))
	p.Counter("cdl_rejected_total", "", cause("churn"), float64(m.rejChurn))
	p.Counter("cdl_invalid_requests_total", "Requests rejected with 4xx.", model, float64(m.invalid))
	p.Counter("cdl_cancelled_requests_total", "Requests whose context died before completion.", model, float64(m.cancelled))
	p.Gauge("cdl_queue_depth", "Jobs waiting in the bounded work queue right now.", model, float64(queueDepth))
	p.Gauge("cdl_workers", "Replica workers draining this model's queue.", model, float64(workers))

	// Exit-depth distribution with each exit's energy cost: together these
	// are the paper's conditional-depth story as time series.
	energies := m.acc.ExitEnergies()
	for e, en := range m.exitNames {
		lbl := obs.Labels{{"model", name}, {"exit", en}}
		p.Counter("cdl_exit_images_total", "Images resolved at each exit point (the exit-depth distribution).", lbl, float64(m.exitCounts[e]))
		p.Gauge("cdl_exit_energy_pj", "45 nm energy cost of resolving an image at this exit (pJ).", lbl, energies[e])
	}

	// Per-branch aggregation (trunk-only for linear cascades): images that
	// resolved on each routing-graph node and their cumulative whole-path
	// ops and energy, so rate() yields per-branch ops/s and pJ/s.
	branchImages := make([]int64, len(m.nodeNames))
	branchOps := make([]float64, len(m.nodeNames))
	branchPJ := make([]float64, len(m.nodeNames))
	for e, cnt := range m.exitCounts {
		ni := m.exitNode[e]
		branchImages[ni] += cnt
		branchOps[ni] += float64(cnt) * m.exitOps[e]
		branchPJ[ni] += float64(cnt) * energies[e]
	}
	for ni, bn := range m.nodeNames {
		lbl := obs.Labels{{"model", name}, {"branch", bn}}
		p.Counter("cdl_branch_images_total", "Images resolved on each routing-graph node.", lbl, float64(branchImages[ni]))
		p.Counter("cdl_branch_ops_total", "Cumulative dynamic operations of images resolved on each node (whole root-to-exit path).", lbl, branchOps[ni])
		p.Counter("cdl_branch_energy_pj_total", "Cumulative 45 nm energy (pJ) of images resolved on each node.", lbl, branchPJ[ni])
	}

	meanOps, meanPJ, normOps := 0.0, 0.0, 0.0
	if m.images > 0 {
		meanOps = m.totalOps / float64(m.images)
		meanPJ = m.acc.MeanEnergy()
		if m.baselineOps > 0 {
			normOps = meanOps / m.baselineOps
		}
	}
	p.Gauge("cdl_ops_per_image", "Mean dynamic operations per classified image.", model, meanOps)
	p.Gauge("cdl_normalized_ops", "Mean ops per image over one full baseline pass (1.0 = no early-exit benefit).", model, normOps)
	p.Gauge("cdl_energy_pj_per_image", "Mean 45 nm energy per classified image (pJ).", model, meanPJ)
	p.Gauge("cdl_baseline_ops", "Dynamic operations of one unconditioned baseline pass.", model, m.baselineOps)
	p.Gauge("cdl_baseline_energy_pj", "45 nm energy of one unconditioned baseline pass (pJ).", model, m.acc.BaselineEnergy())

	promHistogram(p, "cdl_queue_latency_ms", "Per-image queue wait (enqueue to micro-batch start), milliseconds.", model, m.queueLat)
	promHistogram(p, "cdl_service_latency_ms", "Per-image micro-batch service time, milliseconds.", model, m.serviceLat)
	promHistogram(p, "cdl_total_latency_ms", "Per-image end-to-end latency inside the pool, milliseconds.", model, m.totalLat)

	if ctrl != nil {
		p.Gauge("cdl_control_rung", "SLO controller's current actuation rung (0 = trained behaviour).", model, float64(ctrl.Rung))
		p.Gauge("cdl_control_max_rung", "Deepest actuation rung the controller may take.", model, float64(ctrl.MaxRung))
		p.Gauge("cdl_control_delta", "Effective confidence threshold under the controller.", model, ctrl.Delta)
		p.Gauge("cdl_control_max_exit", "Current depth cap (-1 = none).", model, float64(ctrl.MaxExit))
		p.Gauge("cdl_control_queue_frac", "Queue occupancy at the controller's last tick.", model, ctrl.QueueFrac)
		p.Counter("cdl_control_violations_total", "Controller ticks that observed an SLO violation.", model, float64(ctrl.Violations))
	}
}

// promHistogram exports one lifetime latency histogram. Callers hold the
// lock guarding its Observe calls.
func promHistogram(p *obs.Prom, name, help string, labels obs.Labels, h *control.Histogram) {
	bounds, counts, sum, total := h.Export(histExportStep)
	p.Histogram(name, help, labels, bounds, counts, sum, total)
}
