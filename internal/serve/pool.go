package serve

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"time"

	"cdl/internal/core"
	"cdl/internal/obs"
	"cdl/internal/tensor"
)

// ErrOverloaded is returned (and mapped to HTTP 503) when the bounded work
// queue is full: the server sheds load instead of queueing unboundedly.
var ErrOverloaded = errors.New("serve: work queue full")

// ErrClosed is returned when work arrives after Close (or, for a
// registry-owned pool, after a hot-swap retired this model version —
// handlers retry against the successor).
var ErrClosed = errors.New("serve: server closed")

// job is one classification unit: either a raw image (fromStage 0) or an
// edge-offloaded intermediate activation resuming the cascade at fromStage.
// A multi-image request fans out into one job per image sharing a request
// context, exit policy and WaitGroup; each job writes its record in place,
// so the handler reassembles results in request order for free.
type job struct {
	// ctx is the request context: a job whose context is already cancelled
	// or past deadline when a worker picks it up is dropped without
	// touching a replica (cancelled is set and the waiter released).
	ctx context.Context
	x   *tensor.T
	// node/fromStage locate the resume point on the model's routing graph:
	// (0, 0) = classify from the trunk's input layer, (0, s) = a trunk
	// split resume, (n, 0) = a branch-entry handoff (Session.ResumeAt
	// semantics).
	node      int
	fromStage int
	// pol is the request's validated exit policy, shared by every job the
	// request fanned out into. Never nil.
	pol *core.ExitPolicy
	rec *core.ExitRecord
	wg  *sync.WaitGroup
	// tr is the request's trace (nil when tracing is disabled): the worker
	// maps the session's stage events onto its spans, and onBatch adds the
	// queue-wait and batch-grouping spans.
	tr *obs.Trace
	// cancelled is set (before wg.Done) when the job was dropped for a dead
	// context; the handler discards the whole request and metrics skip it.
	cancelled bool
	// enqueued and started bound the job's queue wait: submit stamps
	// enqueued (one clock read per request), the worker stamps started
	// when its micro-batch begins. The per-batch done callback turns
	// them into the queue/service latency histograms and the telemetry
	// window the SLO controller reads.
	enqueued time.Time
	started  time.Time
}

// pool is the replica fan-out: a bounded job queue drained by one goroutine
// per pre-built core.Session. Workers micro-batch — after blocking on the
// first job they greedily collect up to maxBatch jobs or until the batch
// window elapses — so the per-batch costs downstream (one metrics lock per
// batch, not per image) amortize under load while a lone request still
// clears in roughly the batch window.
type pool struct {
	jobs     chan *job
	maxBatch int
	window   time.Duration

	mu     sync.Mutex // serializes submits
	closed bool       // guarded by mu
	wg     sync.WaitGroup
}

// newPool starts one worker per session.
func newPool(sessions []*core.Session, queueDepth, maxBatch int, window time.Duration, done func(batch []*job)) *pool {
	p := &pool{
		jobs:     make(chan *job, queueDepth),
		maxBatch: maxBatch,
		window:   window,
	}
	for _, sess := range sessions {
		p.wg.Add(1)
		go p.worker(sess, done)
	}
	return p
}

// submit enqueues jobs without blocking; on a full queue it rejects the
// whole request so the caller never waits behind a saturated pool.
// Admission is all-or-nothing: submits serialize on the mutex and check
// free capacity up front, so a rejected request enqueues nothing and costs
// the saturated server no worker time. The check cannot go stale mid-loop
// — workers only ever drain the queue, so free space only grows. A context
// already dead at admission is rejected outright with its own error, so a
// disconnected client never occupies queue space.
func (p *pool) submit(ctx context.Context, jobs []*job) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if len(jobs) > cap(p.jobs)-len(p.jobs) {
		return ErrOverloaded
	}
	now := time.Now()
	for _, j := range jobs {
		j.enqueued = now
		j.wg.Add(1)
		p.jobs <- j
	}
	return nil
}

// depth reports how many jobs are queued right now.
func (p *pool) depth() int { return len(p.jobs) }

// close stops accepting work, drains the queue and waits for the workers.
// Jobs already queued are still classified.
func (p *pool) close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// samePolicy reports whether two jobs' policies can share one batched
// cascade pass. Identity covers the common case (one request's fan-out);
// the value comparison additionally groups simple policies across requests
// — exactly the cross-request δ batching the pre-policy pool had. Policies
// with per-stage deltas only group by identity (slice comparison isn't
// worth the nanoseconds on the hot path).
func samePolicy(a, b *core.ExitPolicy) bool {
	if a == b {
		return true
	}
	return a.StageDeltas == nil && b.StageDeltas == nil &&
		a.Delta == b.Delta && a.MaxExit == b.MaxExit && a.Trace == b.Trace
}

// worker drains micro-batches with its private session, dispatching each
// batch through the batched GEMM fast path (Session.ResumeBatchPolicy)
// instead of a per-sample loop. Jobs whose request context died in the
// queue are dropped first — a cancelled client costs no replica time.
// Live jobs are grouped by (node, fromStage, policy) — a batched cascade
// pass needs one resume point and one policy — and a micro-batch usually
// is one group (multi-image requests fan out sharing a policy, resumes
// share a split), so the common case is a single batched pass over the
// whole micro-batch. ResumeBatchPolicyAt(xs, 0, 0, pol) is exactly a
// batched policy-aware classify, so one call covers fresh classifications,
// split-resume jobs and branch-entry handoffs alike; each job writes its
// record in place, so grouping never disturbs response order. done is
// called once per batch after every record is written and its waiters
// released.
func (p *pool) worker(sess *core.Session, done func(batch []*job)) {
	defer p.wg.Done()
	batch := make([]*job, 0, p.maxBatch)
	group := make([]*job, 0, p.maxBatch)
	xs := make([]*tensor.T, 0, p.maxBatch)
	claimed := make([]bool, 0, p.maxBatch)
	for {
		first, ok := <-p.jobs
		if !ok {
			return
		}
		batch = append(batch[:0], first)
		p.collect(&batch)
		started := time.Now()
		claimed = claimed[:0]
		remaining := 0
		for _, j := range batch {
			j.started = started
			if j.ctx != nil && j.ctx.Err() != nil {
				// Dead before compute: release the waiter, never classify.
				j.cancelled = true
				j.wg.Done()
				claimed = append(claimed, true)
				continue
			}
			if j.tr != nil {
				j.tr.Record("queue", j.enqueued, started, "")
			}
			claimed = append(claimed, false)
			remaining++
		}
		for remaining > 0 {
			group, xs = group[:0], xs[:0]
			var lead *job
			for i, j := range batch {
				if claimed[i] {
					continue
				}
				if lead == nil {
					lead = j
				}
				// The lead claims itself by identity, not by policy
				// equality: a NaN δ (unreachable through the HTTP handlers,
				// which validate first, but cheap to harden against)
				// compares unequal to itself and would otherwise leave the
				// group empty and spin this loop forever.
				if j == lead || (j.node == lead.node && j.fromStage == lead.fromStage && samePolicy(j.pol, lead.pol)) {
					claimed[i] = true
					group = append(group, j)
					xs = append(xs, j.x)
				}
			}
			traced := anyTraced(group)
			if traced {
				// Capture the slice header: collect/claim reuse the backing
				// arrays only after this call returns and the observer is
				// cleared, so events index into a stable group.
				grp := group
				sess.SetStageObserver(stageObserver(grp, sess.Graph()))
			}
			recs := sess.ResumeBatchPolicyAt(xs, lead.node, lead.fromStage, *lead.pol)
			if traced {
				sess.SetStageObserver(nil)
				// Record the grouping span before releasing any waiter so a
				// handler never serializes a trace that is still gaining
				// spans.
				end := time.Now()
				size := "size=" + strconv.Itoa(len(group))
				for _, j := range group {
					if j.tr != nil {
						j.tr.Record("batch", started, end, size)
					}
				}
			}
			for gi, rec := range recs {
				*group[gi].rec = rec
				group[gi].wg.Done()
			}
			remaining -= len(group)
		}
		if done != nil {
			done(batch)
		}
	}
}

// collect greedily tops the batch up to maxBatch, first without waiting,
// then waiting out the remainder of the batch window.
func (p *pool) collect(batch *[]*job) {
	for len(*batch) < p.maxBatch {
		select {
		case j, ok := <-p.jobs:
			if !ok {
				return
			}
			*batch = append(*batch, j)
			continue
		default:
		}
		break
	}
	if len(*batch) >= p.maxBatch || p.window <= 0 {
		return
	}
	timer := time.NewTimer(p.window)
	defer timer.Stop()
	for len(*batch) < p.maxBatch {
		select {
		case j, ok := <-p.jobs:
			if !ok {
				return
			}
			*batch = append(*batch, j)
		case <-timer.C:
			return
		}
	}
}
