package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"cdl/internal/core"
	"cdl/internal/nn"
	"cdl/internal/tensor"
	"cdl/internal/train"
)

// testCDLN trains a small two-tap cascade on a synthetic blob problem
// (mirrors internal/core's test fixture: 12×12 inputs, 3 classes, noise
// spread so some inputs exit early and some reach FC).
func testCDLN(t testing.TB, seed int64) (*core.CDLN, []train.Sample) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := nn.NewNetwork([]int{1, 12, 12},
		nn.NewConv2D("C1", 1, 2, 3),
		nn.NewSigmoid("C1.act"),
		nn.NewMaxPool2D("P1", 2),
		nn.NewConv2D("C2", 2, 3, 2),
		nn.NewSigmoid("C2.act"),
		nn.NewMaxPool2D("P2", 2),
		nn.NewFlatten("flat"),
		nn.NewDense("FC", 3*2*2, 3),
		nn.NewSigmoid("FC.act"),
	)
	nn.InitNetwork(net, rng)
	arch := &nn.Arch{
		Name: "serve-test", Net: net,
		Taps: []int{3, 6}, TapNames: []string{"P1", "P2"},
		NumClasses: 3,
	}
	data := blobData(180, seed+1)
	cfg := train.Defaults(3)
	cfg.Epochs = 12
	cfg.BatchSize = 10
	if _, err := train.SGD(arch.Net, data, cfg); err != nil {
		t.Fatal(err)
	}
	bcfg := core.DefaultBuildConfig()
	bcfg.ForceAllStages = true
	cdln, _, err := core.Build(arch, data, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	return cdln, data
}

// blobData builds the 3-class blob-position problem with a hard noise tail.
func blobData(n int, seed int64) []train.Sample {
	rng := rand.New(rand.NewSource(seed))
	centers := [][2]int{{3, 3}, {3, 8}, {8, 5}}
	out := make([]train.Sample, n)
	for i := range out {
		label := i % 3
		noise := 0.05
		if rng.Float64() < 0.3 {
			noise = 0.35
		}
		x := tensor.New(1, 12, 12)
		cy, cx := centers[label][0], centers[label][1]
		for y := 0; y < 12; y++ {
			for xx := 0; xx < 12; xx++ {
				d2 := float64((y-cy)*(y-cy) + (xx-cx)*(xx-cx))
				v := 1/(1+d2/3) + rng.NormFloat64()*noise
				if v < 0 {
					v = 0
				}
				if v > 1 {
					v = 1
				}
				x.Data[y*12+xx] = v
			}
		}
		out[i] = train.Sample{X: x, Label: label}
	}
	return out
}

// startServer builds a serve.Server over an httptest listener.
func startServer(t testing.TB, cdln *core.CDLN, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cdln, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postClassify(t testing.TB, url string, req ClassifyRequest) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestServerMatchesEvaluate is the end-to-end identity check: batched
// /v1/classify results must be bit-identical to core.Evaluate's records on
// the same samples.
func TestServerMatchesEvaluate(t *testing.T) {
	cdln, data := testCDLN(t, 21)
	res, err := core.Evaluate(cdln, data, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startServer(t, cdln, Config{Workers: 4})

	// Send in batches of 32 and compare per-sample.
	for lo := 0; lo < len(data); lo += 32 {
		hi := lo + 32
		if hi > len(data) {
			hi = len(data)
		}
		req := ClassifyRequest{Images: make([][]float64, 0, hi-lo)}
		for _, s := range data[lo:hi] {
			req.Images = append(req.Images, s.X.Flatten().Data)
		}
		status, body := postClassify(t, ts.URL, req)
		if status != http.StatusOK {
			t.Fatalf("HTTP %d: %s", status, body)
		}
		var out ClassifyResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Count != hi-lo {
			t.Fatalf("count %d, want %d", out.Count, hi-lo)
		}
		for i, got := range out.Results {
			want := res.Records[lo+i]
			if got.Label != want.Label || got.Exit != want.StageName ||
				got.ExitIndex != want.StageIndex ||
				got.Confidence != want.Confidence || got.Ops != want.Ops {
				t.Fatalf("sample %d: server %+v != evaluate %+v", lo+i, got, want)
			}
		}
	}
}

// TestServerStatsz checks the live counters after serving traffic.
func TestServerStatsz(t *testing.T) {
	cdln, data := testCDLN(t, 22)
	srv, ts := startServer(t, cdln, Config{Workers: 2})

	req := ClassifyRequest{}
	for _, s := range data[:50] {
		req.Images = append(req.Images, s.X.Flatten().Data)
	}
	if status, body := postClassify(t, ts.URL, req); status != http.StatusOK {
		t.Fatalf("HTTP %d: %s", status, body)
	}

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Images != 50 || st.Requests != 1 {
		t.Fatalf("stats %d images / %d requests, want 50/1", st.Images, st.Requests)
	}
	total := int64(0)
	for _, e := range st.Exits {
		total += e.Count
	}
	if total != 50 {
		t.Errorf("exit counts sum to %d, want 50", total)
	}
	if st.MeanOps <= 0 || st.MeanEnergyPJ <= 0 || st.BaselineEnergyPJ <= 0 {
		t.Errorf("cost counters not populated: %+v", st)
	}
	if st.NormalizedOps <= 0 || st.NormalizedOps > 1.5 {
		t.Errorf("normalized OPS %v implausible", st.NormalizedOps)
	}
	if got := srv.Stats(); got.Images != 50 {
		t.Errorf("Server.Stats images %d, want 50", got.Images)
	}

	// healthz reports the model identity.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" || h["arch"] != "serve-test" {
		t.Errorf("healthz %v", h)
	}
}

// TestServerDeltaOverride exercises the §III.B runtime knob over HTTP: δ=1
// forces every input to FC; δ=0 exits every input at the first stage
// (threshold rule fires iff exactly one score ≥ δ... δ=0 passes when one
// class clears zero, which sigmoids always do for all classes, so use the
// model behaviour instead: δ=1 vs trained must differ in exit mix).
func TestServerDeltaOverride(t *testing.T) {
	cdln, data := testCDLN(t, 23)
	_, ts := startServer(t, cdln, Config{Workers: 2})

	one := 1.0
	req := ClassifyRequest{Delta: &one}
	for _, s := range data[:30] {
		req.Images = append(req.Images, s.X.Flatten().Data)
	}
	status, body := postClassify(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("HTTP %d: %s", status, body)
	}
	var out ClassifyResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	for i, r := range out.Results {
		if r.Exit != "FC" {
			t.Fatalf("sample %d: δ=1 exited at %s", i, r.Exit)
		}
	}

	// Trained thresholds: expect at least one early exit on this fixture.
	req.Delta = nil
	status, body = postClassify(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("HTTP %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	early := 0
	for _, r := range out.Results {
		if r.Exit != "FC" {
			early++
		}
	}
	if early == 0 {
		t.Error("no early exits under trained thresholds; fixture degenerate")
	}
}

// TestServerConcurrent hammers the server from many goroutines and checks
// every response against the expected record (run under -race in CI).
func TestServerConcurrent(t *testing.T) {
	cdln, data := testCDLN(t, 24)
	res, err := core.Evaluate(cdln, data, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startServer(t, cdln, Config{Workers: 4, MaxBatch: 8, BatchWindow: 50 * time.Microsecond})

	const clients = 16
	const perClient = 25
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(cl)))
			for k := 0; k < perClient; k++ {
				i := rng.Intn(len(data))
				req := ClassifyRequest{Image: data[i].X.Flatten().Data}
				body, _ := json.Marshal(req)
				resp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(body))
				if err != nil {
					errCh <- err
					return
				}
				var out ClassifyResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					errCh <- err
					return
				}
				want := res.Records[i]
				got := out.Results[0]
				if got.Label != want.Label || got.Exit != want.StageName || got.Confidence != want.Confidence {
					errCh <- fmt.Errorf("client %d sample %d: %+v != %+v", cl, i, got, want)
					return
				}
			}
			errCh <- nil
		}(cl)
	}
	wg.Wait()
	for cl := 0; cl < clients; cl++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
}

// TestServerBadRequests covers the 4xx/405 paths.
func TestServerBadRequests(t *testing.T) {
	cdln, data := testCDLN(t, 25)
	srv, ts := startServer(t, cdln, Config{Workers: 1, MaxRequestImages: 4})

	good := data[0].X.Flatten().Data
	bad := 2.0
	cases := []struct {
		name string
		req  ClassifyRequest
	}{
		{"empty", ClassifyRequest{}},
		{"wrong width", ClassifyRequest{Image: []float64{1, 2, 3}}},
		{"both forms", ClassifyRequest{Image: good, Images: [][]float64{good}}},
		{"delta range", ClassifyRequest{Image: good, Delta: &bad}},
		{"too many images", ClassifyRequest{Images: [][]float64{good, good, good, good, good}}},
	}
	for _, tc := range cases {
		if status, body := postClassify(t, ts.URL, tc.req); status != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d (%s), want 400", tc.name, status, body)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/classify")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET classify: HTTP %d, want 405", resp.StatusCode)
	}

	// Oversized body: rejected by the byte limit while decoding, well
	// before the image-count check could see it.
	huge := bytes.Repeat([]byte("9"), 8<<20)
	oresp, err := http.Post(ts.URL+"/v1/classify", "application/json",
		bytes.NewReader(append([]byte(`{"image":[`), huge...)))
	if err == nil {
		oresp.Body.Close()
		if oresp.StatusCode == http.StatusOK {
			t.Error("8MB body accepted")
		}
	}

	// Malformed JSON.
	mresp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: HTTP %d, want 400", mresp.StatusCode)
	}

	if st := srv.Stats(); st.Invalid == 0 {
		t.Error("invalid-request counter not incremented")
	}
}

// TestPoolAllOrNothingAdmission checks that an oversized submit enqueues
// nothing: a rejected request must cost the saturated server no worker
// time. The pool has no workers, so the queue never drains underneath us.
func TestPoolAllOrNothingAdmission(t *testing.T) {
	p := newPool(nil, 4, 1, 0, nil)
	defer p.close()
	mkJobs := func(n int) []*job {
		out := make([]*job, n)
		var wg sync.WaitGroup
		for i := range out {
			out[i] = &job{rec: &core.ExitRecord{}, wg: &wg}
		}
		return out
	}
	if err := p.submit(context.Background(), mkJobs(3)); err != nil {
		t.Fatal(err)
	}
	if err := p.submit(context.Background(), mkJobs(2)); err != ErrOverloaded {
		t.Fatalf("overflow submit: %v, want ErrOverloaded", err)
	}
	if d := p.depth(); d != 3 {
		t.Fatalf("queue depth %d after rejected submit, want 3 (partial enqueue)", d)
	}
	if err := p.submit(context.Background(), mkJobs(1)); err != nil {
		t.Fatalf("exact-fit submit rejected: %v", err)
	}
}

// TestServerClosedRejects checks that classify after Close sheds load with
// 503 instead of panicking on the closed queue.
func TestServerClosedRejects(t *testing.T) {
	cdln, data := testCDLN(t, 26)
	srv, err := New(cdln, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Close()
	status, _ := postClassify(t, ts.URL, ClassifyRequest{Image: data[0].X.Flatten().Data})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("classify after Close: HTTP %d, want 503", status)
	}
	if st := srv.Stats(); st.Rejected != 1 {
		t.Errorf("rejected counter %d, want 1", st.Rejected)
	}
}

// BenchmarkServerClassify measures end-to-end single-image request
// throughput through the full HTTP + pool + session path.
func BenchmarkServerClassify(b *testing.B) {
	cdln, data := testCDLN(b, 27)
	_, ts := startServer(b, cdln, Config{Workers: 4})
	body, _ := json.Marshal(ClassifyRequest{Image: data[0].X.Flatten().Data})
	client := ts.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bytes.NewBuffer(nil).ReadFrom(resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("HTTP %d", resp.StatusCode)
		}
	}
}
