// control.go wires the SLO controller (internal/control) into the model
// registry: per-entry attachment (SetSLO/ClearSLO), the tick loop that
// closes the feedback path telemetry → decision → actuation, and the
// /v2/models/{name}/slo admin surface.
//
// Actuation is deliberately narrow: the controller only rewrites the
// *default* policy — the one a request inherits when it carries no
// explicit δ or policy of its own. A request that states its policy
// always wins, so the /v1 and /v2 golden behaviour is untouched and a
// client that needs the trained cascade can pin it per call. The
// controller survives hot-swaps (it is keyed by entry name, not model
// version) and rebinds to the successor version on its next tick,
// rebuilding the ladder if the new cascade's stage count differs.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"cdl/internal/control"
	"cdl/internal/core"
)

// identityPolicy is the shared inherit target when no controller is
// attached: the model's trained behaviour. Never mutated.
var identityPolicy = core.DefaultExitPolicy()

// alertSink pairs an entry's burn-rate monitor with the latency target
// its good/bad classification uses — published to the model as one
// atomic pointer so the batch path reads a consistent pair.
type alertSink struct {
	mon         *control.AlertMonitor
	p99TargetMS float64
}

// servePolicy is the policy a request without an explicit one inherits:
// the controller's current rung, or the identity policy. The returned
// pointer is shared across requests between controller ticks, so the
// pool's identity-based batch grouping keeps working across requests.
func (m *Model) servePolicy() *core.ExitPolicy {
	if p := m.controlled.Load(); p != nil {
		return p
	}
	return &identityPolicy
}

// entryControl is one registry entry's attached controller: the loop
// goroutine's state plus everything the admin surface reports.
type entryControl struct {
	name string

	mu           sync.Mutex
	ctrl         *control.Controller // guarded by mu
	boundVersion int                 // guarded by mu
	// boundDepth is the routing graph's max path depth the ladder was
	// built for (the stage count on linear models). guarded by mu.
	boundDepth int
	lastSnap   control.Snapshot // guarded by mu
	lastSample control.Sample   // guarded by mu
	// sink is the burn-rate monitor published to the model. The monitor
	// survives SLO re-targets (its history is the point), but the sink
	// wrapper is rebuilt so the latency target tracks the SLO. guarded
	// by mu.
	sink *alertSink

	stop chan struct{}
	done chan struct{}
}

// SetSLO attaches (or re-targets) a feedback controller on entry name.
// The controller starts at the identity policy and adapts from the next
// tick; re-attaching resets the controller state but keeps the loop.
func (r *Registry) SetSLO(name string, slo control.SLO) error {
	if err := slo.Validate(); err != nil {
		return err
	}
	m, err := r.Get(name)
	if err != nil {
		return err
	}
	name = m.Name() // resolve "" to the default entry
	r.ctrlMu.Lock()
	defer r.ctrlMu.Unlock()
	if r.closedCtrl {
		return ErrClosed
	}
	ec := r.ctrls[name]
	fresh := ec == nil
	if fresh {
		ec = &entryControl{name: name, stop: make(chan struct{}), done: make(chan struct{})}
		if r.ctrls == nil {
			r.ctrls = make(map[string]*entryControl)
		}
		r.ctrls[name] = ec
	}
	ec.mu.Lock()
	err = ec.bind(m, slo, r.cfg.ControlInterval)
	ec.mu.Unlock()
	if err != nil {
		if fresh {
			delete(r.ctrls, name)
		}
		return err
	}
	if fresh {
		go r.controlLoop(ec)
	}
	return nil
}

// bind (re)builds the controller for a model version. The actuation
// ladder spans the routing graph's max path depth, so on a routed model
// the deepest rungs shed branch depth before trunk depth. Caller holds
// ec.mu.
func (ec *entryControl) bind(m *Model, slo control.SLO, interval time.Duration) error {
	ladder := control.Ladder(m.graph.MaxDepth(), slo.AccuracyFloorDelta)
	ctrl, err := control.New(slo, ladder, control.Config{Interval: interval})
	if err != nil {
		return err
	}
	ec.ctrl = ctrl
	ec.boundVersion = m.version
	ec.boundDepth = m.graph.MaxDepth()
	var mon *control.AlertMonitor
	if ec.sink != nil {
		mon = ec.sink.mon
	}
	if mon == nil {
		mon = control.NewAlertMonitor(control.AlertConfig{})
	}
	ec.sink = &alertSink{mon: mon, p99TargetMS: slo.P99LatencyMs}
	m.alert.Store(ec.sink)
	return nil
}

// ClearSLO detaches entry name's controller and restores the identity
// inherit policy. Reports whether a controller was attached.
func (r *Registry) ClearSLO(name string) bool {
	if m, err := r.Get(name); err == nil {
		name = m.Name()
		defer func() {
			m.controlled.Store(nil)
			m.alert.Store(nil)
			m.ctrlRung.Store(0)
		}()
	}
	r.ctrlMu.Lock()
	ec := r.ctrls[name]
	delete(r.ctrls, name)
	r.ctrlMu.Unlock()
	if ec == nil {
		return false
	}
	close(ec.stop)
	<-ec.done
	return true
}

// closeControllers stops every control loop (Registry.Close).
func (r *Registry) closeControllers() {
	r.ctrlMu.Lock()
	ctrls := make([]*entryControl, 0, len(r.ctrls))
	for _, ec := range r.ctrls {
		ctrls = append(ctrls, ec)
	}
	r.ctrls = nil
	r.closedCtrl = true
	r.ctrlMu.Unlock()
	for _, ec := range ctrls {
		close(ec.stop)
		<-ec.done
	}
}

// controlLoop ticks one entry's controller until ClearSLO/Close.
func (r *Registry) controlLoop(ec *entryControl) {
	defer close(ec.done)
	t := time.NewTicker(r.cfg.ControlInterval)
	defer t.Stop()
	for {
		select {
		case <-ec.stop:
			return
		case <-t.C:
			r.controlTick(ec)
		}
	}
}

// controlTick runs one telemetry → decision → actuation pass.
func (r *Registry) controlTick(ec *entryControl) {
	m, err := r.Get(ec.name)
	if err != nil {
		// The entry vanished (registry closing); the loop will be
		// stopped by closeControllers.
		return
	}
	ec.mu.Lock()
	defer ec.mu.Unlock()
	if ec.ctrl == nil {
		return
	}
	if m.version != ec.boundVersion {
		// A hot-swap published a new version. Telemetry restarts with
		// the fresh model's window; the controller state carries over
		// unless the graph's depth changed, in which case the ladder
		// no longer matches and is rebuilt from rung 0.
		if m.graph.MaxDepth() != ec.boundDepth {
			if err := ec.bind(m, ec.ctrl.SLO(), r.cfg.ControlInterval); err != nil {
				// The new shape leaves nothing to actuate; park at
				// identity until the SLO is re-targeted.
				m.controlled.Store(nil)
				return
			}
		}
		ec.boundVersion = m.version
		// The successor copied the old model's sink at swap, but re-assert
		// it in case attach raced the publication.
		m.alert.Store(ec.sink)
	}
	snap := m.window.Snapshot()
	sample := control.Sample{
		P99LatencyMS: snap.P99LatencyMS,
		QueueFrac:    float64(m.pool.depth()) / float64(r.cfg.QueueDepth),
		MeanEnergyPJ: snap.MeanEnergyPJ,
		Images:       snap.Images,
		Arrivals:     snap.Arrivals,
	}
	dec := ec.ctrl.Step(sample)
	ec.lastSnap, ec.lastSample = snap, sample
	m.ctrlRung.Store(int32(dec.Rung))
	if dec.Action == control.ActionShallow {
		// The controller just degraded service to protect the SLO —
		// freeze the flight evidence that drove it before the ring
		// churns past the offending requests.
		m.flight.Snapshot("rung_down", m.name, dec.Rung, snap.P99LatencyMS, time.Now().UnixNano())
	}
	// Publish only on change so the shared pointer stays stable between
	// actions (cross-request batch grouping is by pointer first).
	cur := m.controlled.Load()
	if cur == nil || !cur.Equal(dec.Policy) {
		p := dec.Policy
		m.controlled.Store(&p)
	}
}

// AlertReport assembles the serve tier's /alertz document: one
// AlertStatus per entry with an attached monitor, plus the rolled-up
// page signal.
func (r *Registry) AlertReport() control.AlertzReport {
	rep := control.AlertzReport{Tier: "serve", Models: make(map[string]control.AlertStatus)}
	for _, m := range r.Models() {
		sink := m.alert.Load()
		if sink == nil {
			continue
		}
		st := sink.mon.Status()
		rep.Models[m.name] = st
		if st.Active {
			rep.Active = true
		}
	}
	return rep
}

// ControlStatus is the controller's observable state: the /slo GET body
// and the /statsz "control" section.
type ControlStatus struct {
	Model string      `json:"model"`
	SLO   control.SLO `json:"slo"`
	// Rung/MaxRung locate the current policy on the actuation ladder
	// (0 = trained behaviour).
	Rung    int `json:"rung"`
	MaxRung int `json:"max_rung"`
	// Delta is the effective confidence threshold (the trained δ unless
	// a request overrides it — the controller never moves δ, see
	// core.DepthCapped). MaxExit is the current depth cap (−1 = none).
	Delta      float64 `json:"delta"`
	MaxExit    int     `json:"max_exit"`
	LastAction string  `json:"last_action"`
	Ticks      int64   `json:"ticks"`
	Violations int64   `json:"violations"`
	// RecoverHold is the current (possibly backed-off) recovery wait.
	RecoverHold int `json:"recover_hold"`
	// QueueFrac is the occupancy the last tick observed.
	QueueFrac float64 `json:"queue_frac"`
	// Window is the telemetry snapshot behind the last decision.
	Window control.Snapshot `json:"window"`
}

// controlStatus assembles the status for entry name, or nil when no
// controller is attached.
func (r *Registry) controlStatus(name string) *ControlStatus {
	if m, err := r.Get(name); err == nil {
		name = m.Name()
	}
	r.ctrlMu.Lock()
	ec := r.ctrls[name]
	r.ctrlMu.Unlock()
	if ec == nil {
		return nil
	}
	ec.mu.Lock()
	defer ec.mu.Unlock()
	if ec.ctrl == nil {
		return nil
	}
	st := ec.ctrl.State()
	delta := st.Policy.Delta
	if delta < 0 {
		if m, err := r.Get(name); err == nil {
			delta = m.cdln.Delta
		}
	}
	return &ControlStatus{
		Model:       ec.name,
		SLO:         st.SLO,
		Rung:        st.Rung,
		MaxRung:     st.MaxRung,
		Delta:       delta,
		MaxExit:     st.Policy.MaxExit,
		LastAction:  string(st.LastAction),
		Ticks:       st.Ticks,
		Violations:  st.Violations,
		RecoverHold: st.RecoverHold,
		QueueFrac:   ec.lastSample.QueueFrac,
		Window:      ec.lastSnap,
	}
}

// SLOResponse is the GET/PUT /v2/models/{model}/slo payload: the
// attached SLO (null when none) and the controller's live state.
type SLOResponse struct {
	Model   string         `json:"model"`
	SLO     *control.SLO   `json:"slo,omitempty"`
	Control *ControlStatus `json:"control,omitempty"`
}

func (s *Server) handleSLOGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("model")
	m, err := s.reg.Get(name)
	if err != nil {
		WriteError(w, http.StatusNotFound, fmt.Sprintf("unknown model %q (have: %s)", name, s.reg.names()))
		return
	}
	resp := SLOResponse{Model: m.Name()}
	if st := s.reg.controlStatus(m.Name()); st != nil {
		resp.SLO, resp.Control = &st.SLO, st
	}
	WriteJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSLOPut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("model")
	m, err := s.reg.Get(name)
	if err != nil {
		WriteError(w, http.StatusNotFound, fmt.Sprintf("unknown model %q (have: %s)", name, s.reg.names()))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, 1<<16)
	var slo control.SLO
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&slo); err != nil {
		WriteError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if err := s.reg.SetSLO(m.Name(), slo); err != nil {
		status := http.StatusBadRequest
		if err == ErrClosed {
			status = http.StatusServiceUnavailable
		}
		WriteError(w, status, err.Error())
		return
	}
	resp := SLOResponse{Model: m.Name(), SLO: &slo}
	if st := s.reg.controlStatus(m.Name()); st != nil {
		resp.Control = st
	}
	WriteJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSLODelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("model")
	m, err := s.reg.Get(name)
	if err != nil {
		WriteError(w, http.StatusNotFound, fmt.Sprintf("unknown model %q (have: %s)", name, s.reg.names()))
		return
	}
	if !s.reg.ClearSLO(m.Name()) {
		WriteError(w, http.StatusNotFound, fmt.Sprintf("model %q has no SLO attached", m.Name()))
		return
	}
	WriteJSON(w, http.StatusOK, SLOResponse{Model: m.Name()})
}
