package serve

// loadsummary_test.go: /statsz?summary=1 is the fleet router's cheap load
// probe — pin its shape (compact JSON, aggregated across entries) and its
// relationship to the full Stats view.

import (
	"encoding/json"
	"net/http"
	"testing"
)

func TestStatszSummary(t *testing.T) {
	cdln, data := testCDLN(t, 61)
	_, ts := startServer(t, cdln, Config{Workers: 2, QueueDepth: 64})

	// Serve some traffic so the latency histogram is non-empty.
	for i := 0; i < 5; i++ {
		status, body := postClassify(t, ts.URL, ClassifyRequest{Image: data[i].X.Data})
		if status != http.StatusOK {
			t.Fatalf("classify %d: HTTP %d: %s", i, status, body)
		}
	}

	resp, err := http.Get(ts.URL + "/statsz?summary=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sum LoadSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	if !sum.Ready {
		t.Error("summary reports unready on a serving backend")
	}
	if sum.Models != 1 {
		t.Errorf("models = %d, want 1", sum.Models)
	}
	if sum.Requests != 5 {
		t.Errorf("requests = %d, want 5", sum.Requests)
	}
	if sum.P95TotalMS <= 0 {
		t.Errorf("p95_total_ms = %v after real traffic, want > 0", sum.P95TotalMS)
	}
	if sum.QueueFrac < 0 || sum.QueueFrac > 1 {
		t.Errorf("queue_frac = %v outside [0,1]", sum.QueueFrac)
	}
	if sum.Rejected != 0 {
		t.Errorf("rejected = %d, want 0", sum.Rejected)
	}

	// The plain /statsz stays the full document (summary is opt-in).
	full, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer full.Body.Close()
	var st Stats
	if err := json.NewDecoder(full.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 5 || len(st.Exits) == 0 {
		t.Errorf("full /statsz lost its shape: requests=%d exits=%d", st.Requests, len(st.Exits))
	}
}
