package serve

// control_test.go covers the SLO controller's serving integration: the
// /v2/models/{name}/slo admin surface, policy inheritance (explicit
// policies always win), shed causes + Retry-After, the timeout_ms range
// check, and concurrent observe/step/swap against a live hot-swap (the
// -race half of the controller test matrix; the control-loop dynamics
// themselves are pinned by internal/control's simulation harness).

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cdl/internal/control"
	"cdl/internal/core"
	"cdl/internal/edgecloud/wire"
	"cdl/internal/fixed"
)

// httpJSON runs one JSON request against ts and decodes the response.
func httpJSON(t testing.TB, method, url string, body any, out any) (int, http.Header) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("decode %s %s response %q: %v", method, url, buf.String(), err)
		}
	}
	return resp.StatusCode, resp.Header
}

func TestSLOEndpoints(t *testing.T) {
	cdln, _ := testCDLN(t, 71)
	_, ts := startServer(t, cdln, Config{Workers: 1})
	base := ts.URL + "/v2/models/" + DefaultModelName + "/slo"

	// No SLO attached yet.
	var got SLOResponse
	if status, _ := httpJSON(t, http.MethodGet, base, nil, &got); status != http.StatusOK {
		t.Fatalf("GET slo: HTTP %d", status)
	}
	if got.SLO != nil || got.Control != nil {
		t.Fatalf("GET slo before attach = %+v, want empty", got)
	}

	// Attach.
	slo := control.SLO{P99LatencyMs: 25, MaxQueueFrac: 0.8}
	got = SLOResponse{}
	if status, _ := httpJSON(t, http.MethodPut, base, slo, &got); status != http.StatusOK {
		t.Fatalf("PUT slo: HTTP %d", status)
	}
	if got.SLO == nil || *got.SLO != slo || got.Control == nil {
		t.Fatalf("PUT slo response = %+v, want the attached SLO + state", got)
	}
	if got.Control.Rung != 0 || got.Control.MaxExit != -1 {
		t.Errorf("fresh controller at rung %d / max_exit %d, want 0 / -1", got.Control.Rung, got.Control.MaxExit)
	}
	if got.Control.MaxRung != len(cdln.Stages) {
		t.Errorf("max rung %d, want %d (one per removable exit point)", got.Control.MaxRung, len(cdln.Stages))
	}

	// Invalid SLOs are rejected.
	for _, bad := range []any{
		control.SLO{},                        // no target
		control.SLO{MaxQueueFrac: 1.5},       // out of range
		map[string]any{"p99_latency_ms": -1}, // negative
		map[string]any{"frogs": 1},           // unknown field
	} {
		if status, _ := httpJSON(t, http.MethodPut, base, bad, nil); status != http.StatusBadRequest {
			t.Errorf("PUT bad slo %+v: HTTP %d, want 400", bad, status)
		}
	}
	// A floor of 1.0 leaves no actuation rung: rejected.
	if status, _ := httpJSON(t, http.MethodPut, base, control.SLO{P99LatencyMs: 10, AccuracyFloorDelta: 1}, nil); status != http.StatusBadRequest {
		t.Errorf("PUT floor=1 slo: HTTP %d, want 400", status)
	}

	// /statsz carries the control section while attached.
	var stats Stats
	if status, _ := httpJSON(t, http.MethodGet, ts.URL+"/statsz", nil, &stats); status != http.StatusOK || stats.Control == nil {
		t.Fatalf("statsz while attached: HTTP %d, control %v", status, stats.Control)
	}

	// Detach; a second detach 404s.
	if status, _ := httpJSON(t, http.MethodDelete, base, nil, nil); status != http.StatusOK {
		t.Fatalf("DELETE slo: HTTP %d", status)
	}
	if status, _ := httpJSON(t, http.MethodDelete, base, nil, nil); status != http.StatusNotFound {
		t.Fatalf("second DELETE slo: HTTP %d, want 404", status)
	}
	if status, _ := httpJSON(t, http.MethodGet, ts.URL+"/v2/models/nosuch/slo", nil, nil); status != http.StatusNotFound {
		t.Fatalf("GET slo on unknown model: HTTP %d, want 404", status)
	}
}

// forceRung drives an entry's controller to its max rung without the
// tick loop: deterministic actuation for the inheritance tests.
func forceRung(t *testing.T, srv *Server, name string) {
	t.Helper()
	m, err := srv.reg.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	ec := &entryControl{name: m.Name()}
	if err := ec.bind(m, control.SLO{P99LatencyMs: 1}, time.Second); err != nil {
		t.Fatal(err)
	}
	// Trip the p99 target with synthetic window observations, then tick
	// until the ladder saturates.
	obs := make([]control.Obs, 16)
	for i := range obs {
		obs[i] = control.Obs{LatencyMS: 1000, ExitIndex: 0}
	}
	for i := 0; i <= ec.ctrl.MaxRung(); i++ {
		m.window.ObserveBatch(obs)
		srv.reg.controlTick(ec)
	}
	st := ec.ctrl.State()
	if st.Rung != st.MaxRung {
		t.Fatalf("controller at rung %d after forcing, want max %d", st.Rung, st.MaxRung)
	}
	if p := m.controlled.Load(); p == nil || p.MaxExit != 0 {
		t.Fatalf("controlled policy %+v, want MaxExit 0", p)
	}
}

// TestControllerInheritance pins the actuation contract: a request with
// no explicit δ/policy inherits the controller's capped policy, while an
// explicit one bypasses it entirely.
func TestControllerInheritance(t *testing.T) {
	cdln, data := testCDLN(t, 72)
	srv, ts := startServer(t, cdln, Config{Workers: 1})
	forceRung(t, srv, "")

	img := data[0].X.Flatten().Data
	// Inherited: the controller's MaxExit=0 cap forces every exit to O1.
	status, body := postClassify(t, ts.URL, ClassifyRequest{Images: [][]float64{img, data[1].X.Flatten().Data}})
	if status != http.StatusOK {
		t.Fatalf("inherited classify: HTTP %d: %s", status, body)
	}
	var out ClassifyResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	for i, r := range out.Results {
		if r.ExitIndex != 0 {
			t.Errorf("inherited result %d exited at %d, want the controller's cap 0", i, r.ExitIndex)
		}
	}

	// Explicit δ=1 disables early exit: the cascade must run to FC even
	// though the controller is parked at MaxExit 0.
	one := 1.0
	status, body = postClassify(t, ts.URL, ClassifyRequest{Image: img, Delta: &one})
	if status != http.StatusOK {
		t.Fatalf("explicit classify: HTTP %d: %s", status, body)
	}
	out = ClassifyResponse{}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.Results[0].ExitIndex; got != len(cdln.Stages) {
		t.Errorf("explicit δ=1 exited at %d, want FC (%d) — the controller must never override an explicit policy", got, len(cdln.Stages))
	}

	// v2: an empty-but-present policy object is explicit too.
	v2url := ts.URL + "/v2/models/" + DefaultModelName + "/classify"
	var v2out V2ClassifyResponse
	if status, _ := httpJSON(t, http.MethodPost, v2url, map[string]any{"image": img, "policy": map[string]any{"delta": 1.0}}, &v2out); status != http.StatusOK {
		t.Fatalf("v2 explicit: HTTP %d", status)
	}
	if got := v2out.Results[0].ExitIndex; got != len(cdln.Stages) {
		t.Errorf("v2 explicit δ=1 exited at %d, want FC", got)
	}
	v2out = V2ClassifyResponse{}
	if status, _ := httpJSON(t, http.MethodPost, v2url, map[string]any{"image": img}, &v2out); status != http.StatusOK {
		t.Fatalf("v2 inherited: HTTP %d", status)
	}
	if got := v2out.Results[0].ExitIndex; got != 0 {
		t.Errorf("v2 inherited exited at %d, want 0", got)
	}
}

// TestResumeInheritedPolicyRelaxed: a controller cap shallower than an
// offloaded payload's resume stage must not 400 the resume — the client
// never asked for the cap. An explicit shallow cap still 400s.
func TestResumeInheritedPolicyRelaxed(t *testing.T) {
	cdln, data := testCDLN(t, 73)
	srv, ts := startServer(t, cdln, Config{Workers: 1})
	forceRung(t, srv, "")

	// Build a stage-1 offload payload.
	edge, err := core.NewSession(cdln)
	if err != nil {
		t.Fatal(err)
	}
	var payload string
	for _, s := range data {
		pre := edge.ClassifyPrefix(s.X, 1, 0.99)
		if pre.Exited {
			continue
		}
		raw, err := wire.Encode(wire.Activation{
			FromStage: 1, Pos: pre.Pos, Shape: pre.Activation.Shape(), Data: pre.Activation.Data,
		}, wire.EncodingFloat64, fixed.Format{})
		if err != nil {
			t.Fatal(err)
		}
		payload = base64.StdEncoding.EncodeToString(raw)
		break
	}
	if payload == "" {
		t.Fatal("no input deferred at δ=0.99; fixture degenerate")
	}

	status, body := postResume(t, ts.URL, ResumeRequest{Payload: payload})
	if status != http.StatusOK {
		t.Fatalf("inherited resume under a shallow controller cap: HTTP %d: %s (must relax, not reject)", status, body)
	}
	var out ClassifyResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.Results[0].ExitIndex; got < 1 {
		t.Errorf("relaxed resume exited at %d, want ≥ its resume stage 1", got)
	}

	// Explicit cap shallower than the resume stage: still a 400.
	zero := 0
	v2url := ts.URL + "/v2/models/" + DefaultModelName + "/resume"
	if status, _ := httpJSON(t, http.MethodPost, v2url,
		map[string]any{"payload": payload, "policy": map[string]any{"max_exit": zero}}, nil); status != http.StatusBadRequest {
		t.Errorf("explicit max_exit 0 on a stage-1 resume: HTTP %d, want 400", status)
	}
}

// TestShedCausesAndRetryAfter pins the shed contract: every 503 carries
// Retry-After and increments its per-cause counter.
func TestShedCausesAndRetryAfter(t *testing.T) {
	cdln, data := testCDLN(t, 74)
	img := data[0].X.Flatten().Data

	t.Run("closed", func(t *testing.T) {
		srv, err := New(cdln, Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		srv.Close()
		body, _ := json.Marshal(ClassifyRequest{Image: img})
		resp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("classify after Close: HTTP %d, want 503", resp.StatusCode)
		}
		if got := resp.Header.Get("Retry-After"); got != shedRetryAfterSeconds {
			t.Errorf("Retry-After %q, want %q", got, shedRetryAfterSeconds)
		}
		st := srv.Stats()
		if st.RejectedClosed != 1 || st.Rejected != 1 {
			t.Errorf("rejected/closed = %d/%d, want 1/1", st.Rejected, st.RejectedClosed)
		}
	})

	t.Run("queue_full", func(t *testing.T) {
		srv, err := New(cdln, Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() { ts.Close(); srv.Close() })
		// Replace the pool with a worker-less one so the queue genuinely
		// cannot drain: a 3-image request against depth 2 must shed.
		m, err := srv.reg.Get("")
		if err != nil {
			t.Fatal(err)
		}
		m.pool.close()
		m.pool = newPool(nil, 2, 1, 0, m.onBatch)
		body, _ := json.Marshal(ClassifyRequest{Images: [][]float64{img, img, img}})
		resp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("oversized classify: HTTP %d, want 503", resp.StatusCode)
		}
		if got := resp.Header.Get("Retry-After"); got != shedRetryAfterSeconds {
			t.Errorf("Retry-After %q, want %q", got, shedRetryAfterSeconds)
		}
		st := m.Stats()
		if st.RejectedQueueFull != 1 {
			t.Errorf("rejected_queue_full = %d, want 1", st.RejectedQueueFull)
		}
		if snap := m.window.Snapshot(); snap.Sheds != 3 || snap.Arrivals != 3 {
			t.Errorf("window sheds/arrivals = %d/%d, want 3/3", snap.Sheds, snap.Arrivals)
		}
	})
}

// TestLatencyHistogramsInStats checks the new /statsz latency section
// fills after traffic.
func TestLatencyHistogramsInStats(t *testing.T) {
	cdln, data := testCDLN(t, 75)
	srv, ts := startServer(t, cdln, Config{Workers: 2})
	for i := 0; i < 10; i++ {
		status, _ := postClassify(t, ts.URL, ClassifyRequest{Image: data[i].X.Flatten().Data})
		if status != http.StatusOK {
			t.Fatalf("classify %d: HTTP %d", i, status)
		}
	}
	st := srv.Stats()
	for name, ls := range map[string]LatencyStats{
		"queue": st.QueueLatency, "service": st.ServiceLatency, "total": st.TotalLatency,
	} {
		if ls.Count != 10 {
			t.Errorf("%s latency count %d, want 10", name, ls.Count)
		}
		if ls.P99MS < ls.P50MS {
			t.Errorf("%s latency p99 %v < p50 %v", name, ls.P99MS, ls.P50MS)
		}
	}
	if st.TotalLatency.P50MS < st.ServiceLatency.P50MS {
		t.Errorf("total p50 %v < service p50 %v", st.TotalLatency.P50MS, st.ServiceLatency.P50MS)
	}
	// The JSON shape must expose the histograms.
	raw, _ := json.Marshal(st)
	for _, key := range []string{"queue_latency", "service_latency", "total_latency", "rejected_queue_full"} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("stats JSON missing %q: %s", key, raw)
		}
	}
}

// TestV2TimeoutRange pins the timeout_ms range check and the resolved
// deadline surfaced at trace detail.
func TestV2TimeoutRange(t *testing.T) {
	cdln, data := testCDLN(t, 76)
	_, ts := startServer(t, cdln, Config{Workers: 1})
	url := ts.URL + "/v2/models/" + DefaultModelName + "/classify"
	img := data[0].X.Flatten().Data

	for _, ms := range []int{-1, MaxTimeoutMS + 1, 1 << 40} {
		if status, _ := httpJSON(t, http.MethodPost, url, map[string]any{"image": img, "timeout_ms": ms}, nil); status != http.StatusBadRequest {
			t.Errorf("timeout_ms %d: HTTP %d, want 400", ms, status)
		}
	}
	var out V2ClassifyResponse
	before := time.Now().UnixMilli()
	if status, _ := httpJSON(t, http.MethodPost, url,
		map[string]any{"image": img, "timeout_ms": 30000, "policy": map[string]any{"detail": "trace"}}, &out); status != http.StatusOK {
		t.Fatalf("trace classify: HTTP %d", status)
	}
	if out.DeadlineUnixMS < before+29000 || out.DeadlineUnixMS > before+31500 {
		t.Errorf("deadline_unix_ms %d not ~30s after request start %d", out.DeadlineUnixMS, before)
	}
	// Cost detail omits it even with a timeout set.
	out = V2ClassifyResponse{}
	if status, _ := httpJSON(t, http.MethodPost, url, map[string]any{"image": img, "timeout_ms": 30000}, &out); status != http.StatusOK {
		t.Fatal("cost classify failed")
	}
	if out.DeadlineUnixMS != 0 {
		t.Errorf("deadline_unix_ms %d at cost detail, want omitted", out.DeadlineUnixMS)
	}
}

// TestControlObserveStepSwapRace is the -race coverage demanded by the
// issue: live traffic (observe), a fast control loop (step), hot-swaps
// of the controlled entry (swap) and SLO re-attachment all concurrently.
func TestControlObserveStepSwapRace(t *testing.T) {
	cdln, data := testCDLN(t, 77)
	reg := NewRegistry(Config{Workers: 2, ControlInterval: 2 * time.Millisecond, ControlWindow: 200 * time.Millisecond})
	if _, err := reg.Register(DefaultModelName, cdln); err != nil {
		t.Fatal(err)
	}
	srv, err := NewWithRegistry(reg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	if err := reg.SetSLO(DefaultModelName, control.SLO{P99LatencyMs: 0.5, MaxQueueFrac: 0.9}); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Traffic: inherited-policy requests (observe path).
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			img := data[w].X.Flatten().Data
			body, _ := json.Marshal(ClassifyRequest{Image: img})
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(body))
				if err != nil {
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
					t.Errorf("classify under churn: HTTP %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	// Hot-swap churn on the controlled entry.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := reg.Register(DefaultModelName, cdln); err != nil && err != ErrClosed {
				t.Errorf("swap %d: %v", i, err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	// SLO churn: status reads, re-attach, detach.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = reg.controlStatus(DefaultModelName)
			if i%7 == 0 {
				_ = reg.SetSLO(DefaultModelName, control.SLO{P99LatencyMs: float64(1 + i%5)})
			}
			if i%31 == 30 {
				reg.ClearSLO(DefaultModelName)
				if err := reg.SetSLO(DefaultModelName, control.SLO{MaxQueueFrac: 0.5}); err != nil {
					t.Errorf("re-attach: %v", err)
					return
				}
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestSLOControllerActuatesEndToEnd drives the whole loop over HTTP: an
// impossible energy budget must shallow the cascade to its floor within
// a few control intervals, visible in /statsz and in the exits of
// subsequent no-policy responses.
func TestSLOControllerActuatesEndToEnd(t *testing.T) {
	cdln, data := testCDLN(t, 78)
	reg := NewRegistry(Config{Workers: 1, ControlInterval: 5 * time.Millisecond, ControlWindow: time.Second})
	if _, err := reg.Register(DefaultModelName, cdln); err != nil {
		t.Fatal(err)
	}
	srv, err := NewWithRegistry(reg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	// A 1 pJ budget is below any exit's energy: every adequately-sampled
	// tick violates, so the ladder must saturate.
	if err := reg.SetSLO("", control.SLO{EnergyBudgetPJ: 1}); err != nil {
		t.Fatal(err)
	}
	images := make([][]float64, 16)
	for i := range images {
		images[i] = data[i%len(data)].X.Flatten().Data
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if status, _ := postClassify(t, ts.URL, ClassifyRequest{Images: images}); status != http.StatusOK {
			t.Fatalf("classify: HTTP %d", status)
		}
		st := reg.controlStatus(DefaultModelName)
		if st != nil && st.Rung == st.MaxRung {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("controller never saturated: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Responses without a policy now exit at the cap.
	status, body := postClassify(t, ts.URL, ClassifyRequest{Images: images})
	if status != http.StatusOK {
		t.Fatalf("capped classify: HTTP %d", status)
	}
	var out ClassifyResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	for i, r := range out.Results {
		if r.ExitIndex != 0 {
			t.Fatalf("result %d exited at %d under a saturated controller, want 0", i, r.ExitIndex)
		}
	}
	st := srv.Stats()
	if st.Control == nil || st.Control.MaxExit != 0 {
		t.Fatalf("statsz control %+v, want MaxExit 0", st.Control)
	}
	if st.Control.Window.Images == 0 {
		t.Error("controller window saw no traffic")
	}
	_ = fmt.Sprintf("%v", st.Control)
}
