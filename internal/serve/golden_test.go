package serve

// golden_test.go pins the /v1 wire format byte-for-byte: the golden files
// under testdata/ were generated against the pre-registry single-model
// server, and every later redesign of the serving internals (the model
// registry, the v2 surface, policy-aware dispatch) must keep /v1/classify
// and /v1/resume responses bit-identical to them. Regenerate only on a
// deliberate, documented wire change: go test ./internal/serve -run
// TestV1GoldenCompat -update-golden

import (
	"bytes"
	"encoding/base64"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"cdl/internal/core"
	"cdl/internal/edgecloud/wire"
	"cdl/internal/fixed"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the /v1 golden response files")

// goldenRequests builds the deterministic request set: classify (single,
// batch, δ-override) and resume (every payload the split-1 prefix defers
// under a deep-exit δ). Everything derives from the seeded fixture, so the
// bodies are reproducible bit-for-bit.
func goldenRequests(t *testing.T, cdln *core.CDLN) []struct {
	name string
	path string
	req  any
} {
	t.Helper()
	_, data := testCDLN(t, 91) // same seed as the caller's model
	img := func(i int) []float64 { return data[i].X.Flatten().Data }

	batch := make([][]float64, 24)
	for i := range batch {
		batch[i] = img(i)
	}
	small := make([][]float64, 10)
	for i := range small {
		small[i] = img(40 + i)
	}
	delta := 0.7

	// Resume payloads: run the split-1 prefix at δ=0.9 so a healthy share
	// defers, and ship exactly those activations.
	edge, err := core.NewSession(cdln)
	if err != nil {
		t.Fatal(err)
	}
	resumeDelta := 0.9
	var payloads []string
	for i := 0; i < 40 && len(payloads) < 12; i++ {
		pre := edge.ClassifyPrefix(data[i].X, 1, resumeDelta)
		if pre.Exited {
			continue
		}
		b, err := wire.Encode(wire.Activation{
			FromStage: 1, Pos: pre.Pos, Shape: pre.Activation.Shape(), Data: pre.Activation.Data,
		}, wire.EncodingFloat64, fixed.Format{})
		if err != nil {
			t.Fatal(err)
		}
		payloads = append(payloads, base64.StdEncoding.EncodeToString(b))
	}
	if len(payloads) == 0 {
		t.Fatal("fixture degenerate: split-1 δ=0.9 prefix deferred nothing")
	}

	return []struct {
		name string
		path string
		req  any
	}{
		{"classify_single", "/v1/classify", ClassifyRequest{Image: img(3)}},
		{"classify_batch", "/v1/classify", ClassifyRequest{Images: batch}},
		{"classify_delta", "/v1/classify", ClassifyRequest{Images: small, Delta: &delta}},
		{"resume_batch", "/v1/resume", ResumeRequest{Payloads: payloads, Delta: &resumeDelta}},
	}
}

// TestV1GoldenCompat asserts the exact response bytes of the /v1 surface
// against the checked-in goldens (HTTP 200 and body, including the JSON
// encoder's trailing newline).
func TestV1GoldenCompat(t *testing.T) {
	cdln, _ := testCDLN(t, 91)
	_, ts := startServer(t, cdln, Config{Workers: 2})

	for _, tc := range goldenRequests(t, cdln) {
		t.Run(tc.name, func(t *testing.T) {
			var status int
			var body []byte
			switch req := tc.req.(type) {
			case ClassifyRequest:
				status, body = postClassify(t, ts.URL, req)
			case ResumeRequest:
				status, body = postResume(t, ts.URL, req)
			}
			if status != http.StatusOK {
				t.Fatalf("HTTP %d: %s", status, body)
			}
			golden := filepath.Join("testdata", "golden_v1_"+tc.name+".json")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, body, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update-golden on a known-good tree): %v", err)
			}
			if !bytes.Equal(body, want) {
				t.Fatalf("%s response diverged from the pre-registry golden:\ngot:  %s\nwant: %s",
					tc.path, firstDiff(body, want), want)
			}
		})
	}
}

// firstDiff renders the response with a marker at the first differing byte.
func firstDiff(got, want []byte) string {
	i := 0
	for i < len(got) && i < len(want) && got[i] == want[i] {
		i++
	}
	return fmt.Sprintf("%s«DIFF@%d»%s", got[:i], i, got[i:])
}
