// registry.go is the multi-model core of the serving layer: a Registry of
// named, versioned CDLN entries, each owning its own warm replica pool and
// live metrics. Models are registered in-memory or loaded from modelio
// files, and can be hot-swapped atomically while traffic flows: the new
// version's pool is fully built and warmed before publication, the swap
// itself is one map write, and the old version's pool is drained only
// after its in-flight micro-batches complete. Handlers that lose the race
// (submitted to a pool just closed by a swap) transparently retry against
// the successor version, so a swap under sustained load drops zero
// requests.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cdl/internal/control"
	"cdl/internal/core"
	"cdl/internal/energy"
	"cdl/internal/modelio"
	"cdl/internal/obs"
)

// DefaultModelName is the entry name used when a single-model Server is
// built without one (the /v1 alias target).
const DefaultModelName = "default"

// Model is one loaded, servable version of a named registry entry: the
// validated routing graph, its warm replica pool and its live metrics. A
// Model is immutable after construction — a reload (or branch swap)
// produces a new Model and retires this one — so handlers can use it
// without holding registry locks.
type Model struct {
	name    string
	version int
	path    string
	// graph is the full routing graph; cdln is its trunk (the linear
	// cascade for single-node graphs), kept separate because the request
	// surface's input validation and stage-delta checks are trunk-shaped.
	graph   *core.Graph
	cdln    *core.CDLN
	inWidth int
	// maxResumeWire bounds /resume bodies: the largest wire-encoded
	// activation any valid split point of this model can produce.
	maxResumeWire int
	exitOps       []float64
	pool          *pool
	metrics       *metrics
	workers       int
	// window is the sliding telemetry view the SLO controller reads
	// (latency percentiles, exit depth, pJ/image over the last few
	// seconds); it is fed per micro-batch alongside the cumulative
	// metrics.
	window *control.Window
	// controlled is the exit policy inherited by requests that carry no
	// explicit one: nil means the identity policy (trained behaviour),
	// non-nil is the attached controller's current rung. Atomic because
	// the control loop writes it while handlers read it.
	controlled atomic.Pointer[core.ExitPolicy]

	// flight is this entry's flight recorder, owned by the registry's
	// FlightSet and keyed by entry name — a hot-swap's successor version
	// inherits the same ring, so the tail evidence survives reloads.
	flight *obs.FlightRecorder
	// nodePaths pre-renders the routed walk for each graph node
	// ("trunk", "trunk->convB"), so the per-request flight record never
	// allocates a path string on the hot path.
	nodePaths []string
	// alert is the burn-rate monitor attached alongside the SLO
	// controller (nil when no SLO is attached): onBatch classifies each
	// finished image good/bad against the target it carries. Atomic for
	// the same reason as controlled.
	alert atomic.Pointer[alertSink]
	// ctrlRung mirrors the controller's current ladder position for
	// flight records (0 = trained behaviour).
	ctrlRung atomic.Int32
	// liveP99Bits/liveP99AtNS cache the telemetry window's p99 (float64
	// bits + refresh stamp): onBatch tags tail-latency anomalies against
	// it but re-snapshots the window at most every liveP99RefreshNS.
	liveP99Bits atomic.Uint64
	liveP99AtNS atomic.Int64
}

// liveP99RefreshNS is how often onBatch refreshes the cached live p99
// from the telemetry window — frequent enough to track load swings,
// rare enough that the snapshot cost never shows in the overhead guard.
const liveP99RefreshNS = int64(250 * time.Millisecond)

// newModel validates the routing graph, pre-clones cfg.Workers warm
// sessions and starts the replica pool — the per-model half of what
// serve.New did for its single model. The Model owns a private clone, so
// callers may keep mutating (or re-swapping branches of) the graph they
// passed in.
func newModel(name string, version int, path string, g *core.Graph, cfg Config) (*Model, error) {
	g = g.Clone()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	acc, err := energy.NewEvaluator().NewGraphAccumulator(g)
	if err != nil {
		return nil, err
	}
	sessions := make([]*core.Session, cfg.Workers)
	for i := range sessions {
		if sessions[i], err = core.NewGraphSession(g); err != nil {
			return nil, err
		}
	}
	m := &Model{
		name:    name,
		version: version,
		path:    path,
		graph:   g,
		cdln:    g.Trunk(),
		inWidth: inputWidth(g.Trunk()),
		exitOps: g.ExitOps(),
		metrics: newMetrics(g, acc),
		workers: cfg.Workers,
	}
	m.maxResumeWire = maxResumeWireSize(g)
	m.nodePaths = make([]string, len(m.metrics.nodeNames))
	for ni, n := range m.metrics.nodeNames {
		if ni == 0 {
			m.nodePaths[ni] = n
		} else {
			m.nodePaths[ni] = m.metrics.nodeNames[0] + "->" + n
		}
	}
	buckets := 10
	m.window = control.NewWindow(g.NumExits(), control.WindowConfig{
		Buckets:   buckets,
		BucketDur: cfg.ControlWindow / time.Duration(buckets),
	})
	m.pool = newPool(sessions, cfg.QueueDepth, cfg.MaxBatch, cfg.BatchWindow, m.onBatch)
	return m, nil
}

// onBatch is the pool's per-micro-batch callback: it charges the
// cumulative metrics, feeds the sliding telemetry window, offers every
// job to the flight recorder (tail-retention decides what survives) and
// classifies the batch against the burn-rate monitor. One lock
// acquisition each per batch, not per image.
func (m *Model) onBatch(batch []*job) {
	m.metrics.observeBatch(batch)
	window := make([]control.Obs, 0, len(batch))
	now := time.Now()
	for _, j := range batch {
		if j.cancelled {
			continue
		}
		window = append(window, control.Obs{
			LatencyMS: float64(now.Sub(j.enqueued)) / float64(time.Millisecond),
			ExitIndex: j.rec.StageIndex,
			// ExitEnergy reads an immutable precomputed table — safe
			// without the metrics lock.
			EnergyPJ: m.metrics.acc.ExitEnergy(j.rec.StageIndex),
		})
	}
	m.window.ObserveBatch(window)
	m.observeFlight(batch, now)
}

// liveP99 returns the cached telemetry-window p99, re-snapshotting at
// most every liveP99RefreshNS — the anomaly gate must not pay a window
// scan per micro-batch.
func (m *Model) liveP99(nowNS int64) float64 {
	if at := m.liveP99AtNS.Load(); nowNS-at > liveP99RefreshNS && m.liveP99AtNS.CompareAndSwap(at, nowNS) {
		m.liveP99Bits.Store(math.Float64bits(m.window.Snapshot().P99LatencyMS))
	}
	return math.Float64frombits(m.liveP99Bits.Load())
}

// observeFlight turns one micro-batch into flight records and burn-rate
// observations. Records for sampled-out normals cost one atomic bump
// inside Record; anomalous requests (above the live p99, deadline
// deaths, deepest exits) carry their full span trees.
func (m *Model) observeFlight(batch []*job, now time.Time) {
	sink := m.alert.Load()
	if m.flight == nil || !obs.FlightEnabled() {
		// The kill switch skips record assembly entirely, but SLO
		// accounting must not go dark with it.
		if sink != nil {
			var good, bad int64
			for _, j := range batch {
				switch {
				case j.cancelled:
					bad++
				case float64(now.Sub(j.enqueued))/float64(time.Millisecond) > sink.p99TargetMS:
					bad++
				default:
					good++
				}
			}
			sink.mon.Observe(good, bad)
		}
		return
	}
	nowNS := now.UnixNano()
	p99 := m.liveP99(nowNS)
	deepest := len(m.exitOps) - 1
	rung := int(m.ctrlRung.Load())
	controlled := m.controlled.Load()
	var good, bad int64
	for _, j := range batch {
		rec := obs.FlightRecord{
			Model:     m.name,
			Version:   m.version,
			Rung:      rung,
			ExitIndex: -1,
			BatchSize: len(batch),
			QueueMS:   float64(j.started.Sub(j.enqueued)) / float64(time.Millisecond),
			TotalMS:   float64(now.Sub(j.enqueued)) / float64(time.Millisecond),
			Outcome:   obs.FlightOK,
		}
		rec.ServiceMS = rec.TotalMS - rec.QueueMS
		rec.StartUnixNS = nowNS - int64(rec.TotalMS*float64(time.Millisecond))
		if j.tr != nil {
			rec.TraceID = j.tr.ID()
		}
		switch {
		case j.pol == controlled && controlled != nil:
			rec.PolicySource = "controller"
		case j.pol == &identityPolicy:
			rec.PolicySource = "default"
		default:
			rec.PolicySource = "explicit"
		}
		if j.cancelled {
			rec.Outcome = obs.FlightError
			rec.RejectCause = "deadline"
			rec.Anomalies = append(rec.Anomalies, obs.AnomalyDeadline)
			bad++
		} else {
			rec.ExitIndex = j.rec.StageIndex
			if j.rec.Node >= 0 && j.rec.Node < len(m.nodePaths) {
				rec.NodePath = m.nodePaths[j.rec.Node]
			}
			rec.EnergyPJ = m.metrics.acc.ExitEnergy(j.rec.StageIndex)
			if p99 > 0 && rec.TotalMS > p99 {
				rec.Anomalies = append(rec.Anomalies, obs.AnomalyP99)
			}
			if j.rec.StageIndex == deepest {
				rec.Anomalies = append(rec.Anomalies, obs.AnomalyDeepExit)
			}
			if sink != nil && rec.TotalMS > sink.p99TargetMS {
				bad++
			} else {
				good++
			}
		}
		if len(rec.Anomalies) > 0 && j.tr != nil {
			rec.Spans = j.tr.Spans()
		}
		m.flight.Record(rec)
	}
	if sink != nil {
		sink.mon.Observe(good, bad)
	}
}

// Name returns the registry entry name.
func (m *Model) Name() string { return m.name }

// Version returns the entry's monotonically increasing version (1 for the
// first load, +1 per hot-swap).
func (m *Model) Version() int { return m.version }

// Path returns the model file this version was loaded from ("" for
// in-memory registrations).
func (m *Model) Path() string { return m.path }

// CDLN returns the served graph's trunk cascade. Treat it as read-only:
// replicas were cloned from it at construction.
func (m *Model) CDLN() *core.CDLN { return m.cdln }

// Graph returns the served routing graph (a one-node graph for plain
// cascades). Treat it as read-only.
func (m *Model) Graph() *core.Graph { return m.graph }

// Stats snapshots this model's live counters.
func (m *Model) Stats() Stats { return m.metrics.snapshot(m.pool.depth(), m.workers) }

// Registry is a concurrent map of named model entries sharing one pool
// sizing. All methods are safe for concurrent use.
type Registry struct {
	cfg Config

	mu          sync.RWMutex
	models      map[string]*Model // guarded by mu
	versions    map[string]int    // guarded by mu; last assigned version per name, survives swaps
	defaultName string            // guarded by mu
	closed      bool              // guarded by mu

	// ctrlMu guards the per-entry SLO controllers (control.go). Separate
	// from mu: control ticks must never contend with the request path's
	// model lookups.
	ctrlMu     sync.Mutex
	ctrls      map[string]*entryControl // guarded by ctrlMu
	closedCtrl bool                     // guarded by ctrlMu

	// flights owns the per-entry flight recorders: keyed by name, not
	// version, so swaps inherit rings and snapshot history.
	flights *obs.FlightSet
}

// NewRegistry returns an empty registry whose models will all be sized by
// cfg (workers, queue depth, micro-batching).
func NewRegistry(cfg Config) *Registry {
	return &Registry{
		cfg:      cfg.withDefaults(),
		models:   make(map[string]*Model),
		versions: make(map[string]int),
		flights:  obs.NewFlightSet("serve", obs.FlightConfig{}),
	}
}

// Flights exposes the registry's flight recorders (the /debug/flightz
// backing store).
func (r *Registry) Flights() *obs.FlightSet { return r.flights }

// Config returns the defaults-filled sizing every entry uses.
func (r *Registry) Config() Config { return r.cfg }

// Ready reports whether the registry can serve a default-model request
// right now: it is not closed and the default entry exists with its warmed
// pool. This is the readiness-probe predicate — distinct from liveness,
// which only asks whether the process can answer at all. A registry with
// zero entries (or mid-Close) is alive but not ready.
func (r *Registry) Ready() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return !r.closed && r.defaultName != "" && r.models[r.defaultName] != nil
}

// validName keeps entry names URL- and log-safe: they appear verbatim in
// /v2/models/{name}/... routes.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("serve: empty model name")
	}
	if len(name) > 128 {
		return fmt.Errorf("serve: model name longer than 128 bytes")
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("serve: model name %q may only contain [a-zA-Z0-9._-]", name)
		}
	}
	return nil
}

// Register publishes an in-memory CDLN under name, hot-swapping any
// existing version: the new pool is warmed before the swap, and the
// retired version's pool is drained (in-flight batches complete) before
// Register returns. The first registered entry becomes the default.
func (r *Registry) Register(name string, cdln *core.CDLN) (*Model, error) {
	if err := cdln.Validate(); err != nil {
		return nil, err
	}
	return r.swapIn(name, "", core.LinearGraph(cdln))
}

// RegisterAt is Register recording the file the CDLN originated from —
// for callers that load a model themselves, mutate it (e.g. a load-time δ
// override) and then publish it, so /healthz and /v2/models still
// attribute the entry to its real source path.
func (r *Registry) RegisterAt(name, path string, cdln *core.CDLN) (*Model, error) {
	if err := cdln.Validate(); err != nil {
		return nil, err
	}
	return r.swapIn(name, path, core.LinearGraph(cdln))
}

// RegisterGraph publishes an in-memory routing graph under name with
// Register semantics.
func (r *Registry) RegisterGraph(name string, g *core.Graph) (*Model, error) {
	return r.swapIn(name, "", g)
}

// Load reads a modelio file — a linear CDLN or a v2 routing graph — and
// publishes it under name with Register semantics — the hot-reload entry
// point behind PUT /v2/models/{name}. The file is fully parsed and
// validated before the swap, so a torn or hostile file never displaces a
// serving version.
func (r *Registry) Load(name, path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serve: load model %q: %w", name, err)
	}
	defer f.Close()
	g, err := modelio.LoadGraph(f)
	if err != nil {
		return nil, fmt.Errorf("serve: load model %q: %w", name, err)
	}
	return r.swapIn(name, path, g)
}

// SwapBranch republishes entry name with one branch subnetwork (or, for
// branch name "" / the trunk's name, the trunk) replaced — the
// branch-granular hot-swap: the rest of the graph keeps its weights, the
// new version's pool is fully warmed before publication, and requests in
// flight on the old version drain as in any other swap, so the trunk
// never stops serving. The replacement must preserve the branch's
// interface (input shape from its router tap, class count); validation
// failures leave the serving version untouched. Concurrent SwapBranch
// calls on one entry serialize through version reservation — each is
// applied to the registry's current graph at its own reservation time.
func (r *Registry) SwapBranch(name, branch string, cdln *core.CDLN) (*Model, error) {
	cur, err := r.Get(name)
	if err != nil {
		return nil, err
	}
	g, err := cur.graph.WithBranch(branch, cdln)
	if err != nil {
		return nil, fmt.Errorf("serve: swap branch %q of %q: %w", branch, cur.name, err)
	}
	return r.swapIn(cur.name, cur.path, g)
}

// LoadBranch is SwapBranch reading the replacement cascade from a modelio
// file — the entry point behind PUT /v2/models/{name}/branches/{branch}.
func (r *Registry) LoadBranch(name, branch, path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serve: load branch %q of %q: %w", branch, name, err)
	}
	defer f.Close()
	cdln, err := modelio.LoadCDLN(f)
	if err != nil {
		return nil, fmt.Errorf("serve: load branch %q of %q: %w", branch, name, err)
	}
	return r.SwapBranch(name, branch, cdln)
}

// swapIn builds the new version outside the lock, publishes it atomically,
// then drains the retired pool.
func (r *Registry) swapIn(name, path string, g *core.Graph) (*Model, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	// Reserve the version number first so concurrent swaps of one name
	// publish distinguishable versions whatever order they land in.
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	version := r.versions[name] + 1
	r.versions[name] = version
	r.mu.Unlock()

	m, err := newModel(name, version, path, g, r.cfg)
	if err != nil {
		return nil, err
	}
	m.flight = r.flights.Recorder(name)

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		m.pool.close()
		return nil, ErrClosed
	}
	old := r.models[name]
	if old != nil && old.version > version {
		// A concurrent swap already published a newer version; retire this
		// build instead of regressing the entry.
		r.mu.Unlock()
		m.pool.close()
		return old, nil
	}
	if old != nil {
		// The successor inherits the attached alert monitor and rung so
		// burn-rate accounting never blinks across a swap (controlTick
		// re-asserts both on its next pass anyway).
		m.alert.Store(old.alert.Load())
		m.ctrlRung.Store(old.ctrlRung.Load())
	}
	r.models[name] = m
	if r.defaultName == "" {
		r.defaultName = name
	}
	r.mu.Unlock()

	if old != nil {
		// Drain after publication: requests that raced the swap and hit the
		// closing pool observe ErrClosed and retry against m.
		old.pool.close()
	}
	return m, nil
}

// Get resolves a name ("" means the default entry) to its current version.
func (r *Registry) Get(name string) (*Model, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		name = r.defaultName
	}
	if m := r.models[name]; m != nil {
		return m, nil
	}
	return nil, fmt.Errorf("serve: unknown model %q", name)
}

// DefaultName returns the default entry's name ("" while empty).
func (r *Registry) DefaultName() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.defaultName
}

// SetDefault redirects the /v1 alias surface (and name-less lookups) to an
// existing entry.
func (r *Registry) SetDefault(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.models[name] == nil {
		return fmt.Errorf("serve: unknown model %q", name)
	}
	r.defaultName = name
	return nil
}

// Models returns the current version of every entry, sorted by name.
func (r *Registry) Models() []*Model {
	r.mu.RLock()
	out := make([]*Model, 0, len(r.models))
	for _, m := range r.models {
		out = append(out, m)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Close retires every entry: SLO control loops stop, pools are drained
// (queued work still classifies) and later submissions shed with
// ErrClosed. Idempotent.
func (r *Registry) Close() {
	r.closeControllers()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	models := make([]*Model, 0, len(r.models))
	for _, m := range r.models {
		models = append(models, m)
	}
	r.mu.Unlock()
	for _, m := range models {
		m.pool.close()
	}
}

// flightShed records one rejected request in the flight ring (always
// tail-retained: a shed is by definition anomalous) and charges its
// images against the burn-rate monitor.
func (m *Model) flightShed(ctx context.Context, cause string, images int) {
	if sink := m.alert.Load(); sink != nil {
		sink.mon.Observe(0, int64(images))
	}
	if m.flight == nil || !obs.FlightEnabled() {
		return
	}
	rec := obs.FlightRecord{
		Model:       m.name,
		Version:     m.version,
		Rung:        int(m.ctrlRung.Load()),
		ExitIndex:   -1,
		BatchSize:   images,
		Outcome:     obs.FlightShed,
		RejectCause: cause,
		Anomalies:   []string{obs.AnomalyShed},
		StartUnixNS: time.Now().UnixNano(),
	}
	if cause == "deadline" {
		rec.Outcome = obs.FlightError
		rec.Anomalies = []string{obs.AnomalyDeadline}
	}
	if tr := obs.FromContext(ctx); tr != nil {
		rec.TraceID = tr.ID()
		rec.Spans = tr.Spans()
	}
	m.flight.Record(rec)
}

// flightCause maps a dispatch rejection to its flight reject-cause tag.
func flightCause(err error) string {
	switch {
	case errors.Is(err, ErrOverloaded):
		return "queue_full"
	case errors.Is(err, ErrClosed):
		return "closed"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	default:
		return "cancelled"
	}
}

// inputWidth is the flattened pixel count of the model's input shape.
func inputWidth(c *core.CDLN) int {
	w := 1
	for _, d := range c.Arch.Net.InShape {
		w *= d
	}
	return w
}

// names renders the known entry names for error messages.
func (r *Registry) names() string {
	ms := r.Models()
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.name
	}
	return strings.Join(out, ", ")
}
