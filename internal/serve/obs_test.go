package serve

// obs_test.go covers the observability surface: readiness vs liveness,
// X-Trace-Id propagation (header echo on every response path, body trace
// only when the client asked), span completeness over a routed graph,
// wire-carried trace adoption on /v1/resume, the /metricsz exposition
// (structure, under concurrent scrape + classify + hot-swap load, and the
// CI sample artifact), and the overhead guard benchmark pinning the cost
// of always-on tracing.

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"cdl/internal/edgecloud/wire"
	"cdl/internal/fixed"
	"cdl/internal/obs"
)

func TestReadyzLifecycle(t *testing.T) {
	cdln, _ := testCDLN(t, 61)
	srv, ts := startServer(t, cdln, Config{Workers: 1})

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready readyResponse
	err = json.NewDecoder(resp.Body).Decode(&ready)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || !ready.Ready {
		t.Fatalf("warm server: HTTP %d ready=%v err=%v", resp.StatusCode, ready.Ready, err)
	}
	if ready.Default != DefaultModelName {
		t.Errorf("default entry %q, want %q", ready.Default, DefaultModelName)
	}

	// Liveness must not flip with readiness: /healthz stays 200 while
	// /readyz reports the drain.
	srv.Close()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server: /readyz HTTP %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining server: /healthz HTTP %d, want 200", resp.StatusCode)
	}
}

// postTraced posts a classify request with an optional pinned trace ID.
func postTraced(t testing.TB, url, traceID string, req any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		hreq.Header.Set(obs.TraceHeader, traceID)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestTraceEchoAndSpans: a pinned X-Trace-Id is echoed on the response
// header and opts the body into the span timeline (queue, batch, stages —
// all closed and ordered); without a pinned ID the header carries a
// generated ID and the body stays exactly the golden /v1 shape.
func TestTraceEchoAndSpans(t *testing.T) {
	cdln, data := testCDLN(t, 62)
	_, ts := startServer(t, cdln, Config{Workers: 2})
	req := ClassifyRequest{Images: [][]float64{data[0].X.Flatten().Data, data[1].X.Flatten().Data}}

	resp, body := postTraced(t, ts.URL+"/v1/classify", "pinned-trace-1", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != "pinned-trace-1" {
		t.Fatalf("header echo %q, want pinned-trace-1", got)
	}
	var out ClassifyResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.TraceID != "pinned-trace-1" {
		t.Fatalf("body trace_id %q", out.TraceID)
	}
	assertSpanTree(t, out.Spans, true)

	// Unpinned: generated header ID, no trace fields in the body (the
	// golden /v1 contract must not grow fields under clients' feet).
	resp, body = postTraced(t, ts.URL+"/v1/classify", "", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	if id := resp.Header.Get(obs.TraceHeader); len(id) != 32 {
		t.Fatalf("generated header ID %q", id)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["trace_id"]; ok {
		t.Error("unpinned response leaked trace_id into the body")
	}
	if _, ok := raw["spans"]; ok {
		t.Error("unpinned response leaked spans into the body")
	}
}

// assertSpanTree checks the span-completeness contract: non-empty, every
// span closed (non-negative duration), ordered by start time, and — when
// wantPool is set — covering admission (queue), grouping (batch) and at
// least one cascade stage.
func assertSpanTree(t *testing.T, spans []obs.Span, wantPool bool) {
	t.Helper()
	if len(spans) == 0 {
		t.Fatal("no spans")
	}
	names := make(map[string]bool)
	for i, sp := range spans {
		if sp.Name == "" || sp.StartUnixNS == 0 {
			t.Errorf("span %d incomplete: %+v", i, sp)
		}
		if sp.DurationMS < 0 {
			t.Errorf("span %d not closed: %+v", i, sp)
		}
		if i > 0 && sp.StartUnixNS < spans[i-1].StartUnixNS {
			t.Errorf("span %d out of order: %d < %d", i, sp.StartUnixNS, spans[i-1].StartUnixNS)
		}
		names[sp.Name] = true
	}
	if !wantPool {
		return
	}
	for _, want := range []string{"queue", "batch"} {
		if !names[want] {
			t.Errorf("span tree missing %q: %v", want, spanNames(spans))
		}
	}
	stages := 0
	for n := range names {
		if strings.HasPrefix(n, "stage:") || strings.HasPrefix(n, "fc:") || strings.HasPrefix(n, "forced:") {
			stages++
		}
	}
	if stages == 0 {
		t.Errorf("span tree has no stage spans: %v", spanNames(spans))
	}
}

func spanNames(spans []obs.Span) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}

// TestRoutedSpanTree drives single-image requests through the routed
// graph fixture with the routing δ: every trace must be complete, and the
// traffic as a whole must surface route-decision spans with the
// "route:<node>-><branch>" vocabulary.
func TestRoutedSpanTree(t *testing.T) {
	ts, _, data := newRoutedServer(t, 63)
	d := routingDelta
	routed := false
	for i := 0; i < 12; i++ {
		req := ClassifyRequest{Images: [][]float64{data[i].X.Flatten().Data}, Delta: &d}
		resp, body := postTraced(t, ts.URL+"/v1/classify", "route-trace-"+strconv.Itoa(i), req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
		}
		var out ClassifyResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		assertSpanTree(t, out.Spans, true)
		for _, sp := range out.Spans {
			if strings.HasPrefix(sp.Name, "route:trunk->") {
				routed = true
			}
		}
	}
	if !routed {
		t.Error("no request produced a route span; routing fixture degenerate")
	}
}

// TestShedEchoesTrace: a 503 shed must still carry Retry-After AND the
// trace header — the middleware sets the echo before the handler runs, so
// error paths cannot lose it.
func TestShedEchoesTrace(t *testing.T) {
	cdln, data := testCDLN(t, 64)
	srv, ts := startServer(t, cdln, Config{Workers: 1})
	// Retire the serving pool with no successor version: dispatch hits
	// ErrClosed and sheds — the deterministic stand-in for a full queue.
	m, err := srv.reg.Get(DefaultModelName)
	if err != nil {
		t.Fatal(err)
	}
	m.pool.close()
	req := ClassifyRequest{Images: [][]float64{data[0].X.Flatten().Data, data[1].X.Flatten().Data}}
	resp, body := postTraced(t, ts.URL+"/v1/classify", "shed-trace-1", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("HTTP %d (%s), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed without Retry-After")
	}
	if got := resp.Header.Get(obs.TraceHeader); got != "shed-trace-1" {
		t.Errorf("shed trace echo %q, want shed-trace-1", got)
	}
}

// TestWireTraceAdoption: a trace ID carried in-band by a version-3 wire
// payload (headerless transport) must be adopted by /v1/resume — echoed on
// the response header and opting the body into span detail — stitching the
// edge's trace to the cloud's without HTTP header support.
func TestWireTraceAdoption(t *testing.T) {
	cdln, data := testCDLN(t, 65)
	_, ts := startServer(t, cdln, Config{Workers: 1})
	const wireID = "aabbccddeeff00112233445566778899"
	x := data[0].X
	b, err := wire.Encode(wire.Activation{
		FromStage: 0,
		Pos:       0,
		Shape:     x.Shape(),
		Data:      x.Data,
		TraceID:   wireID,
	}, wire.EncodingFloat64, fixed.Format{})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postTraced(t, ts.URL+"/v1/resume", "",
		ResumeRequest{Payload: base64.StdEncoding.EncodeToString(b)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != wireID {
		t.Fatalf("header %q, want wire-adopted %q", got, wireID)
	}
	var out ClassifyResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.TraceID != wireID {
		t.Fatalf("body trace_id %q, want %q", out.TraceID, wireID)
	}
	assertSpanTree(t, out.Spans, true)
}

// TestV2TraceDetail: detail "trace" opts into the span timeline even
// without a pinned header — the v2 client asked for trace detail in-band.
func TestV2TraceDetail(t *testing.T) {
	cdln, data := testCDLN(t, 66)
	_, ts := startServer(t, cdln, Config{Workers: 1})
	req := V2ClassifyRequest{
		Images: [][]float64{data[0].X.Flatten().Data},
		Policy: &PolicyRequest{Detail: DetailTrace},
	}
	resp, body := postTraced(t, ts.URL+"/v2/models/"+DefaultModelName+"/classify", "", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	var out V2ClassifyResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.TraceID == "" {
		t.Fatal("detail=trace response has no trace_id")
	}
	assertSpanTree(t, out.Spans, true)
}

// scrape fetches /metricsz and validates the text format line by line.
func scrape(t testing.TB, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metricsz HTTP %d: %s", resp.StatusCode, buf.String())
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("Content-Type %q, want %q", ct, obs.ContentType)
	}
	body := buf.String()
	for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparsable sample line %q", line)
		}
		val := line[sp+1:]
		if val != "+Inf" && val != "-Inf" && val != "NaN" {
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				t.Fatalf("bad sample value in %q: %v", line, err)
			}
		}
	}
	return body
}

// TestMetricszExposition drives traffic then checks every promised family
// is present with the model label.
func TestMetricszExposition(t *testing.T) {
	cdln, data := testCDLN(t, 67)
	_, ts := startServer(t, cdln, Config{Workers: 2})
	req := ClassifyRequest{}
	for _, s := range data[:20] {
		req.Images = append(req.Images, s.X.Flatten().Data)
	}
	if status, body := postClassify(t, ts.URL, req); status != http.StatusOK {
		t.Fatalf("classify HTTP %d: %s", status, body)
	}

	body := scrape(t, ts.URL)
	for _, want := range []string{
		"cdl_uptime_seconds ",
		"cdl_tracing_enabled 1",
		"cdl_flight_enabled 1",
		`cdl_build_info{go_version="`,
		`tier="serve"} 1`,
		`cdl_flight_seen_total{model="default"} `,
		`cdl_model_version{model="default"} 1`,
		`cdl_requests_total{model="default"} 1`,
		`cdl_images_total{model="default"} 20`,
		`cdl_rejected_total{model="default",cause="queue_full"} 0`,
		`cdl_exit_images_total{model="default",exit=`,
		`cdl_exit_energy_pj{model="default",exit=`,
		`cdl_branch_images_total{model="default",branch=`,
		`cdl_queue_latency_ms_bucket{model="default",le=`,
		`cdl_service_latency_ms_count{model="default"} 20`,
		`cdl_total_latency_ms_sum{model="default"} `,
		`cdl_ops_per_image{model="default"} `,
		`cdl_energy_pj_per_image{model="default"} `,
		`cdl_queue_depth{model="default"} `,
		`cdl_workers{model="default"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestMetricszUnderLoad is the race acceptance test: concurrent scrapes
// against a classify storm and hot swaps must stay valid text and never
// tear (run under -race in CI).
func TestMetricszUnderLoad(t *testing.T) {
	cdln, data := testCDLN(t, 68)
	srv, ts := startServer(t, cdln, Config{Workers: 2, MaxBatch: 4})
	req := ClassifyRequest{}
	for _, s := range data[:8] {
		req.Images = append(req.Images, s.X.Flatten().Data)
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ { // classify storm
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(body))
				if err != nil {
					return
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Add(1)
	go func() { // hot-swapper: republishes the default entry
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := srv.reg.Register(DefaultModelName, cdln); err != nil {
				t.Errorf("swap %d: %v", i, err)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	deadline := time.Now().Add(500 * time.Millisecond)
	scrapes := 0
	for time.Now().Before(deadline) {
		out := scrape(t, ts.URL)
		if !strings.Contains(out, "cdl_requests_total") {
			t.Fatalf("scrape lost the default model:\n%s", out)
		}
		scrapes++
	}
	close(stop)
	wg.Wait()
	if scrapes < 3 {
		t.Errorf("only %d scrapes completed", scrapes)
	}
}

// TestMetricszSample writes one post-traffic scrape to $METRICSZ_OUT so CI
// can archive a real exposition next to the benchmark artifacts.
func TestMetricszSample(t *testing.T) {
	out := os.Getenv("METRICSZ_OUT")
	if out == "" {
		t.Skip("METRICSZ_OUT not set")
	}
	cdln, data := testCDLN(t, 69)
	_, ts := startServer(t, cdln, Config{Workers: 2})
	req := ClassifyRequest{}
	for _, s := range data[:32] {
		req.Images = append(req.Images, s.X.Flatten().Data)
	}
	if status, body := postClassify(t, ts.URL, req); status != http.StatusOK {
		t.Fatalf("classify HTTP %d: %s", status, body)
	}
	if err := os.WriteFile(out, []byte(scrape(t, ts.URL)), 0o644); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkObservabilityOverhead pins the cost of always-on tracing: the
// same classify traffic with the obs layer enabled (default) and globally
// disabled. The acceptance bar is ≤5% throughput overhead.
func BenchmarkObservabilityOverhead(b *testing.B) {
	cdln, data := testCDLN(b, 70)
	srv, err := New(cdln, Config{Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	req := ClassifyRequest{}
	for _, s := range data[:8] {
		req.Images = append(req.Images, s.X.Flatten().Data)
	}
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B) {
		b.SetBytes(int64(len(req.Images)))
		for i := 0; i < b.N; i++ {
			r := httptest.NewRequest(http.MethodPost, "/v1/classify", bytes.NewReader(body))
			r.Header.Set("Content-Type", "application/json")
			w := httptest.NewRecorder()
			srv.Handler().ServeHTTP(w, r)
			if w.Code != http.StatusOK {
				b.Fatalf("HTTP %d: %s", w.Code, w.Body.String())
			}
		}
	}
	b.Run("tracing=on", run)
	b.Run("tracing=off", func(b *testing.B) {
		obs.SetEnabled(false)
		defer obs.SetEnabled(true)
		run(b)
	})
	// The flight recorder rides the same ≤5% acceptance bar: flight=off
	// isolates its contribution from the tracing layer's.
	b.Run("flight=on", run)
	b.Run("flight=off", func(b *testing.B) {
		obs.SetFlightEnabled(false)
		defer obs.SetFlightEnabled(true)
		run(b)
	})
}
