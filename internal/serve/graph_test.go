package serve

// graph_test.go covers the serve layer's routed-graph surface: a ≥2-branch
// tree registered and served through /v2, branch metadata on the model
// listing, per-branch exit distribution on /statsz, and the acceptance
// test for branch-granular hot-swap — one branch subnetwork replaced via
// PUT /v2/models/{model}/branches/{branch} under sustained classify load
// with zero dropped requests (run under -race in CI).

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cdl/internal/core"
	"cdl/internal/linclass"
	"cdl/internal/modelio"
	"cdl/internal/nn"
	"cdl/internal/opcount"
	"cdl/internal/train"
)

// branchCDLN builds an untrained branch cascade over the trunk's tap-3
// shape [2,5,5] (testCDLN's P1 output). Untrained is fine here: the serve
// tests exercise routing mechanics and swap atomicity, not accuracy.
func branchCDLN(seed int64, classes int) *core.CDLN {
	rng := rand.New(rand.NewSource(seed))
	net := nn.NewNetwork([]int{2, 5, 5},
		nn.NewConv2D("B1", 2, 2, 2),
		nn.NewSigmoid("B1.act"),
		nn.NewFlatten("B.flat"),
		nn.NewDense("BFC", 2*4*4, classes),
		nn.NewSigmoid("BFC.act"),
	)
	nn.InitNetwork(net, rng)
	arch := &nn.Arch{
		Name: "serve-branch", Net: net,
		Taps: []int{2}, TapNames: []string{"B1"},
		NumClasses: classes,
	}
	return &core.CDLN{
		Arch:   arch,
		Stages: []*core.Stage{{Name: "O1", Tap: 2, LC: linclass.New(2*4*4, classes, rng), Gain: 1}},
		Delta:  0.5,
		Rule:   core.ThresholdRule{},
		Ops:    opcount.Default(),
	}
}

// routedServeGraph wraps testCDLN's trained trunk in a two-branch tree:
// stage 0 routes class 0 to "lo" (classes {0,1}) and class 2 to "hi"
// (class {2}), class 1 continuing down the trunk. The trunk's rule is
// forced to threshold so a δ close to 1 suppresses stage exits and pushes
// traffic through the router (threshold exits only on exactly one
// over-δ score).
func routedServeGraph(t testing.TB, seed int64) (*core.Graph, []train.Sample) {
	t.Helper()
	trunk, data := testCDLN(t, seed)
	trunk.Rule = core.ThresholdRule{}
	g := &core.Graph{Nodes: []*core.Node{
		{
			Name:   "trunk",
			Model:  trunk,
			Routes: []core.Route{{Stage: 0, Branch: []int{1, -1, 2}}},
		},
		{Name: "lo", Model: branchCDLN(seed+100, 2), Labels: []int{0, 1}},
		{Name: "hi", Model: branchCDLN(seed+200, 1), Labels: []int{2}},
	}}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g, data
}

// routingDelta forces the threshold rule past every trunk stage exit so
// the router actually dispatches (scores rarely clear 0.999).
const routingDelta = 0.999

func newRoutedServer(t *testing.T, seed int64) (*httptest.Server, *Server, []train.Sample) {
	t.Helper()
	g, data := routedServeGraph(t, seed)
	reg := NewRegistry(Config{Workers: 4, MaxBatch: 8, BatchWindow: 50 * time.Microsecond})
	if _, err := reg.RegisterGraph(DefaultModelName, g); err != nil {
		t.Fatal(err)
	}
	srv, err := NewWithRegistry(reg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts, srv, data
}

// v2ClassifyNodes posts one batch through /v2 with the routing δ and
// returns the node that resolved each image.
func v2ClassifyNodes(t *testing.T, ts *httptest.Server, data []train.Sample, n, off int) []int {
	t.Helper()
	images := make([][]float64, n)
	for i := range images {
		images[i] = data[(off+i)%len(data)].X.Flatten().Data
	}
	delta := routingDelta
	status, body := postJSON(t, ts.URL+"/v2/models/"+DefaultModelName+"/classify",
		V2ClassifyRequest{Images: images, Policy: &PolicyRequest{Delta: &delta}})
	if status != http.StatusOK {
		t.Fatalf("classify: HTTP %d: %s", status, body)
	}
	var resp V2ClassifyResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != n {
		t.Fatalf("classify returned %d results for %d images", len(resp.Results), n)
	}
	nodes := make([]int, n)
	for i, r := range resp.Results {
		nodes[i] = r.Node
	}
	return nodes
}

// TestServeRoutedGraphV2 is the serving smoke test for routed models: the
// model listing exposes the branch topology, classify responses attribute
// each image to the node that resolved it, and /statsz aggregates the
// exit distribution per branch.
func TestServeRoutedGraphV2(t *testing.T) {
	ts, srv, data := newRoutedServer(t, 71)

	// Branch metadata on the model listing.
	resp, err := http.Get(ts.URL + "/v2/models/" + DefaultModelName)
	if err != nil {
		t.Fatal(err)
	}
	var info ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(info.Branches) != 2 {
		t.Fatalf("model listing reports %d branches, want 2: %+v", len(info.Branches), info.Branches)
	}
	byName := map[string][]int{}
	for _, b := range info.Branches {
		byName[b.Name] = b.Labels
	}
	if fmt.Sprint(byName["lo"]) != "[0 1]" || fmt.Sprint(byName["hi"]) != "[2]" {
		t.Fatalf("branch labels drifted: %v", byName)
	}

	// Under the routing δ some traffic must resolve off-trunk, and the
	// node attribution must be a valid node index.
	seen := map[int]int{}
	for off := 0; off < 120; off += 24 {
		for _, node := range v2ClassifyNodes(t, ts, data, 24, off) {
			if node < 0 || node > 2 {
				t.Fatalf("result attributed to node %d outside the graph", node)
			}
			seen[node]++
		}
	}
	if seen[1]+seen[2] == 0 {
		t.Fatalf("no traffic routed off-trunk under δ=%v: %v", routingDelta, seen)
	}

	// /statsz aggregates per branch; counts must cover all served images.
	stats := srv.Stats()
	if len(stats.Branches) != 3 {
		t.Fatalf("statsz reports %d branch rows, want 3 (trunk+2)", len(stats.Branches))
	}
	var total int64
	for _, b := range stats.Branches {
		total += b.Count
	}
	if total != 120 {
		t.Fatalf("branch counts sum to %d, want 120", total)
	}
	for _, b := range stats.Branches {
		if b.Count > 0 && b.MeanOps <= 0 {
			t.Fatalf("branch %q served %d images with non-positive mean ops", b.Name, b.Count)
		}
	}
}

// TestBranchHotSwapUnderLoad is the routed acceptance test: sustained /v2
// classify load against a two-branch tree while the "lo" branch is
// repeatedly replaced via PUT /v2/models/{model}/branches/{branch}. Zero
// requests may fail or be dropped, traffic must actually traverse the
// branches while they are being swapped, and each swap must bump the
// served version. Run under -race in CI.
func TestBranchHotSwapUnderLoad(t *testing.T) {
	ts, _, data := newRoutedServer(t, 72)

	// Two replacement "lo" cascades with the same topology (shape and
	// 2-class width preserved, weights different), saved as model files
	// for the PUT path to load.
	dir := t.TempDir()
	paths := make([]string, 2)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("lo-%d.cdln", i))
		f, err := os.Create(paths[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := modelio.SaveCDLN(f, branchCDLN(900+int64(i), 2)); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	const clients = 6
	const perClient = 30
	const swaps = 12

	var served, branchServed atomic.Int64
	errCh := make(chan error, clients+1)
	var wg sync.WaitGroup

	// Swapper: alternate the two "lo" replacements as fast as the
	// registry drains retired pools.
	lastVersion := int64(0)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < swaps; k++ {
			status, body := putJSON(t, ts.URL+"/v2/models/"+DefaultModelName+"/branches/lo",
				V2PutBranchRequest{Path: paths[k%2]})
			if status != http.StatusOK {
				errCh <- fmt.Errorf("swap %d: HTTP %d: %s", k, status, body)
				return
			}
			var resp V2PutBranchResponse
			if err := json.Unmarshal(body, &resp); err != nil {
				errCh <- fmt.Errorf("swap %d: %v", k, err)
				return
			}
			if int64(resp.Version) <= lastVersion {
				errCh <- fmt.Errorf("swap %d: version %d did not advance past %d", k, resp.Version, lastVersion)
				return
			}
			lastVersion = int64(resp.Version)
		}
		errCh <- nil
	}()

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				images := [][]float64{
					data[(c*perClient+k)%len(data)].X.Flatten().Data,
					data[(c+k)%len(data)].X.Flatten().Data,
				}
				delta := routingDelta
				status, body := postJSON(t, ts.URL+"/v2/models/"+DefaultModelName+"/classify",
					V2ClassifyRequest{Images: images, Policy: &PolicyRequest{Delta: &delta}})
				if status != http.StatusOK {
					errCh <- fmt.Errorf("client %d request %d: HTTP %d: %s", c, k, status, body)
					return
				}
				var resp V2ClassifyResponse
				if err := json.Unmarshal(body, &resp); err != nil {
					errCh <- fmt.Errorf("client %d request %d: %v", c, k, err)
					return
				}
				for _, res := range resp.Results {
					if res.Node != 0 {
						branchServed.Add(1)
					}
				}
				served.Add(int64(len(resp.Results)))
			}
			errCh <- nil
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	if served.Load() != clients*perClient*2 {
		t.Fatalf("served %d of %d images", served.Load(), clients*perClient*2)
	}
	if branchServed.Load() == 0 {
		t.Fatal("no traffic traversed a branch during the swap storm")
	}

	// After the last swap the entry serves the final replacement: swap
	// once more to a known file and check the version keeps advancing and
	// the graph still answers.
	status, body := putJSON(t, ts.URL+"/v2/models/"+DefaultModelName+"/branches/lo",
		V2PutBranchRequest{Path: paths[0]})
	if status != http.StatusOK {
		t.Fatalf("final swap: HTTP %d: %s", status, body)
	}
	v2ClassifyNodes(t, ts, data, 8, 0)
}

// TestBranchPutRejectsBadSwaps pins the failure modes of the branch-swap
// endpoint: unknown branch names, topology-breaking replacements (wrong
// class width) and linear models must all 4xx without disturbing the
// serving version.
func TestBranchPutRejectsBadSwaps(t *testing.T) {
	ts, _, _ := newRoutedServer(t, 73)
	dir := t.TempDir()

	save := func(name string, c *core.CDLN) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := modelio.SaveCDLN(f, c); err != nil {
			t.Fatal(err)
		}
		return path
	}
	good := save("good.cdln", branchCDLN(950, 2))
	wide := save("wide.cdln", branchCDLN(951, 3)) // 3 classes for a 2-label branch

	for name, tc := range map[string]struct {
		branch, path string
	}{
		"unknown branch": {"mid", good},
		"wrong width":    {"lo", wide},
		"missing file":   {"lo", filepath.Join(dir, "absent.cdln")},
	} {
		status, body := putJSON(t, ts.URL+"/v2/models/"+DefaultModelName+"/branches/"+tc.branch,
			V2PutBranchRequest{Path: tc.path})
		if status < 400 || status >= 500 {
			t.Errorf("%s: HTTP %d (want 4xx): %s", name, status, body)
		}
	}

	// The rejected swaps must not have bumped the version or broken serving.
	resp, err := http.Get(ts.URL + "/v2/models/" + DefaultModelName)
	if err != nil {
		t.Fatal(err)
	}
	var info ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Version != 1 {
		t.Fatalf("failed swaps bumped the version to %d", info.Version)
	}
}
