package serve

// validate_test.go pins the request-validation helpers shared by the cloud
// server and the edge front — ParseDeltaOverride and
// ClassifyRequest.NormalizeImages — with direct table-driven cases. Both
// were previously covered only incidentally through the e2e HTTP tests;
// these tables make the accept/reject boundary explicit, including inputs
// JSON alone cannot produce (NaN/±Inf), which in-process callers can.

import (
	"math"
	"strings"
	"testing"
)

func fp(v float64) *float64 { return &v }

func TestParseDeltaOverride(t *testing.T) {
	cases := []struct {
		name    string
		in      *float64
		want    float64
		wantErr bool
	}{
		{name: "nil keeps trained thresholds", in: nil, want: -1},
		{name: "zero", in: fp(0), want: 0},
		{name: "one", in: fp(1), want: 1},
		{name: "interior", in: fp(0.35), want: 0.35},
		{name: "negative", in: fp(-0.001), wantErr: true},
		{name: "above one", in: fp(1.001), wantErr: true},
		{name: "NaN", in: fp(math.NaN()), wantErr: true},
		{name: "+Inf", in: fp(math.Inf(1)), wantErr: true},
		{name: "-Inf", in: fp(math.Inf(-1)), wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseDeltaOverride(tc.in)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("ParseDeltaOverride(%v) accepted, want error", *tc.in)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseDeltaOverride: %v", err)
			}
			if got != tc.want {
				t.Fatalf("ParseDeltaOverride = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestNormalizeImages(t *testing.T) {
	const inWidth, maxImages = 4, 3
	inShape := []int{1, 2, 2}
	ok := []float64{0.1, 0.2, 0.3, 0.4}
	cases := []struct {
		name    string
		req     ClassifyRequest
		wantN   int
		wantErr string
	}{
		{
			name:  "single image",
			req:   ClassifyRequest{Image: ok},
			wantN: 1,
		},
		{
			name:  "batch",
			req:   ClassifyRequest{Images: [][]float64{ok, ok, ok}},
			wantN: 3,
		},
		{
			name:    "both set",
			req:     ClassifyRequest{Image: ok, Images: [][]float64{ok}},
			wantErr: "not both",
		},
		{
			name:    "neither set",
			req:     ClassifyRequest{},
			wantErr: "missing",
		},
		{
			name:    "empty batch",
			req:     ClassifyRequest{Images: [][]float64{}},
			wantErr: "missing",
		},
		{
			name:    "over the cap",
			req:     ClassifyRequest{Images: [][]float64{ok, ok, ok, ok}},
			wantErr: "per-request cap",
		},
		{
			name:    "wrong pixel count",
			req:     ClassifyRequest{Image: []float64{1, 2, 3}},
			wantErr: "model wants 4",
		},
		{
			name:    "empty image",
			req:     ClassifyRequest{Images: [][]float64{{}}},
			wantErr: "model wants 4",
		},
		{
			name:    "NaN pixel",
			req:     ClassifyRequest{Image: []float64{0, math.NaN(), 0, 0}},
			wantErr: "must be finite",
		},
		{
			name:    "+Inf pixel",
			req:     ClassifyRequest{Images: [][]float64{ok, {0, 0, math.Inf(1), 0}}},
			wantErr: "must be finite",
		},
		{
			name:    "-Inf pixel",
			req:     ClassifyRequest{Image: []float64{math.Inf(-1), 0, 0, 0}},
			wantErr: "must be finite",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			images, err := tc.req.NormalizeImages(inWidth, maxImages, inShape)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("NormalizeImages accepted, want error containing %q", tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("NormalizeImages error %q, want it to contain %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("NormalizeImages: %v", err)
			}
			if len(images) != tc.wantN {
				t.Fatalf("NormalizeImages returned %d images, want %d", len(images), tc.wantN)
			}
		})
	}
}
