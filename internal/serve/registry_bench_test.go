package serve

// registry_bench_test.go measures what the multi-model redesign costs on
// the hot path: v2 named dispatch against a single-model process vs a
// 4-model process (round-robin), and the /v1 alias through the registry.
// CI archives these as BENCH_registry.json next to the serve and core
// bench artifacts, so registry overhead (one RLock + map hit per request)
// stays visible across commits.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"
)

// benchRegistryServer builds a server holding n copies of the fixture
// model under names m0..m{n-1}.
func benchRegistryServer(b *testing.B, n int) (*Server, *httptest.Server, [][]byte) {
	b.Helper()
	cdln, data := testCDLN(b, 81)
	cfg := Config{Workers: 2, MaxBatch: 8, BatchWindow: 50 * time.Microsecond}
	reg := NewRegistry(cfg)
	for i := 0; i < n; i++ {
		if _, err := reg.Register(fmt.Sprintf("m%d", i), cdln); err != nil {
			b.Fatal(err)
		}
	}
	srv, err := NewWithRegistry(reg)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(func() { ts.Close(); srv.Close() })

	bodies := make([][]byte, 4)
	for k := range bodies {
		images := make([][]float64, 8)
		for i := range images {
			images[i] = data[(k*8+i)%len(data)].X.Flatten().Data
		}
		body, err := json.Marshal(V2ClassifyRequest{Images: images})
		if err != nil {
			b.Fatal(err)
		}
		bodies[k] = body
	}
	return srv, ts, bodies
}

// benchDispatch posts b.N 8-image requests round-robin over the given
// model names (empty name = /v1).
func benchDispatch(b *testing.B, ts *httptest.Server, bodies [][]byte, names []string) {
	client := ts.Client()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := names[i%len(names)]
		url := ts.URL + "/v1/classify"
		if name != "" {
			url = ts.URL + "/v2/models/" + name + "/classify"
		}
		resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[i%len(bodies)]))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bytes.NewBuffer(nil).ReadFrom(resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("HTTP %d", resp.StatusCode)
		}
	}
	b.StopTimer()
	imgs := float64(b.N) * 8
	b.ReportMetric(imgs/b.Elapsed().Seconds(), "images/s")
}

// BenchmarkRegistryDispatchSingle is the baseline: one model, named v2
// dispatch.
func BenchmarkRegistryDispatchSingle(b *testing.B) {
	_, ts, bodies := benchRegistryServer(b, 1)
	benchDispatch(b, ts, bodies, []string{"m0"})
}

// BenchmarkRegistryDispatchMulti4 round-robins over four registry entries
// in one process — the per-request cost of multi-model dispatch vs the
// single-model baseline is the registry's overhead.
func BenchmarkRegistryDispatchMulti4(b *testing.B) {
	_, ts, bodies := benchRegistryServer(b, 4)
	benchDispatch(b, ts, bodies, []string{"m0", "m1", "m2", "m3"})
}

// BenchmarkRegistryDispatchV1Alias measures the /v1 alias path through the
// registry (default-model resolution), comparable against the pre-registry
// BenchmarkServerClassify numbers.
func BenchmarkRegistryDispatchV1Alias(b *testing.B) {
	_, ts, bodies := benchRegistryServer(b, 1)
	benchDispatch(b, ts, bodies, []string{""})
}
