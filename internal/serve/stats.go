package serve

import (
	"sync"
	"time"

	"cdl/internal/core"
	"cdl/internal/energy"
)

// metrics aggregates live serving statistics: request/image counters, the
// exit distribution, dynamic OPS and the 45 nm energy counters. Workers
// update it once per micro-batch (observeBatch), so the mutex is taken per
// batch rather than per image.
type metrics struct {
	mu        sync.Mutex
	started   time.Time
	requests  int64 // classify + resume requests admitted
	resumes   int64 // resume requests admitted (edge offloads)
	rejected  int64 // 503s (queue full / shutting down)
	invalid   int64 // 4xx classify/resume requests
	cancelled int64 // requests whose context died before completion
	images    int64

	exitNames   []string
	exitCounts  []int64
	totalOps    float64
	baselineOps float64
	acc         *energy.Accumulator
}

func newMetrics(c *core.CDLN, acc *energy.Accumulator) *metrics {
	m := &metrics{
		started:     time.Now(),
		exitNames:   make([]string, c.NumExits()),
		exitCounts:  make([]int64, c.NumExits()),
		baselineOps: c.BaselineOps(),
		acc:         acc,
	}
	for e := range m.exitNames {
		m.exitNames[e] = c.ExitName(e)
	}
	return m
}

func (m *metrics) observeRequest() {
	m.mu.Lock()
	m.requests++
	m.mu.Unlock()
}

func (m *metrics) observeResume() {
	m.mu.Lock()
	m.resumes++
	m.mu.Unlock()
}

func (m *metrics) observeRejected() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

func (m *metrics) observeInvalid() {
	m.mu.Lock()
	m.invalid++
	m.mu.Unlock()
}

func (m *metrics) observeCancelled() {
	m.mu.Lock()
	m.cancelled++
	m.mu.Unlock()
}

// observeBatch charges one classified micro-batch to the counters. Jobs
// dropped for a dead context carry no record and are skipped.
func (m *metrics) observeBatch(batch []*job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range batch {
		if j.cancelled {
			continue
		}
		rec := *j.rec
		m.images++
		m.exitCounts[rec.StageIndex]++
		m.totalOps += rec.Ops
		// Records come from a validated session; Add can only fail on a
		// model/accumulator mismatch, which construction rules out.
		_ = m.acc.Add(rec)
	}
}

// ExitStat is one exit point's share of the served traffic.
type ExitStat struct {
	Name     string  `json:"name"`
	Count    int64   `json:"count"`
	Fraction float64 `json:"fraction"`
	EnergyPJ float64 `json:"energy_pj"`
}

// Stats is the /statsz payload: a consistent snapshot of the counters.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Requests      int64   `json:"requests"`
	// ResumeRequests counts the admitted /v1/resume requests — traffic
	// arriving as edge-offloaded intermediate activations rather than raw
	// images (already included in Requests).
	ResumeRequests int64 `json:"resume_requests"`
	Rejected       int64 `json:"rejected"`
	Invalid        int64 `json:"invalid"`
	// Cancelled counts requests whose context was cancelled or timed out
	// before classification completed (dropped before burning a replica
	// when the cancellation beat the worker to the job).
	Cancelled  int64 `json:"cancelled"`
	Images     int64 `json:"images"`
	QueueDepth int   `json:"queue_depth"`
	Workers    int   `json:"workers"`

	Exits []ExitStat `json:"exits"`

	MeanOps       float64 `json:"mean_ops"`
	BaselineOps   float64 `json:"baseline_ops"`
	NormalizedOps float64 `json:"normalized_ops"`
	OpsSpeedup    float64 `json:"ops_improvement_x"`

	MeanEnergyPJ     float64 `json:"mean_energy_pj"`
	TotalEnergyPJ    float64 `json:"total_energy_pj"`
	BaselineEnergyPJ float64 `json:"baseline_energy_pj"`
	NormalizedEnergy float64 `json:"normalized_energy"`
	EnergySpeedup    float64 `json:"energy_improvement_x"`
}

// snapshot assembles a Stats under the lock.
func (m *metrics) snapshot(queueDepth, workers int) Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		UptimeSeconds:  time.Since(m.started).Seconds(),
		Requests:       m.requests,
		ResumeRequests: m.resumes,
		Rejected:       m.rejected,
		Invalid:        m.invalid,
		Cancelled:      m.cancelled,
		Images:         m.images,
		QueueDepth:     queueDepth,
		Workers:        workers,
		BaselineOps:    m.baselineOps,
		Exits:          make([]ExitStat, len(m.exitNames)),
	}
	for e := range s.Exits {
		s.Exits[e] = ExitStat{
			Name:     m.exitNames[e],
			Count:    m.exitCounts[e],
			EnergyPJ: m.acc.ExitEnergy(e),
		}
		if m.images > 0 {
			s.Exits[e].Fraction = float64(m.exitCounts[e]) / float64(m.images)
		}
	}
	sum := m.acc.Summary()
	s.TotalEnergyPJ = m.acc.TotalEnergy()
	s.BaselineEnergyPJ = sum.BaselineEnergy
	if m.images > 0 {
		s.MeanOps = m.totalOps / float64(m.images)
		s.MeanEnergyPJ = sum.MeanEnergy
		if m.baselineOps > 0 {
			s.NormalizedOps = s.MeanOps / m.baselineOps
		}
		if s.NormalizedOps > 0 {
			s.OpsSpeedup = 1 / s.NormalizedOps
		}
		s.NormalizedEnergy = sum.Normalized()
		s.EnergySpeedup = sum.Improvement()
	}
	return s
}
