package serve

import (
	"sync"
	"time"

	"cdl/internal/control"
	"cdl/internal/core"
	"cdl/internal/energy"
)

// shedCause distinguishes why a request was rejected with 503 — load
// generators and the SLO controller treat a full queue (back off and
// retry) differently from a draining server (fail over) or reload churn
// (transient).
type shedCause int

const (
	shedQueueFull shedCause = iota
	shedClosed
	shedChurn
)

// metrics aggregates live serving statistics: request/image counters, the
// exit distribution, dynamic OPS, the 45 nm energy counters and the
// queue/service latency histograms. Workers update it once per
// micro-batch (observeBatch), so the mutex is taken per batch rather than
// per image.
type metrics struct {
	mu        sync.Mutex
	started   time.Time
	requests  int64 // guarded by mu; classify + resume requests admitted
	resumes   int64 // guarded by mu; resume requests admitted (edge offloads)
	rejected  int64 // guarded by mu; 503s (queue full / shutting down / reload churn)
	rejFull   int64 // guarded by mu; 503s from a full work queue
	rejClosed int64 // guarded by mu; 503s from a draining/closed pool
	rejChurn  int64 // guarded by mu; 503s from hot-swap churn outrunning dispatch retries
	invalid   int64 // guarded by mu; 4xx classify/resume requests
	cancelled int64 // guarded by mu; requests whose context died before completion
	images    int64 // guarded by mu

	exitNames   []string // immutable after construction
	exitCounts  []int64  // guarded by mu
	totalOps    float64  // guarded by mu
	baselineOps float64
	// acc's pointer is immutable; its counters are mutated and read under
	// mu (observeBatch / snapshot / promInto take the same critical
	// section).
	acc *energy.Accumulator
	// exitNode maps each global exit index to its graph node, exitOps is
	// the per-exit path cost, and nodeNames names the nodes — the
	// per-branch aggregation tables for routed models (len(nodeNames) == 1
	// for a plain linear cascade).
	exitNode  []int
	exitOps   []float64
	nodeNames []string

	// Cumulative latency histograms over every classified image: queue
	// wait (enqueue → micro-batch start), service (batch start → batch
	// done) and their sum. The controller reads the *windowed*
	// counterparts (Model.window); these are the lifetime /statsz view.
	queueLat   *control.Histogram // guarded by mu
	serviceLat *control.Histogram // guarded by mu
	totalLat   *control.Histogram // guarded by mu
}

func newMetrics(g *core.Graph, acc *energy.Accumulator) *metrics {
	m := &metrics{
		started:     time.Now(),
		exitNames:   make([]string, g.NumExits()),
		exitCounts:  make([]int64, g.NumExits()),
		baselineOps: g.BaselineOps(),
		acc:         acc,
		exitNode:    make([]int, g.NumExits()),
		exitOps:     g.ExitOps(),
		nodeNames:   make([]string, len(g.Nodes)),
		queueLat:    control.NewHistogram(),
		serviceLat:  control.NewHistogram(),
		totalLat:    control.NewHistogram(),
	}
	for e := range m.exitNames {
		m.exitNames[e] = g.ExitName(e)
		m.exitNode[e], _ = g.NodeOfExit(e)
	}
	for ni, n := range g.Nodes {
		m.nodeNames[ni] = n.Name
	}
	return m
}

func (m *metrics) observeRequest() {
	m.mu.Lock()
	m.requests++
	m.mu.Unlock()
}

func (m *metrics) observeResume() {
	m.mu.Lock()
	m.resumes++
	m.mu.Unlock()
}

func (m *metrics) observeRejected(cause shedCause) {
	m.mu.Lock()
	m.rejected++
	switch cause {
	case shedQueueFull:
		m.rejFull++
	case shedClosed:
		m.rejClosed++
	case shedChurn:
		m.rejChurn++
	}
	m.mu.Unlock()
}

func (m *metrics) observeInvalid() {
	m.mu.Lock()
	m.invalid++
	m.mu.Unlock()
}

func (m *metrics) observeCancelled() {
	m.mu.Lock()
	m.cancelled++
	m.mu.Unlock()
}

// observeBatch charges one classified micro-batch to the counters. Jobs
// dropped for a dead context carry no record and are skipped.
func (m *metrics) observeBatch(batch []*job) {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range batch {
		if j.cancelled {
			continue
		}
		rec := *j.rec
		m.images++
		m.exitCounts[rec.StageIndex]++
		m.totalOps += rec.Ops
		queueMS := float64(j.started.Sub(j.enqueued)) / float64(time.Millisecond)
		totalMS := float64(now.Sub(j.enqueued)) / float64(time.Millisecond)
		m.queueLat.Observe(queueMS)
		m.serviceLat.Observe(totalMS - queueMS)
		m.totalLat.Observe(totalMS)
		// Records come from a validated session; Add can only fail on a
		// model/accumulator mismatch, which construction rules out.
		_ = m.acc.Add(rec)
	}
}

// ExitStat is one exit point's share of the served traffic.
type ExitStat struct {
	Name     string  `json:"name"`
	Count    int64   `json:"count"`
	Fraction float64 `json:"fraction"`
	EnergyPJ float64 `json:"energy_pj"`
}

// BranchStat aggregates the exit distribution by routing-graph node: how
// much of the served traffic resolved on the trunk versus each branch
// subnetwork, and what it cost there. Present in /statsz only for routed
// models (a linear cascade is all trunk).
type BranchStat struct {
	Name     string  `json:"name"`
	Count    int64   `json:"count"`
	Fraction float64 `json:"fraction"`
	// MeanOps/MeanEnergyPJ are per image resolved on this node (whole-path
	// cost, trunk prefix included).
	MeanOps      float64 `json:"mean_ops"`
	MeanEnergyPJ float64 `json:"mean_energy_pj"`
}

// LatencyStats summarizes one latency histogram in milliseconds.
type LatencyStats struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// SummarizeLatency folds a latency histogram into the wire shape — shared
// with the edge front, which keeps its own histogram over the split
// pipeline (local exits and cloud round trips alike).
func SummarizeLatency(h *control.Histogram) LatencyStats {
	return LatencyStats{
		Count:  h.Count(),
		MeanMS: h.Mean(),
		P50MS:  h.Quantile(0.50),
		P95MS:  h.Quantile(0.95),
		P99MS:  h.Quantile(0.99),
	}
}

// LoadSummary is the compact load snapshot behind GET /statsz?summary=1:
// just the fields a fleet router needs to weight this backend — queue
// pressure and tail latency — cheap enough to poll every few hundred
// milliseconds without the cost of a full Stats snapshot or a /metricsz
// scrape. Aggregated across every registry entry: depth sums, occupancy
// and p95 take the worst model (the shed-risk signal).
type LoadSummary struct {
	Ready      bool    `json:"ready"`
	Models     int     `json:"models"`
	QueueDepth int     `json:"queue_depth"`
	QueueFrac  float64 `json:"queue_frac"`
	P95TotalMS float64 `json:"p95_total_ms"`
	Requests   int64   `json:"requests"`
	Rejected   int64   `json:"rejected"`
}

// Stats is the /statsz payload: a consistent snapshot of the counters.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Requests      int64   `json:"requests"`
	// ResumeRequests counts the admitted /v1/resume requests — traffic
	// arriving as edge-offloaded intermediate activations rather than raw
	// images (already included in Requests).
	ResumeRequests int64 `json:"resume_requests"`
	Rejected       int64 `json:"rejected"`
	// The per-cause breakdown of Rejected: a full work queue (back off
	// and retry), a draining server (fail over), hot-swap churn
	// (transient). All three ship a Retry-After header.
	RejectedQueueFull int64 `json:"rejected_queue_full"`
	RejectedClosed    int64 `json:"rejected_closed"`
	RejectedChurn     int64 `json:"rejected_churn"`
	Invalid           int64 `json:"invalid"`
	// Cancelled counts requests whose context was cancelled or timed out
	// before classification completed (dropped before burning a replica
	// when the cancellation beat the worker to the job).
	Cancelled  int64 `json:"cancelled"`
	Images     int64 `json:"images"`
	QueueDepth int   `json:"queue_depth"`
	Workers    int   `json:"workers"`

	// Per-image latency over the server's lifetime, split into queue
	// wait and micro-batch service time (TotalLatency is their sum as
	// observed end to end inside the pool).
	QueueLatency   LatencyStats `json:"queue_latency"`
	ServiceLatency LatencyStats `json:"service_latency"`
	TotalLatency   LatencyStats `json:"total_latency"`

	Exits []ExitStat `json:"exits"`
	// Branches is the exit distribution aggregated by routing-graph node
	// (trunk + branch subnetworks); absent for linear cascades.
	Branches []BranchStat `json:"branches,omitempty"`

	MeanOps       float64 `json:"mean_ops"`
	BaselineOps   float64 `json:"baseline_ops"`
	NormalizedOps float64 `json:"normalized_ops"`
	OpsSpeedup    float64 `json:"ops_improvement_x"`

	MeanEnergyPJ     float64 `json:"mean_energy_pj"`
	TotalEnergyPJ    float64 `json:"total_energy_pj"`
	BaselineEnergyPJ float64 `json:"baseline_energy_pj"`
	NormalizedEnergy float64 `json:"normalized_energy"`
	EnergySpeedup    float64 `json:"energy_improvement_x"`

	// Control is the attached SLO controller's state (absent when the
	// entry has no SLO).
	Control *ControlStatus `json:"control,omitempty"`
}

// snapshot assembles a Stats under the lock.
func (m *metrics) snapshot(queueDepth, workers int) Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		UptimeSeconds:     time.Since(m.started).Seconds(),
		Requests:          m.requests,
		ResumeRequests:    m.resumes,
		Rejected:          m.rejected,
		RejectedQueueFull: m.rejFull,
		RejectedClosed:    m.rejClosed,
		RejectedChurn:     m.rejChurn,
		Invalid:           m.invalid,
		Cancelled:         m.cancelled,
		Images:            m.images,
		QueueDepth:        queueDepth,
		Workers:           workers,
		QueueLatency:      SummarizeLatency(m.queueLat),
		ServiceLatency:    SummarizeLatency(m.serviceLat),
		TotalLatency:      SummarizeLatency(m.totalLat),
		BaselineOps:       m.baselineOps,
		Exits:             make([]ExitStat, len(m.exitNames)),
	}
	for e := range s.Exits {
		s.Exits[e] = ExitStat{
			Name:     m.exitNames[e],
			Count:    m.exitCounts[e],
			EnergyPJ: m.acc.ExitEnergy(e),
		}
		if m.images > 0 {
			s.Exits[e].Fraction = float64(m.exitCounts[e]) / float64(m.images)
		}
	}
	if len(m.nodeNames) > 1 {
		s.Branches = make([]BranchStat, len(m.nodeNames))
		ops := make([]float64, len(m.nodeNames))
		pj := make([]float64, len(m.nodeNames))
		for ni, name := range m.nodeNames {
			s.Branches[ni].Name = name
		}
		for e, cnt := range m.exitCounts {
			ni := m.exitNode[e]
			s.Branches[ni].Count += cnt
			ops[ni] += float64(cnt) * m.exitOps[e]
			pj[ni] += float64(cnt) * m.acc.ExitEnergy(e)
		}
		for ni := range s.Branches {
			if n := s.Branches[ni].Count; n > 0 {
				s.Branches[ni].MeanOps = ops[ni] / float64(n)
				s.Branches[ni].MeanEnergyPJ = pj[ni] / float64(n)
			}
			if m.images > 0 {
				s.Branches[ni].Fraction = float64(s.Branches[ni].Count) / float64(m.images)
			}
		}
	}
	sum := m.acc.Summary()
	s.TotalEnergyPJ = m.acc.TotalEnergy()
	s.BaselineEnergyPJ = sum.BaselineEnergy
	if m.images > 0 {
		s.MeanOps = m.totalOps / float64(m.images)
		s.MeanEnergyPJ = m.acc.MeanEnergy()
		if m.baselineOps > 0 {
			s.NormalizedOps = s.MeanOps / m.baselineOps
		}
		if s.NormalizedOps > 0 {
			s.OpsSpeedup = 1 / s.NormalizedOps
		}
		s.NormalizedEnergy = sum.Normalized()
		s.EnergySpeedup = sum.Improvement()
	}
	return s
}
