package serve

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"math"
	"net/http"
	"testing"

	"cdl/internal/core"
	"cdl/internal/edgecloud/wire"
	"cdl/internal/fixed"
)

func postResume(t testing.TB, url string, req ResumeRequest) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/resume", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestResumeMatchesMonolithic is the cross-tier identity check over real
// HTTP: for every split stage (and both trained and overridden δ), inputs
// that the edge prefix defers must come back from /v1/resume with records
// bit-identical to the monolithic result. δ=0.9 forces a deep-exit mix even
// when the trained thresholds exit everything at O1.
func TestResumeMatchesMonolithic(t *testing.T) {
	cdln, data := testCDLN(t, 41)
	_, ts := startServer(t, cdln, Config{Workers: 2})

	mono, err := core.NewSession(cdln)
	if err != nil {
		t.Fatal(err)
	}
	for _, delta := range []float64{-1, 0.9} {
		for split := 0; split <= len(cdln.Stages); split++ {
			edge, err := core.NewSession(cdln)
			if err != nil {
				t.Fatal(err)
			}
			var payloads []string
			var want []core.ExitRecord
			for i, s := range data[:80] {
				ref := mono.ClassifyDelta(s.X, delta)
				pre := edge.ClassifyPrefix(s.X, split, delta)
				if pre.Exited {
					if pre.Record.Label != ref.Label || pre.Record.StageIndex != ref.StageIndex ||
						pre.Record.Confidence != ref.Confidence {
						t.Fatalf("split %d sample %d: edge exit %+v != monolithic %+v", split, i, pre.Record, ref)
					}
					continue
				}
				b, err := wire.Encode(wire.Activation{
					FromStage: split,
					Pos:       pre.Pos,
					Shape:     pre.Activation.Shape(),
					Data:      pre.Activation.Data,
				}, wire.EncodingFloat64, fixed.Format{})
				if err != nil {
					t.Fatal(err)
				}
				payloads = append(payloads, base64.StdEncoding.EncodeToString(b))
				want = append(want, ref)
			}
			if len(payloads) == 0 {
				if split == 0 || delta == 0.9 {
					t.Fatalf("split %d δ=%v: no offloads; fixture degenerate", split, delta)
				}
				continue
			}
			req := ResumeRequest{Payloads: payloads}
			if delta >= 0 {
				d := delta
				req.Delta = &d
			}
			status, body := postResume(t, ts.URL, req)
			if status != http.StatusOK {
				t.Fatalf("split %d: HTTP %d: %s", split, status, body)
			}
			var out ClassifyResponse
			if err := json.Unmarshal(body, &out); err != nil {
				t.Fatal(err)
			}
			if out.Count != len(payloads) {
				t.Fatalf("split %d: count %d, want %d", split, out.Count, len(payloads))
			}
			for k, got := range out.Results {
				w := want[k]
				if got.Label != w.Label || got.Exit != w.StageName ||
					got.ExitIndex != w.StageIndex ||
					got.Confidence != w.Confidence || got.Ops != w.Ops {
					t.Fatalf("split %d δ=%v payload %d: resume %+v != monolithic %+v", split, delta, k, got, w)
				}
			}
		}
	}
}

// TestResumeBadRequests covers the defensive 4xx paths of /v1/resume.
func TestResumeBadRequests(t *testing.T) {
	cdln, data := testCDLN(t, 42)
	srv, ts := startServer(t, cdln, Config{Workers: 1, MaxRequestImages: 2})

	edge, err := core.NewSession(cdln)
	if err != nil {
		t.Fatal(err)
	}
	// Build one offloaded activation to mutate (δ=1 so the prefix never
	// exits locally, whatever the trained thresholds do on this fixture).
	var good string
	for _, s := range data {
		pre := edge.ClassifyPrefix(s.X, 1, 1)
		if pre.Exited {
			continue
		}
		b, err := wire.Encode(wire.Activation{
			FromStage: 1, Pos: pre.Pos, Shape: pre.Activation.Shape(), Data: pre.Activation.Data,
		}, wire.EncodingFloat64, fixed.Format{})
		if err != nil {
			t.Fatal(err)
		}
		good = base64.StdEncoding.EncodeToString(b)
		break
	}
	if good == "" {
		t.Fatal("no offloaded input in fixture")
	}

	reencode := func(mutate func(*wire.Activation)) string {
		raw, _ := base64.StdEncoding.DecodeString(good)
		act, err := wire.Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		mutate(&act)
		b, err := wire.Encode(act, wire.EncodingFloat64, fixed.Format{})
		if err != nil {
			t.Fatal(err)
		}
		return base64.StdEncoding.EncodeToString(b)
	}
	bad := 1.5
	cases := []struct {
		name string
		req  ResumeRequest
	}{
		{"empty", ResumeRequest{}},
		{"both forms", ResumeRequest{Payload: good, Payloads: []string{good}}},
		{"bad base64", ResumeRequest{Payload: "!!!not-base64!!!"}},
		{"not wire", ResumeRequest{Payload: base64.StdEncoding.EncodeToString([]byte("junk-bytes"))}},
		{"stage too deep", ResumeRequest{Payload: reencode(func(a *wire.Activation) { a.FromStage = 9 })}},
		{"wrong pos", ResumeRequest{Payload: reencode(func(a *wire.Activation) { a.Pos = 1 })}},
		{"wrong shape", ResumeRequest{Payload: reencode(func(a *wire.Activation) {
			a.Shape = []int{len(a.Data)}
		})}},
		{"out-of-range delta", ResumeRequest{Payload: good, Delta: &bad}},
		{"too many payloads", ResumeRequest{Payloads: []string{good, good, good}}},
	}
	for _, tc := range cases {
		if status, body := postResume(t, ts.URL, tc.req); status != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d (%s), want 400", tc.name, status, body)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/resume")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET resume: HTTP %d, want 405", resp.StatusCode)
	}
	if st := srv.Stats(); st.Invalid == 0 {
		t.Error("invalid-request counter not incremented")
	}

	// A valid resume is counted in both requests and resume_requests.
	if status, body := postResume(t, ts.URL, ResumeRequest{Payload: good}); status != http.StatusOK {
		t.Fatalf("good payload: HTTP %d (%s)", status, body)
	}
	st := srv.Stats()
	if st.ResumeRequests != 1 {
		t.Errorf("resume_requests %d, want 1", st.ResumeRequests)
	}
	if st.Requests != 1 {
		t.Errorf("requests %d, want 1", st.Requests)
	}
}

// TestParseDeltaRejectsNonFinite pins the satellite fix: NaN and ±Inf δ
// overrides must be rejected before they reach the exit rule (NaN compares
// false against every score and would silently disable early exit). JSON
// itself cannot carry NaN, so the guard is exercised directly — it protects
// any future non-JSON transport and programmatic callers.
func TestParseDeltaRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -0.1, 1.1} {
		v := bad
		if _, err := ParseDeltaOverride(&v); err == nil {
			t.Errorf("delta %v accepted", bad)
		}
	}
	if d, err := ParseDeltaOverride(nil); err != nil || d != -1 {
		t.Errorf("nil delta: (%v, %v), want (-1, nil)", d, err)
	}
	half := 0.5
	if d, err := ParseDeltaOverride(&half); err != nil || d != 0.5 {
		t.Errorf("0.5 delta: (%v, %v), want (0.5, nil)", d, err)
	}
}

// TestClassifyRejectsOutOfRangeDelta exercises the same guard end-to-end
// over HTTP for the values JSON can express.
func TestClassifyRejectsOutOfRangeDelta(t *testing.T) {
	cdln, data := testCDLN(t, 43)
	srv, ts := startServer(t, cdln, Config{Workers: 1})
	for _, bad := range []float64{-0.1, 1.1} {
		v := bad
		status, body := postClassify(t, ts.URL, ClassifyRequest{Image: data[0].X.Flatten().Data, Delta: &v})
		if status != http.StatusBadRequest {
			t.Errorf("delta %v: HTTP %d (%s), want 400", bad, status, body)
		}
	}
	if st := srv.Stats(); st.Invalid != 2 {
		t.Errorf("invalid counter %d, want 2", st.Invalid)
	}
}
