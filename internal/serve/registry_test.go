package serve

// registry_test.go covers the multi-model redesign: registry versioning,
// the v2 surface (policy shaping, detail levels, model metadata, PUT
// hot-swap), context-aware cancellation, and the acceptance-critical
// hot-swap-under-load property — swapping a model version while traffic
// flows drops zero requests (run under -race in CI).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cdl/internal/core"
	"cdl/internal/modelio"
	"cdl/internal/tensor"
	"cdl/internal/train"
)

// saveModel writes a CDLN to a temp modelio file and returns its path.
func saveModel(t testing.TB, dir, name string, cdln *core.CDLN) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := modelio.SaveCDLN(f, cdln); err != nil {
		t.Fatal(err)
	}
	return path
}

func postJSON(t testing.TB, url string, v any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func putJSON(t testing.TB, url string, v any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestRegistryVersioning pins the swap semantics: re-registering a name
// bumps the version, the entry serves the new weights, and the retired
// pool is fully drained by the time the swap call returns.
func TestRegistryVersioning(t *testing.T) {
	cdlnA, data := testCDLN(t, 51)
	cdlnB, _ := testCDLN(t, 52)
	reg := NewRegistry(Config{Workers: 2})
	defer reg.Close()

	m1, err := reg.Register("m", cdlnA)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Version() != 1 {
		t.Fatalf("first version %d, want 1", m1.Version())
	}
	if got, _ := reg.Get(""); got != m1 {
		t.Fatal("first entry is not the default")
	}
	m2, err := reg.Register("m", cdlnB)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Version() != 2 {
		t.Fatalf("swapped version %d, want 2", m2.Version())
	}
	if got, _ := reg.Get("m"); got != m2 {
		t.Fatal("Get returned the retired version after swap")
	}
	// The retired pool must reject new work (drained and closed).
	var wg sync.WaitGroup
	rec := core.ExitRecord{}
	pol := core.DefaultExitPolicy()
	err = m1.pool.submit(context.Background(), []*job{{x: data[0].X, pol: &pol, rec: &rec, wg: &wg}})
	if err != ErrClosed {
		t.Fatalf("retired pool submit: %v, want ErrClosed", err)
	}
	// The new version serves records matching its own weights.
	want, err := core.NewSession(cdlnB)
	if err != nil {
		t.Fatal(err)
	}
	got := m2Classify(t, m2, data[0].X.Flatten().Data)
	ref := want.Classify(data[0].X)
	if got.Label != ref.Label || got.ExitIndex != ref.StageIndex {
		t.Fatalf("swapped model classified %+v, want %+v", got, ref)
	}

	if err := reg.SetDefault("nope"); err == nil {
		t.Fatal("SetDefault accepted an unknown name")
	}
	if _, err := reg.Register("bad/name", cdlnA); err == nil {
		t.Fatal("Register accepted a name with a slash")
	}
}

// m2Classify pushes one image through a Model's pool directly.
func m2Classify(t testing.TB, m *Model, img []float64) ClassifyResult {
	t.Helper()
	pol := core.DefaultExitPolicy()
	b := newImageBatch(context.Background(), m, [][]float64{img}, &pol)
	if err := m.pool.submit(context.Background(), b.jobs); err != nil {
		t.Fatal(err)
	}
	b.wg.Wait()
	return v1Results(m, b.records)[0]
}

// TestV2Endpoints covers the v2 metadata and dispatch surface end to end:
// list, get, named classify/resume, 404s, and PUT hot-swap.
func TestV2Endpoints(t *testing.T) {
	cdlnA, data := testCDLN(t, 53)
	cdlnB, _ := testCDLN(t, 54)
	dir := t.TempDir()
	pathB := saveModel(t, dir, "b.cdln", cdlnB)

	srv, err := New(cdlnA, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	// List: one default entry.
	resp, err := http.Get(ts.URL + "/v2/models")
	if err != nil {
		t.Fatal(err)
	}
	var list V2ModelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if list.Default != DefaultModelName || len(list.Models) != 1 {
		t.Fatalf("list %+v", list)
	}
	info := list.Models[0]
	if !info.Default || info.Version != 1 || info.Stages != len(cdlnA.Stages) ||
		len(info.ExitOps) != cdlnA.NumExits() || info.BaselineOps <= 0 {
		t.Fatalf("model info %+v", info)
	}

	// PUT a second entry from disk, then classify on it by name.
	status, body := putJSON(t, ts.URL+"/v2/models/blue", V2PutModelRequest{Path: pathB})
	if status != http.StatusOK {
		t.Fatalf("PUT: HTTP %d: %s", status, body)
	}
	var put V2PutModelResponse
	if err := json.Unmarshal(body, &put); err != nil {
		t.Fatal(err)
	}
	if put.Model != "blue" || put.Version != 1 {
		t.Fatalf("PUT response %+v", put)
	}

	img := data[0].X.Flatten().Data
	status, body = postJSON(t, ts.URL+"/v2/models/blue/classify", V2ClassifyRequest{Image: img})
	if status != http.StatusOK {
		t.Fatalf("v2 classify: HTTP %d: %s", status, body)
	}
	var out V2ClassifyResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Model != "blue" || out.Version != 1 || out.Count != 1 {
		t.Fatalf("v2 response identity %+v", out)
	}
	wantB, err := core.NewSession(cdlnB)
	if err != nil {
		t.Fatal(err)
	}
	ref := wantB.Classify(data[0].X)
	if out.Results[0].Label != ref.Label || out.Results[0].Confidence != ref.Confidence {
		t.Fatalf("named dispatch served wrong model: %+v != %+v", out.Results[0], ref)
	}

	// Unknown model → 404 on every named route.
	for _, req := range []struct {
		method, url string
	}{
		{"POST", ts.URL + "/v2/models/ghost/classify"},
		{"POST", ts.URL + "/v2/models/ghost/resume"},
		{"GET", ts.URL + "/v2/models/ghost"},
	} {
		var status int
		if req.method == "POST" {
			status, _ = postJSON(t, req.url, V2ClassifyRequest{Image: img})
		} else {
			r, err := http.Get(req.url)
			if err != nil {
				t.Fatal(err)
			}
			r.Body.Close()
			status = r.StatusCode
		}
		if status != http.StatusNotFound {
			t.Errorf("%s %s: HTTP %d, want 404", req.method, req.url, status)
		}
	}

	// PUT with a bad path must not disturb the serving entry.
	if status, _ := putJSON(t, ts.URL+"/v2/models/blue", V2PutModelRequest{Path: filepath.Join(dir, "missing.cdln")}); status != http.StatusBadRequest {
		t.Fatalf("PUT missing file: HTTP %d, want 400", status)
	}
	if status, _ = postJSON(t, ts.URL+"/v2/models/blue/classify", V2ClassifyRequest{Image: img}); status != http.StatusOK {
		t.Fatalf("entry unusable after failed PUT: HTTP %d", status)
	}
	// Torn/garbage file likewise.
	torn := filepath.Join(dir, "torn.cdln")
	if err := os.WriteFile(torn, []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	if status, _ := putJSON(t, ts.URL+"/v2/models/blue", V2PutModelRequest{Path: torn}); status != http.StatusBadRequest {
		t.Fatalf("PUT torn file: HTTP %d, want 400", status)
	}
}

// TestV2PolicyShaping exercises the structured ExitPolicy end to end:
// depth caps (direct and via ops budget), per-stage deltas, and the
// detail levels.
func TestV2PolicyShaping(t *testing.T) {
	cdln, data := testCDLN(t, 55)
	if len(cdln.Stages) < 2 {
		t.Skip("fixture needs ≥2 stages")
	}
	srv, err := New(cdln, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	images := make([][]float64, 20)
	for i := range images {
		images[i] = data[i].X.Flatten().Data
	}
	url := ts.URL + "/v2/models/" + DefaultModelName + "/classify"
	post := func(t *testing.T, req V2ClassifyRequest) V2ClassifyResponse {
		t.Helper()
		status, body := postJSON(t, url, req)
		if status != http.StatusOK {
			t.Fatalf("HTTP %d: %s", status, body)
		}
		var out V2ClassifyResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	t.Run("max_exit forces shallow exits", func(t *testing.T) {
		zero := 0
		one := 1.0
		out := post(t, V2ClassifyRequest{Images: images,
			Policy: &PolicyRequest{Delta: &one, MaxExit: &zero}})
		for i, r := range out.Results {
			if r.ExitIndex != 0 {
				t.Fatalf("sample %d exited at %d under max_exit=0", i, r.ExitIndex)
			}
		}
		// Forced-exit labels must equal the stage classifier's own verdict.
		sess, err := core.NewSession(cdln)
		if err != nil {
			t.Fatal(err)
		}
		recs := sess.ClassifyBatchPolicy(tensors(data[:20]), core.ExitPolicy{Delta: 1, MaxExit: 0})
		for i, r := range out.Results {
			if r.Label != recs[i].Label || r.Confidence != recs[i].Confidence {
				t.Fatalf("sample %d: HTTP %+v != core %+v", i, r, recs[i])
			}
		}
	})

	t.Run("ops_budget maps to depth cap", func(t *testing.T) {
		exitOps := cdln.ExitOps()
		budget := exitOps[1] // afford stage 1, not FC
		one := 1.0
		out := post(t, V2ClassifyRequest{Images: images,
			Policy: &PolicyRequest{Delta: &one, OpsBudget: &budget}})
		for i, r := range out.Results {
			if r.ExitIndex > 1 {
				t.Fatalf("sample %d exited at %d beyond the ops budget", i, r.ExitIndex)
			}
			if r.Ops > budget {
				t.Fatalf("sample %d spent %v ops over budget %v", i, r.Ops, budget)
			}
		}
		// A budget below the cheapest exit is unsatisfiable.
		tiny := exitOps[0] / 2
		status, _ := postJSON(t, url, V2ClassifyRequest{Images: images,
			Policy: &PolicyRequest{OpsBudget: &tiny}})
		if status != http.StatusBadRequest {
			t.Fatalf("unsatisfiable budget: HTTP %d, want 400", status)
		}
	})

	t.Run("stage_deltas override per stage", func(t *testing.T) {
		// Stage 0 threshold 1 (never exits), stage 1 keeps trained: no O1
		// exits may appear.
		sd := make([]float64, len(cdln.Stages))
		sd[0] = 1
		for i := 1; i < len(sd); i++ {
			sd[i] = -1
		}
		out := post(t, V2ClassifyRequest{Images: images, Policy: &PolicyRequest{StageDeltas: sd}})
		for i, r := range out.Results {
			if r.ExitIndex == 0 {
				t.Fatalf("sample %d exited at stage 0 despite δ₀=1", i)
			}
		}
		// Wrong length → 400.
		status, _ := postJSON(t, url, V2ClassifyRequest{Images: images,
			Policy: &PolicyRequest{StageDeltas: []float64{0.5}}})
		if len(cdln.Stages) != 1 && status != http.StatusBadRequest {
			t.Fatalf("wrong stage_deltas length: HTTP %d, want 400", status)
		}
	})

	t.Run("detail levels", func(t *testing.T) {
		one := 1.0
		label := post(t, V2ClassifyRequest{Images: images[:4], Policy: &PolicyRequest{Detail: DetailLabel}})
		for i, r := range label.Results {
			if r.Ops != 0 || r.EnergyPJ != 0 || r.StageConfidences != nil {
				t.Fatalf("label detail leaked cost fields: sample %d %+v", i, r)
			}
		}
		cost := post(t, V2ClassifyRequest{Images: images[:4]})
		for i, r := range cost.Results {
			if r.Ops <= 0 || r.EnergyPJ <= 0 {
				t.Fatalf("cost detail missing cost fields: sample %d %+v", i, r)
			}
			if r.StageConfidences != nil {
				t.Fatalf("cost detail leaked trace: sample %d", i)
			}
		}
		trace := post(t, V2ClassifyRequest{Images: images[:4],
			Policy: &PolicyRequest{Delta: &one, Detail: DetailTrace}})
		for i, r := range trace.Results {
			// δ=1 forces FC: the trace must cover every stage plus FC.
			if len(r.StageConfidences) != cdln.NumExits() {
				t.Fatalf("sample %d trace length %d, want %d", i, len(r.StageConfidences), cdln.NumExits())
			}
			if last := r.StageConfidences[len(r.StageConfidences)-1]; last != r.Confidence {
				t.Fatalf("sample %d trace tail %v != confidence %v", i, last, r.Confidence)
			}
		}
		status, _ := postJSON(t, url, V2ClassifyRequest{Images: images[:1],
			Policy: &PolicyRequest{Detail: "everything"}})
		if status != http.StatusBadRequest {
			t.Fatalf("unknown detail: HTTP %d, want 400", status)
		}
	})

	t.Run("delta-only policy matches v1", func(t *testing.T) {
		d := 0.8
		v2 := post(t, V2ClassifyRequest{Images: images, Policy: &PolicyRequest{Delta: &d}})
		status, body := postClassify(t, ts.URL, ClassifyRequest{Images: images, Delta: &d})
		if status != http.StatusOK {
			t.Fatalf("v1: HTTP %d: %s", status, body)
		}
		var v1 ClassifyResponse
		if err := json.Unmarshal(body, &v1); err != nil {
			t.Fatal(err)
		}
		for i := range v2.Results {
			a, b := v2.Results[i], v1.Results[i]
			if a.Label != b.Label || a.Exit != b.Exit || a.Confidence != b.Confidence || a.Ops != b.Ops {
				t.Fatalf("sample %d: v2 %+v != v1 %+v", i, a, b)
			}
		}
	})
}

// tensors collects samples' input tensors.
func tensors(data []train.Sample) []*tensor.T {
	out := make([]*tensor.T, len(data))
	for i, s := range data {
		out[i] = s.X
	}
	return out
}

// TestV2Cancellation covers the context plumbing: a request whose context
// is already dead is rejected without touching a replica, an expired
// deadline maps to 504, and a worker drops queued jobs whose context died
// while they waited.
func TestV2Cancellation(t *testing.T) {
	cdln, data := testCDLN(t, 56)
	srv, err := New(cdln, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	img := data[0].X.Flatten().Data

	do := func(ctx context.Context, body any) int {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPost,
			"/v2/models/"+DefaultModelName+"/classify", bytes.NewReader(b)).WithContext(ctx)
		w := httptest.NewRecorder()
		srv.Handler().ServeHTTP(w, req)
		return w.Code
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if code := do(cancelled, V2ClassifyRequest{Image: img}); code != http.StatusServiceUnavailable {
		t.Fatalf("pre-cancelled context: HTTP %d, want 503", code)
	}
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if code := do(expired, V2ClassifyRequest{Image: img}); code != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: HTTP %d, want 504", code)
	}
	if st := srv.Stats(); st.Cancelled != 2 {
		t.Fatalf("cancelled counter %d, want 2", st.Cancelled)
	}
	if code := do(context.Background(), V2ClassifyRequest{Image: img, TimeoutMS: -1}); code != http.StatusBadRequest {
		t.Fatal("negative timeout accepted")
	}
}

// TestWorkerDropsDeadJobs pins the worker-side drop: jobs whose context
// dies while queued are released un-classified (cancelled flag, zero
// record) and cost the replica nothing.
func TestWorkerDropsDeadJobs(t *testing.T) {
	cdln, data := testCDLN(t, 57)
	sess, err := core.NewSession(cdln)
	if err != nil {
		t.Fatal(err)
	}
	var observed atomic.Int64
	done := func(batch []*job) {
		for _, j := range batch {
			if !j.cancelled {
				observed.Add(1)
			}
		}
	}
	p := newPool(nil, 16, 8, 0, done) // no workers yet: jobs sit in the queue
	ctx, cancel := context.WithCancel(context.Background())
	pol := core.DefaultExitPolicy()
	var wg sync.WaitGroup
	recs := make([]core.ExitRecord, 4)
	jobs := make([]*job, 4)
	for i := range jobs {
		jobs[i] = &job{ctx: ctx, x: data[i].X, pol: &pol, rec: &recs[i], wg: &wg}
	}
	if err := p.submit(ctx, jobs); err != nil {
		t.Fatal(err)
	}
	cancel() // die in the queue
	p.wg.Add(1)
	go p.worker(sess, done)
	wg.Wait()
	for i, j := range jobs {
		if !j.cancelled {
			t.Fatalf("job %d not marked cancelled", i)
		}
		if recs[i].StageName != "" {
			t.Fatalf("job %d was classified after cancellation: %+v", i, recs[i])
		}
	}
	if observed.Load() != 0 {
		t.Fatalf("metrics observed %d cancelled jobs", observed.Load())
	}
	p.close()
}

// TestRegistryHotSwapUnderLoad is the acceptance test for atomic hot-swap:
// sustained classify load (v1 and v2, several clients) while the default
// model is repeatedly PUT-swapped between two versions. Zero requests may
// fail or be dropped, and after the last swap the server must serve the
// final version's exact records. Run under -race in CI.
func TestRegistryHotSwapUnderLoad(t *testing.T) {
	cdlnA, data := testCDLN(t, 58)
	cdlnB, _ := testCDLN(t, 59)
	dir := t.TempDir()
	paths := []string{
		saveModel(t, dir, "a.cdln", cdlnA),
		saveModel(t, dir, "b.cdln", cdlnB),
	}

	srv, err := New(cdlnA, Config{Workers: 4, MaxBatch: 8, BatchWindow: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	const clients = 6
	const perClient = 30
	const swaps = 12

	var failures atomic.Int64
	var served atomic.Int64
	errCh := make(chan error, clients+1)
	var wg sync.WaitGroup

	// Swapper: alternate versions as fast as the drain allows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < swaps; k++ {
			status, body := putJSON(t, ts.URL+"/v2/models/"+DefaultModelName,
				V2PutModelRequest{Path: paths[k%2]})
			if status != http.StatusOK {
				errCh <- fmt.Errorf("swap %d: HTTP %d: %s", k, status, body)
				return
			}
		}
		errCh <- nil
	}()

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				images := [][]float64{
					data[(c*perClient+k)%len(data)].X.Flatten().Data,
					data[(c+k)%len(data)].X.Flatten().Data,
				}
				var status int
				var body []byte
				if k%2 == 0 {
					status, body = postClassify(t, ts.URL, ClassifyRequest{Images: images})
				} else {
					status, body = postJSON(t, ts.URL+"/v2/models/"+DefaultModelName+"/classify",
						V2ClassifyRequest{Images: images})
				}
				if status != http.StatusOK {
					failures.Add(1)
					errCh <- fmt.Errorf("client %d request %d: HTTP %d: %s", c, k, status, body)
					return
				}
				served.Add(1)
			}
			errCh <- nil
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	if failures.Load() != 0 {
		t.Fatalf("%d requests failed during hot swap", failures.Load())
	}
	if served.Load() != clients*perClient {
		t.Fatalf("served %d of %d requests", served.Load(), clients*perClient)
	}

	// The last swap installed paths[(swaps-1)%2]; the server must now
	// produce that model's exact records.
	final := []*core.CDLN{cdlnA, cdlnB}[(swaps-1)%2]
	sess, err := core.NewSession(final)
	if err != nil {
		t.Fatal(err)
	}
	var list V2ModelsResponse
	resp, err := http.Get(ts.URL + "/v2/models")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v := list.Models[0].Version; v != swaps+1 {
		t.Fatalf("final version %d, want %d (initial + %d swaps)", v, swaps+1, swaps)
	}
	for i := 0; i < 10; i++ {
		status, body := postClassify(t, ts.URL, ClassifyRequest{Image: data[i].X.Flatten().Data})
		if status != http.StatusOK {
			t.Fatalf("post-swap classify: HTTP %d", status)
		}
		var out ClassifyResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		ref := sess.Classify(data[i].X)
		got := out.Results[0]
		if got.Label != ref.Label || got.Confidence != ref.Confidence || got.Ops != ref.Ops {
			t.Fatalf("post-swap sample %d: %+v != final model %+v", i, got, ref)
		}
	}
}
