// v2.go is the multi-model request surface: every route names its model,
// the request body carries a structured ExitPolicy instead of a lone δ,
// and PUT hot-swaps a model version without dropping traffic. The /v1
// routes remain as aliases onto the registry's default model; /v2 is the
// surface that exposes what the registry actually supports.
package serve

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"

	"cdl/internal/core"
	"cdl/internal/obs"
)

// PolicyRequest is the wire form of a per-request exit policy (v2 bodies,
// "policy" field). All fields are optional; the zero value keeps the
// model's trained behaviour.
type PolicyRequest struct {
	// Delta overrides the confidence threshold for every stage; finite, in
	// [0,1].
	Delta *float64 `json:"delta,omitempty"`
	// StageDeltas overrides the threshold per stage; its length must equal
	// the model's stage count, and each entry must be in [0,1] or negative
	// (negative = keep Delta / the trained value for that stage).
	StageDeltas []float64 `json:"stage_deltas,omitempty"`
	// MaxExit caps cascade depth: inputs still active at this path depth
	// exit there unconditionally (0-based stage index on a linear model;
	// on a routed model the cap counts stages along the root-to-exit path;
	// the graph's max depth means the deepest terminator, i.e. no cap).
	MaxExit *int `json:"max_exit,omitempty"`
	// OpsBudget caps the per-input dynamic operation count: the cascade is
	// truncated at the deepest exit whose cost fits the budget. Combines
	// with MaxExit by taking the shallower cap.
	OpsBudget *float64 `json:"ops_budget,omitempty"`
	// Detail selects the record detail level: "label" (prediction only),
	// "cost" (default: ops + energy accounting, the /v1 shape) or "trace"
	// (cost plus the winning confidence at every evaluated exit).
	Detail string `json:"detail,omitempty"`
}

// Detail levels for PolicyRequest.Detail.
const (
	DetailLabel = "label"
	DetailCost  = "cost"
	DetailTrace = "trace"
)

// resolve validates the wire policy against a model once, returning the
// core policy the pool threads through to Session.ClassifyBatch and the
// normalized detail level.
func (p *PolicyRequest) resolve(m *Model) (core.ExitPolicy, string, *requestError) {
	pol := core.DefaultExitPolicy()
	detail := DetailCost
	if p == nil {
		return pol, detail, nil
	}
	delta, err := ParseDeltaOverride(p.Delta)
	if err != nil {
		return pol, "", badRequest("policy: %s", err.Error())
	}
	pol.Delta = delta
	if p.StageDeltas != nil {
		if len(p.StageDeltas) != len(m.cdln.Stages) {
			return pol, "", badRequest("policy: %d stage deltas for %d stages", len(p.StageDeltas), len(m.cdln.Stages))
		}
		sd := make([]float64, len(p.StageDeltas))
		for i, d := range p.StageDeltas {
			if math.IsNaN(d) || math.IsInf(d, 0) || d > 1 {
				return pol, "", badRequest("policy: stage %d delta %v must be negative (keep) or in [0,1]", i, d)
			}
			sd[i] = d
		}
		pol.StageDeltas = sd
	}
	if p.MaxExit != nil {
		me := *p.MaxExit
		if me < 0 || me > m.graph.MaxDepth() {
			return pol, "", badRequest("policy: max_exit %d outside [0,%d]", me, m.graph.MaxDepth())
		}
		pol.MaxExit = me
	}
	if p.OpsBudget != nil {
		me, err := m.graph.MaxExitForOps(*p.OpsBudget)
		if err != nil {
			return pol, "", badRequest("policy: %v", err)
		}
		if pol.MaxExit < 0 || me < pol.MaxExit {
			pol.MaxExit = me
		}
	}
	switch p.Detail {
	case "", DetailCost:
	case DetailLabel:
		detail = DetailLabel
	case DetailTrace:
		detail = DetailTrace
		pol.Trace = true
	default:
		return pol, "", badRequest("policy: unknown detail %q (want %q, %q or %q)",
			p.Detail, DetailLabel, DetailCost, DetailTrace)
	}
	// The field checks above are the full CDLN.ValidatePolicy contract
	// phrased as per-field 400s (core/policy_test.go pins the core side);
	// no second validation pass — one source of truth per rule.
	return pol, detail, nil
}

// V2ClassifyRequest is the POST /v2/models/{model}/classify payload:
// images as in /v1, a structured exit policy, and an optional per-request
// deadline after which the request is abandoned wherever it is (queued
// requests are dropped before touching a replica).
type V2ClassifyRequest struct {
	Image     []float64      `json:"image,omitempty"`
	Images    [][]float64    `json:"images,omitempty"`
	Policy    *PolicyRequest `json:"policy,omitempty"`
	TimeoutMS int            `json:"timeout_ms,omitempty"`
}

// V2ResumeRequest is the POST /v2/models/{model}/resume payload.
type V2ResumeRequest struct {
	Payload   string         `json:"payload,omitempty"`
	Payloads  []string       `json:"payloads,omitempty"`
	Policy    *PolicyRequest `json:"policy,omitempty"`
	TimeoutMS int            `json:"timeout_ms,omitempty"`
}

// V2Result is one image's outcome on the v2 surface. The cost fields are
// omitted at detail level "label"; StageConfidences is present only at
// detail level "trace".
type V2Result struct {
	Label     int    `json:"label"`
	Exit      string `json:"exit"`
	ExitIndex int    `json:"exit_index"`
	// Node is the routing-graph node that resolved the input (0 = trunk,
	// omitted for linear models).
	Node             int       `json:"node,omitempty"`
	Confidence       float64   `json:"confidence"`
	Ops              float64   `json:"ops,omitempty"`
	NormalizedOps    float64   `json:"normalized_ops,omitempty"`
	EnergyPJ         float64   `json:"energy_pj,omitempty"`
	StageConfidences []float64 `json:"stage_confidences,omitempty"`
}

// V2ClassifyResponse is the v2 classify/resume response: the /v1 result
// shape plus the model identity that served it (name and version matter
// once hot-swap exists). At detail level "trace" with a timeout_ms set,
// DeadlineUnixMS surfaces the resolved absolute deadline the request ran
// under (Unix milliseconds) — the observability hook for debugging
// client-side timeout budgets against server clocks.
type V2ClassifyResponse struct {
	Model          string     `json:"model"`
	Version        int        `json:"version"`
	Results        []V2Result `json:"results"`
	Count          int        `json:"count"`
	DeadlineUnixMS int64      `json:"deadline_unix_ms,omitempty"`
	// TraceID and Spans carry the request's span timeline (queue wait,
	// batch grouping, every executed stage, route decisions, exits). They
	// appear when the client sent an X-Trace-Id header or asked for detail
	// level "trace".
	TraceID string     `json:"trace_id,omitempty"`
	Spans   []obs.Span `json:"spans,omitempty"`
}

// v2Trace fills the response's trace fields: always when the client
// propagated an ID (finishTrace), additionally at detail level "trace"
// even without a client-sent header.
func (resp *V2ClassifyResponse) v2Trace(w http.ResponseWriter, r *http.Request, detail string) {
	resp.TraceID, resp.Spans = finishTrace(w, r)
	if resp.TraceID != "" || detail != DetailTrace {
		return
	}
	if tr := obs.FromContext(r.Context()); tr != nil {
		resp.TraceID = tr.ID()
		resp.Spans = tr.Spans()
	}
}

// v2Results renders records at the requested detail level.
func v2Results(m *Model, records []core.ExitRecord, detail string) []V2Result {
	out := make([]V2Result, len(records))
	baseOps := m.metrics.baselineOps
	for i, rec := range records {
		res := V2Result{
			Label:      rec.Label,
			Exit:       rec.StageName,
			ExitIndex:  rec.StageIndex,
			Node:       rec.Node,
			Confidence: rec.Confidence,
		}
		if detail != DetailLabel {
			res.Ops = rec.Ops
			res.EnergyPJ = m.metrics.acc.ExitEnergy(rec.StageIndex)
			if baseOps > 0 {
				res.NormalizedOps = rec.Ops / baseOps
			}
		}
		if detail == DetailTrace {
			res.StageConfidences = rec.Trace
		}
		out[i] = res
	}
	return out
}

// MaxTimeoutMS caps the per-request timeout_ms at 10 minutes: a larger
// value cannot mean anything on a path whose queue drains in seconds, so
// it is almost certainly a unit confusion (seconds or nanoseconds pasted
// into a millisecond field) and is rejected rather than silently honored.
const MaxTimeoutMS = 600_000

// requestContext applies an optional client deadline to the request
// context. Zero keeps the connection-scoped context (cancelled when the
// client disconnects); positive values additionally bound queue + compute
// time. Values outside [0, MaxTimeoutMS] are rejected with 400.
func requestContext(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc, *requestError) {
	if timeoutMS < 0 {
		return nil, nil, badRequest("timeout_ms %d must be ≥ 0", timeoutMS)
	}
	if timeoutMS > MaxTimeoutMS {
		return nil, nil, badRequest("timeout_ms %d beyond the maximum %d (10 minutes) — check the unit", timeoutMS, MaxTimeoutMS)
	}
	if timeoutMS == 0 {
		return r.Context(), func() {}, nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), time.Duration(timeoutMS)*time.Millisecond)
	return ctx, cancel, nil
}

func (s *Server) handleV2Classify(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("model")
	m0, err := s.reg.Get(name)
	if err != nil {
		WriteError(w, http.StatusNotFound, fmt.Sprintf("unknown model %q (have: %s)", name, s.reg.names()))
		return
	}
	maxBody := int64(s.cfg.MaxRequestImages)*int64(m0.inWidth)*32 + 16384
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	var req V2ClassifyRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		m0.metrics.observeInvalid()
		WriteError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	ctx, cancel, rerr := requestContext(r, req.TimeoutMS)
	if rerr != nil {
		m0.metrics.observeInvalid()
		WriteError(w, rerr.status, rerr.msg)
		return
	}
	defer cancel()

	detail := DetailCost
	creq := ClassifyRequest{Image: req.Image, Images: req.Images}
	build := func(m *Model) (*jobBatch, *requestError) {
		images, err := creq.NormalizeImages(m.inWidth, s.cfg.MaxRequestImages, m.cdln.Arch.Net.InShape)
		if err != nil {
			return nil, badRequest("%s", err.Error())
		}
		if req.Policy == nil {
			// No explicit policy: inherit the entry's current serve
			// policy (identity unless an SLO controller is actuating). A
			// present "policy" object — even an empty one — is explicit
			// and pins the trained behaviour.
			return newImageBatch(ctx, m, images, m.servePolicy()), nil
		}
		pol, d, rerr := req.Policy.resolve(m)
		if rerr != nil {
			return nil, rerr
		}
		detail = d
		return newImageBatch(ctx, m, images, &pol), nil
	}
	m, records, ok := s.dispatch(w, ctx, name, build)
	if !ok {
		return
	}
	resp := V2ClassifyResponse{
		Model: m.name, Version: m.version,
		Results: v2Results(m, records, detail), Count: len(records),
	}
	if detail == DetailTrace {
		if dl, ok := ctx.Deadline(); ok {
			resp.DeadlineUnixMS = dl.UnixMilli()
		}
	}
	resp.v2Trace(w, r, detail)
	WriteJSON(w, http.StatusOK, resp)
}

func (s *Server) handleV2Resume(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("model")
	m0, err := s.reg.Get(name)
	if err != nil {
		WriteError(w, http.StatusNotFound, fmt.Sprintf("unknown model %q (have: %s)", name, s.reg.names()))
		return
	}
	maxBody := int64(s.cfg.MaxRequestImages)*int64(base64.StdEncoding.EncodedLen(m0.maxResumeWire)+4) + 16384
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	var req V2ResumeRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		m0.metrics.observeInvalid()
		WriteError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	ctx, cancel, rerr := requestContext(r, req.TimeoutMS)
	if rerr != nil {
		m0.metrics.observeInvalid()
		WriteError(w, rerr.status, rerr.msg)
		return
	}
	defer cancel()

	detail := DetailCost
	rreq := ResumeRequest{Payload: req.Payload, Payloads: req.Payloads}
	build := func(m *Model) (*jobBatch, *requestError) {
		payloads, rerr := rreq.normalizePayloads(s.cfg.MaxRequestImages)
		if rerr != nil {
			return nil, rerr
		}
		if req.Policy == nil {
			return newResumeBatch(ctx, m, payloads, m.servePolicy(), true)
		}
		pol, d, rerr := req.Policy.resolve(m)
		if rerr != nil {
			return nil, rerr
		}
		detail = d
		return newResumeBatch(ctx, m, payloads, &pol, false)
	}
	m, records, ok := s.dispatch(w, ctx, name, build)
	if !ok {
		return
	}
	resp := V2ClassifyResponse{
		Model: m.name, Version: m.version,
		Results: v2Results(m, records, detail), Count: len(records),
	}
	if detail == DetailTrace {
		if dl, ok := ctx.Deadline(); ok {
			resp.DeadlineUnixMS = dl.UnixMilli()
		}
	}
	resp.v2Trace(w, r, detail)
	WriteJSON(w, http.StatusOK, resp)
	m.metrics.observeResume()
}

// ModelInfo is one registry entry's metadata on GET /v2/models: identity,
// cascade structure, thresholds and per-exit op costs — what a client
// needs to shape an ExitPolicy (max_exit indices, ops_budget scale).
type ModelInfo struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
	Path    string `json:"path,omitempty"`
	Default bool   `json:"default"`
	Arch    string `json:"arch"`
	Stages  int    `json:"stages"`
	// Delta and StageDeltas are the model's trained thresholds (the values
	// a request policy overrides).
	Delta       float64   `json:"delta"`
	StageDeltas []float64 `json:"stage_deltas,omitempty"`
	// ExitNames and ExitOps describe the exit points in the routing
	// graph's global exit order (trunk stages then FC, then each branch's;
	// cascade order for linear models); BaselineOps is one full trunk
	// forward pass.
	ExitNames   []string  `json:"exit_names"`
	ExitOps     []float64 `json:"exit_ops"`
	BaselineOps float64   `json:"baseline_ops"`
	// MaxDepth is the deepest root-to-exit path length (equals Stages for
	// linear models) — the max_exit scale of a request policy.
	MaxDepth int `json:"max_depth"`
	// Branches describes the routing graph's branch subnetworks, absent
	// for linear models.
	Branches []BranchInfo `json:"branches,omitempty"`
	Workers  int          `json:"workers"`
	// Images is the number of images this version has classified.
	Images int64 `json:"images"`
}

// BranchInfo is one branch subnetwork's metadata on GET /v2/models: what
// a client needs to target PUT /v2/models/{model}/branches/{branch} and
// to read branch-qualified exit names.
type BranchInfo struct {
	Name string `json:"name"`
	// Parent/RouterStage locate the branch: it is entered when the parent
	// node's router at that stage selects it.
	Parent      string `json:"parent"`
	RouterStage int    `json:"router_stage"`
	Stages      int    `json:"stages"`
	// Labels maps the branch's local class indices to trunk classes.
	Labels []int `json:"labels"`
}

// V2ModelsResponse is the GET /v2/models payload.
type V2ModelsResponse struct {
	Default string      `json:"default"`
	Models  []ModelInfo `json:"models"`
}

// info assembles a ModelInfo snapshot.
func (m *Model) info(isDefault bool) ModelInfo {
	c := m.cdln
	g := m.graph
	names := make([]string, g.NumExits())
	for i := range names {
		names[i] = g.ExitName(i)
	}
	var stageDeltas []float64
	if c.StageDeltas != nil {
		stageDeltas = append([]float64(nil), c.StageDeltas...)
	}
	var branches []BranchInfo
	for ni := 1; ni < len(g.Nodes); ni++ {
		n := g.Nodes[ni]
		parent, stage := g.ParentOf(ni)
		branches = append(branches, BranchInfo{
			Name:        n.Name,
			Parent:      g.Nodes[parent].Name,
			RouterStage: stage,
			Stages:      len(n.Model.Stages),
			Labels:      append([]int(nil), n.Labels...),
		})
	}
	return ModelInfo{
		Name:        m.name,
		Version:     m.version,
		Path:        m.path,
		Default:     isDefault,
		Arch:        c.Arch.Name,
		Stages:      len(c.Stages),
		Delta:       c.Delta,
		StageDeltas: stageDeltas,
		ExitNames:   names,
		ExitOps:     append([]float64(nil), m.exitOps...),
		BaselineOps: c.BaselineOps(),
		MaxDepth:    g.MaxDepth(),
		Branches:    branches,
		Workers:     m.workers,
		Images:      m.Stats().Images,
	}
}

func (s *Server) handleModelsList(w http.ResponseWriter, r *http.Request) {
	def := s.reg.DefaultName()
	models := s.reg.Models()
	resp := V2ModelsResponse{Default: def, Models: make([]ModelInfo, len(models))}
	for i, m := range models {
		resp.Models[i] = m.info(m.name == def)
	}
	WriteJSON(w, http.StatusOK, resp)
}

func (s *Server) handleModelGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("model")
	m, err := s.reg.Get(name)
	if err != nil {
		WriteError(w, http.StatusNotFound, fmt.Sprintf("unknown model %q (have: %s)", name, s.reg.names()))
		return
	}
	WriteJSON(w, http.StatusOK, m.info(m.name == s.reg.DefaultName()))
}

// V2PutModelRequest is the PUT /v2/models/{model} payload: the modelio
// file to load. The file is fully parsed, validated and warmed before the
// swap, so a bad path never displaces the serving version. This is an
// admin surface — deploy it behind the same trust boundary as the process
// itself (the path is read from the server's filesystem).
type V2PutModelRequest struct {
	Path string `json:"path"`
	// Default, when true, also makes this entry the registry default (the
	// /v1 alias target).
	Default bool `json:"default,omitempty"`
}

// V2PutModelResponse reports the published version.
type V2PutModelResponse struct {
	Model   string  `json:"model"`
	Version int     `json:"version"`
	Arch    string  `json:"arch"`
	Stages  int     `json:"stages"`
	Delta   float64 `json:"delta"`
}

func (s *Server) handleModelPut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("model")
	if err := validName(name); err != nil {
		WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	var req V2PutModelRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		WriteError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if req.Path == "" {
		WriteError(w, http.StatusBadRequest, `missing "path"`)
		return
	}
	m, err := s.reg.Load(name, req.Path)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		WriteError(w, status, err.Error())
		return
	}
	if req.Default {
		if err := s.reg.SetDefault(name); err != nil {
			WriteError(w, http.StatusInternalServerError, err.Error())
			return
		}
	}
	WriteJSON(w, http.StatusOK, V2PutModelResponse{
		Model: m.name, Version: m.version,
		Arch: m.cdln.Arch.Name, Stages: len(m.cdln.Stages), Delta: m.cdln.Delta,
	})
}

// V2PutBranchRequest is the PUT /v2/models/{model}/branches/{branch}
// payload: the modelio CDLN file holding the replacement branch cascade.
// Same trust boundary as PUT /v2/models/{model}.
type V2PutBranchRequest struct {
	Path string `json:"path"`
}

// V2PutBranchResponse reports the published version after a branch swap.
type V2PutBranchResponse struct {
	Model   string `json:"model"`
	Branch  string `json:"branch"`
	Version int    `json:"version"`
}

// handleBranchPut hot-swaps one branch subnetwork of a routed model: the
// rest of the graph keeps serving its current weights, and the swap obeys
// the same warm-before-publish, drain-after contract as a whole-model
// reload — zero dropped requests.
func (s *Server) handleBranchPut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("model")
	branch := r.PathValue("branch")
	if err := validName(branch); err != nil {
		WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	if _, err := s.reg.Get(name); err != nil {
		WriteError(w, http.StatusNotFound, fmt.Sprintf("unknown model %q (have: %s)", name, s.reg.names()))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	var req V2PutBranchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		WriteError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if req.Path == "" {
		WriteError(w, http.StatusBadRequest, `missing "path"`)
		return
	}
	m, err := s.reg.LoadBranch(name, branch, req.Path)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		WriteError(w, status, err.Error())
		return
	}
	WriteJSON(w, http.StatusOK, V2PutBranchResponse{Model: m.Name(), Branch: branch, Version: m.Version()})
}
