package nn

import (
	"math/rand"
	"strings"
	"testing"

	"cdl/internal/tensor"
)

func testNet(seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	net := NewNetwork([]int{1, 8, 8},
		NewConv2D("C1", 1, 2, 3),
		NewSigmoid("C1.act"),
		NewMaxPool2D("P1", 2),
		NewFlatten("flat"),
		NewDense("FC", 2*3*3, 4),
		NewSigmoid("FC.act"),
	)
	InitNetwork(net, rng)
	return net
}

func TestNetworkShapes(t *testing.T) {
	net := testNet(1)
	if got := net.OutShape(); !shapeEq(got, []int{4}) {
		t.Errorf("OutShape = %v, want [4]", got)
	}
	if got := net.ShapeAt(0); !shapeEq(got, []int{1, 8, 8}) {
		t.Errorf("ShapeAt(0) = %v", got)
	}
	if got := net.ShapeAt(3); !shapeEq(got, []int{2, 3, 3}) {
		t.Errorf("ShapeAt(3) = %v, want [2 3 3]", got)
	}
}

func TestNetworkActivationsConsistentWithForward(t *testing.T) {
	net := testNet(2)
	rng := rand.New(rand.NewSource(3))
	x := tensor.New(1, 8, 8)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	acts := net.Activations(x)
	if len(acts) != len(net.Layers)+1 {
		t.Fatalf("Activations len = %d, want %d", len(acts), len(net.Layers)+1)
	}
	out := net.Forward(x)
	if !tensor.AllClose(acts[len(acts)-1], out, 1e-12) {
		t.Error("final activation != Forward output")
	}
}

func TestForwardRangeComposes(t *testing.T) {
	net := testNet(4)
	rng := rand.New(rand.NewSource(5))
	x := tensor.New(1, 8, 8)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	full := net.Forward(x)
	mid := net.ForwardRange(x, 0, 3)
	end := net.ForwardRange(mid, 3, len(net.Layers))
	if !tensor.AllClose(full, end, 1e-12) {
		t.Error("ForwardRange composition != full Forward (early-exit resume broken)")
	}
}

func TestForwardRangeBounds(t *testing.T) {
	net := testNet(6)
	x := tensor.New(1, 8, 8)
	for _, r := range [][2]int{{-1, 2}, {0, 99}, {4, 2}} {
		func(from, to int) {
			defer func() {
				if recover() == nil {
					t.Errorf("ForwardRange(%d,%d) did not panic", from, to)
				}
			}()
			net.ForwardRange(x, from, to)
		}(r[0], r[1])
	}
}

func TestCloneSharesWeightsNotGrads(t *testing.T) {
	net := testNet(7)
	clone := net.Clone()
	p0 := net.Params()[0]
	c0 := clone.Params()[0]
	if &p0.W.Data[0] != &c0.W.Data[0] {
		t.Error("Clone should share weight storage")
	}
	if &p0.G.Data[0] == &c0.G.Data[0] {
		t.Error("Clone must not share gradient storage")
	}

	rng := rand.New(rand.NewSource(8))
	x := tensor.New(1, 8, 8)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	a := net.Forward(x)
	b := clone.Forward(x)
	if !tensor.AllClose(a, b, 1e-12) {
		t.Error("Clone produces different outputs")
	}
}

func TestZeroGradAndNumParams(t *testing.T) {
	net := testNet(9)
	rng := rand.New(rand.NewSource(10))
	x := tensor.New(1, 8, 8)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	out := net.Forward(x)
	net.Backward(MSE{}.Grad(out, OneHot(0, 4)))
	nonzero := false
	for _, p := range net.Params() {
		for _, g := range p.G.Data {
			if g != 0 {
				nonzero = true
			}
		}
	}
	if !nonzero {
		t.Fatal("Backward accumulated no gradient")
	}
	net.ZeroGrad()
	for _, p := range net.Params() {
		for _, g := range p.G.Data {
			if g != 0 {
				t.Fatal("ZeroGrad left nonzero gradient")
			}
		}
	}
	// conv: 2*1*3*3+2 = 20, dense: 4*18+4 = 76 → 96
	if got := net.NumParams(); got != 96 {
		t.Errorf("NumParams = %d, want 96", got)
	}
}

func TestLayerIndexAndSummary(t *testing.T) {
	net := testNet(11)
	if i := net.LayerIndex("P1"); i != 2 {
		t.Errorf("LayerIndex(P1) = %d, want 2", i)
	}
	if i := net.LayerIndex("nope"); i != -1 {
		t.Errorf("LayerIndex(nope) = %d, want -1", i)
	}
	s := net.Summary()
	for _, name := range []string{"C1", "P1", "FC", "total params"} {
		if !strings.Contains(s, name) {
			t.Errorf("Summary missing %q:\n%s", name, s)
		}
	}
}

func TestPredictDeterministic(t *testing.T) {
	net := testNet(12)
	x := tensor.New(1, 8, 8)
	x.Fill(0.5)
	a, b := net.Predict(x), net.Predict(x)
	if a != b {
		t.Error("Predict not deterministic")
	}
	if a < 0 || a >= 4 {
		t.Errorf("Predict out of range: %d", a)
	}
}

func TestArch6LayerShapes(t *testing.T) {
	a := Arch6Layer(rand.New(rand.NewSource(1)))
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Table I: C1 24x24x6, P1 12x12x6, C2 8x8x12, P2 4x4x12, FC 10.
	checks := []struct {
		layer string
		shape []int
	}{
		{"C1", []int{6, 24, 24}},
		{"P1", []int{6, 12, 12}},
		{"C2", []int{12, 8, 8}},
		{"P2", []int{12, 4, 4}},
		{"FC", []int{10}},
	}
	for _, c := range checks {
		idx := a.Net.LayerIndex(c.layer)
		if idx < 0 {
			t.Fatalf("layer %s missing", c.layer)
		}
		got := a.Net.ShapeAt(idx + 1)
		if !shapeEq(got, c.shape) {
			t.Errorf("%s out shape = %v, want %v (Table I)", c.layer, got, c.shape)
		}
	}
	if got := a.TapFeatureLen(0); got != 6*12*12 {
		t.Errorf("O1 feature len = %d, want %d", got, 6*12*12)
	}
}

func TestArch8LayerShapes(t *testing.T) {
	a := Arch8Layer(rand.New(rand.NewSource(1)))
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Table II: C1 26x26x3, P1 13x13x3, C2 10x10x6, P2 5x5x6, C3 3x3x9,
	// P3 3x3x9, FC 10.
	checks := []struct {
		layer string
		shape []int
	}{
		{"C1", []int{3, 26, 26}},
		{"P1", []int{3, 13, 13}},
		{"C2", []int{6, 10, 10}},
		{"P2", []int{6, 5, 5}},
		{"C3", []int{9, 3, 3}},
		{"P3", []int{9, 3, 3}},
		{"FC", []int{10}},
	}
	for _, c := range checks {
		idx := a.Net.LayerIndex(c.layer)
		if idx < 0 {
			t.Fatalf("layer %s missing", c.layer)
		}
		got := a.Net.ShapeAt(idx + 1)
		if !shapeEq(got, c.shape) {
			t.Errorf("%s out shape = %v, want %v (Table II)", c.layer, got, c.shape)
		}
	}
	if len(a.Taps) != 3 {
		t.Errorf("8-layer should expose 3 taps (O1,O2,O3 candidates), got %d", len(a.Taps))
	}
	if got := a.TapFeatureLen(0); got != 3*13*13 {
		t.Errorf("O1 feature len = %d, want %d", got, 3*13*13)
	}
	if got := a.TapFeatureLen(1); got != 6*5*5 {
		t.Errorf("O2 feature len = %d, want %d", got, 6*5*5)
	}
}

func TestArchDeterministicInit(t *testing.T) {
	a := Arch6Layer(rand.New(rand.NewSource(42)))
	b := Arch6Layer(rand.New(rand.NewSource(42)))
	pa, pb := a.Net.Params(), b.Net.Params()
	for i := range pa {
		if !tensor.Equal(pa[i].W, pb[i].W) {
			t.Fatalf("param %s differs across same-seed inits", pa[i].Name)
		}
	}
}
