package nn

import (
	"math"
	"math/rand"
)

// XavierConv initializes a Conv2D layer with Glorot/Xavier uniform weights
// scaled by fan-in and fan-out (fan = maps × k²), the standard scheme for
// sigmoid networks; biases start at zero.
func XavierConv(c *Conv2D, rng *rand.Rand) {
	fanIn := float64(c.inC * c.k * c.k)
	fanOut := float64(c.outC * c.k * c.k)
	limit := math.Sqrt(6.0 / (fanIn + fanOut))
	for i := range c.weight.W.Data {
		c.weight.W.Data[i] = (rng.Float64()*2 - 1) * limit
	}
	c.bias.W.Zero()
}

// XavierDense initializes a Dense layer with Glorot/Xavier uniform weights;
// biases start at zero.
func XavierDense(d *Dense, rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(d.in+d.out))
	for i := range d.weight.W.Data {
		d.weight.W.Data[i] = (rng.Float64()*2 - 1) * limit
	}
	d.bias.W.Zero()
}

// InitNetwork applies Xavier initialization to every Conv2D and Dense layer
// in the network, drawing from rng in layer order (deterministic for a
// fixed seed).
func InitNetwork(n *Network, rng *rand.Rand) {
	for _, l := range n.Layers {
		switch t := l.(type) {
		case *Conv2D:
			XavierConv(t, rng)
		case *Dense:
			XavierDense(t, rng)
		}
	}
}
