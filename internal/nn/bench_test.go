package nn

import (
	"math/rand"
	"testing"

	"cdl/internal/tensor"
)

func benchInput(seed int64) *tensor.T {
	x := tensor.New(1, 28, 28)
	r := rand.New(rand.NewSource(seed))
	for i := range x.Data {
		x.Data[i] = r.Float64()
	}
	return x
}

func BenchmarkArch6Forward(b *testing.B) {
	net := Arch6Layer(rand.New(rand.NewSource(1))).Net
	x := benchInput(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}

func BenchmarkArch8Forward(b *testing.B) {
	net := Arch8Layer(rand.New(rand.NewSource(1))).Net
	x := benchInput(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}

func BenchmarkArch8ForwardBackward(b *testing.B) {
	net := Arch8Layer(rand.New(rand.NewSource(1))).Net
	x := benchInput(2)
	target := OneHot(3, 10)
	loss := MSE{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := net.Forward(x)
		net.Backward(loss.Grad(out, target))
	}
}

func BenchmarkArch8ForwardToP1(b *testing.B) {
	// The cost of the feature extraction feeding O1 — what an early-exit
	// input actually executes.
	net := Arch8Layer(rand.New(rand.NewSource(1))).Net
	x := benchInput(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardRange(x, 0, 3)
	}
}
