package nn

import (
	"math/rand"
	"testing"

	"cdl/internal/tensor"
)

func benchInput(seed int64) *tensor.T {
	x := tensor.New(1, 28, 28)
	r := rand.New(rand.NewSource(seed))
	for i := range x.Data {
		x.Data[i] = r.Float64()
	}
	return x
}

func BenchmarkArch6Forward(b *testing.B) {
	net := Arch6Layer(rand.New(rand.NewSource(1))).Net
	x := benchInput(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}

func BenchmarkArch8Forward(b *testing.B) {
	net := Arch8Layer(rand.New(rand.NewSource(1))).Net
	x := benchInput(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}

func BenchmarkArch8ForwardBackward(b *testing.B) {
	net := Arch8Layer(rand.New(rand.NewSource(1))).Net
	x := benchInput(2)
	target := OneHot(3, 10)
	loss := MSE{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := net.Forward(x)
		net.Backward(loss.Grad(out, target))
	}
}

func BenchmarkArch8ForwardToP1(b *testing.B) {
	// The cost of the feature extraction feeding O1 — what an early-exit
	// input actually executes.
	net := Arch8Layer(rand.New(rand.NewSource(1))).Net
	x := benchInput(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardRange(x, 0, 3)
	}
}

// --- core-kernel benchmarks (BENCH_core.json) -------------------------
//
// GEMM fast path vs naive per-sample conv at the paper's LeNet shapes
// (Table I: C1 1→6 maps k5 on 28×28, C2 6→12 maps k5 on 12×12), plus the
// whole-network batched forward. CI pipes these through cmd/cdlbench into
// BENCH_core.json next to BENCH_serve.json, so the kernel's trajectory is
// tracked per commit. Every benchmark reports images/s for direct
// naive-vs-GEMM throughput comparison.

// benchConvCase is one (conv layer, input shape) configuration.
type benchConvCase struct {
	name string
	inC  int
	outC int
	k    int
	h, w int
}

func lenetConvCases() []benchConvCase {
	return []benchConvCase{
		{"C1_1x28x28_to_6", 1, 6, 5, 28, 28},
		{"C2_6x12x12_to_12", 6, 12, 5, 12, 12},
	}
}

func benchBatch(rng *rand.Rand, bsz int, shape ...int) []*tensor.T {
	xs := make([]*tensor.T, bsz)
	for i := range xs {
		xs[i] = tensor.New(shape...)
		for j := range xs[i].Data {
			xs[i].Data[j] = rng.Float64()
		}
	}
	return xs
}

func stackBatch(xs []*tensor.T) *tensor.T {
	sshape := xs[0].Shape()
	ssz := xs[0].Numel()
	out := tensor.New(append([]int{len(xs)}, sshape...)...)
	for i, x := range xs {
		copy(out.Data[i*ssz:(i+1)*ssz], x.Data)
	}
	return out
}

// BenchmarkConvNaive is the reference path: per-sample nested-loop conv,
// batch of 32 per iteration.
func BenchmarkConvNaive(b *testing.B) {
	for _, tc := range lenetConvCases() {
		b.Run(tc.name+"_b32", func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			conv := NewConv2D("C", tc.inC, tc.outC, tc.k)
			XavierConv(conv, rng)
			xs := benchBatch(rng, 32, tc.inC, tc.h, tc.w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, x := range xs {
					conv.Forward(x)
				}
			}
			b.ReportMetric(float64(len(xs))*float64(b.N)/b.Elapsed().Seconds(), "images/s")
		})
	}
}

// BenchmarkConvGemm is the fast path: one im2col+GEMM per batch of 32.
func BenchmarkConvGemm(b *testing.B) {
	for _, tc := range lenetConvCases() {
		b.Run(tc.name+"_b32", func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			conv := NewConv2D("C", tc.inC, tc.outC, tc.k)
			XavierConv(conv, rng)
			batch := stackBatch(benchBatch(rng, 32, tc.inC, tc.h, tc.w))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				conv.ForwardBatch(batch)
			}
			b.ReportMetric(32*float64(b.N)/b.Elapsed().Seconds(), "images/s")
		})
	}
}

// BenchmarkForwardLoop32 runs the full 6-layer LeNet baseline per sample —
// the pre-fast-path serving cost of a 32-image micro-batch.
func BenchmarkForwardLoop32(b *testing.B) {
	net := Arch6Layer(rand.New(rand.NewSource(1))).Net
	xs := benchBatch(rand.New(rand.NewSource(2)), 32, 1, 28, 28)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range xs {
			net.Forward(x)
		}
	}
	b.ReportMetric(float64(len(xs))*float64(b.N)/b.Elapsed().Seconds(), "images/s")
}

// BenchmarkForwardBatch32 runs the same baseline through the batched GEMM
// pipeline.
func BenchmarkForwardBatch32(b *testing.B) {
	net := Arch6Layer(rand.New(rand.NewSource(1))).Net
	batch := stackBatch(benchBatch(rand.New(rand.NewSource(2)), 32, 1, 28, 28))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardBatch(batch)
	}
	b.ReportMetric(32*float64(b.N)/b.Elapsed().Seconds(), "images/s")
}

// BenchmarkForwardBatch1 pins the batch-of-one overhead: the fast path
// must not regress a lone request.
func BenchmarkForwardBatch1(b *testing.B) {
	net := Arch6Layer(rand.New(rand.NewSource(1))).Net
	batch := stackBatch(benchBatch(rand.New(rand.NewSource(2)), 1, 1, 28, 28))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardBatch(batch)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "images/s")
}
