package nn

import (
	"fmt"
	"math/rand"

	"cdl/internal/tensor"
)

// Dropout randomly zeroes a fraction of activations during training
// (inverted dropout: survivors are scaled by 1/(1−rate) so inference needs
// no rescaling). In inference mode it is the identity. Provided as a
// regularization extension for the baseline DLNs; the paper's networks do
// not use it, and the Table I/II presets leave it out.
type Dropout struct {
	name string
	// Rate is the drop probability in [0,1).
	Rate float64

	rng      *rand.Rand
	seed     int64
	training bool
	mask     []float64
	frozen   bool
}

// NewDropout constructs a dropout layer; masks are drawn deterministically
// from the seed. The layer starts in training mode.
func NewDropout(name string, rate float64, seed int64) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: NewDropout rate %v outside [0,1)", rate))
	}
	return &Dropout{
		name:     name,
		Rate:     rate,
		rng:      rand.New(rand.NewSource(seed)),
		seed:     seed,
		training: true,
	}
}

// Name implements Layer.
func (d *Dropout) Name() string { return d.name }

// SetTraining switches between mask sampling (true) and identity (false).
func (d *Dropout) SetTraining(b bool) { d.training = b }

// Training reports the current mode.
func (d *Dropout) Training() bool { return d.training }

// FreezeMask keeps the current mask fixed across subsequent Forward calls
// (used by finite-difference gradient checks).
func (d *Dropout) FreezeMask() { d.frozen = true }

// OutShape implements Layer.
func (d *Dropout) OutShape(in []int) []int { return append([]int(nil), in...) }

// Forward implements Layer.
func (d *Dropout) Forward(in *tensor.T) *tensor.T {
	if !d.training || d.Rate == 0 {
		d.mask = nil
		return in
	}
	if !d.frozen || d.mask == nil || len(d.mask) != in.Numel() {
		d.mask = make([]float64, in.Numel())
		keepScale := 1 / (1 - d.Rate)
		for i := range d.mask {
			if d.rng.Float64() >= d.Rate {
				d.mask[i] = keepScale
			}
		}
	}
	out := in.Clone()
	for i := range out.Data {
		out.Data[i] *= d.mask[i]
	}
	return out
}

// Backward implements Layer: the gradient passes through the same mask.
func (d *Dropout) Backward(gradOut *tensor.T) *tensor.T {
	if d.mask == nil {
		// inference mode or rate 0: identity
		if !d.training || d.Rate == 0 {
			return gradOut
		}
		panic("nn: Dropout.Backward before Forward")
	}
	gradIn := gradOut.Clone()
	for i := range gradIn.Data {
		gradIn.Data[i] *= d.mask[i]
	}
	return gradIn
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// Clone implements Layer. The replica re-derives its mask stream from the
// original seed; replicas therefore sample identical mask sequences, which
// keeps parallel training deterministic at the cost of mask correlation
// across workers (acceptable for the small worker counts used here).
func (d *Dropout) Clone() Layer {
	return &Dropout{
		name:     d.name,
		Rate:     d.Rate,
		rng:      rand.New(rand.NewSource(d.seed)),
		seed:     d.seed,
		training: d.training,
	}
}

// SetNetworkTraining flips every Dropout layer in the network between
// training and inference mode.
func SetNetworkTraining(n *Network, training bool) {
	for _, l := range n.Layers {
		if d, ok := l.(*Dropout); ok {
			d.SetTraining(training)
		}
	}
}
