package nn

// gemm.go is the batched fast-path matrix kernel: a cache-blocked,
// goroutine-parallel GEMM whose floating-point summation order is pinned to
// the naive per-sample reference path (conv.go's Conv2DValid loop and
// dense.go's MatVecInto), so the im2col+GEMM convolution reproduces the
// reference forward bit for bit — the property the differential harness in
// equiv_test.go locks down (DESIGN.md §2, "reference vs fast path").
//
// The order pin works like this: the reference convolution computes each
// output element as
//
//	out = Σ_ic ( Σ_{ky,kx} w[ky,kx]·x[ky,kx] ) + bias
//
// with one running sum per input channel, channels accumulated in order and
// the bias added last. GemmGrouped therefore accumulates K in groups of
// groupK (= k·k for a convolution): each group runs its own running sum in
// k-order and groups fold into the output left-to-right. With groupK = K it
// degenerates to a plain running dot product — exactly MatVecInto's order.

import (
	"fmt"
	"runtime"
	"sync"

	"cdl/internal/tensor"
)

// gemmTileN is the column-tile width in elements: one tile's group
// accumulator is 4 KiB, so a (row, tile) working set stays resident in L1
// while the k-loop streams over it.
const gemmTileN = 512

// gemmParallelFlops is the smallest multiply-add count worth fanning out
// across goroutines; below it the spawn/join overhead exceeds the win. One
// LeNet-shape conv at batch 32 is ~5·10⁶ MACs, comfortably above.
const gemmParallelFlops = 1 << 21

// GemmGrouped computes c = a·b for a of shape [M,K], b of shape [K,N] and c
// of shape [M,N], accumulating K in groups of groupK as described in the
// file comment. groupK must divide into K only at the tail (any 1 ≤ groupK
// ≤ K is legal; the final group may be short). Column tiles are fanned out
// across GOMAXPROCS goroutines when the multiply-add count is large enough
// to amortize the spawn; tiles are disjoint in c, so the fan-out is
// race-free.
func GemmGrouped(a, b, c *tensor.T, groupK int) {
	if a.Rank() != 2 || b.Rank() != 2 || c.Rank() != 2 {
		panic(fmt.Sprintf("nn: GemmGrouped ranks a=%d b=%d c=%d, want 2", a.Rank(), b.Rank(), c.Rank()))
	}
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	if b.Dim(0) != k || c.Dim(0) != m || c.Dim(1) != n {
		panic(fmt.Sprintf("nn: GemmGrouped dims a=%v b=%v c=%v", a.Shape(), b.Shape(), c.Shape()))
	}
	gemmGrouped(a.Data, m, k, b.Data, n, c.Data, groupK)
}

// gemmGrouped is the slice-level kernel behind GemmGrouped (and
// Conv2D.ForwardBatch, which feeds it scratch buffers directly).
func gemmGrouped(a []float64, m, k int, b []float64, n int, c []float64, groupK int) {
	if groupK <= 0 || groupK > k {
		groupK = k
	}
	if m == 0 || n == 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	tiles := (n + gemmTileN - 1) / gemmTileN
	if workers > tiles {
		workers = tiles
	}
	if workers <= 1 || 2*m*k*n < gemmParallelFlops {
		gemmTiles(a, m, k, b, n, c, groupK, 0, n)
		return
	}
	// Split the column range into one contiguous, tile-aligned chunk per
	// worker; each chunk owns its columns of c exclusively.
	var wg sync.WaitGroup
	tilesPer := (tiles + workers - 1) / workers
	for lo := 0; lo < n; lo += tilesPer * gemmTileN {
		hi := lo + tilesPer*gemmTileN
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			gemmTiles(a, m, k, b, n, c, groupK, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// gemmTiles computes columns [lo,hi) of c = a·b, one gemmTileN-wide tile at
// a time. Within a tile, each row's K loop runs in groups: a group's partial
// sums accumulate in a local buffer in k-order (the reference (ky,kx)
// order), then fold into the output row — so every c element sees exactly
// the reference summation sequence regardless of tiling or parallelism.
func gemmTiles(a []float64, m, k int, b []float64, n int, c []float64, groupK, lo, hi int) {
	var sbuf [gemmTileN]float64
	for n0 := lo; n0 < hi; n0 += gemmTileN {
		n1 := n0 + gemmTileN
		if n1 > hi {
			n1 = hi
		}
		for row := 0; row < m; row++ {
			gemmRow1(a, row, k, b, n, c, groupK, n0, n1-n0, &sbuf)
		}
	}
}

// gemmRow1 computes the tile [n0, n0+tn) of one output row, with a
// 4-wide k unroll: the adds into s[i] stay sequential in k-order
// (separate statements, never reassociated), so the unroll changes
// instruction-level parallelism only, not the floating-point result.
func gemmRow1(a []float64, row, k int, b []float64, n int, c []float64, groupK, n0, tn int, sbuf *[gemmTileN]float64) {
	arow := a[row*k : (row+1)*k]
	crow := c[row*n+n0:][:tn]
	s := sbuf[:tn]
	for g0 := 0; g0 < k; g0 += groupK {
		g1 := g0 + groupK
		if g1 > k {
			g1 = k
		}
		for i := range s {
			s[i] = 0
		}
		kk := g0
		for ; kk+3 < g1; kk += 4 {
			a0, a1, a2, a3 := arow[kk], arow[kk+1], arow[kk+2], arow[kk+3]
			b0 := b[kk*n+n0:][:tn]
			b1 := b[(kk+1)*n+n0:][:tn]
			b2 := b[(kk+2)*n+n0:][:tn]
			b3 := b[(kk+3)*n+n0:][:tn]
			for i := range s {
				v := s[i]
				v += a0 * b0[i]
				v += a1 * b1[i]
				v += a2 * b2[i]
				v += a3 * b3[i]
				s[i] = v
			}
		}
		for ; kk < g1; kk++ {
			av := arow[kk]
			brow := b[kk*n+n0:][:tn]
			for i := range s {
				s[i] += av * brow[i]
			}
		}
		if g0 == 0 {
			copy(crow, s)
		} else {
			for i := range s {
				crow[i] += s[i]
			}
		}
	}
}
