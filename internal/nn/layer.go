// Package nn is a from-scratch convolutional neural network framework: the
// substrate the CDL paper builds on (the authors used Palm's MATLAB
// DeepLearnToolbox [19]; we reimplement the same convolutional
// backpropagation in Go).
//
// The package provides layers (Conv2D, MaxPool2D, MeanPool2D, Dense,
// Sigmoid, Tanh, ReLU, Flatten, Softmax), a sequential Network container
// with per-layer activation taps (needed by the CDL cascade), MSE and
// softmax cross-entropy losses, and deterministic Xavier initialization.
//
// Layers process one sample at a time; batching is handled by
// internal/train, which fans samples out across goroutine-local network
// replicas (see Layer.Clone).
package nn

import (
	"fmt"

	"cdl/internal/tensor"
)

// Param is a trainable parameter tensor paired with its gradient
// accumulator. Backward passes accumulate into G; optimizers read G and
// update W.
type Param struct {
	Name string
	W    *tensor.T
	G    *tensor.T
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.G.Zero() }

// Layer is one differentiable stage of a network.
//
// Forward caches whatever Backward needs, so a Layer value must not be used
// from multiple goroutines concurrently; use Clone to obtain a replica that
// shares parameter storage (W) but owns private caches and gradient buffers
// (G).
type Layer interface {
	// Name identifies the layer in diagnostics and op counting
	// (e.g. "C1", "P1", "FC").
	Name() string
	// Forward computes the layer's output for one input sample.
	Forward(in *tensor.T) *tensor.T
	// Backward consumes dL/dOutput and returns dL/dInput, accumulating
	// parameter gradients into Params().G. It must be called after Forward.
	Backward(gradOut *tensor.T) *tensor.T
	// Params returns the layer's trainable parameters; may be empty.
	Params() []*Param
	// OutShape maps an input shape to this layer's output shape without
	// running it. It panics if the input shape is incompatible.
	OutShape(in []int) []int
	// Clone returns a replica sharing W but with fresh caches and gradients.
	Clone() Layer
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func mustShape(layer string, got, want []int) {
	if !shapeEq(got, want) {
		panic(fmt.Sprintf("nn: %s input shape %v, want %v", layer, got, want))
	}
}
