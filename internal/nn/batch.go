package nn

// batch.go is the batched inference fast path: every built-in layer gains a
// ForwardBatch that processes a whole micro-batch per call, with the
// convolutions lowered to im2col + GEMM (im2col.go, gemm.go) instead of the
// per-sample nested loops of Forward.
//
// The contract — enforced by the differential harness in equiv_test.go and
// internal/core's batch_test.go — is that ForwardBatch applied to a stack
// of samples produces, for each sample, floats identical to Forward on that
// sample alone (same operations in the same order; see gemm.go for how the
// convolution preserves the reference summation). ForwardBatch is
// inference-only: it does not populate the Backward caches.
//
// A batched activation is a single tensor whose leading dimension is the
// batch: [B, ...sample shape...], rows contiguous, so per-sample views and
// survivor compaction (internal/core's ClassifyBatch) are cheap slices.

import (
	"fmt"
	"math"
	"time"

	"cdl/internal/obs"
	"cdl/internal/tensor"
)

// BatchLayer is the optional fast-path extension of Layer: ForwardBatch
// maps a batched activation [B, ...in] to [B, ...out], reproducing Forward
// exactly on every row. Layers that do not implement it still work in
// batched pipelines via the per-sample fallback in ForwardBatchRange.
type BatchLayer interface {
	Layer
	ForwardBatch(in *tensor.T) *tensor.T
}

// ForwardBatch runs a full batched forward pass (layers [0, len)).
func (n *Network) ForwardBatch(x *tensor.T) *tensor.T {
	return n.ForwardBatchRange(x, 0, len(n.Layers))
}

// ForwardBatchRange runs layers [from, to) on the batched activation x
// (leading dimension = batch). It is the batched counterpart of
// ForwardRange — the primitive internal/core's ClassifyBatch resumes the
// baseline with between cascade taps — and uses each layer's ForwardBatch
// when implemented, falling back to a per-sample loop otherwise, so the
// fast path never constrains which layers a network may contain.
func (n *Network) ForwardBatchRange(x *tensor.T, from, to int) *tensor.T {
	if from < 0 || to > len(n.Layers) || from > to {
		panic(fmt.Sprintf("nn: ForwardBatchRange[%d,%d) out of range [0,%d]", from, to, len(n.Layers)))
	}
	if x.Rank() < 1 {
		panic("nn: ForwardBatchRange input has no batch dimension")
	}
	for _, l := range n.Layers[from:to] {
		if bl, ok := l.(BatchLayer); ok {
			x = bl.ForwardBatch(x)
		} else {
			x = forwardBatchFallback(l, x)
		}
	}
	return x
}

// forwardBatchFallback runs a plain Layer sample by sample over the batch,
// restacking the outputs. It keeps batched pipelines total over layers that
// have no native ForwardBatch (custom layers, Dropout in training mode).
func forwardBatchFallback(l Layer, in *tensor.T) *tensor.T {
	bsz, sshape := batchDims(in)
	oshape := l.OutShape(sshape)
	osz := 1
	for _, d := range oshape {
		osz *= d
	}
	out := tensor.New(append([]int{bsz}, oshape...)...)
	ssz := sampleSize(in, bsz)
	for bi := 0; bi < bsz; bi++ {
		view := tensor.FromSlice(in.Data[bi*ssz:(bi+1)*ssz], sshape...)
		y := l.Forward(view)
		copy(out.Data[bi*osz:(bi+1)*osz], y.Data)
	}
	return out
}

// batchDims splits a batched activation's shape into (batch, sample shape).
func batchDims(in *tensor.T) (int, []int) {
	shape := in.Shape()
	return shape[0], shape[1:]
}

// sampleSize returns the per-sample element count of a batched activation.
func sampleSize(in *tensor.T, bsz int) int {
	if bsz == 0 {
		return 0
	}
	return in.Numel() / bsz
}

// growScratch returns a buffer of at least n elements, reusing buf when it
// is already big enough.
func growScratch(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// ForwardBatch implements BatchLayer: one im2col + one grouped GEMM for the
// whole batch, then a scatter from the GEMM's [outC, B·oh·ow] layout into
// the batched [B, outC, oh, ow] activation with the bias folded in. The
// grouped accumulation (groupK = k·k) reproduces Forward's per-channel
// summation order exactly.
func (c *Conv2D) ForwardBatch(in *tensor.T) *tensor.T {
	shape := in.Shape()
	if len(shape) != 4 || shape[1] != c.inC {
		panic(fmt.Sprintf("nn: %s batch input shape %v, want [B %d H W]", c.name, shape, c.inC))
	}
	bsz, h, w := shape[0], shape[2], shape[3]
	oh, ow := h-c.k+1, w-c.k+1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: %s kernel %d too large for input %v", c.name, c.k, shape))
	}
	out := tensor.New(bsz, c.outC, oh, ow)
	kk := c.k * c.k
	kcols := c.inC * kk
	planeOut := oh * ow
	ncols := bsz * planeOut
	c.bcols = growScratch(c.bcols, kcols*ncols)
	c.bgemm = growScratch(c.bgemm, c.outC*ncols)
	if obs.ProfilingEnabled() {
		t0 := time.Now()
		im2colInto(in.Data, bsz, c.inC, h, w, c.k, c.bcols)
		t1 := time.Now()
		gemmGrouped(c.weight.W.Data, c.outC, kcols, c.bcols, ncols, c.bgemm, kk)
		t2 := time.Now()
		obs.ProfAdd(obs.PhaseIm2Col, t1.Sub(t0))
		obs.ProfAdd(obs.PhaseGEMM, t2.Sub(t1))
	} else {
		im2colInto(in.Data, bsz, c.inC, h, w, c.k, c.bcols)
		gemmGrouped(c.weight.W.Data, c.outC, kcols, c.bcols, ncols, c.bgemm, kk)
	}
	for oc := 0; oc < c.outC; oc++ {
		b := c.bias.W.Data[oc]
		grow := c.bgemm[oc*ncols : (oc+1)*ncols]
		for bi := 0; bi < bsz; bi++ {
			dst := out.Data[(bi*c.outC+oc)*planeOut : (bi*c.outC+oc+1)*planeOut]
			src := grow[bi*planeOut : (bi+1)*planeOut][:len(dst)]
			for i := range dst {
				dst[i] = src[i] + b
			}
		}
	}
	return out
}

// ForwardBatch implements BatchLayer: per-row W·x + b with the same running
// dot order as MatVecInto, the bias added after the dot as in Forward.
func (d *Dense) ForwardBatch(in *tensor.T) *tensor.T {
	bsz, _ := batchDims(in)
	ssz := sampleSize(in, bsz)
	if ssz != d.in {
		panic(fmt.Sprintf("nn: %s batch sample numel %d, want %d", d.name, ssz, d.in))
	}
	out := tensor.New(bsz, d.out)
	wd, bd := d.weight.W.Data, d.bias.W.Data
	for bi := 0; bi < bsz; bi++ {
		x := in.Data[bi*ssz : (bi+1)*ssz]
		y := out.Data[bi*d.out : (bi+1)*d.out]
		for o := 0; o < d.out; o++ {
			row := wd[o*d.in : (o+1)*d.in][:len(x)]
			s := 0.0
			for i, v := range row {
				s += v * x[i]
			}
			y[o] = s + bd[o]
		}
	}
	return out
}

// ForwardBatch implements BatchLayer: a flat reshape to [B, n].
func (f *Flatten) ForwardBatch(in *tensor.T) *tensor.T {
	bsz, _ := batchDims(in)
	return in.Reshape(bsz, sampleSize(in, bsz))
}

// ForwardBatch implements BatchLayer: element-wise, so batching is the
// identity transformation on the math.
func (s *Sigmoid) ForwardBatch(in *tensor.T) *tensor.T { return in.Map(sigmoid) }

// ForwardBatch implements BatchLayer.
func (t *Tanh) ForwardBatch(in *tensor.T) *tensor.T { return in.Map(math.Tanh) }

// ForwardBatch implements BatchLayer.
func (r *ReLU) ForwardBatch(in *tensor.T) *tensor.T {
	return in.Map(func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	})
}

// ForwardBatch implements BatchLayer: SoftmaxVec applied per row.
func (s *Softmax) ForwardBatch(in *tensor.T) *tensor.T {
	bsz, sshape := batchDims(in)
	ssz := sampleSize(in, bsz)
	out := tensor.New(append([]int{bsz}, sshape...)...)
	for bi := 0; bi < bsz; bi++ {
		row := tensor.FromSlice(in.Data[bi*ssz:(bi+1)*ssz], ssz)
		copy(out.Data[bi*ssz:(bi+1)*ssz], SoftmaxVec(row).Data)
	}
	return out
}

// ForwardBatch implements BatchLayer: the same window scan as Forward per
// sample (identical comparison order, so ties break identically), without
// recording argmax state.
func (p *MaxPool2D) ForwardBatch(in *tensor.T) *tensor.T {
	shape := in.Shape()
	if len(shape) != 4 {
		panic(fmt.Sprintf("nn: %s batch input shape %v, want [B C H W]", p.name, shape))
	}
	bsz, c, h, w := shape[0], shape[1], shape[2], shape[3]
	oh, ow := h/p.win, w/p.win
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: %s window %d too large for input %v", p.name, p.win, shape))
	}
	out := tensor.New(bsz, c, oh, ow)
	for bi := 0; bi < bsz; bi++ {
		ind := in.Data[bi*c*h*w:]
		outd := out.Data[bi*c*oh*ow:]
		for ch := 0; ch < c; ch++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					baseY, baseX := oy*p.win, ox*p.win
					best := ind[ch*h*w+baseY*w+baseX]
					for dy := 0; dy < p.win; dy++ {
						rowOff := ch*h*w + (baseY+dy)*w + baseX
						for dx := 0; dx < p.win; dx++ {
							if v := ind[rowOff+dx]; v > best {
								best = v
							}
						}
					}
					outd[ch*oh*ow+oy*ow+ox] = best
				}
			}
		}
	}
	return out
}

// ForwardBatch implements BatchLayer: Forward's window sums per sample.
func (p *MeanPool2D) ForwardBatch(in *tensor.T) *tensor.T {
	shape := in.Shape()
	if len(shape) != 4 {
		panic(fmt.Sprintf("nn: %s batch input shape %v, want [B C H W]", p.name, shape))
	}
	bsz, c, h, w := shape[0], shape[1], shape[2], shape[3]
	oh, ow := h/p.win, w/p.win
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: %s window %d too large for input %v", p.name, p.win, shape))
	}
	out := tensor.New(bsz, c, oh, ow)
	inv := 1.0 / float64(p.win*p.win)
	for bi := 0; bi < bsz; bi++ {
		ind := in.Data[bi*c*h*w:]
		outd := out.Data[bi*c*oh*ow:]
		for ch := 0; ch < c; ch++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					s := 0.0
					for dy := 0; dy < p.win; dy++ {
						rowOff := ch*h*w + (oy*p.win+dy)*w + ox*p.win
						for dx := 0; dx < p.win; dx++ {
							s += ind[rowOff+dx]
						}
					}
					outd[ch*oh*ow+oy*ow+ox] = s * inv
				}
			}
		}
	}
	return out
}

// ForwardBatch implements BatchLayer for inference mode only: the layer is
// the identity there, exactly as Forward. In training mode batched calls
// fall back to the per-sample path so the mask stream stays per-sample
// deterministic.
func (d *Dropout) ForwardBatch(in *tensor.T) *tensor.T {
	if !d.training || d.Rate == 0 {
		return in
	}
	return forwardBatchFallback(d, in)
}
