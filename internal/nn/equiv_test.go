package nn

// equiv_test.go is the layer-level half of the fast-path differential
// harness (the cascade-level half is internal/core's batch_test.go): for
// every layer kind and for whole networks, the batched GEMM pipeline must
// reproduce the per-sample reference Forward on every row of the batch.
// The design pins the summation order (gemm.go), so the tests demand exact
// equality — stricter than the documented 1e-9 contract (DESIGN.md §2).

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"cdl/internal/tensor"
)

// randTensor fills a tensor of the given shape with values in [-1, 1).
func randTensor(rng *rand.Rand, shape ...int) *tensor.T {
	t := tensor.New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.Float64()*2 - 1
	}
	return t
}

// stack builds the batched [B, ...] tensor from per-sample tensors.
func stack(xs []*tensor.T) *tensor.T {
	sshape := xs[0].Shape()
	ssz := xs[0].Numel()
	out := tensor.New(append([]int{len(xs)}, sshape...)...)
	for i, x := range xs {
		copy(out.Data[i*ssz:(i+1)*ssz], x.Data)
	}
	return out
}

// assertRowsEqual checks that row bi of the batched output equals the
// reference per-sample output exactly.
func assertRowsEqual(t *testing.T, label string, bi int, got *tensor.T, want *tensor.T) {
	t.Helper()
	ssz := want.Numel()
	row := got.Data[bi*ssz : (bi+1)*ssz]
	for i, w := range want.Data {
		if row[i] != w {
			t.Fatalf("%s: batch row %d element %d = %v, reference %v (diff %g)",
				label, bi, i, row[i], w, math.Abs(row[i]-w))
		}
	}
}

// layerCase builds one (layer, input shape) configuration for the
// differential sweep.
type layerCase struct {
	name  string
	layer BatchLayer
	shape []int
}

// equivCases enumerates randomized layer configurations: convs across
// kernel sizes and channel counts (including the paper's LeNet shapes),
// both pools, dense, and every activation.
func equivCases(rng *rand.Rand) []layerCase {
	mkConv := func(name string, inC, outC, k int) *Conv2D {
		c := NewConv2D(name, inC, outC, k)
		XavierConv(c, rng)
		return c
	}
	mkDense := func(name string, in, out int) *Dense {
		d := NewDense(name, in, out)
		XavierDense(d, rng)
		return d
	}
	return []layerCase{
		{"conv-C1-6layer", mkConv("C1", 1, 6, 5), []int{1, 28, 28}},
		{"conv-C2-6layer", mkConv("C2", 6, 12, 5), []int{6, 12, 12}},
		{"conv-C1-8layer", mkConv("C1", 1, 3, 3), []int{1, 28, 28}},
		{"conv-C2-8layer", mkConv("C2", 3, 6, 4), []int{3, 13, 13}},
		{"conv-C3-8layer", mkConv("C3", 6, 9, 3), []int{6, 5, 5}},
		{"conv-wide", mkConv("CW", 4, 7, 2), []int{4, 9, 11}},
		{"conv-1x1", mkConv("C11", 3, 5, 1), []int{3, 6, 6}},
		{"maxpool-2", NewMaxPool2D("P", 2), []int{3, 12, 12}},
		{"maxpool-3", NewMaxPool2D("P", 3), []int{2, 9, 10}},
		{"maxpool-1", NewMaxPool2D("P", 1), []int{2, 3, 3}},
		{"meanpool-2", NewMeanPool2D("P", 2), []int{3, 12, 12}},
		{"meanpool-3", NewMeanPool2D("P", 3), []int{2, 9, 9}},
		{"dense", mkDense("FC", 48, 10), []int{48}},
		{"dense-from-map", mkDense("FC", 3*4*4, 10), []int{3, 4, 4}},
		{"flatten", NewFlatten("flat"), []int{3, 5, 5}},
		{"sigmoid", NewSigmoid("act"), []int{4, 6, 6}},
		{"tanh", NewTanh("act"), []int{4, 6, 6}},
		{"relu", NewReLU("act"), []int{4, 6, 6}},
		{"softmax", NewSoftmax("sm"), []int{10}},
	}
}

// TestForwardBatchMatchesForward sweeps every layer kind across batch
// sizes, comparing each batched row against the per-sample reference.
func TestForwardBatchMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tc := range equivCases(rng) {
		for _, bsz := range []int{1, 2, 5, 32} {
			xs := make([]*tensor.T, bsz)
			for i := range xs {
				xs[i] = randTensor(rng, tc.shape...)
			}
			got := tc.layer.ForwardBatch(stack(xs))
			if got.Dim(0) != bsz {
				t.Fatalf("%s: batch dim %d, want %d", tc.name, got.Dim(0), bsz)
			}
			for bi, x := range xs {
				want := tc.layer.Forward(x)
				assertRowsEqual(t, tc.name, bi, got, want)
			}
		}
	}
}

// TestForwardBatchRangeMatchesForwardRange runs randomized layer subranges
// of the paper's 8-layer architecture — the exact resumption pattern the
// cascade uses between taps.
func TestForwardBatchRangeMatchesForwardRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := Arch8Layer(rand.New(rand.NewSource(1))).Net
	ranges := [][2]int{{0, 3}, {3, 6}, {6, 9}, {0, len(net.Layers)}, {3, len(net.Layers)}, {5, 5}}
	for _, r := range ranges {
		from, to := r[0], r[1]
		sshape := net.ShapeAt(from)
		for _, bsz := range []int{1, 3, 16} {
			xs := make([]*tensor.T, bsz)
			for i := range xs {
				xs[i] = randTensor(rng, sshape...)
			}
			got := net.ForwardBatchRange(stack(xs), from, to)
			for bi, x := range xs {
				want := net.ForwardRange(x, from, to)
				assertRowsEqual(t, "arch8", bi, got, want)
			}
		}
	}
}

// TestForwardBatchRandomizedShapes fuzzes conv/pool/dense dimensions and
// weights beyond the fixed presets.
func TestForwardBatchRandomizedShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		inC := 1 + rng.Intn(4)
		outC := 1 + rng.Intn(8)
		k := 1 + rng.Intn(4)
		h := k + rng.Intn(12)
		w := k + rng.Intn(12)
		conv := NewConv2D("C", inC, outC, k)
		XavierConv(conv, rng)
		bsz := 1 + rng.Intn(9)
		xs := make([]*tensor.T, bsz)
		for i := range xs {
			xs[i] = randTensor(rng, inC, h, w)
		}
		got := conv.ForwardBatch(stack(xs))
		for bi, x := range xs {
			assertRowsEqual(t, "conv-fuzz", bi, got, conv.Forward(x))
		}
	}
}

// TestForwardBatchFallback routes a batched pass through a layer with no
// native ForwardBatch (Dropout in training mode) and checks the network
// still matches the per-sample path.
func TestForwardBatchFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mk := func() *Network {
		net := NewNetwork([]int{1, 8, 8},
			NewConv2D("C1", 1, 2, 3),
			NewSigmoid("act"),
			NewDropout("drop", 0.4, 11),
			NewFlatten("flat"),
			NewDense("FC", 2*6*6, 4),
		)
		InitNetwork(net, rand.New(rand.NewSource(3)))
		return net
	}
	xs := make([]*tensor.T, 6)
	for i := range xs {
		xs[i] = randTensor(rng, 1, 8, 8)
	}
	// Two identical networks: the dropout mask stream advances per Forward
	// call, so the batched net and the reference net must each consume a
	// fresh stream.
	batched, ref := mk(), mk()
	got := batched.ForwardBatch(stack(xs))
	for bi, x := range xs {
		assertRowsEqual(t, "dropout-fallback", bi, got, ref.Forward(x))
	}
	// In inference mode Dropout has a native identity ForwardBatch.
	SetNetworkTraining(batched, false)
	SetNetworkTraining(ref, false)
	got = batched.ForwardBatch(stack(xs))
	for bi, x := range xs {
		assertRowsEqual(t, "dropout-inference", bi, got, ref.Forward(x))
	}
}

// TestGemmGroupedMatchesReference compares the tiled kernel against a
// naive triple loop that applies the same grouped accumulation, across
// randomized dimensions (including N big enough to exercise multiple
// column tiles and the parallel fan-out).
func TestGemmGroupedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	dims := [][4]int{ // m, k, n, groupK
		{1, 1, 1, 1},
		{3, 25, 40, 25},
		{6, 25, 2 * gemmTileN, 25},
		{12, 150, gemmTileN + 37, 25},
		{5, 9, 777, 4}, // groupK not dividing k: short tail group
		{4, 13, 600, 13},
		{2, 7, 3, 7},
	}
	for _, d := range dims {
		m, k, n, groupK := d[0], d[1], d[2], d[3]
		a := randTensor(rng, m, k)
		b := randTensor(rng, k, n)
		got := tensor.New(m, n)
		GemmGrouped(a, b, got, groupK)
		want := tensor.New(m, n)
		for row := 0; row < m; row++ {
			for col := 0; col < n; col++ {
				acc := 0.0
				for g0 := 0; g0 < k; g0 += groupK {
					g1 := g0 + groupK
					if g1 > k {
						g1 = k
					}
					s := 0.0
					for kk := g0; kk < g1; kk++ {
						s += a.Data[row*k+kk] * b.Data[kk*n+col]
					}
					acc += s
				}
				want.Data[row*n+col] = acc
			}
		}
		if !tensor.Equal(got, want) {
			t.Fatalf("GemmGrouped(m=%d k=%d n=%d groupK=%d) diverges from reference", m, k, n, groupK)
		}
	}
}

// TestGemmGroupedParallel forces the goroutine fan-out path (a 1-CPU
// machine would otherwise never take it) and checks the tiled chunks
// reassemble into exactly the serial result.
func TestGemmGroupedParallel(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(31))
	m, k, n := 8, 64, 5*gemmTileN+19
	if 2*m*k*n < gemmParallelFlops {
		t.Fatalf("test dims (%d MACs) no longer clear gemmParallelFlops (%d): the parallel path is not exercised",
			m*k*n, gemmParallelFlops)
	}
	a := randTensor(rng, m, k)
	b := randTensor(rng, k, n)
	got := tensor.New(m, n)
	GemmGrouped(a, b, got, 16)
	want := tensor.New(m, n)
	gemmTiles(a.Data, m, k, b.Data, n, want.Data, 16, 0, n)
	if !tensor.Equal(got, want) {
		t.Fatal("parallel GemmGrouped diverges from the serial kernel")
	}
}

// TestIm2Col checks the expansion on a hand-checkable case: every column
// must be the patch at its (sample, oy, ox) coordinate in (ic, ky, kx)
// row order.
func TestIm2Col(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	bsz, c, h, w, k := 2, 3, 5, 4, 2
	in := randTensor(rng, bsz, c, h, w)
	cols := Im2Col(in, k)
	oh, ow := h-k+1, w-k+1
	if cols.Dim(0) != c*k*k || cols.Dim(1) != bsz*oh*ow {
		t.Fatalf("cols shape %v, want [%d %d]", cols.Shape(), c*k*k, bsz*oh*ow)
	}
	for bi := 0; bi < bsz; bi++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				col := (bi*oh+oy)*ow + ox
				for ic := 0; ic < c; ic++ {
					for ky := 0; ky < k; ky++ {
						for kx := 0; kx < k; kx++ {
							row := (ic*k+ky)*k + kx
							got := cols.At(row, col)
							want := in.At(bi, ic, oy+ky, ox+kx)
							if got != want {
								t.Fatalf("cols[%d,%d] = %v, want in[%d,%d,%d,%d] = %v",
									row, col, got, bi, ic, oy+ky, ox+kx, want)
							}
						}
					}
				}
			}
		}
	}
}
