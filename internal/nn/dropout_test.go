package nn

import (
	"math"
	"math/rand"
	"testing"

	"cdl/internal/tensor"
)

func TestDropoutInferenceIsIdentity(t *testing.T) {
	d := NewDropout("do", 0.5, 1)
	d.SetTraining(false)
	x := tensor.FromSlice([]float64{1, 2, 3, 4}, 4)
	out := d.Forward(x)
	if !tensor.Equal(x, out) {
		t.Error("inference-mode dropout must be the identity")
	}
	g := tensor.FromSlice([]float64{5, 6, 7, 8}, 4)
	if !tensor.Equal(d.Backward(g), g) {
		t.Error("inference-mode backward must be the identity")
	}
}

func TestDropoutMaskStatistics(t *testing.T) {
	d := NewDropout("do", 0.3, 2)
	x := tensor.New(10000)
	x.Fill(1)
	out := d.Forward(x)
	zeros, kept := 0, 0
	for _, v := range out.Data {
		switch {
		case v == 0:
			zeros++
		case math.Abs(v-1/0.7) < 1e-12:
			kept++
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	frac := float64(zeros) / float64(x.Numel())
	if frac < 0.27 || frac > 0.33 {
		t.Errorf("drop fraction %.3f far from rate 0.3", frac)
	}
	if kept+zeros != x.Numel() {
		t.Error("mask values outside {0, 1/(1-rate)}")
	}
	// Inverted scaling keeps the expectation: mean should stay ≈ 1.
	mean, _ := out.MeanStd()
	if math.Abs(mean-1) > 0.03 {
		t.Errorf("mean after inverted dropout %.3f, want ≈1", mean)
	}
}

func TestDropoutBackwardUsesSameMask(t *testing.T) {
	d := NewDropout("do", 0.5, 3)
	x := tensor.New(64)
	x.Fill(1)
	out := d.Forward(x)
	g := tensor.New(64)
	g.Fill(1)
	back := d.Backward(g)
	for i := range out.Data {
		if (out.Data[i] == 0) != (back.Data[i] == 0) {
			t.Fatal("backward mask differs from forward mask")
		}
	}
}

func TestDropoutFrozenMaskGradCheck(t *testing.T) {
	d := NewDropout("do", 0.4, 4)
	rng := rand.New(rand.NewSource(5))
	in := tensor.New(3, 4)
	for i := range in.Data {
		in.Data[i] = rng.NormFloat64()
	}
	target := tensor.New(3, 4)
	for i := range target.Data {
		target.Data[i] = rng.Float64()
	}
	d.Forward(in) // sample a mask
	d.FreezeMask()
	loss := MSE{}
	out := d.Forward(in)
	gradIn := d.Backward(loss.Grad(out, target))
	ng := numGrad(in, func() float64 { return loss.Loss(d.Forward(in), target) })
	assertClose(t, "dropout input grad", gradIn, ng, 1e-4)
}

func TestDropoutBadRatePanics(t *testing.T) {
	for _, rate := range []float64{-0.1, 1.0, 2.0} {
		func(rate float64) {
			defer func() {
				if recover() == nil {
					t.Errorf("rate %v accepted", rate)
				}
			}()
			NewDropout("do", rate, 1)
		}(rate)
	}
}

func TestSetNetworkTraining(t *testing.T) {
	net := NewNetwork([]int{4},
		NewDense("d1", 4, 4),
		NewDropout("do", 0.5, 1),
		NewDense("d2", 4, 2),
	)
	InitNetwork(net, rand.New(rand.NewSource(1)))
	SetNetworkTraining(net, false)
	do := net.Layers[1].(*Dropout)
	if do.Training() {
		t.Error("SetNetworkTraining(false) did not reach the dropout layer")
	}
	// In inference mode the network must be deterministic.
	x := tensor.FromSlice([]float64{1, 2, 3, 4}, 4)
	a, b := net.Forward(x), net.Forward(x)
	if !tensor.Equal(a, b) {
		t.Error("inference not deterministic with dropout disabled")
	}
	SetNetworkTraining(net, true)
	if !do.Training() {
		t.Error("SetNetworkTraining(true) did not re-enable")
	}
}

func TestDropoutTrainsRegularizedNetwork(t *testing.T) {
	// A dropout-regularized dense net still learns separable data (smoke
	// test that the layer integrates with the trainer path).
	rng := rand.New(rand.NewSource(6))
	net := NewNetwork([]int{4},
		NewDense("h", 4, 16),
		NewSigmoid("h.act"),
		NewDropout("do", 0.2, 7),
		NewDense("out", 16, 2),
		NewSigmoid("out.act"),
	)
	InitNetwork(net, rng)
	loss := MSE{}
	for epoch := 0; epoch < 200; epoch++ {
		for i := 0; i < 20; i++ {
			label := i % 2
			x := tensor.New(4)
			for j := range x.Data {
				x.Data[j] = rng.NormFloat64()*0.1 + float64(label) - 0.5
			}
			net.ZeroGrad()
			out := net.Forward(x)
			net.Backward(loss.Grad(out, OneHot(label, 2)))
			for _, p := range net.Params() {
				p.W.AddScaled(-0.5, p.G)
			}
		}
	}
	SetNetworkTraining(net, false)
	correct := 0
	for i := 0; i < 100; i++ {
		label := i % 2
		x := tensor.New(4)
		for j := range x.Data {
			x.Data[j] = rng.NormFloat64()*0.1 + float64(label) - 0.5
		}
		if net.Predict(x) == label {
			correct++
		}
	}
	if correct < 90 {
		t.Errorf("dropout net accuracy %d/100 on separable data", correct)
	}
}
