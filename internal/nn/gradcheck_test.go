package nn

import (
	"math"
	"math/rand"
	"testing"

	"cdl/internal/tensor"
)

// numGrad computes the central-difference gradient of loss(x) with respect
// to the entries of x.
func numGrad(x *tensor.T, loss func() float64) *tensor.T {
	const h = 1e-6
	g := tensor.New(x.Shape()...)
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		lp := loss()
		x.Data[i] = orig - h
		lm := loss()
		x.Data[i] = orig
		g.Data[i] = (lp - lm) / (2 * h)
	}
	return g
}

// checkLayerGrads verifies Backward against finite differences for both the
// input gradient and every parameter gradient of a layer, using MSE loss
// against a random target.
func checkLayerGrads(t *testing.T, l Layer, inShape []int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	in := tensor.New(inShape...)
	for i := range in.Data {
		in.Data[i] = rng.NormFloat64()
	}
	outShape := l.OutShape(inShape)
	target := tensor.New(outShape...)
	for i := range target.Data {
		target.Data[i] = rng.Float64()
	}
	var loss Loss = MSE{}

	forwardLoss := func() float64 {
		return loss.Loss(l.Forward(in), target)
	}

	// analytic gradients
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
	out := l.Forward(in)
	gradIn := l.Backward(loss.Grad(out, target))

	// numeric input gradient
	ng := numGrad(in, forwardLoss)
	assertClose(t, "input grad", gradIn, ng, 1e-4)

	// numeric parameter gradients
	for _, p := range l.Params() {
		np := numGrad(p.W, forwardLoss)
		assertClose(t, p.Name+" grad", p.G, np, 1e-4)
	}
}

func assertClose(t *testing.T, what string, got, want *tensor.T, tol float64) {
	t.Helper()
	if got.Numel() != want.Numel() {
		t.Fatalf("%s: numel %d vs %d", what, got.Numel(), want.Numel())
	}
	for i := range got.Data {
		diff := math.Abs(got.Data[i] - want.Data[i])
		scale := 1 + math.Abs(want.Data[i])
		if diff/scale > tol {
			t.Fatalf("%s: element %d analytic %.8g vs numeric %.8g (rel diff %.3g)",
				what, i, got.Data[i], want.Data[i], diff/scale)
		}
	}
}

func TestGradConv2DSingleChannel(t *testing.T) {
	l := NewConv2D("c", 1, 2, 3)
	rng := rand.New(rand.NewSource(1))
	XavierConv(l, rng)
	checkLayerGrads(t, l, []int{1, 6, 6}, 2)
}

func TestGradConv2DMultiChannel(t *testing.T) {
	l := NewConv2D("c", 3, 4, 2)
	rng := rand.New(rand.NewSource(3))
	XavierConv(l, rng)
	checkLayerGrads(t, l, []int{3, 5, 5}, 4)
}

func TestGradDense(t *testing.T) {
	l := NewDense("d", 7, 4)
	rng := rand.New(rand.NewSource(5))
	XavierDense(l, rng)
	checkLayerGrads(t, l, []int{7}, 6)
}

func TestGradSigmoid(t *testing.T) {
	checkLayerGrads(t, NewSigmoid("s"), []int{2, 3, 3}, 7)
}

func TestGradTanh(t *testing.T) {
	checkLayerGrads(t, NewTanh("t"), []int{5}, 8)
}

func TestGradReLU(t *testing.T) {
	// Shift inputs away from 0 to avoid the kink in finite differences.
	rng := rand.New(rand.NewSource(9))
	l := NewReLU("r")
	in := tensor.New(4, 3)
	for i := range in.Data {
		v := rng.NormFloat64()
		if math.Abs(v) < 0.1 {
			v = math.Copysign(0.2, v)
		}
		in.Data[i] = v
	}
	target := tensor.New(4, 3)
	for i := range target.Data {
		target.Data[i] = rng.Float64()
	}
	loss := MSE{}
	out := l.Forward(in)
	gradIn := l.Backward(loss.Grad(out, target))
	ng := numGrad(in, func() float64 { return loss.Loss(l.Forward(in), target) })
	assertClose(t, "relu input grad", gradIn, ng, 1e-4)
}

func TestGradMaxPool(t *testing.T) {
	// Distinct values avoid argmax ties that break finite differences.
	l := NewMaxPool2D("p", 2)
	in := tensor.New(2, 4, 4)
	perm := rand.New(rand.NewSource(10)).Perm(in.Numel())
	for i, p := range perm {
		in.Data[i] = float64(p) * 0.37
	}
	target := tensor.New(2, 2, 2)
	for i := range target.Data {
		target.Data[i] = float64(i)
	}
	loss := MSE{}
	out := l.Forward(in)
	gradIn := l.Backward(loss.Grad(out, target))
	ng := numGrad(in, func() float64 { return loss.Loss(l.Forward(in), target) })
	assertClose(t, "maxpool input grad", gradIn, ng, 1e-4)
}

func TestGradMeanPool(t *testing.T) {
	checkLayerGrads(t, NewMeanPool2D("p", 2), []int{2, 4, 4}, 11)
}

func TestGradFlatten(t *testing.T) {
	checkLayerGrads(t, NewFlatten("f"), []int{2, 3, 4}, 12)
}

func TestGradSoftmaxLayer(t *testing.T) {
	checkLayerGrads(t, NewSoftmax("sm"), []int{6}, 13)
}

func TestGradSoftmaxCrossEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	pred := tensor.New(5)
	for i := range pred.Data {
		pred.Data[i] = rng.NormFloat64()
	}
	target := OneHot(2, 5)
	loss := SoftmaxCrossEntropy{}
	g := loss.Grad(pred, target)
	ng := numGrad(pred, func() float64 { return loss.Loss(pred, target) })
	assertClose(t, "xent grad", g, ng, 1e-4)
}

func TestGradMSELoss(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	pred := tensor.New(5)
	target := tensor.New(5)
	for i := range pred.Data {
		pred.Data[i] = rng.NormFloat64()
		target.Data[i] = rng.NormFloat64()
	}
	loss := MSE{}
	g := loss.Grad(pred, target)
	ng := numGrad(pred, func() float64 { return loss.Loss(pred, target) })
	assertClose(t, "mse grad", g, ng, 1e-6)
}

// End-to-end gradient check through a small full network (conv → sigmoid →
// pool → flatten → dense → sigmoid) — the exact layer sequence of the
// paper's baselines.
func TestGradFullNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	net := NewNetwork([]int{1, 8, 8},
		NewConv2D("C1", 1, 2, 3),
		NewSigmoid("C1.act"),
		NewMaxPool2D("P1", 2),
		NewFlatten("flat"),
		NewDense("FC", 2*3*3, 4),
		NewSigmoid("FC.act"),
	)
	InitNetwork(net, rng)

	in := tensor.New(1, 8, 8)
	for i := range in.Data {
		in.Data[i] = rng.NormFloat64()
	}
	target := OneHot(1, 4)
	loss := MSE{}

	net.ZeroGrad()
	out := net.Forward(in)
	gradIn := net.Backward(loss.Grad(out, target))

	forwardLoss := func() float64 { return loss.Loss(net.Forward(in), target) }
	ng := numGrad(in, forwardLoss)
	assertClose(t, "network input grad", gradIn, ng, 1e-4)

	for _, p := range net.Params() {
		np := numGrad(p.W, forwardLoss)
		assertClose(t, "network "+p.Name, p.G, np, 1e-4)
	}
}
