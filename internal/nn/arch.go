package nn

import (
	"fmt"
	"math/rand"
)

// Arch bundles a baseline DLN with the metadata the CDL cascade needs: the
// tap points after each pooling layer where per-stage feature vectors are
// harvested (paper §IV: "the learnt feature vectors from the pooling layers
// are used as training inputs to the linear classifiers").
type Arch struct {
	// Name identifies the preset, e.g. "6-layer" (Table I) or "8-layer"
	// (Table II).
	Name string
	// Net is the baseline DLN.
	Net *Network
	// Taps[i] is the number of leading layers whose composition produces
	// stage i's feature tensor; i.e. features_i = Net.Layers[:Taps[i]]
	// applied to the input. One tap per pooling stage, in depth order.
	Taps []int
	// TapNames labels each tap ("P1", "P2", ...).
	TapNames []string
	// NumClasses is the width of the output layer (10 for MNIST).
	NumClasses int
}

// TapFeatureLen returns the flattened feature-vector length at tap i — the
// input width of the linear classifier O(i+1).
func (a *Arch) TapFeatureLen(i int) int {
	shape := a.Net.ShapeAt(a.Taps[i])
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// Validate checks internal consistency of the arch definition.
func (a *Arch) Validate() error {
	if a.Net == nil {
		return fmt.Errorf("nn: arch %q has nil network", a.Name)
	}
	out := a.Net.OutShape()
	if len(out) != 1 || out[0] != a.NumClasses {
		return fmt.Errorf("nn: arch %q output shape %v, want [%d]", a.Name, out, a.NumClasses)
	}
	prev := 0
	for i, t := range a.Taps {
		if t <= prev || t >= len(a.Net.Layers) {
			return fmt.Errorf("nn: arch %q tap %d = %d out of order or range", a.Name, i, t)
		}
		prev = t
	}
	if len(a.TapNames) != len(a.Taps) {
		return fmt.Errorf("nn: arch %q has %d tap names for %d taps", a.Name, len(a.TapNames), len(a.Taps))
	}
	return nil
}

// Arch6Layer builds the paper's Table I baseline:
//
//	I 28×28 → C1 5×5 conv, 6 maps (24×24) → P1 2×2 max pool (12×12)
//	        → C2 5×5 conv, 12 maps (8×8)  → P2 2×2 max pool (4×4)
//	        → FC 10
//
// with sigmoid activations after each convolution and the output layer.
// The MNIST_2C CDLN adds linear classifier O1 at the P1 tap.
func Arch6Layer(rng *rand.Rand) *Arch {
	net := NewNetwork([]int{1, 28, 28},
		NewConv2D("C1", 1, 6, 5),
		NewSigmoid("C1.act"),
		NewMaxPool2D("P1", 2),
		NewConv2D("C2", 6, 12, 5),
		NewSigmoid("C2.act"),
		NewMaxPool2D("P2", 2),
		NewFlatten("flat"),
		NewDense("FC", 12*4*4, 10),
		NewSigmoid("FC.act"),
	)
	InitNetwork(net, rng)
	a := &Arch{
		Name:       "6-layer",
		Net:        net,
		Taps:       []int{3}, // after P1
		TapNames:   []string{"P1"},
		NumClasses: 10,
	}
	if err := a.Validate(); err != nil {
		panic(err)
	}
	return a
}

// Arch8Layer builds the paper's Table II baseline:
//
//	I 28×28 → C1 3×3 conv, 3 maps (26×26) → P1 2×2 max pool (13×13)
//	        → C2 4×4 conv, 6 maps (10×10) → P2 2×2 max pool (5×5)
//	        → C3 3×3 conv, 9 maps (3×3)   → P3 1×1 pool (3×3)
//	        → FC 10
//
// with sigmoid activations. The MNIST_3C CDLN adds linear classifiers O1
// (P1 tap) and O2 (P2 tap); the P3 tap exists for the Fig. 7/9 stage-count
// sweeps (O3) but is rejected by Algorithm 1's gain rule.
func Arch8Layer(rng *rand.Rand) *Arch {
	net := NewNetwork([]int{1, 28, 28},
		NewConv2D("C1", 1, 3, 3),
		NewSigmoid("C1.act"),
		NewMaxPool2D("P1", 2),
		NewConv2D("C2", 3, 6, 4),
		NewSigmoid("C2.act"),
		NewMaxPool2D("P2", 2),
		NewConv2D("C3", 6, 9, 3),
		NewSigmoid("C3.act"),
		NewMaxPool2D("P3", 1),
		NewFlatten("flat"),
		NewDense("FC", 9*3*3, 10),
		NewSigmoid("FC.act"),
	)
	InitNetwork(net, rng)
	a := &Arch{
		Name:       "8-layer",
		Net:        net,
		Taps:       []int{3, 6, 9}, // after P1, P2, P3
		TapNames:   []string{"P1", "P2", "P3"},
		NumClasses: 10,
	}
	if err := a.Validate(); err != nil {
		panic(err)
	}
	return a
}

// ArchTiny builds a small 1-conv-stage network for fast unit and
// integration tests: I 12×12 → C1 3×3 conv, 2 maps → P1 2×2 → FC classes.
func ArchTiny(rng *rand.Rand, classes int) *Arch {
	net := NewNetwork([]int{1, 12, 12},
		NewConv2D("C1", 1, 2, 3),
		NewSigmoid("C1.act"),
		NewMaxPool2D("P1", 2),
		NewFlatten("flat"),
		NewDense("FC", 2*5*5, classes),
		NewSigmoid("FC.act"),
	)
	InitNetwork(net, rng)
	a := &Arch{
		Name:       "tiny",
		Net:        net,
		Taps:       []int{3},
		TapNames:   []string{"P1"},
		NumClasses: classes,
	}
	if err := a.Validate(); err != nil {
		panic(err)
	}
	return a
}
