package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cdl/internal/tensor"
)

func TestConvOutShape(t *testing.T) {
	c := NewConv2D("c", 1, 6, 5)
	got := c.OutShape([]int{1, 28, 28})
	want := []int{6, 24, 24}
	if !shapeEq(got, want) {
		t.Errorf("OutShape = %v, want %v", got, want)
	}
}

func TestConvShapePanics(t *testing.T) {
	c := NewConv2D("c", 2, 3, 5)
	for _, in := range [][]int{{1, 28, 28}, {2, 4, 4}, {2, 28}} {
		func(in []int) {
			defer func() {
				if recover() == nil {
					t.Errorf("OutShape(%v) did not panic", in)
				}
			}()
			c.OutShape(in)
		}(in)
	}
}

func TestConvForwardKnownValues(t *testing.T) {
	// 1 input channel, 1 output channel, 2x2 averaging-ish kernel, known sums.
	c := NewConv2D("c", 1, 1, 2)
	copy(c.Weight().W.Data, []float64{1, 1, 1, 1})
	c.Bias().W.Data[0] = 0.5
	in := tensor.FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	out := c.Forward(in)
	want := []float64{12.5, 16.5, 24.5, 28.5}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("conv out[%d]=%v want %v", i, out.Data[i], w)
		}
	}
}

func TestConvMultiChannelSumsFanIn(t *testing.T) {
	c := NewConv2D("c", 2, 1, 1)
	copy(c.Weight().W.Data, []float64{2, 3}) // w[0,0]=2, w[0,1]=3
	in := tensor.FromSlice([]float64{
		1, 1, // channel 0
		10, 10, // channel 1
	}, 2, 1, 2)
	out := c.Forward(in)
	for _, v := range out.Data {
		if v != 32 {
			t.Fatalf("conv fan-in got %v want 32", v)
		}
	}
}

func TestMaxPoolForward(t *testing.T) {
	p := NewMaxPool2D("p", 2)
	in := tensor.FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 1, 2, 2,
		1, 1, 2, 3,
	}, 1, 4, 4)
	out := p.Forward(in)
	want := []float64{4, 8, 9, 3}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("maxpool out[%d]=%v want %v", i, out.Data[i], w)
		}
	}
}

func TestMaxPoolFloorSemantics(t *testing.T) {
	p := NewMaxPool2D("p", 2)
	got := p.OutShape([]int{3, 13, 13})
	want := []int{3, 6, 6}
	if !shapeEq(got, want) {
		t.Errorf("OutShape(13x13, win 2) = %v, want %v (floor division)", got, want)
	}
	// 26 → 13 as in the paper's 8-layer P1
	got = p.OutShape([]int{3, 26, 26})
	if !shapeEq(got, []int{3, 13, 13}) {
		t.Errorf("OutShape(26x26) = %v, want [3 13 13]", got)
	}
}

func TestMaxPoolWindow1IsIdentity(t *testing.T) {
	p := NewMaxPool2D("P3", 1)
	rng := rand.New(rand.NewSource(1))
	in := tensor.New(9, 3, 3)
	for i := range in.Data {
		in.Data[i] = rng.NormFloat64()
	}
	out := p.Forward(in)
	if !tensor.Equal(in, out) {
		t.Error("window-1 max pool should be the identity (paper's P3 stage)")
	}
}

func TestMeanPoolForward(t *testing.T) {
	p := NewMeanPool2D("p", 2)
	in := tensor.FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
	}, 1, 2, 4)
	out := p.Forward(in)
	want := []float64{2.5, 6.5}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("meanpool out[%d]=%v want %v", i, out.Data[i], w)
		}
	}
}

func TestDenseForwardKnown(t *testing.T) {
	d := NewDense("d", 3, 2)
	copy(d.Weight().W.Data, []float64{1, 2, 3, 4, 5, 6})
	copy(d.Bias().W.Data, []float64{0.5, -0.5})
	in := tensor.FromSlice([]float64{1, 0, -1}, 3)
	out := d.Forward(in)
	if out.Data[0] != -1.5 || out.Data[1] != -2.5 {
		t.Errorf("dense out = %v, want [-1.5 -2.5]", out.Data)
	}
}

func TestDenseAcceptsAnyShapeWithRightNumel(t *testing.T) {
	d := NewDense("d", 6, 2)
	in := tensor.New(2, 3) // 6 elements, rank 2
	if out := d.Forward(in); out.Numel() != 2 {
		t.Error("dense should flatten compatible inputs")
	}
}

func TestSigmoidRange(t *testing.T) {
	s := NewSigmoid("s")
	in := tensor.FromSlice([]float64{-100, 0, 100}, 3)
	out := s.Forward(in)
	if out.Data[0] > 1e-10 || math.Abs(out.Data[1]-0.5) > 1e-12 || out.Data[2] < 1-1e-10 {
		t.Errorf("sigmoid values wrong: %v", out.Data)
	}
}

func TestSoftmaxVecProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := tensor.New(rng.Intn(8) + 2)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64() * 10
		}
		p := SoftmaxVec(x)
		sum := 0.0
		for _, v := range p.Data {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		// order preserved
		return p.ArgMax() == x.ArgMax()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxVecExtreme(t *testing.T) {
	x := tensor.FromSlice([]float64{1000, -1000}, 2)
	p := SoftmaxVec(x)
	if math.IsNaN(p.Data[0]) || math.Abs(p.Data[0]-1) > 1e-9 {
		t.Errorf("softmax overflow handling broken: %v", p.Data)
	}
}

func TestOneHot(t *testing.T) {
	h := OneHot(3, 10)
	if h.Numel() != 10 || h.Data[3] != 1 || h.Sum() != 1 {
		t.Errorf("OneHot wrong: %v", h.Data)
	}
	defer func() {
		if recover() == nil {
			t.Error("OneHot out of range did not panic")
		}
	}()
	OneHot(10, 10)
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	layers := []Layer{
		NewConv2D("c", 1, 1, 2),
		NewMaxPool2D("p", 2),
		NewMeanPool2D("mp", 2),
		NewDense("d", 4, 2),
		NewSigmoid("s"),
		NewTanh("t"),
		NewReLU("r"),
		NewFlatten("f"),
		NewSoftmax("sm"),
	}
	for _, l := range layers {
		func(l Layer) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s.Backward before Forward did not panic", l.Name())
				}
			}()
			l.Backward(tensor.New(2))
		}(l)
	}
}

// Pooling idempotence property: max-pooling an already-pooled constant
// plane with window 1 never changes it, and pooling preserves max value.
func TestQuickMaxPoolPreservesGlobalMax(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := tensor.New(1, 4, 4)
		for i := range in.Data {
			in.Data[i] = rng.NormFloat64()
		}
		p := NewMaxPool2D("p", 2)
		out := p.Forward(in)
		inMax, _ := in.Max()
		outMax, _ := out.Max()
		return inMax == outMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Paper §II motivates max pooling as providing "translational invariance
// to small variations in positions of input images": a single activation
// peak moved anywhere within its pooling window must produce the same
// pooled output.
func TestMaxPoolTranslationInvarianceWithinWindow(t *testing.T) {
	p := NewMaxPool2D("p", 2)
	base := tensor.New(1, 4, 4)
	base.Set(1.0, 0, 0, 0)
	want := p.Forward(base).Clone()
	for dy := 0; dy < 2; dy++ {
		for dx := 0; dx < 2; dx++ {
			in := tensor.New(1, 4, 4)
			in.Set(1.0, 0, dy, dx)
			got := p.Forward(in)
			if !tensor.Equal(got, want) {
				t.Errorf("peak at (%d,%d) changed the pooled output", dy, dx)
			}
		}
	}
}

// Shifting the whole input by one full pooling window shifts the pooled
// output by exactly one cell (equivariance at window granularity).
func TestMaxPoolWindowEquivariance(t *testing.T) {
	p := NewMaxPool2D("p", 2)
	rng := rand.New(rand.NewSource(77))
	in := tensor.New(1, 6, 6)
	// Fill only the top-left 4x4 region so a 2-pixel shift stays in range.
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			in.Set(rng.Float64(), 0, y, x)
		}
	}
	shifted := tensor.New(1, 6, 6)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			shifted.Set(in.At(0, y, x), 0, y+2, x+2)
		}
	}
	a := p.Forward(in).Clone()
	b := p.Forward(shifted)
	for y := 0; y < 2; y++ {
		for x := 0; x < 2; x++ {
			if a.At(0, y, x) != b.At(0, y+1, x+1) {
				t.Fatalf("pooled output not equivariant at (%d,%d)", y, x)
			}
		}
	}
}
