package nn

import (
	"fmt"
	"strings"

	"cdl/internal/tensor"
)

// Network is a sequential stack of layers with a fixed input shape. It is
// the paper's baseline DLN container: internal/core taps per-layer
// activations from it to feed the CDL linear classifiers.
type Network struct {
	InShape []int
	Layers  []Layer
}

// NewNetwork constructs a network for inputs of the given shape.
func NewNetwork(inShape []int, layers ...Layer) *Network {
	n := &Network{InShape: append([]int(nil), inShape...), Layers: layers}
	n.OutShape() // validate layer chain eagerly
	return n
}

// Append adds layers to the end of the network, validating shapes.
func (n *Network) Append(layers ...Layer) {
	n.Layers = append(n.Layers, layers...)
	n.OutShape()
}

// OutShape returns the network's final output shape, validating every
// intermediate shape along the way.
func (n *Network) OutShape() []int {
	shape := append([]int(nil), n.InShape...)
	for _, l := range n.Layers {
		shape = l.OutShape(shape)
	}
	return shape
}

// ShapeAt returns the activation shape after the first k layers
// (ShapeAt(0) is the input shape).
func (n *Network) ShapeAt(k int) []int {
	if k < 0 || k > len(n.Layers) {
		panic(fmt.Sprintf("nn: ShapeAt(%d) out of range [0,%d]", k, len(n.Layers)))
	}
	shape := append([]int(nil), n.InShape...)
	for _, l := range n.Layers[:k] {
		shape = l.OutShape(shape)
	}
	return shape
}

// Forward runs a full forward pass for one sample.
func (n *Network) Forward(x *tensor.T) *tensor.T {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// ForwardRange runs layers [from, to) on x. It is the incremental
// evaluation primitive behind CDL early exit: stage i resumes from the
// activation where stage i−1 stopped, so deactivated deep layers are never
// executed.
func (n *Network) ForwardRange(x *tensor.T, from, to int) *tensor.T {
	if from < 0 || to > len(n.Layers) || from > to {
		panic(fmt.Sprintf("nn: ForwardRange[%d,%d) out of range [0,%d]", from, to, len(n.Layers)))
	}
	for _, l := range n.Layers[from:to] {
		x = l.Forward(x)
	}
	return x
}

// Activations runs x through the network and returns every intermediate
// activation: result[0] is x itself and result[k] is the output of layer
// k−1, so len(result) == len(Layers)+1. CDL training uses this to harvest
// the per-stage CNN features (Algorithm 1 step 5).
func (n *Network) Activations(x *tensor.T) []*tensor.T {
	acts := make([]*tensor.T, 0, len(n.Layers)+1)
	acts = append(acts, x)
	for _, l := range n.Layers {
		x = l.Forward(x)
		acts = append(acts, x)
	}
	return acts
}

// Backward backpropagates dL/dOutput through the whole network, returning
// dL/dInput and accumulating parameter gradients. Must follow a Forward on
// the same sample.
func (n *Network) Backward(grad *tensor.T) *tensor.T {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns all trainable parameters in layer order.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears all parameter gradients.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// NumParams returns the total number of scalar weights and biases.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += p.W.Numel()
	}
	return total
}

// Clone returns a replica network sharing parameter storage but owning
// private caches and gradient buffers; replicas support concurrent
// Forward/Backward as long as no one updates the shared weights meanwhile.
func (n *Network) Clone() *Network {
	layers := make([]Layer, len(n.Layers))
	for i, l := range n.Layers {
		layers[i] = l.Clone()
	}
	return &Network{InShape: append([]int(nil), n.InShape...), Layers: layers}
}

// DeepClone returns a replica with private copies of the weights as well
// as the caches and gradients, for callers that mutate parameters (e.g.
// fixed-point quantization) without touching the original model.
func (n *Network) DeepClone() *Network {
	c := n.Clone()
	for _, p := range c.Params() {
		p.W = p.W.Clone()
	}
	return c
}

// LayerIndex returns the index of the layer with the given name, or -1.
func (n *Network) LayerIndex(name string) int {
	for i, l := range n.Layers {
		if l.Name() == name {
			return i
		}
	}
	return -1
}

// Predict runs a forward pass and returns the argmax class of the output.
func (n *Network) Predict(x *tensor.T) int {
	return n.Forward(x).ArgMax()
}

// Summary renders a human-readable table of layers and shapes.
func (n *Network) Summary() string {
	var b strings.Builder
	shape := append([]int(nil), n.InShape...)
	fmt.Fprintf(&b, "%-10s %-14s %v\n", "input", "", shape)
	for _, l := range n.Layers {
		shape = l.OutShape(shape)
		params := 0
		for _, p := range l.Params() {
			params += p.W.Numel()
		}
		fmt.Fprintf(&b, "%-10s %-14s %v params=%d\n", l.Name(), fmt.Sprintf("%T", l), shape, params)
	}
	fmt.Fprintf(&b, "total params: %d\n", n.NumParams())
	return b.String()
}
