package nn

import (
	"fmt"

	"cdl/internal/tensor"
)

// Dense is a fully connected layer mapping a flat input vector of length in
// to a vector of length out: y = W·x + b. The paper's final FC output layer
// and the per-stage linear classifiers are both Dense layers (the latter
// wrapped by internal/linclass).
type Dense struct {
	name    string
	in, out int

	weight *Param // [out, in]
	bias   *Param // [out]

	x *tensor.T // cached input
}

// NewDense constructs a dense layer with zeroed weights; call an
// initializer from init.go (e.g. XavierDense) before training.
func NewDense(name string, in, out int) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: NewDense bad dims in=%d out=%d", in, out))
	}
	return &Dense{
		name: name, in: in, out: out,
		weight: &Param{Name: name + ".w", W: tensor.New(out, in), G: tensor.New(out, in)},
		bias:   &Param{Name: name + ".b", W: tensor.New(out), G: tensor.New(out)},
	}
}

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// In returns the input width.
func (d *Dense) In() int { return d.in }

// Out returns the output width.
func (d *Dense) Out() int { return d.out }

// Weight exposes the weight parameter.
func (d *Dense) Weight() *Param { return d.weight }

// Bias exposes the bias parameter.
func (d *Dense) Bias() *Param { return d.bias }

// OutShape implements Layer.
func (d *Dense) OutShape(in []int) []int {
	mustShape(d.name, in, []int{d.in})
	return []int{d.out}
}

// Forward implements Layer.
func (d *Dense) Forward(in *tensor.T) *tensor.T {
	if in.Numel() != d.in {
		panic(fmt.Sprintf("nn: %s input numel %d, want %d", d.name, in.Numel(), d.in))
	}
	x := in.Flatten()
	y := tensor.New(d.out)
	tensor.MatVecInto(d.weight.W, x, y)
	for o := 0; o < d.out; o++ {
		y.Data[o] += d.bias.W.Data[o]
	}
	d.x = x
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(gradOut *tensor.T) *tensor.T {
	if d.x == nil {
		panic("nn: Dense.Backward before Forward")
	}
	if gradOut.Numel() != d.out {
		panic(fmt.Sprintf("nn: %s gradOut numel %d, want %d", d.name, gradOut.Numel(), d.out))
	}
	g := gradOut.Flatten()
	tensor.OuterAccum(d.weight.G, g, d.x)
	d.bias.G.Add(g)
	gradIn := tensor.New(d.in)
	tensor.MatTVecInto(d.weight.W, g, gradIn)
	return gradIn
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.weight, d.bias} }

// Clone implements Layer.
func (d *Dense) Clone() Layer {
	return &Dense{
		name: d.name, in: d.in, out: d.out,
		weight: &Param{Name: d.weight.Name, W: d.weight.W, G: tensor.New(d.out, d.in)},
		bias:   &Param{Name: d.bias.Name, W: d.bias.W, G: tensor.New(d.out)},
	}
}

// Flatten reshapes any input tensor into a rank-1 vector, remembering the
// original shape for the backward pass. It sits between the last pooling
// layer and the FC output layer.
type Flatten struct {
	name    string
	inShape []int
}

// NewFlatten constructs a flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name implements Layer.
func (f *Flatten) Name() string { return f.name }

// OutShape implements Layer.
func (f *Flatten) OutShape(in []int) []int {
	n := 1
	for _, d := range in {
		n *= d
	}
	return []int{n}
}

// Forward implements Layer.
func (f *Flatten) Forward(in *tensor.T) *tensor.T {
	f.inShape = in.Shape()
	return in.Flatten()
}

// Backward implements Layer.
func (f *Flatten) Backward(gradOut *tensor.T) *tensor.T {
	if f.inShape == nil {
		panic("nn: Flatten.Backward before Forward")
	}
	return gradOut.Reshape(f.inShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Clone implements Layer.
func (f *Flatten) Clone() Layer { return &Flatten{name: f.name} }
