package nn

// im2col.go lowers batched valid convolution onto the GEMM kernel: the
// classic im2col expansion rearranges every k×k input patch into a column,
// so a whole batch's convolution becomes one [outC, inC·k·k]×[inC·k·k,
// B·oh·ow] matrix product (gemm.go). Rows are laid out (ic, ky, kx)-major —
// the same order Conv2DValid visits kernel taps — which is what lets
// GemmGrouped's per-channel grouped accumulation reproduce the reference
// summation exactly.

import (
	"fmt"

	"cdl/internal/tensor"
)

// Im2Col expands a batch of images in (shape [B, C, H, W]) for a square k×k
// valid convolution into the column matrix of shape [C·k·k, B·oh·ow], where
// oh = H−k+1 and ow = W−k+1. Column j = (b·oh + oy)·ow + ox holds the patch
// of sample b whose top-left corner is (oy, ox); row r = (ic·k + ky)·k + kx
// holds input channel ic at kernel tap (ky, kx).
func Im2Col(in *tensor.T, k int) *tensor.T {
	if in.Rank() != 4 {
		panic(fmt.Sprintf("nn: Im2Col input rank %d, want [B C H W]", in.Rank()))
	}
	bsz, c, h, w := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	oh, ow := h-k+1, w-k+1
	if k <= 0 || oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: Im2Col kernel %d too large for input %v", k, in.Shape()))
	}
	cols := tensor.New(c*k*k, bsz*oh*ow)
	im2colInto(in.Data, bsz, c, h, w, k, cols.Data)
	return cols
}

// im2colInto is the allocation-free core of Im2Col: it fills cols (length
// c·k·k · b·oh·ow) from the batch at in (length b·c·h·w). Each (ic, ky, kx)
// row is a gather of contiguous ow-length runs, so the inner loop is a pure
// copy.
func im2colInto(in []float64, bsz, c, h, w, k int, cols []float64) {
	oh, ow := h-k+1, w-k+1
	planeIn := h * w
	chw := c * planeIn
	ncols := bsz * oh * ow
	for ic := 0; ic < c; ic++ {
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				r := (ic*k+ky)*k + kx
				dst := cols[r*ncols : (r+1)*ncols]
				di := 0
				for bi := 0; bi < bsz; bi++ {
					base := bi*chw + ic*planeIn
					for oy := 0; oy < oh; oy++ {
						src := in[base+(oy+ky)*w+kx:][:ow]
						// Manual copy: the runs are short (ow elements, tens
						// of bytes), where a copy() call's memmove overhead
						// costs more than the moves themselves.
						d := dst[di:][:ow]
						for x, v := range src {
							d[x] = v
						}
						di += ow
					}
				}
			}
		}
	}
}
