package nn

import (
	"fmt"
	"math"

	"cdl/internal/tensor"
)

// Loss scores a prediction against a target and produces the gradient of
// the loss with respect to the prediction.
type Loss interface {
	// Name identifies the loss in logs.
	Name() string
	// Loss returns the scalar loss.
	Loss(pred, target *tensor.T) float64
	// Grad returns dLoss/dPred.
	Grad(pred, target *tensor.T) *tensor.T
}

// MSE is the half squared error loss L = ½·Σ(p−t)², the "least mean
// square" criterion the paper trains both the baseline DLN and the
// per-stage linear classifiers with (Algorithm 1 step 7).
type MSE struct{}

// Name implements Loss.
func (MSE) Name() string { return "mse" }

// Loss implements Loss.
func (MSE) Loss(pred, target *tensor.T) float64 {
	if pred.Numel() != target.Numel() {
		panic(fmt.Sprintf("nn: MSE size mismatch %d vs %d", pred.Numel(), target.Numel()))
	}
	s := 0.0
	for i, p := range pred.Data {
		d := p - target.Data[i]
		s += d * d
	}
	return 0.5 * s
}

// Grad implements Loss: dL/dp = p − t.
func (MSE) Grad(pred, target *tensor.T) *tensor.T {
	if pred.Numel() != target.Numel() {
		panic(fmt.Sprintf("nn: MSE size mismatch %d vs %d", pred.Numel(), target.Numel()))
	}
	g := pred.Clone()
	g.Sub(target)
	return g
}

// SoftmaxCrossEntropy treats pred as raw logits, applies an internal
// softmax and computes the cross-entropy against a one-hot (or soft)
// target. Grad returns the standard softmax−target shortcut. Provided as a
// training ablation; the paper itself uses MSE.
type SoftmaxCrossEntropy struct{}

// Name implements Loss.
func (SoftmaxCrossEntropy) Name() string { return "softmax-xent" }

// Loss implements Loss.
func (SoftmaxCrossEntropy) Loss(pred, target *tensor.T) float64 {
	if pred.Numel() != target.Numel() {
		panic(fmt.Sprintf("nn: xent size mismatch %d vs %d", pred.Numel(), target.Numel()))
	}
	p := SoftmaxVec(pred)
	s := 0.0
	for i, t := range target.Data {
		if t != 0 {
			s -= t * math.Log(math.Max(p.Data[i], 1e-300))
		}
	}
	return s
}

// Grad implements Loss.
func (SoftmaxCrossEntropy) Grad(pred, target *tensor.T) *tensor.T {
	if pred.Numel() != target.Numel() {
		panic(fmt.Sprintf("nn: xent size mismatch %d vs %d", pred.Numel(), target.Numel()))
	}
	g := SoftmaxVec(pred)
	g.Sub(target)
	return g
}

// OneHot builds a one-hot target vector of the given width.
func OneHot(label, width int) *tensor.T {
	if label < 0 || label >= width {
		panic(fmt.Sprintf("nn: OneHot label %d out of range [0,%d)", label, width))
	}
	t := tensor.New(width)
	t.Data[label] = 1
	return t
}
