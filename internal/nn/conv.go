package nn

import (
	"fmt"

	"cdl/internal/tensor"
)

// Conv2D is a valid (no padding, stride 1) multi-channel 2-D convolution
// layer. Input shape is [inC, H, W]; output shape is
// [outC, H-k+1, W-k+1] for square k×k kernels.
//
// Weights are stored as a rank-4 tensor [outC, inC, k, k] plus a bias per
// output map, matching the classic LeNet/DeepLearnToolbox formulation used
// by the paper's baseline DLNs (Tables I and II).
type Conv2D struct {
	name         string
	inC, outC, k int

	weight *Param // [outC, inC, k, k]
	bias   *Param // [outC]

	// caches for Backward
	in  *tensor.T
	out *tensor.T

	// scratch for the batched fast path (batch.go): the im2col column
	// matrix and the GEMM output, grown on demand and reused across
	// ForwardBatch calls. Clone starts replicas with nil scratch, so
	// replicas never share these buffers.
	bcols []float64
	bgemm []float64
}

// NewConv2D constructs a conv layer with zeroed weights; call an
// initializer from init.go (e.g. XavierConv) before training.
func NewConv2D(name string, inC, outC, k int) *Conv2D {
	if inC <= 0 || outC <= 0 || k <= 0 {
		panic(fmt.Sprintf("nn: NewConv2D bad dims inC=%d outC=%d k=%d", inC, outC, k))
	}
	return &Conv2D{
		name: name,
		inC:  inC, outC: outC, k: k,
		weight: &Param{Name: name + ".w", W: tensor.New(outC, inC, k, k), G: tensor.New(outC, inC, k, k)},
		bias:   &Param{Name: name + ".b", W: tensor.New(outC), G: tensor.New(outC)},
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// InChannels returns the number of input maps.
func (c *Conv2D) InChannels() int { return c.inC }

// OutChannels returns the number of output maps.
func (c *Conv2D) OutChannels() int { return c.outC }

// KernelSize returns the square kernel side length.
func (c *Conv2D) KernelSize() int { return c.k }

// Weight exposes the weight parameter (for initialization and hardware
// modelling).
func (c *Conv2D) Weight() *Param { return c.weight }

// Bias exposes the bias parameter.
func (c *Conv2D) Bias() *Param { return c.bias }

// OutShape implements Layer.
func (c *Conv2D) OutShape(in []int) []int {
	if len(in) != 3 || in[0] != c.inC {
		panic(fmt.Sprintf("nn: %s input shape %v, want [%d H W]", c.name, in, c.inC))
	}
	oh, ow := in[1]-c.k+1, in[2]-c.k+1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: %s kernel %d too large for input %v", c.name, c.k, in))
	}
	return []int{c.outC, oh, ow}
}

// Forward implements Layer.
func (c *Conv2D) Forward(in *tensor.T) *tensor.T {
	os := c.OutShape(in.Shape())
	oh, ow := os[1], os[2]
	h, w := in.Dim(1), in.Dim(2)
	out := tensor.New(c.outC, oh, ow)
	planeIn := h * w
	planeOut := oh * ow
	kk := c.k * c.k
	for oc := 0; oc < c.outC; oc++ {
		oplane := tensor.FromSlice(out.Data[oc*planeOut:(oc+1)*planeOut], oh, ow)
		for ic := 0; ic < c.inC; ic++ {
			iplane := tensor.FromSlice(in.Data[ic*planeIn:(ic+1)*planeIn], h, w)
			kern := tensor.FromSlice(c.weight.W.Data[(oc*c.inC+ic)*kk:(oc*c.inC+ic+1)*kk], c.k, c.k)
			tensor.Conv2DValid(iplane, kern, oplane)
		}
		b := c.bias.W.Data[oc]
		for i := range oplane.Data {
			oplane.Data[i] += b
		}
	}
	c.in, c.out = in, out
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(gradOut *tensor.T) *tensor.T {
	if c.in == nil {
		panic("nn: Conv2D.Backward before Forward")
	}
	in := c.in
	h, w := in.Dim(1), in.Dim(2)
	oh, ow := gradOut.Dim(1), gradOut.Dim(2)
	gradIn := tensor.New(c.inC, h, w)
	planeIn := h * w
	planeOut := oh * ow
	kk := c.k * c.k
	for oc := 0; oc < c.outC; oc++ {
		gplane := tensor.FromSlice(gradOut.Data[oc*planeOut:(oc+1)*planeOut], oh, ow)
		// bias gradient: sum over the output plane
		s := 0.0
		for _, v := range gplane.Data {
			s += v
		}
		c.bias.G.Data[oc] += s
		for ic := 0; ic < c.inC; ic++ {
			iplane := tensor.FromSlice(in.Data[ic*planeIn:(ic+1)*planeIn], h, w)
			kern := tensor.FromSlice(c.weight.W.Data[(oc*c.inC+ic)*kk:(oc*c.inC+ic+1)*kk], c.k, c.k)
			gw := tensor.FromSlice(c.weight.G.Data[(oc*c.inC+ic)*kk:(oc*c.inC+ic+1)*kk], c.k, c.k)
			// dW = valid correlation of input with the output gradient
			tensor.Conv2DValid(iplane, gplane, gw)
			// dIn = full convolution of the output gradient with the kernel
			giplane := tensor.FromSlice(gradIn.Data[ic*planeIn:(ic+1)*planeIn], h, w)
			tensor.Conv2DFull(gplane, kern, giplane)
		}
	}
	return gradIn
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.weight, c.bias} }

// Clone implements Layer: the replica shares weight storage (W) but owns
// fresh gradient buffers and caches, so replicas may run Forward/Backward
// concurrently as long as weights are not updated meanwhile.
func (c *Conv2D) Clone() Layer {
	return &Conv2D{
		name: c.name,
		inC:  c.inC, outC: c.outC, k: c.k,
		weight: &Param{Name: c.weight.Name, W: c.weight.W, G: tensor.New(c.outC, c.inC, c.k, c.k)},
		bias:   &Param{Name: c.bias.Name, W: c.bias.W, G: tensor.New(c.outC)},
	}
}
