package nn

import (
	"math"

	"cdl/internal/tensor"
)

// Sigmoid applies the logistic function 1/(1+e^-x) element-wise. The
// paper's networks (after Palm [19]) use sigmoid activations throughout,
// and the per-stage confidence values compared against δ are sigmoid
// outputs in [0,1].
type Sigmoid struct {
	name string
	out  *tensor.T
}

// NewSigmoid constructs a sigmoid activation layer.
func NewSigmoid(name string) *Sigmoid { return &Sigmoid{name: name} }

// Name implements Layer.
func (s *Sigmoid) Name() string { return s.name }

// OutShape implements Layer.
func (s *Sigmoid) OutShape(in []int) []int { return append([]int(nil), in...) }

// Forward implements Layer.
func (s *Sigmoid) Forward(in *tensor.T) *tensor.T {
	out := in.Map(sigmoid)
	s.out = out
	return out
}

// Backward implements Layer.
func (s *Sigmoid) Backward(gradOut *tensor.T) *tensor.T {
	if s.out == nil {
		panic("nn: Sigmoid.Backward before Forward")
	}
	gradIn := gradOut.Clone()
	for i, y := range s.out.Data {
		gradIn.Data[i] *= y * (1 - y)
	}
	return gradIn
}

// Params implements Layer.
func (s *Sigmoid) Params() []*Param { return nil }

// Clone implements Layer.
func (s *Sigmoid) Clone() Layer { return &Sigmoid{name: s.name} }

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Tanh applies the hyperbolic tangent element-wise.
type Tanh struct {
	name string
	out  *tensor.T
}

// NewTanh constructs a tanh activation layer.
func NewTanh(name string) *Tanh { return &Tanh{name: name} }

// Name implements Layer.
func (t *Tanh) Name() string { return t.name }

// OutShape implements Layer.
func (t *Tanh) OutShape(in []int) []int { return append([]int(nil), in...) }

// Forward implements Layer.
func (t *Tanh) Forward(in *tensor.T) *tensor.T {
	out := in.Map(math.Tanh)
	t.out = out
	return out
}

// Backward implements Layer.
func (t *Tanh) Backward(gradOut *tensor.T) *tensor.T {
	if t.out == nil {
		panic("nn: Tanh.Backward before Forward")
	}
	gradIn := gradOut.Clone()
	for i, y := range t.out.Data {
		gradIn.Data[i] *= 1 - y*y
	}
	return gradIn
}

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }

// Clone implements Layer.
func (t *Tanh) Clone() Layer { return &Tanh{name: t.name} }

// ReLU applies max(0, x) element-wise. Provided as an ablation alternative
// to the paper's sigmoid networks.
type ReLU struct {
	name string
	in   *tensor.T
}

// NewReLU constructs a ReLU activation layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// OutShape implements Layer.
func (r *ReLU) OutShape(in []int) []int { return append([]int(nil), in...) }

// Forward implements Layer.
func (r *ReLU) Forward(in *tensor.T) *tensor.T {
	r.in = in
	return in.Map(func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	})
}

// Backward implements Layer.
func (r *ReLU) Backward(gradOut *tensor.T) *tensor.T {
	if r.in == nil {
		panic("nn: ReLU.Backward before Forward")
	}
	gradIn := gradOut.Clone()
	for i, x := range r.in.Data {
		if x <= 0 {
			gradIn.Data[i] = 0
		}
	}
	return gradIn
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Clone implements Layer.
func (r *ReLU) Clone() Layer { return &ReLU{name: r.name} }

// Softmax normalizes a flat vector into a probability distribution. It is
// provided for the cross-entropy training ablation and for
// probability-style confidences; the paper's LMS-trained stages use sigmoid
// scores instead.
type Softmax struct {
	name string
	out  *tensor.T
}

// NewSoftmax constructs a softmax layer.
func NewSoftmax(name string) *Softmax { return &Softmax{name: name} }

// Name implements Layer.
func (s *Softmax) Name() string { return s.name }

// OutShape implements Layer.
func (s *Softmax) OutShape(in []int) []int { return append([]int(nil), in...) }

// Forward implements Layer.
func (s *Softmax) Forward(in *tensor.T) *tensor.T {
	out := SoftmaxVec(in)
	s.out = out
	return out
}

// Backward implements Layer: full Jacobian-vector product
// dL/dx_i = y_i*(g_i - Σ_j g_j y_j).
func (s *Softmax) Backward(gradOut *tensor.T) *tensor.T {
	if s.out == nil {
		panic("nn: Softmax.Backward before Forward")
	}
	dot := 0.0
	for i, y := range s.out.Data {
		dot += gradOut.Data[i] * y
	}
	gradIn := tensor.New(s.out.Shape()...)
	for i, y := range s.out.Data {
		gradIn.Data[i] = y * (gradOut.Data[i] - dot)
	}
	return gradIn
}

// Params implements Layer.
func (s *Softmax) Params() []*Param { return nil }

// Clone implements Layer.
func (s *Softmax) Clone() Layer { return &Softmax{name: s.name} }

// SoftmaxVec returns the numerically stable softmax of a flat tensor.
func SoftmaxVec(x *tensor.T) *tensor.T {
	mx, _ := x.Max()
	out := tensor.New(x.Shape()...)
	sum := 0.0
	for i, v := range x.Data {
		e := math.Exp(v - mx)
		out.Data[i] = e
		sum += e
	}
	if sum > 0 {
		inv := 1 / sum
		for i := range out.Data {
			out.Data[i] *= inv
		}
	}
	return out
}
