package nn

import (
	"fmt"

	"cdl/internal/tensor"
)

// MaxPool2D is a non-overlapping max pooling layer with a square window and
// stride equal to the window size. Input shape [C, H, W] maps to
// [C, H/win, W/win] (floor division; trailing rows/columns that do not fill
// a window are dropped, as in the paper's 26→13 and 10→5 reductions).
//
// A window of 1 is the identity spatially; the paper's P3 stage (3×3 in,
// 3×3 out) is modelled this way.
type MaxPool2D struct {
	name string
	win  int

	inShape []int
	argmax  []int // flat input index chosen per output element
}

// NewMaxPool2D constructs a max pool layer with the given window size.
func NewMaxPool2D(name string, win int) *MaxPool2D {
	if win <= 0 {
		panic(fmt.Sprintf("nn: NewMaxPool2D bad window %d", win))
	}
	return &MaxPool2D{name: name, win: win}
}

// Name implements Layer.
func (p *MaxPool2D) Name() string { return p.name }

// Window returns the pooling window size.
func (p *MaxPool2D) Window() int { return p.win }

// OutShape implements Layer.
func (p *MaxPool2D) OutShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("nn: %s input shape %v, want [C H W]", p.name, in))
	}
	oh, ow := in[1]/p.win, in[2]/p.win
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: %s window %d too large for input %v", p.name, p.win, in))
	}
	return []int{in[0], oh, ow}
}

// Forward implements Layer.
func (p *MaxPool2D) Forward(in *tensor.T) *tensor.T {
	os := p.OutShape(in.Shape())
	c, oh, ow := os[0], os[1], os[2]
	h, w := in.Dim(1), in.Dim(2)
	out := tensor.New(c, oh, ow)
	p.inShape = in.Shape()
	p.argmax = make([]int, c*oh*ow)
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				baseY, baseX := oy*p.win, ox*p.win
				bestIdx := ch*h*w + baseY*w + baseX
				best := in.Data[bestIdx]
				for dy := 0; dy < p.win; dy++ {
					rowOff := ch*h*w + (baseY+dy)*w + baseX
					for dx := 0; dx < p.win; dx++ {
						if v := in.Data[rowOff+dx]; v > best {
							best = v
							bestIdx = rowOff + dx
						}
					}
				}
				oidx := ch*oh*ow + oy*ow + ox
				out.Data[oidx] = best
				p.argmax[oidx] = bestIdx
			}
		}
	}
	return out
}

// Backward implements Layer: gradient routes to the argmax element of each
// window.
func (p *MaxPool2D) Backward(gradOut *tensor.T) *tensor.T {
	if p.argmax == nil {
		panic("nn: MaxPool2D.Backward before Forward")
	}
	gradIn := tensor.New(p.inShape...)
	for oidx, iidx := range p.argmax {
		gradIn.Data[iidx] += gradOut.Data[oidx]
	}
	return gradIn
}

// Params implements Layer.
func (p *MaxPool2D) Params() []*Param { return nil }

// Clone implements Layer.
func (p *MaxPool2D) Clone() Layer { return &MaxPool2D{name: p.name, win: p.win} }

// MeanPool2D is a non-overlapping average pooling layer (the variant used
// by Palm's toolbox [19]); shape semantics match MaxPool2D.
type MeanPool2D struct {
	name string
	win  int

	inShape []int
}

// NewMeanPool2D constructs a mean pool layer with the given window size.
func NewMeanPool2D(name string, win int) *MeanPool2D {
	if win <= 0 {
		panic(fmt.Sprintf("nn: NewMeanPool2D bad window %d", win))
	}
	return &MeanPool2D{name: name, win: win}
}

// Name implements Layer.
func (p *MeanPool2D) Name() string { return p.name }

// Window returns the pooling window size.
func (p *MeanPool2D) Window() int { return p.win }

// OutShape implements Layer.
func (p *MeanPool2D) OutShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("nn: %s input shape %v, want [C H W]", p.name, in))
	}
	oh, ow := in[1]/p.win, in[2]/p.win
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: %s window %d too large for input %v", p.name, p.win, in))
	}
	return []int{in[0], oh, ow}
}

// Forward implements Layer.
func (p *MeanPool2D) Forward(in *tensor.T) *tensor.T {
	os := p.OutShape(in.Shape())
	c, oh, ow := os[0], os[1], os[2]
	h, w := in.Dim(1), in.Dim(2)
	out := tensor.New(c, oh, ow)
	p.inShape = in.Shape()
	inv := 1.0 / float64(p.win*p.win)
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				s := 0.0
				for dy := 0; dy < p.win; dy++ {
					rowOff := ch*h*w + (oy*p.win+dy)*w + ox*p.win
					for dx := 0; dx < p.win; dx++ {
						s += in.Data[rowOff+dx]
					}
				}
				out.Data[ch*oh*ow+oy*ow+ox] = s * inv
			}
		}
	}
	return out
}

// Backward implements Layer: gradient spreads uniformly over each window.
func (p *MeanPool2D) Backward(gradOut *tensor.T) *tensor.T {
	if p.inShape == nil {
		panic("nn: MeanPool2D.Backward before Forward")
	}
	c, h, w := p.inShape[0], p.inShape[1], p.inShape[2]
	oh, ow := gradOut.Dim(1), gradOut.Dim(2)
	gradIn := tensor.New(c, h, w)
	inv := 1.0 / float64(p.win*p.win)
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				g := gradOut.Data[ch*oh*ow+oy*ow+ox] * inv
				for dy := 0; dy < p.win; dy++ {
					rowOff := ch*h*w + (oy*p.win+dy)*w + ox*p.win
					for dx := 0; dx < p.win; dx++ {
						gradIn.Data[rowOff+dx] += g
					}
				}
			}
		}
	}
	return gradIn
}

// Params implements Layer.
func (p *MeanPool2D) Params() []*Param { return nil }

// Clone implements Layer.
func (p *MeanPool2D) Clone() Layer { return &MeanPool2D{name: p.name, win: p.win} }
