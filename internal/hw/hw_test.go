package hw

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"cdl/internal/nn"
)

func TestTech45nmValid(t *testing.T) {
	tech := Tech45nm()
	if err := tech.Validate(); err != nil {
		t.Fatal(err)
	}
	// SRAM access must cost more than a MAC at this node — the imbalance
	// that separates energy ratios from op ratios.
	if tech.ESRAMRead <= tech.EMul {
		t.Error("SRAM read should cost more than a multiply at 45nm")
	}
	if tech.LeakagePerCycle() <= 0 {
		t.Error("leakage per cycle must be positive")
	}
}

func TestTechValidateRejects(t *testing.T) {
	tech := Tech45nm()
	tech.EMul = 0
	if tech.Validate() == nil {
		t.Error("zero EMul accepted")
	}
	tech = Tech45nm()
	tech.ClockMHz = -1
	if tech.Validate() == nil {
		t.Error("negative clock accepted")
	}
}

func TestAcceleratorValidate(t *testing.T) {
	acc := Default45nm()
	if err := acc.Validate(); err != nil {
		t.Fatal(err)
	}
	acc.PEs = 0
	if acc.Validate() == nil {
		t.Error("zero PEs accepted")
	}
	acc = Default45nm()
	acc.MemPorts = 0
	if acc.Validate() == nil {
		t.Error("zero ports accepted")
	}
}

func TestAnalyzeConvActivity(t *testing.T) {
	c := nn.NewConv2D("C1", 1, 6, 5)
	a := AnalyzeLayer(c, []int{1, 28, 28})
	wantMACs := float64(6 * 24 * 24 * 25)
	if a.MACs != wantMACs {
		t.Errorf("MACs = %v, want %v", a.MACs, wantMACs)
	}
	if a.WeightReads != wantMACs || a.InputReads != wantMACs {
		t.Error("direct dataflow should read one weight and one act per MAC")
	}
	if a.OutputWrites != float64(6*24*24) {
		t.Errorf("OutputWrites = %v", a.OutputWrites)
	}
}

func TestAnalyzePoolActivity(t *testing.T) {
	p := nn.NewMaxPool2D("P1", 2)
	a := AnalyzeLayer(p, []int{6, 24, 24})
	if a.Compares != float64(6*12*12*3) {
		t.Errorf("Compares = %v", a.Compares)
	}
	if a.MACs != 0 {
		t.Error("pool should have no MACs")
	}
}

func TestLayerEnergyComposition(t *testing.T) {
	acc := Default45nm()
	d := nn.NewDense("FC", 100, 10)
	e := acc.LayerEnergy(AnalyzeLayer(d, []int{100}))
	if e.Compute <= 0 || e.Memory <= 0 || e.Leakage <= 0 || e.Cycles <= 0 {
		t.Errorf("energy components must be positive: %+v", e)
	}
	if e.Total() != e.Compute+e.Memory+e.Leakage {
		t.Error("Total != sum of components")
	}
	// Under the direct dataflow, memory energy dominates compute at 45nm.
	if e.Memory <= e.Compute {
		t.Error("expected memory-dominated energy for dense layer")
	}
}

func TestRooflineCycles(t *testing.T) {
	acc := Accelerator{Tech: Tech45nm(), PEs: 1, MemPorts: 1000000}
	d := nn.NewDense("FC", 10, 10)
	act := AnalyzeLayer(d, []int{10})
	e := acc.LayerEnergy(act)
	// compute-bound: 100 MACs + 10 adds on 1 PE = 110 cycles
	if e.Cycles != 110 {
		t.Errorf("compute-bound cycles = %v, want 110", e.Cycles)
	}
	acc = Accelerator{Tech: Tech45nm(), PEs: 1000000, MemPorts: 1}
	e = acc.LayerEnergy(act)
	// memory-bound: 100+100 reads + 10 writes = 210 cycles
	if e.Cycles != 210 {
		t.Errorf("memory-bound cycles = %v, want 210", e.Cycles)
	}
}

func TestCumulativeEnergyMatchesTotal(t *testing.T) {
	arch := nn.Arch6Layer(rand.New(rand.NewSource(1)))
	acc := Default45nm()
	acts := AnalyzeNetwork(arch.Net)
	cum := acc.CumulativeEnergy(acts)
	if len(cum) != len(acts)+1 {
		t.Fatalf("cumulative len %d", len(cum))
	}
	total := acc.NetworkEnergy(acts).Total()
	diff := cum[len(cum)-1] - total
	if diff > 1e-6 || diff < -1e-6 {
		t.Errorf("cumulative end %v != network total %v", cum[len(cum)-1], total)
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Error("cumulative energy must be nondecreasing")
		}
	}
}

func TestPaperArchEnergyOrdering(t *testing.T) {
	// The 6-layer DLN must cost more energy than the 8-layer one (paper
	// §V.A), mirroring the op-count ordering.
	acc := Default45nm()
	e6 := acc.NetworkEnergy(AnalyzeNetwork(nn.Arch6Layer(rand.New(rand.NewSource(1))).Net)).Total()
	e8 := acc.NetworkEnergy(AnalyzeNetwork(nn.Arch8Layer(rand.New(rand.NewSource(1))).Net)).Total()
	if e6 <= e8 {
		t.Errorf("6-layer energy %v should exceed 8-layer %v", e6, e8)
	}
}

func TestLinearClassifierActivity(t *testing.T) {
	a := LinearClassifierActivity(507, 10)
	if a.MACs != 5070 || a.ActEvals != 10 {
		t.Errorf("LC activity = %+v", a)
	}
}

func TestSynthesizeNetlist(t *testing.T) {
	arch := nn.Arch8Layer(rand.New(rand.NewSource(1)))
	acc := Default45nm()
	nl := Synthesize("mnist3c", arch.Net, acc)
	if nl.Multipliers != acc.PEs {
		t.Errorf("multipliers %d", nl.Multipliers)
	}
	if nl.WeightBytes != arch.Net.NumParams()*2 {
		t.Errorf("weight bytes %d, want %d", nl.WeightBytes, arch.Net.NumParams()*2)
	}
	// Largest tensor in the 8-layer net is C1's 3×26×26 output.
	want := 2 * 3 * 26 * 26 * 2
	if nl.BufferBytes != want {
		t.Errorf("buffer bytes %d, want %d", nl.BufferBytes, want)
	}
	if nl.GateCount() <= 0 || nl.SRAMBytes() <= 0 {
		t.Error("non-positive netlist inventory")
	}
	if !strings.Contains(nl.String(), "kGE") {
		t.Error("report missing gate count")
	}
}

func TestSynthesizeClassifierNetlist(t *testing.T) {
	acc := Default45nm()
	nl := SynthesizeClassifier("O1", 507, 10, acc)
	if nl.WeightBytes != (507*10+10)*2 {
		t.Errorf("classifier weight bytes %d", nl.WeightBytes)
	}
	if nl.BufferBytes != (507+10)*2 {
		t.Errorf("classifier buffer bytes %d", nl.BufferBytes)
	}
}

func TestReportRenders(t *testing.T) {
	arch := nn.ArchTiny(rand.New(rand.NewSource(1)), 4)
	acc := Default45nm()
	rep := acc.Report(AnalyzeNetwork(arch.Net))
	for _, col := range []string{"layer", "compute", "total", "C1", "FC"} {
		if !strings.Contains(rep, col) {
			t.Errorf("report missing %q:\n%s", col, rep)
		}
	}
}

// Property: energy scales monotonically with activity — doubling MACs never
// reduces any component.
func TestQuickEnergyMonotone(t *testing.T) {
	acc := Default45nm()
	f := func(macs, reads uint16) bool {
		a := LayerActivity{MACs: float64(macs), WeightReads: float64(reads)}
		b := a
		b.MACs *= 2
		b.WeightReads *= 2
		ea, eb := acc.LayerEnergy(a), acc.LayerEnergy(b)
		return eb.Compute >= ea.Compute && eb.Memory >= ea.Memory &&
			eb.Leakage >= ea.Leakage && eb.Total() >= ea.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: energy is additive across activity lists.
func TestQuickEnergyAdditive(t *testing.T) {
	acc := Default45nm()
	f := func(m1, m2 uint16) bool {
		a := LayerActivity{MACs: float64(m1), InputReads: float64(m1)}
		b := LayerActivity{MACs: float64(m2), InputReads: float64(m2)}
		sum := acc.NetworkEnergy([]LayerActivity{a, b}).Total()
		sep := acc.LayerEnergy(a).Total() + acc.LayerEnergy(b).Total()
		diff := sum - sep
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
