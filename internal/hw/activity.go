package hw

import (
	"fmt"

	"cdl/internal/nn"
)

// LayerActivity is the per-input datapath and memory activity of one layer:
// the dynamic event counts an RTL power tool would integrate.
type LayerActivity struct {
	// Name is the layer name.
	Name string
	// MACs, Adds, Compares, ActEvals are datapath event counts.
	MACs, Adds, Compares, ActEvals float64
	// WeightReads, InputReads, OutputWrites are SRAM word transfers.
	WeightReads, InputReads, OutputWrites float64
}

// AnalyzeLayer derives the activity of one layer from its shape. The
// mapping assumes a direct (no-reuse) dataflow: each MAC fetches one weight
// word and one activation word; results are written once. Real accelerators
// exploit reuse, but the *same* mapping is applied to every design point,
// which is what relative energy claims require.
func AnalyzeLayer(l nn.Layer, inShape []int) LayerActivity {
	out := l.OutShape(inShape)
	outN := 1
	for _, d := range out {
		outN *= d
	}
	a := LayerActivity{Name: l.Name()}
	switch t := l.(type) {
	case *nn.Conv2D:
		macs := float64(outN * t.InChannels() * t.KernelSize() * t.KernelSize())
		a.MACs = macs
		a.Adds = float64(outN) // bias
		a.WeightReads = macs
		a.InputReads = macs
		a.OutputWrites = float64(outN)
	case *nn.Dense:
		macs := float64(t.In() * t.Out())
		a.MACs = macs
		a.Adds = float64(t.Out())
		a.WeightReads = macs
		a.InputReads = macs
		a.OutputWrites = float64(t.Out())
	case *nn.MaxPool2D:
		win := float64(t.Window() * t.Window())
		a.Compares = float64(outN) * (win - 1)
		a.InputReads = float64(outN) * win
		a.OutputWrites = float64(outN)
	case *nn.MeanPool2D:
		win := float64(t.Window() * t.Window())
		a.Adds = float64(outN) * win
		a.InputReads = float64(outN) * win
		a.OutputWrites = float64(outN)
	case *nn.Sigmoid, *nn.Tanh, *nn.ReLU:
		a.ActEvals = float64(outN)
		a.InputReads = float64(outN)
		a.OutputWrites = float64(outN)
	case *nn.Softmax:
		a.ActEvals = float64(outN)
		a.Adds = float64(outN)
		a.InputReads = float64(outN)
		a.OutputWrites = float64(outN)
	case *nn.Flatten:
		// pure re-indexing: free in hardware (address generation)
	default:
		panic(fmt.Sprintf("hw: unknown layer type %T", l))
	}
	return a
}

// AnalyzeNetwork itemizes every layer of the network.
func AnalyzeNetwork(net *nn.Network) []LayerActivity {
	shape := append([]int(nil), net.InShape...)
	acts := make([]LayerActivity, 0, len(net.Layers))
	for _, l := range net.Layers {
		acts = append(acts, AnalyzeLayer(l, shape))
		shape = l.OutShape(shape)
	}
	return acts
}

// LinearClassifierActivity returns the activity of one CDL stage
// classifier: a dense in→out layer plus out sigmoid evaluations.
func LinearClassifierActivity(in, out int) LayerActivity {
	macs := float64(in * out)
	return LayerActivity{
		Name:         "LC",
		MACs:         macs,
		Adds:         float64(out),
		ActEvals:     float64(out),
		WeightReads:  macs,
		InputReads:   macs,
		OutputWrites: float64(out),
	}
}
