package hw

import (
	"fmt"
	"strings"

	"cdl/internal/nn"
)

// Gate-equivalent costs of the datapath units a synthesis tool would infer
// for a 16-bit fixed-point pipeline, in NAND2-equivalent gates. These are
// textbook figures for the 45 nm generation; they parameterize the area
// report only and do not affect energy numbers.
const (
	gatesPerMultiplier  = 2000
	gatesPerAdder       = 220
	gatesPerComparator  = 160
	gatesPerRegisterBit = 8
	gatesPerLUTEntryBit = 1.5 // activation LUT as synthesized ROM
	actLUTEntries       = 64
)

// Netlist is the synthesized-inventory estimate of one design: datapath
// unit counts, register bits, and SRAM requirements. It stands in for the
// gate-level netlist Design Compiler would emit.
type Netlist struct {
	// Name labels the design.
	Name string
	// Multipliers..Comparators are datapath unit counts for a fully
	// time-multiplexed PE array (PEs multipliers/adders shared by layers).
	Multipliers, Adders, Comparators int
	// ActLUTs is the number of activation lookup tables.
	ActLUTs int
	// RegisterBits counts pipeline and accumulator registers.
	RegisterBits int
	// WeightBytes and BufferBytes size the on-chip SRAMs.
	WeightBytes, BufferBytes int
}

// Synthesize sizes an accelerator netlist for a network: a PE array wide
// enough for acc.PEs MACs, weight SRAM holding every parameter, and
// activation buffers sized to the largest inter-layer tensor.
func Synthesize(name string, net *nn.Network, acc Accelerator) Netlist {
	wordBytes := (acc.Tech.Width.Width() + 7) / 8
	nl := Netlist{
		Name:        name,
		Multipliers: acc.PEs,
		Adders:      acc.PEs + 1, // accumulate plus bias adder
		Comparators: acc.PEs,     // pooling compare lanes
		ActLUTs:     1,
		// per-PE accumulator register plus an output staging register
		RegisterBits: (acc.PEs + 1) * acc.Tech.Width.Width(),
	}
	nl.WeightBytes = net.NumParams() * wordBytes

	// Largest activation tensor determines double-buffered SRAM size.
	maxAct := 0
	shape := append([]int(nil), net.InShape...)
	size := func(s []int) int {
		n := 1
		for _, d := range s {
			n *= d
		}
		return n
	}
	if v := size(shape); v > maxAct {
		maxAct = v
	}
	for _, l := range net.Layers {
		shape = l.OutShape(shape)
		if v := size(shape); v > maxAct {
			maxAct = v
		}
	}
	nl.BufferBytes = 2 * maxAct * wordBytes
	return nl
}

// SynthesizeClassifier sizes the standalone linear-classifier datapath the
// paper adds per stage: weights in×out plus biases, a dot-product PE row.
func SynthesizeClassifier(name string, in, out int, acc Accelerator) Netlist {
	wordBytes := (acc.Tech.Width.Width() + 7) / 8
	return Netlist{
		Name:         name,
		Multipliers:  acc.PEs,
		Adders:       acc.PEs + 1,
		Comparators:  1, // argmax scan
		ActLUTs:      1,
		RegisterBits: (acc.PEs + 1) * acc.Tech.Width.Width(),
		WeightBytes:  (in*out + out) * wordBytes,
		BufferBytes:  (in + out) * wordBytes,
	}
}

// GateCount returns the NAND2-equivalent gate estimate of the logic
// (excluding SRAM macros).
func (n Netlist) GateCount() float64 {
	return float64(n.Multipliers)*gatesPerMultiplier +
		float64(n.Adders)*gatesPerAdder +
		float64(n.Comparators)*gatesPerComparator +
		float64(n.RegisterBits)*gatesPerRegisterBit +
		float64(n.ActLUTs)*actLUTEntries*16*gatesPerLUTEntryBit
}

// SRAMBytes returns total on-chip memory.
func (n Netlist) SRAMBytes() int { return n.WeightBytes + n.BufferBytes }

// String renders the inventory like a synthesis report summary.
func (n Netlist) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "netlist %s\n", n.Name)
	fmt.Fprintf(&b, "  multipliers %d, adders %d, comparators %d, act-LUTs %d\n",
		n.Multipliers, n.Adders, n.Comparators, n.ActLUTs)
	fmt.Fprintf(&b, "  register bits %d\n", n.RegisterBits)
	fmt.Fprintf(&b, "  gate count %.1f kGE\n", n.GateCount()/1000)
	fmt.Fprintf(&b, "  SRAM: weights %d B, buffers %d B\n", n.WeightBytes, n.BufferBytes)
	return b.String()
}
