package hw

import (
	"strings"
	"testing"

	"cdl/internal/fixed"
)

func TestEmitClassifierVerilogStructure(t *testing.T) {
	v, err := EmitClassifierVerilog("cdl_o1", 507, 10, fixed.Q2x13)
	if err != nil {
		t.Fatal(err)
	}
	// Module must be balanced and carry the paper's interface: δ input,
	// exit output, weight/bias ROMs, sigmoid LUT, the two-criteria check.
	for _, want := range []string{
		"module cdl_o1",
		"endmodule",
		"parameter IN  = 507",
		"parameter OUT = 10",
		"input  wire signed [W-1:0] delta",
		"output reg               out_exit",
		"reg signed [W-1:0] weights [0:OUT*IN-1]",
		"sigmoid_lut",
		"(confident == 1)",
		"endfunction",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("Verilog missing %q", want)
		}
	}
	if strings.Count(v, "module") < 1 || strings.Count(v, "endmodule") != 1 {
		t.Error("unbalanced module/endmodule")
	}
	if strings.Count(v, "begin") != strings.Count(v, "end")-strings.Count(v, "endmodule")-strings.Count(v, "endcase")-strings.Count(v, "endfunction") {
		// begin/end balance: every "end" that is not endmodule/endcase/
		// endfunction closes a begin.
		t.Errorf("unbalanced begin/end: %d begin vs %d plain end",
			strings.Count(v, "begin"),
			strings.Count(v, "end")-strings.Count(v, "endmodule")-strings.Count(v, "endcase")-strings.Count(v, "endfunction"))
	}
}

func TestEmitClassifierVerilogWidths(t *testing.T) {
	v, err := EmitClassifierVerilog("m", 81, 10, fixed.Q2x13)
	if err != nil {
		t.Fatal(err)
	}
	// accumulator: 2*16 + ceil(log2(81)) = 32+7 = 39 bits
	if !strings.Contains(v, "parameter ACCW = 39") {
		t.Error("accumulator width wrong for 81 features")
	}
	// class index bus: ceil(log2(10)) = 4 bits → [3:0]
	if !strings.Contains(v, "output reg  [3:0]       out_class") {
		t.Error("class bus width wrong for 10 classes")
	}
}

func TestEmitClassifierVerilogErrors(t *testing.T) {
	if _, err := EmitClassifierVerilog("m", 0, 10, fixed.Q2x13); err == nil {
		t.Error("zero inputs accepted")
	}
	if _, err := EmitClassifierVerilog("m", 10, 0, fixed.Q2x13); err == nil {
		t.Error("zero outputs accepted")
	}
	if _, err := EmitClassifierVerilog("m", 10, 10, fixed.Format{IntBits: -1}); err == nil {
		t.Error("bad format accepted")
	}
}

func TestEmitTestbench(t *testing.T) {
	tb, err := EmitClassifierTestbench("cdl_o1", 507, 10, fixed.Q2x13)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"module cdl_o1_tb",
		"cdl_o1 dut",
		"$finish",
		"always #5 clk = ~clk",
	} {
		if !strings.Contains(tb, want) {
			t.Errorf("testbench missing %q", want)
		}
	}
	if _, err := EmitClassifierTestbench("m", 0, 1, fixed.Q2x13); err == nil {
		t.Error("zero inputs accepted")
	}
}

func TestClog2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 10: 4, 81: 7, 507: 9, 1024: 10}
	for n, want := range cases {
		if got := clog2(n); got != want {
			t.Errorf("clog2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestVerilogDeterministic(t *testing.T) {
	a, _ := EmitClassifierVerilog("m", 150, 10, fixed.Q2x13)
	b, _ := EmitClassifierVerilog("m", 150, 10, fixed.Q2x13)
	if a != b {
		t.Error("emission not deterministic")
	}
}
