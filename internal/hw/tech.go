// Package hw models the hardware execution of the paper's classifiers.
//
// The paper implemented each classifier at RTL, synthesized to an IBM 45 nm
// SOI process with Synopsys Design Compiler and measured energy with
// Synopsys Power Compiler. Without that toolchain, this package provides
// the documented substitution (DESIGN.md §4): a netlist-inventory energy
// model. Each layer of a network is mapped to datapath activity — MAC
// operations, comparator operations, activation-LUT lookups, and SRAM
// traffic for weights and activations — and costed with 45 nm-class
// per-operation energies in the spirit of published measurements for that
// node (fixed-point 16-bit datapaths). Leakage is charged per cycle for a
// configurable PE-array accelerator.
//
// Because the paper's claims are relative (CDLN energy versus baseline DLN
// energy under the same process and flow), any internally consistent cost
// table preserves them; the table below is calibrated so compute and
// memory contributions are in realistic proportion for 45 nm, which is what
// drives the small gap the paper observes between OPS improvement (1.91×)
// and energy improvement (1.84×).
package hw

import (
	"fmt"

	"cdl/internal/fixed"
)

// Tech holds per-operation energies (picojoules) and timing for a process
// node. All datapath values assume the Width fixed-point format.
type Tech struct {
	// Name identifies the node, e.g. "45nm-soi".
	Name string
	// Width is the datapath fixed-point format.
	Width fixed.Format
	// EMul is the energy of one 16-bit multiply.
	EMul float64
	// EAdd is the energy of one 16-bit add (also used per-MAC accumulate).
	EAdd float64
	// ECmp is the energy of one 16-bit compare (max-pool windows).
	ECmp float64
	// EAct is the energy of one activation evaluation (piecewise sigmoid
	// LUT lookup plus interpolation).
	EAct float64
	// ESRAMRead and ESRAMWrite are per-word on-chip buffer access energies.
	ESRAMRead, ESRAMWrite float64
	// LeakagePower is the accelerator's static power in milliwatts.
	LeakagePower float64
	// ClockMHz is the operating frequency.
	ClockMHz float64
}

// Tech45nm returns the default 45 nm-class cost table: a 16-bit fixed-point
// datapath where one SRAM access costs a few times a MAC — the balance
// typical of that node.
func Tech45nm() Tech {
	return Tech{
		Name:         "45nm-soi",
		Width:        fixed.Q2x13,
		EMul:         0.80,
		EAdd:         0.05,
		ECmp:         0.05,
		EAct:         0.60,
		ESRAMRead:    2.50,
		ESRAMWrite:   3.00,
		LeakagePower: 5.0,
		ClockMHz:     400,
	}
}

// Validate checks the table is physically sensible.
func (t Tech) Validate() error {
	if err := t.Width.Validate(); err != nil {
		return err
	}
	for _, e := range []struct {
		name string
		v    float64
	}{
		{"EMul", t.EMul}, {"EAdd", t.EAdd}, {"ECmp", t.ECmp}, {"EAct", t.EAct},
		{"ESRAMRead", t.ESRAMRead}, {"ESRAMWrite", t.ESRAMWrite},
	} {
		if e.v <= 0 {
			return fmt.Errorf("hw: %s = %v must be positive", e.name, e.v)
		}
	}
	if t.LeakagePower < 0 {
		return fmt.Errorf("hw: LeakagePower = %v", t.LeakagePower)
	}
	if t.ClockMHz <= 0 {
		return fmt.Errorf("hw: ClockMHz = %v", t.ClockMHz)
	}
	return nil
}

// LeakagePerCycle returns static energy per clock cycle in pJ
// (mW / MHz = nJ per cycle × 1000 → pJ).
func (t Tech) LeakagePerCycle() float64 {
	return t.LeakagePower / t.ClockMHz * 1000
}
