package hw

import (
	"fmt"
	"strings"
)

// Accelerator is a PE-array execution model: PEs parallel MAC units fed by
// on-chip SRAM through MemPorts word-wide ports. It converts layer activity
// into cycles and energy.
type Accelerator struct {
	// Tech is the process cost table.
	Tech Tech
	// PEs is the number of parallel multiply-accumulate units.
	PEs int
	// MemPorts is the number of parallel SRAM word ports.
	MemPorts int
}

// Default45nm returns the reference configuration used by the experiments:
// a 16-PE, 8-port accelerator at 45 nm. With the Tech45nm cost table this
// yields a roughly 10/60/30 compute/memory/leakage energy split on the
// paper's networks — representative of direct-dataflow CNN engines of that
// generation.
func Default45nm() Accelerator {
	return Accelerator{Tech: Tech45nm(), PEs: 16, MemPorts: 8}
}

// Validate checks the configuration.
func (a Accelerator) Validate() error {
	if err := a.Tech.Validate(); err != nil {
		return err
	}
	if a.PEs <= 0 {
		return fmt.Errorf("hw: PEs = %d", a.PEs)
	}
	if a.MemPorts <= 0 {
		return fmt.Errorf("hw: MemPorts = %d", a.MemPorts)
	}
	return nil
}

// Energy is the energy split of one execution in picojoules, plus its
// cycle count.
type Energy struct {
	// Compute is datapath dynamic energy (MACs, adds, compares,
	// activations).
	Compute float64
	// Memory is SRAM dynamic energy.
	Memory float64
	// Leakage is static energy over the execution's cycles.
	Leakage float64
	// Cycles is the execution time in clock cycles.
	Cycles float64
}

// Total returns total energy in pJ.
func (e Energy) Total() float64 { return e.Compute + e.Memory + e.Leakage }

// Add accumulates another energy record.
func (e *Energy) Add(o Energy) {
	e.Compute += o.Compute
	e.Memory += o.Memory
	e.Leakage += o.Leakage
	e.Cycles += o.Cycles
}

// LayerEnergy costs one layer's activity on this accelerator. Cycles are
// the maximum of the compute-bound and memory-bound estimates (a simple
// roofline); leakage is charged over those cycles.
func (a Accelerator) LayerEnergy(act LayerActivity) Energy {
	t := a.Tech
	e := Energy{}
	e.Compute = act.MACs*(t.EMul+t.EAdd) +
		act.Adds*t.EAdd +
		act.Compares*t.ECmp +
		act.ActEvals*t.EAct
	e.Memory = (act.WeightReads+act.InputReads)*t.ESRAMRead +
		act.OutputWrites*t.ESRAMWrite

	datapathOps := act.MACs + act.Adds + act.Compares + act.ActEvals
	memWords := act.WeightReads + act.InputReads + act.OutputWrites
	computeCycles := datapathOps / float64(a.PEs)
	memCycles := memWords / float64(a.MemPorts)
	e.Cycles = computeCycles
	if memCycles > e.Cycles {
		e.Cycles = memCycles
	}
	e.Leakage = e.Cycles * t.LeakagePerCycle()
	return e
}

// NetworkEnergy sums layer energies over an activity list.
func (a Accelerator) NetworkEnergy(acts []LayerActivity) Energy {
	var total Energy
	for _, act := range acts {
		total.Add(a.LayerEnergy(act))
	}
	return total
}

// CumulativeEnergy returns the total energy of executing the first k layers
// of the activity list, for k = 0..len(acts). Mirrors
// opcount.Model.CumulativeOps, but in picojoules.
func (a Accelerator) CumulativeEnergy(acts []LayerActivity) []float64 {
	cum := make([]float64, len(acts)+1)
	for i, act := range acts {
		cum[i+1] = cum[i] + a.LayerEnergy(act).Total()
	}
	return cum
}

// Report renders a per-layer energy table.
func (a Accelerator) Report(acts []LayerActivity) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %12s %12s %12s %12s %10s\n", "layer", "compute pJ", "memory pJ", "leakage pJ", "total pJ", "cycles")
	var total Energy
	for _, act := range acts {
		e := a.LayerEnergy(act)
		total.Add(e)
		fmt.Fprintf(&b, "%-8s %12.1f %12.1f %12.1f %12.1f %10.0f\n",
			act.Name, e.Compute, e.Memory, e.Leakage, e.Total(), e.Cycles)
	}
	fmt.Fprintf(&b, "%-8s %12.1f %12.1f %12.1f %12.1f %10.0f\n",
		"total", total.Compute, total.Memory, total.Leakage, total.Total(), total.Cycles)
	return b.String()
}
