package train

import (
	"math/rand"
	"testing"

	"cdl/internal/nn"
	"cdl/internal/tensor"
)

// blobs generates a linearly separable 2-class dataset of flat 9-dim
// vectors: class 0 clusters near -0.5, class 1 near +0.5 on every axis.
func blobs(n int, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Sample, n)
	for i := range out {
		label := i % 2
		center := -0.5
		if label == 1 {
			center = 0.5
		}
		x := tensor.New(9)
		for j := range x.Data {
			x.Data[j] = center + rng.NormFloat64()*0.15
		}
		out[i] = Sample{X: x, Label: label}
	}
	return out
}

func denseNet(seed int64) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	net := nn.NewNetwork([]int{9},
		nn.NewDense("h", 9, 8),
		nn.NewSigmoid("h.act"),
		nn.NewDense("out", 8, 2),
		nn.NewSigmoid("out.act"),
	)
	nn.InitNetwork(net, rng)
	return net
}

func smallCfg() Config {
	cfg := Defaults(2)
	cfg.Epochs = 30
	cfg.BatchSize = 8
	cfg.Seed = 3
	return cfg
}

func TestSGDLearnsSeparableData(t *testing.T) {
	net := denseNet(1)
	data := blobs(200, 2)
	res, err := SGD(net, data, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.EpochLoss[0], res.EpochLoss[len(res.EpochLoss)-1]
	if last >= first {
		t.Errorf("loss did not decrease: %v -> %v", first, last)
	}
	if acc := Accuracy(net, data, 2); acc < 0.95 {
		t.Errorf("train accuracy %.3f < 0.95 on separable blobs", acc)
	}
}

func TestSGDDeterministicSingleWorker(t *testing.T) {
	// With one worker the whole pipeline is deterministic; two runs from the
	// same seeds must produce identical weights.
	mk := func() *nn.Network {
		net := denseNet(5)
		cfg := smallCfg()
		cfg.Epochs = 3
		cfg.Workers = 1
		if _, err := SGD(net, blobs(50, 6), cfg); err != nil {
			t.Fatal(err)
		}
		return net
	}
	a, b := mk(), mk()
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		if !tensor.Equal(pa[i].W, pb[i].W) {
			t.Fatalf("param %s differs between identical runs", pa[i].Name)
		}
	}
}

func TestSGDParallelMatchesSerialLoss(t *testing.T) {
	// Parallel workers change only float summation order; resulting accuracy
	// must be equivalent on separable data.
	data := blobs(120, 7)
	for _, workers := range []int{1, 4} {
		net := denseNet(8)
		cfg := smallCfg()
		cfg.Workers = workers
		if _, err := SGD(net, data, cfg); err != nil {
			t.Fatal(err)
		}
		if acc := Accuracy(net, data, 2); acc < 0.95 {
			t.Errorf("workers=%d accuracy %.3f < 0.95", workers, acc)
		}
	}
}

func TestSGDValidation(t *testing.T) {
	net := denseNet(9)
	data := blobs(10, 10)
	bad := []Config{
		{},
		{Epochs: 1, BatchSize: 0, LearningRate: 1, LRDecay: 1, Loss: nn.MSE{}, Classes: 2},
		{Epochs: 1, BatchSize: 1, LearningRate: 0, LRDecay: 1, Loss: nn.MSE{}, Classes: 2},
		{Epochs: 1, BatchSize: 1, LearningRate: 1, LRDecay: 1, Loss: nil, Classes: 2},
		{Epochs: 1, BatchSize: 1, LearningRate: 1, LRDecay: 1, Loss: nn.MSE{}, Classes: 0},
		{Epochs: 1, BatchSize: 1, LearningRate: 1, LRDecay: 0, Loss: nn.MSE{}, Classes: 2},
		{Epochs: 1, BatchSize: 1, LearningRate: 1, LRDecay: 1, Loss: nn.MSE{}, Classes: 2, Momentum: 1},
	}
	for i, cfg := range bad {
		if _, err := SGD(net, data, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := SGD(net, nil, smallCfg()); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestLRDecayApplied(t *testing.T) {
	net := denseNet(11)
	cfg := smallCfg()
	cfg.Epochs = 2
	cfg.LearningRate = 1.0
	cfg.LRDecay = 0.5
	res, err := SGD(net, blobs(20, 12), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLR != 0.25 {
		t.Errorf("FinalLR = %v, want 0.25 after two halvings", res.FinalLR)
	}
	if len(res.EpochLoss) != 2 {
		t.Errorf("EpochLoss len %d, want 2", len(res.EpochLoss))
	}
}

func TestEvaluateConfusion(t *testing.T) {
	net := denseNet(13)
	data := blobs(100, 14)
	cfg := smallCfg()
	if _, err := SGD(net, data, cfg); err != nil {
		t.Fatal(err)
	}
	conf := Evaluate(net, data, 2, 3)
	if conf.Total() != 100 {
		t.Errorf("confusion total %d, want 100", conf.Total())
	}
	if conf.Accuracy() < 0.95 {
		t.Errorf("confusion accuracy %.3f", conf.Accuracy())
	}
	empty := Evaluate(net, nil, 2, 0)
	if empty.Total() != 0 {
		t.Error("empty evaluate should be empty")
	}
}

func TestTrainCNNSmoke(t *testing.T) {
	// End-to-end: a tiny conv net learns a 2-class image problem (bright
	// top-left vs bright bottom-right blobs).
	rng := rand.New(rand.NewSource(15))
	mkImage := func(label int) *tensor.T {
		x := tensor.New(1, 12, 12)
		cy, cx := 3, 3
		if label == 1 {
			cy, cx = 8, 8
		}
		for y := 0; y < 12; y++ {
			for x2 := 0; x2 < 12; x2++ {
				d2 := float64((y-cy)*(y-cy) + (x2-cx)*(x2-cx))
				x.Data[y*12+x2] = 1/(1+d2/4) + rng.NormFloat64()*0.05
			}
		}
		return x
	}
	var data []Sample
	for i := 0; i < 80; i++ {
		data = append(data, Sample{X: mkImage(i % 2), Label: i % 2})
	}
	arch := nn.ArchTiny(rng, 2)
	cfg := Defaults(2)
	cfg.Epochs = 15
	cfg.BatchSize = 8
	if _, err := SGD(arch.Net, data, cfg); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(arch.Net, data, 2); acc < 0.95 {
		t.Errorf("CNN accuracy %.3f < 0.95 on trivially separable images", acc)
	}
}

func TestEarlyStoppingTriggers(t *testing.T) {
	// A network trained on separable blobs saturates validation accuracy
	// quickly; a huge epoch budget with small patience must stop early.
	net := denseNet(31)
	data := blobs(120, 32)
	val := blobs(60, 33)
	cfg := smallCfg()
	cfg.Epochs = 200
	cfg.Validation = val
	cfg.Patience = 3
	res, err := SGD(net, data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.StoppedEarly {
		t.Error("expected early stopping on saturated validation accuracy")
	}
	if len(res.EpochLoss) >= 200 {
		t.Errorf("ran all %d epochs despite patience", len(res.EpochLoss))
	}
	if len(res.ValAccuracy) != len(res.EpochLoss) {
		t.Errorf("val accuracy entries %d != epochs run %d", len(res.ValAccuracy), len(res.EpochLoss))
	}
}

func TestNoEarlyStopWithoutPatience(t *testing.T) {
	net := denseNet(34)
	cfg := smallCfg()
	cfg.Epochs = 5
	cfg.Validation = blobs(30, 35)
	res, err := SGD(net, blobs(60, 36), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.StoppedEarly || len(res.EpochLoss) != 5 {
		t.Error("Patience=0 must run the full budget")
	}
}

func TestSplitValidation(t *testing.T) {
	data := blobs(100, 37)
	trainS, valS, err := SplitValidation(data, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(trainS) != 80 || len(valS) != 20 {
		t.Errorf("split %d/%d, want 80/20", len(trainS), len(valS))
	}
	for _, frac := range []float64{0, 1, -0.5, 1.5} {
		if _, _, err := SplitValidation(data, frac); err == nil {
			t.Errorf("fraction %v accepted", frac)
		}
	}
	if _, _, err := SplitValidation(data[:1], 0.2); err == nil {
		t.Error("degenerate split accepted")
	}
}
