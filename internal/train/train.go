// Package train implements the minibatch SGD training loop used to learn
// the paper's baseline DLNs ("trained using the convolutional
// back-propagation algorithm as proposed in [19]"). It supports momentum,
// per-epoch learning-rate decay, deterministic shuffling, and parallel
// gradient computation across goroutine-local network replicas.
package train

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"

	"cdl/internal/nn"
	"cdl/internal/stats"
	"cdl/internal/tensor"
)

// Sample is one labelled training or test instance.
type Sample struct {
	X     *tensor.T
	Label int
}

// Config controls an SGD run. The zero value is not usable; see Defaults.
type Config struct {
	// Epochs is the number of passes over the training set.
	Epochs int
	// BatchSize is the minibatch size; gradients are averaged over the batch.
	BatchSize int
	// LearningRate is the initial step size.
	LearningRate float64
	// Momentum is the classical momentum coefficient (0 disables).
	Momentum float64
	// LRDecay multiplies the learning rate after each epoch (1 disables).
	LRDecay float64
	// Loss is the training criterion; the paper uses MSE.
	Loss nn.Loss
	// Seed drives minibatch shuffling.
	Seed int64
	// Workers is the number of parallel gradient goroutines;
	// 0 means GOMAXPROCS.
	Workers int
	// Classes is the label width for one-hot targets.
	Classes int
	// Validation, if non-empty, is evaluated after every epoch; with
	// Patience > 0 training stops early when validation accuracy has not
	// improved for Patience consecutive epochs.
	Validation []Sample
	// Patience is the early-stopping window (0 disables early stopping).
	Patience int
	// Log, if non-nil, receives one line per epoch.
	Log io.Writer
}

// Defaults returns the configuration used by the paper-scale experiments:
// MSE loss with a high learning rate and mild momentum, the regime in which
// sigmoid CNNs of this size converge (Palm's toolbox used lr≈1 as well;
// heavy momentum saturates the sigmoids and stalls learning).
func Defaults(classes int) Config {
	return Config{
		Epochs:       10,
		BatchSize:    20,
		LearningRate: 1.0,
		Momentum:     0.5,
		LRDecay:      0.98,
		Loss:         nn.MSE{},
		Seed:         1,
		Classes:      classes,
	}
}

func (c *Config) validate() error {
	switch {
	case c.Epochs <= 0:
		return fmt.Errorf("train: Epochs=%d", c.Epochs)
	case c.BatchSize <= 0:
		return fmt.Errorf("train: BatchSize=%d", c.BatchSize)
	case c.LearningRate <= 0:
		return fmt.Errorf("train: LearningRate=%v", c.LearningRate)
	case c.Momentum < 0 || c.Momentum >= 1:
		return fmt.Errorf("train: Momentum=%v", c.Momentum)
	case c.LRDecay <= 0 || c.LRDecay > 1:
		return fmt.Errorf("train: LRDecay=%v", c.LRDecay)
	case c.Loss == nil:
		return fmt.Errorf("train: Loss is nil")
	case c.Classes <= 0:
		return fmt.Errorf("train: Classes=%d", c.Classes)
	}
	return nil
}

// Result reports a finished training run.
type Result struct {
	// EpochLoss is the mean per-sample training loss of each epoch.
	EpochLoss []float64
	// ValAccuracy is the per-epoch validation accuracy (empty without a
	// validation set).
	ValAccuracy []float64
	// StoppedEarly reports whether the Patience rule ended training before
	// the epoch budget.
	StoppedEarly bool
	// FinalLR is the learning rate after decay.
	FinalLR float64
}

// SGD trains net in place and returns the per-epoch loss trace.
func SGD(net *nn.Network, data []Sample, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("train: empty dataset")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.BatchSize {
		workers = cfg.BatchSize
	}

	params := net.Params()
	velocity := make([]*tensor.T, len(params))
	for i, p := range params {
		velocity[i] = tensor.New(p.W.Shape()...)
	}

	// Replica networks: share weights, own gradients and caches.
	replicas := make([]*nn.Network, workers)
	replicaParams := make([][]*nn.Param, workers)
	for w := 0; w < workers; w++ {
		replicas[w] = net.Clone()
		replicaParams[w] = replicas[w].Params()
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(data))
	for i := range order {
		order[i] = i
	}

	targets := make([]*tensor.T, cfg.Classes)
	for c := range targets {
		targets[c] = nn.OneHot(c, cfg.Classes)
	}

	res := &Result{FinalLR: cfg.LearningRate}
	lr := cfg.LearningRate
	losses := make([]float64, workers)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss := 0.0

		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]

			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					replica := replicas[w]
					replica.ZeroGrad()
					loss := 0.0
					// Strided assignment keeps the partition deterministic.
					for i := w; i < len(batch); i += workers {
						s := data[batch[i]]
						out := replica.Forward(s.X)
						target := targets[s.Label]
						loss += cfg.Loss.Loss(out, target)
						replica.Backward(cfg.Loss.Grad(out, target))
					}
					losses[w] = loss
				}(w)
			}
			wg.Wait()

			// Deterministic ordered reduction of replica gradients, then a
			// momentum SGD step on the shared weights.
			scale := 1.0 / float64(len(batch))
			for pi, p := range params {
				g := p.G
				g.Zero()
				for w := 0; w < workers; w++ {
					g.Add(replicaParams[w][pi].G)
				}
				v := velocity[pi]
				for i := range v.Data {
					v.Data[i] = cfg.Momentum*v.Data[i] - lr*scale*g.Data[i]
					p.W.Data[i] += v.Data[i]
				}
			}
			for w := 0; w < workers; w++ {
				epochLoss += losses[w]
			}
		}

		epochLoss /= float64(len(order))
		res.EpochLoss = append(res.EpochLoss, epochLoss)
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "epoch %d/%d loss %.6f lr %.4f\n", epoch+1, cfg.Epochs, epochLoss, lr)
		}
		lr *= cfg.LRDecay

		if len(cfg.Validation) > 0 {
			acc := Accuracy(net, cfg.Validation, cfg.Classes)
			res.ValAccuracy = append(res.ValAccuracy, acc)
			if cfg.Log != nil {
				fmt.Fprintf(cfg.Log, "epoch %d/%d val accuracy %.4f\n", epoch+1, cfg.Epochs, acc)
			}
			if cfg.Patience > 0 && epoch+1 >= cfg.Patience {
				best := 0.0
				for _, a := range res.ValAccuracy[:len(res.ValAccuracy)-cfg.Patience] {
					if a > best {
						best = a
					}
				}
				improved := false
				for _, a := range res.ValAccuracy[len(res.ValAccuracy)-cfg.Patience:] {
					if a > best {
						improved = true
					}
				}
				if !improved && len(res.ValAccuracy) > cfg.Patience {
					res.StoppedEarly = true
					break
				}
			}
		}
	}
	res.FinalLR = lr
	return res, nil
}

// SplitValidation deterministically carves the last fraction of data off
// as a validation set (no shuffling: callers control ordering).
func SplitValidation(data []Sample, fraction float64) (trainS, valS []Sample, err error) {
	if fraction <= 0 || fraction >= 1 {
		return nil, nil, fmt.Errorf("train: validation fraction %v outside (0,1)", fraction)
	}
	n := int(float64(len(data)) * (1 - fraction))
	if n == 0 || n == len(data) {
		return nil, nil, fmt.Errorf("train: split of %d samples at %v leaves an empty side", len(data), fraction)
	}
	return data[:n], data[n:], nil
}

// Evaluate runs net over data in parallel and returns the confusion matrix.
func Evaluate(net *nn.Network, data []Sample, classes, workers int) *stats.Confusion {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(data) && len(data) > 0 {
		workers = len(data)
	}
	if len(data) == 0 {
		return stats.NewConfusion(classes)
	}
	confs := make([]*stats.Confusion, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			replica := net.Clone()
			conf := stats.NewConfusion(classes)
			for i := w; i < len(data); i += workers {
				conf.Add(data[i].Label, replica.Predict(data[i].X))
			}
			confs[w] = conf
		}(w)
	}
	wg.Wait()
	total := stats.NewConfusion(classes)
	for _, c := range confs {
		total.Merge(c)
	}
	return total
}

// Accuracy is a convenience wrapper over Evaluate.
func Accuracy(net *nn.Network, data []Sample, classes int) float64 {
	return Evaluate(net, data, classes, 0).Accuracy()
}
