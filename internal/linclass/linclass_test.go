package linclass

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cdl/internal/tensor"
)

// sepFeatures builds a linearly separable 3-class feature set: class k has
// feature k elevated.
func sepFeatures(n int, seed int64) ([]*tensor.T, []int) {
	rng := rand.New(rand.NewSource(seed))
	var fs []*tensor.T
	var ls []int
	for i := 0; i < n; i++ {
		label := i % 3
		x := tensor.New(6)
		for j := range x.Data {
			x.Data[j] = rng.NormFloat64() * 0.1
		}
		x.Data[label] += 1.0
		fs = append(fs, x)
		ls = append(ls, label)
	}
	return fs, ls
}

func TestTrainSeparable(t *testing.T) {
	fs, ls := sepFeatures(150, 1)
	c := New(6, 3, rand.New(rand.NewSource(2)))
	losses, err := c.Train(fs, ls, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Errorf("LMS loss did not decrease: %v -> %v", losses[0], losses[len(losses)-1])
	}
	if acc := c.Accuracy(fs, ls); acc < 0.98 {
		t.Errorf("accuracy %.3f < 0.98 on separable features", acc)
	}
}

func TestScoresInUnitInterval(t *testing.T) {
	c := New(4, 3, rand.New(rand.NewSource(3)))
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := tensor.New(4)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64() * 5
		}
		s := c.Scores(x)
		for _, v := range s.Data {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPredictMatchesScores(t *testing.T) {
	c := New(5, 4, rand.New(rand.NewSource(4)))
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		x := tensor.New(5)
		for j := range x.Data {
			x.Data[j] = rng.NormFloat64()
		}
		label, conf := c.Predict(x)
		s := c.Scores(x)
		if label != s.ArgMax() {
			t.Fatal("Predict label != Scores argmax")
		}
		if mx, _ := s.Max(); conf != mx {
			t.Fatal("Predict confidence != max score")
		}
	}
}

func TestTrainValidation(t *testing.T) {
	c := New(3, 2, rand.New(rand.NewSource(6)))
	x := tensor.New(3)
	if _, err := c.Train(nil, nil, DefaultTrainConfig()); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := c.Train([]*tensor.T{x}, []int{0, 1}, DefaultTrainConfig()); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := c.Train([]*tensor.T{tensor.New(5)}, []int{0}, DefaultTrainConfig()); err == nil {
		t.Error("wrong feature width accepted")
	}
	if _, err := c.Train([]*tensor.T{x}, []int{7}, DefaultTrainConfig()); err == nil {
		t.Error("out-of-range label accepted")
	}
	bad := DefaultTrainConfig()
	bad.LRDecay = 2
	if _, err := c.Train([]*tensor.T{x}, []int{0}, bad); err == nil {
		t.Error("bad decay accepted")
	}
}

func TestTrainDeterministic(t *testing.T) {
	fs, ls := sepFeatures(60, 7)
	mk := func() *Classifier {
		c := New(6, 3, rand.New(rand.NewSource(8)))
		cfg := DefaultTrainConfig()
		cfg.Epochs = 5
		if _, err := c.Train(fs, ls, cfg); err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk(), mk()
	if !tensor.Equal(a.W, b.W) || !tensor.Equal(a.B, b.B) {
		t.Error("same-seed training produced different weights")
	}
}

func TestCloneIndependent(t *testing.T) {
	c := New(3, 2, rand.New(rand.NewSource(9)))
	d := c.Clone()
	d.W.Data[0] += 1
	if c.W.Data[0] == d.W.Data[0] {
		t.Error("Clone shares weight storage")
	}
}

func TestScoresWidthPanics(t *testing.T) {
	c := New(3, 2, rand.New(rand.NewSource(10)))
	defer func() {
		if recover() == nil {
			t.Error("wrong-width Scores did not panic")
		}
	}()
	c.Scores(tensor.New(4))
}

func TestAccuracyEmpty(t *testing.T) {
	c := New(3, 2, rand.New(rand.NewSource(11)))
	if c.Accuracy(nil, nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
}

// Property: training on a single repeated sample drives its confidence up.
func TestQuickTrainingRaisesTargetScore(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(4, 3, rng)
		x := tensor.New(4)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		before := c.Scores(x).Data[1]
		cfg := DefaultTrainConfig()
		cfg.Epochs = 10
		fs := []*tensor.T{x, x, x, x}
		ls := []int{1, 1, 1, 1}
		if _, err := c.Train(fs, ls, cfg); err != nil {
			return false
		}
		after := c.Scores(x).Data[1]
		return after > before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
