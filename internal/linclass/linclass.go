// Package linclass implements the per-stage linear classifiers of the CDL
// cascade: single-layer networks of output neurons cascaded onto each
// convolutional stage (paper Fig. 3(b)), trained with the least-mean-square
// (delta) rule on frozen CNN feature vectors (Algorithm 1, steps 6–7).
//
// A classifier maps a flattened feature vector to one sigmoid score per
// class; the maximum score is the stage's confidence value that the
// activation module compares against δ.
package linclass

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"cdl/internal/obs"
	"cdl/internal/tensor"
)

// Classifier is a linear map plus sigmoid: scores = σ(W·x + b).
type Classifier struct {
	// In is the feature-vector width; Out the number of classes.
	In, Out int
	// W is the [Out,In] weight matrix; B the per-class bias.
	W, B *tensor.T
}

// New constructs a classifier with Xavier-uniform weights.
func New(in, out int, rng *rand.Rand) *Classifier {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("linclass: New(%d,%d)", in, out))
	}
	c := &Classifier{In: in, Out: out, W: tensor.New(out, in), B: tensor.New(out)}
	limit := math.Sqrt(6.0 / float64(in+out))
	for i := range c.W.Data {
		c.W.Data[i] = (rng.Float64()*2 - 1) * limit
	}
	return c
}

// Scores returns the sigmoid class scores for a feature vector. The input
// is flattened automatically; its element count must equal In.
func (c *Classifier) Scores(x *tensor.T) *tensor.T {
	y := tensor.New(c.Out)
	c.ScoresInto(x, y)
	return y
}

// ScoresInto computes the sigmoid class scores into y (length Out) without
// allocating. It is the hot path of core.Session, which reuses one score
// buffer per stage across classification calls.
func (c *Classifier) ScoresInto(x, y *tensor.T) {
	if x.Numel() != c.In {
		panic(fmt.Sprintf("linclass: feature width %d, want %d", x.Numel(), c.In))
	}
	if y.Numel() != c.Out {
		panic(fmt.Sprintf("linclass: score width %d, want %d", y.Numel(), c.Out))
	}
	prof := obs.ProfilingEnabled()
	var t0 time.Time
	if prof {
		t0 = time.Now()
	}
	tensor.MatVecInto(c.W, x.Flatten(), y)
	for o := 0; o < c.Out; o++ {
		y.Data[o] = 1 / (1 + math.Exp(-(y.Data[o] + c.B.Data[o])))
	}
	if prof {
		obs.ProfAdd(obs.PhaseClassifier, time.Since(t0))
	}
}

// ScoresBatchInto computes sigmoid class scores for a whole batch of
// feature rows: x is [B, In] (rows contiguous, e.g. a batched tap
// activation reshaped flat) and y is [B, Out]. Each row is computed with
// exactly ScoresInto's operations in ScoresInto's order — the same running
// dot product per class followed by the same sigmoid — so the batched fast
// path (core.Session.ClassifyBatch) reproduces per-sample scores bit for
// bit.
func (c *Classifier) ScoresBatchInto(x, y *tensor.T) {
	if x.Rank() != 2 || x.Dim(1) != c.In {
		panic(fmt.Sprintf("linclass: batch feature shape %v, want [B %d]", x.Shape(), c.In))
	}
	bsz := x.Dim(0)
	if y.Rank() != 2 || y.Dim(0) != bsz || y.Dim(1) != c.Out {
		panic(fmt.Sprintf("linclass: batch score shape %v, want [%d %d]", y.Shape(), bsz, c.Out))
	}
	prof := obs.ProfilingEnabled()
	var t0 time.Time
	if prof {
		t0 = time.Now()
	}
	wd, bd := c.W.Data, c.B.Data
	for bi := 0; bi < bsz; bi++ {
		xr := x.Data[bi*c.In : (bi+1)*c.In]
		yr := y.Data[bi*c.Out : (bi+1)*c.Out]
		for o := 0; o < c.Out; o++ {
			row := wd[o*c.In : (o+1)*c.In][:len(xr)]
			s := 0.0
			for i, v := range row {
				s += v * xr[i]
			}
			yr[o] = 1 / (1 + math.Exp(-(s + bd[o])))
		}
	}
	if prof {
		obs.ProfAdd(obs.PhaseClassifier, time.Since(t0))
	}
}

// Predict returns the argmax class and its confidence (the max sigmoid
// score).
func (c *Classifier) Predict(x *tensor.T) (label int, confidence float64) {
	s := c.Scores(x)
	conf, arg := s.Max()
	return arg, conf
}

// Clone returns a deep copy.
func (c *Classifier) Clone() *Classifier {
	return &Classifier{In: c.In, Out: c.Out, W: c.W.Clone(), B: c.B.Clone()}
}

// TrainConfig controls LMS training.
type TrainConfig struct {
	// Epochs is the number of passes over the feature set (default 20).
	Epochs int
	// LearningRate is the LMS step size (default 0.5).
	LearningRate float64
	// LRDecay multiplies the rate each epoch (default 0.95).
	LRDecay float64
	// Seed drives the per-epoch shuffle.
	Seed int64
	// Log, if non-nil, receives one line per epoch.
	Log io.Writer
}

// DefaultTrainConfig returns the settings used by the paper-scale
// experiments. The linear classifiers are small and converge quickly
// (paper §II: "the linear networks being small scale ... can be trained
// rapidly"), so a few dozen normalized-LMS epochs suffice.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 30, LearningRate: 2.0, LRDecay: 0.97, Seed: 1}
}

func (cfg *TrainConfig) normalize() {
	if cfg.Epochs == 0 {
		cfg.Epochs = 30
	}
	if cfg.LearningRate == 0 {
		cfg.LearningRate = 2.0
	}
	if cfg.LRDecay == 0 {
		cfg.LRDecay = 0.97
	}
}

// Train fits the classifier to (features, labels) with the normalized LMS
// (delta) rule through the sigmoid: for each sample,
// w ← w − η·(y−t)·y·(1−y)·x/(1+‖x‖²). The per-sample normalization keeps
// the step stable regardless of the feature-vector width, which varies by
// two orders of magnitude across CDL stages (O1 sees 507–864 features, O3
// sees 81). It returns the mean squared error per epoch.
func (c *Classifier) Train(features []*tensor.T, labels []int, cfg TrainConfig) ([]float64, error) {
	if len(features) != len(labels) {
		return nil, fmt.Errorf("linclass: %d features but %d labels", len(features), len(labels))
	}
	if len(features) == 0 {
		return nil, fmt.Errorf("linclass: empty training set")
	}
	cfg.normalize()
	if cfg.Epochs < 0 || cfg.LearningRate <= 0 || cfg.LRDecay <= 0 || cfg.LRDecay > 1 {
		return nil, fmt.Errorf("linclass: bad config %+v", cfg)
	}
	for i, f := range features {
		if f.Numel() != c.In {
			return nil, fmt.Errorf("linclass: feature %d width %d, want %d", i, f.Numel(), c.In)
		}
		if labels[i] < 0 || labels[i] >= c.Out {
			return nil, fmt.Errorf("linclass: label %d out of range at %d", labels[i], i)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(features))
	for i := range order {
		order[i] = i
	}
	// Per-sample NLMS normalizers, computed once: features are frozen CNN
	// activations and never change across epochs.
	norms := make([]float64, len(features))
	for i, f := range features {
		s := 0.0
		for _, v := range f.Data {
			s += v * v
		}
		norms[i] = 1 + s
	}
	lr := cfg.LearningRate
	losses := make([]float64, 0, cfg.Epochs)
	y := tensor.New(c.Out)
	delta := tensor.New(c.Out)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		sum := 0.0
		for _, idx := range order {
			x := features[idx].Flatten()
			step := lr / norms[idx]
			tensor.MatVecInto(c.W, x, y)
			for o := 0; o < c.Out; o++ {
				v := 1 / (1 + math.Exp(-(y.Data[o] + c.B.Data[o])))
				t := 0.0
				if o == labels[idx] {
					t = 1
				}
				e := v - t
				sum += e * e
				delta.Data[o] = -step * e * v * (1 - v)
			}
			tensor.OuterAccum(c.W, delta, x)
			c.B.Add(delta)
		}
		mse := sum / float64(len(order))
		losses = append(losses, mse)
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "linclass epoch %d/%d mse %.6f\n", epoch+1, cfg.Epochs, mse)
		}
		lr *= cfg.LRDecay
	}
	return losses, nil
}

// Accuracy evaluates the classifier on a labelled feature set.
func (c *Classifier) Accuracy(features []*tensor.T, labels []int) float64 {
	if len(features) == 0 {
		return 0
	}
	correct := 0
	for i, f := range features {
		if l, _ := c.Predict(f); l == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(features))
}
