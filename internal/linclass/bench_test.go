package linclass

import (
	"math/rand"
	"testing"

	"cdl/internal/tensor"
)

func benchFeatures(n, width int, seed int64) ([]*tensor.T, []int) {
	r := rand.New(rand.NewSource(seed))
	fs := make([]*tensor.T, n)
	ls := make([]int, n)
	for i := range fs {
		f := tensor.New(width)
		for j := range f.Data {
			f.Data[j] = r.Float64()
		}
		fs[i] = f
		ls[i] = i % 10
	}
	return fs, ls
}

func BenchmarkScores507(b *testing.B) {
	c := New(507, 10, rand.New(rand.NewSource(1)))
	fs, _ := benchFeatures(1, 507, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Scores(fs[0])
	}
}

func BenchmarkTrainEpoch507(b *testing.B) {
	fs, ls := benchFeatures(200, 507, 3)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := New(507, 10, rand.New(rand.NewSource(4)))
		if _, err := c.Train(fs, ls, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
