package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// walkStack traverses root calling fn with each node and its ancestor chain
// (outermost first, not including the node itself). Returning false prunes
// the subtree.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := fn(n, stack)
		if keep {
			stack = append(stack, n)
		}
		return keep
	})
}

// exprString renders an expression compactly ("rt.metrics"). Used to match
// mutex holder paths textually; semantically distinct expressions with the
// same spelling are treated as the same holder, which is the convention the
// lock annotations rely on.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, fset, e)
	return buf.String()
}

// exprLabel renders an expression for a finding message: whitespace
// collapsed and truncated so composite literals don't flood the report.
func exprLabel(fset *token.FileSet, e ast.Expr) string {
	s := strings.Join(strings.Fields(exprString(fset, e)), " ")
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return s
}

// pkgFunc reports whether the call expression invokes the package-level
// function pkgPath.name (e.g. "time".Now), resolved through the type info
// so aliased imports are handled.
func pkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if _, isPkg := info.Uses[baseIdent(sel.X)].(*types.PkgName); !isPkg {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// calleeOf resolves the called function or method object, or nil.
func calleeOf(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// baseIdent returns the leftmost identifier of a selector chain, or nil.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.CallExpr:
			return nil
		default:
			return nil
		}
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// hasRelPrefix reports whether the package's module-relative dir is rel or
// lies under it.
func hasRelPrefix(pkg *Package, rels ...string) bool {
	for _, rel := range rels {
		if pkg.Rel == rel || strings.HasPrefix(pkg.Rel, rel+"/") {
			return true
		}
	}
	return false
}

// enclosingFunc returns the innermost enclosing function declaration or
// literal from an ancestor stack.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// funcBody returns the body of a FuncDecl or FuncLit node.
func funcBody(fn ast.Node) *ast.BlockStmt {
	switch f := fn.(type) {
	case *ast.FuncDecl:
		return f.Body
	case *ast.FuncLit:
		return f.Body
	}
	return nil
}

// funcType returns the type expression of a FuncDecl or FuncLit node.
func funcType(fn ast.Node) *ast.FuncType {
	switch f := fn.(type) {
	case *ast.FuncDecl:
		return f.Type
	case *ast.FuncLit:
		return f.Type
	}
	return nil
}
