// Package analysis is the engine behind cmd/cdlvet: a stdlib-only static
// analysis suite that enforces, at build time, the repo-specific invariants
// the dynamic tests (goldens, differential harnesses, -race storms) can only
// sample — deterministic output bytes, lock discipline, context
// propagation, observability hygiene, fast-path exhaustiveness and
// goroutine lifecycle.
//
// The engine deliberately reimplements a thin slice of
// golang.org/x/tools/go/analysis on top of go/parser and go/types with the
// source importer, so the module's go.mod stays dependency-free. Each
// Analyzer receives fully type-checked packages and reports Findings;
// findings can be waived inline with a
//
//	//cdlvet:allow <analyzer> -- <reason>
//
// directive on the offending line (or the line above), or grandfathered in
// a checked-in baseline file (see baseline.go). The target state is an
// empty baseline: fix what the suite finds.
package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Analyzer string `json:"analyzer"`
	// File is the path relative to the module root.
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// Pos renders the finding's location as file:line:col.
func (f Finding) Pos() string {
	return fmt.Sprintf("%s:%d:%d", f.File, f.Line, f.Col)
}

// String renders the finding in the driver's text output format.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos(), f.Analyzer, f.Message)
}

// Analyzer is one pass of the suite. Exactly one of Run or RunModule is
// set: Run inspects one package at a time, RunModule runs once over the
// whole module (for cross-package rules like interface exhaustiveness).
type Analyzer struct {
	Name string
	Doc  string

	Run       func(*Pass)
	RunModule func(*Pass)
}

// Pass carries one analyzer invocation's inputs and its report sink. For
// per-package analyzers Pkg is the package under inspection; for module
// analyzers Pkg is nil and All holds every package in load order.
type Pass struct {
	Analyzer *Analyzer
	Mod      *Module
	Pkg      *Package
	All      []*Package

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Mod.Fset.Position(pos)
	rel, err := filepath.Rel(p.Mod.Dir, position.Filename)
	if err != nil {
		rel = position.Filename
	}
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		File:     filepath.ToSlash(rel),
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerDeterminism,
		AnalyzerLockCheck,
		AnalyzerCtxFlow,
		AnalyzerObsHygiene,
		AnalyzerExhaustive,
		AnalyzerGoCtx,
	}
}

// ByName resolves a comma-separable analyzer name; nil if unknown.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes the analyzers over the module's selected packages and
// returns the surviving findings (inline //cdlvet:allow waivers already
// applied) sorted by file, line and analyzer.
func Run(mod *Module, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Mod: mod, All: mod.Packages, findings: &findings}
		if a.RunModule != nil {
			a.RunModule(pass)
			continue
		}
		for _, pkg := range mod.Packages {
			if !pkg.Selected {
				continue
			}
			p := *pass
			p.Pkg = pkg
			a.Run(&p)
		}
	}
	kept := findings[:0]
	for _, f := range findings {
		if !mod.allowed(f) {
			kept = append(kept, f)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return kept
}
