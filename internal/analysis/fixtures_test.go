package analysis

import (
	"path/filepath"
	"regexp"
	"sync"
	"testing"
)

// The fixture mini-module under testdata/src/minimod is a self-contained
// Go module (also named "cdl", so the analyzers' module-relative package
// pinning applies) with one positive and one negative case per rule. Each
// expected finding is marked in the fixture source with a
//
//	// want:<analyzer> "<regexp>"
//
// comment on the finding's line; the harness runs the full suite and
// requires an exact bidirectional match — every expectation produces a
// finding and every finding was expected.
var wantRe = regexp.MustCompile(`want:([a-z]+) "([^"]*)"`)

type expectation struct {
	file     string
	line     int
	analyzer string
	re       *regexp.Regexp
	matched  bool
}

var (
	fixtureOnce sync.Once
	fixtureMod  *Module
	fixtureErr  error
)

func loadFixtureModule(t *testing.T) *Module {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureMod, fixtureErr = LoadModule(filepath.Join("testdata", "src", "minimod"), []string{"./..."})
	})
	if fixtureErr != nil {
		t.Fatalf("loading fixture module: %v", fixtureErr)
	}
	if errs := fixtureMod.TypeErrors(); len(errs) > 0 {
		t.Fatalf("fixture module has type errors (fix the fixtures): %v", errs)
	}
	return fixtureMod
}

func collectExpectations(t *testing.T, mod *Module) []*expectation {
	t.Helper()
	var exps []*expectation
	for _, pkg := range mod.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						re, err := regexp.Compile(m[2])
						if err != nil {
							t.Fatalf("bad want pattern %q: %v", m[2], err)
						}
						pos := mod.Fset.Position(c.Pos())
						rel, err := filepath.Rel(mod.Dir, pos.Filename)
						if err != nil {
							rel = pos.Filename
						}
						exps = append(exps, &expectation{
							file:     filepath.ToSlash(rel),
							line:     pos.Line,
							analyzer: m[1],
							re:       re,
						})
					}
				}
			}
		}
	}
	if len(exps) == 0 {
		t.Fatal("no want expectations found in fixture module")
	}
	return exps
}

// TestFixtures is the driver test: it runs every analyzer over the
// synthetic mini-module and checks the findings against the inline
// expectations.
func TestFixtures(t *testing.T) {
	mod := loadFixtureModule(t)
	exps := collectExpectations(t, mod)
	findings := Run(mod, All())
	for _, f := range findings {
		matched := false
		for _, e := range exps {
			if !e.matched && e.file == f.File && e.line == f.Line && e.analyzer == f.Analyzer && e.re.MatchString(f.Message) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, e := range exps {
		if !e.matched {
			t.Errorf("%s:%d: expected %s finding matching %q, got none", e.file, e.line, e.analyzer, e.re)
		}
	}
}

// TestFixturesPerAnalyzer re-runs each analyzer alone and checks it
// produces exactly its own expectations — no cross-talk between passes.
func TestFixturesPerAnalyzer(t *testing.T) {
	mod := loadFixtureModule(t)
	exps := collectExpectations(t, mod)
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			var want int
			for _, e := range exps {
				if e.analyzer == a.Name {
					want++
				}
			}
			got := Run(mod, []*Analyzer{a})
			if len(got) != want {
				t.Errorf("analyzer %s: got %d findings, want %d:", a.Name, len(got), want)
				for _, f := range got {
					t.Logf("  %s", f)
				}
			}
			for _, f := range got {
				if f.Analyzer != a.Name {
					t.Errorf("analyzer %s reported under name %s", a.Name, f.Analyzer)
				}
			}
		})
	}
}

// TestMalformedDirective checks the driver surfaces //cdlvet:allow
// directives missing the mandatory "-- reason" tail.
func TestMalformedDirective(t *testing.T) {
	mod := loadFixtureModule(t)
	mal := mod.MalformedDirectives()
	if len(mal) != 1 {
		t.Fatalf("got %d malformed directives, want 1: %v", len(mal), mal)
	}
	if mal[0].File != "internal/core/det.go" {
		t.Errorf("malformed directive reported in %s, want internal/core/det.go", mal[0].File)
	}
}
